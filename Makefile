# Standard developer entry points. Everything is stdlib-only Go; no
# tools beyond the toolchain are required.

GO ?= go

.PHONY: all build vet test race fuzz bench bench-fleet soak-fleet serve clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The serve subsystem is concurrency-heavy; run the whole tree under
# the race detector before shipping.
race:
	$(GO) test -race ./...

# Short fuzz smoke over the parser targets and the batch-vs-sequential
# pricing differential (one -fuzz per invocation, a Go toolchain
# constraint).
fuzz:
	$(GO) test -fuzz=FuzzParseDataflow -fuzztime=10s -run xxx ./internal/dataflow/
	$(GO) test -fuzz=FuzzParseNetwork -fuzztime=10s -run xxx ./internal/dataflow/
	$(GO) test -fuzz=FuzzParseHW -fuzztime=10s -run xxx ./internal/hw/
	$(GO) test -fuzz=FuzzPartition -fuzztime=10s -run xxx ./internal/dse/
	$(GO) test -fuzz=FuzzPriceBatch -fuzztime=10s -run xxx ./internal/core/
	$(GO) test -fuzz=FuzzPartitionDAG -fuzztime=10s -run xxx ./internal/netsched/
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=10s -run xxx ./internal/fleet/

# One pass over the figure/table benchmarks plus the service benchmarks.
bench:
	$(GO) test -bench . -benchtime 1x -run xxx .
	$(GO) test -bench . -benchmem -run xxx ./internal/serve

# DSE throughput: warm-cache, cold-profile, and per-point-Analyze
# variants of the Explore benchmark plus the Profile/Price/PriceBatch
# microbenchmarks; the measured numbers are recorded in BENCH_dse.json.
bench-dse:
	$(GO) test -bench 'BenchmarkExplore|BenchmarkProfileVsAnalyze|BenchmarkPriceBatch' -benchtime 200x -benchmem -run xxx ./internal/dse/ ./internal/core/

# Fleet scaling: 1/2/4 in-process nodes with injected per-shard service
# time; the measured numbers are recorded in BENCH_fleet.json.
bench-fleet:
	$(GO) test -bench BenchmarkFleetSweep -benchtime 3x -run xxx ./internal/fleet

# Crash-recovery soak: kill the coordinator mid-sweep and resume from
# the journal, SOAK_N times in a row under the race detector. Any
# nondeterminism in replay or journal truncation shows up here.
SOAK_N ?= 10
soak-fleet:
	$(GO) test -race -run 'TestChaosCoordinatorCrashResume' -count $(SOAK_N) -timeout 10m ./internal/fleet/

serve:
	$(GO) run ./cmd/maestro-serve

clean:
	$(GO) clean ./...
