# Standard developer entry points. Everything is stdlib-only Go; no
# tools beyond the toolchain are required.

GO ?= go

.PHONY: all build vet test race bench serve clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The serve subsystem is concurrency-heavy; run the whole tree under
# the race detector before shipping.
race:
	$(GO) test -race ./...

# One pass over the figure/table benchmarks plus the service benchmarks.
bench:
	$(GO) test -bench . -benchtime 1x -run xxx .
	$(GO) test -bench . -benchmem -run xxx ./internal/serve

serve:
	$(GO) run ./cmd/maestro-serve

clean:
	$(GO) clean ./...
