// A miniature network in the MAESTRO-style DSL, used by cmd/maestro and
// the parser tests. Dimensions are input coordinates (Y = 34 input rows
// for 32 output rows with a 3x3 filter at stride 1).
Network tinynet {
  Layer CONV1 {
    Type: CONV2D
    Stride { Y: 1, X: 1 }
    Dimensions { N: 1, K: 16, C: 3, Y: 34, X: 34, R: 3, S: 3 }
    Dataflow {
      SpatialMap(1,1) K;
      TemporalMap(Sz(R),1) Y;
      TemporalMap(Sz(S),1) X;
      TemporalMap(Sz(R),Sz(R)) R;
      TemporalMap(Sz(S),Sz(S)) S;
      Cluster(4, P);
      SpatialMap(1,1) C;
    }
  }
  Layer CONV2 {
    Type: CONV2D
    Stride { Y: 2, X: 2 }
    Dimensions { N: 1, K: 32, C: 16, Y: 33, X: 33, R: 3, S: 3 }
    Dataflow {
      TemporalMap(1,1) K;
      SpatialMap(Sz(R),1) Y;
      TemporalMap(Sz(S),1) X;
      TemporalMap(Sz(R),Sz(R)) R;
      TemporalMap(Sz(S),Sz(S)) S;
    }
  }
  Layer FC {
    Type: FC
    Dimensions { N: 1, K: 10, C: 8192 }
    Dataflow {
      SpatialMap(1,1) K;
      TemporalMap(64,64) C;
    }
  }
}
