// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [fig9|fig10|fig11|fig12|fig13|table1|table3|table4|table5|headline|all]
//
// Each experiment prints the rows/series the corresponding paper table or
// figure reports; EXPERIMENTS.md records paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "trimmed workloads for fast runs")
	csvDir := flag.String("csvdir", "", "also dump the Figure 13 design spaces as CSVs into this directory")
	flag.Parse()
	opt := experiments.Options{Quick: *quick}

	kind := "all"
	if flag.NArg() > 0 {
		kind = flag.Arg(0)
	}
	runs := map[string]func(io.Writer, experiments.Options) error{
		"fig9":     experiments.Fig9,
		"fig10":    experiments.Fig10,
		"fig11":    experiments.Fig11,
		"fig12":    experiments.Fig12,
		"fig13":    experiments.Fig13,
		"table1":   experiments.Table1,
		"table3":   experiments.Table3,
		"table4":   experiments.Table4,
		"table5":   experiments.Table5,
		"headline": experiments.Headline,
		"ablation": experiments.Ablations,
	}
	order := []string{"table1", "table3", "table4", "fig9", "fig10", "fig11", "fig12", "table5", "fig13", "headline", "ablation"}

	var names []string
	if kind == "all" {
		names = order
	} else if _, ok := runs[kind]; ok {
		names = []string{kind}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v or all\n", kind, order)
		os.Exit(2)
	}
	if *csvDir != "" {
		runs, err := experiments.RunFig13(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig13:", err)
			os.Exit(1)
		}
		if err := experiments.WriteFig13CSVs(*csvDir, runs); err != nil {
			fmt.Fprintln(os.Stderr, "csvdir:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d design-space CSVs to %s\n", len(runs), *csvDir)
	}
	for i, n := range names {
		if i > 0 {
			fmt.Println("\n================================================================")
		}
		if err := runs[n](os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
