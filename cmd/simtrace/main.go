// Command simtrace runs the step-accurate reference simulator on one
// layer + dataflow and writes a per-step CSV trace of the
// double-buffered pipeline (step, active PEs, ingress/egress traffic,
// stage delays, completion times) — the ground-level view behind the
// analytical model's summaries.
//
// Usage:
//
//	simtrace [-dataflow KC-P] [-pes 64] [-dims "K:16,C:8,Y:18,X:18,R:3,S:3"]
//	         [-stride 1] [-o trace.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func main() {
	dfName := flag.String("dataflow", "KC-P", "built-in dataflow name")
	pes := flag.Int("pes", 64, "number of PEs")
	bw := flag.Float64("bw", 16, "NoC bandwidth, elements/cycle")
	dims := flag.String("dims", "K:16,C:8,Y:18,X:18,R:3,S:3", "layer dimensions")
	stride := flag.Int("stride", 1, "stride")
	out := flag.String("o", "", "trace CSV path (default stdout)")
	flag.Parse()

	layer := tensor.Layer{Name: "trace", Op: tensor.Conv2D, StrideY: *stride, StrideX: *stride}
	for _, part := range strings.Split(*dims, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			fatal(fmt.Errorf("bad dim %q", part))
		}
		d, err := tensor.ParseDim(kv[0])
		if err != nil {
			fatal(err)
		}
		v, err := strconv.Atoi(kv[1])
		if err != nil {
			fatal(err)
		}
		layer.Sizes = layer.Sizes.Set(d, v)
	}
	layer = layer.Normalize()
	if err := layer.Validate(); err != nil {
		fatal(err)
	}

	m := noc.Bus(*bw)
	m.Reduction = true
	cfg := hw.Config{Name: "trace", NumPEs: *pes, NoCs: []noc.Model{m}}.Normalize()
	spec, err := dataflow.Resolve(dataflows.Get(*dfName), layer, cfg.NumPEs)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	r, err := sim.SimulateTrace(spec, cfg, w)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "simulated %d cycles, %d MACs, L2 %d reads / %d writes\n",
		r.Cycles, r.MACs, r.L2Reads, r.L2Writes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simtrace:", err)
	os.Exit(1)
}
