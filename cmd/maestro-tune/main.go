// Command maestro-tune auto-tunes a mapping for every layer of a
// built-in model and writes a complete network file in the DSL, ready
// for cmd/maestro to consume:
//
//	maestro-tune -model MobileNetV2 -pes 256 -o mobilenet_tuned.m
//	maestro -pes 256 mobilenet_tuned.m
//
// With -trace the whole search is recorded as Chrome trace_event JSON:
// one tuner.layer span per layer, with the profile walks and pricings
// of its candidate mappings as children.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

func main() {
	modelName := flag.String("model", "MobileNetV2", "built-in model to tune")
	pes := flag.Int("pes", 256, "number of PEs")
	bw := flag.Float64("bw", 32, "NoC GB/s")
	objective := flag.String("objective", "runtime", "runtime, energy, or edp")
	out := flag.String("o", "", "output network file (default stdout)")
	hwFile := flag.String("hw", "", "accelerator description file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the search to this file")
	flag.Parse()

	var m models.Model
	found := false
	zoo := append(models.EvaluationModels(), models.AlexNet(), models.GoogLeNet(), models.DCGAN())
	for _, cand := range zoo {
		if cand.Name == *modelName {
			m, found = cand, true
			break
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown model %q", *modelName))
	}

	cfg, err := pickHW(*hwFile, *pes, *bw)
	if err != nil {
		fatal(err)
	}
	opt := tuner.Options{}
	switch *objective {
	case "runtime":
		opt.Objective = tuner.MinRuntime
	case "energy":
		opt.Objective = tuner.MinEnergy
	case "edp":
		opt.Objective = tuner.MinEDP
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	ctx := context.Background()
	var rec *obs.Recorder
	if *tracePath != "" {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}

	fmt.Fprintf(w, "// %s tuned for %s on %d PEs (objective: %s)\n",
		m.Name, cfg.Name, cfg.NumPEs, *objective)
	fmt.Fprintf(w, "Network %s {\n", sanitize(m.Name))
	var total int64
	for _, li := range m.Layers {
		ch, err := tuner.TuneLayerCtx(ctx, li.Layer, cfg, opt)
		if err != nil {
			fatal(fmt.Errorf("layer %s: %w", li.Layer.Name, err))
		}
		total += ch.Result.Runtime * int64(li.Count)
		writeLayer(w, li.Layer, ch)
	}
	fmt.Fprintln(w, "}")
	fmt.Fprintf(os.Stderr, "tuned %d layer shapes; total runtime %d cycles\n", len(m.Layers), total)
	if rec != nil {
		if err := writeTrace(*tracePath, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", rec.Len(), *tracePath)
	}
}

func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeLayer(w *bufio.Writer, l tensor.Layer, ch tuner.Choice) {
	fmt.Fprintf(w, "  // %s: %d cycles (%.1f%% utilization)\n",
		ch.Dataflow.Name, ch.Result.Runtime, 100*ch.Result.Utilization())
	fmt.Fprintf(w, "  Layer %s {\n", sanitize(l.Name))
	fmt.Fprintf(w, "    Type: %s\n", l.Op)
	if l.StrideY != 1 || l.StrideX != 1 {
		fmt.Fprintf(w, "    Stride { Y: %d, X: %d }\n", l.StrideY, l.StrideX)
	}
	fmt.Fprintf(w, "    Dimensions { N: %d, K: %d, C: %d, Y: %d, X: %d, R: %d, S: %d }\n",
		l.Sizes.Get(tensor.N), l.Sizes.Get(tensor.K), l.Sizes.Get(tensor.C),
		l.Sizes.Get(tensor.Y), l.Sizes.Get(tensor.X), l.Sizes.Get(tensor.R), l.Sizes.Get(tensor.S))
	if l.Density[tensor.Input] != 1 || l.Density[tensor.Weight] != 1 || l.Density[tensor.Output] != 1 {
		fmt.Fprintf(w, "    Density { I: %g, W: %g, O: %g }\n",
			l.Density[tensor.Input], l.Density[tensor.Weight], l.Density[tensor.Output])
	}
	fmt.Fprintln(w, "    Dataflow {")
	for _, line := range strings.Split(strings.TrimSpace(ch.Dataflow.String()), "\n") {
		fmt.Fprintf(w, "      %s\n", line)
	}
	fmt.Fprintln(w, "    }")
	fmt.Fprintln(w, "  }")
}

// sanitize maps layer names to DSL identifiers.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func pickHW(hwFile string, pes int, gbps float64) (hw.Config, error) {
	if hwFile != "" {
		src, err := os.ReadFile(hwFile)
		if err != nil {
			return hw.Config{}, err
		}
		return hw.ParseConfig(string(src))
	}
	m := noc.Bus(noc.GBpsToElems(gbps, 1, 1))
	m.Reduction = true
	return hw.Config{Name: "cli", NumPEs: pes, NoCs: []noc.Model{m}}.Normalize(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maestro-tune:", err)
	os.Exit(1)
}
