// Command maestro-map searches the mapping space of one layer on a
// hardware configuration and emits the winning mapping as data-centric
// directives (ready to paste into a network file's Dataflow block).
//
// Usage:
//
//	maestro-map [-model VGG16 -layer CONV5 | -dims "K:64,C:64,Y:58,X:58,R:3,S:3"]
//	            [-hw accel.hw] [-pes 256] [-strategy hillclimb] [-budget 2000]
//	            [-objective runtime|energy|edp] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/mapper"
	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/tensor"
)

func main() {
	modelName := flag.String("model", "", "model to pick the layer from")
	layerName := flag.String("layer", "", "layer name within -model")
	dims := flag.String("dims", "", "explicit dims, e.g. K:64,C:64,Y:58,X:58,R:3,S:3")
	stride := flag.Int("stride", 1, "stride for -dims layers")
	hwFile := flag.String("hw", "", "accelerator description file")
	pes := flag.Int("pes", 256, "PEs when no -hw file is given")
	bw := flag.Float64("bw", 32, "NoC GB/s when no -hw file is given")
	strategy := flag.String("strategy", "hillclimb", "exhaustive, random, or hillclimb")
	budget := flag.Int("budget", 2000, "cost-model evaluation budget")
	objective := flag.String("objective", "runtime", "runtime, energy, or edp")
	seed := flag.Int64("seed", 1, "seed for stochastic strategies")
	flag.Parse()

	layer, err := pickLayer(*modelName, *layerName, *dims, *stride)
	if err != nil {
		fatal(err)
	}
	cfg, err := pickHW(*hwFile, *pes, *bw)
	if err != nil {
		fatal(err)
	}

	opt := mapper.Options{Budget: *budget, Seed: *seed}
	switch *strategy {
	case "exhaustive":
		opt.Strategy = mapper.Exhaustive
	case "random":
		opt.Strategy = mapper.RandomSample
	case "hillclimb":
		opt.Strategy = mapper.HillClimb
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	switch *objective {
	case "runtime":
	case "energy":
		opt.Score = func(r *core.Result) float64 { return r.EnergyDefault().OnChip() }
	case "edp":
		opt.Score = func(r *core.Result) float64 {
			return r.EnergyDefault().OnChip() * float64(r.Runtime)
		}
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	best, stats, err := mapper.Search(layer, cfg, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("// layer %s %v on %s (%d PEs)\n", layer.Name, layer.Sizes, cfg.Name, cfg.NumPEs)
	fmt.Printf("// %s search: %d evaluated, %d invalid; objective %s\n",
		*strategy, stats.Evaluated, stats.Invalid, *objective)
	fmt.Printf("// candidate: %s\n", best.Candidate)
	fmt.Println("Dataflow {")
	for _, line := range strings.Split(strings.TrimSpace(best.Dataflow.String()), "\n") {
		fmt.Println("  " + line)
	}
	fmt.Println("}")
	fmt.Println()
	fmt.Print(best.Result)
}

func pickLayer(modelName, layerName, dims string, stride int) (tensor.Layer, error) {
	if dims != "" {
		l := tensor.Layer{Name: "custom", Op: tensor.Conv2D, StrideY: stride, StrideX: stride}
		for _, part := range strings.Split(dims, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
			if len(kv) != 2 {
				return l, fmt.Errorf("bad dim %q", part)
			}
			d, err := tensor.ParseDim(kv[0])
			if err != nil {
				return l, err
			}
			v, err := strconv.Atoi(kv[1])
			if err != nil {
				return l, err
			}
			l.Sizes = l.Sizes.Set(d, v)
		}
		l = l.Normalize()
		return l, l.Validate()
	}
	if modelName == "" || layerName == "" {
		return tensor.Layer{}, fmt.Errorf("need -model and -layer, or -dims")
	}
	zoo := append(models.EvaluationModels(), models.AlexNet(), models.DCGAN())
	for _, m := range zoo {
		if m.Name != modelName {
			continue
		}
		if li, ok := m.Find(layerName); ok {
			return li.Layer, nil
		}
		return tensor.Layer{}, fmt.Errorf("layer %q not in %s", layerName, modelName)
	}
	return tensor.Layer{}, fmt.Errorf("unknown model %q", modelName)
}

func pickHW(hwFile string, pes int, gbps float64) (hw.Config, error) {
	if hwFile != "" {
		src, err := os.ReadFile(hwFile)
		if err != nil {
			return hw.Config{}, err
		}
		return hw.ParseConfig(string(src))
	}
	m := noc.Bus(noc.GBpsToElems(gbps, 1, 1))
	m.Reduction = true
	return hw.Config{Name: "cli", NumPEs: pes, NoCs: []noc.Model{m}}.Normalize(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maestro-map:", err)
	os.Exit(1)
}
