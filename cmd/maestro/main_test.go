package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files instead of comparing.
var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestRunGolden pins the full CLI report for the checked-in tiny
// network on the checked-in edge accelerator: the cost model is
// deterministic, so any diff is a behaviour change someone must own.
func TestRunGolden(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-hw", filepath.Join("..", "..", "testdata", "edge.hw"),
		filepath.Join("..", "..", "testdata", "tinynet.m"),
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	golden := filepath.Join("testdata", "tinynet_edge.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/maestro -run TestRunGolden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("CLI output diverged from %s.\n--- got ---\n%s\n--- want ---\n%s\n(regenerate with -update if the change is intentional)",
			golden, buf.Bytes(), want)
	}
}

// compareGolden diffs got against the named golden file, rewriting it
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/maestro -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CLI output diverged from %s.\n--- got ---\n%s\n--- want ---\n%s\n(regenerate with -update if the change is intentional)",
			golden, got, want)
	}
}

// TestRunFusedGolden pins the graph-scheduler report for GoogLeNet on
// the checked-in edge accelerator (256 KiB L2): the group partition,
// the fused-vs-baseline traffic totals, and the sim-replay verification
// line. The scheduler and replay are deterministic, so any diff is a
// fusion behaviour change someone must own.
func TestRunFusedGolden(t *testing.T) {
	var buf bytes.Buffer
	args := []string{
		"-hw", filepath.Join("..", "..", "testdata", "edge.hw"),
		"-model", "GoogLeNet", "-fuse", "-dataflow", "KC-P",
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	compareGolden(t, "googlenet_fuse_edge.golden", buf.Bytes())
}

// TestRunFusedPartialNetwork pins -fuse on a partially annotated
// network file: layers with a Dataflow block keep it, layers without
// one fall back to the auto-tuner instead of failing the run.
func TestRunFusedPartialNetwork(t *testing.T) {
	src := `
Network partial {
  Layer CONV1 {
    Type: CONV2D
    Dimensions { N: 1, K: 16, C: 3, Y: 34, X: 34, R: 3, S: 3 }
    Dataflow {
      SpatialMap(1,1) K;
      TemporalMap(Sz(R),1) Y;
      TemporalMap(Sz(S),1) X;
      TemporalMap(Sz(R),Sz(R)) R;
      TemporalMap(Sz(S),Sz(S)) S;
    }
  }
  Layer CONV2 {
    Type: CONV2D
    Dimensions { N: 1, K: 32, C: 16, Y: 33, X: 33, R: 3, S: 3 }
  }
}
`
	path := filepath.Join(t.TempDir(), "partial.m")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	args := []string{"-hw", filepath.Join("..", "..", "testdata", "edge.hw"), "-fuse", path}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.Bytes())
	}
	if !bytes.Contains(buf.Bytes(), []byte("sim replay: verified")) {
		t.Errorf("fused run on partial network did not verify:\n%s", buf.Bytes())
	}
}

// TestRunUsageGolden pins the -h help text: the flag surface is part of
// the CLI contract, and a new or renamed flag must show up here.
func TestRunUsageGolden(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-h"}, &buf)
	if !errors.Is(err, errUsage) {
		t.Fatalf("run -h = %v, want errUsage", err)
	}
	compareGolden(t, "usage.golden", buf.Bytes())
}

// TestRunUsageErrors pins the error seams main() maps to exit codes.
func TestRunUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); !errors.Is(err, errUsage) {
		t.Fatalf("run with no args = %v, want errUsage", err)
	}
	if err := run([]string{"-pes", "not-a-number", "x.m"}, &buf); !errors.Is(err, errUsage) {
		t.Fatalf("run with bad flag = %v, want errUsage", err)
	}
	if err := run([]string{"does-not-exist.m"}, &buf); err == nil || errors.Is(err, errUsage) {
		t.Fatalf("run on missing file = %v, want a non-usage error", err)
	}
	if err := run([]string{"-noc", "warp", filepath.Join("..", "..", "testdata", "tinynet.m")}, &buf); err == nil {
		t.Fatal("run with unknown NoC kind succeeded, want error")
	}
}
