// Command maestro runs the analytical cost model on a network described
// in the MAESTRO-style DSL.
//
// Usage:
//
//	maestro [-pes N] [-bw GBps] [-l1 bytes] [-l2 bytes] [-noc bus|mesh|tree|systolic|crossbar] network.m
//
// Each Layer block must carry a Dataflow block (or use -dataflow to apply
// one of the built-in Table 3 dataflows to every layer). The tool prints
// the per-layer performance/cost report and a network summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/tuner"
)

// errUsage marks bad invocations; main maps it to exit status 2.
var errUsage = errors.New("usage: maestro [flags] network.m")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "maestro:", err)
	if errors.Is(err, errUsage) {
		os.Exit(2)
	}
	os.Exit(1)
}

// run is the whole tool behind a testable seam: flags in, report out.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("maestro", flag.ContinueOnError)
	pes := fs.Int("pes", 256, "number of processing elements")
	bw := fs.Float64("bw", 32, "NoC bandwidth in GB/s at 1 GHz, 1-byte elements")
	l1 := fs.Int64("l1", 0, "per-PE L1 bytes (0 = size to requirement)")
	l2 := fs.Int64("l2", 0, "shared L2 bytes (0 = size to requirement)")
	nocKind := fs.String("noc", "bus", "NoC topology: bus, mesh, tree, systolic, crossbar")
	hwFile := fs.String("hw", "", "accelerator description file (overrides -pes/-bw/-l1/-l2/-noc)")
	lint := fs.Bool("lint", false, "report mapping inefficiencies per layer")
	csvPath := fs.String("csv", "", "export per-layer results as CSV")
	energyFile := fs.String("energy", "", "per-event energy table file (pJ)")
	dfName := fs.String("dataflow", "", "apply a built-in dataflow (C-P, X-P, YX-P, YR-P, KC-P) to all layers, or 'auto' to tune per layer")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON of the analysis to this file")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if fs.NArg() != 1 {
		return errUsage
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	net, err := dataflow.ParseNetwork(string(src))
	if err != nil {
		return err
	}
	var cfg hw.Config
	if *hwFile != "" {
		hsrc, err := os.ReadFile(*hwFile)
		if err != nil {
			return err
		}
		cfg, err = hw.ParseConfig(string(hsrc))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "network %s on accelerator %s (%d PEs)\n\n", net.Name, cfg.Name, cfg.NumPEs)
	} else {
		m, err := nocModel(*nocKind, *pes, *bw)
		if err != nil {
			return err
		}
		cfg = hw.Config{
			Name: "cli", NumPEs: *pes, L1Size: *l1, L2Size: *l2,
			NoCs: []noc.Model{m},
		}.Normalize()
		fmt.Fprintf(stdout, "network %s on %d PEs, %s NoC at %.0f GB/s\n\n", net.Name, *pes, *nocKind, *bw)
	}
	var etbl *energy.Table
	if *energyFile != "" {
		esrc, err := os.ReadFile(*energyFile)
		if err != nil {
			return err
		}
		tb, err := energy.ParseTable(string(esrc))
		if err != nil {
			return err
		}
		etbl = &tb
	}
	ctx := context.Background()
	var rec *obs.Recorder
	if *tracePath != "" {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}
	var rows []report.Row
	var totalCycles, totalMACs int64
	var totalEnergy float64
	for _, ls := range net.Layers {
		var r *core.Result
		switch {
		case *dfName == "auto":
			ch, err := tuner.TuneLayerCtx(ctx, ls.Layer, cfg, tuner.Options{})
			if err != nil {
				return fmt.Errorf("layer %s: %w", ls.Layer.Name, err)
			}
			fmt.Fprintf(stdout, "auto-tuned mapping: %s\n", ch.Dataflow.Name)
			r = ch.Result
		default:
			df := ls.Dataflow
			if *dfName != "" {
				df = dataflows.Get(*dfName)
			}
			if len(df.Directives) == 0 {
				return fmt.Errorf("layer %s has no dataflow; use -dataflow or add a Dataflow block", ls.Layer.Name)
			}
			var err error
			r, err = core.AnalyzeDataflowCtx(ctx, df, ls.Layer, cfg)
			if err != nil {
				return fmt.Errorf("layer %s: %w", ls.Layer.Name, err)
			}
		}
		fmt.Fprint(stdout, r)
		if *lint {
			df := ls.Dataflow
			if *dfName != "" && *dfName != "auto" {
				df = dataflows.Get(*dfName)
			}
			if warns, err := dataflow.Lint(df, ls.Layer, cfg.NumPEs); err == nil {
				for _, w := range warns {
					fmt.Fprintln(stdout, "  lint:", w)
				}
			}
		}
		fmt.Fprintln(stdout)
		rows = append(rows, report.RowOf(r))
		totalCycles += r.Runtime
		totalMACs += r.MACs
		if etbl != nil {
			totalEnergy += r.Energy(*etbl).OnChip()
		} else {
			totalEnergy += r.EnergyDefault().OnChip()
		}
	}
	fmt.Fprintf(stdout, "network total: %d cycles, %d MACs, %.3e pJ on-chip (%.2f MACs/cycle)\n",
		totalCycles, totalMACs, totalEnergy, float64(totalMACs)/float64(totalCycles))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteCSV(f, rows); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d rows to %s\n", len(rows), *csvPath)
	}
	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d spans to %s\n", rec.Len(), *tracePath)
	}
	return nil
}

func nocModel(kind string, pes int, gbps float64) (noc.Model, error) {
	bwElems := noc.GBpsToElems(gbps, 1, 1)
	var m noc.Model
	switch kind {
	case "bus":
		m = noc.Bus(bwElems)
		m.Reduction = true
	case "mesh":
		n := 1
		for n*n < pes {
			n++
		}
		m = noc.Mesh(n)
	case "tree":
		m = noc.Tree(pes)
	case "systolic":
		m = noc.SystolicRow(pes)
	case "crossbar":
		m = noc.Crossbar(int(bwElems))
	default:
		return noc.Model{}, fmt.Errorf("unknown NoC kind %q", kind)
	}
	return m, nil
}
