// Command maestro runs the analytical cost model on a network described
// in the MAESTRO-style DSL.
//
// Usage:
//
//	maestro [-pes N] [-bw GBps] [-l1 bytes] [-l2 bytes] [-noc bus|mesh|tree|systolic|crossbar] network.m
//
// Each Layer block must carry a Dataflow block (or use -dataflow to apply
// one of the built-in Table 3 dataflows to every layer). The tool prints
// the per-layer performance/cost report and a network summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/tuner"
)

func main() {
	pes := flag.Int("pes", 256, "number of processing elements")
	bw := flag.Float64("bw", 32, "NoC bandwidth in GB/s at 1 GHz, 1-byte elements")
	l1 := flag.Int64("l1", 0, "per-PE L1 bytes (0 = size to requirement)")
	l2 := flag.Int64("l2", 0, "shared L2 bytes (0 = size to requirement)")
	nocKind := flag.String("noc", "bus", "NoC topology: bus, mesh, tree, systolic, crossbar")
	hwFile := flag.String("hw", "", "accelerator description file (overrides -pes/-bw/-l1/-l2/-noc)")
	lint := flag.Bool("lint", false, "report mapping inefficiencies per layer")
	csvPath := flag.String("csv", "", "export per-layer results as CSV")
	energyFile := flag.String("energy", "", "per-event energy table file (pJ)")
	dfName := flag.String("dataflow", "", "apply a built-in dataflow (C-P, X-P, YX-P, YR-P, KC-P) to all layers, or 'auto' to tune per layer")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the analysis to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: maestro [flags] network.m")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	net, err := dataflow.ParseNetwork(string(src))
	if err != nil {
		fatal(err)
	}
	var cfg hw.Config
	if *hwFile != "" {
		hsrc, err := os.ReadFile(*hwFile)
		if err != nil {
			fatal(err)
		}
		cfg, err = hw.ParseConfig(string(hsrc))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("network %s on accelerator %s (%d PEs)\n\n", net.Name, cfg.Name, cfg.NumPEs)
	} else {
		cfg = hw.Config{
			Name: "cli", NumPEs: *pes, L1Size: *l1, L2Size: *l2,
			NoCs: []noc.Model{nocModel(*nocKind, *pes, *bw)},
		}.Normalize()
		fmt.Printf("network %s on %d PEs, %s NoC at %.0f GB/s\n\n", net.Name, *pes, *nocKind, *bw)
	}
	var etbl *energy.Table
	if *energyFile != "" {
		esrc, err := os.ReadFile(*energyFile)
		if err != nil {
			fatal(err)
		}
		tb, err := energy.ParseTable(string(esrc))
		if err != nil {
			fatal(err)
		}
		etbl = &tb
	}
	ctx := context.Background()
	var rec *obs.Recorder
	if *tracePath != "" {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}
	var rows []report.Row
	var totalCycles, totalMACs int64
	var totalEnergy float64
	for _, ls := range net.Layers {
		var r *core.Result
		switch {
		case *dfName == "auto":
			ch, err := tuner.TuneLayerCtx(ctx, ls.Layer, cfg, tuner.Options{})
			if err != nil {
				fatal(fmt.Errorf("layer %s: %w", ls.Layer.Name, err))
			}
			fmt.Printf("auto-tuned mapping: %s\n", ch.Dataflow.Name)
			r = ch.Result
		default:
			df := ls.Dataflow
			if *dfName != "" {
				df = dataflows.Get(*dfName)
			}
			if len(df.Directives) == 0 {
				fatal(fmt.Errorf("layer %s has no dataflow; use -dataflow or add a Dataflow block", ls.Layer.Name))
			}
			var err error
			r, err = core.AnalyzeDataflowCtx(ctx, df, ls.Layer, cfg)
			if err != nil {
				fatal(fmt.Errorf("layer %s: %w", ls.Layer.Name, err))
			}
		}
		fmt.Print(r)
		if *lint {
			df := ls.Dataflow
			if *dfName != "" && *dfName != "auto" {
				df = dataflows.Get(*dfName)
			}
			if warns, err := dataflow.Lint(df, ls.Layer, cfg.NumPEs); err == nil {
				for _, w := range warns {
					fmt.Println("  lint:", w)
				}
			}
		}
		fmt.Println()
		rows = append(rows, report.RowOf(r))
		totalCycles += r.Runtime
		totalMACs += r.MACs
		if etbl != nil {
			totalEnergy += r.Energy(*etbl).OnChip()
		} else {
			totalEnergy += r.EnergyDefault().OnChip()
		}
	}
	fmt.Printf("network total: %d cycles, %d MACs, %.3e pJ on-chip (%.2f MACs/cycle)\n",
		totalCycles, totalMACs, totalEnergy, float64(totalMACs)/float64(totalCycles))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := report.WriteCSV(f, rows); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d rows to %s\n", len(rows), *csvPath)
	}
	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d spans to %s\n", rec.Len(), *tracePath)
	}
}

func nocModel(kind string, pes int, gbps float64) noc.Model {
	bwElems := noc.GBpsToElems(gbps, 1, 1)
	var m noc.Model
	switch kind {
	case "bus":
		m = noc.Bus(bwElems)
		m.Reduction = true
	case "mesh":
		n := 1
		for n*n < pes {
			n++
		}
		m = noc.Mesh(n)
	case "tree":
		m = noc.Tree(pes)
	case "systolic":
		m = noc.SystolicRow(pes)
	case "crossbar":
		m = noc.Crossbar(int(bwElems))
	default:
		fatal(fmt.Errorf("unknown NoC kind %q", kind))
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maestro:", err)
	os.Exit(1)
}
