// Command maestro runs the analytical cost model on a network described
// in the MAESTRO-style DSL, or on a built-in zoo model.
//
// Usage:
//
//	maestro [-pes N] [-bw GBps] [-l1 bytes] [-l2 bytes] [-noc bus|mesh|tree|systolic|crossbar] network.m
//	maestro -model GoogLeNet -fuse -hw edge.hw
//
// Each Layer block must carry a Dataflow block (or use -dataflow to apply
// one of the built-in Table 3 dataflows to every layer). The tool prints
// the per-layer performance/cost report and a network summary. With
// -fuse it runs the graph-level fusion scheduler instead, reporting
// fused vs per-layer DRAM traffic and validating the claims against the
// simulator's band-by-band replay.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/netsched"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

// errUsage marks bad invocations; main maps it to exit status 2.
var errUsage = errors.New("usage: maestro [flags] network.m (or -model NAME)")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "maestro:", err)
	if errors.Is(err, errUsage) {
		os.Exit(2)
	}
	os.Exit(1)
}

// layerJob is one layer to analyze: the per-layer report path works the
// same whether the layer came from a parsed network file (count 1, its
// own Dataflow block) or a zoo model (instance count, no dataflow).
type layerJob struct {
	layer tensor.Layer
	df    dataflow.Dataflow
	count int
}

// run is the whole tool behind a testable seam: flags in, report out.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("maestro", flag.ContinueOnError)
	fs.SetOutput(stdout)
	pes := fs.Int("pes", 256, "number of processing elements")
	bw := fs.Float64("bw", 32, "NoC bandwidth in GB/s at 1 GHz, 1-byte elements")
	l1 := fs.Int64("l1", 0, "per-PE L1 bytes (0 = size to requirement)")
	l2 := fs.Int64("l2", 0, "shared L2 bytes (0 = size to requirement)")
	nocKind := fs.String("noc", "bus", "NoC topology: bus, mesh, tree, systolic, crossbar")
	hwFile := fs.String("hw", "", "accelerator description file (overrides -pes/-bw/-l1/-l2/-noc)")
	lint := fs.Bool("lint", false, "report mapping inefficiencies per layer")
	csvPath := fs.String("csv", "", "export per-layer results as CSV")
	energyFile := fs.String("energy", "", "per-event energy table file (pJ)")
	dfName := fs.String("dataflow", "", "apply a built-in dataflow (C-P, X-P, YX-P, YR-P, KC-P) to all layers, or 'auto' to tune per layer")
	modelName := fs.String("model", "", "analyze a built-in zoo model instead of a network file (see /v1/models or internal/models)")
	fuse := fs.Bool("fuse", false, "run the graph-level fusion scheduler (retention budget = hw L2 size) and report fused vs per-layer DRAM traffic")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON of the analysis to this file")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	// Resolve the workload: a zoo model by name, or a network file.
	var m models.Model
	var net *dataflow.Network
	switch {
	case *modelName != "":
		if fs.NArg() != 0 {
			return errUsage
		}
		var ok bool
		m, ok = models.ByName(*modelName)
		if !ok {
			return fmt.Errorf("unknown model %q (have %s)", *modelName, strings.Join(models.Zoo(), ", "))
		}
	default:
		if fs.NArg() != 1 {
			return errUsage
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		n, err := dataflow.ParseNetwork(string(src))
		if err != nil {
			return err
		}
		net = n
		m = models.Model{Name: n.Name}
		for _, ls := range n.Layers {
			m.Layers = append(m.Layers, models.LayerInst{
				Layer: ls.Layer, Count: 1, Class: models.Classify(ls.Layer),
			})
		}
	}

	var cfg hw.Config
	if *hwFile != "" {
		hsrc, err := os.ReadFile(*hwFile)
		if err != nil {
			return err
		}
		cfg, err = hw.ParseConfig(string(hsrc))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "network %s on accelerator %s (%d PEs)\n\n", m.Name, cfg.Name, cfg.NumPEs)
	} else {
		nm, err := nocModel(*nocKind, *pes, *bw)
		if err != nil {
			return err
		}
		cfg = hw.Config{
			Name: "cli", NumPEs: *pes, L1Size: *l1, L2Size: *l2,
			NoCs: []noc.Model{nm},
		}.Normalize()
		fmt.Fprintf(stdout, "network %s on %d PEs, %s NoC at %.0f GB/s\n\n", m.Name, *pes, *nocKind, *bw)
	}

	if *fuse {
		return runFused(stdout, m, net, cfg, *dfName)
	}

	var etbl *energy.Table
	if *energyFile != "" {
		esrc, err := os.ReadFile(*energyFile)
		if err != nil {
			return err
		}
		tb, err := energy.ParseTable(string(esrc))
		if err != nil {
			return err
		}
		etbl = &tb
	}
	ctx := context.Background()
	var rec *obs.Recorder
	if *tracePath != "" {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}
	var jobs []layerJob
	if net != nil {
		for _, ls := range net.Layers {
			jobs = append(jobs, layerJob{layer: ls.Layer, df: ls.Dataflow, count: 1})
		}
	} else {
		for _, li := range m.Layers {
			jobs = append(jobs, layerJob{layer: li.Layer, count: li.Count})
		}
	}
	var rows []report.Row
	var totalCycles, totalMACs int64
	var totalEnergy float64
	for _, jb := range jobs {
		var r *core.Result
		switch {
		case *dfName == "auto":
			ch, err := tuner.TuneLayerCtx(ctx, jb.layer, cfg, tuner.Options{})
			if err != nil {
				return fmt.Errorf("layer %s: %w", jb.layer.Name, err)
			}
			fmt.Fprintf(stdout, "auto-tuned mapping: %s\n", ch.Dataflow.Name)
			r = ch.Result
		default:
			df := jb.df
			if *dfName != "" {
				df = dataflows.Get(*dfName)
			}
			if len(df.Directives) == 0 {
				return fmt.Errorf("layer %s has no dataflow; use -dataflow or add a Dataflow block", jb.layer.Name)
			}
			var err error
			r, err = core.AnalyzeDataflowCtx(ctx, df, jb.layer, cfg)
			if err != nil {
				return fmt.Errorf("layer %s: %w", jb.layer.Name, err)
			}
		}
		fmt.Fprint(stdout, r)
		if *lint {
			df := jb.df
			if *dfName != "" && *dfName != "auto" {
				df = dataflows.Get(*dfName)
			}
			if warns, err := dataflow.Lint(df, jb.layer, cfg.NumPEs); err == nil {
				for _, w := range warns {
					fmt.Fprintln(stdout, "  lint:", w)
				}
			}
		}
		fmt.Fprintln(stdout)
		rows = append(rows, report.RowOf(r))
		n := int64(jb.count)
		totalCycles += r.Runtime * n
		totalMACs += r.MACs * n
		e := r.EnergyDefault()
		if etbl != nil {
			e = r.Energy(*etbl)
		}
		totalEnergy += e.OnChip() * float64(n)
	}
	fmt.Fprintf(stdout, "network total: %d cycles, %d MACs, %.3e pJ on-chip (%.2f MACs/cycle)\n",
		totalCycles, totalMACs, totalEnergy, float64(totalMACs)/float64(totalCycles))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteCSV(f, rows); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d rows to %s\n", len(rows), *csvPath)
	}
	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d spans to %s\n", rec.Len(), *tracePath)
	}
	return nil
}

// runFused schedules the whole network as a partition of its activation
// DAG, prints the fused-vs-per-layer traffic report, and validates the
// scheduler's DRAM claims against the simulator's band-by-band replay.
func runFused(stdout io.Writer, m models.Model, net *dataflow.Network, cfg hw.Config, dfName string) error {
	opt := netsched.FuseOptions{Options: netsched.Options{L2Bytes: cfg.L2Size}}
	switch dfName {
	case "", "auto":
		if net != nil && dfName == "" {
			// Network files carry per-layer Dataflow blocks; honor them and
			// fall back to the tuner for layers without one.
			byName := make(map[string]dataflow.Dataflow, len(net.Layers))
			for _, ls := range net.Layers {
				if len(ls.Dataflow.Directives) > 0 {
					byName[ls.Layer.Name] = ls.Dataflow
				}
			}
			opt.Dataflow = func(l tensor.Layer) (dataflow.Dataflow, bool) {
				df, ok := byName[l.Name]
				return df, ok
			}
		}
	default:
		if _, ok := dataflows.Sources[dfName]; !ok {
			return fmt.Errorf("unknown dataflow %q (have %s)", dfName, strings.Join(dataflows.Names, ", "))
		}
		df := dataflows.Get(dfName)
		opt.Dataflow = func(tensor.Layer) (dataflow.Dataflow, bool) { return df, true }
	}

	s, err := netsched.RunFused(m, cfg, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "graph schedule: %d groups (%d fused), L2 budget %d bytes\n",
		len(s.Groups), s.FusedGroups(), s.L2Bytes)
	for _, gp := range s.Groups {
		if gp.Fused {
			weights := "weights streamed"
			if gp.WeightsResident {
				weights = "weights resident"
			}
			fmt.Fprintf(stdout, "  [%3d,%3d] fused %d layers: tile %d rows x %d bands, %s, retained %d B, peak %d B\n",
				gp.Lo, gp.Hi, len(gp.Members), gp.TileRows, gp.Bands, weights, gp.RetainedBytes, gp.L2PeakBytes)
		} else {
			fmt.Fprintf(stdout, "  [%3d,%3d] %s\n", gp.Lo, gp.Hi, m.Layers[gp.Lo].Layer.Name)
		}
	}
	pct := func(saved, base int64) float64 {
		if base <= 0 {
			return 0
		}
		return 100 * float64(saved) / float64(base)
	}
	fmt.Fprintf(stdout, "\nfused DRAM traffic:  %d elems (activations %d)\n", s.DRAMTraffic, s.ActTraffic)
	fmt.Fprintf(stdout, "per-layer baseline:  %d elems (activations %d)\n", s.BaselineDRAM, s.BaselineAct)
	fmt.Fprintf(stdout, "saved:               %d elems (%.1f%% of baseline; activations %.1f%%)\n",
		s.DRAMSaved, pct(s.DRAMSaved, s.BaselineDRAM), pct(s.BaselineAct-s.ActTraffic, s.BaselineAct))
	fmt.Fprintf(stdout, "graph runtime: %d cycles, %.3e pJ\n", s.TotalCycles, s.EnergyPJ)

	rep, err := sim.ReplayFused(s)
	if err != nil {
		return fmt.Errorf("sim replay: %w", err)
	}
	if err := rep.Verify(s, 0.02); err != nil {
		return fmt.Errorf("sim replay diverged from scheduler claims: %w", err)
	}
	fmt.Fprintf(stdout, "sim replay: verified (DRAM reads %d, writes %d; claims within 2%%, unfused exact)\n",
		rep.DRAMReads, rep.DRAMWrites)
	return nil
}

func nocModel(kind string, pes int, gbps float64) (noc.Model, error) {
	bwElems := noc.GBpsToElems(gbps, 1, 1)
	var m noc.Model
	switch kind {
	case "bus":
		m = noc.Bus(bwElems)
		m.Reduction = true
	case "mesh":
		n := 1
		for n*n < pes {
			n++
		}
		m = noc.Mesh(n)
	case "tree":
		m = noc.Tree(pes)
	case "systolic":
		m = noc.SystolicRow(pes)
	case "crossbar":
		m = noc.Crossbar(int(bwElems))
	default:
		return noc.Model{}, fmt.Errorf("unknown NoC kind %q", kind)
	}
	return m, nil
}
