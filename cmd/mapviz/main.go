// Command mapviz renders how a dataflow maps tensor data onto PEs over
// time, in the style of the paper's Figures 5 and 6: for each time step
// of a cluster level, the index ranges of each dimension held by each
// sub-cluster.
//
// Usage:
//
//	mapviz [-dataflow YR-P] [-pes 6] [-steps 4] [-level 0]
//	       [-dims "N:1,K:4,C:6,Y:8,X:8,R:3,S:3"]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/tensor"
	"repro/internal/viz"
)

func main() {
	dfName := flag.String("dataflow", "YR-P", "built-in dataflow name (C-P, X-P, YX-P, YR-P, KC-P)")
	pes := flag.Int("pes", 6, "number of PEs")
	steps := flag.Int("steps", 4, "time steps to display")
	level := flag.Int("level", 0, "cluster level to display")
	dims := flag.String("dims", "N:1,K:4,C:6,Y:8,X:8,R:3,S:3", "layer dimensions")
	stride := flag.Int("stride", 1, "convolution stride")
	flag.Parse()

	layer, err := parseLayer(*dims, *stride)
	if err != nil {
		fatal(err)
	}
	df := dataflows.Get(*dfName)
	spec, err := dataflow.Resolve(df, layer, *pes)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataflow %s on %v, %d PEs (%d used)\n", *dfName, layer.Sizes, *pes, spec.UsedPEs())
	fmt.Println(df.String())

	w, err := viz.NewWalker(spec, *level)
	if err != nil {
		fatal(err)
	}
	lv := w.Level()
	fmt.Printf("level %d: %d sub-clusters, %d spatial chunks, %d folds\n\n",
		*level, lv.SubClusters, lv.SpatialChunks, lv.Folds)

	for t := 0; t < *steps; t++ {
		step, ok := w.Next()
		if !ok {
			fmt.Println("(mapping complete)")
			break
		}
		fmt.Printf("time step %d\n", step.Index)
		for _, pe := range step.PEs {
			fmt.Printf("  PE%-3d %s | %s | %s\n", pe.PE,
				viz.TensorRange(layer, tensor.Weight, pe),
				viz.TensorRange(layer, tensor.Input, pe),
				viz.TensorRange(layer, tensor.Output, pe))
		}
	}
}

func parseLayer(spec string, stride int) (tensor.Layer, error) {
	l := tensor.Layer{Name: "viz", Op: tensor.Conv2D, StrideY: stride, StrideX: stride}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return l, fmt.Errorf("bad dim spec %q", part)
		}
		d, err := tensor.ParseDim(kv[0])
		if err != nil {
			return l, err
		}
		v, err := strconv.Atoi(kv[1])
		if err != nil {
			return l, err
		}
		l.Sizes = l.Sizes.Set(d, v)
	}
	l = l.Normalize()
	return l, l.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mapviz:", err)
	os.Exit(1)
}
