package main

import (
	"bytes"
	"errors"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

// -update regenerates the golden files instead of comparing.
var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestUsageGolden pins the -h output — the flag surface is part of the
// CLI contract (scripts parse it), so adding or renaming a flag must
// show up as a reviewed diff here.
func TestUsageGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); !errors.Is(err, errUsage) {
		t.Fatalf("run(-h) = %v, want errUsage", err)
	}
	golden := filepath.Join("testdata", "usage.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/maestro-dse -run TestUsageGolden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("usage diverged from %s.\n--- got ---\n%s\n--- want ---\n%s\n(regenerate with -update if the change is intentional)",
			golden, buf.Bytes(), want)
	}
}

// TestRunUsageErrors pins the error seams main() maps to exit codes.
func TestRunUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-area", "not-a-number"}, &buf); !errors.Is(err, errUsage) {
		t.Fatalf("bad flag = %v, want errUsage", err)
	}
	if err := run([]string{"stray-positional"}, &buf); !errors.Is(err, errUsage) {
		t.Fatalf("positional arg = %v, want errUsage", err)
	}
	if err := run([]string{"-workers", " , "}, &buf); !errors.Is(err, errUsage) {
		t.Fatalf("empty workers list = %v, want errUsage", err)
	}
	if err := run([]string{"-model", "NopeNet"}, &buf); err == nil || errors.Is(err, errUsage) {
		t.Fatalf("unknown model = %v, want a non-usage error", err)
	}
	if err := run([]string{"-dataflow", "WARP-9"}, &buf); err == nil || errors.Is(err, errUsage) {
		t.Fatalf("unknown template = %v, want a non-usage error", err)
	}
	if err := run([]string{"-checkpoint", t.TempDir()}, &buf); !errors.Is(err, errUsage) {
		t.Fatalf("-checkpoint without -workers = %v, want errUsage", err)
	}
	if err := run([]string{"-resume"}, &buf); !errors.Is(err, errUsage) {
		t.Fatalf("-resume without -checkpoint = %v, want errUsage", err)
	}
}

// TestRunFleetQuick drives the -workers path end to end against two
// in-process serve nodes.
func TestRunFleetQuick(t *testing.T) {
	urls := make([]string, 2)
	for i := range urls {
		s := serve.New(serve.Options{Workers: 1})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		urls[i] = ts.URL
	}
	var buf bytes.Buffer
	args := []string{"-quick", "-model", "VGG16", "-layer", "CONV11",
		"-dataflow", "KC-P", "-workers", strings.Join(urls, ",")}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"across 2 nodes", "Pareto frontier:", "throughput-opt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFleetCheckpoint drives -checkpoint/-resume end to end: a clean
// run journals and reports its dispatch split, deletes the journal on
// success, and a -resume rerun finds nothing to replay.
func TestRunFleetCheckpoint(t *testing.T) {
	s := serve.New(serve.Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	dir := t.TempDir()
	args := []string{"-quick", "-model", "VGG16", "-layer", "CONV11",
		"-dataflow", "KC-P", "-workers", ts.URL, "-checkpoint", dir}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, buf.String())
	}
	if out := buf.String(); !strings.Contains(out, "checkpoint: replayed 0 shards, dispatched") {
		t.Fatalf("checkpoint summary missing:\n%s", out)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("journal left behind after a clean run: %v", ents)
	}

	buf.Reset()
	if err := run(append(args, "-resume"), &buf); err != nil {
		t.Fatalf("resume run: %v\n%s", err, buf.String())
	}
	if out := buf.String(); !strings.Contains(out, "checkpoint: replayed 0 shards, dispatched") {
		t.Fatalf("resume with no journal should dispatch everything:\n%s", out)
	}
}
