// Command maestro-dse runs the hardware design-space exploration of the
// paper's Section 5.2 for one layer of a built-in model.
//
// Usage:
//
//	maestro-dse [-model VGG16] [-layer CONV2] [-dataflow KC-P|YR-P|YX-P]
//	            [-area 16] [-power 450] [-quick] [-csv out.csv]
//	            [-progress] [-trace out.json]
//	            [-workers http://host1:8080,http://host2:8080]
//	            [-checkpoint dir [-resume]]
//
// It sweeps PEs, NoC bandwidth, tile sizes and L2 capacity under the
// area/power budget, then prints the throughput-, energy- and
// EDP-optimized design points, the Pareto frontier, and the exploration
// statistics (Figure 13). With -csv the full design space is dumped for
// plotting; -progress reports live designs/sec during the sweep; -trace
// records the sweep as Chrome trace_event JSON for chrome://tracing.
//
// With -workers the sweep is distributed: the design space is sharded
// across the listed maestro-serve nodes and the partial Pareto fronts
// are merged as shards complete (the merged front is identical to a
// local run). In that mode -csv dumps the merged front rather than
// every valid design, since only frontier points cross the wire.
// -checkpoint journals every settled shard to a write-ahead log so a
// killed sweep can be picked back up with -resume, replaying journaled
// shards instead of re-dispatching them (see docs/FLEET.md,
// "Durability & crash recovery").
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/dse"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/serve"
)

// errUsage marks bad invocations; main maps it to exit status 2.
var errUsage = errors.New("usage: maestro-dse [flags]")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "maestro-dse:", err)
	if errors.Is(err, errUsage) {
		os.Exit(2)
	}
	os.Exit(1)
}

// run is the whole tool behind a testable seam: flags in, report out.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("maestro-dse", flag.ContinueOnError)
	fs.SetOutput(stdout)
	modelName := fs.String("model", "VGG16", "model: VGG16, AlexNet, ResNet50, ResNeXt50, MobileNetV2, UNet, DCGAN")
	layerName := fs.String("layer", "CONV2", "layer name within the model")
	dfName := fs.String("dataflow", "KC-P", "dataflow style: KC-P, YR-P, or YX-P")
	area := fs.Float64("area", 16, "area budget in mm²")
	power := fs.Float64("power", 450, "power budget in mW")
	quick := fs.Bool("quick", false, "coarse grids for a fast run")
	csvPath := fs.String("csv", "", "dump all valid designs (fleet mode: the merged Pareto front) to a CSV file")
	progress := fs.Bool("progress", false, "report live exploration progress on stderr")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON of the sweep to this file (fleet mode: one stitched multi-node trace)")
	workers := fs.String("workers", "", "comma-separated maestro-serve base URLs; distribute the sweep across them instead of exploring in-process")
	fleetMetrics := fs.String("fleet-metrics", "", "after a fleet sweep, write a federated Prometheus snapshot of every node's /metrics to this file")
	checkpoint := fs.String("checkpoint", "", "journal completed fleet shards to this directory so an interrupted sweep can be resumed")
	resume := fs.Bool("resume", false, "replay completed shards from the -checkpoint journal instead of re-dispatching them")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if fs.NArg() != 0 {
		return errUsage
	}

	m, ok := modelByName(*modelName)
	if !ok {
		return fmt.Errorf("unknown model %q", *modelName)
	}
	li, ok := m.Find(*layerName)
	if !ok {
		return fmt.Errorf("layer %q not found in %s", *layerName, m.Name)
	}
	tmpl, ok := templateByName(*dfName, *quick)
	if !ok {
		return fmt.Errorf("unknown dataflow template %q", *dfName)
	}

	pes := []int{}
	step := 16
	if *quick {
		step = 64
	}
	for p := step; p <= 1024; p += step {
		pes = append(pes, p)
	}
	bws := []float64{}
	for b := 1.0; b <= 128; b *= 2 {
		bws = append(bws, b, b*1.5)
	}
	l1Grid := dse.DefaultGrid(64, 1<<20, 1.45)
	l2Grid := dse.DefaultGrid(1<<12, 1<<24, 1.4)

	if *resume && *checkpoint == "" {
		return fmt.Errorf("%w: -resume requires -checkpoint", errUsage)
	}
	if *workers != "" {
		return runFleet(fleetArgs{
			hosts: splitHosts(*workers),
			model: m.Name, layer: li.Layer.Name, template: *dfName,
			tmpl: tmpl, pes: pes, bws: bws, l1Grid: l1Grid, l2Grid: l2Grid,
			area: *area, power: *power,
			csvPath: *csvPath, tracePath: *tracePath, progress: *progress,
			metricsPath:   *fleetMetrics,
			checkpointDir: *checkpoint, resume: *resume,
		}, stdout)
	}
	if *fleetMetrics != "" {
		return fmt.Errorf("%w: -fleet-metrics requires -workers", errUsage)
	}
	if *checkpoint != "" {
		return fmt.Errorf("%w: -checkpoint requires -workers", errUsage)
	}

	space := dse.Space{
		Layer:         li.Layer,
		Template:      tmpl,
		PEs:           pes,
		BWs:           bws,
		L1Grid:        l1Grid,
		L2Grid:        l2Grid,
		AreaBudgetMM2: *area,
		PowerBudgetMW: *power,
		Cost:          hw.Default28nm(),
	}
	var rec *obs.Recorder
	if *tracePath != "" {
		rec = obs.NewRecorder()
		space.Ctx = obs.WithRecorder(context.Background(), rec)
	}
	if *progress {
		space.Progress = func(p dse.Progress) {
			fmt.Fprintf(os.Stderr, "\r%d explored, %d priced, %d valid — %.3g designs/s ",
				p.Explored, p.Priced, p.Valid, p.Rate())
		}
	}
	pts, stats := dse.Explore(space)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if rec != nil {
		if err := writeTrace(*tracePath, rec); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d spans to %s\n", rec.Len(), *tracePath)
	}
	fmt.Fprintf(stdout, "%s on %s/%s: %d mappings profiled, %d hardware points priced, %d valid (raw space %d)\n",
		tmpl.Name, m.Name, li.Layer.Name, stats.Invoked, stats.Priced, stats.Valid, stats.Raw)
	fmt.Fprintf(stdout, "explored %d points in %.2fs: %.3g designs/s (%.1f pricings per profile)\n\n",
		stats.Explored, stats.Elapsed.Seconds(), stats.Rate(),
		float64(stats.Priced)/float64(max(stats.Invoked, 1)))

	if len(pts) == 0 {
		fmt.Fprintln(stdout, "no valid designs within budget")
		return nil
	}
	t, ok1 := dse.ThroughputOpt(pts)
	showPoint(stdout, "throughput-opt", t, ok1)
	e, ok2 := dse.EnergyOpt(pts)
	showPoint(stdout, "energy-opt", e, ok2)
	d, ok3 := dse.EDPOpt(pts)
	showPoint(stdout, "edp-opt", d, ok3)
	fmt.Fprintf(stdout, "Pareto frontier: %d of %d evaluated points\n", len(dse.Pareto(pts)), len(pts))

	if *csvPath != "" {
		if err := dumpCSV(*csvPath, pts); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d designs to %s\n", len(pts), *csvPath)
	}
	return nil
}

// fleetArgs carries one distributed invocation's resolved inputs.
type fleetArgs struct {
	hosts                  []string
	model, layer, template string
	tmpl                   dse.Template
	pes                    []int
	bws                    []float64
	l1Grid, l2Grid         []int64
	area, power            float64
	csvPath, tracePath     string
	metricsPath            string
	checkpointDir          string
	progress, resume       bool
}

// runFleet distributes the sweep across maestro-serve nodes and prints
// the merged result in the same shape as a local run.
func runFleet(a fleetArgs, stdout io.Writer) error {
	if len(a.hosts) == 0 {
		return fmt.Errorf("%w: -workers needs at least one host", errUsage)
	}
	opts := fleet.Options{Hosts: a.hosts, CheckpointDir: a.checkpointDir, Resume: a.resume}
	if a.progress {
		opts.OnShard = func(sr fleet.ShardResult) {
			verb := "done on"
			if sr.Replayed {
				verb = "replayed from journal, last run on"
			}
			fmt.Fprintf(os.Stderr, "\rshard %d/%d %s %s (%d designs) ",
				sr.Shard.Index+1, sr.Shard.Of, verb, sr.Host, sr.Resp.Explored)
		}
	}
	f, err := fleet.New(opts)
	if err != nil {
		return err
	}
	defer f.Close()

	ctx := context.Background()
	var rec *obs.Recorder
	if a.tracePath != "" {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}
	res, err := f.Sweep(ctx, serve.DSERequest{
		Layer:         serve.LayerSpec{Model: a.model, Name: a.layer},
		Template:      a.template,
		P1:            a.tmpl.P1,
		P2:            a.tmpl.P2,
		PEs:           a.pes,
		BWs:           a.bws,
		L1Grid:        a.l1Grid,
		L2Grid:        a.l2Grid,
		AreaBudgetMM2: a.area,
		PowerBudgetMW: a.power,
	})
	if a.progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	if rec != nil {
		if err := writeFleetTrace(ctx, f, res.TraceID, rec, a.tracePath, stdout); err != nil {
			return err
		}
	}
	if a.metricsPath != "" {
		fed, ferr := f.FederateMetrics(ctx)
		if ferr != nil {
			return ferr
		}
		if err := os.WriteFile(a.metricsPath, []byte(fed.Text), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote federated metrics for %d nodes to %s\n", len(fed.Up), a.metricsPath)
	}
	if a.checkpointDir != "" {
		fmt.Fprintf(stdout, "checkpoint: replayed %d shards, dispatched %d of %d\n",
			res.Replayed, res.Shards-res.Replayed, res.Shards)
		if res.JournalErrors > 0 {
			fmt.Fprintf(stdout, "warning: %d journal write failures — unjournaled shards re-run on resume\n", res.JournalErrors)
		}
	}
	fmt.Fprintf(stdout, "%s on %s/%s across %d nodes: %d shards, %d mappings profiled, %d hardware points priced, %d valid (raw space %d)\n",
		a.template, a.model, a.layer, len(a.hosts), res.Shards, res.Invoked, res.Pricings, res.Valid, res.Raw)
	fmt.Fprintf(stdout, "explored %d points in %.2fs: %.3g designs/s (%d re-dispatched, %d stolen, %d discarded)\n\n",
		res.Explored, res.Elapsed.Seconds(), res.Rate(), res.Redispatched, res.Stolen, res.Discarded)

	if len(res.Pareto) == 0 {
		fmt.Fprintln(stdout, "no valid designs within budget")
		return nil
	}
	if res.ThroughputOpt != nil {
		showPoint(stdout, "throughput-opt", *res.ThroughputOpt, true)
	}
	if res.EnergyOpt != nil {
		showPoint(stdout, "energy-opt", *res.EnergyOpt, true)
	}
	if res.EDPOpt != nil {
		showPoint(stdout, "edp-opt", *res.EDPOpt, true)
	}
	fmt.Fprintf(stdout, "Pareto frontier: %d points\n", len(res.Pareto))

	if a.csvPath != "" {
		if err := dumpCSV(a.csvPath, res.Pareto); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d designs to %s\n", len(res.Pareto), a.csvPath)
	}
	return nil
}

// splitHosts parses the -workers list, dropping empty entries so
// trailing commas are harmless.
func splitHosts(s string) []string {
	var hosts []string
	for _, h := range strings.Split(s, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	return hosts
}

func showPoint(w io.Writer, tag string, p dse.Point, ok bool) {
	if !ok {
		return
	}
	fmt.Fprintf(w, "%-16s PEs=%-5d BW=%-5.0f L1=%-6dB L2=%-8dB area=%.2fmm² power=%.1fmW  %.1f MAC/cyc  %.3g pJ  EDP %.3g\n",
		tag, p.NumPEs, p.BW, p.L1Bytes, p.L2Bytes, p.AreaMM2, p.PowerMW, p.Throughput, p.EnergyPJ, p.EDP)
}

func modelByName(name string) (models.Model, bool) {
	for _, m := range append(models.EvaluationModels(), models.AlexNet(), models.DCGAN()) {
		if m.Name == name {
			return m, true
		}
	}
	return models.Model{}, false
}

func templateByName(name string, quick bool) (dse.Template, bool) {
	switch name {
	case "KC-P":
		t := dse.Template{Name: "KC-P", Build: dataflows.KCPSized,
			P1: []int{8, 16, 32, 64, 128, 256, 512}, P2: []int{4, 8, 16, 32, 64}}
		if quick {
			t.P1, t.P2 = []int{16, 64}, []int{8, 32}
		}
		return t, true
	case "YR-P":
		t := dse.Template{Name: "YR-P", Build: dataflows.YRPSized,
			P1: []int{1, 2, 4, 8, 16, 32, 64}, P2: []int{1, 2, 4, 8, 16, 32}}
		if quick {
			t.P1, t.P2 = []int{2, 8}, []int{2, 8}
		}
		return t, true
	case "YX-P":
		return dse.Template{Name: "YX-P",
			Build: func(p1, _ int) dataflow.Dataflow { return dataflows.YXPSized(p1) },
			P1:    []int{2, 4, 8, 16}, P2: []int{1}}, true
	}
	return dse.Template{}, false
}

func dumpCSV(path string, pts []dse.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"pes", "bw", "p1", "p2", "l1_bytes", "l2_bytes",
		"area_mm2", "power_mw", "runtime_cycles", "throughput_mac_per_cyc", "energy_pj", "edp"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			strconv.Itoa(p.NumPEs),
			strconv.FormatFloat(p.BW, 'f', -1, 64),
			strconv.Itoa(p.P1), strconv.Itoa(p.P2),
			strconv.FormatInt(p.L1Bytes, 10), strconv.FormatInt(p.L2Bytes, 10),
			strconv.FormatFloat(p.AreaMM2, 'f', 4, 64),
			strconv.FormatFloat(p.PowerMW, 'f', 2, 64),
			strconv.FormatInt(p.Runtime, 10),
			strconv.FormatFloat(p.Throughput, 'f', 2, 64),
			strconv.FormatFloat(p.EnergyPJ, 'e', 4, 64),
			strconv.FormatFloat(p.EDP, 'e', 4, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// writeFleetTrace assembles the stitched multi-node trace for the
// sweep and writes it as Chrome trace JSON, falling back to the
// coordinator-only spans when assembly is impossible (e.g. segment
// stores disabled fleet-wide).
func writeFleetTrace(ctx context.Context, f *fleet.Fleet, traceID string, rec *obs.Recorder, path string, stdout io.Writer) error {
	if traceID != "" {
		ft, err := f.AssembleTrace(ctx, traceID, rec)
		if err == nil && len(ft.Spans) > rec.Len() {
			out, ferr := os.Create(path)
			if ferr != nil {
				return ferr
			}
			if werr := ft.WriteChrome(out); werr != nil {
				out.Close()
				return werr
			}
			if err := out.Close(); err != nil {
				return err
			}
			nodes := 0
			for _, n := range ft.Nodes {
				if n.Err == "" {
					nodes++
				}
			}
			fmt.Fprintf(stdout, "wrote stitched trace %s (%d spans across coordinator + %d nodes, %d dropped) to %s\n",
				ft.TraceID, len(ft.Spans), nodes, ft.Dropped, path)
			return nil
		}
	}
	if err := writeTrace(path, rec); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d spans to %s\n", rec.Len(), path)
	return nil
}

func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
