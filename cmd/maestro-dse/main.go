// Command maestro-dse runs the hardware design-space exploration of the
// paper's Section 5.2 for one layer of a built-in model.
//
// Usage:
//
//	maestro-dse [-model VGG16] [-layer CONV2] [-dataflow KC-P|YR-P|YX-P]
//	            [-area 16] [-power 450] [-quick] [-csv out.csv]
//	            [-progress] [-trace out.json]
//
// It sweeps PEs, NoC bandwidth, tile sizes and L2 capacity under the
// area/power budget, then prints the throughput-, energy- and
// EDP-optimized design points, the Pareto frontier, and the exploration
// statistics (Figure 13). With -csv the full design space is dumped for
// plotting; -progress reports live designs/sec during the sweep; -trace
// records the sweep as Chrome trace_event JSON for chrome://tracing.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/obs"
)

func main() {
	modelName := flag.String("model", "VGG16", "model: VGG16, AlexNet, ResNet50, ResNeXt50, MobileNetV2, UNet, DCGAN")
	layerName := flag.String("layer", "CONV2", "layer name within the model")
	dfName := flag.String("dataflow", "KC-P", "dataflow style: KC-P, YR-P, or YX-P")
	area := flag.Float64("area", 16, "area budget in mm²")
	power := flag.Float64("power", 450, "power budget in mW")
	quick := flag.Bool("quick", false, "coarse grids for a fast run")
	csvPath := flag.String("csv", "", "dump all valid designs to a CSV file")
	progress := flag.Bool("progress", false, "report live exploration progress on stderr")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the sweep to this file")
	flag.Parse()

	m, ok := modelByName(*modelName)
	if !ok {
		fatal(fmt.Errorf("unknown model %q", *modelName))
	}
	li, ok := m.Find(*layerName)
	if !ok {
		fatal(fmt.Errorf("layer %q not found in %s", *layerName, m.Name))
	}
	tmpl, ok := templateByName(*dfName, *quick)
	if !ok {
		fatal(fmt.Errorf("unknown dataflow template %q", *dfName))
	}

	pes := []int{}
	step := 16
	if *quick {
		step = 64
	}
	for p := step; p <= 1024; p += step {
		pes = append(pes, p)
	}
	bws := []float64{}
	for b := 1.0; b <= 128; b *= 2 {
		bws = append(bws, b, b*1.5)
	}
	space := dse.Space{
		Layer:         li.Layer,
		Template:      tmpl,
		PEs:           pes,
		BWs:           bws,
		L1Grid:        dse.DefaultGrid(64, 1<<20, 1.45),
		L2Grid:        dse.DefaultGrid(1<<12, 1<<24, 1.4),
		AreaBudgetMM2: *area,
		PowerBudgetMW: *power,
		Cost:          hw.Default28nm(),
	}
	var rec *obs.Recorder
	if *tracePath != "" {
		rec = obs.NewRecorder()
		space.Ctx = obs.WithRecorder(context.Background(), rec)
	}
	if *progress {
		space.Progress = func(p dse.Progress) {
			fmt.Fprintf(os.Stderr, "\r%d explored, %d priced, %d valid — %.3g designs/s ",
				p.Explored, p.Priced, p.Valid, p.Rate())
		}
	}
	pts, stats := dse.Explore(space)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if rec != nil {
		if err := writeTrace(*tracePath, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d spans to %s\n", rec.Len(), *tracePath)
	}
	fmt.Printf("%s on %s/%s: %d mappings profiled, %d hardware points priced, %d valid (raw space %d)\n",
		tmpl.Name, m.Name, li.Layer.Name, stats.Invoked, stats.Priced, stats.Valid, stats.Raw)
	fmt.Printf("explored %d points in %.2fs: %.3g designs/s (%.1f pricings per profile)\n\n",
		stats.Explored, stats.Elapsed.Seconds(), stats.Rate(),
		float64(stats.Priced)/float64(max(stats.Invoked, 1)))

	if len(pts) == 0 {
		fmt.Println("no valid designs within budget")
		return
	}
	show := func(tag string, p dse.Point, ok bool) {
		if !ok {
			return
		}
		fmt.Printf("%-16s PEs=%-5d BW=%-5.0f L1=%-6dB L2=%-8dB area=%.2fmm² power=%.1fmW  %.1f MAC/cyc  %.3g pJ  EDP %.3g\n",
			tag, p.NumPEs, p.BW, p.L1Bytes, p.L2Bytes, p.AreaMM2, p.PowerMW, p.Throughput, p.EnergyPJ, p.EDP)
	}
	t, ok1 := dse.ThroughputOpt(pts)
	show("throughput-opt", t, ok1)
	e, ok2 := dse.EnergyOpt(pts)
	show("energy-opt", e, ok2)
	d, ok3 := dse.EDPOpt(pts)
	show("edp-opt", d, ok3)
	fmt.Printf("Pareto frontier: %d of %d evaluated points\n", len(dse.Pareto(pts)), len(pts))

	if *csvPath != "" {
		if err := dumpCSV(*csvPath, pts); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d designs to %s\n", len(pts), *csvPath)
	}
}

func modelByName(name string) (models.Model, bool) {
	for _, m := range append(models.EvaluationModels(), models.AlexNet(), models.DCGAN()) {
		if m.Name == name {
			return m, true
		}
	}
	return models.Model{}, false
}

func templateByName(name string, quick bool) (dse.Template, bool) {
	switch name {
	case "KC-P":
		t := dse.Template{Name: "KC-P", Build: dataflows.KCPSized,
			P1: []int{8, 16, 32, 64, 128, 256, 512}, P2: []int{4, 8, 16, 32, 64}}
		if quick {
			t.P1, t.P2 = []int{16, 64}, []int{8, 32}
		}
		return t, true
	case "YR-P":
		t := dse.Template{Name: "YR-P", Build: dataflows.YRPSized,
			P1: []int{1, 2, 4, 8, 16, 32, 64}, P2: []int{1, 2, 4, 8, 16, 32}}
		if quick {
			t.P1, t.P2 = []int{2, 8}, []int{2, 8}
		}
		return t, true
	case "YX-P":
		return dse.Template{Name: "YX-P",
			Build: func(p1, _ int) dataflow.Dataflow { return dataflows.YXPSized(p1) },
			P1:    []int{2, 4, 8, 16}, P2: []int{1}}, true
	}
	return dse.Template{}, false
}

func dumpCSV(path string, pts []dse.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"pes", "bw", "p1", "p2", "l1_bytes", "l2_bytes",
		"area_mm2", "power_mw", "runtime_cycles", "throughput_mac_per_cyc", "energy_pj", "edp"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			strconv.Itoa(p.NumPEs),
			strconv.FormatFloat(p.BW, 'f', -1, 64),
			strconv.Itoa(p.P1), strconv.Itoa(p.P2),
			strconv.FormatInt(p.L1Bytes, 10), strconv.FormatInt(p.L2Bytes, 10),
			strconv.FormatFloat(p.AreaMM2, 'f', 4, 64),
			strconv.FormatFloat(p.PowerMW, 'f', 2, 64),
			strconv.FormatInt(p.Runtime, 10),
			strconv.FormatFloat(p.Throughput, 'f', 2, 64),
			strconv.FormatFloat(p.EnergyPJ, 'e', 4, 64),
			strconv.FormatFloat(p.EDP, 'e', 4, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maestro-dse:", err)
	os.Exit(1)
}
