// maestro-serve runs the MAESTRO cost model as a concurrent HTTP
// analysis service: POST /v1/analyze and /v1/analyze/batch evaluate a
// layer + dataflow + hardware configuration through a canonical-request
// result cache and a bounded worker pool, POST /v1/dse sweeps a design
// space, GET /v1/models lists the model zoo, GET /metrics exposes
// Prometheus-format counters (latency, cache hit ratio, queue depth),
// and GET /debug/trace — served from the private -pprof listener —
// captures a window of live traffic as Chrome trace_event JSON.
//
// Usage:
//
//	maestro-serve [-addr :8080] [-workers N] [-queue N] [-cache N]
//	              [-timeout 15s] [-max-batch N]
//	              [-log-format text|json] [-log-level info]
//	              [-pprof :6060] [-debug-trace]
//
// The trace-capture endpoint lives on the private -pprof listener
// alongside net/http/pprof; -debug-trace opts in to also exposing it on
// the public API address. Every response carries an X-Request-ID header
// (echoing the client's, if supplied) that also tags the access-log
// line and every span of the request's trace. Shutdown is graceful: on
// SIGINT/SIGTERM both listeners stop, in-flight and queued analyses
// drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	node := flag.String("node", "",
		"node name reported in maestro_build_info, /v1/status, and trace segments (default: hostname)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "analysis worker count")
	queue := flag.Int("queue", 256, "work queue depth before 429 backpressure")
	cache := flag.Int("cache", 4096, "result cache entries (negative disables)")
	timeout := flag.Duration("timeout", 15*time.Second, "default per-request deadline")
	maxBatch := flag.Int("max-batch", 256, "max requests per batch call")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline")
	logFormat := flag.String("log-format", "text", "access-log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof and /debug/trace on this private address (empty disables)")
	debugTrace := flag.Bool("debug-trace", false,
		"also expose GET /debug/trace on the public API address")
	chaosErrRate := flag.Float64("chaos-error-rate", 0,
		"fault injection: probability in [0,1] of answering a /v1/* request with -chaos-error-code")
	chaosErrCode := flag.Int("chaos-error-code", 500,
		"fault injection: HTTP status of injected errors")
	chaosLatency := flag.Duration("chaos-latency", 0,
		"fault injection: base added latency per /v1/* request")
	chaosJitter := flag.Duration("chaos-latency-jitter", 0,
		"fault injection: extra uniform random latency in [0, jitter)")
	chaosSeed := flag.Int64("chaos-seed", 0,
		"fault injection: RNG seed for reproducible runs (0 = random)")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maestro-serve:", err)
		os.Exit(2)
	}

	chaos := serve.Chaos{
		ErrorRate:     *chaosErrRate,
		ErrorCode:     *chaosErrCode,
		Latency:       *chaosLatency,
		LatencyJitter: *chaosJitter,
		Seed:          *chaosSeed,
	}
	s := serve.New(serve.Options{
		NodeName:       *node,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		MaxBatch:       *maxBatch,
		Logger:         logger,
		DebugTrace:     *debugTrace,
		Chaos:          chaos,
	})
	if *chaosErrRate > 0 || *chaosLatency > 0 || *chaosJitter > 0 {
		logger.Warn("chaos fault injection enabled",
			"error_rate", *chaosErrRate, "error_code", *chaosErrCode,
			"latency", *chaosLatency, "jitter", *chaosJitter, "seed", *chaosSeed)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofSrv = newPprofServer(*pprofAddr, s)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	// The listener goroutine reports only *real* failures: ErrServerClosed
	// is the normal result of Shutdown and must never race the signal
	// path into a fatal exit.
	errCh := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		errCh <- err
	}()
	logger.Info("listening", "addr", *addr, "workers", *workers,
		"queue", *queue, "cache_entries", *cache)

	select {
	case err := <-errCh:
		if err != nil {
			logger.Error("listen failed", "error", err)
			os.Exit(1)
		}
		return // listener closed without a signal; nothing left to drain
	case <-ctx.Done():
	}

	logger.Info("shutting down: draining connections and queued work", "max", *drain)
	// Flip readiness first: /healthz answers 503 from here on, so load
	// balancers and fleet probers stop routing new work while the
	// listener finishes in-flight requests below.
	s.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "error", err)
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("pprof shutdown", "error", err)
		}
	}
	s.Close() // drain the worker pool
	logger.Info("bye")
}

// buildLogger assembles the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (have text, json)", format)
}

// newPprofServer builds the private debug server: the net/http/pprof
// handlers plus the span-capture endpoint, on a dedicated mux so the
// profiling surface never shares a listener with the service API. It is
// a real http.Server so shutdown drains it alongside the main listener.
func newPprofServer(addr string, s *serve.Server) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/trace", s.DebugTraceHandler())
	mux.Handle("/debug/trace/segments", s.SegmentsHandler())
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
}
