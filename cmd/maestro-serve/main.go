// maestro-serve runs the MAESTRO cost model as a concurrent HTTP
// analysis service: POST /v1/analyze and /v1/analyze/batch evaluate a
// layer + dataflow + hardware configuration through a canonical-request
// result cache and a bounded worker pool, POST /v1/dse sweeps a design
// space, GET /v1/models lists the model zoo, and GET /metrics exposes
// Prometheus-format counters (latency, cache hit ratio, queue depth).
//
// Usage:
//
//	maestro-serve [-addr :8080] [-workers N] [-queue N] [-cache N]
//	              [-timeout 15s] [-max-batch N]
//
// Shutdown is graceful: on SIGINT/SIGTERM the listener stops, in-flight
// and queued analyses drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "analysis worker count")
	queue := flag.Int("queue", 256, "work queue depth before 429 backpressure")
	cache := flag.Int("cache", 4096, "result cache entries (negative disables)")
	timeout := flag.Duration("timeout", 15*time.Second, "default per-request deadline")
	maxBatch := flag.Int("max-batch", 256, "max requests per batch call")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline")
	flag.Parse()

	s := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		MaxBatch:       *maxBatch,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("maestro-serve listening on %s (%d workers, queue %d, cache %d entries)",
		*addr, *workers, *queue, *cache)

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining connections and queued work (max %s)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	s.Close() // drain the worker pool
	log.Printf("bye")
}
