package maestro_test

import (
	"fmt"

	maestro "repro"
)

// ExampleAnalyze prices one layer under a Table 3 dataflow and checks
// the mapping's exactness invariants.
func ExampleAnalyze() {
	layer := maestro.Conv2D("conv", 16, 8, 14, 3, 1)
	df := maestro.DataflowByName("KC-P")
	r, err := maestro.Analyze(df, layer, maestro.MAERI64())
	if err != nil {
		panic(err)
	}
	fmt.Println("MACs:", r.MACs)
	fmt.Println("exact:", r.CheckConservation() == nil)
	// Output:
	// MACs: 225792
	// exact: true
}

// ExampleParseDataflow builds a mapping from DSL text; symbolic Sz(...)
// sizes bind at resolution time.
func ExampleParseDataflow() {
	df, err := maestro.ParseDataflow("ws", `
		TemporalMap(1,1) K;
		SpatialMap(Sz(R),1) Y;
		TemporalMap(Sz(S),1) X;
	`)
	if err != nil {
		panic(err)
	}
	fmt.Print(df)
	// Output:
	// TemporalMap(1,1) K;
	// SpatialMap(Sz(R),1) Y;
	// TemporalMap(Sz(S),1) X;
}

// ExampleLint diagnoses mapping inefficiencies before paying for them.
func ExampleLint() {
	layer := maestro.Conv2D("conv", 16, 3, 14, 3, 1)
	df, _ := maestro.ParseDataflow("cp", `
		SpatialMap(1,1) C;
		TemporalMap(Sz(R),1) Y;
		TemporalMap(Sz(S),1) X;
	`)
	warns, err := maestro.Lint(df, layer, 64)
	if err != nil {
		panic(err)
	}
	for _, w := range warns {
		fmt.Println(w.Code)
	}
	// Output:
	// under-filled
}

// ExampleResult_ReuseFactor shows the Figure 11 reuse metric: local
// accesses per shared-scratchpad fetch.
func ExampleResult_ReuseFactor() {
	layer := maestro.Conv2D("conv", 16, 8, 14, 3, 1)
	r, _ := maestro.Analyze(maestro.DataflowByName("X-P"), layer, maestro.MAERI64())
	fmt.Printf("weight reuse ≥ 1: %v\n", r.ReuseFactor(maestro.Weight) >= 1)
	// Output:
	// weight reuse ≥ 1: true
}

// ExampleParseHWConfig reads an accelerator description.
func ExampleParseHWConfig() {
	cfg, err := maestro.ParseHWConfig(`
		name: demo
		pes: 32
		noc: bus bandwidth=8 reduction=true
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(cfg.Name, cfg.NumPEs, cfg.NoCAt(0).Bandwidth)
	// Output:
	// demo 32 8
}
