package experiments

import (
	"fmt"
	"io"

	"repro/internal/dataflows"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/models"
)

// Fig12 reproduces the energy breakdown (Figure 12): MAC and L1/L2
// scratchpad access energy of the five dataflows on VGG16 CONV1 (early)
// and CONV11 (late), normalized to the MAC energy of the C-P dataflow,
// using the built-in Cacti-substitute table (2 KB L1, 1 MB L2 at 28 nm,
// matching the paper's Cacti setup).
func Fig12(w io.Writer, _ Options) error {
	cfg := hw.Accel256()
	tbl := energy.DefaultTable(2*1024, 1<<20)
	vgg := models.VGG16()
	fmt.Fprintln(w, "Figure 12: energy breakdown normalized to C-P MAC energy (VGG16)")
	for _, name := range []string{"CONV1", "CONV11"} {
		li, ok := vgg.Find(name)
		if !ok {
			return fmt.Errorf("fig12: %s not found", name)
		}
		// The normalization base: MAC energy of the C-P mapping.
		base := analyzeOrSkip(dataflows.Get("C-P"), li.Layer, cfg)
		if base == nil {
			return fmt.Errorf("fig12: C-P failed on %s", name)
		}
		macBase := tbl.Split(base.Activity()).MAC
		fmt.Fprintf(w, "\nVGG16 %s  [%v]\n", name, li.Layer.Sizes)
		tw := newTab(w)
		fmt.Fprintln(tw, "dataflow\tMAC\tL1 read\tL1 write\tL2 read\tL2 write\tNoC\ttotal")
		for _, df := range dataflows.All() {
			r := analyzeOrSkip(df, li.Layer, cfg)
			if r == nil {
				fmt.Fprintf(tw, "%s\t-\n", df.Name)
				continue
			}
			b := tbl.Split(r.Activity())
			fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", df.Name,
				b.MAC/macBase, b.L1Read/macBase, b.L1Write/macBase,
				b.L2Read/macBase, b.L2Write/macBase, b.NoC/macBase, b.OnChip()/macBase)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\n(values are multiples of the C-P mapping's total MAC energy;")
	fmt.Fprintln(w, " the paper's plot normalizes the same way)")
	return nil
}
