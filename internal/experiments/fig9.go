package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Fig9 reproduces the paper's model validation (Figure 9): the analytical
// model against an execution-driven reference — the paper uses MAERI RTL
// (VGG16, 64 PEs) and the Eyeriss chip (AlexNet, 168 PEs); this
// repository substitutes the step-accurate simulator of internal/sim.
// The paper reports a 3.9% average absolute runtime error.
func Fig9(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Figure 9: runtime validation, analytical model vs step-accurate simulator")
	avg1, err := fig9Model(w, models.VGG16(), dataflows.Get("KC-P"), hw.MAERI64(), "VGG16 / MAERI-64", opt)
	if err != nil {
		return err
	}
	avg2, err := fig9Model(w, models.AlexNet(), dataflows.Get("YR-P"), hw.Eyeriss168(), "AlexNet / Eyeriss-168", opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "overall average absolute error: %.2f%% (paper reports 3.9%% vs RTL)\n",
		(avg1+avg2)/2)
	return nil
}

func fig9Model(w io.Writer, m models.Model, df dataflow.Dataflow, cfg hw.Config, title string, opt Options) (float64, error) {
	fmt.Fprintf(w, "\n%s (%s dataflow)\n", title, df.Name)
	tw := newTab(w)
	fmt.Fprintln(tw, "layer\tanalytical (cyc)\tsimulated (cyc)\terror")
	var sumErr float64
	n := 0
	for _, li := range m.Layers {
		if li.Layer.Op != tensor.Conv2D {
			continue
		}
		if opt.Quick && n >= 3 {
			break
		}
		spec, err := dataflow.Resolve(df, li.Layer, cfg.NumPEs)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", li.Layer.Name, err)
		}
		ana, err := core.Analyze(spec, cfg)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", li.Layer.Name, err)
		}
		sr, err := sim.Simulate(spec, cfg)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", li.Layer.Name, err)
		}
		e := 100 * math.Abs(float64(ana.OnChipRuntime)-float64(sr.Cycles)) / float64(sr.Cycles)
		sumErr += e
		n++
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f%%\n", li.Layer.Name, ana.OnChipRuntime, sr.Cycles, e)
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	avg := sumErr / float64(n)
	fmt.Fprintf(w, "average absolute error: %.2f%%\n", avg)
	return avg, nil
}
