package experiments

import (
	"fmt"
	"io"

	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

// fig11Op is one representative operator of Figure 11.
type fig11Op struct {
	title string
	layer tensor.Layer
}

// fig11Ops returns the four representative operators the paper selects:
// early layer (ResNet50 CONV1), late layer (VGG16 CONV13), depth-wise
// (grouped 3x3 of ResNeXt50 CONV2), point-wise (first convolution of a
// MobileNetV2 bottleneck).
func fig11Ops() []fig11Op {
	r50, _ := models.ResNet50().Find("CONV1")
	vgg, _ := models.VGG16().Find("CONV13")
	rx, _ := models.ResNeXt50().Find("CONV2_g3x3")
	mb, _ := models.MobileNetV2().Find("B2_exp")
	return []fig11Op{
		{"Early layer (ResNet50 CONV1)", r50.Layer},
		{"Late layer (VGG16 CONV13)", vgg.Layer},
		{"Depth-wise (ResNeXt50 CONV2 grouped 3x3)", rx.Layer},
		{"Point-wise (MobileNetV2 bottleneck2 expand)", mb.Layer},
	}
}

// Fig11 reproduces the reuse study (Figure 11): activation and filter
// reuse factors (local accesses per L2 fetch, log scale in the paper) and
// the NoC bandwidth each dataflow needs to sustain peak throughput, for
// four representative operators on 256 PEs, including the algorithmic
// maximum ("A" in the paper).
func Fig11(w io.Writer, _ Options) error {
	cfg := hw.Accel256()
	fmt.Fprintln(w, "Figure 11: reuse factors and NoC bandwidth requirements (256 PEs)")
	for _, op := range fig11Ops() {
		fmt.Fprintf(w, "\n%s  [%v]\n", op.title, op.layer.Sizes)
		tw := newTab(w)
		fmt.Fprintln(tw, "dataflow\tactivation reuse\tfilter reuse\tNoC BW req (GB/s)")
		for _, df := range dataflows.All() {
			r := analyzeOrSkip(df, op.layer, cfg)
			if r == nil {
				fmt.Fprintf(tw, "%s\t-\t-\t-\n", df.Name)
				continue
			}
			fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\n",
				df.Name, r.ReuseFactor(tensor.Input), r.ReuseFactor(tensor.Weight), r.PeakBWGBps())
		}
		fmt.Fprintf(tw, "A (algorithmic max)\t%.1f\t%.1f\t-\n",
			op.layer.AlgorithmicReuse(tensor.Input), op.layer.AlgorithmicReuse(tensor.Weight))
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
