package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/reuse"
	"repro/internal/tensor"
)

// Table1 regenerates the paper's Table 1: for each spatially mapped
// dimension and each innermost temporally mapped dimension, which tensors
// are coupled and which reuse opportunity (multicast/reduction) the
// mapping exposes. The entries are derived by the reuse engine itself —
// this is the machine-checked version of the paper's hand-built table.
func Table1(w io.Writer, _ Options) error {
	layer := tensor.Layer{
		Name: "ref", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 8, tensor.C: 8, tensor.Y: 12, tensor.X: 12, tensor.R: 3, tensor.S: 3},
	}.Normalize()

	fmt.Fprintln(w, "Table 1: spatial reuse opportunities by spatially mapped dimension")
	tw := newTab(w)
	fmt.Fprintln(tw, "mapped dim\tcoupling F/I/O\treuse opportunity")
	for _, d := range []tensor.Dim{tensor.K, tensor.C, tensor.R, tensor.Y} {
		size := dataflow.Lit(1)
		if wd, ok := d.Window(); ok {
			size = dataflow.Sz(wd) // sliding dims carry one full window per PE
		}
		df := dataflow.Dataflow{Directives: []dataflow.Directive{
			dataflow.SMap(size, dataflow.Lit(1), d),
		}}
		spec, err := dataflow.Resolve(df, layer, 4)
		if err != nil {
			return err
		}
		lv, err := spec.Level(0, layer.Sizes)
		if err != nil {
			return err
		}
		a := reuse.New(lv, layer)
		var opp string
		for _, k := range tensor.AllKinds() {
			if a.SpatiallyVaries(k) {
				continue
			}
			name := map[tensor.Kind]string{tensor.Weight: "F", tensor.Input: "I", tensor.Output: "O"}[k]
			if k == tensor.Output {
				opp += name + ":reduction "
			} else {
				opp += name + ":multicast "
			}
		}
		fmt.Fprintf(tw, "%s\t%s %s %s\t%s\n", d,
			coupling(layer, tensor.Weight, d), coupling(layer, tensor.Input, d), coupling(layer, tensor.Output, d), opp)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nTable 1 (right): temporal reuse by innermost temporally mapped dimension")
	tw = newTab(w)
	fmt.Fprintln(tw, "innermost dim\treuse opportunity")
	for _, d := range []tensor.Dim{tensor.K, tensor.C, tensor.R, tensor.Y} {
		var opp string
		for _, k := range tensor.AllKinds() {
			coupled := layer.TensorDims(k).Has(d) ||
				(k == tensor.Output && (d == tensor.R || d == tensor.S))
			if coupled {
				continue
			}
			name := map[tensor.Kind]string{tensor.Weight: "F", tensor.Input: "I", tensor.Output: "O"}[k]
			if k == tensor.Output {
				opp += name + ":temporal-reduction "
			} else {
				opp += name + ":temporal-multicast "
			}
		}
		fmt.Fprintf(tw, "%s\t%s\n", d, opp)
	}
	return tw.Flush()
}

func coupling(l tensor.Layer, k tensor.Kind, d tensor.Dim) string {
	if l.TensorDims(k).Has(d) {
		return "y"
	}
	return "."
}

// Table3 prints the five dataflow definitions in DSL form, as parsed and
// re-rendered by the front end (proving they round-trip).
func Table3(w io.Writer, _ Options) error {
	fmt.Fprintln(w, "Table 3: the five evaluated dataflows (data-centric directives)")
	for _, name := range dataflows.Names {
		df := dataflows.Get(name)
		fmt.Fprintf(w, "\n[%s]\n%s", name, df.String())
	}
	return nil
}

// Table4 prints the operator taxonomy of the model zoo: per model, how
// many layer instances fall into each Table 4 class.
func Table4(w io.Writer, _ Options) error {
	fmt.Fprintln(w, "Table 4: DNN operator taxonomy across the model zoo")
	tw := newTab(w)
	fmt.Fprint(tw, "model")
	for c := models.Class(0); c < models.NumClasses; c++ {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw, "\ttotal MACs")
	zoo := append(models.EvaluationModels(), models.AlexNet(), models.DCGAN())
	for _, m := range zoo {
		var counts [models.NumClasses]int
		for _, li := range m.Layers {
			counts[li.Class] += li.Count
		}
		fmt.Fprintf(tw, "%s", m.Name)
		for _, n := range counts {
			fmt.Fprintf(tw, "\t%d", n)
		}
		fmt.Fprintf(tw, "\t%s\n", fmtEng(float64(m.MACs())))
	}
	return tw.Flush()
}

// Table5 reproduces the hardware-support ablation (Table 5): the impact
// of spatial multicast and reduction capability and NoC bandwidth on a
// KC-P design running VGG16 CONV2.
func Table5(w io.Writer, _ Options) error {
	vgg := models.VGG16()
	li, _ := vgg.Find("CONV2")
	df := dataflows.KCPSized(64, 8)

	type design struct {
		name                 string
		bw                   float64
		multicast, reduction bool
	}
	designs := []design{
		{"Reference", 40, true, true},
		{"Small bandwidth", 24, true, true},
		{"No multicast", 40, false, true},
		{"No sp. reduction", 40, true, false},
	}
	fmt.Fprintln(w, "Table 5: impact of multicast/reduction support, bandwidth and buffers")
	fmt.Fprintln(w, "(KC-P style on VGG16 CONV2, 56 PEs)")
	tw := newTab(w)
	fmt.Fprintln(tw, "design\tBW\tmulticast\treduction\tthroughput MAC/cyc\tenergy (x1e9 MAC)\tbuffer KB")
	for _, d := range designs {
		m := noc.Model{Name: "t5", Bandwidth: d.bw, AvgLatency: 2, Multicast: d.multicast, Reduction: d.reduction}
		cfg := hw.Config{Name: "t5", NumPEs: 56, NoCs: []noc.Model{m}}.Normalize()
		r, err := core.AnalyzeDataflow(df, li.Layer, cfg)
		if err != nil {
			return err
		}
		e := r.Energy(energy.DefaultTable(r.L1ReqBytes(), r.L2ReqBytes()))
		fmt.Fprintf(tw, "%s\t%.0f\t%v\t%v\t%.2f\t%.2f\t%.2f\n",
			d.name, d.bw, d.multicast, d.reduction,
			r.Throughput(), e.OnChip()/1e9, float64(r.L2ReqBytes())/1024)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper: throughput 48.6 -> 34.5 with small BW; ~47% energy increase without")
	fmt.Fprintln(w, " multicast or spatial-reduction support)")
	return nil
}
