package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataflows"
	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/report"
	"repro/internal/tensor"
)

// fig13Space builds the DSE search space for one dataflow template and
// layer under the Eyeriss-class budget the paper applies (16 mm²,
// 450 mW).
func fig13Space(template dse.Template, layer tensor.Layer, quick bool) dse.Space {
	pes := []int{}
	step := 16
	if quick {
		step = 64
	}
	for p := step; p <= 1024; p += step {
		pes = append(pes, p)
	}
	bws := []float64{}
	for b := 1.0; b <= 128; b *= 2 {
		bws = append(bws, b, b*1.5)
	}
	if quick {
		bws = []float64{4, 16, 64}
	}
	return dse.Space{
		Layer:         layer,
		Template:      template,
		PEs:           pes,
		BWs:           bws,
		L1Grid:        dse.DefaultGrid(64, 1<<20, 1.45),
		L2Grid:        dse.DefaultGrid(1<<12, 1<<24, 1.4),
		AreaBudgetMM2: 16,
		PowerBudgetMW: 450,
		Cost:          hw.Default28nm(),
	}
}

// kcpTemplate and yrpTemplate are the two dataflow styles Figure 13
// explores, with their tile-size knobs.
func kcpTemplate(quick bool) dse.Template {
	t := dse.Template{
		Name:  "KC-P",
		Build: dataflows.KCPSized,
		P1:    []int{8, 16, 32, 64, 128, 256, 512},
		P2:    []int{4, 8, 16, 32, 64},
	}
	if quick {
		t.P1, t.P2 = []int{16, 64}, []int{8, 32}
	}
	return t
}

func yrpTemplate(quick bool) dse.Template {
	t := dse.Template{
		Name:  "YR-P",
		Build: dataflows.YRPSized,
		P1:    []int{1, 2, 4, 8, 16, 32, 64},
		P2:    []int{1, 2, 4, 8, 16, 32},
	}
	if quick {
		t.P1, t.P2 = []int{2, 8}, []int{2, 8}
	}
	return t
}

// Fig13Run is one of the four DSE runs of Figure 13.
type Fig13Run struct {
	Dataflow string
	Layer    string
	Points   []dse.Point
	Stats    dse.Stats
}

// RunFig13 executes the four DSE runs (KC-P and YR-P on VGG16 CONV2 and
// CONV11) and returns their design spaces for printing or plotting.
func RunFig13(opt Options) ([]Fig13Run, error) {
	vgg := models.VGG16()
	var runs []Fig13Run
	for _, layerName := range []string{"CONV2", "CONV11"} {
		li, ok := vgg.Find(layerName)
		if !ok {
			return nil, fmt.Errorf("fig13: %s not found", layerName)
		}
		for _, tmpl := range []dse.Template{kcpTemplate(opt.Quick), yrpTemplate(opt.Quick)} {
			pts, stats := dse.Explore(fig13Space(tmpl, li.Layer, opt.Quick))
			runs = append(runs, Fig13Run{
				Dataflow: tmpl.Name, Layer: "VGG16-" + layerName,
				Points: pts, Stats: stats,
			})
		}
	}
	return runs, nil
}

// WriteFig13CSVs dumps each DSE run's design space as CSV into dir, for
// regenerating the Figure 13 scatter plots with external tooling.
func WriteFig13CSVs(dir string, runs []Fig13Run) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, run := range runs {
		name := strings.ToLower(run.Dataflow + "_" + run.Layer + ".csv")
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := report.WriteDSECSV(f, run.Points); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Fig13 reproduces the design-space exploration study (Figure 13): the
// KC-P and YR-P design spaces of an early (VGG16 CONV2) and a late
// (VGG16 CONV11) layer under a 16 mm² / 450 mW budget, the
// throughput- and energy-optimized designs, and the DSE statistics table
// of Figure 13(c).
func Fig13(w io.Writer, opt Options) error {
	runs, err := RunFig13(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 13: DSE under 16 mm² / 450 mW (Eyeriss-class budget)")
	for _, run := range runs {
		fmt.Fprintf(w, "\n%s dataflow on %s: %d valid designs\n", run.Dataflow, run.Layer, len(run.Points))
		if len(run.Points) == 0 {
			continue
		}
		thr, _ := dse.ThroughputOpt(run.Points)
		eng, _ := dse.EnergyOpt(run.Points)
		tw := newTab(w)
		fmt.Fprintln(tw, "design\tPEs\tNoC BW\tL1/PE\tL2\tarea mm²\tpower mW\tthroughput MAC/cyc\tenergy (x1e9 MAC)")
		pr := func(tag string, p dse.Point) {
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%dB\t%s\t%.2f\t%.1f\t%.1f\t%.2f\n",
				tag, p.NumPEs, p.BW, p.L1Bytes, fmtEng(float64(p.L2Bytes)),
				p.AreaMM2, p.PowerMW, p.Throughput, p.EnergyPJ/1e9)
		}
		pr("throughput-opt", thr)
		pr("energy-opt", eng)
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(w, "Pareto frontier: %d points\n", len(dse.Pareto(run.Points)))
	}

	fmt.Fprintln(w, "\n(c) DSE statistics")
	tw := newTab(w)
	fmt.Fprintln(tw, "run\tvalid designs\texplored (incl. pruned)\tMAESTRO invocations\ttime\trate (designs/s)")
	var totRaw, totValid int64
	var totRate float64
	for _, run := range runs {
		st := run.Stats
		fmt.Fprintf(tw, "%s %s\t%d\t%d\t%d\t%.2fs\t%s\n",
			run.Dataflow, run.Layer, st.Valid, st.Explored, st.Invoked,
			st.Elapsed.Seconds(), fmtEng(st.Rate()))
		totRaw += st.Raw
		totValid += st.Valid
		totRate += st.Rate()
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "total raw space %s designs, %s valid, average rate %s designs/s\n",
		fmtEng(float64(totRaw)), fmtEng(float64(totValid)), fmtEng(totRate/float64(len(runs))))
	fmt.Fprintln(w, "(paper: 480M searched, 2.5M valid, 0.17M designs/s average)")
	return nil
}

// Headline reproduces the abstract's headline comparison: for the
// KC-P (NVDLA-like) dataflow on VGG16 CONV11, the energy- versus
// throughput-optimized design points (the paper reports up to 2.16x
// power difference, 10.6x more SRAM and 80% of the PEs on the
// energy-optimized design, 65% EDP improvement at 62% throughput).
func Headline(w io.Writer, opt Options) error {
	vgg := models.VGG16()
	li, _ := vgg.Find("CONV11")
	pts, _ := dse.Explore(fig13Space(kcpTemplate(opt.Quick), li.Layer, opt.Quick))
	if len(pts) == 0 {
		return fmt.Errorf("headline: empty design space")
	}
	thr, _ := dse.ThroughputOpt(pts)
	eng, _ := dse.EnergyOpt(pts)
	fmt.Fprintln(w, "Headline: KC-P on VGG16 CONV11, throughput- vs EDP/energy-optimized designs")
	tw := newTab(w)
	fmt.Fprintln(tw, "metric\tthroughput-opt\tenergy-opt\tratio")
	rows := []struct {
		name   string
		a, b   float64
		format string
	}{
		{"PEs", float64(thr.NumPEs), float64(eng.NumPEs), "%.0f"},
		{"total SRAM (KB)", float64(thr.L1Bytes*int64(thr.NumPEs)+thr.L2Bytes) / 1024,
			float64(eng.L1Bytes*int64(eng.NumPEs)+eng.L2Bytes) / 1024, "%.1f"},
		{"power (mW)", thr.PowerMW, eng.PowerMW, "%.1f"},
		{"throughput (MAC/cyc)", thr.Throughput, eng.Throughput, "%.1f"},
		{"EDP (pJ*cyc)", thr.EDP, eng.EDP, "%.3g"},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t"+r.format+"\t"+r.format+"\t%.2fx\n", r.name, r.a, r.b, r.b/r.a)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "energy-opt runs at %.0f%% throughput with %.0f%% EDP of the throughput-opt design\n",
		100*eng.Throughput/thr.Throughput, 100*eng.EDP/thr.EDP)
	fmt.Fprintln(w, "(paper: 2.16x power, 10.6x SRAM, 80% PEs, 65% EDP improvement, 62% throughput)")
	return nil
}
