package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/hetero"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

// The ablations quantify the design choices DESIGN.md calls out beyond
// the paper's own Table 5: NoC topology, ALU vector width, uniform
// sparsity (Section 4.4), PE scaling, and the auto-tuner (Section 7's
// future work) against fixed and adaptive dataflows.

// AblationNoC compares the NoC topologies of Table 2's implementation
// choices on one layer under the KC-P dataflow.
func AblationNoC(w io.Writer, _ Options) error {
	vgg := models.VGG16()
	li, _ := vgg.Find("CONV5")
	fmt.Fprintln(w, "Ablation: NoC topology (VGG16 CONV5, KC-P, 256 PEs)")
	topos := []struct {
		name string
		m    noc.Model
	}{
		{"bus-32", withRed(noc.Bus(32))},
		{"crossbar-32", withRed(noc.Crossbar(32))},
		{"mesh-16x16", withRed(noc.Mesh(16))},
		{"tree-256", noc.Tree(256)},
		{"systolic-256", noc.SystolicRow(256)},
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "topology\tbandwidth\tlatency\truntime (cyc)\tutilization\tbottleneck")
	for _, tp := range topos {
		cfg := hw.Config{Name: tp.name, NumPEs: 256, NoCs: []noc.Model{tp.m}}.Normalize()
		r, err := core.AnalyzeDataflow(dataflows.Get("KC-P"), li.Layer, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.0f/cyc\t%d\t%d\t%.1f%%\t%s\n",
			tp.name, tp.m.Bandwidth, tp.m.AvgLatency, r.Runtime, 100*r.Utilization(), r.Bottleneck)
	}
	return tw.Flush()
}

func withRed(m noc.Model) noc.Model {
	m.Reduction = true
	return m
}

// AblationSparsity sweeps the uniform weight/activation density of
// Section 4.4 and reports how runtime and energy scale.
func AblationSparsity(w io.Writer, _ Options) error {
	base := models.VGG16()
	li, _ := base.Find("CONV8")
	cfg := hw.Accel256()
	fmt.Fprintln(w, "Ablation: uniform sparsity (VGG16 CONV8, KC-P)")
	tw := newTab(w)
	fmt.Fprintln(tw, "weight density\tactivation density\truntime (cyc)\teffective MACs\tenergy (uJ)")
	for _, d := range []float64{1.0, 0.75, 0.5, 0.25, 0.1} {
		l := li.Layer
		l.Density[tensor.Weight] = d
		l.Density[tensor.Input] = (1 + d) / 2
		r, err := core.AnalyzeDataflow(dataflows.Get("KC-P"), l, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%.2f\t%.2f\t%d\t%d\t%.1f\n",
			d, (1+d)/2, r.Runtime, r.Activity().MACs, r.EnergyDefault().OnChip()/1e6)
	}
	return tw.Flush()
}

// AblationVectorWidth sweeps the PE ALU width: wider ALUs shift the
// bottleneck from compute to the NoC.
func AblationVectorWidth(w io.Writer, _ Options) error {
	vgg := models.VGG16()
	li, _ := vgg.Find("CONV5")
	fmt.Fprintln(w, "Ablation: PE vector width (VGG16 CONV5, KC-P, 256 PEs, 32 GB/s)")
	tw := newTab(w)
	fmt.Fprintln(tw, "vector width\truntime (cyc)\tpeak MAC/cyc\tachieved MAC/cyc\tbottleneck")
	for _, vw := range []int{1, 2, 4, 8, 16} {
		cfg := hw.Accel256()
		cfg.VectorWidth = vw
		r, err := core.AnalyzeDataflow(dataflows.Get("KC-P"), li.Layer, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.1f\t%s\n",
			vw, r.Runtime, cfg.PeakMACsPerCycle(), r.Throughput(), r.Bottleneck)
	}
	return tw.Flush()
}

// AblationPEScaling sweeps the PE count per dataflow, exposing each
// style's parallelism ceiling (the under-utilization arguments of the
// paper's introduction).
func AblationPEScaling(w io.Writer, _ Options) error {
	vgg := models.VGG16()
	li, _ := vgg.Find("CONV5")
	fmt.Fprintln(w, "Ablation: PE scaling (VGG16 CONV5, utilization per dataflow)")
	tw := newTab(w)
	fmt.Fprint(tw, "PEs")
	for _, n := range dataflows.Names {
		fmt.Fprintf(tw, "\t%s", n)
	}
	fmt.Fprintln(tw)
	for _, pes := range []int{64, 128, 256, 512, 1024} {
		cfg := hw.Accel256()
		cfg.NumPEs = pes
		fmt.Fprintf(tw, "%d", pes)
		for _, name := range dataflows.Names {
			r, err := core.AnalyzeDataflow(dataflows.Get(name), li.Layer, cfg)
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.1f%%", 100*r.Utilization())
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// AblationTuner compares fixed dataflows, the adaptive selection of
// Section 5.1, and the tile-tuning auto-tuner of Section 7 on a model
// subset.
func AblationTuner(w io.Writer, opt Options) error {
	m := models.ResNet50()
	layers := m.Layers
	if opt.Quick {
		layers = layers[:6]
	}
	cfg := hw.Accel256()
	fmt.Fprintf(w, "Ablation: auto-tuner vs fixed/adaptive dataflows (%s, %d layer shapes)\n", m.Name, len(layers))
	tw := newTab(w)
	fmt.Fprintln(tw, "strategy\truntime (cyc)\tvs best fixed")

	var bestFixed int64
	var bestName string
	for _, name := range dataflows.Names {
		var rt int64
		ok := true
		for _, li := range layers {
			r := analyzeOrSkip(dataflows.Get(name), li.Layer, cfg)
			if r == nil {
				ok = false
				break
			}
			rt += r.Runtime * int64(li.Count)
		}
		if !ok {
			continue
		}
		fmt.Fprintf(tw, "fixed %s\t%s\t\n", name, fmtEng(float64(rt)))
		if bestName == "" || rt < bestFixed {
			bestName, bestFixed = name, rt
		}
	}

	var adaptive int64
	for _, li := range layers {
		var best int64 = -1
		for _, name := range dataflows.Names {
			r := analyzeOrSkip(dataflows.Get(name), li.Layer, cfg)
			if r == nil {
				continue
			}
			if best < 0 || r.Runtime < best {
				best = r.Runtime
			}
		}
		adaptive += best * int64(li.Count)
	}
	fmt.Fprintf(tw, "adaptive (5 fixed)\t%s\t%.2fx\n",
		fmtEng(float64(adaptive)), float64(bestFixed)/float64(adaptive))

	var tuned int64
	for _, li := range layers {
		ch, err := tuner.TuneLayer(li.Layer, cfg, tuner.Options{Objective: tuner.MinRuntime})
		if err != nil {
			return err
		}
		tuned += ch.Result.Runtime * int64(li.Count)
	}
	fmt.Fprintf(tw, "auto-tuned (tile search)\t%s\t%.2fx\n",
		fmtEng(float64(tuned)), float64(bestFixed)/float64(tuned))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "best fixed dataflow: %s\n", bestName)
	return nil
}

// AblationBatch sweeps the batch size N on a fully connected layer:
// batching is the classic lever for weight reuse in GEMM-dominated
// workloads (each weight serves N inputs before eviction).
func AblationBatch(w io.Writer, _ Options) error {
	fmt.Fprintln(w, "Ablation: batch size on a 1024x1024 FC layer (KC-P style)")
	tw := newTab(w)
	fmt.Fprintln(tw, "batch N\truntime (cyc)\tcyc per sample\tweight reuse\tenergy/sample (uJ)")
	for _, n := range []int{1, 2, 4, 8, 16} {
		l := tensor.Layer{
			Name: "fc", Op: tensor.FullyConnected,
			Sizes: tensor.Sizes{tensor.N: n, tensor.K: 1024, tensor.C: 1024},
		}.Normalize()
		r := analyzeOrSkip(dataflows.Get("KC-P"), l, hw.Accel256())
		if r == nil {
			continue
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%.1f\n",
			n, r.Runtime, r.Runtime/int64(n),
			r.ReuseFactor(tensor.Weight), r.EnergyDefault().OnChip()/float64(n)/1e6)
	}
	return tw.Flush()
}

// Ablations runs every ablation in sequence.
func Ablations(w io.Writer, opt Options) error {
	for _, f := range []func(io.Writer, Options) error{
		AblationNoC, AblationSparsity, AblationSparseImbalance,
		AblationVectorWidth, AblationBatch, AblationPEScaling, AblationHetero, AblationTuner,
	} {
		if err := f(w, opt); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// AblationHetero evaluates the heterogeneous-chip design point of
// Section 5.1: two 128-PE sub-accelerators with opposite dataflow styles
// against homogeneous 2x128-PE chips, on MobileNetV2's mixed operators.
func AblationHetero(w io.Writer, _ Options) error {
	m := models.MobileNetV2()
	sub := func(pes int) hw.Config {
		nm := noc.Bus(16)
		nm.Reduction = true
		return hw.Config{Name: "sub", NumPEs: pes, NoCs: []noc.Model{nm}}.Normalize()
	}
	fmt.Fprintln(w, "Ablation: heterogeneous chip (2x128 PEs, MobileNetV2)")
	tw := newTab(w)
	fmt.Fprintln(tw, "chip\tlatency (cyc)\tpipeline bound (cyc/inf)\tenergy (mJ)")
	for _, dfName := range dataflows.Names {
		p, err := hetero.Evaluate(m, hetero.Homogeneous(dfName, 2, dataflows.Get(dfName), sub(128)))
		if err != nil {
			continue
		}
		fmt.Fprintf(tw, "homogeneous %s\t%s\t%s\t%.1f\n",
			dfName, fmtEng(float64(p.LatencyCycles)), fmtEng(float64(p.PipelineBound)), mJ(p.EnergyPJ))
	}
	het, err := hetero.Evaluate(m, []hetero.SubAccel{
		{Name: "act", Dataflow: dataflows.Get("YX-P"), Cfg: sub(128)},
		{Name: "chan", Dataflow: dataflows.Get("KC-P"), Cfg: sub(128)},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "heterogeneous YX-P+KC-P\t%s\t%s\t%.1f\n",
		fmtEng(float64(het.LatencyCycles)), fmtEng(float64(het.PipelineBound)), mJ(het.EnergyPJ))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "pipeline utilization of the heterogeneous chip: %.0f%%\n", 100*het.Utilization())
	return nil
}

// AblationSparseImbalance contrasts ideal zero-skipping with the
// expected-maximum load imbalance across PEs (the statistical-sparsity
// extension of Section 4.4's future work).
func AblationSparseImbalance(w io.Writer, _ Options) error {
	vgg := models.VGG16()
	li, _ := vgg.Find("CONV8")
	fmt.Fprintln(w, "Ablation: sparse load imbalance (VGG16 CONV8, KC-P, weight density sweep)")
	tw := newTab(w)
	fmt.Fprintln(tw, "density\tideal runtime\timbalanced runtime\tpenalty")
	for _, d := range []float64{1.0, 0.5, 0.25, 0.1} {
		l := li.Layer
		l.Density[tensor.Weight] = d
		ideal := analyzeOrSkip(dataflows.Get("KC-P"), l, hw.Accel256())
		cfgI := hw.Accel256()
		cfgI.SparseImbalance = true
		imb := analyzeOrSkip(dataflows.Get("KC-P"), l, cfgI)
		if ideal == nil || imb == nil {
			continue
		}
		fmt.Fprintf(tw, "%.2f\t%d\t%d\t%.1f%%\n", d, ideal.Runtime, imb.Runtime,
			100*(float64(imb.Runtime)/float64(ideal.Runtime)-1))
	}
	return tw.Flush()
}
