// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): model validation (Fig. 9), dataflow trade-offs
// across five DNN models (Fig. 10), reuse factors and NoC bandwidth
// requirements (Fig. 11), energy breakdowns (Fig. 12), the hardware
// design-space exploration (Fig. 13 and the abstract's headline numbers),
// and Tables 1/3/4/5. Each experiment prints the same rows/series the
// paper plots; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

// Options configures an experiment run.
type Options struct {
	// Quick trims the workloads (layer subsets, smaller DSE grids) for CI
	// and benchmarking loops; the full runs reproduce the paper's scale.
	Quick bool
}

// analyzeOrSkip analyzes one layer under one dataflow; nil result means
// the dataflow cannot map the layer (reported by the caller).
func analyzeOrSkip(df dataflow.Dataflow, layer tensor.Layer, cfg hw.Config) *core.Result {
	r, err := core.AnalyzeDataflow(df, layer, cfg)
	if err != nil {
		return nil
	}
	return r
}

// modelCost aggregates runtime (cycles) and on-chip energy (pJ) of a
// whole model under one dataflow, split by operator class.
type modelCost struct {
	runtime  int64
	energyPJ float64
	byClass  [models.NumClasses]struct {
		runtime  int64
		energyPJ float64
	}
	unmapped int
}

func costOfModel(m models.Model, df dataflow.Dataflow, cfg hw.Config) modelCost {
	var mc modelCost
	for _, li := range m.Layers {
		r := analyzeOrSkip(df, li.Layer, cfg)
		if r == nil {
			mc.unmapped++
			continue
		}
		e := r.EnergyDefault().OnChip() * float64(li.Count)
		rt := r.Runtime * int64(li.Count)
		mc.runtime += rt
		mc.energyPJ += e
		mc.byClass[li.Class].runtime += rt
		mc.byClass[li.Class].energyPJ += e
	}
	return mc
}

// bestPerLayer implements the adaptive dataflow of Section 5.1: per
// layer, the dataflow minimizing the given metric.
func bestPerLayer(m models.Model, cfg hw.Config, metric func(*core.Result) float64) modelCost {
	var mc modelCost
	for _, li := range m.Layers {
		var best *core.Result
		bestV := 0.0
		for _, df := range dataflows.All() {
			r := analyzeOrSkip(df, li.Layer, cfg)
			if r == nil {
				continue
			}
			if v := metric(r); best == nil || v < bestV {
				best, bestV = r, v
			}
		}
		if best == nil {
			mc.unmapped++
			continue
		}
		e := best.EnergyDefault().OnChip() * float64(li.Count)
		rt := best.Runtime * int64(li.Count)
		mc.runtime += rt
		mc.energyPJ += e
		cl := models.Classify(li.Layer)
		mc.byClass[cl].runtime += rt
		mc.byClass[cl].energyPJ += e
	}
	return mc
}

// newTab returns a tabwriter for aligned experiment tables.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// fmtEng renders a value in engineering notation (k/M/G).
func fmtEng(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// mJ converts picojoules to millijoules.
func mJ(pj float64) float64 { return pj * 1e-9 }
