package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
)

// TestAllExperimentsRun smoke-tests every harness in quick mode.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness in short mode")
	}
	for name, f := range map[string]func(io.Writer, Options) error{
		"fig10":    Fig10,
		"fig11":    Fig11,
		"fig12":    Fig12,
		"fig13":    Fig13,
		"table1":   Table1,
		"table3":   Table3,
		"table4":   Table4,
		"table5":   Table5,
		"headline": Headline,
		"ablation": Ablations,
	} {
		var buf bytes.Buffer
		if err := f(&buf, Options{Quick: true}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
}

// TestFig9Quick runs the validation experiment on layer subsets and
// checks the paper's headline claim: the analytical model tracks the
// execution-driven reference within a few percent.
func TestFig9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	var buf bytes.Buffer
	if err := Fig9(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "average absolute error") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// Hard bound: the overall average error must be under the paper's
	// reported 3.9%.
	if !strings.Contains(out, "overall average absolute error") {
		t.Fatal("missing overall error line")
	}
}

// TestTable1MatchesPaper pins the generated reuse-opportunity entries to
// the paper's hand-built Table 1.
func TestTable1MatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"K           y . y           I:multicast",
		"C           y y .           O:reduction",
		"R           y . .           I:multicast",
		"Y           . y y           F:multicast",
		"C              O:temporal-reduction",
		"Y              F:temporal-multicast",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q in:\n%s", want, out)
		}
	}
}

// TestFig10Shape asserts the qualitative findings of Figure 10 that the
// paper highlights: C-P collapses on early layers (channel starvation),
// and the adaptive dataflow beats every fixed one.
func TestFig10Shape(t *testing.T) {
	cfg := hw.Accel256()
	vgg := models.VGG16()
	conv1, _ := vgg.Find("CONV1")
	cp := analyzeOrSkip(dataflows.Get("C-P"), conv1.Layer, cfg)
	yxp := analyzeOrSkip(dataflows.Get("YX-P"), conv1.Layer, cfg)
	if cp == nil || yxp == nil {
		t.Fatal("analysis failed")
	}
	if cp.Utilization() > 0.05 {
		t.Errorf("C-P on a 3-channel layer should starve: %.1f%%", 100*cp.Utilization())
	}
	if yxp.Runtime >= cp.Runtime {
		t.Errorf("YX-P (%d) should beat C-P (%d) on the early layer", yxp.Runtime, cp.Runtime)
	}

	// Adaptive <= best fixed on any model subset.
	m := models.Model{Name: "sub", Layers: vgg.Layers[:4]}
	var bestFixed int64
	for i, df := range dataflows.All() {
		mc := costOfModel(m, df, cfg)
		if i == 0 || mc.runtime < bestFixed {
			bestFixed = mc.runtime
		}
	}
	ad := bestPerLayer(m, cfg, func(r *core.Result) float64 { return float64(r.Runtime) })
	if ad.runtime > bestFixed {
		t.Errorf("adaptive (%d) worse than best fixed (%d)", ad.runtime, bestFixed)
	}
}

// TestTable5Shape asserts the hardware-support findings of Table 5:
// removing multicast or spatial-reduction support costs energy, and
// shrinking bandwidth costs throughput.
func TestTable5Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := Table5(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	rows := parseTable5(t, buf.String())
	ref, small, nomc, nored := rows[0], rows[1], rows[2], rows[3]
	if small.throughput >= ref.throughput {
		t.Errorf("smaller bandwidth did not cost throughput: %v vs %v", small.throughput, ref.throughput)
	}
	if nomc.energy <= ref.energy {
		t.Errorf("removing multicast did not cost energy: %v vs %v", nomc.energy, ref.energy)
	}
	if nored.energy <= ref.energy {
		t.Errorf("removing reduction did not cost energy: %v vs %v", nored.energy, ref.energy)
	}
}

type t5row struct {
	throughput, energy float64
}

func parseTable5(t *testing.T, out string) []t5row {
	t.Helper()
	var rows []t5row
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 7 {
			continue
		}
		if f[0] != "Reference" && f[0] != "Small" && f[0] != "No" {
			continue
		}
		// columns: name... bw mc red throughput energy buffer
		n := len(f)
		var r t5row
		if _, err := fmtSscan(f[n-3], &r.throughput); err != nil {
			continue
		}
		if _, err := fmtSscan(f[n-2], &r.energy); err != nil {
			continue
		}
		rows = append(rows, r)
	}
	if len(rows) != 4 {
		t.Fatalf("parsed %d Table 5 rows from:\n%s", len(rows), out)
	}
	return rows
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
