package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
)

// Fig10 reproduces the dataflow trade-off study (Figure 10): runtime and
// energy of the five Table 3 dataflows across five DNN models on 256 PEs
// with 32 GB/s NoC bandwidth, split by operator class, plus the adaptive
// per-operator dataflow of column (f).
func Fig10(w io.Writer, opt Options) error {
	cfg := hw.Accel256()
	zoo := models.EvaluationModels()
	if opt.Quick {
		zoo = zoo[:2]
	}
	fmt.Fprintln(w, "Figure 10: runtime (cycles) and energy (mJ) of five dataflows, 256 PEs, 32 GB/s")

	for _, m := range zoo {
		fmt.Fprintf(w, "\n(%s)\n", m.Name)
		tw := newTab(w)
		fmt.Fprintln(tw, "dataflow\truntime\tenergy (mJ)\tearly\tlate\tpoint-wise\tdepth-wise\tFC\ttransposed\tagg-res\tunmapped")
		for _, df := range dataflows.All() {
			mc := costOfModel(m, df, cfg)
			fmt.Fprintf(tw, "%s\t%s\t%.2f", df.Name, fmtEng(float64(mc.runtime)), mJ(mc.energyPJ))
			for _, cl := range []models.Class{models.EarlyConv, models.LateConv, models.Pointwise,
				models.Depthwise, models.FullyConn, models.Transposed, models.AggResidual} {
				fmt.Fprintf(tw, "\t%s", fmtEng(float64(mc.byClass[cl].runtime)))
			}
			fmt.Fprintf(tw, "\t%d\n", mc.unmapped)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	// Column (f): averages across models per dataflow, plus adaptive.
	fmt.Fprintln(w, "\n(f) Average across models, plus the adaptive per-layer dataflow")
	tw := newTab(w)
	fmt.Fprintln(tw, "dataflow\ttotal runtime\ttotal energy (mJ)")
	var bestFixedRT int64
	var bestFixedE float64
	for i, df := range dataflows.All() {
		var rt int64
		var e float64
		for _, m := range zoo {
			mc := costOfModel(m, df, cfg)
			rt += mc.runtime
			e += mc.energyPJ
		}
		if i == 0 || rt < bestFixedRT {
			bestFixedRT = rt
		}
		if i == 0 || e < bestFixedE {
			bestFixedE = e
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\n", df.Name, fmtEng(float64(rt)), mJ(e))
	}
	var adRT int64
	var adE float64
	for _, m := range zoo {
		mcR := bestPerLayer(m, cfg, func(r *core.Result) float64 { return float64(r.Runtime) })
		mcE := bestPerLayer(m, cfg, func(r *core.Result) float64 { return r.EnergyDefault().OnChip() })
		adRT += mcR.runtime
		adE += mcE.energyPJ
	}
	fmt.Fprintf(tw, "Adaptive\t%s\t%.2f\n", fmtEng(float64(adRT)), mJ(adE))
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "adaptive vs best fixed dataflow: %.1f%% runtime reduction, %.1f%% energy reduction\n",
		100*(1-float64(adRT)/float64(bestFixedRT)), 100*(1-adE/bestFixedE))
	fmt.Fprintln(w, "(paper reports 37% runtime and 10% energy reduction potential)")
	return nil
}
