package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SegmentStore buffers completed span segments keyed by trace ID so a
// remote coordinator can pull its distributed trace's node-local spans
// after the fact (GET /debug/trace/segments?trace=... on the serve
// debug surface). The store is bounded three ways: traces are capped
// (least-recently-updated evicted first), spans per trace are capped,
// and idle traces expire after a TTL. Every span lost to a cap is
// counted in Dropped — silent span loss is an observability bug in its
// own right.
type SegmentStore struct {
	ttl       time.Duration
	maxTraces int
	maxSpans  int // per trace

	// ids is the shared span-ID source for recorders handed out by
	// NewRecorder, keeping IDs unique across the process's requests.
	ids atomic.Uint64

	mu     sync.Mutex
	traces map[string]*segment

	dropped atomic.Int64 // spans lost to caps (incl. recorder drops)
	expired atomic.Int64 // traces removed by TTL expiry
	evicted atomic.Int64 // traces removed by the trace cap
	spans   atomic.Int64 // spans currently resident
}

// segment is one trace's buffered spans on this node.
type segment struct {
	spans   []SpanRecord
	dropped int64
	updated time.Time
}

// Segment store defaults, used when the caller passes zero values.
const (
	DefaultSegmentTraces = 256
	DefaultSegmentSpans  = 4096
	DefaultSegmentTTL    = 2 * time.Minute
)

// NewSegmentStore builds a store holding up to maxTraces traces of up
// to maxSpansPerTrace spans each, expiring traces idle longer than ttl.
// Zero arguments take the defaults above.
func NewSegmentStore(maxTraces, maxSpansPerTrace int, ttl time.Duration) *SegmentStore {
	if maxTraces <= 0 {
		maxTraces = DefaultSegmentTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultSegmentSpans
	}
	if ttl <= 0 {
		ttl = DefaultSegmentTTL
	}
	return &SegmentStore{
		ttl:       ttl,
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
		traces:    make(map[string]*segment),
	}
}

// NewRecorder hands out a request-scoped recorder whose span IDs draw
// from the store's shared counter, so segments from different requests
// of the same trace never collide.
func (st *SegmentStore) NewRecorder(opts ...Option) *Recorder {
	return NewRecorder(append([]Option{WithIDSource(&st.ids)}, opts...)...)
}

// Add appends one request's completed spans to the trace's segment.
// recorderDropped carries the request recorder's own drop count so the
// store's Dropped total covers the whole path.
func (st *SegmentStore) Add(traceID string, spans []SpanRecord, recorderDropped int64) {
	if traceID == "" {
		return
	}
	if recorderDropped > 0 {
		st.dropped.Add(recorderDropped)
	}
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(now)
	seg := st.traces[traceID]
	if seg == nil {
		if len(st.traces) >= st.maxTraces {
			st.evictOldestLocked()
		}
		seg = &segment{}
		st.traces[traceID] = seg
	}
	for i, s := range spans {
		if len(seg.spans) >= st.maxSpans {
			n := int64(len(spans) - i)
			seg.dropped += n
			st.dropped.Add(n)
			break
		}
		seg.spans = append(seg.spans, s)
		st.spans.Add(1)
	}
	seg.updated = now
}

// Get copies out a trace's buffered spans and its drop count. The
// lookup refreshes the trace's TTL: a coordinator polling a long sweep
// keeps its segments alive.
func (st *SegmentStore) Get(traceID string) ([]SpanRecord, int64, bool) {
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(now)
	seg := st.traces[traceID]
	if seg == nil {
		return nil, 0, false
	}
	seg.updated = now
	return append([]SpanRecord(nil), seg.spans...), seg.dropped, true
}

// MaxSpans returns the per-trace span cap (useful as a request
// recorder's limit, so one request can never over-buffer).
func (st *SegmentStore) MaxSpans() int { return st.maxSpans }

// Traces returns the number of resident traces.
func (st *SegmentStore) Traces() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.traces)
}

// SpanCount returns the number of resident spans across all traces.
func (st *SegmentStore) SpanCount() int64 { return st.spans.Load() }

// Dropped returns how many spans were lost to the per-trace cap, the
// trace cap's evictions, or a request recorder's own limit.
func (st *SegmentStore) Dropped() int64 { return st.dropped.Load() }

// Expired returns how many traces the TTL has reclaimed.
func (st *SegmentStore) Expired() int64 { return st.expired.Load() }

// Evicted returns how many traces the trace cap has displaced.
func (st *SegmentStore) Evicted() int64 { return st.evicted.Load() }

// sweepLocked removes traces idle past the TTL. The store is accessed
// on every traced request, so lazy sweeping bounds staleness without a
// janitor goroutine; maxTraces keeps the scan short.
func (st *SegmentStore) sweepLocked(now time.Time) {
	for id, seg := range st.traces {
		if now.Sub(seg.updated) > st.ttl {
			st.spans.Add(-int64(len(seg.spans)))
			st.expired.Add(1)
			delete(st.traces, id)
		}
	}
}

// evictOldestLocked displaces the least-recently-updated trace to make
// room; its spans count as dropped (they were lost, not delivered).
func (st *SegmentStore) evictOldestLocked() {
	var oldest string
	var oldestAt time.Time
	for id, seg := range st.traces {
		if oldest == "" || seg.updated.Before(oldestAt) {
			oldest, oldestAt = id, seg.updated
		}
	}
	if oldest == "" {
		return
	}
	seg := st.traces[oldest]
	st.spans.Add(-int64(len(seg.spans)))
	st.dropped.Add(int64(len(seg.spans)))
	st.evicted.Add(1)
	delete(st.traces, oldest)
}
