// Package obs is the stdlib-only observability layer of the
// reproduction: context-propagated spans with a recorder that is a
// strict no-op when no recorder is attached to the context, so the hot
// paths of the cost engine (Profile, Price, the DSE inner loops) pay
// only two context lookups when tracing is off.
//
// A span tree is started with Start and finished with End:
//
//	ctx, span := obs.Start(ctx, "core.profile", obs.Int("pes", 256))
//	defer span.End()
//
// Completed spans land in the Recorder attached via WithRecorder and
// can be exported as Chrome trace_event JSON (WriteTrace, loadable in
// chrome://tracing or Perfetto) or emitted as log/slog structured logs
// (WithLogger). Attrs attached with ContextWithAttrs (e.g. a request
// ID) are stamped onto every span started under that context, which is
// how a request's spans stay correlated across the worker pool and the
// DSE fan-out.
package obs

import (
	"context"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or span event. Values are
// stored unboxed so constructing an attr never allocates.
type Attr struct {
	Key  string
	kind uint8
	str  string
	num  int64
	f    float64
}

const (
	kindString uint8 = iota
	kindInt
	kindFloat
	kindBool
)

// String builds a string-valued attr.
func String(k, v string) Attr { return Attr{Key: k, kind: kindString, str: v} }

// Int builds an int-valued attr.
func Int(k string, v int) Attr { return Attr{Key: k, kind: kindInt, num: int64(v)} }

// Int64 builds an int64-valued attr.
func Int64(k string, v int64) Attr { return Attr{Key: k, kind: kindInt, num: v} }

// Float builds a float-valued attr.
func Float(k string, v float64) Attr { return Attr{Key: k, kind: kindFloat, f: v} }

// Bool builds a bool-valued attr.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, kind: kindBool}
	if v {
		a.num = 1
	}
	return a
}

// Value returns the attr's value boxed for JSON encoding.
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return a.num
	case kindFloat:
		return a.f
	case kindBool:
		return a.num != 0
	default:
		return a.str
	}
}

// ValueString renders the attr's value as text (for logs).
func (a Attr) ValueString() string {
	switch a.kind {
	case kindInt:
		return strconv.FormatInt(a.num, 10)
	case kindFloat:
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	case kindBool:
		return strconv.FormatBool(a.num != 0)
	default:
		return a.str
	}
}

func (a Attr) slogAttr() slog.Attr {
	switch a.kind {
	case kindInt:
		return slog.Int64(a.Key, a.num)
	case kindFloat:
		return slog.Float64(a.Key, a.f)
	case kindBool:
		return slog.Bool(a.Key, a.num != 0)
	default:
		return slog.String(a.Key, a.str)
	}
}

// Event is one instant annotation inside a span.
type Event struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// SpanRecord is one completed span as stored in the recorder.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // 0 for root spans
	Track  uint64 // root span's ID, inherited by descendants
	// TraceID is the 32-hex-char distributed trace this span belongs
	// to. Root spans mint one (or adopt the remote caller's, when the
	// context carries an extracted trace context); children inherit it.
	TraceID string
	// RemoteParent is the span ID of the caller's span in another
	// process, carried in by a traceparent header; 0 when the span's
	// parent (if any) is process-local.
	RemoteParent uint64
	Name         string
	Start        time.Time
	End          time.Time
	Attrs        []Attr
	Events       []Event
}

// Duration returns the span's wall time.
func (s SpanRecord) Duration() time.Duration { return s.End.Sub(s.Start) }

// Attr returns the named attr's value as text, and whether it exists.
func (s SpanRecord) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.ValueString(), true
		}
	}
	return "", false
}

// DefaultSpanLimit bounds a recorder that was not given an explicit
// limit; spans beyond it are counted as dropped instead of stored.
const DefaultSpanLimit = 1 << 16

// Recorder collects completed spans. All methods are safe for
// concurrent use; End appends one record under a short mutex hold.
type Recorder struct {
	mu      sync.Mutex
	spans   []SpanRecord
	dropped int64

	limit  int
	ids    *atomic.Uint64
	logger *slog.Logger
	epoch  time.Time
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithLimit caps stored spans (excess spans are dropped and counted).
func WithLimit(n int) Option { return func(r *Recorder) { r.limit = n } }

// WithLogger emits every completed span as a Debug-level structured log
// line in addition to storing it.
func WithLogger(l *slog.Logger) Option { return func(r *Recorder) { r.logger = l } }

// WithIDSource shares one span-ID counter across recorders. The segment
// store hands every request its own short-lived recorder; a shared
// source keeps span IDs unique per process so segments of the same
// distributed trace never collide when they are stitched together.
func WithIDSource(ids *atomic.Uint64) Option { return func(r *Recorder) { r.ids = ids } }

// NewRecorder builds an empty recorder.
func NewRecorder(opts ...Option) *Recorder {
	r := &Recorder{limit: DefaultSpanLimit, epoch: time.Now()}
	for _, o := range opts {
		o(r)
	}
	if r.ids == nil {
		r.ids = new(atomic.Uint64)
	}
	return r
}

func (r *Recorder) record(rec SpanRecord) {
	r.mu.Lock()
	if r.limit > 0 && len(r.spans) >= r.limit {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.spans = append(r.spans, rec)
	r.mu.Unlock()
	if r.logger != nil {
		attrs := make([]slog.Attr, 0, len(rec.Attrs)+2)
		attrs = append(attrs,
			slog.String("span", rec.Name),
			slog.Duration("dur", rec.Duration()))
		for _, a := range rec.Attrs {
			attrs = append(attrs, a.slogAttr())
		}
		r.logger.LogAttrs(context.Background(), slog.LevelDebug, "span", attrs...)
	}
}

// Snapshot copies out the recorded spans.
func (r *Recorder) Snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}

// Len returns the number of stored spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped returns how many spans were discarded by the limit.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Merge appends already-completed spans (e.g. another recorder's
// snapshot) honoring the limit; overflow counts as dropped.
func (r *Recorder) Merge(spans []SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range spans {
		if r.limit > 0 && len(r.spans) >= r.limit {
			r.dropped += int64(len(spans) - i)
			return
		}
		r.spans = append(r.spans, s)
	}
}

// Span is one in-flight span. A nil *Span (tracing disabled) is valid:
// every method is a no-op. A span is owned by the goroutine that
// advances it — Event/SetAttr/End must not race each other — but child
// spans may be started from other goroutines.
type Span struct {
	rec          *Recorder
	name         string
	id           uint64
	parent       uint64
	track        uint64
	traceID      string
	remoteParent uint64
	start        time.Time
	attrs        []Attr
	events       []Event
}

// TraceID returns the distributed trace ID the span belongs to (empty
// for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's process-local ID (0 for a nil span).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

type (
	spanKey     struct{}
	recorderKey struct{}
	baggageKey  struct{}
	remoteKey   struct{}
)

// WithRecorder attaches a recorder: spans started under the returned
// context are recorded into it.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, r)
}

// RecorderFrom returns the recorder attached to ctx, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

// SpanFrom returns the current span, or nil when tracing is off (the
// nil span's methods are no-ops, so callers never need to check).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithAttrs attaches baggage attrs (e.g. a request ID) stamped
// onto every span subsequently started under the returned context.
func ContextWithAttrs(ctx context.Context, attrs ...Attr) context.Context {
	if prev, _ := ctx.Value(baggageKey{}).([]Attr); len(prev) > 0 {
		attrs = append(append([]Attr(nil), prev...), attrs...)
	}
	return context.WithValue(ctx, baggageKey{}, attrs)
}

// Start begins a span under ctx's recorder. When no recorder is
// attached it returns ctx unchanged and a nil span, costing only the
// context lookups. The returned context carries the span so children
// nest under it.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var rec *Recorder
	if parent != nil {
		rec = parent.rec
	} else {
		rec = RecorderFrom(ctx)
	}
	if rec == nil {
		return ctx, nil
	}
	s := &Span{rec: rec, name: name, id: rec.ids.Add(1), start: time.Now()}
	if parent != nil {
		s.parent, s.track, s.traceID = parent.id, parent.track, parent.traceID
	} else {
		s.track = s.id
		if tc, ok := RemoteFrom(ctx); ok {
			// The caller in another process opened this trace; parent
			// under its span so stitched traces keep one root.
			s.traceID, s.remoteParent = tc.TraceID, tc.SpanID
		} else {
			s.traceID = NewTraceID()
		}
	}
	if bg, _ := ctx.Value(baggageKey{}).([]Attr); len(bg) > 0 {
		s.attrs = append(s.attrs, bg...)
	}
	s.attrs = append(s.attrs, attrs...)
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr appends attrs to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Event records an instant annotation (e.g. a cache hit) on the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.events = append(s.events, Event{Name: name, Time: time.Now(), Attrs: attrs})
}

// End completes the span and stores it in the recorder.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.record(SpanRecord{
		ID: s.id, Parent: s.parent, Track: s.track,
		TraceID: s.traceID, RemoteParent: s.remoteParent,
		Name: s.name, Start: s.start, End: time.Now(),
		Attrs: s.attrs, Events: s.events,
	})
}

// discardHandler drops every record (slog.DiscardHandler arrived in a
// later Go release than go.mod targets).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// DiscardLogger returns a logger that drops everything; it is the
// default for components whose caller supplied no logger.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }
