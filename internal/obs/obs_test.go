package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestDisabledIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, span := Start(ctx, "x", Int("n", 1))
	if span != nil {
		t.Fatal("Start without a recorder must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a recorder must return the context unchanged")
	}
	// All nil-span methods must be safe.
	span.SetAttr(String("k", "v"))
	span.Event("e")
	span.End()
	if SpanFrom(ctx2) != nil {
		t.Fatal("no span expected in context")
	}
}

func TestSpanTreeAndBaggage(t *testing.T) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	ctx = ContextWithAttrs(ctx, String("request_id", "r1"))

	ctx, root := Start(ctx, "root", String("kind", "test"))
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.Event("hit", Int("n", 3))
	grand.End()
	child.End()
	root.SetAttr(Int("status", 200))
	root.End()

	spans := rec.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["root"], byName["child"], byName["grandchild"]
	if c.Parent != r.ID || g.Parent != c.ID {
		t.Errorf("parent links wrong: root=%d child.parent=%d child=%d grand.parent=%d",
			r.ID, c.Parent, c.ID, g.Parent)
	}
	if r.Track != r.ID || c.Track != r.ID || g.Track != r.ID {
		t.Errorf("all spans must share the root's track: %d/%d/%d", r.Track, c.Track, g.Track)
	}
	for _, s := range spans {
		if v, ok := s.Attr("request_id"); !ok || v != "r1" {
			t.Errorf("span %s missing baggage request_id, got %q", s.Name, v)
		}
	}
	if v, _ := r.Attr("status"); v != "200" {
		t.Errorf("root status attr = %q, want 200", v)
	}
	if len(g.Events) != 1 || g.Events[0].Name != "hit" {
		t.Errorf("grandchild events = %+v", g.Events)
	}
}

func TestCrossGoroutineChildren(t *testing.T) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := Start(ctx, "root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := Start(ctx, "worker", Int("i", i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	spans := rec.Snapshot()
	if len(spans) != 9 {
		t.Fatalf("recorded %d spans, want 9", len(spans))
	}
	for _, s := range spans {
		if s.Name == "worker" && s.Parent == 0 {
			t.Error("worker span lost its parent")
		}
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := NewRecorder(WithLimit(2))
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 5; i++ {
		_, s := Start(ctx, "s")
		s.End()
	}
	if rec.Len() != 2 {
		t.Errorf("stored %d spans, want 2", rec.Len())
	}
	if rec.Dropped() != 3 {
		t.Errorf("dropped %d spans, want 3", rec.Dropped())
	}
}

func TestWriteTrace(t *testing.T) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	ctx = ContextWithAttrs(ctx, String("request_id", "abc"))
	ctx, root := Start(ctx, "req", Bool("ok", true), Float("f", 1.5))
	_, child := Start(ctx, "work")
	child.Event("cache.miss")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TID   uint64         `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var phases = map[string]string{}
	var tids = map[string]uint64{}
	for _, e := range f.TraceEvents {
		phases[e.Name] = e.Phase
		tids[e.Name] = e.TID
		if e.Phase == "X" {
			if e.Args["request_id"] != "abc" {
				t.Errorf("span %s args = %v, want request_id abc", e.Name, e.Args)
			}
		}
	}
	if phases["req"] != "X" || phases["work"] != "X" || phases["cache.miss"] != "i" {
		t.Errorf("phases = %v", phases)
	}
	if tids["req"] != tids["work"] {
		t.Errorf("req and work on different tracks: %d vs %d", tids["req"], tids["work"])
	}
}

func TestSlogExport(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	rec := NewRecorder(WithLogger(logger))
	ctx := WithRecorder(context.Background(), rec)
	_, s := Start(ctx, "core.profile", Int("pes", 64))
	s.End()
	out := buf.String()
	if !strings.Contains(out, "span=core.profile") || !strings.Contains(out, "pes=64") {
		t.Errorf("slog export missing fields: %s", out)
	}
}

func TestConcurrentRecordRace(t *testing.T) {
	rec := NewRecorder(WithLimit(1000))
	ctx := WithRecorder(context.Background(), rec)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c, s := Start(ctx, "spin")
				_, in := Start(c, "inner")
				in.End()
				s.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				rec.Snapshot()
				rec.Len()
				rec.Dropped()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := rec.Len() + int(rec.Dropped()); got != 8*200*2 {
		t.Errorf("stored+dropped = %d, want %d", got, 8*200*2)
	}
}

func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "x")
		s.End()
	}
}
