package obs

import (
	"sort"
	"time"
)

// This file is the JSON wire shape for span segments crossing node
// boundaries: the serve debug endpoint marshals SpanRecords with it,
// and the fleet coordinator unmarshals them back for trace assembly.
// Times travel as absolute unix nanoseconds so the coordinator can
// skew-correct each node onto its own clock.

// SpanJSON is one span on the wire.
type SpanJSON struct {
	ID           uint64         `json:"id"`
	Parent       uint64         `json:"parent,omitempty"`
	Track        uint64         `json:"track"`
	TraceID      string         `json:"trace_id,omitempty"`
	RemoteParent string         `json:"remote_parent,omitempty"` // 16-hex span ID
	Name         string         `json:"name"`
	StartUnixNs  int64          `json:"start_unix_ns"`
	EndUnixNs    int64          `json:"end_unix_ns"`
	Attrs        map[string]any `json:"attrs,omitempty"`
	Events       []EventJSON    `json:"events,omitempty"`
}

// EventJSON is one span event on the wire.
type EventJSON struct {
	Name       string         `json:"name"`
	TimeUnixNs int64          `json:"time_unix_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// SpanToJSON converts one record to the wire shape.
func SpanToJSON(s SpanRecord) SpanJSON {
	j := SpanJSON{
		ID: s.ID, Parent: s.Parent, Track: s.Track,
		TraceID:     s.TraceID,
		Name:        s.Name,
		StartUnixNs: s.Start.UnixNano(),
		EndUnixNs:   s.End.UnixNano(),
		Attrs:       attrArgs(s.Attrs),
	}
	if s.RemoteParent != 0 {
		j.RemoteParent = FormatSpanID(s.RemoteParent)
	}
	for _, e := range s.Events {
		j.Events = append(j.Events, EventJSON{
			Name: e.Name, TimeUnixNs: e.Time.UnixNano(), Attrs: attrArgs(e.Attrs),
		})
	}
	return j
}

// SpansToJSON converts a segment snapshot to the wire shape.
func SpansToJSON(spans []SpanRecord) []SpanJSON {
	out := make([]SpanJSON, len(spans))
	for i, s := range spans {
		out[i] = SpanToJSON(s)
	}
	return out
}

// Record converts a wire span back to a SpanRecord. JSON numbers come
// back as float64; integral attr values are restored as ints so round-
// tripped attrs render the way they were recorded.
func (j SpanJSON) Record() SpanRecord {
	s := SpanRecord{
		ID: j.ID, Parent: j.Parent, Track: j.Track,
		TraceID: j.TraceID,
		Name:    j.Name,
		Start:   time.Unix(0, j.StartUnixNs),
		End:     time.Unix(0, j.EndUnixNs),
		Attrs:   attrsFromMap(j.Attrs),
	}
	if tc, ok := ParseTraceparent("00-" + pad32(j.TraceID) + "-" + pad16(j.RemoteParent) + "-01"); ok {
		s.RemoteParent = tc.SpanID
	}
	for _, e := range j.Events {
		s.Events = append(s.Events, Event{
			Name: e.Name, Time: time.Unix(0, e.TimeUnixNs), Attrs: attrsFromMap(e.Attrs),
		})
	}
	return s
}

// RecordsFromJSON converts a wire segment back to records.
func RecordsFromJSON(spans []SpanJSON) []SpanRecord {
	out := make([]SpanRecord, len(spans))
	for i, j := range spans {
		out[i] = j.Record()
	}
	return out
}

// pad32/pad16 shape possibly-absent hex fields so the strict
// traceparent parser can validate a wire span's remote parent without a
// second code path; an invalid field simply yields RemoteParent 0.
func pad32(s string) string {
	if len(s) != 32 {
		return "00000000000000000000000000000000"
	}
	return s
}

func pad16(s string) string {
	if len(s) != 16 {
		return "0000000000000000"
	}
	return s
}

func attrsFromMap(m map[string]any) []Attr {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]Attr, 0, len(m))
	for _, k := range keys {
		switch v := m[k].(type) {
		case string:
			attrs = append(attrs, String(k, v))
		case bool:
			attrs = append(attrs, Bool(k, v))
		case float64:
			if v == float64(int64(v)) {
				attrs = append(attrs, Int64(k, int64(v)))
			} else {
				attrs = append(attrs, Float(k, v))
			}
		case int64:
			attrs = append(attrs, Int64(k, v))
		}
	}
	return attrs
}

// Lane is one process row of a stitched multi-node Chrome trace:
// typically the fleet coordinator at PID 0 and one PID per serve node,
// each node's spans shifted by its estimated clock offset.
type Lane struct {
	// PID is the Chrome process ID the lane renders under.
	PID int
	// Process is the lane's display name (e.g. the node's base URL).
	Process string
	// Spans are the lane's spans; Track becomes the Chrome thread ID,
	// so each request/worker renders as its own row within the process.
	Spans []SpanRecord
	// OffsetNS is added to every span time: the lane clock's estimated
	// skew against the epoch's clock.
	OffsetNS int64
}

// LaneEvents converts multi-process lanes into Chrome trace_event
// entries relative to epoch, including process_name metadata so the
// trace viewer labels each node.
func LaneEvents(epoch time.Time, lanes []Lane) []traceEvent {
	var evs []traceEvent
	for _, lane := range lanes {
		evs = append(evs, traceEvent{
			Name: "process_name", Phase: "M", PID: lane.PID,
			Args: map[string]any{"name": lane.Process},
		})
		off := time.Duration(lane.OffsetNS)
		spans := append([]SpanRecord(nil), lane.Spans...)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		for _, s := range spans {
			ts := float64(s.Start.Add(off).Sub(epoch).Nanoseconds()) / 1e3
			dur := float64(s.End.Sub(s.Start).Nanoseconds()) / 1e3
			if dur <= 0 {
				dur = 0.001
			}
			args := attrArgs(s.Attrs)
			if s.TraceID != "" {
				if args == nil {
					args = map[string]any{}
				}
				args["trace_id"] = s.TraceID
			}
			evs = append(evs, traceEvent{
				Name: s.Name, Phase: "X", TS: ts, Dur: dur,
				PID: lane.PID, TID: s.Track, Args: args,
			})
			for _, e := range s.Events {
				evs = append(evs, traceEvent{
					Name: e.Name, Phase: "i", Scope: "t",
					TS:  float64(e.Time.Add(off).Sub(epoch).Nanoseconds()) / 1e3,
					PID: lane.PID, TID: s.Track, Args: attrArgs(e.Attrs),
				})
			}
		}
	}
	return evs
}
