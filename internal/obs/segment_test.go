package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func span(id uint64, name string) SpanRecord {
	now := time.Now()
	return SpanRecord{ID: id, Track: id, Name: name, Start: now, End: now}
}

func TestSegmentStoreAddGet(t *testing.T) {
	st := NewSegmentStore(4, 16, time.Minute)
	id := NewTraceID()
	st.Add(id, []SpanRecord{span(1, "a"), span(2, "b")}, 0)
	st.Add(id, []SpanRecord{span(3, "c")}, 0)

	spans, dropped, ok := st.Get(id)
	if !ok {
		t.Fatal("trace not found after Add")
	}
	if len(spans) != 3 || dropped != 0 {
		t.Fatalf("got %d spans, %d dropped; want 3, 0", len(spans), dropped)
	}
	if st.Traces() != 1 || st.SpanCount() != 3 {
		t.Errorf("store: %d traces, %d spans; want 1, 3", st.Traces(), st.SpanCount())
	}
	if _, _, ok := st.Get(NewTraceID()); ok {
		t.Error("unknown trace reported found")
	}
	// Empty trace IDs are ignored entirely.
	st.Add("", []SpanRecord{span(9, "x")}, 0)
	if st.Traces() != 1 {
		t.Error("empty trace ID created a segment")
	}
}

func TestSegmentStorePerTraceSpanCap(t *testing.T) {
	st := NewSegmentStore(4, 2, time.Minute)
	id := NewTraceID()
	st.Add(id, []SpanRecord{span(1, "a"), span(2, "b"), span(3, "c"), span(4, "d")}, 0)
	spans, dropped, _ := st.Get(id)
	if len(spans) != 2 || dropped != 2 {
		t.Errorf("got %d spans, %d dropped; want 2 kept, 2 dropped", len(spans), dropped)
	}
	if st.Dropped() != 2 {
		t.Errorf("store Dropped() = %d, want 2", st.Dropped())
	}
	// The recorder's own drop count folds into the store total.
	st.Add(id, nil, 5)
	if st.Dropped() != 7 {
		t.Errorf("store Dropped() = %d after recorder drops, want 7", st.Dropped())
	}
}

func TestSegmentStoreTraceCapEvictsOldest(t *testing.T) {
	st := NewSegmentStore(2, 16, time.Minute)
	a, b, c := NewTraceID(), NewTraceID(), NewTraceID()
	st.Add(a, []SpanRecord{span(1, "a")}, 0)
	st.Add(b, []SpanRecord{span(2, "b")}, 0)
	st.Add(b, []SpanRecord{span(3, "b2")}, 0) // refresh b: a is now oldest
	st.Add(c, []SpanRecord{span(4, "c")}, 0)

	if _, _, ok := st.Get(a); ok {
		t.Error("oldest trace survived the cap")
	}
	if _, _, ok := st.Get(b); !ok {
		t.Error("recently-updated trace was evicted")
	}
	if _, _, ok := st.Get(c); !ok {
		t.Error("newest trace missing")
	}
	if st.Evicted() != 1 {
		t.Errorf("Evicted() = %d, want 1", st.Evicted())
	}
	if st.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1 (the evicted trace's span)", st.Dropped())
	}
}

func TestSegmentStoreTTLExpiry(t *testing.T) {
	st := NewSegmentStore(4, 16, 30*time.Millisecond)
	id := NewTraceID()
	st.Add(id, []SpanRecord{span(1, "a")}, 0)
	time.Sleep(60 * time.Millisecond)
	// The sweep is lazy: the next access reclaims the idle trace.
	if _, _, ok := st.Get(id); ok {
		t.Error("idle trace survived its TTL")
	}
	if st.Expired() != 1 {
		t.Errorf("Expired() = %d, want 1", st.Expired())
	}
	if st.SpanCount() != 0 {
		t.Errorf("SpanCount() = %d after expiry, want 0", st.SpanCount())
	}
}

func TestSegmentStoreSharedIDSource(t *testing.T) {
	st := NewSegmentStore(0, 0, 0)
	r1, r2 := st.NewRecorder(), st.NewRecorder()
	ids := map[uint64]bool{}
	for _, r := range []*Recorder{r1, r2} {
		ctx := WithRecorder(t.Context(), r)
		_, s := Start(ctx, "x")
		if ids[s.SpanID()] {
			t.Fatalf("span ID %d repeated across recorders", s.SpanID())
		}
		ids[s.SpanID()] = true
		s.End()
	}
}

// TestSegmentStoreTTLRaceHammer drives concurrent Add/Get traffic over
// a tiny store with an aggressive TTL so lazy sweeps, cap evictions,
// and reads interleave constantly; run under -race it is the store's
// concurrency regression test.
func TestSegmentStoreTTLRaceHammer(t *testing.T) {
	st := NewSegmentStore(8, 4, time.Millisecond)
	traces := make([]string, 16)
	for i := range traces {
		traces[i] = NewTraceID()
	}
	var wg sync.WaitGroup
	stop := time.Now().Add(100 * time.Millisecond)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				id := traces[(g*31+i)%len(traces)]
				if i%3 == 0 {
					st.Get(id)
				} else {
					rec := st.NewRecorder(WithLimit(st.MaxSpans()))
					ctx := WithRecorder(t.Context(), rec)
					_, s := Start(ctx, fmt.Sprintf("g%d", g))
					s.End()
					st.Add(id, rec.Snapshot(), rec.Dropped())
				}
				if i%17 == 0 {
					time.Sleep(time.Millisecond) // let TTLs lapse mid-traffic
				}
			}
		}(g)
	}
	wg.Wait()
	// Invariant: resident span count matches a fresh tally.
	var tally int64
	st.mu.Lock()
	for _, seg := range st.traces {
		tally += int64(len(seg.spans))
	}
	st.mu.Unlock()
	if got := st.SpanCount(); got != tally {
		t.Errorf("SpanCount() = %d, but store holds %d spans", got, tally)
	}
}
