package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// traceEvent is one entry of the Chrome trace_event format. Spans are
// complete events (ph "X"), span events are thread-scoped instants
// (ph "i"). ts/dur are microseconds relative to the recorder's epoch.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func attrArgs(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// TraceEvents converts the recorded spans into Chrome trace_event
// entries, ordered by start time. Each root span opens its own track
// (tid), and its descendants — including ones recorded from other
// goroutines, like DSE workers — render nested under it.
func (r *Recorder) TraceEvents() []traceEvent {
	spans := r.Snapshot()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	evs := make([]traceEvent, 0, len(spans))
	for _, s := range spans {
		ts := float64(s.Start.Sub(r.epoch).Nanoseconds()) / 1e3
		dur := float64(s.End.Sub(s.Start).Nanoseconds()) / 1e3
		if dur <= 0 {
			dur = 0.001 // keep zero-length spans visible
		}
		evs = append(evs, traceEvent{
			Name: s.Name, Phase: "X", TS: ts, Dur: dur,
			PID: 1, TID: s.Track, Args: attrArgs(s.Attrs),
		})
		for _, e := range s.Events {
			evs = append(evs, traceEvent{
				Name: e.Name, Phase: "i", Scope: "t",
				TS:  float64(e.Time.Sub(r.epoch).Nanoseconds()) / 1e3,
				PID: 1, TID: s.Track, Args: attrArgs(e.Attrs),
			})
		}
	}
	return evs
}

// WriteTrace writes the recorded spans as Chrome trace_event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev.
func (r *Recorder) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: r.TraceEvents(), DisplayTimeUnit: "ms"})
}

// WriteChromeLanes writes a stitched multi-process trace (one Lane per
// process, times relative to epoch) as Chrome trace_event JSON.
func WriteChromeLanes(w io.Writer, epoch time.Time, lanes []Lane) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: LaneEvents(epoch, lanes), DisplayTimeUnit: "ms"})
}
