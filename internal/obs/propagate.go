package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"net/http"
	"strings"
)

// This file is the cross-process trace-context propagation: a
// traceparent-style header (W3C Trace Context shaped) carries the
// 128-bit trace ID and the caller's 64-bit span ID from a coordinator
// into a serve node, so node-local span trees parent under the
// coordinator's spans when the segments are stitched back together.
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	             ^^ ^~~~~~~ 32 hex trace id ~~~~~~^ ^ 16 hex span id ^ flags
//
// Extract is strict: anything but the exact shape above is rejected
// (the request proceeds untraced — a malformed header must never fail
// the request). Inject is a no-op when tracing is off, preserving the
// no-op-when-disabled contract.

// TraceparentHeader is the propagation header name.
const TraceparentHeader = "traceparent"

// traceparentLen is the exact header length: "00-" + 32 + "-" + 16 +
// "-" + 2.
const traceparentLen = 55

// TraceContext identifies a caller's position in a distributed trace:
// the shared trace ID and the caller's own span ID.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters, never all zero.
	TraceID string
	// SpanID is the remote parent span's process-local ID, never 0.
	SpanID uint64
}

// NewTraceID mints a random 128-bit trace ID as 32 lowercase hex
// characters. math/rand/v2's global generator is seeded from the OS
// entropy pool, so IDs are unguessable enough to act as capability
// tokens for the segment-fetch endpoint.
func NewTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], rand.Uint64())
	binary.BigEndian.PutUint64(b[8:], rand.Uint64())
	if isZero(b[:]) { // astronomically unlikely; the format forbids it
		b[15] = 1
	}
	return hex.EncodeToString(b[:])
}

// FormatSpanID renders a span ID the way Inject does (16 lowercase hex
// characters).
func FormatSpanID(id uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return hex.EncodeToString(b[:])
}

// Inject writes the current span's trace context as a traceparent
// header. When tracing is off (no span in ctx) it leaves h untouched,
// so untraced traffic never advertises trace state.
func Inject(ctx context.Context, h http.Header) {
	s := SpanFrom(ctx)
	if s == nil || s.traceID == "" {
		return
	}
	var b strings.Builder
	b.Grow(traceparentLen)
	b.WriteString("00-")
	b.WriteString(s.traceID)
	b.WriteByte('-')
	b.WriteString(FormatSpanID(s.id))
	b.WriteString("-01")
	h.Set(TraceparentHeader, b.String())
}

// Extract parses and sanitizes an incoming traceparent header. It
// accepts exactly the canonical form Inject emits — version 00,
// lowercase hex, non-zero IDs, exact length — and reports ok=false for
// anything else, including an absent header. Malformed values are
// rejected without error so the enclosing request can proceed untraced.
func Extract(h http.Header) (TraceContext, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}

// ParseTraceparent validates one raw traceparent value; see Extract.
func ParseTraceparent(v string) (TraceContext, bool) {
	// Bound first: a hostile header must not cost more than a length
	// check. The exact format leaves no room for padding or extensions.
	if len(v) != traceparentLen {
		return TraceContext{}, false
	}
	if v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return TraceContext{}, false
	}
	traceID := v[3:35]
	spanHex := v[36:52]
	flags := v[53:]
	if !isLowerHex(traceID) || !isLowerHex(spanHex) || !isLowerHex(flags) {
		return TraceContext{}, false
	}
	if traceID == "00000000000000000000000000000000" {
		return TraceContext{}, false
	}
	var raw [8]byte
	if _, err := hex.Decode(raw[:], []byte(spanHex)); err != nil {
		return TraceContext{}, false
	}
	spanID := binary.BigEndian.Uint64(raw[:])
	if spanID == 0 {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: traceID, SpanID: spanID}, true
}

// ValidTraceID reports whether id has the canonical trace-ID shape:
// exactly 32 lowercase hex characters, not all zero. Used to validate
// trace IDs arriving via query parameters as strictly as headers.
func ValidTraceID(id string) bool {
	return len(id) == 32 && isLowerHex(id) &&
		id != "00000000000000000000000000000000"
}

// ContextWithRemote marks ctx as continuing tc's trace: the next root
// span started under it adopts tc.TraceID and records tc.SpanID as its
// remote parent.
func ContextWithRemote(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, remoteKey{}, tc)
}

// RemoteFrom returns the remote trace context attached to ctx, if any.
func RemoteFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(remoteKey{}).(TraceContext)
	return tc, ok
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
