package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestNewTraceIDShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("NewTraceID() = %q, not a valid trace ID", id)
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestParseTraceparentRoundTrip(t *testing.T) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	ctx, span := Start(ctx, "root")
	defer span.End()

	h := http.Header{}
	Inject(ctx, h)
	v := h.Get(TraceparentHeader)
	if len(v) != 55 {
		t.Fatalf("injected traceparent %q has length %d, want 55", v, len(v))
	}
	tc, ok := ParseTraceparent(v)
	if !ok {
		t.Fatalf("ParseTraceparent rejected our own header %q", v)
	}
	if tc.TraceID != span.TraceID() {
		t.Errorf("extracted trace ID %q, want %q", tc.TraceID, span.TraceID())
	}
	if tc.SpanID != span.SpanID() {
		t.Errorf("extracted span ID %d, want %d", tc.SpanID, span.SpanID())
	}
}

func TestInjectNoopWhenTracingOff(t *testing.T) {
	h := http.Header{}
	Inject(context.Background(), h)
	if len(h) != 0 {
		t.Errorf("Inject without a span wrote headers: %v", h)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("canonical example %q rejected", valid)
	}
	bad := []string{
		"",
		"00",
		valid + "0",            // too long
		valid[:54],             // too short
		"01" + valid[2:],       // wrong version
		strings.ToUpper(valid), // uppercase hex
		strings.Replace(valid, "-", "_", 1),
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bg-01", // non-hex span
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // non-hex flags
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent accepted malformed %q", v)
		}
	}
}

func TestExtractAbsentHeader(t *testing.T) {
	if _, ok := Extract(http.Header{}); ok {
		t.Error("Extract reported ok for an absent header")
	}
}

func TestRemoteParenting(t *testing.T) {
	// A root span under a remote trace context adopts the caller's
	// trace ID and records its span ID as the remote parent.
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	tc := TraceContext{TraceID: NewTraceID(), SpanID: 42}
	ctx = ContextWithRemote(ctx, tc)
	ctx, root := Start(ctx, "http.request")
	_, child := Start(ctx, "serve.compute")
	child.End()
	root.End()

	spans := rec.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.TraceID != tc.TraceID {
			t.Errorf("span %q trace ID %q, want caller's %q", s.Name, s.TraceID, tc.TraceID)
		}
	}
	r := spans[1] // root ends last
	if r.Name != "http.request" || r.RemoteParent != 42 {
		t.Errorf("root = %q remoteParent %d, want http.request / 42", r.Name, r.RemoteParent)
	}
	c := spans[0]
	if c.RemoteParent != 0 || c.Parent != r.ID {
		t.Errorf("child parent = %d remote %d, want parent %d remote 0", c.Parent, c.RemoteParent, r.ID)
	}
}

func TestValidTraceID(t *testing.T) {
	for id, want := range map[string]bool{
		NewTraceID():                        true,
		"":                                  false,
		"abc":                               false,
		"00000000000000000000000000000000":  false,
		"4bf92f3577b34da6a3ce929d0e0e4736":  true,
		"4BF92F3577B34DA6A3CE929D0E0E4736":  false,
		"4bf92f3577b34da6a3ce929d0e0e47361": false,
		"4bf92f3577b34da6a3ce929d0e0e473g":  false,
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

// FuzzExtractTraceparent asserts the parser's invariants hold for
// arbitrary header bytes: no panic, and any accepted value is exactly
// canonical (re-formatting the parsed parts reproduces the input).
func FuzzExtractTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add(strings.Repeat("0", 55))
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01extra")
	f.Fuzz(func(t *testing.T, v string) {
		tc, ok := ParseTraceparent(v)
		if !ok {
			return
		}
		if !ValidTraceID(tc.TraceID) {
			t.Fatalf("accepted %q but trace ID %q is invalid", v, tc.TraceID)
		}
		if tc.SpanID == 0 {
			t.Fatalf("accepted %q with zero span ID", v)
		}
		rebuilt := "00-" + tc.TraceID + "-" + FormatSpanID(tc.SpanID) + "-" + v[53:]
		if rebuilt != v {
			t.Fatalf("accepted non-canonical %q (rebuilds to %q)", v, rebuilt)
		}
	})
}
