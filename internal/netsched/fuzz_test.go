package netsched

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

// FuzzPartitionDAG throws arbitrary byte-encoded "models" — cycles,
// dangling edges, zero-size tensors, absurd budgets — at the graph
// scheduler. The invariants: never panic; a returned schedule never
// claims more retained bytes than the budget; every fused group passes
// the legality check (no fusing across an invalid edge).
func FuzzPartitionDAG(f *testing.F) {
	f.Add([]byte{3, 0, 16, 8, 1, 16, 8, 2, 16, 8, 0, 1, 1, 2}, int64(64<<10))
	f.Add([]byte{4, 1, 8, 4, 1, 8, 4, 1, 8, 4, 1, 8, 4, 0, 1, 0, 2, 1, 3, 2, 3}, int64(256<<10))
	f.Add([]byte{2, 0, 0, 0, 0, 12, 8, 1, 0}, int64(1<<20))                   // zero-size tensor
	f.Add([]byte{3, 0, 16, 8, 1, 16, 8, 2, 16, 8, 2, 0, 1, 1}, int64(32<<10)) // backward edge = cycle
	f.Add([]byte{1, 3, 16, 8, 0, 9}, int64(-5))

	f.Fuzz(func(t *testing.T, data []byte, l2 int64) {
		if len(data) == 0 {
			return
		}
		next := func(i int) byte {
			if i < len(data) {
				return data[i]
			}
			return 0
		}
		n := int(data[0]%6) + 1
		m := models.Model{Name: "fuzz"}
		pos := 1
		for i := 0; i < n; i++ {
			op := []tensor.OpType{tensor.Conv2D, tensor.PointwiseConv, tensor.DepthwiseConv, tensor.Pooling}[next(pos)%4]
			spatial := int(next(pos+1) % 40) // zero allowed
			ch := int(next(pos+2) % 33)      // zero allowed
			pos += 3
			rs, stride := 3, 1
			if op == tensor.PointwiseConv {
				rs = 1
			}
			if op == tensor.Pooling {
				stride = 2
			}
			in := 0
			if spatial > 0 {
				in = (spatial-1)*stride + rs
			}
			l := tensor.Layer{
				Name: "f", Op: op,
				Sizes: tensor.Sizes{tensor.N: 1, tensor.K: ch, tensor.C: ch,
					tensor.Y: in, tensor.X: in, tensor.R: rs, tensor.S: rs},
				StrideY: stride, StrideX: stride,
			}.Normalize()
			m.Layers = append(m.Layers, models.LayerInst{Layer: l, Count: 1 + int(next(pos)%3), Class: models.Classify(l)})
			pos++
		}
		// Edges straight from the bytes: backward edges (cycles), self
		// loops, and out-of-range endpoints all reach BuildGraph.
		for pos+1 < len(data) && len(m.Edges) < 12 {
			m.Edges = append(m.Edges, models.ActEdge{
				From: int(data[pos]%8) - 1,
				To:   int(data[pos+1] % 8),
			})
			pos += 2
		}

		s, err := RunFused(m, hw.Accel256(), FuseOptions{Options: Options{
			Dataflow: fixedKCP,
			L2Bytes:  l2,
		}})
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		g, err := BuildGraph(m)
		if err != nil {
			t.Fatalf("schedule produced for unbuildable graph: %v", err)
		}
		for _, gp := range s.Groups {
			if gp.RetainedBytes > l2 || (gp.Fused && gp.L2PeakBytes > l2) {
				t.Errorf("group [%d,%d] retained %d peak %d beyond budget %d",
					gp.Lo, gp.Hi, gp.RetainedBytes, gp.L2PeakBytes, l2)
			}
			if gp.Fused && !checkFusible(g, gp.Lo, gp.Hi) {
				t.Errorf("group [%d,%d] fused across an invalid edge", gp.Lo, gp.Hi)
			}
		}
	})
}
