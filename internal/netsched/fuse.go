package netsched

import (
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

// FuseOptions configures the graph-level scheduler.
type FuseOptions struct {
	Options
	// MaxGroupLayers bounds a fusion subgraph's layer count (default 8).
	MaxGroupLayers int
}

// MemberPlan is one layer of a fusion group with its chosen mapping.
type MemberPlan struct {
	Index    int
	Inst     models.LayerInst
	Dataflow dataflow.Dataflow
	Result   *core.Result
}

// GroupPlan is one fusion subgraph of a fused schedule: a contiguous
// interval [Lo, Hi] of the (topologically ordered) layer list executed
// as a unit. A fused group streams tile bands through L2: external
// activations cross DRAM once, intermediates never do, and each member
// whose output escapes the group writes it once. An unfused (singleton)
// group is priced exactly by the per-layer engine.
type GroupPlan struct {
	Lo, Hi int // inclusive layer interval
	Fused  bool
	Count  int // instances (equal across members of a fused group)

	// TileRows is the terminal-band height in output rows; Bands the
	// number of bands covering the writers' output. Zero when unfused.
	TileRows, Bands int
	// WeightsResident reports whether the group's weights stay in L2
	// across all bands (read from DRAM once) or stream in per band.
	WeightsResident bool

	// Externals lists the distinct external tensors the group reads:
	// a producer layer index < Lo, or -(member+1) for a member that
	// reads the model input.
	Externals []int

	// Claimed off-chip element transfers per instance. For fused groups
	// DRAMReads = ActReads + WeightReads and DRAMWrites = ActWrites; for
	// singletons the engine totals are authoritative and the act/weight
	// split is derived from the same retention decision.
	ActReads, WeightReads, ActWrites int64
	DRAMReads, DRAMWrites            int64

	// RetainedBytes is the L2 held by intermediate and external input
	// windows between fused stages; L2PeakBytes the full footprint
	// (windows + resident weights + staging + output bands) the
	// capacity check admitted.
	RetainedBytes, L2PeakBytes int64

	// Cycles is the group's on-chip runtime over all instances.
	Cycles int64

	Members []MemberPlan
}

// Writers returns the member indices whose output leaves the group
// (consumed beyond Hi, or not consumed at all).
func (gp *GroupPlan) Writers(g *Graph) []int {
	var w []int
	for i := gp.Lo; i <= gp.Hi; i++ {
		if writesOut(g, i, gp.Hi) {
			w = append(w, i)
		}
	}
	return w
}

func writesOut(g *Graph, i, hi int) bool {
	for _, c := range g.Outs[i] {
		if c > hi {
			return true
		}
	}
	return len(g.Outs[i]) == 0
}

// fusibleOp reports whether the streaming contract covers the operator:
// windowed spatial operators compose row bands; FC/GEMM and transposed
// convolutions do not.
func fusibleOp(op tensor.OpType) bool {
	switch op {
	case tensor.Conv2D, tensor.PointwiseConv, tensor.DepthwiseConv, tensor.Pooling:
		return true
	}
	return false
}

// extKey identifies the external tensor a member reads from producer p:
// the producer's layer index, or -(member+1) when the member reads the
// model input (each root reads its own input tensor).
func extKey(member, p int) int {
	if p < 0 {
		return -(member + 1)
	}
	return p
}

// checkFusible validates the fusion legality of interval [lo, hi]:
//
//   - every member operator is windowed-spatial (fusibleOp);
//   - all members repeat the same instance Count;
//   - every member past the first is connected: an in-group producer, or
//     an external producer tensor shared with an earlier member (the
//     inception branch heads);
//   - channel consistency: a member's input channels equal the summed
//     output channels of its producers (the concat contract);
//   - in-group edges are spatially composable: the consumer's input rows
//     exceed the producer's output rows by at most R-1 (padding slack),
//     and never fall short (no cropping); same for columns;
//   - every writer shares the same output height and width, so one band
//     index drives all of them.
func checkFusible(g *Graph, lo, hi int) bool {
	layers := g.Model.Layers
	count := layers[lo].Count
	extSeen := map[int]bool{}
	var wOutY, wOutX int
	for v := lo; v <= hi; v++ {
		lv := layers[v].Layer
		if !fusibleOp(lv.Op) || layers[v].Count != count {
			return false
		}
		connected := v == lo
		shares := false
		for _, p := range g.Ins[v] {
			if p >= lo {
				connected = true
				continue
			}
			if extSeen[extKey(v, p)] {
				shares = true
			}
		}
		if len(g.Ins[v]) == 0 && v != lo {
			// A root inside the group reads its own model input: no
			// shared tensor, no in-group producer.
			return false
		}
		if !connected && !shares {
			return false
		}
		if len(g.Ins[v]) > 0 {
			sum := 0
			for _, p := range g.Ins[v] {
				sum += outChannels(layers[p].Layer)
			}
			if sum != lv.Sizes.Get(tensor.C) {
				return false
			}
		}
		for _, p := range g.Ins[v] {
			if p < lo {
				extSeen[extKey(v, p)] = true
				continue
			}
			lp := layers[p].Layer
			dy := inRowsFor(lv, lv.OutY()) - lp.OutY()
			dx := inColsFor(lv, lv.OutX()) - lp.OutX()
			if dy < 0 || dy > lv.Sizes.Get(tensor.R)-1 ||
				dx < 0 || dx > lv.Sizes.Get(tensor.S)-1 {
				return false
			}
		}
		if writesOut(g, v, hi) {
			if wOutY == 0 {
				wOutY, wOutX = lv.OutY(), lv.OutX()
			} else if lv.OutY() != wOutY || lv.OutX() != wOutX {
				return false
			}
		}
	}
	return true
}

// inColsFor is inRowsFor along X.
func inColsFor(l tensor.Layer, outCols int) int {
	if outCols <= 0 {
		return 0
	}
	return (outCols-1)*l.StrideX + l.Sizes.Get(tensor.S)
}

// needOutRows computes, backward over the interval, how many output rows
// each member must produce so that every writer emits tileRows rows
// (clamped to each member's output height). Index i of the returned
// slice is member lo+i.
func needOutRows(g *Graph, lo, hi, tileRows int) []int {
	layers := g.Model.Layers
	need := make([]int, hi-lo+1)
	for v := hi; v >= lo; v-- {
		lv := layers[v].Layer
		rows := 0
		if writesOut(g, v, hi) {
			rows = min(tileRows, lv.OutY())
		}
		for _, c := range g.Outs[v] {
			if c > hi {
				continue
			}
			lc := layers[c].Layer
			in := inRowsFor(lc, need[c-lo])
			if in > lv.OutY() {
				in = lv.OutY()
			}
			if in > rows {
				rows = in
			}
		}
		need[v-lo] = rows
	}
	return need
}

// groupCost is one interval's evaluated plan.
type groupCost struct {
	feasible bool
	fused    bool
	tile     int
	bands    int
	// weightsResident: the group's weights stay in L2 across all bands
	// and cross DRAM once; otherwise they stream in again per band.
	weightsResident bool
	// msMembers: the members run their minimal-staging fallback mappings
	// because the compact re-tunes did not fit beside the band windows.
	msMembers bool

	actR, wR, actW int64 // per instance
	readsPI        int64 // per instance, total
	writesPI       int64

	retained, peak int64
	externals      []int
	cost           int64 // (reads+writes) x count — the DP objective
}

// fusedClaims prices a legal fused interval under the streaming
// contract: every distinct external activation tensor is read once —
// only the rows the group's consumers actually touch, which matters
// when a producer beyond an (elided) downsampling boundary emits more
// rows than the group reads — every member's weights are read once,
// every writer's output is written once, and intermediates never touch
// DRAM.
func fusedClaims(g *Graph, lo, hi int) (actR, wR, actW int64, externals []int) {
	layers := g.Model.Layers
	extRows := map[int]int{}
	for v := lo; v <= hi; v++ {
		lv := layers[v].Layer
		wR += scaledElems(lv, tensor.Weight)
		in := inRowsFor(lv, lv.OutY())
		if len(g.Ins[v]) == 0 {
			k := extKey(v, -1)
			if in > extRows[k] {
				extRows[k] = in
			}
			externals = appendKey(externals, k)
		}
		for _, p := range g.Ins[v] {
			if p >= lo {
				continue
			}
			if in > extRows[p] {
				extRows[p] = in
			}
			externals = appendKey(externals, p)
		}
		if writesOut(g, v, hi) {
			actW += scaledElems(lv, tensor.Output)
		}
	}
	for k, rows := range extRows {
		rowEl, d, limit := g.extRowInfo(k)
		if rows > limit {
			rows = limit
		}
		actR += scaleRows(rows, rowEl, d)
	}
	return actR, wR, actW, externals
}

// appendKey appends k when absent (the external lists stay tiny).
func appendKey(keys []int, k int) []int {
	for _, have := range keys {
		if have == k {
			return keys
		}
	}
	return append(keys, k)
}

// footprint returns the L2 bytes a fused interval needs at band height
// tileRows, split into the parts the group-level scheduler trades off:
// the sliding windows of intermediates and external inputs (the
// retained tensors — exactly the rows one band needs, since a window
// both fills and drains within its band), the resident weight total,
// and one output band per writer. Member staging is priced separately
// (stagingBytes) since it depends on which mapping the members run.
func (f *fuser) footprint(lo, hi, tileRows int) (retained, weights, outBands int64) {
	g, eb := f.g, f.eb
	layers := g.Model.Layers
	needT := needOutRows(g, lo, hi, tileRows)

	extRows := map[int]int{} // ext key -> producer rows needed per band
	for v := lo; v <= hi; v++ {
		lv := layers[v].Layer
		weights += scaledElems(lv, tensor.Weight) * eb
		if writesOut(g, v, hi) {
			outBands += int64(min(tileRows, lv.OutY())) * outRowElems(lv) * eb
		} else {
			retained += int64(needT[v-lo]) * outRowElems(lv) * eb
		}
		in := inRowsFor(lv, needT[v-lo])
		if len(g.Ins[v]) == 0 {
			k := extKey(v, -1)
			if in > extRows[k] {
				extRows[k] = in
			}
		}
		for _, p := range g.Ins[v] {
			if p < lo && in > extRows[p] {
				extRows[p] = in
			}
		}
	}
	for k, rows := range extRows {
		rowEl, _, limit := g.extRowInfo(k)
		if rows > limit {
			rows = limit
		}
		retained += int64(rows) * rowEl * eb
	}
	return retained, weights, outBands
}

// stagingBytes returns the widest member staging requirement under the
// two mapping flavors a fused group may run: the compact re-tune (best
// runtime under a quarter of the budget) and the minimal-staging
// fallback (budget-independent, which keeps the feasible set growing
// with L2Bytes).
func (f *fuser) stagingBytes(lo, hi int) (compact, ms int64) {
	for v := lo; v <= hi; v++ {
		if r, _ := f.compactMapping(v); r.L2ReqBytes() > compact {
			compact = r.L2ReqBytes()
		}
		if r, _ := f.msMapping(v); r.L2ReqBytes() > ms {
			ms = r.L2ReqBytes()
		}
	}
	return compact, ms
}

// tileCandidates returns the band heights to try, largest first: the
// full output height halved down to one row.
func tileCandidates(rows int) []int {
	var c []int
	for t := rows; t > 1; t = (t + 1) / 2 {
		c = append(c, t)
	}
	return append(c, 1)
}

// fuser evaluates interval costs for the DP partitioner.
type fuser struct {
	g       *Graph
	cfg     hw.Config
	eb      int64
	opt     FuseOptions
	results []*core.Result
	dfs     []dataflow.Dataflow
	// compact caches low-staging re-tunes for fused members; ms the
	// budget-independent minimal-staging fallbacks.
	compact   []*core.Result
	compactDF []dataflow.Dataflow
	ms        []*core.Result
	msDF      []dataflow.Dataflow
}

// compactMapping returns the mapping a layer runs inside a fused group.
// Tuned schedules re-tune each member with staging capped at a quarter
// of the L2 budget — the band windows and weights need the rest, and
// the tuner's unconstrained pick happily stages half the scratchpad.
// Fixed-dataflow schedules keep their mapping, as does any layer the
// capped re-tune cannot map.
func (f *fuser) compactMapping(i int) (*core.Result, dataflow.Dataflow) {
	if f.opt.Dataflow != nil {
		return f.results[i], f.dfs[i]
	}
	if f.compact == nil {
		f.compact = make([]*core.Result, len(f.results))
		f.compactDF = make([]dataflow.Dataflow, len(f.results))
	}
	if f.compact[i] != nil {
		return f.compact[i], f.compactDF[i]
	}
	budget := f.opt.L2Bytes / 4
	if budget < 4<<10 {
		budget = 4 << 10
	}
	ch, err := tuner.TuneLayer(f.g.Model.Layers[i].Layer, f.cfg, tuner.Options{
		Objective:  f.opt.Objective,
		MaxL2Bytes: budget,
	})
	if err != nil {
		f.compact[i], f.compactDF[i] = f.results[i], f.dfs[i]
	} else {
		f.compact[i], f.compactDF[i] = ch.Result, ch.Dataflow
	}
	return f.compact[i], f.compactDF[i]
}

// msMapping returns the budget-independent minimal-staging mapping for
// a fused member: the best mapping under the smallest power-of-two
// staging cap that admits one. Because it never consults L2Bytes, an
// interval feasible through it at some budget stays feasible at every
// larger budget — the keystone of the schedule's L2 monotonicity.
func (f *fuser) msMapping(i int) (*core.Result, dataflow.Dataflow) {
	if f.opt.Dataflow != nil {
		return f.results[i], f.dfs[i]
	}
	if f.ms == nil {
		f.ms = make([]*core.Result, len(f.results))
		f.msDF = make([]dataflow.Dataflow, len(f.results))
	}
	if f.ms[i] != nil {
		return f.ms[i], f.msDF[i]
	}
	for limit := int64(4 << 10); ; limit *= 2 {
		ch, err := tuner.TuneLayer(f.g.Model.Layers[i].Layer, f.cfg, tuner.Options{
			Objective:  f.opt.Objective,
			MaxL2Bytes: limit,
		})
		if err == nil {
			f.ms[i], f.msDF[i] = ch.Result, ch.Dataflow
			break
		}
		if limit > 1<<30 {
			f.ms[i], f.msDF[i] = f.results[i], f.dfs[i]
			break
		}
	}
	return f.ms[i], f.msDF[i]
}

// singletonCost prices layer i as its own group: the per-layer engine's
// DRAM traffic at the schedule's L2 budget. With a positive budget the
// claim is clamped to the spill (pure-streaming) traffic — more
// capacity can always fall back to streaming, so a singleton's claim is
// non-increasing in L2Bytes. The L2Bytes=0 sentinel reproduces the raw
// per-layer engine totals bit for bit.
func (f *fuser) singletonCost(i int) groupCost {
	r := f.results[i]
	var cl layerClaims
	if f.opt.L2Bytes == 0 {
		cl = priceLayerMirror(r, r.EffectiveL2)
		// The mirror reproduces applyL2 exactly; keep the engine totals
		// authoritative regardless.
		cl.scaleTo(r.DRAMReads, r.DRAMWrites)
	} else {
		cl = priceLayerMirror(r, f.opt.L2Bytes)
		if sp := spillClaims(r); sp.total() < cl.total() {
			cl = sp
		}
	}
	count := int64(f.g.Model.Layers[i].Count)
	return groupCost{
		feasible: true,
		actR:     cl.reads[tensor.Input] + cl.reads[tensor.Output],
		wR:       cl.reads[tensor.Weight],
		actW:     cl.writes,
		readsPI:  cl.readsTotal(),
		writesPI: cl.writes,
		cost:     (cl.readsTotal() + cl.writes) * count,
	}
}

// intervalCost prices interval [lo, hi]; hi > lo means a fused group,
// infeasible when illegal or when no band height fits in L2. Among the
// feasible (band height, weight residency) variants the cheapest claim
// wins, fewest bands on ties.
func (f *fuser) intervalCost(lo, hi int) groupCost {
	if lo == hi {
		return f.singletonCost(lo)
	}
	if f.opt.L2Bytes <= 0 || !checkFusible(f.g, lo, hi) {
		return groupCost{}
	}
	var wOutY int
	for v := lo; v <= hi; v++ {
		if writesOut(f.g, v, hi) {
			wOutY = f.g.Model.Layers[v].Layer.OutY()
			break
		}
	}
	actR, wElems, actW, ext := fusedClaims(f.g, lo, hi)
	count := int64(f.g.Model.Layers[lo].Count)
	stC, stMS := f.stagingBytes(lo, hi)
	var best groupCost
	for _, t := range tileCandidates(wOutY) {
		retained, weights, outBands := f.footprint(lo, hi, t)
		base := retained + outBands
		bands := (wOutY + t - 1) / t
		for _, resident := range []bool{true, false} {
			peak, wR := base, wElems
			if resident {
				peak += weights
			} else {
				wR = wElems * int64(bands)
			}
			// Prefer the compact mappings; fall back to the minimal-
			// staging ones when they do not fit beside the windows.
			staging, msUsed := stC, false
			if peak+staging > f.opt.L2Bytes {
				staging, msUsed = stMS, true
			}
			peak += staging
			if peak > f.opt.L2Bytes {
				continue
			}
			cost := (actR + wR + actW) * count
			if best.feasible && (cost > best.cost || (cost == best.cost && bands >= best.bands)) {
				continue
			}
			best = groupCost{
				feasible: true, fused: true,
				tile: t, bands: bands, weightsResident: resident,
				msMembers: msUsed,
				actR:      actR, wR: wR, actW: actW,
				readsPI: actR + wR, writesPI: actW,
				retained: retained, peak: peak,
				externals: ext,
				cost:      cost,
			}
		}
	}
	return best
}

// partitionDAG finds the contiguous partition of the layer list that
// minimizes total claimed DRAM traffic by interval DP. Because a fused
// interval's claim is independent of L2Bytes while its feasible set only
// grows with it, and singleton claims are non-increasing in L2Bytes, the
// optimum is monotonically non-increasing in L2Bytes.
func partitionDAG(f *fuser) []groupSpan {
	n := len(f.g.Model.Layers)
	maxLen := f.opt.MaxGroupLayers
	if maxLen <= 0 {
		maxLen = 8
	}
	const inf = int64(1) << 62
	dp := make([]int64, n+1)
	choice := make([]int, n+1)
	costs := make([]groupCost, n+1)
	for j := 1; j <= n; j++ {
		dp[j] = inf
		lo := j - maxLen
		if lo < 0 {
			lo = 0
		}
		for i := lo; i < j; i++ {
			c := f.intervalCost(i, j-1)
			if !c.feasible || dp[i] >= inf {
				continue
			}
			if dp[i]+c.cost < dp[j] {
				dp[j] = dp[i] + c.cost
				choice[j] = i
				costs[j] = c
			}
		}
	}
	var spans []groupSpan
	for j := n; j > 0; j = choice[j] {
		spans = append(spans, groupSpan{lo: choice[j], hi: j - 1, cost: costs[j]})
	}
	// Reverse into layer order.
	for l, r := 0, len(spans)-1; l < r; l, r = l+1, r-1 {
		spans[l], spans[r] = spans[r], spans[l]
	}
	return spans
}

type groupSpan struct {
	lo, hi int
	cost   groupCost
}

// layerClaims decomposes one layer's DRAM traffic per tensor.
type layerClaims struct {
	reads  [tensor.NumKinds]int64
	writes int64
}

func (c layerClaims) readsTotal() int64 {
	return c.reads[tensor.Input] + c.reads[tensor.Weight] + c.reads[tensor.Output]
}

func (c layerClaims) total() int64 { return c.readsTotal() + c.writes }

// scaleTo forces the decomposition's totals to the engine's, absorbing
// any residue into the input-read and output-write terms. The mirror is
// exact today; this keeps the sentinel path bit-identical to the
// per-layer engine even if the engine's retention model moves.
func (c *layerClaims) scaleTo(reads, writes int64) {
	c.reads[tensor.Input] += reads - c.readsTotal()
	c.writes = writes
}

// spillClaims prices the pure-streaming policy: every L2-level access
// goes off-chip (core's L2Spill accounting).
func spillClaims(r *core.Result) layerClaims {
	var c layerClaims
	c.reads[tensor.Input] = r.BufRead[0][tensor.Input]
	c.reads[tensor.Weight] = r.BufRead[0][tensor.Weight]
	c.writes = r.BufWrite[0][tensor.Output]
	return c
}

// priceLayerMirror re-derives core.Result.applyL2's DRAM traffic with a
// per-tensor decomposition. It must stay a bit-exact mirror of applyL2
// — the differential harness (internal/testutil) checks the totals
// against the engine across the layer zoo.
func priceLayerMirror(r *core.Result, l2 int64) layerClaims {
	req := r.L2ReqBytes()
	if l2 == 0 {
		l2 = req
	}
	if l2 < req {
		return spillClaims(r)
	}
	var sizes [tensor.NumKinds]int64
	for _, k := range tensor.AllKinds() {
		sizes[k] = scaledElems(r.Layer, k)
	}
	type cand struct {
		kind   tensor.Kind
		bytes  int64
		saving int64
	}
	cands := make([]cand, 0, 3)
	for _, k := range []tensor.Kind{tensor.Input, tensor.Weight, tensor.Output} {
		traffic := r.BufRead[0][k]
		if k == tensor.Output {
			traffic = r.BufWrite[0][k] + r.BufRead[0][k]
		}
		cands = append(cands, cand{k, sizes[k] * int64(r.Cfg.ElemBytes), traffic - sizes[k]})
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if float64(cands[j].saving)/float64(cands[j].bytes+1) >
				float64(cands[i].saving)/float64(cands[i].bytes+1) {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	spare := l2 - req
	var retainedK [tensor.NumKinds]bool
	for _, c := range cands {
		if c.saving > 0 && c.bytes <= spare {
			retainedK[c.kind] = true
			spare -= c.bytes
		}
	}
	var cl layerClaims
	for _, k := range []tensor.Kind{tensor.Input, tensor.Weight} {
		if retainedK[k] || r.BufRead[0][k] < sizes[k] {
			cl.reads[k] = sizes[k]
		} else {
			cl.reads[k] = r.BufRead[0][k]
		}
	}
	if retainedK[tensor.Output] || r.BufWrite[0][tensor.Output] <= sizes[tensor.Output] {
		cl.writes = sizes[tensor.Output]
	} else {
		cl.writes = r.BufWrite[0][tensor.Output]
		cl.reads[tensor.Output] = r.BufRead[0][tensor.Output]
	}
	return cl
}
