// Package netsched schedules a whole network layer by layer on one
// accelerator. Beyond summing per-layer costs it models the inter-layer
// data movement the paper's Table 4 points at:
//
//   - an activation produced by layer i can stay resident in the shared
//     L2 scratchpad and feed layer i+1 without a DRAM round trip, when
//     capacity allows;
//   - residual (skip) connections pin their source activation in L2
//     across the intervening layers — or pay the "extra global buffer /
//     DRAM accesses to fetch previous activation" the paper lists.
//
// Dataflows are chosen per layer: a fixed style, or the auto-tuner.
package netsched

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

// Edge is a skip connection: the output of layer From (index into the
// model's layer list) is consumed again by layer To (> From+1).
type Edge struct {
	From, To int
}

// Options configures a schedule.
type Options struct {
	// Dataflow maps each layer to its mapping; nil uses the auto-tuner
	// with the Objective below.
	Dataflow func(tensor.Layer) (dataflow.Dataflow, bool)
	// Objective drives the tuner when Dataflow is nil.
	Objective tuner.Objective
	// L2Bytes is the shared scratchpad capacity available for staging
	// and inter-layer residency. Zero disables residency (every layer
	// round-trips DRAM), reproducing a plain per-layer sum.
	L2Bytes int64
	// Residuals lists skip connections.
	Residuals []Edge
}

// LayerPlan is one scheduled layer.
type LayerPlan struct {
	Inst     models.LayerInst
	Dataflow dataflow.Dataflow
	Result   *core.Result
	// InputResident/OutputResident report whether the layer's activation
	// input/output stayed in L2 rather than round-tripping DRAM.
	InputResident  bool
	OutputResident bool
	// HeldBytes is L2 capacity pinned by live residual sources while
	// this layer runs.
	HeldBytes int64
	// DRAMReads/DRAMWrites are the layer's off-chip element transfers
	// after residency adjustments.
	DRAMReads, DRAMWrites int64
}

// Schedule is the end-to-end plan.
type Schedule struct {
	Plans       []LayerPlan
	TotalCycles int64
	// DRAMTraffic is the total off-chip elements moved, after residency.
	DRAMTraffic int64
	// DRAMSaved is the traffic residency avoided versus a no-residency
	// schedule.
	DRAMSaved int64
	EnergyPJ  float64
}

// Run schedules every layer of the model in order.
func Run(m models.Model, cfg hw.Config, opt Options) (*Schedule, error) {
	cfg = cfg.Normalize()
	if err := validateEdges(m, opt.Residuals); err != nil {
		return nil, err
	}
	// liveUntil[i] = last layer index that still needs layer i's output
	// beyond the immediate successor.
	liveUntil := map[int]int{}
	for _, e := range opt.Residuals {
		if e.To > liveUntil[e.From] {
			liveUntil[e.From] = e.To
		}
	}

	sched := &Schedule{}
	type resident struct {
		bytes  int64
		until  int   // last layer index that reads the tensor
		savedW int64 // DRAM write elements the producer's retention discounted
	}
	// live holds every activation resident in L2, keyed by producer. A
	// tensor that serves both as the next layer's chain input and as a
	// pinned residual source appears once, so its capacity is charged
	// once — two skip edges off one source likewise share one entry.
	live := map[int]resident{}

	for i, li := range m.Layers {
		layer := li.Layer
		df, r, err := chooseMapping(layer, cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("layer %s: %w", layer.Name, err)
		}

		// L2 pressure: every live tensor — the chain input and pinned
		// residual sources — shrinks what the layer may use for staging
		// and retention, each counted once.
		var residentBytes, heldBytes int64
		for p, ent := range live {
			if ent.until < i {
				delete(live, p)
				continue
			}
			residentBytes += ent.bytes
			if ent.until > i {
				// Held beyond this layer's own read: a residual pin.
				heldBytes += ent.bytes
			}
		}
		avail := opt.L2Bytes - residentBytes
		// fits is decided against the pre-clamp capacity: residency is
		// only real when the staging tiles fit beside everything live.
		fits := avail >= r.L2ReqBytes()
		if opt.L2Bytes > 0 {
			if !fits {
				// Resident activations crowd out the staging tiles: every
				// live source spills — paying the DRAM write its producer's
				// retention discounted — and consumers re-fetch it from
				// DRAM (the paper's "extra global buffer / DRAM accesses").
				// Eviction frees the whole budget for staging.
				for p, ent := range live {
					pp := &sched.Plans[p]
					pp.OutputResident = false
					pp.DRAMWrites += ent.savedW
					n := int64(m.Layers[p].Count)
					sched.DRAMTraffic += ent.savedW * n
					sched.DRAMSaved -= ent.savedW * n
					sched.EnergyPJ += float64(ent.savedW*n) * 200
					delete(live, p)
				}
				heldBytes = 0
				avail = opt.L2Bytes
				if avail < r.L2ReqBytes() {
					// The budget cannot even hold the staging tiles; the
					// layer still needs them to run.
					avail = r.L2ReqBytes()
				}
			}
			r = r.WithL2(avail)
		}

		plan := LayerPlan{
			Inst: li, Dataflow: df, Result: r,
			HeldBytes:  heldBytes,
			DRAMReads:  r.DRAMReads,
			DRAMWrites: r.DRAMWrites,
		}
		inBytes := scaled(layer, tensor.Input, cfg)
		outBytes := scaled(layer, tensor.Output, cfg)

		// Input residency: the previous layer's output feeds this layer
		// from L2 when it was kept (its bytes are already reserved in
		// residentBytes) and the staging tiles still fit beside it. A
		// crowded layer (fits == false) evicted everything above, so its
		// input always re-fetches.
		if _, ok := live[i-1]; ok && fits {
			plan.InputResident = true
			saved := min64(plan.DRAMReads, inBytes/int64(cfg.ElemBytes))
			plan.DRAMReads -= saved
			sched.DRAMSaved += saved
		}
		// Output residency: keep this output for the next layer when it
		// fits beside the staging tiles and everything still live.
		if opt.L2Bytes > 0 && outBytes <= avail-r.L2ReqBytes() {
			plan.OutputResident = true
			saved := min64(plan.DRAMWrites, outBytes/int64(cfg.ElemBytes))
			plan.DRAMWrites -= saved
			sched.DRAMSaved += saved
			// The kept output serves the next layer, and any residual
			// consumers beyond it; one entry covers all of them. A
			// source that cannot stay resident costs a DRAM write now
			// and a read at each consumer (the default accounting).
			until := i + 1
			if lu, ok := liveUntil[i]; ok && lu > until {
				until = lu
			}
			live[i] = resident{bytes: outBytes, until: until, savedW: saved}
		}

		n := int64(li.Count)
		sched.Plans = append(sched.Plans, plan)
		sched.TotalCycles += r.OnChipRuntime * n
		sched.DRAMTraffic += (plan.DRAMReads + plan.DRAMWrites) * n
		// Price the layer with its DRAM term replaced by the
		// residency-adjusted traffic.
		eb := r.EnergyDefault()
		perInst := eb.OnChip() + float64(plan.DRAMReads+plan.DRAMWrites)*200
		sched.EnergyPJ += perInst * float64(n)
	}
	// The DRAM link bounds the end-to-end runtime too.
	dramDelay := int64(float64(sched.DRAMTraffic)/cfg.OffchipBandwidth + 0.999999)
	if dramDelay > sched.TotalCycles {
		sched.TotalCycles = dramDelay
	}
	return sched, nil
}

func chooseMapping(layer tensor.Layer, cfg hw.Config, opt Options) (dataflow.Dataflow, *core.Result, error) {
	if opt.Dataflow != nil {
		if df, ok := opt.Dataflow(layer); ok {
			r, err := core.AnalyzeDataflow(df, layer, cfg)
			return df, r, err
		}
		// No mapping for this layer: fall through to the tuner so a
		// partially annotated network still schedules.
	}
	ch, err := tuner.TuneLayer(layer, cfg, tuner.Options{Objective: opt.Objective})
	if err != nil {
		return dataflow.Dataflow{}, nil, err
	}
	return ch.Dataflow, ch.Result, nil
}

func validateEdges(m models.Model, edges []Edge) error {
	for _, e := range edges {
		if e.From < 0 || e.To >= len(m.Layers) || e.To <= e.From+1 {
			return fmt.Errorf("netsched: residual edge %d->%d invalid (need From < To-1 within %d layers)",
				e.From, e.To, len(m.Layers))
		}
	}
	return nil
}

// scaled returns tensor k's size in bytes, density-scaled.
func scaled(layer tensor.Layer, k tensor.Kind, cfg hw.Config) int64 {
	d := layer.Density[k]
	if d == 0 {
		d = 1
	}
	return int64(float64(layer.TensorSize(k))*d+0.5) * int64(cfg.ElemBytes)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
