package netsched

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

// Graph is the activation DAG of a model: for each layer, the producer
// layers whose outputs it consumes (channel-wise concatenated) and the
// consumer layers that read its output. A model with an empty Edges list
// is materialized as the linear chain.
type Graph struct {
	Model models.Model
	// Ins[i] lists the producer layer indices of layer i, ascending; a
	// layer with no producers reads the model input. Outs[i] lists the
	// consumers of layer i's output, ascending.
	Ins  [][]int
	Outs [][]int
}

// BuildGraph validates the model's activation DAG and materializes the
// adjacency lists. Duplicate edges collapse to one; an empty edge list
// becomes the linear chain i-1 -> i.
func BuildGraph(m models.Model) (*Graph, error) {
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("netsched: model %s has no layers", m.Name)
	}
	if err := m.ValidateEdges(); err != nil {
		return nil, err
	}
	n := len(m.Layers)
	g := &Graph{Model: m, Ins: make([][]int, n), Outs: make([][]int, n)}
	edges := m.Edges
	if len(edges) == 0 {
		edges = make([]models.ActEdge, 0, n-1)
		for i := 1; i < n; i++ {
			edges = append(edges, models.ActEdge{From: i - 1, To: i})
		}
	}
	seen := make(map[models.ActEdge]bool, len(edges))
	for _, e := range edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		g.Ins[e.To] = append(g.Ins[e.To], e.From)
		g.Outs[e.From] = append(g.Outs[e.From], e.To)
	}
	for i := range g.Ins {
		sort.Ints(g.Ins[i])
		sort.Ints(g.Outs[i])
	}
	return g, nil
}

// Roots returns the layers with no producer: they read the model input.
func (g *Graph) Roots() []int {
	var r []int
	for i, ins := range g.Ins {
		if len(ins) == 0 {
			r = append(r, i)
		}
	}
	return r
}

// outChannels returns the number of output channels layer l produces:
// K for channel-producing operators, C for the depth-wise family whose
// output stays coupled to the input channels.
func outChannels(l tensor.Layer) int {
	if l.TensorDims(tensor.Output).Has(tensor.K) {
		return l.Sizes.Get(tensor.K)
	}
	return l.Sizes.Get(tensor.C)
}

// scaledElems returns tensor k's density-scaled element count, mirroring
// the engine's footprint rounding bit for bit (core.scaleCount): a zero
// density scales to zero, which is the pooling-weight convention
// (no weight tensor at all). Normalized layers never carry density zero
// on activations.
func scaledElems(l tensor.Layer, k tensor.Kind) int64 {
	d := l.Density[k]
	if d >= 1 {
		return l.TensorSize(k)
	}
	return int64(float64(l.TensorSize(k))*d + 0.5)
}

// outRowElems returns the dense element count of one output row
// (N × channels × OutX); output tensors stream row-granular through L2
// in a fused schedule.
func outRowElems(l tensor.Layer) int64 {
	oy := l.OutY()
	if oy == 0 {
		return 0
	}
	return l.TensorSize(tensor.Output) / int64(oy)
}

// inRowsFor returns how many input rows layer l needs to produce
// outRows output rows: (outRows-1)*strideY + R.
func inRowsFor(l tensor.Layer, outRows int) int {
	if outRows <= 0 {
		return 0
	}
	return (outRows-1)*l.StrideY + l.Sizes.Get(tensor.R)
}

// extRowInfo resolves an external-tensor key (a producer layer index,
// or -(member+1) for a member reading the model input) to its dense
// row element count, density, and row limit.
func (g *Graph) extRowInfo(key int) (rowEl int64, density float64, limit int) {
	if key < 0 {
		l := g.Model.Layers[-key-1].Layer
		limit = l.Sizes.Get(tensor.Y)
		if limit == 0 {
			return 0, l.Density[tensor.Input], 0
		}
		return l.TensorSize(tensor.Input) / int64(limit), l.Density[tensor.Input], limit
	}
	l := g.Model.Layers[key].Layer
	limit = l.OutY()
	return outRowElems(l), l.Density[tensor.Output], limit
}

// scaleRows prices rows x rowEl dense elements at density d with the
// engine's rounding (core.scaleCount).
func scaleRows(rows int, rowEl int64, d float64) int64 {
	n := int64(rows) * rowEl
	if d >= 1 {
		return n
	}
	return int64(float64(n)*d + 0.5)
}

// elemBytes returns the configured element width, defaulting to one.
func elemBytes(cfg hw.Config) int64 {
	if cfg.ElemBytes <= 0 {
		return 1
	}
	return int64(cfg.ElemBytes)
}
