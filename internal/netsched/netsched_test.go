package netsched

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

// chain builds a small three-layer CNN whose activations fit in a
// megabyte-class L2.
func chain() models.Model {
	mk := func(name string, k, c, out int) models.LayerInst {
		in := out + 2
		l := tensor.Layer{
			Name: name, Op: tensor.Conv2D,
			Sizes: tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c, tensor.Y: in, tensor.X: in, tensor.R: 3, tensor.S: 3},
		}.Normalize()
		return models.LayerInst{Layer: l, Count: 1, Class: models.Classify(l)}
	}
	return models.Model{Name: "chain", Layers: []models.LayerInst{
		mk("A", 16, 8, 28),
		mk("B", 16, 16, 28),
		mk("C", 16, 16, 28),
		mk("D", 16, 16, 28),
	}}
}

func fixedKCP(tensor.Layer) (dataflow.Dataflow, bool) {
	return dataflows.Get("KC-P"), true
}

func TestResidencySavesDRAM(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	noRes, err := Run(m, cfg, Options{Dataflow: fixedKCP})
	if err != nil {
		t.Fatal(err)
	}
	withRes, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if withRes.DRAMTraffic >= noRes.DRAMTraffic {
		t.Errorf("residency did not cut DRAM traffic: %d vs %d",
			withRes.DRAMTraffic, noRes.DRAMTraffic)
	}
	if withRes.DRAMSaved == 0 {
		t.Error("no savings recorded")
	}
	if withRes.EnergyPJ >= noRes.EnergyPJ {
		t.Errorf("residency did not cut energy: %v vs %v", withRes.EnergyPJ, noRes.EnergyPJ)
	}
	// Middle layers should see both input and output resident.
	mid := withRes.Plans[1]
	if !mid.InputResident || !mid.OutputResident {
		t.Errorf("middle layer residency: in=%v out=%v", mid.InputResident, mid.OutputResident)
	}
}

func TestTinyL2DisablesResidency(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	s, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Plans {
		if p.InputResident || p.OutputResident {
			t.Errorf("layer %s resident despite 4 KB L2", p.Inst.Layer.Name)
		}
	}
}

func TestResidualPinning(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	// Skip connection from layer 0's output to layer 3.
	s, err := Run(m, cfg, Options{
		Dataflow: fixedKCP, L2Bytes: 1 << 20,
		Residuals: []Edge{{From: 0, To: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Layers 1 and 2 run with the residual pinned.
	if s.Plans[1].HeldBytes == 0 || s.Plans[2].HeldBytes == 0 {
		t.Errorf("residual not pinned: held=%d,%d", s.Plans[1].HeldBytes, s.Plans[2].HeldBytes)
	}
	if s.Plans[3].HeldBytes != 0 {
		t.Errorf("residual still pinned at its consumer: %d", s.Plans[3].HeldBytes)
	}
	// Pinning shrinks retention capacity: DRAM traffic must not drop
	// below the unpinned schedule's.
	free, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.DRAMTraffic < free.DRAMTraffic {
		t.Errorf("pinned schedule moved less DRAM (%d) than free (%d)", s.DRAMTraffic, free.DRAMTraffic)
	}
}

func TestEdgeValidation(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	for _, bad := range []Edge{{From: 2, To: 3}, {From: -1, To: 3}, {From: 0, To: 99}} {
		if _, err := Run(m, cfg, Options{Dataflow: fixedKCP, Residuals: []Edge{bad}}); err == nil {
			t.Errorf("edge %+v accepted", bad)
		}
	}
}

func TestTunedSchedule(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	tuned, err := Run(m, cfg, Options{L2Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.TotalCycles > fixed.TotalCycles {
		t.Errorf("tuned schedule (%d) slower than fixed KC-P (%d)",
			tuned.TotalCycles, fixed.TotalCycles)
	}
}
