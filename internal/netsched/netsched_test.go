package netsched

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

// chain builds a small three-layer CNN whose activations fit in a
// megabyte-class L2.
func chain() models.Model {
	mk := func(name string, k, c, out int) models.LayerInst {
		in := out + 2
		l := tensor.Layer{
			Name: name, Op: tensor.Conv2D,
			Sizes: tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c, tensor.Y: in, tensor.X: in, tensor.R: 3, tensor.S: 3},
		}.Normalize()
		return models.LayerInst{Layer: l, Count: 1, Class: models.Classify(l)}
	}
	return models.Model{Name: "chain", Layers: []models.LayerInst{
		mk("A", 16, 8, 28),
		mk("B", 16, 16, 28),
		mk("C", 16, 16, 28),
		mk("D", 16, 16, 28),
	}}
}

func fixedKCP(tensor.Layer) (dataflow.Dataflow, bool) {
	return dataflows.Get("KC-P"), true
}

func TestResidencySavesDRAM(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	noRes, err := Run(m, cfg, Options{Dataflow: fixedKCP})
	if err != nil {
		t.Fatal(err)
	}
	withRes, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if withRes.DRAMTraffic >= noRes.DRAMTraffic {
		t.Errorf("residency did not cut DRAM traffic: %d vs %d",
			withRes.DRAMTraffic, noRes.DRAMTraffic)
	}
	if withRes.DRAMSaved == 0 {
		t.Error("no savings recorded")
	}
	if withRes.EnergyPJ >= noRes.EnergyPJ {
		t.Errorf("residency did not cut energy: %v vs %v", withRes.EnergyPJ, noRes.EnergyPJ)
	}
	// Middle layers should see both input and output resident.
	mid := withRes.Plans[1]
	if !mid.InputResident || !mid.OutputResident {
		t.Errorf("middle layer residency: in=%v out=%v", mid.InputResident, mid.OutputResident)
	}
}

func TestTinyL2DisablesResidency(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	s, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Plans {
		if p.InputResident || p.OutputResident {
			t.Errorf("layer %s resident despite 4 KB L2", p.Inst.Layer.Name)
		}
	}
}

func TestResidualPinning(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	// Skip connection from layer 0's output to layer 3.
	s, err := Run(m, cfg, Options{
		Dataflow: fixedKCP, L2Bytes: 1 << 20,
		Residuals: []Edge{{From: 0, To: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Layers 1 and 2 run with the residual pinned.
	if s.Plans[1].HeldBytes == 0 || s.Plans[2].HeldBytes == 0 {
		t.Errorf("residual not pinned: held=%d,%d", s.Plans[1].HeldBytes, s.Plans[2].HeldBytes)
	}
	if s.Plans[3].HeldBytes != 0 {
		t.Errorf("residual still pinned at its consumer: %d", s.Plans[3].HeldBytes)
	}
	// Pinning shrinks retention capacity: DRAM traffic must not drop
	// below the unpinned schedule's.
	free, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.DRAMTraffic < free.DRAMTraffic {
		t.Errorf("pinned schedule moved less DRAM (%d) than free (%d)", s.DRAMTraffic, free.DRAMTraffic)
	}
}

// TestCrowdedL2DeniesResidency pins the spill path: when a retained
// activation crowds out the next layer's staging tiles, the consumer
// must NOT be treated as input-resident, and the producer's discounted
// DRAM write must be charged back when the tensor is evicted. A
// regression here silently understates DRAM traffic for residual-heavy
// models at small L2 budgets.
func TestCrowdedL2DeniesResidency(t *testing.T) {
	mk := func(name string, k, c, yx, rs int) models.LayerInst {
		l := tensor.Layer{
			Name: name, Op: tensor.Conv2D,
			Sizes: tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c, tensor.Y: yx, tensor.X: yx, tensor.R: rs, tensor.S: rs},
		}.Normalize()
		return models.LayerInst{Layer: l, Count: 1, Class: models.Classify(l)}
	}
	m := models.Model{Name: "crowd", Layers: []models.LayerInst{
		mk("small", 8, 8, 28, 3),
		mk("big", 32, 64, 56, 5),
	}}
	cfg := hw.Accel256()
	// Probe the staging requirements, then pick an L2 that holds layer
	// 0's staging plus its whole output but not layer 1's staging beside
	// that output.
	probe, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	reqA := probe.Plans[0].Result.L2ReqBytes()
	reqB := probe.Plans[1].Result.L2ReqBytes()
	outA := scaled(m.Layers[0].Layer, tensor.Output, cfg)
	if reqA+outA >= reqB {
		t.Fatalf("test construction broken: need reqA+outA < reqB, got reqA=%d outA=%d reqB=%d", reqA, outA, reqB)
	}
	s, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: reqA + outA})
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Plans[0], s.Plans[1]
	if b.InputResident {
		t.Error("crowded layer granted input residency; its input must re-fetch from DRAM")
	}
	if b.DRAMReads != b.Result.DRAMReads {
		t.Errorf("crowded layer's DRAM reads discounted: plan %d vs result %d", b.DRAMReads, b.Result.DRAMReads)
	}
	if a.OutputResident {
		t.Error("evicted output still marked resident")
	}
	if s.DRAMSaved != 0 {
		t.Errorf("schedule claims %d elements saved; the spilled output must be charged back", s.DRAMSaved)
	}
}

// TestPartialDataflowFallsBackToTuner pins the promise cmd/maestro makes
// for partially annotated network files: a layer whose Dataflow callback
// reports ok=false is auto-tuned rather than failing the schedule.
func TestPartialDataflowFallsBackToTuner(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	partial := func(l tensor.Layer) (dataflow.Dataflow, bool) {
		if l.Name == "B" {
			return dataflow.Dataflow{}, false
		}
		return dataflows.Get("KC-P"), true
	}
	s, err := Run(m, cfg, Options{Dataflow: partial, L2Bytes: 1 << 20})
	if err != nil {
		t.Fatalf("partially annotated network failed to schedule: %v", err)
	}
	if len(s.Plans[1].Dataflow.Directives) == 0 {
		t.Error("unannotated layer got no tuned dataflow")
	}
}

func TestEdgeValidation(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	for _, bad := range []Edge{{From: 2, To: 3}, {From: -1, To: 3}, {From: 0, To: 99}} {
		if _, err := Run(m, cfg, Options{Dataflow: fixedKCP, Residuals: []Edge{bad}}); err == nil {
			t.Errorf("edge %+v accepted", bad)
		}
	}
}

func TestTunedSchedule(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	tuned, err := Run(m, cfg, Options{L2Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Run(m, cfg, Options{Dataflow: fixedKCP, L2Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.TotalCycles > fixed.TotalCycles {
		t.Errorf("tuned schedule (%d) slower than fixed KC-P (%d)",
			tuned.TotalCycles, fixed.TotalCycles)
	}
}
