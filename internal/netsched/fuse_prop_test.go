package netsched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

// randModel generates a random windowed-spatial DAG: mostly a chain of
// conv/pointwise/depthwise/pooling layers, with occasional two-branch
// splits that rejoin through a channel concat — the structures the
// fusion legality rules have to handle. Everything is derived from r,
// so a seed reproduces the model exactly.
func randModel(r *rand.Rand, seed int64) models.Model {
	m := models.Model{Name: fmt.Sprintf("rand-%d", seed)}
	spatial := []int{16, 24, 28, 32}[r.Intn(4)]
	ch := []int{8, 16, 32}[r.Intn(3)]
	n := 3 + r.Intn(6)

	addLayer := func(name string, op tensor.OpType, k, c, out, rs, stride int) int {
		in := (out-1)*stride + rs
		sz := tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c,
			tensor.Y: in, tensor.X: in, tensor.R: rs, tensor.S: rs}
		l := tensor.Layer{Name: name, Op: op, Sizes: sz, StrideY: stride, StrideX: stride}.Normalize()
		m.Layers = append(m.Layers, models.LayerInst{Layer: l, Count: 1, Class: models.Classify(l)})
		return len(m.Layers) - 1
	}
	prev := addLayer("L0", tensor.Conv2D, ch, 8, spatial, 3, 1)
	prevOut := ch
	for len(m.Layers) < n {
		i := len(m.Layers)
		if r.Intn(4) == 0 && n-len(m.Layers) >= 3 {
			// Two pointwise branches off prev, rejoined by a concat
			// consumer — the inception shape.
			k1, k2 := 8<<r.Intn(2), 8<<r.Intn(2)
			a := addLayer(fmt.Sprintf("L%d", i), tensor.PointwiseConv, k1, prevOut, spatial, 1, 1)
			b := addLayer(fmt.Sprintf("L%d", i+1), tensor.PointwiseConv, k2, prevOut, spatial, 1, 1)
			j := addLayer(fmt.Sprintf("L%d", i+2), tensor.Conv2D, ch, k1+k2, spatial-2, 3, 1)
			m.Edges = append(m.Edges,
				models.ActEdge{From: prev, To: a}, models.ActEdge{From: prev, To: b},
				models.ActEdge{From: a, To: j}, models.ActEdge{From: b, To: j})
			prev, prevOut, spatial = j, ch, spatial-2
			continue
		}
		var next int
		switch r.Intn(4) {
		case 0: // 3x3 conv, spatial shrinks by 2 (deficit 0: fusable)
			if spatial <= 4 {
				next = addLayer(fmt.Sprintf("L%d", i), tensor.PointwiseConv, ch, prevOut, spatial, 1, 1)
			} else {
				next = addLayer(fmt.Sprintf("L%d", i), tensor.Conv2D, ch, prevOut, spatial-2, 3, 1)
				spatial -= 2
			}
		case 1: // pointwise, same spatial
			next = addLayer(fmt.Sprintf("L%d", i), tensor.PointwiseConv, ch, prevOut, spatial, 1, 1)
		case 2: // depthwise 3x3
			if spatial <= 4 {
				next = addLayer(fmt.Sprintf("L%d", i), tensor.PointwiseConv, ch, prevOut, spatial, 1, 1)
			} else {
				next = addLayer(fmt.Sprintf("L%d", i), tensor.DepthwiseConv, 1, prevOut, spatial-2, 3, 1)
				spatial -= 2
			}
		default: // stride-2 pooling, spatial halves (illegal to fuse across)
			if spatial < 8 {
				next = addLayer(fmt.Sprintf("L%d", i), tensor.PointwiseConv, ch, prevOut, spatial, 1, 1)
			} else {
				out := (spatial - 2) / 2
				next = addLayer(fmt.Sprintf("L%d", i), tensor.Pooling, 1, prevOut, out, 2, 2)
				spatial = out
			}
		}
		if len(m.Edges) > 0 {
			m.Edges = append(m.Edges, models.ActEdge{From: prev, To: next})
		}
		prev, prevOut = next, outChannels(m.Layers[next].Layer)
	}
	return m
}

// sliceModel keeps layers [lo, hi], remapping DAG edges into the new
// index space and dropping edges that cross the cut — the shrinking
// step of the property tests.
func sliceModel(m models.Model, lo, hi int) models.Model {
	out := models.Model{Name: fmt.Sprintf("%s[%d:%d]", m.Name, lo, hi), Layers: m.Layers[lo : hi+1]}
	for _, e := range m.Edges {
		if e.From >= lo && e.To <= hi {
			out.Edges = append(out.Edges, models.ActEdge{From: e.From - lo, To: e.To - lo})
		}
	}
	if len(m.Edges) > 0 && len(out.Edges) == 0 && len(out.Layers) > 1 {
		// Keep the DAG explicit so a sliced branchy model does not turn
		// into an implicit chain with different semantics.
		for i := 1; i < len(out.Layers); i++ {
			out.Edges = append(out.Edges, models.ActEdge{From: i - 1, To: i})
		}
	}
	return out
}

// monotoneViolation runs the schedule at l2a < l2b and reports a
// positive-size violation message when traffic increased with capacity.
func monotoneViolation(t *testing.T, m models.Model, cfg hw.Config, l2a, l2b int64) string {
	t.Helper()
	a, err := RunFused(m, cfg, FuseOptions{Options: Options{L2Bytes: l2a}})
	if err != nil {
		return ""
	}
	b, err := RunFused(m, cfg, FuseOptions{Options: Options{L2Bytes: l2b}})
	if err != nil {
		return ""
	}
	if b.DRAMTraffic > a.DRAMTraffic {
		return fmt.Sprintf("DRAM traffic rose with L2: %d @ %d -> %d @ %d",
			a.DRAMTraffic, l2a, b.DRAMTraffic, l2b)
	}
	return ""
}

// TestFusedMonotoneInL2 is the property test: over seeded random DAGs
// and random positive L2 pairs, claimed DRAM traffic never increases
// with capacity. On a violation the model shrinks from both ends to the
// minimal failing subgraph before reporting.
func TestFusedMonotoneInL2(t *testing.T) {
	cfg := hw.Accel256()
	const seeds = 12
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := randModel(r, seed)
		for trial := 0; trial < 3; trial++ {
			// Positive budgets only: L2Bytes=0 is the no-fusion sentinel,
			// not a zero-capacity point on the curve.
			l2a := int64(8<<10) + int64(r.Intn(1<<18))
			l2b := l2a + int64(r.Intn(1<<19)) + 1
			msg := monotoneViolation(t, m, cfg, l2a, l2b)
			if msg == "" {
				continue
			}
			// Shrink: drop layers from either end while it still fails.
			lo, hi := 0, len(m.Layers)-1
			for lo < hi {
				if monotoneViolation(t, sliceModel(m, lo+1, hi), cfg, l2a, l2b) != "" {
					lo++
					continue
				}
				if monotoneViolation(t, sliceModel(m, lo, hi-1), cfg, l2a, l2b) != "" {
					hi--
					continue
				}
				break
			}
			min := sliceModel(m, lo, hi)
			t.Fatalf("seed %d: %s\nminimal failing subgraph %s: %d layers, edges %v",
				seed, msg, min.Name, len(min.Layers), min.Edges)
		}
	}
}

// TestFusedMACsInvariant: however the DP partitions the DAG — across
// budgets and group-size caps — the scheduled members' total arithmetic
// equals the model's.
func TestFusedMACsInvariant(t *testing.T) {
	cfg := hw.Accel256()
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed + 100))
		m := randModel(r, seed+100)
		want := m.MACs()
		for _, maxLen := range []int{1, 2, 3, 8} {
			for _, l2 := range []int64{0, 32 << 10, 256 << 10} {
				s, err := RunFused(m, cfg, FuseOptions{
					Options: Options{L2Bytes: l2}, MaxGroupLayers: maxLen,
				})
				if err != nil {
					t.Fatalf("seed %d maxLen %d l2 %d: %v", seed, maxLen, l2, err)
				}
				var got int64
				for _, g := range s.Groups {
					for _, mb := range g.Members {
						got += mb.Inst.Layer.MACs() * int64(mb.Inst.Count)
					}
					if g.Hi-g.Lo+1 > maxLen {
						t.Errorf("seed %d: group [%d,%d] exceeds MaxGroupLayers %d", seed, g.Lo, g.Hi, maxLen)
					}
				}
				if got != want {
					t.Errorf("seed %d maxLen %d l2 %d: MACs %d != model %d", seed, maxLen, l2, got, want)
				}
			}
		}
	}
}

// TestFusedRetentionWithinBudget: no schedule may claim more retained
// or peak L2 bytes than the budget it was given.
func TestFusedRetentionWithinBudget(t *testing.T) {
	cfg := hw.Accel256()
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed + 200))
		m := randModel(r, seed+200)
		for _, l2 := range []int64{16 << 10, 128 << 10, 1 << 20} {
			s, err := RunFused(m, cfg, FuseOptions{Options: Options{L2Bytes: l2}})
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range s.Groups {
				if g.RetainedBytes > l2 || (g.Fused && g.L2PeakBytes > l2) {
					t.Errorf("seed %d l2 %d: group [%d,%d] retained %d peak %d",
						seed, l2, g.Lo, g.Hi, g.RetainedBytes, g.L2PeakBytes)
				}
			}
		}
	}
}
