package netsched

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

// edgeCfg is the 256 KiB-L2 configuration the acceptance criterion is
// stated against.
func edgeCfg() hw.Config {
	cfg := hw.Accel256()
	cfg.L2Size = 256 << 10
	return cfg
}

func TestFusedGoogLeNetAcceptance(t *testing.T) {
	m := models.GoogLeNet()
	cfg := edgeCfg()
	s, err := RunFused(m, cfg, FuseOptions{Options: Options{L2Bytes: 256 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if s.FusedGroups() == 0 {
		t.Fatal("no fused groups on GoogLeNet at 256 KiB")
	}
	saving := 1 - float64(s.ActTraffic)/float64(s.BaselineAct)
	if saving < 0.25 {
		t.Errorf("activation traffic saving %.1f%% < 25%% (fused %d, baseline %d)",
			100*saving, s.ActTraffic, s.BaselineAct)
	}
	if s.DRAMTraffic > s.BaselineDRAM {
		t.Errorf("fused DRAM %d exceeds per-layer baseline %d", s.DRAMTraffic, s.BaselineDRAM)
	}
	if s.DRAMSaved != s.BaselineDRAM-s.DRAMTraffic {
		t.Errorf("DRAMSaved %d != baseline-fused %d", s.DRAMSaved, s.BaselineDRAM-s.DRAMTraffic)
	}
	for _, g := range s.Groups {
		if g.Fused && g.L2PeakBytes > s.L2Bytes {
			t.Errorf("group [%d,%d] peak %d exceeds L2 %d", g.Lo, g.Hi, g.L2PeakBytes, s.L2Bytes)
		}
	}
}

// TestFusedGroupsPartition checks the DP output is a contiguous partition
// of the layer list with consistent per-group bookkeeping.
func TestFusedGroupsPartition(t *testing.T) {
	for _, m := range []models.Model{chain(), models.GoogLeNet(), models.ResNet50()} {
		s, err := RunFused(m, edgeCfg(), FuseOptions{Options: Options{L2Bytes: 256 << 10}})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		next := 0
		for _, g := range s.Groups {
			if g.Lo != next || g.Hi < g.Lo {
				t.Fatalf("%s: group [%d,%d] breaks partition at %d", m.Name, g.Lo, g.Hi, next)
			}
			if len(g.Members) != g.Hi-g.Lo+1 {
				t.Errorf("%s: group [%d,%d] has %d members", m.Name, g.Lo, g.Hi, len(g.Members))
			}
			if g.Fused != (g.Hi > g.Lo) {
				t.Errorf("%s: group [%d,%d] fused=%v", m.Name, g.Lo, g.Hi, g.Fused)
			}
			for _, mb := range g.Members {
				if mb.Inst.Count != g.Count && g.Fused {
					t.Errorf("%s: group [%d,%d] member %d count %d != group %d",
						m.Name, g.Lo, g.Hi, mb.Index, mb.Inst.Count, g.Count)
				}
			}
			next = g.Hi + 1
		}
		if next != len(m.Layers) {
			t.Errorf("%s: partition covers %d of %d layers", m.Name, next, len(m.Layers))
		}
	}
}

// TestFusedSentinelMatchesPerLayerSum pins the L2Bytes=0 contract: no
// fusion, no retention, and DRAM traffic bit-identical to the plain
// per-layer schedule.
func TestFusedSentinelMatchesPerLayerSum(t *testing.T) {
	for _, m := range []models.Model{chain(), models.GoogLeNet()} {
		for name, opt := range map[string]Options{
			"fixed": {Dataflow: fixedKCP},
			"tuned": {},
		} {
			fused, err := RunFused(m, hw.Accel256(), FuseOptions{Options: opt})
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, name, err)
			}
			plain, err := Run(m, hw.Accel256(), opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, name, err)
			}
			if fused.FusedGroups() != 0 {
				t.Errorf("%s/%s: %d fused groups despite L2Bytes=0", m.Name, name, fused.FusedGroups())
			}
			if fused.DRAMTraffic != plain.DRAMTraffic {
				t.Errorf("%s/%s: sentinel DRAM %d != per-layer sum %d",
					m.Name, name, fused.DRAMTraffic, plain.DRAMTraffic)
			}
			if fused.BaselineDRAM != fused.DRAMTraffic {
				t.Errorf("%s/%s: baseline %d != traffic %d at sentinel",
					m.Name, name, fused.BaselineDRAM, fused.DRAMTraffic)
			}
		}
	}
}

func TestFusedRejectsNegativeL2(t *testing.T) {
	if _, err := RunFused(chain(), hw.Accel256(), FuseOptions{Options: Options{L2Bytes: -1}}); err == nil {
		t.Error("negative L2Bytes accepted")
	}
}

func TestBuildGraphChainFallback(t *testing.T) {
	m := chain()
	g, err := BuildGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Layers {
		if i > 0 && (len(g.Ins[i]) != 1 || g.Ins[i][0] != i-1) {
			t.Errorf("layer %d ins %v, want [%d]", i, g.Ins[i], i-1)
		}
	}
	if got := g.Roots(); len(got) != 1 || got[0] != 0 {
		t.Errorf("roots %v, want [0]", got)
	}
	if _, err := BuildGraph(models.Model{Name: "empty"}); err == nil {
		t.Error("empty model accepted")
	}
}

func TestBuildGraphDedup(t *testing.T) {
	m := chain()
	m.Edges = []models.ActEdge{{From: 0, To: 1}, {From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}
	g, err := BuildGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Outs[0]) != 1 {
		t.Errorf("duplicate edge kept: outs[0]=%v", g.Outs[0])
	}
}

func TestCheckFusible(t *testing.T) {
	g, err := BuildGraph(models.GoogLeNet())
	if err != nil {
		t.Fatal(err)
	}
	// Within an inception module the branches compose (3..8 is module 3a).
	if !checkFusible(g, 3, 8) {
		t.Error("inception module 3a rejected")
	}
	// The stem CONV1 -> CONV2r crosses an (omitted) maxpool: the consumer
	// needs fewer rows than the producer emits, so fusing would drop data.
	if checkFusible(g, 0, 1) {
		t.Error("pooling-boundary edge accepted")
	}
	n := len(g.Model.Layers)
	// The classifier is an FC layer: not a windowed-spatial operator.
	if checkFusible(g, n-2, n-1) {
		t.Error("FC layer accepted into a fused group")
	}
}

func TestCheckFusibleCountMismatch(t *testing.T) {
	m := chain()
	m.Layers[1].Count = 3
	g, err := BuildGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if checkFusible(g, 0, 1) {
		t.Error("count mismatch accepted")
	}
}

// TestFusedChainSavesTraffic checks the simplest positive case: a linear
// chain whose activations fit fuses and moves less DRAM than per-layer.
func TestFusedChainSavesTraffic(t *testing.T) {
	s, err := RunFused(chain(), hw.Accel256(), FuseOptions{Options: Options{L2Bytes: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if s.FusedGroups() == 0 {
		t.Fatal("chain did not fuse at 1 MiB")
	}
	if s.DRAMTraffic >= s.BaselineDRAM {
		t.Errorf("fused chain DRAM %d not below baseline %d", s.DRAMTraffic, s.BaselineDRAM)
	}
}

// TestOverlappingResidualsHeldOnce is the regression test for the
// double-count fix: two skip edges sharing one source activation pin its
// bytes once, not twice.
func TestOverlappingResidualsHeldOnce(t *testing.T) {
	m := chain()
	cfg := hw.Accel256()
	one, err := Run(m, cfg, Options{
		Dataflow: fixedKCP, L2Bytes: 1 << 20,
		Residuals: []Edge{{From: 0, To: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(m, cfg, Options{
		Dataflow: fixedKCP, L2Bytes: 1 << 20,
		Residuals: []Edge{{From: 0, To: 2}, {From: 0, To: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The overlapping edge adds no pressure: the source is live through
	// layer 3 either way, so held bytes and traffic must match exactly.
	for i := range one.Plans {
		if one.Plans[i].HeldBytes != two.Plans[i].HeldBytes {
			t.Errorf("layer %d held %d with one edge, %d with overlapping edges",
				i, one.Plans[i].HeldBytes, two.Plans[i].HeldBytes)
		}
	}
	if one.DRAMTraffic != two.DRAMTraffic {
		t.Errorf("overlapping residuals changed traffic: %d vs %d",
			one.DRAMTraffic, two.DRAMTraffic)
	}
	// And the held capacity is exactly one copy of layer 0's output.
	want := scaled(m.Layers[0].Layer, tensor.Output, cfg.Normalize())
	if two.Plans[1].HeldBytes != want {
		t.Errorf("held %d bytes, want one copy = %d", two.Plans[1].HeldBytes, want)
	}
}
