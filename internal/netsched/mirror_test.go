package netsched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
)

// TestMirrorMatchesEngine pins priceLayerMirror to the engine: the
// singleton pricing path re-derives applyL2's retention decision with a
// per-tensor decomposition, and its totals must equal the engine's at
// every budget, for every layer of the zoo, under every Table 3
// template that maps it.
func TestMirrorMatchesEngine(t *testing.T) {
	cfg := hw.Accel256().Normalize()
	zoo := append(models.EvaluationModels(), models.GoogLeNet(), models.AlexNet(), models.DCGAN())
	budgets := []int64{0, 8 << 10, 64 << 10, 256 << 10, 1 << 20, 16 << 20}
	checked := 0
	for _, m := range zoo {
		for _, df := range dataflows.All() {
			for _, li := range m.Layers {
				r, err := core.AnalyzeDataflow(df, li.Layer, cfg)
				if err != nil {
					continue
				}
				for _, l2 := range budgets {
					at := r.AtL2(l2)
					cl := priceLayerMirror(r, l2)
					if cl.readsTotal() != at.DRAMReads || cl.writes != at.DRAMWrites {
						t.Fatalf("%s/%s/%s @ %d: mirror %d/%d != engine %d/%d",
							m.Name, df.Name, li.Layer.Name, l2,
							cl.readsTotal(), cl.writes, at.DRAMReads, at.DRAMWrites)
					}
					checked++
				}
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d (layer, dataflow, budget) triples checked", checked)
	}
}
