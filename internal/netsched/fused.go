package netsched

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/models"
)

// FusedSchedule is the graph-level schedule: the layer list partitioned
// into fusion subgraphs, with claimed off-chip traffic per group and the
// per-layer (unfused) baseline for the same mappings and L2 budget.
type FusedSchedule struct {
	Model   models.Model
	L2Bytes int64
	Groups  []GroupPlan

	TotalCycles int64
	// DRAMTraffic is the claimed off-chip element total over all
	// instances; ActTraffic its activation-only portion.
	DRAMTraffic int64
	ActTraffic  int64
	// BaselineDRAM/BaselineAct price every layer as its own group under
	// the same L2 budget — what the network costs without fusion.
	BaselineDRAM int64
	BaselineAct  int64
	// DRAMSaved = BaselineDRAM - DRAMTraffic.
	DRAMSaved int64
	EnergyPJ  float64
}

// FusedGroups counts the groups that actually fused (≥2 layers).
func (s *FusedSchedule) FusedGroups() int {
	n := 0
	for _, g := range s.Groups {
		if g.Fused {
			n++
		}
	}
	return n
}

// RunFused schedules the model as a partition of its activation DAG
// into fusion subgraphs, minimizing claimed DRAM traffic by interval DP
// over the topologically ordered layer list. The L2Bytes budget gates
// both fusion feasibility and per-layer retention; the L2Bytes=0
// sentinel disables fusion and retention entirely, reproducing the
// plain per-layer sum bit for bit. Options.Residuals is not consulted:
// skip connections belong in the model's Edges, where the partitioner
// sees them.
func RunFused(m models.Model, cfg hw.Config, opt FuseOptions) (*FusedSchedule, error) {
	cfg = cfg.Normalize()
	if opt.L2Bytes < 0 {
		return nil, fmt.Errorf("netsched: negative L2Bytes %d", opt.L2Bytes)
	}
	g, err := BuildGraph(m)
	if err != nil {
		return nil, err
	}
	n := len(m.Layers)
	results := make([]*core.Result, n)
	dfs := make([]dataflow.Dataflow, n)
	for i, li := range m.Layers {
		df, r, err := chooseMapping(li.Layer, cfg, opt.Options)
		if err != nil {
			return nil, fmt.Errorf("layer %s: %w", li.Layer.Name, err)
		}
		results[i], dfs[i] = r, df
	}
	f := &fuser{g: g, cfg: cfg, eb: elemBytes(cfg), opt: opt, results: results, dfs: dfs}

	s := &FusedSchedule{Model: m, L2Bytes: opt.L2Bytes}
	for i := 0; i < n; i++ {
		sc := f.singletonCost(i)
		s.BaselineDRAM += sc.cost
		s.BaselineAct += (sc.actR + sc.actW) * int64(m.Layers[i].Count)
	}
	for _, sp := range partitionDAG(f) {
		c := sp.cost
		count := int64(m.Layers[sp.lo].Count)
		gp := GroupPlan{
			Lo: sp.lo, Hi: sp.hi, Fused: c.fused,
			Count:    m.Layers[sp.lo].Count,
			TileRows: c.tile, Bands: c.bands, WeightsResident: c.weightsResident,
			Externals: c.externals,
			ActReads:  c.actR, WeightReads: c.wR, ActWrites: c.actW,
			DRAMReads: c.readsPI, DRAMWrites: c.writesPI,
			RetainedBytes: c.retained, L2PeakBytes: c.peak,
		}
		for v := sp.lo; v <= sp.hi; v++ {
			nInst := int64(m.Layers[v].Count)
			r, df := results[v], dfs[v]
			if c.fused {
				// Fused members run the mapping the capacity check
				// admitted: the compact re-tune, or the minimal-staging
				// fallback when the windows left no room for it.
				if c.msMembers {
					r, df = f.msMapping(v)
				} else {
					r, df = f.compactMapping(v)
				}
			}
			gp.Members = append(gp.Members, MemberPlan{
				Index: v, Inst: m.Layers[v], Dataflow: df, Result: r,
			})
			gp.Cycles += r.OnChipRuntime * nInst
			s.EnergyPJ += r.EnergyDefault().OnChip() * float64(nInst)
		}
		s.TotalCycles += gp.Cycles
		s.DRAMTraffic += c.cost
		s.ActTraffic += (c.actR + c.actW) * count
		s.EnergyPJ += float64(c.cost) * 200
		s.Groups = append(s.Groups, gp)
	}
	s.DRAMSaved = s.BaselineDRAM - s.DRAMTraffic
	// The DRAM link bounds the end-to-end runtime, as in Run.
	dramDelay := int64(float64(s.DRAMTraffic)/cfg.OffchipBandwidth + 0.999999)
	if dramDelay > s.TotalCycles {
		s.TotalCycles = dramDelay
	}
	return s, nil
}
