package viz

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/reuse"
	"repro/internal/tensor"
)

// conv1D is the 1D convolution of the paper's Figure 4/5 playground:
// X'=12 outputs under an S=6 filter (17 input columns in our
// input-coordinate convention).
func conv1D() tensor.Layer {
	return tensor.Layer{
		Name: "conv1d", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 1, tensor.C: 1, tensor.Y: 1, tensor.X: 17, tensor.R: 1, tensor.S: 6},
	}.Normalize()
}

// analysisFor resolves a playground dataflow on 3 PEs (6 for the
// clustered variant) and returns the requested level's reuse analysis.
func analysisFor(t *testing.T, pes, level int, dirs ...dataflow.Directive) *reuse.Analysis {
	t.Helper()
	spec, err := dataflow.Resolve(dataflow.Dataflow{Name: "fig5", Directives: dirs}, conv1D(), pes)
	if err != nil {
		t.Fatal(err)
	}
	sub := spec.Layer.Sizes
	for i := 0; i < level; i++ {
		lv, err := spec.Level(i, sub)
		if err != nil {
			t.Fatal(err)
		}
		sub = lv.SubTile()
	}
	lv, err := spec.Level(level, sub)
	if err != nil {
		t.Fatal(err)
	}
	return reuse.New(lv, spec.Layer)
}

// loopOf returns the nest index of dimension d's temporal loop.
func loopOf(a *reuse.Analysis, d tensor.Dim) int {
	for i, lp := range a.Loops {
		if !lp.IsFold && lp.Map.Dim == d {
			return i
		}
	}
	return -1
}

// TestFig5A: SpatialMap(1,1) X'; TemporalMap(1,1) S — output-stationary:
// outputs are temporally reduced in place while S sweeps, and the filter
// weights are spatially multicast.
func TestFig5A(t *testing.T) {
	a := analysisFor(t, 3, 0,
		dataflow.SMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.S),
	)
	ch := a.SteadyChunks()
	sIdx := loopOf(a, tensor.S)
	if got := a.NewData(tensor.Output, sIdx, ch, false, 1); got != 0 {
		t.Errorf("output moved while S advances: %d (not output-stationary)", got)
	}
	if a.SpatiallyVaries(tensor.Weight) {
		t.Error("weights not spatially multicast")
	}
	if a.OutputReduced() {
		t.Error("outputs are partitioned, not reduced, under X' partitioning")
	}
}

// TestFig5B: TemporalMap(1,1) S outermost, SpatialMap(1,1) X' folding
// inside — weight-stationary: the weight tile survives the X' fold sweep.
func TestFig5B(t *testing.T) {
	a := analysisFor(t, 3, 0,
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.S),
		dataflow.SMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	)
	ch := a.SteadyChunks()
	// The fold loop sits inside the S loop; advancing the fold keeps the
	// weights (not coupled to X) in place.
	foldIdx := -1
	for i, lp := range a.Loops {
		if lp.IsFold {
			foldIdx = i
		}
	}
	if foldIdx < 0 {
		t.Fatal("no fold loop: X' should fold on 3 PEs")
	}
	if got := a.NewData(tensor.Weight, foldIdx, ch, false, 1); got != 0 {
		t.Errorf("weights refetched across X' folds: %d (not weight-stationary)", got)
	}
	// Advancing S refetches the single weight element.
	if got := a.NewData(tensor.Weight, loopOf(a, tensor.S), ch, false, 1); got != 1 {
		t.Errorf("S advance fetched %d weights; want 1", got)
	}
}

// TestFig5D: SpatialMap(1,1) S; TemporalMap(1,1) X' — collaborative
// weight-stationary: PEs hold distinct filter taps and spatially reduce
// every output.
func TestFig5D(t *testing.T) {
	a := analysisFor(t, 3, 0,
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.S),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	)
	if !a.OutputReduced() {
		t.Error("S partitioning must spatially reduce outputs")
	}
	if !a.SpatiallyVaries(tensor.Weight) {
		t.Error("weights must be partitioned across PEs")
	}
	// Weight stays put while X' sweeps.
	ch := a.SteadyChunks()
	if got := a.NewData(tensor.Weight, loopOf(a, tensor.X), ch, false, 1); got != 0 {
		t.Errorf("weights refetched per output: %d", got)
	}
}

// TestFig5E: SpatialMap(2,2) S; TemporalMap(1,1) X' — the tiled variant
// adds partial temporal reuse of inputs across X' steps (the
// convolutional halo the paper highlights).
func TestFig5E(t *testing.T) {
	a := analysisFor(t, 3, 0,
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.S),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	)
	ch := a.SteadyChunks()
	xIdx := loopOf(a, tensor.X)
	tile := a.TileOf(tensor.Input, ch)
	nd := a.NewData(tensor.Input, xIdx, ch, false, 1)
	if nd <= 0 || nd >= tile {
		t.Errorf("input new-per-step = %d of tile %d; want partial temporal reuse", nd, tile)
	}
}

// TestFig5F: the clustered variant — X' across two clusters of three,
// S partitioned within each cluster; the inner level reduces outputs.
func TestFig5F(t *testing.T) {
	outer := analysisFor(t, 6, 0,
		dataflow.TMap(dataflow.Lit(3), dataflow.Lit(3), tensor.S),
		dataflow.SMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.ClusterOf(dataflow.Lit(3)),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.S),
	)
	if outer.OutputReduced() {
		t.Error("outer level partitions outputs across clusters")
	}
	inner := analysisFor(t, 6, 1,
		dataflow.TMap(dataflow.Lit(3), dataflow.Lit(3), tensor.S),
		dataflow.SMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.ClusterOf(dataflow.Lit(3)),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.S),
	)
	if !inner.OutputReduced() {
		t.Error("inner level must spatially reduce outputs across the cluster")
	}
}
