// Package viz renders how a dataflow maps tensor data onto PEs over
// time, in the style of the paper's Figures 5 and 6: for each time step
// of a cluster level, the index ranges each sub-cluster holds of every
// tensor. cmd/mapviz prints these; the tests pin the paper's worked
// examples (the Figure 5 dataflow playground and the Figure 6
// row-stationary mapping) to the implementation.
package viz

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/reuse"
	"repro/internal/tensor"
)

// Range is a half-open index interval.
type Range struct {
	Lo, Hi int
}

func (r Range) String() string {
	if r.Hi-r.Lo == 1 {
		return fmt.Sprintf("%d", r.Lo)
	}
	return fmt.Sprintf("%d-%d", r.Lo, r.Hi-1)
}

// PEView is the data one sub-cluster holds at one time step.
type PEView struct {
	PE int
	// Dims holds the per-dimension chunk (input coordinates for Y/X).
	Dims [tensor.NumDims]Range
	// OutY/OutX are the derived output coordinate ranges.
	OutY, OutX Range
}

// Step is one time step of a level: the active sub-clusters' views.
type Step struct {
	Index int
	PEs   []PEView
}

// Walker enumerates a level's time steps.
type Walker struct {
	layer tensor.Layer
	lv    *dataflow.Level
	a     *reuse.Analysis
	idx   []int
	done  bool
	step  int
}

// NewWalker builds a step enumerator for cluster level `level` of the
// spec, resolved against the steady tile of its ancestors.
func NewWalker(spec *dataflow.Spec, level int) (*Walker, error) {
	sub := spec.Layer.Sizes
	for i := 0; i < level; i++ {
		lv, err := spec.Level(i, sub)
		if err != nil {
			return nil, err
		}
		sub = lv.SubTile()
	}
	lv, err := spec.Level(level, sub)
	if err != nil {
		return nil, err
	}
	return &Walker{
		layer: spec.Layer,
		lv:    lv,
		a:     reuse.New(lv, spec.Layer),
		idx:   make([]int, len(reuse.New(lv, spec.Layer).Loops)),
	}, nil
}

// Level exposes the resolved level being walked.
func (w *Walker) Level() *dataflow.Level { return w.lv }

// Next returns the next time step, or false when the mapping completes.
func (w *Walker) Next() (Step, bool) {
	if w.done {
		return Step{}, false
	}
	st := w.snapshot()
	st.Index = w.step
	w.step++
	// Advance the odometer.
	advanced := false
	for i := len(w.idx) - 1; i >= 0; i-- {
		if w.idx[i]+1 < w.a.Loops[i].Steps {
			w.idx[i]++
			for j := i + 1; j < len(w.idx); j++ {
				w.idx[j] = 0
			}
			advanced = true
			break
		}
	}
	if !advanced {
		w.done = true
	}
	return st, true
}

func (w *Walker) snapshot() Step {
	lv := w.lv
	fold := 0
	var temporal [tensor.NumDims]Range
	for _, m := range lv.Maps {
		if m.Kind == dataflow.Temporal {
			temporal[m.Dim] = Range{0, m.Size}
		}
	}
	for li, lp := range w.a.Loops {
		if lp.IsFold {
			fold = w.idx[li]
			continue
		}
		st, sz := lp.Map.ChunkAt(w.idx[li])
		temporal[lp.Map.Dim] = Range{st, st + sz}
	}
	active := lv.SubClusters
	if len(lv.Spatial) == 0 {
		active = 1
	} else if rem := lv.SpatialChunks - fold*lv.SubClusters; rem < active {
		active = rem
	}
	step := Step{}
	for p := 0; p < active; p++ {
		v := PEView{PE: p, Dims: temporal}
		for _, si := range lv.Spatial {
			m := lv.Maps[si]
			st, sz := m.ChunkAt(fold*lv.SubClusters + p)
			v.Dims[m.Dim] = Range{st, st + sz}
		}
		v.OutY = outRange(v.Dims[tensor.Y], v.Dims[tensor.R], lv.Map(tensor.R).DimSize, w.layer.StrideY)
		v.OutX = outRange(v.Dims[tensor.X], v.Dims[tensor.S], lv.Map(tensor.S).DimSize, w.layer.StrideX)
		step.PEs = append(step.PEs, v)
	}
	return step
}

// outRange derives the output coordinates computed by an activation
// chunk against a filter chunk at the given stride; a chunk hosting a
// complete window anchors the outputs to the chunk itself.
func outRange(act, filt Range, filtFull, stride int) Range {
	if act.Hi-act.Lo >= filtFull {
		lo := (act.Lo + stride - 1) / stride
		if act.Lo == 0 {
			lo = 0
		}
		hi := (act.Hi - filtFull) / stride
		if hi < lo-1 {
			hi = lo - 1
		}
		return Range{lo, hi + 1}
	}
	lo := act.Lo - filt.Lo
	if lo < 0 {
		lo = 0
	} else {
		lo = (lo + stride - 1) / stride
	}
	hi := (act.Hi - filt.Hi) / stride
	if hi < lo-1 {
		hi = lo - 1
	}
	return Range{lo, hi + 1}
}

// TensorRange renders the ranges PE view v holds of tensor k, e.g.
// "W[K0-1 C0-2 R0-2 S0-2]".
func TensorRange(layer tensor.Layer, k tensor.Kind, v PEView) string {
	var b strings.Builder
	b.WriteByte("IWO"[k])
	b.WriteByte('[')
	first := true
	for _, d := range layer.TensorDims(k).Dims() {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		switch {
		case k == tensor.Output && d == tensor.Y:
			fmt.Fprintf(&b, "Y'%s", v.OutY)
		case k == tensor.Output && d == tensor.X:
			fmt.Fprintf(&b, "X'%s", v.OutX)
		default:
			fmt.Fprintf(&b, "%s%s", d, v.Dims[d])
		}
	}
	b.WriteByte(']')
	return b.String()
}
