package viz

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/tensor"
)

// fig6Spec builds the row-stationary mapping of the paper's Figure 6 on
// its six-PE accelerator (two clusters of three).
func fig6Spec(t *testing.T) *dataflow.Spec {
	t.Helper()
	layer := tensor.Layer{
		Name: "fig6", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 2, tensor.K: 4, tensor.C: 6, tensor.Y: 8, tensor.X: 8, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	df := dataflow.Dataflow{Name: "rs", Directives: []dataflow.Directive{
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.N),
		dataflow.TMap(dataflow.Lit(3), dataflow.Lit(3), tensor.C),
		dataflow.TMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.SMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Sz(tensor.R), tensor.R),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Sz(tensor.S), tensor.S),
		dataflow.ClusterOf(dataflow.Sz(tensor.R)),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.Y),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.R),
	}}
	spec, err := dataflow.Resolve(df, layer, 6)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestFig6TopLevelMapping pins the paper's Figure 6(d) mapping table:
// at time steps 0 and 1, the two clusters hold input rows 0-2/1-3 with
// input columns sliding 0-2 -> 1-3, the full weight rows replicated, and
// output rows 0/1 with the output column advancing 0 -> 1.
func TestFig6TopLevelMapping(t *testing.T) {
	w, err := NewWalker(fig6Spec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	step0, ok := w.Next()
	if !ok {
		t.Fatal("no steps")
	}
	step1, ok := w.Next()
	if !ok {
		t.Fatal("only one step")
	}
	if len(step0.PEs) != 2 {
		t.Fatalf("clusters at step 0 = %d; want 2", len(step0.PEs))
	}
	// Input rows: cluster 0 holds Y 0-2, cluster 1 holds Y 1-3 (the
	// skewed/diagonal replication of Figure 6(d)).
	if got := step0.PEs[0].Dims[tensor.Y]; got != (Range{0, 3}) {
		t.Errorf("cluster 0 Y = %v; want 0-2", got)
	}
	if got := step0.PEs[1].Dims[tensor.Y]; got != (Range{1, 4}) {
		t.Errorf("cluster 1 Y = %v; want 1-3", got)
	}
	// Input columns slide 0-2 -> 1-3 between the two steps.
	if got := step0.PEs[0].Dims[tensor.X]; got != (Range{0, 3}) {
		t.Errorf("step 0 X = %v; want 0-2", got)
	}
	if got := step1.PEs[0].Dims[tensor.X]; got != (Range{1, 4}) {
		t.Errorf("step 1 X = %v; want 1-3", got)
	}
	// Weights: both clusters hold the same K 0-1, C 0-2, R 0-2, S 0-2
	// tile at both steps (the temporal multicast the paper calls out).
	for _, st := range []Step{step0, step1} {
		for _, pe := range st.PEs {
			if pe.Dims[tensor.K] != (Range{0, 2}) || pe.Dims[tensor.C] != (Range{0, 3}) ||
				pe.Dims[tensor.R] != (Range{0, 3}) || pe.Dims[tensor.S] != (Range{0, 3}) {
				t.Errorf("weight tile at step %d PE %d = K%v C%v R%v S%v",
					st.Index, pe.PE, pe.Dims[tensor.K], pe.Dims[tensor.C], pe.Dims[tensor.R], pe.Dims[tensor.S])
			}
		}
	}
	// Outputs: cluster p computes output row p; the column advances with
	// the step (Figure 6(d)'s output table shows X' 1 then 0 across its
	// two displayed steps; ours walks forward 0 then 1).
	for p, pe := range step0.PEs {
		if pe.OutY != (Range{p, p + 1}) {
			t.Errorf("cluster %d output row = %v; want %d", p, pe.OutY, p)
		}
	}
	if step0.PEs[0].OutX != (Range{0, 1}) || step1.PEs[0].OutX != (Range{1, 2}) {
		t.Errorf("output column: step0 %v step1 %v; want 0 then 1",
			step0.PEs[0].OutX, step1.PEs[0].OutX)
	}
}

// TestFig6InnerDiagonal pins the within-cluster diagonal: PE i holds
// input row y0+i and filter row i, all contributing to the same output
// row (the spatial reduction of the row-stationary dataflow).
func TestFig6InnerDiagonal(t *testing.T) {
	w, err := NewWalker(fig6Spec(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	step, ok := w.Next()
	if !ok {
		t.Fatal("no steps")
	}
	if len(step.PEs) != 3 {
		t.Fatalf("PEs = %d; want 3", len(step.PEs))
	}
	for i, pe := range step.PEs {
		if pe.Dims[tensor.Y] != (Range{i, i + 1}) {
			t.Errorf("PE %d input row %v; want %d", i, pe.Dims[tensor.Y], i)
		}
		if pe.Dims[tensor.R] != (Range{i, i + 1}) {
			t.Errorf("PE %d filter row %v; want %d", i, pe.Dims[tensor.R], i)
		}
		if pe.OutY != step.PEs[0].OutY {
			t.Errorf("PE %d output row %v differs from PE 0's %v (no reduction?)",
				i, pe.OutY, step.PEs[0].OutY)
		}
	}
}

// TestTensorRangeFormatting covers the human rendering used by mapviz.
func TestTensorRangeFormatting(t *testing.T) {
	w, err := NewWalker(fig6Spec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	step, _ := w.Next()
	spec := fig6Spec(t)
	got := TensorRange(spec.Layer, tensor.Weight, step.PEs[0])
	if got != "W[K0-1 C0-2 R0-2 S0-2]" {
		t.Errorf("weight render = %q", got)
	}
	got = TensorRange(spec.Layer, tensor.Output, step.PEs[0])
	if got != "O[N0 K0-1 Y'0 X'0]" {
		t.Errorf("output render = %q", got)
	}
}
