package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/serve"
)

// This file is the fleet's durability layer: a write-ahead shard
// journal under Options.CheckpointDir. Each accepted shard result is
// appended as one checksummed JSONL record and fsync'd *before* the
// shard is counted done, so a coordinator killed mid-sweep loses at
// most the shards that had not yet been accepted. On restart, a sweep
// over the same request replays the journal, restores the completed
// shards from disk, truncates any corrupt tail, and dispatches only
// the remainder — the merged result is identical to an uninterrupted
// run (proven by the chaos harness in chaoskill_test.go).
//
// Record format, one per line:
//
//	<crc32-ieee-hex8> <payload-json>\n
//
// The checksum covers the payload bytes exactly as written. A record
// whose line is incomplete, whose checksum mismatches, or whose JSON
// does not decode ends the valid prefix: everything from there on is
// discarded and the file is truncated back to the last good record, so
// the journal is always left replayable and a corrupt shard is never
// resurrected. Journal files are keyed by the sweep's canonical
// request hash, and every record carries both that sweep hash and a
// per-shard request hash — a record only replays into the shard whose
// scoped request it was written for, so a changed partition (different
// host count, different grids) silently invalidates stale records
// instead of merging the wrong slice of the space.

// Journal record kinds.
const (
	journalKindDSE    = "dse"
	journalKindFusion = "fusion"
)

// journalRecord is one durably-accepted shard result.
type journalRecord struct {
	// Kind is journalKindDSE or journalKindFusion.
	Kind string `json:"kind"`
	// Sweep is the canonical hash of the whole sweep's request.
	Sweep string `json:"sweep"`
	// Shard/Of label the shard within its partition.
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// Hash is the canonical hash of the shard's scoped request; replay
	// matches on it, not on the index alone.
	Hash string `json:"hash"`
	// Host is the node that produced the accepted result.
	Host string `json:"host"`
	// Stolen records whether a watchdog-stolen attempt won.
	Stolen bool `json:"stolen,omitempty"`

	// Exactly one of the payloads is set, matching Kind.
	DSE    *serve.DSEResponse    `json:"dse,omitempty"`
	Fusion *serve.FusionResponse `json:"fusion,omitempty"`
}

// valid reports whether a decoded record is structurally sound: a
// known kind, a shard-request hash to replay by, and exactly the
// payload its kind promises.
func (r *journalRecord) valid() bool {
	if r.Hash == "" || r.Sweep == "" || r.Of <= 0 || r.Shard < 0 || r.Shard >= r.Of {
		return false
	}
	switch r.Kind {
	case journalKindDSE:
		return r.DSE != nil && r.Fusion == nil
	case journalKindFusion:
		return r.Fusion != nil && r.DSE == nil
	}
	return false
}

// encodeRecord renders one journal line: checksum, space, payload,
// newline.
func encodeRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))...)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseJournal walks data record by record and returns the records of
// the longest valid prefix plus that prefix's byte length. It never
// panics on arbitrary input; the first incomplete, checksum-failing,
// or undecodable line ends the prefix.
func parseJournal(data []byte) ([]journalRecord, int) {
	var recs []journalRecord
	good := 0
	for good < len(data) {
		rest := data[good:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // partial tail record: a crash mid-append
		}
		line := rest[:nl]
		// "<crc8hex> <payload>" needs at least 10 bytes.
		if len(line) < 10 || line[8] != ' ' {
			break
		}
		want, err := strconv.ParseUint(string(line[:8]), 16, 32)
		if err != nil {
			break
		}
		payload := line[9:]
		if crc32.ChecksumIEEE(payload) != uint32(want) {
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil || !rec.valid() {
			break
		}
		recs = append(recs, rec)
		good += nl + 1
	}
	return recs, good
}

// journal is one sweep's open write-ahead file. Safe for concurrent
// append from the request goroutines.
type journal struct {
	path  string
	kind  string
	sweep string

	mu   sync.Mutex
	f    *os.File
	recs map[string]journalRecord // valid prefix at open time, by shard hash
}

// openJournal opens (creating if needed) the journal for one sweep.
// With resume, the existing file's valid prefix is loaded and any
// corrupt tail truncated away; without it, a pre-existing file is
// discarded so the sweep starts clean.
func openJournal(dir, kind, sweep string, resume bool) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint dir: %w", err)
	}
	path := filepath.Join(dir, kind+"-"+sweep+".jnl")
	j := &journal{path: path, kind: kind, sweep: sweep, recs: map[string]journalRecord{}}
	if !resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("fleet: clearing journal %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: opening journal %s: %w", path, err)
	}
	j.f = f
	if resume {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: reading journal %s: %w", path, err)
		}
		recs, good := parseJournal(data)
		if good < len(data) {
			// Corrupt or partial tail: truncate it away so the next
			// append lands on a record boundary.
			if err := f.Truncate(int64(good)); err != nil {
				f.Close()
				return nil, fmt.Errorf("fleet: truncating journal %s: %w", path, err)
			}
		}
		if _, err := f.Seek(int64(good), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: seeking journal %s: %w", path, err)
		}
		for _, rec := range recs {
			// Records from another sweep or kind never replay; the file
			// name keys them apart already, so a mismatch here means the
			// file was moved or hand-edited. Skip, don't trust.
			if rec.Kind == kind && rec.Sweep == sweep {
				j.recs[rec.Hash] = rec
			}
		}
	}
	return j, nil
}

// lookup returns the journaled record for one shard-request hash.
func (j *journal) lookup(hash string) (journalRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.recs[hash]
	return rec, ok
}

// replayed reports how many records loaded at open time.
func (j *journal) replayed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// append writes one record and fsyncs it to disk. It returns only
// after the record is durable — callers mark the shard done strictly
// after a nil return.
func (j *journal) append(rec journalRecord) error {
	rec.Kind, rec.Sweep = j.kind, j.sweep
	line, err := encodeRecord(rec)
	if err != nil {
		return fmt.Errorf("fleet: encoding journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("fleet: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("fleet: appending to journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fleet: fsync journal %s: %w", j.path, err)
	}
	return nil
}

// close releases the file, keeping it on disk for a later resume.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// finish closes and deletes the journal — the sweep completed, so
// there is nothing left to resume.
func (j *journal) finish() {
	j.close()
	os.Remove(j.path)
}

// canonicalHash hashes one request's canonical JSON encoding under a
// kind prefix. Go's encoding/json renders struct fields in declaration
// order, so the encoding — and the hash — is deterministic across
// processes and restarts.
func canonicalHash(kind string, v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{'|'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// sweepHashDSE keys a DSE sweep's journal: the defaulted request with
// the delivery-only knobs (timeout, cache bypass, response truncation)
// and any stray shard descriptor zeroed, so retries of the same sweep
// resolve to the same file.
func sweepHashDSE(req serve.DSERequest) (string, error) {
	req.Shard = nil
	req.TopK = 0
	req.TimeoutMs = 0
	req.NoCache = false
	return canonicalHash(journalKindDSE, req)
}

// sweepHashFusion keys a fusion sweep's journal the same way.
func sweepHashFusion(req serve.FusionRequest) (string, error) {
	req.Shard = nil
	req.TimeoutMs = 0
	req.NoCache = false
	return canonicalHash(journalKindFusion, req)
}
