package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// The integration tests run real serve.Servers behind stable host
// names ("http://node0", ...) so the consistent-hash routing — and
// therefore which node each shard prefers — is deterministic across
// runs, independent of the random httptest ports.

// rewriteTransport maps stable node names onto live httptest listeners.
type rewriteTransport struct{ targets map[string]string }

func (rt rewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	tgt, ok := rt.targets[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("unknown fleet host %q", req.URL.Host)
	}
	r2 := req.Clone(req.Context())
	r2.URL.Host = tgt
	return http.DefaultTransport.RoundTrip(r2)
}

// newNodes starts n in-process serve nodes and returns their stable
// host names, the servers by host (for SetChaos), and an HTTP client
// that resolves the stable names.
func newNodes(t testing.TB, n int) ([]string, map[string]*serve.Server, *http.Client) {
	t.Helper()
	targets := make(map[string]string, n)
	servers := make(map[string]*serve.Server, n)
	hosts := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%d", i)
		s := serve.New(serve.Options{Workers: 1})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		u, err := url.Parse(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		targets[name] = u.Host
		servers["http://"+name] = s
		hosts = append(hosts, "http://"+name)
	}
	return hosts, servers, &http.Client{Transport: rewriteTransport{targets}}
}

// fastFleet is the test fleet configuration: instant failover (one
// attempt per node per dispatch, threshold-1 breakers that stay open)
// and a watchdog that is effectively off unless a test tightens it.
func fastFleet(hosts []string, hc *http.Client) Options {
	return Options{
		Hosts: hosts,
		Client: client.Options{
			HTTPClient:  hc,
			MaxAttempts: 1,
			Breaker:     client.BreakerOptions{FailureThreshold: 1, Cooldown: time.Minute},
		},
		ShardsPerNode:   2,
		InflightPerNode: 1,
		WatchTick:       5 * time.Millisecond,
		StragglerMin:    30 * time.Millisecond,
		StragglerFactor: 1e6,
	}
}

// fleetReq is the sweep the integration tests distribute: 8 (pe, p1)
// cells over 32 raw designs, small enough for test time but wide
// enough that every node serves shards.
func fleetReq() serve.DSERequest {
	return serve.DSERequest{
		Layer:    serve.LayerSpec{Model: "VGG16", Name: "CONV11"},
		Template: "KC-P",
		P1:       []int{16, 64},
		P2:       []int{8},
		PEs:      []int{64, 128, 256, 512},
		BWs:      []float64{16, 32},
		L1Grid:   []int64{64, 4096},
		L2Grid:   []int64{1 << 14},
	}
}

// truth computes the same sweep on a single in-process explorer, the
// way one maestro-serve node would: identical defaults, cost model,
// and shared profile cache.
func truth(t testing.TB, req serve.DSERequest) ([]dse.Point, dse.Stats) {
	t.Helper()
	layer, err := serve.ResolveLayerSpec(req.Layer)
	if err != nil {
		t.Fatal(err)
	}
	req = req.WithDefaults()
	sp := dse.Space{
		Layer: layer,
		Template: dse.Template{
			Name:  "KC-P",
			Build: func(p1, p2 int) dataflow.Dataflow { return dataflows.KCPSized(p1, p2) },
			P1:    req.P1, P2: req.P2,
		},
		PEs: req.PEs, BWs: req.BWs,
		L1Grid: req.L1Grid, L2Grid: req.L2Grid,
		AreaBudgetMM2: req.AreaBudgetMM2, PowerBudgetMW: req.PowerBudgetMW,
		Cost:     hw.Default28nm(),
		Profiles: core.DefaultProfileCache,
	}
	pts, stats := dse.Explore(sp)
	front := dse.Pareto(pts)
	dse.SortPoints(front)
	return front, stats
}

// TestSweepMatchesSingleNode is the core acceptance check: a 4-node
// fleet's merged Pareto front is bit-identical to a single explorer
// run over the whole space.
func TestSweepMatchesSingleNode(t *testing.T) {
	hosts, _, hc := newNodes(t, 4)
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var streamed int
	var mu sync.Mutex
	f.opts.OnShard = func(sr ShardResult) {
		mu.Lock()
		streamed++
		mu.Unlock()
	}

	res, err := f.Sweep(context.Background(), fleetReq())
	if err != nil {
		t.Fatal(err)
	}
	front, stats := truth(t, fleetReq())

	if !reflect.DeepEqual(res.Pareto, front) {
		t.Fatalf("fleet front != single-node front\nfleet:  %+v\nsingle: %+v", res.Pareto, front)
	}
	if res.Raw != stats.Raw || res.Explored != stats.Explored || res.Valid != stats.Valid {
		t.Fatalf("fleet counters (raw=%d explored=%d valid=%d) != single-node (raw=%d explored=%d valid=%d)",
			res.Raw, res.Explored, res.Valid, stats.Raw, stats.Explored, stats.Valid)
	}
	if res.Shards != 8 {
		t.Fatalf("Shards = %d, want 8 (4 nodes x 2)", res.Shards)
	}
	mu.Lock()
	n := streamed
	mu.Unlock()
	if n != res.Shards {
		t.Fatalf("OnShard streamed %d results, want %d", n, res.Shards)
	}
	if res.ThroughputOpt == nil || res.EnergyOpt == nil || res.EDPOpt == nil {
		t.Fatal("missing per-objective optima")
	}
	// The optima agree with the local selectors on their objective
	// values (tie-broken identically, so the metrics must match).
	pts := make([]dse.Point, len(front))
	copy(pts, front)
	if p, ok := dse.ThroughputOpt(pts); !ok || p.Throughput != res.ThroughputOpt.Throughput {
		t.Fatalf("ThroughputOpt = %+v, want throughput %g", res.ThroughputOpt, p.Throughput)
	}
	if p, ok := dse.EnergyOpt(pts); !ok || p.EnergyPJ != res.EnergyOpt.EnergyPJ {
		t.Fatalf("EnergyOpt = %+v, want energy %g", res.EnergyOpt, p.EnergyPJ)
	}

	st := f.Stats()
	if st.Sweeps != 1 || st.Shards != 8 {
		t.Fatalf("Stats = %+v, want 1 sweep / 8 shards", st)
	}
	var served int64
	for _, ns := range st.PerNode {
		served += ns.Shards
	}
	if served != 8 {
		t.Fatalf("per-node shard counts sum to %d, want 8", served)
	}
}

// TestSweepBlackoutRedispatch kills one node mid-sweep with the chaos
// middleware — after it has served at least one shard — and checks the
// stranded shards re-dispatch to healthy nodes without changing the
// merged front.
func TestSweepBlackoutRedispatch(t *testing.T) {
	hosts, servers, hc := newNodes(t, 4)
	opts := fastFleet(hosts, hc)
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Pick the node preferred by the most shards: by pigeonhole it owns
	// at least two, so at least one is still pending when it goes dark
	// after its first completion.
	runs, _, err := f.plan(fleetReq())
	if err != nil {
		t.Fatal(err)
	}
	preferred := map[string]int{}
	for _, sr := range runs {
		preferred[sr.route[0]]++
	}
	target := hosts[0]
	for h, n := range preferred {
		if n > preferred[target] {
			target = h
		}
	}
	if preferred[target] < 2 {
		t.Fatalf("routing spread %v leaves target %q with <2 shards", preferred, target)
	}

	// The blackout trips when the target node's first result merges;
	// InflightPerNode=1 guarantees its other shards have not started.
	var once sync.Once
	f.opts.OnShard = func(sr ShardResult) {
		if sr.Host == target {
			once.Do(func() {
				servers[target].SetChaos(serve.Chaos{ErrorRate: 1, ErrorCode: http.StatusServiceUnavailable})
			})
		}
	}

	res, err := f.Sweep(context.Background(), fleetReq())
	if err != nil {
		t.Fatal(err)
	}
	front, _ := truth(t, fleetReq())
	if !reflect.DeepEqual(res.Pareto, front) {
		t.Fatalf("post-blackout front != single-node front\nfleet:  %+v\nsingle: %+v", res.Pareto, front)
	}
	if res.Redispatched == 0 {
		t.Fatal("blackout caused no re-dispatches")
	}
	st := f.Stats()
	if st.PerNode[target].Breaker != client.BreakerOpen {
		t.Fatalf("target breaker = %v, want open", st.PerNode[target].Breaker)
	}
	if st.PerNode[target].Errors == 0 {
		t.Fatal("target node recorded no errors")
	}
}

// TestSweepStealsStraggler slows one node's service time two orders of
// magnitude past its peer and checks the watchdog re-issues its shards
// on the fast node, with at-most-once accounting keeping the front
// intact.
func TestSweepStealsStraggler(t *testing.T) {
	hosts, servers, hc := newNodes(t, 2)
	opts := fastFleet(hosts, hc)
	opts.StragglerFactor = 3
	opts.StragglerMin = 25 * time.Millisecond
	opts.WatchTick = 2 * time.Millisecond
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	runs, _, err := f.plan(fleetReq())
	if err != nil {
		t.Fatal(err)
	}
	preferred := map[string]int{}
	for _, sr := range runs {
		preferred[sr.route[0]]++
	}
	var slow string
	for _, h := range hosts {
		if preferred[h] > 0 {
			slow = h // any node that owns shards can straggle
		}
	}
	if slow == "" {
		t.Fatalf("routing spread %v assigns no shards", preferred)
	}
	servers[slow].SetChaos(serve.Chaos{Latency: 2 * time.Second})

	start := time.Now()
	res, err := f.Sweep(context.Background(), fleetReq())
	if err != nil {
		t.Fatal(err)
	}
	front, _ := truth(t, fleetReq())
	if !reflect.DeepEqual(res.Pareto, front) {
		t.Fatalf("post-steal front != single-node front\nfleet:  %+v\nsingle: %+v", res.Pareto, front)
	}
	if res.Stolen == 0 {
		t.Fatal("straggling node triggered no work-stealing")
	}
	// Every stalled shard was stolen onto the fast node well before the
	// injected 2s service time elapsed.
	if d := time.Since(start); d > 1500*time.Millisecond {
		t.Fatalf("sweep took %v; stealing should beat the 2s straggler", d)
	}
}

// TestSweepAllNodesDownFails pins the failure path: when every node
// rejects a shard for the whole failover budget, Sweep reports which
// shard gave up and the underlying client error.
func TestSweepAllNodesDownFails(t *testing.T) {
	hosts, servers, hc := newNodes(t, 2)
	for _, s := range servers {
		s.SetChaos(serve.Chaos{ErrorRate: 1, ErrorCode: http.StatusInternalServerError})
	}
	opts := fastFleet(hosts, hc)
	opts.Rounds = 1
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	_, err = f.Sweep(context.Background(), fleetReq())
	if err == nil {
		t.Fatal("sweep against dead fleet succeeded")
	}
	if !strings.Contains(err.Error(), "failed after") {
		t.Fatalf("error %q does not name the exhausted shard", err)
	}
}

// TestSweepShardsHugeSpaceUnderCap checks the coordinator raises the
// shard count so each shard clears a server's raw-size cap, and that a
// space too large even at single-cell granularity is refused locally.
func TestSweepShardsHugeSpaceUnderCap(t *testing.T) {
	hosts, _, hc := newNodes(t, 1)
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	big := fleetReq()
	big.BWs = nil    // defaults: 4
	big.L1Grid = nil // defaults: 11
	big.L2Grid = nil // defaults: 11
	big.P2 = []int{4, 8, 16, 32, 64}
	big.P1 = []int{8, 16, 32, 64, 128, 256, 512}
	big.PEs = nil
	for pe := 16; pe <= 1024; pe += 16 {
		big.PEs = append(big.PEs, pe)
	}
	runs, _, err := f.plan(big)
	if err != nil {
		t.Fatal(err)
	}
	inner := int64(5 * 4 * 11 * 11)
	for _, sr := range runs {
		if raw := inner * int64(len(sr.shard.PEs)*len(sr.shard.P1)); raw > serve.MaxDSEGrid {
			t.Fatalf("shard %d spans %d raw designs, over cap %d", sr.shard.Index, raw, serve.MaxDSEGrid)
		}
	}

	big.BWs = make([]float64, 0, 2048)
	for i := 0; i < 2048; i++ {
		big.BWs = append(big.BWs, float64(i+1))
	}
	if _, _, err := f.plan(big); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized inner grid err = %v, want per-shard cap refusal", err)
	}
}

// TestRingProperties pins the consistent-hash contract: orders are
// deterministic, cover every host exactly once, and removing a host
// only reroutes the keys that preferred it.
func TestRingProperties(t *testing.T) {
	hosts := []string{"http://a", "http://b", "http://c", "http://d"}
	r1 := newRing(hosts)
	r2 := newRing(hosts)
	r3 := newRing(hosts[:3]) // drop http://d

	layer, err := serve.ResolveLayerSpec(serve.LayerSpec{Model: "VGG16", Name: "CONV11"})
	if err != nil {
		t.Fatal(err)
	}
	moved, kept := 0, 0
	for pe := 8; pe <= 2048; pe += 8 {
		key := serve.DSERouteKey(layer, "KC-P", []int{pe})
		o1, o2 := r1.order(key), r2.order(key)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("ring order not deterministic for pe=%d: %v vs %v", pe, o1, o2)
		}
		seen := map[string]bool{}
		for _, h := range o1 {
			seen[h] = true
		}
		if len(o1) != len(hosts) || len(seen) != len(hosts) {
			t.Fatalf("order %v does not cover hosts exactly once", o1)
		}
		if o1[0] == "http://d" {
			moved++
		} else {
			kept++
			if got := r3.order(key)[0]; got != o1[0] {
				t.Fatalf("pe=%d: dropping an unrelated host moved preference %s -> %s", pe, o1[0], got)
			}
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate spread: moved=%d kept=%d", moved, kept)
	}
}

// TestNewRejectsBadConfig pins the constructor seams: the host list is
// validated up front so a typo fails at New, not as a mysterious ring
// imbalance or dial error mid-sweep.
func TestNewRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name  string
		hosts []string
	}{
		{"no hosts", nil},
		{"exact duplicate", []string{"http://a", "http://a"}},
		{"duplicate modulo trailing slash", []string{"http://a:8080", "http://a:8080/"}},
		{"empty entry", []string{"http://a", ""}},
		{"blank entry", []string{"http://a", "   "}},
		{"missing scheme", []string{"node0:8080"}},
		{"unsupported scheme", []string{"ftp://a:21"}},
		{"missing authority", []string{"http://"}},
		{"query string", []string{"http://a:8080?x=1"}},
		{"fragment", []string{"http://a:8080#frag"}},
		{"unparseable", []string{"http://a:8080:9090:bad\x7f"}},
	}
	for _, tc := range cases {
		if _, err := New(Options{Hosts: tc.hosts}); err == nil {
			t.Errorf("%s: New accepted hosts %q", tc.name, tc.hosts)
		}
	}
	// The happy path still holds, trailing slash and all.
	f, err := New(Options{Hosts: []string{"http://a:8080", "https://b:8443/base/"}})
	if err != nil {
		t.Fatalf("valid hosts rejected: %v", err)
	}
	f.Close()
}
