// Package fleet coordinates distributed DSE sweeps: it shards a design
// space along the PE-count and tile-knob axes, dispatches the shards to
// a pool of maestro-serve nodes over the resilient client, and merges
// the partial Pareto fronts incrementally as shards complete.
//
// Routing is deterministic: shards hash onto a consistent ring over the
// node set keyed by the canonical (layer, template, PE subset) triple —
// the same key family the servers' profile caches are warmed by — so a
// repeated or follow-up sweep lands each shard on the node that already
// holds its cluster walks. Node loss is survived by walking the ring:
// shards stranded behind a tripped circuit breaker re-dispatch to the
// next healthy node, with at-most-once result accounting, and a
// straggler watchdog steals the slowest shard onto an idle node when
// one server falls far behind the pack.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/serve"
)

// vnodesPerHost is the ring's virtual-node fan-out. 64 keeps the
// per-host load spread within a few percent for small pools while the
// ring stays tiny (a 16-node fleet is 1024 entries).
const vnodesPerHost = 64

type vnode struct {
	hash uint64
	host int // index into ring.hosts
}

// ring is an immutable consistent-hash ring over the fleet's hosts.
type ring struct {
	hosts  []string
	vnodes []vnode // sorted by hash
}

func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

func newRing(hosts []string) *ring {
	r := &ring{hosts: hosts}
	for hi, h := range hosts {
		for v := 0; v < vnodesPerHost; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", h, v)), host: hi})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.host < b.host // stable under (vanishingly unlikely) hash ties
	})
	return r
}

// order returns every host exactly once, in ring-walk order starting at
// the key's position: the first entry is the shard's preferred node,
// and the rest are its failover sequence. The order depends only on the
// host set and the key, so re-dispatch decisions are reproducible.
func (r *ring) order(key serve.Key) []string {
	start := sort.Search(len(r.vnodes), func(i int) bool {
		return r.vnodes[i].hash >= binary.BigEndian.Uint64(key[:8])
	})
	out := make([]string, 0, len(r.hosts))
	seen := make([]bool, len(r.hosts))
	for i := 0; i < len(r.vnodes) && len(out) < len(r.hosts); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.host] {
			seen[v.host] = true
			out = append(out, r.hosts[v.host])
		}
	}
	return out
}
