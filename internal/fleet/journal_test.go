package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

// testRecord builds a structurally-valid DSE journal record.
func testRecord(shard, of int, hash string) journalRecord {
	return journalRecord{
		Kind: journalKindDSE, Sweep: "sweep0", Shard: shard, Of: of,
		Hash: hash, Host: "http://node0",
		DSE: &serve.DSEResponse{Raw: int64(shard + 1), Explored: 2, Valid: 1},
	}
}

func encodeAll(recs ...journalRecord) []byte {
	var buf bytes.Buffer
	for _, r := range recs {
		line, err := encodeRecord(r)
		if err != nil {
			panic(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

// TestJournalParseRoundTrip pins encode→parse as the identity on clean
// input.
func TestJournalParseRoundTrip(t *testing.T) {
	recs := []journalRecord{
		testRecord(0, 3, "h0"), testRecord(1, 3, "h1"), testRecord(2, 3, "h2"),
	}
	data := encodeAll(recs...)
	got, good := parseJournal(data)
	if good != len(data) {
		t.Fatalf("good = %d, want full %d", good, len(data))
	}
	if len(got) != len(recs) {
		t.Fatalf("parsed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Hash != recs[i].Hash || r.Shard != recs[i].Shard || r.DSE == nil || r.DSE.Raw != recs[i].DSE.Raw {
			t.Fatalf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
}

// TestJournalParseTruncatedTail pins the crash-mid-append case: a
// partial final line is dropped, everything before it survives.
func TestJournalParseTruncatedTail(t *testing.T) {
	full := encodeAll(testRecord(0, 2, "h0"), testRecord(1, 2, "h1"))
	first := encodeAll(testRecord(0, 2, "h0"))
	for cut := len(first) + 1; cut < len(full); cut++ {
		recs, good := parseJournal(full[:cut])
		if good != len(first) || len(recs) != 1 || recs[0].Hash != "h0" {
			t.Fatalf("cut %d: parsed %d records / %d good bytes, want 1 / %d", cut, len(recs), good, len(first))
		}
	}
}

// TestJournalParseBitFlip pins checksum enforcement: flipping any byte
// of a record's line ends the valid prefix at or before that record —
// a corrupt shard is never resurrected.
func TestJournalParseBitFlip(t *testing.T) {
	first := encodeAll(testRecord(0, 2, "h0"))
	full := encodeAll(testRecord(0, 2, "h0"), testRecord(1, 2, "h1"))
	for i := len(first); i < len(full)-1; i++ { // corrupt the second record
		data := append([]byte(nil), full...)
		data[i] ^= 0x40
		recs, good := parseJournal(data)
		if good > len(first) || len(recs) > 1 {
			t.Fatalf("flip at %d: %d records / %d good bytes accepted past the corruption", i, len(recs), good)
		}
	}
}

// TestJournalParseRejectsInvalidRecords pins structural validation:
// checksummed-but-nonsensical payloads end the prefix.
func TestJournalParseRejectsInvalidRecords(t *testing.T) {
	bad := []journalRecord{
		{Kind: journalKindDSE, Sweep: "s", Shard: 0, Of: 1, Hash: "h"},                                                             // no payload
		{Kind: journalKindDSE, Sweep: "s", Shard: 0, Of: 1, Hash: "h", Fusion: &serve.FusionResponse{}},                            // wrong payload
		{Kind: "mystery", Sweep: "s", Shard: 0, Of: 1, Hash: "h", DSE: &serve.DSEResponse{}},                                       // unknown kind
		{Kind: journalKindDSE, Sweep: "s", Shard: 2, Of: 2, Hash: "h", DSE: &serve.DSEResponse{}},                                  // shard out of range
		{Kind: journalKindDSE, Sweep: "s", Shard: 0, Of: 1, Hash: "", DSE: &serve.DSEResponse{}},                                   // no hash
		{Kind: journalKindFusion, Sweep: "", Shard: 0, Of: 1, Hash: "h", Fusion: &serve.FusionResponse{}},                          // no sweep
		{Kind: journalKindFusion, Sweep: "s", Shard: -1, Of: 1, Hash: "h", Fusion: &serve.FusionResponse{}},                        // negative shard
		{Kind: journalKindDSE, Sweep: "s", Shard: 0, Of: 0, Hash: "h", DSE: &serve.DSEResponse{}},                                  // zero Of
		{Kind: journalKindDSE, Sweep: "s", Shard: 0, Of: 1, Hash: "h", DSE: &serve.DSEResponse{}, Fusion: &serve.FusionResponse{}}, // both payloads
	}
	for i, r := range bad {
		line, err := encodeRecord(r)
		if err != nil {
			t.Fatalf("bad record %d failed to encode: %v", i, err)
		}
		if recs, good := parseJournal(line); len(recs) != 0 || good != 0 {
			t.Fatalf("bad record %d accepted: %+v", i, r)
		}
	}
}

// TestOpenJournalResume pins the open/append/replay cycle, including
// corrupt-tail truncation on disk.
func TestOpenJournalResume(t *testing.T) {
	dir := t.TempDir()

	j, err := openJournal(dir, journalKindDSE, "sweep0", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(testRecord(0, 3, "h0")); err != nil {
		t.Fatal(err)
	}
	if err := j.append(testRecord(1, 3, "h1")); err != nil {
		t.Fatal(err)
	}
	j.close()

	// Simulate a crash mid-append: garbage after the last good record.
	path := filepath.Join(dir, journalKindDSE+"-sweep0.jnl")
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append([]byte(nil), clean...), []byte("0000dead {half a reco")...), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := openJournal(dir, journalKindDSE, "sweep0", true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.replayed() != 2 {
		t.Fatalf("replayed = %d, want 2", j2.replayed())
	}
	if _, ok := j2.lookup("h0"); !ok {
		t.Fatal("h0 not replayed")
	}
	if _, ok := j2.lookup("h2"); ok {
		t.Fatal("phantom record replayed")
	}
	// The corrupt tail was truncated away on open…
	if data, _ := os.ReadFile(path); !bytes.Equal(data, clean) {
		t.Fatalf("corrupt tail not truncated: %d bytes, want %d", len(data), len(clean))
	}
	// …so the next append lands on a record boundary and the file stays
	// fully replayable.
	if err := j2.append(testRecord(2, 3, "h2")); err != nil {
		t.Fatal(err)
	}
	j2.close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, good := parseJournal(data)
	if len(recs) != 3 || good != len(data) {
		t.Fatalf("post-resume file parses %d records / %d of %d bytes, want 3 / all", len(recs), good, len(data))
	}

	// Without resume the pre-existing file is discarded.
	j3, err := openJournal(dir, journalKindDSE, "sweep0", false)
	if err != nil {
		t.Fatal(err)
	}
	if j3.replayed() != 0 {
		t.Fatalf("fresh open replayed %d records, want 0", j3.replayed())
	}
	j3.close()

	// finish deletes the file.
	j4, err := openJournal(dir, journalKindDSE, "sweep0", false)
	if err != nil {
		t.Fatal(err)
	}
	j4.finish()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("finish left the journal behind: %v", err)
	}
}

// TestOpenJournalFiltersForeignRecords: records for another sweep or
// kind never replay even if the file was moved into place by hand.
func TestOpenJournalFiltersForeignRecords(t *testing.T) {
	dir := t.TempDir()
	foreign := testRecord(0, 2, "hX")
	foreign.Sweep = "other-sweep"
	mine := testRecord(1, 2, "h1")
	path := filepath.Join(dir, journalKindDSE+"-sweep0.jnl")
	if err := os.WriteFile(path, encodeAll(foreign, mine), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := openJournal(dir, journalKindDSE, "sweep0", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if j.replayed() != 1 {
		t.Fatalf("replayed = %d, want 1 (foreign record must not load)", j.replayed())
	}
	if _, ok := j.lookup("hX"); ok {
		t.Fatal("foreign-sweep record replayed")
	}
}

// TestSweepHashesStable pins the canonical-hash contract: delivery-only
// knobs do not change a sweep's identity; anything that changes the
// answer does.
func TestSweepHashesStable(t *testing.T) {
	base := fleetReq()
	h1, err := sweepHashDSE(base)
	if err != nil {
		t.Fatal(err)
	}
	same := base
	same.TimeoutMs = 5000
	same.NoCache = true
	same.TopK = 10
	h2, err := sweepHashDSE(same)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("delivery knobs changed the sweep hash")
	}
	diff := base
	diff.PEs = append(append([]int(nil), base.PEs...), 1024)
	h3, err := sweepHashDSE(diff)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("different design space hashed identically")
	}
	if strings.ContainsAny(h1, "/\\ ") || len(h1) != 32 {
		t.Fatalf("hash %q is not a clean 32-hex filename component", h1)
	}
}

// FuzzJournalReplay is the satellite fuzz target: arbitrary bytes —
// random truncations, bit-flips, interleaved partial records — must
// never panic, never accept anything past the first corruption, and
// always leave a prefix that is itself a fixed point (replayable and
// appendable).
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeAll(testRecord(0, 2, "h0"), testRecord(1, 2, "h1")))
	trunc := encodeAll(testRecord(0, 1, "h0"))
	f.Add(trunc[:len(trunc)-3])
	flip := append([]byte(nil), trunc...)
	flip[len(flip)/2] ^= 0x01
	f.Add(append(flip, trunc...))
	f.Add([]byte("00000000 {}\nnot a record at all\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good := parseJournal(data)
		if good < 0 || good > len(data) {
			t.Fatalf("good = %d out of range [0,%d]", good, len(data))
		}
		// The good prefix is a fixed point: re-parsing it yields the same
		// records and consumes it fully.
		recs2, good2 := parseJournal(data[:good])
		if good2 != good || len(recs2) != len(recs) {
			t.Fatalf("prefix not a fixed point: %d/%d vs %d/%d", len(recs2), good2, len(recs), good)
		}
		// Every surviving record is structurally valid.
		for i := range recs {
			if !recs[i].valid() {
				t.Fatalf("record %d invalid after parse: %+v", i, recs[i])
			}
		}
		// Appending a fresh record to the good prefix — what a resumed
		// sweep does after truncation — parses to exactly one more record.
		line, err := encodeRecord(testRecord(0, 1, "fuzz"))
		if err != nil {
			t.Fatal(err)
		}
		recs3, good3 := parseJournal(append(append([]byte(nil), data[:good]...), line...))
		if len(recs3) != len(recs)+1 || good3 != good+len(line) {
			t.Fatalf("append after truncation: %d records / %d bytes, want %d / %d",
				len(recs3), good3, len(recs)+1, good+len(line))
		}
	})
}
