package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/url"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/client"
)

// This file is the coordinator side of distributed tracing: after a
// sweep, AssembleTrace pulls each node's buffered span segments for the
// sweep's trace ID, estimates every node's clock skew from the
// coordinator's own client.attempt spans (which bracket each exchange
// on the coordinator's clock), remaps node-local span IDs into the
// coordinator's ID space, and stitches one trace whose Chrome export
// renders the coordinator and every node as separate process lanes on
// a single corrected timeline.

// NodeSegments is one node's contribution to a stitched trace.
type NodeSegments struct {
	// Host is the node's base URL as configured in Options.Hosts.
	Host string
	// Node is the node name the server reported (its -node flag or
	// hostname).
	Node string
	// Spans is how many spans the node contributed.
	Spans int
	// Dropped is how many spans the node reported losing to its caps.
	Dropped int64
	// SkewNS is the clock correction added to the node's timestamps:
	// the estimated (coordinator clock − node clock), NTP-style, from
	// Matched request exchanges. 0 when no exchange could be matched.
	SkewNS int64
	// Matched counts the node root spans paired with a coordinator
	// client.attempt span for the skew estimate.
	Matched int
	// Err records a fetch failure ("" when the pull succeeded). A node
	// with no buffered segments reports "no segments" rather than
	// failing the whole assembly.
	Err string
}

// FleetTrace is one stitched distributed trace.
type FleetTrace struct {
	// TraceID is the 32-hex trace identifier.
	TraceID string
	// Spans is the merged span list: the coordinator's own spans plus
	// every node's, skew-corrected onto the coordinator's clock and
	// remapped into one ID space. A node root's Parent is rewritten to
	// the coordinator client.attempt span it answered, so every span is
	// reachable from the sweep root by Parent links.
	Spans []obs.SpanRecord
	// Nodes is the per-node pull diagnostics, in Options.Hosts order
	// (sorted).
	Nodes []NodeSegments
	// Dropped totals the spans nodes reported losing; a non-zero value
	// means the stitched trace is incomplete.
	Dropped int64

	lanes []obs.Lane
	epoch time.Time
}

// AssembleTrace pulls traceID's segments from every fleet node and
// stitches them with the coordinator's own recorded spans into one
// trace. rec is the coordinator's recorder (the one the sweep ran
// under); its client.attempt spans both anchor the skew estimate and
// become the parents of each node's root spans. Node fetch failures are
// reported per node, not as an assembly error; the error return is
// reserved for an invalid trace ID.
func (f *Fleet) AssembleTrace(ctx context.Context, traceID string, rec *obs.Recorder) (*FleetTrace, error) {
	if !obs.ValidTraceID(traceID) {
		return nil, fmt.Errorf("fleet: invalid trace ID %q", traceID)
	}
	ft := &FleetTrace{TraceID: traceID}

	// Coordinator spans for this trace, and the attempt index keyed by
	// span ID — a node root's RemoteParent names exactly one of these.
	var local []obs.SpanRecord
	if rec != nil {
		for _, s := range rec.Snapshot() {
			if s.TraceID == traceID {
				local = append(local, s)
			}
		}
	}
	attempts := make(map[uint64]obs.SpanRecord)
	var nextID uint64
	for _, s := range local {
		if s.Name == "client.attempt" {
			attempts[s.ID] = s
		}
		if s.ID > nextID {
			nextID = s.ID
		}
	}
	ft.Spans = append(ft.Spans, local...)
	ft.lanes = append(ft.lanes, obs.Lane{PID: 0, Process: "coordinator", Spans: local})

	hosts := append([]string(nil), f.opts.Hosts...)
	sort.Strings(hosts)
	for i, host := range hosts {
		ns := NodeSegments{Host: host}
		seg, err := f.clients[host].TraceSegments(ctx, traceID)
		switch {
		case err == nil:
			spans := obs.RecordsFromJSON(seg.Spans)
			ns.Node = seg.Node
			ns.Dropped = seg.Dropped
			ns.Spans = len(spans)
			ns.SkewNS, ns.Matched = estimateSkew(spans, attempts)
			corrected := remapNode(spans, attempts, &nextID, ns.SkewNS)
			ft.Spans = append(ft.Spans, corrected...)
			ft.Dropped += seg.Dropped
			ft.lanes = append(ft.lanes, obs.Lane{
				PID: i + 1, Process: laneName(seg.Node, host), Spans: corrected,
			})
		case isNotFound(err):
			ns.Err = "no segments"
		default:
			ns.Err = err.Error()
		}
		ft.Nodes = append(ft.Nodes, ns)
	}

	for _, s := range ft.Spans {
		if ft.epoch.IsZero() || s.Start.Before(ft.epoch) {
			ft.epoch = s.Start
		}
	}
	return ft, nil
}

// WriteChrome writes the stitched trace as Chrome trace_event JSON:
// one process lane for the coordinator, one per node, on the corrected
// shared timeline.
func (ft *FleetTrace) WriteChrome(w io.Writer) error {
	epoch := ft.epoch
	if epoch.IsZero() {
		epoch = time.Unix(0, 0)
	}
	return obs.WriteChromeLanes(w, epoch, ft.lanes)
}

// estimateSkew derives one node's clock offset from its root spans'
// pairing with the coordinator attempt spans that carried them: for an
// exchange the coordinator saw as [t1, t4] and the node as [t2, t3],
// the NTP offset estimate (coordinator − node) is ((t1−t2)+(t4−t3))/2
// — network asymmetry cancels to first order. Estimates from every
// matched exchange are averaged.
func estimateSkew(spans []obs.SpanRecord, attempts map[uint64]obs.SpanRecord) (offsetNS int64, matched int) {
	var sum int64
	for _, s := range spans {
		if s.RemoteParent == 0 {
			continue
		}
		a, ok := attempts[s.RemoteParent]
		if !ok {
			continue
		}
		d1 := a.Start.Sub(s.Start).Nanoseconds() // t1 − t2
		d2 := a.End.Sub(s.End).Nanoseconds()     // t4 − t3
		sum += (d1 + d2) / 2
		matched++
	}
	if matched == 0 {
		return 0, 0
	}
	return sum / int64(matched), matched
}

// remapNode rewrites one node's spans into the coordinator's ID space
// and clock: fresh IDs from the shared counter, Parent links rewritten
// through the ID map, root spans re-parented under the coordinator
// attempt span their RemoteParent names, and all timestamps shifted by
// the node's skew estimate.
func remapNode(spans []obs.SpanRecord, attempts map[uint64]obs.SpanRecord, nextID *uint64, skewNS int64) []obs.SpanRecord {
	idMap := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		*nextID++
		idMap[s.ID] = *nextID
	}
	off := time.Duration(skewNS)
	out := make([]obs.SpanRecord, len(spans))
	for i, s := range spans {
		s.ID = idMap[s.ID]
		switch {
		case s.RemoteParent != 0:
			if _, ok := attempts[s.RemoteParent]; ok {
				// The remote parent is a coordinator span; its ID is
				// already in the merged space.
				s.Parent = s.RemoteParent
			}
		case s.Parent != 0:
			// A parent missing from the segment (dropped on the node)
			// degrades the span to a lane root rather than dangling.
			s.Parent = idMap[s.Parent]
		}
		s.Track = idMap[s.Track]
		s.Start = s.Start.Add(off)
		s.End = s.End.Add(off)
		if len(s.Events) > 0 {
			evs := append([]obs.Event(nil), s.Events...)
			for j := range evs {
				evs[j].Time = evs[j].Time.Add(off)
			}
			s.Events = evs
		}
		out[i] = s
	}
	return out
}

// laneName labels a node's process lane with both its self-reported
// name and the host the coordinator knows it by.
func laneName(node, host string) string {
	h := host
	if u, err := url.Parse(host); err == nil && u.Host != "" {
		h = u.Host
	}
	if node == "" || node == h {
		return h
	}
	return node + " (" + h + ")"
}

// isNotFound reports whether err is the server saying "no such trace"
// (404), as opposed to the node being unreachable.
func isNotFound(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Status == 404
}
