package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/serve"
)

// serviceTime models a remote node's per-shard service time via the
// chaos latency injector. The in-process compute for the benchmark
// space is microseconds, so without this the benchmark would measure
// loopback HTTP overhead, not coordination; with it, the sweep's wall
// clock is dominated by per-node service time exactly as a real fleet's
// is, and the nodes=N ratio reports how well the coordinator overlaps
// nodes. (The container this repo benches on is single-CPU, so genuine
// compute-bound scaling cannot be demonstrated in-process.)
const serviceTime = 10 * time.Millisecond

// benchReq widens fleetReq's PE axis to 32 (pe, p1) cells so the
// partition is fine-grained enough for the ring to balance: with only
// a handful of shards, one node's extra shard dominates the critical
// path and understates the coordinator.
func benchReq() serve.DSERequest {
	req := fleetReq()
	req.PEs = nil
	for pe := 32; pe <= 512; pe += 32 {
		req.PEs = append(req.PEs, pe)
	}
	return req
}

// BenchmarkFleetSweep sweeps the same space through 1, 2, and 4
// in-process nodes with a fixed 32-shard partition and reports merged
// designs per wall-clock second.
func BenchmarkFleetSweep(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			hosts, servers, hc := newNodes(b, n)
			for _, s := range servers {
				s.SetChaos(serve.Chaos{Latency: serviceTime})
			}
			opts := fastFleet(hosts, hc)
			opts.ShardsPerNode = 32 / n // constant 32 shards at every width
			f, err := New(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			req := benchReq()
			req.NoCache = true // measure dispatch, not the nodes' result caches

			b.ResetTimer()
			var explored int64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				res, err := f.Sweep(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				explored += res.Explored
				elapsed += res.Elapsed
			}
			b.ReportMetric(float64(explored)/elapsed.Seconds(), "designs/s")
		})
	}
}
