package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/dse"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// FusionShardResult is one merged fusion chunk, streamed via
// Options.OnFusionShard.
type FusionShardResult struct {
	Shard    int
	Of       int
	Host     string // node that produced the result ("" when unknown)
	Replayed bool   // true when restored from the checkpoint journal
	Resp     *serve.FusionResponse
}

// FusionResult is a completed distributed fusion sweep: every priced
// (budget, granularity) point in canonical order plus the least-DRAM
// point, with at-most-once counters aggregated across shards.
type FusionResult struct {
	Model  string
	MACs   int64
	Points []dse.FusionPoint
	Best   *dse.FusionPoint

	Raw    int64
	Valid  int64
	Shards int
	// Redispatched counts failover attempts after a node refused or
	// failed a shard.
	Redispatched int64
	// Replayed counts shards restored from the checkpoint journal
	// instead of dispatched.
	Replayed int
	// JournalErrors counts shard results that merged but could not be
	// made durable (append or fsync failed).
	JournalErrors int64
	Elapsed       time.Duration
}

// SweepFusion partitions req's L2 budget grid, dispatches the shards
// across the fleet's nodes with ring failover, and merges the results
// into one sweep over the full (budget x granularity) plane. The
// granularity axis stays whole per shard — partitionings at one budget
// share a node's scheduler re-tunes, so splitting the budget axis is
// the cache-friendly cut. SweepFusion blocks until every shard
// completes, the context is cancelled, or a shard exhausts its rounds.
func (f *Fleet) SweepFusion(ctx context.Context, req serve.FusionRequest) (*FusionResult, error) {
	req = req.WithDefaults()
	start := time.Now()
	chunks := dse.PartitionFusionGrid(req.L2Grid, len(f.opts.Hosts)*f.opts.ShardsPerNode)
	if len(chunks) == 0 {
		return nil, fmt.Errorf("fleet: fusion sweep of %q has an empty budget grid", req.Model)
	}

	// Open the write-ahead journal before anything is dispatched; see
	// journal.go for the record format and Sweep for the DSE twin of
	// this logic.
	var jnl *journal
	if f.opts.CheckpointDir != "" {
		hash, err := sweepHashFusion(req)
		if err != nil {
			return nil, fmt.Errorf("fleet: hashing fusion request: %w", err)
		}
		jnl, err = openJournal(f.opts.CheckpointDir, journalKindFusion, hash, f.opts.Resume)
		if err != nil {
			return nil, err
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu            sync.Mutex
		points        []dse.FusionPoint
		raw, valid    int64
		redispatched  int64
		replayed      int
		journalErrors int64
		model         string
		macs          int64
		firstErr      error
	)
	mergeResp := func(resp *serve.FusionResponse) {
		model, macs = resp.Model, resp.MACs
		raw += resp.Raw
		valid += resp.Valid
		for _, pj := range resp.Points {
			points = append(points, fusionPointFrom(pj))
		}
	}
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		sreq := req
		sreq.L2Grid = chunk
		sreq.Shard = &serve.FusionShard{Index: i, Of: len(chunks)}
		var hash string
		if jnl != nil {
			hreq := sreq
			hreq.TimeoutMs = 0
			hreq.NoCache = false
			var err error
			hash, err = canonicalHash(journalKindFusion, hreq)
			if err != nil {
				jnl.close()
				return nil, fmt.Errorf("fleet: hashing fusion shard request: %w", err)
			}
			// Replay: only a record written for this exact chunk of the
			// budget grid, under this exact partition, restores. Dispatch
			// goroutines for earlier chunks may already be merging, so the
			// replay merge takes the same lock (and keeps the callback
			// under it — OnFusionShard is serialized on both paths).
			if rec, ok := jnl.lookup(hash); ok && rec.Of == len(chunks) && rec.Shard == i {
				mu.Lock()
				mergeResp(rec.Fusion)
				replayed++
				if cb := f.opts.OnFusionShard; cb != nil {
					cb(FusionShardResult{Shard: i, Of: len(chunks), Host: rec.Host, Replayed: true, Resp: rec.Fusion})
				}
				mu.Unlock()
				continue
			}
		}
		wg.Add(1)
		go func(i int, sreq serve.FusionRequest, hash string) {
			defer wg.Done()
			resp, host, retries, err := f.dispatchFusion(ctx, i, sreq)
			mu.Lock()
			defer mu.Unlock()
			redispatched += retries
			if err != nil {
				if firstErr == nil && ctx.Err() == nil {
					firstErr = fmt.Errorf("fleet: fusion shard %d/%d: %w", i, len(chunks), err)
					cancel()
				}
				return
			}
			if jnl != nil {
				// fsync-before-merge: the shard only counts once durable.
				rec := journalRecord{Shard: i, Of: len(chunks), Hash: hash, Host: host, Fusion: resp}
				if err := jnl.append(rec); err != nil {
					journalErrors++
				}
			}
			mergeResp(resp)
			if cb := f.opts.OnFusionShard; cb != nil {
				cb(FusionShardResult{Shard: i, Of: len(chunks), Host: host, Resp: resp})
			}
		}(i, sreq, hash)
	}
	wg.Wait()
	if firstErr != nil {
		if jnl != nil {
			jnl.close() // keep the journal for a later resume
		}
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		if jnl != nil {
			jnl.close()
		}
		return nil, err
	}
	if jnl != nil {
		jnl.finish() // complete: nothing left to resume
	}

	sort.Slice(points, func(a, b int) bool {
		if points[a].L2Bytes != points[b].L2Bytes {
			return points[a].L2Bytes < points[b].L2Bytes
		}
		return points[a].MaxGroupLayers < points[b].MaxGroupLayers
	})
	res := &FusionResult{
		Model: model, MACs: macs,
		Points: points,
		Raw:    raw, Valid: valid,
		Shards:        len(chunks),
		Redispatched:  redispatched,
		Replayed:      replayed,
		JournalErrors: journalErrors,
		Elapsed:       time.Since(start),
	}
	if best, ok := dse.BestFusion(points); ok {
		res.Best = &best
	}
	f.mu.Lock()
	f.sweeps++
	f.shards += int64(len(chunks))
	f.redispatched += redispatched
	f.mu.Unlock()
	return res, nil
}

// dispatchFusion walks the ring from the shard's home node until a
// node accepts, retrying up to Rounds full wraps with a backoff
// between wraps. Hosts the health prober marks unroutable fall to the
// back of each wrap's order — still tried as a last resort so a sweep
// survives a universally-unhealthy reading, but never preferred over a
// live node. Returns the accepted response, the host that produced it,
// and the number of failed attempts that preceded it.
func (f *Fleet) dispatchFusion(ctx context.Context, shard int, req serve.FusionRequest) (*serve.FusionResponse, string, int64, error) {
	hosts := f.opts.Hosts
	var retries int64
	var lastErr error
	for round := 0; round < f.opts.Rounds; round++ {
		order := make([]string, 0, len(hosts))
		var unhealthy []string
		for k := range hosts {
			h := hosts[(shard+k)%len(hosts)]
			if f.routable(h) {
				order = append(order, h)
			} else {
				unhealthy = append(unhealthy, h)
			}
		}
		order = append(order, unhealthy...)
		for _, host := range order {
			if err := ctx.Err(); err != nil {
				return nil, "", retries, err
			}
			resp, err := f.clients[host].Fusion(ctx, req)
			f.mu.Lock()
			ns := f.perNode[host]
			if err != nil {
				ns.Errors++
			} else {
				ns.Shards++
			}
			f.mu.Unlock()
			if err == nil {
				return resp, host, retries, nil
			}
			// A hard 4xx is the request's fault, not the node's: every
			// node would refuse it the same way, so fail the shard now.
			// 408/429 stay retryable — another node may have capacity.
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.Status >= 400 && apiErr.Status < 500 &&
				apiErr.Status != http.StatusRequestTimeout && apiErr.Status != http.StatusTooManyRequests {
				return nil, "", retries, err
			}
			lastErr = err
			retries++
		}
		if !sleepCtx(ctx, time.Duration(round+1)*50*time.Millisecond) {
			return nil, "", retries, ctx.Err()
		}
	}
	return nil, "", retries, fmt.Errorf("no node accepted after %d rounds: %w", f.opts.Rounds, lastErr)
}

// fusionPointFrom converts the wire point back to the dse type.
func fusionPointFrom(j serve.FusionPointJSON) dse.FusionPoint {
	return dse.FusionPoint{
		L2Bytes:        j.L2Bytes,
		MaxGroupLayers: j.MaxGroupLayers,
		FusedGroups:    j.FusedGroups,
		DRAMTraffic:    j.DRAMTraffic,
		BaselineDRAM:   j.BaselineDRAM,
		DRAMSaved:      j.DRAMSaved,
		ActTraffic:     j.ActTraffic,
		BaselineAct:    j.BaselineAct,
		TotalCycles:    j.TotalCycles,
		EnergyPJ:       j.EnergyPJ,
	}
}
