package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFleetStitchedTrace is the PR's acceptance check: a traced 2-node
// sweep must assemble into a single stitched trace in which every
// serve.compute span on every node is reachable from the coordinator's
// fleet.sweep root by parent links, all spans share the sweep's trace
// ID, and the Chrome export renders one process lane per node.
func TestFleetStitchedTrace(t *testing.T) {
	hosts, _, hc := newNodes(t, 2)
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	res, err := f.Sweep(ctx, fleetReq())
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("traced sweep reported no trace ID")
	}

	ft, err := f.AssembleTrace(context.Background(), res.TraceID, rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ft.Nodes {
		if n.Err != "" {
			t.Fatalf("node %s contributed no segments: %s", n.Host, n.Err)
		}
		if n.Spans == 0 {
			t.Errorf("node %s contributed zero spans", n.Host)
		}
		if n.Matched == 0 {
			t.Errorf("node %s: no exchanges matched for skew estimation", n.Host)
		}
	}
	if ft.Dropped != 0 {
		t.Errorf("stitched trace reports %d dropped spans", ft.Dropped)
	}

	byID := make(map[uint64]obs.SpanRecord, len(ft.Spans))
	var rootID uint64
	for _, s := range ft.Spans {
		if byID[s.ID].ID != 0 {
			t.Fatalf("span ID %d appears twice after remapping", s.ID)
		}
		byID[s.ID] = s
		if s.Name == "fleet.sweep" {
			if rootID != 0 {
				t.Fatal("more than one fleet.sweep root")
			}
			rootID = s.ID
		}
		if s.TraceID != res.TraceID {
			t.Errorf("span %q trace %q, want %q", s.Name, s.TraceID, res.TraceID)
		}
	}
	if rootID == 0 {
		t.Fatal("no fleet.sweep root in stitched trace")
	}

	reaches := func(s obs.SpanRecord) bool {
		for hops := 0; hops < 64; hops++ {
			if s.ID == rootID {
				return true
			}
			if s.Parent == 0 {
				return false
			}
			var ok bool
			s, ok = byID[s.Parent]
			if !ok {
				return false
			}
		}
		return false
	}
	var computes, reachable int
	wantReqID := "sweep-" + res.TraceID[:16]
	for _, s := range ft.Spans {
		if s.Name != "serve.compute" {
			continue
		}
		computes++
		if reaches(s) {
			reachable++
		}
		if id, _ := s.Attr("request_id"); id != wantReqID {
			t.Errorf("serve.compute request_id = %q, want %q", id, wantReqID)
		}
	}
	if computes < res.Shards {
		t.Errorf("stitched trace has %d serve.compute spans for %d shards", computes, res.Shards)
	}
	if reachable < computes*95/100 || reachable == 0 {
		t.Errorf("only %d/%d serve.compute spans reachable from fleet.sweep, want >=95%%", reachable, computes)
	}

	// The Chrome export is one JSON document with a process lane for
	// the coordinator and each node.
	var buf bytes.Buffer
	if err := ft.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	lanes := map[int]string{}
	var spanEvents int
	for _, ev := range chrome.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" {
			lanes[ev.PID], _ = ev.Args["name"].(string)
		}
		if ev.Phase == "X" {
			spanEvents++
		}
	}
	if len(lanes) != 3 {
		t.Errorf("chrome trace has %d process lanes %v, want 3 (coordinator + 2 nodes)", len(lanes), lanes)
	}
	if lanes[0] != "coordinator" {
		t.Errorf("lane 0 = %q, want coordinator", lanes[0])
	}
	if spanEvents != len(ft.Spans) {
		t.Errorf("chrome trace has %d X events for %d spans", spanEvents, len(ft.Spans))
	}
}

// TestUntracedSweepHasNoTraceOverhead pins the no-op-when-disabled
// contract end to end: without a recorder the sweep reports no trace
// ID and the nodes buffer no segments.
func TestUntracedSweepHasNoTraceOverhead(t *testing.T) {
	hosts, servers, hc := newNodes(t, 2)
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := f.Sweep(context.Background(), fleetReq())
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "" {
		t.Errorf("untraced sweep has trace ID %q", res.TraceID)
	}
	for host, s := range servers {
		if st := s.Status(); st.Segments.Traces != 0 || st.Segments.Spans != 0 {
			t.Errorf("node %s buffered segments for an untraced sweep: %+v", host, st.Segments)
		}
	}
}

func TestEstimateSkewAndRemap(t *testing.T) {
	base := time.Unix(100, 0)
	const skew = 5 * time.Second // node clock runs 5s ahead
	attempts := map[uint64]obs.SpanRecord{
		10: {ID: 10, Name: "client.attempt", Start: base, End: base.Add(100 * time.Millisecond)},
	}
	// The node observed the exchange inside the attempt window, but its
	// clock reads 5s later.
	nodeSpans := []obs.SpanRecord{
		{ID: 1, Track: 1, Name: "http.request", RemoteParent: 10,
			Start: base.Add(10 * time.Millisecond).Add(skew),
			End:   base.Add(90 * time.Millisecond).Add(skew)},
		{ID: 2, Parent: 1, Track: 1, Name: "serve.compute",
			Start:  base.Add(20 * time.Millisecond).Add(skew),
			End:    base.Add(80 * time.Millisecond).Add(skew),
			Events: []obs.Event{{Name: "hit", Time: base.Add(30 * time.Millisecond).Add(skew)}},
		},
	}
	off, matched := estimateSkew(nodeSpans, attempts)
	if matched != 1 {
		t.Fatalf("matched = %d, want 1", matched)
	}
	if got := time.Duration(off); got != -skew {
		t.Fatalf("skew estimate = %v, want %v", got, -skew)
	}

	nextID := uint64(10)
	out := remapNode(nodeSpans, attempts, &nextID, off)
	if len(out) != 2 {
		t.Fatalf("remapped %d spans", len(out))
	}
	root, child := out[0], out[1]
	if root.ID <= 10 || child.ID <= 10 {
		t.Errorf("remapped IDs %d, %d not above the coordinator ID space", root.ID, child.ID)
	}
	if root.Parent != 10 {
		t.Errorf("root parent = %d, want coordinator attempt 10", root.Parent)
	}
	if child.Parent != root.ID {
		t.Errorf("child parent = %d, want remapped root %d", child.Parent, root.ID)
	}
	if !root.Start.Equal(base.Add(10 * time.Millisecond)) {
		t.Errorf("root start %v not corrected onto coordinator clock", root.Start)
	}
	if !child.Events[0].Time.Equal(base.Add(30 * time.Millisecond)) {
		t.Errorf("event time %v not corrected", child.Events[0].Time)
	}
	// The input was not mutated (Get hands out shared copies).
	if nodeSpans[0].ID != 1 || !nodeSpans[1].Events[0].Time.Equal(base.Add(30*time.Millisecond).Add(skew)) {
		t.Error("remapNode mutated its input slice")
	}
}
