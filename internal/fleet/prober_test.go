package fleet

import (
	"testing"
	"time"

	"repro/internal/serve"
)

// TestNodeProbeStateMachine drives the pure observe() transitions the
// prober's loop feeds: dead is entered only after FailAfter consecutive
// failures and left only after UpAfter consecutive successes, while a
// drain answer flips state immediately.
func TestNodeProbeStateMachine(t *testing.T) {
	o := ProbeOptions{Interval: time.Second, FailAfter: 2, UpAfter: 2}.withDefaults()
	n := &nodeProbe{}

	if n.state != HealthUnknown {
		t.Fatalf("initial state = %v, want unknown", n.state)
	}
	n.observe(probeOK, o, "")
	if n.state != HealthUp {
		t.Fatalf("after ok: %v, want up", n.state)
	}

	// One failure is not death.
	n.observe(probeFail, o, "boom")
	if n.state != HealthUp {
		t.Fatalf("after 1 fail: %v, want still up", n.state)
	}
	// A success resets the failure streak entirely.
	n.observe(probeOK, o, "")
	n.observe(probeFail, o, "boom")
	if n.state != HealthUp {
		t.Fatalf("non-consecutive fails killed the node: %v", n.state)
	}
	// The second consecutive failure does it.
	n.observe(probeFail, o, "boom")
	if n.state != HealthDead {
		t.Fatalf("after FailAfter fails: %v, want dead", n.state)
	}
	if n.lastErr != "boom" {
		t.Fatalf("lastErr = %q, want the probe error", n.lastErr)
	}

	// Dead is sticky: one success does not re-admit.
	n.observe(probeOK, o, "")
	if n.state != HealthDead {
		t.Fatalf("1 ok re-admitted a dead node: %v", n.state)
	}
	// A failure resets the recovery streak.
	n.observe(probeFail, o, "boom")
	n.observe(probeOK, o, "")
	if n.state != HealthDead {
		t.Fatalf("non-consecutive oks re-admitted: %v", n.state)
	}
	n.observe(probeOK, o, "")
	if n.state != HealthUp {
		t.Fatalf("after UpAfter oks: %v, want up", n.state)
	}

	// Draining flips immediately from any state, and recovers
	// immediately on the next ready answer (a rolled-back drain).
	n.observe(probeDraining, o, "")
	if n.state != HealthDraining {
		t.Fatalf("after drain answer: %v, want draining", n.state)
	}
	n.observe(probeOK, o, "")
	if n.state != HealthUp {
		t.Fatalf("drained node did not recover on ready: %v", n.state)
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{
		HealthUnknown: "unknown", HealthUp: "up", HealthDraining: "draining", HealthDead: "dead",
	} {
		if h.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(h), h.String(), want)
		}
	}
}

// TestProberLifecycle runs the real probe loops against live nodes
// through the chaos cluster: up on boot, draining once the node flips
// readiness off, dead when killed, up again after restart — and the
// dispatcher's routable() view tracks each transition.
func TestProberLifecycle(t *testing.T) {
	cluster := newChaosCluster(t, 2, serve.Options{Workers: 1})
	opts := fastFleet(cluster.hosts, cluster.hc)
	opts.Probe = ProbeOptions{Interval: 5 * time.Millisecond, Timeout: 250 * time.Millisecond, FailAfter: 2, UpAfter: 2}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	node0, node1 := cluster.hosts[0], cluster.hosts[1]
	waitHealth(t, f, node0, HealthUp)
	waitHealth(t, f, node1, HealthUp)

	// Graceful drain: /healthz answers 503 but /v1/status still 200, so
	// the prober distinguishes draining from dead.
	cluster.server(node1).BeginDrain()
	waitHealth(t, f, node1, HealthDraining)
	if f.routable(node1) {
		t.Fatal("draining node still routable")
	}

	// Abrupt kill: neither endpoint answers.
	cluster.kill(node0)
	waitHealth(t, f, node0, HealthDead)
	if f.routable(node0) {
		t.Fatal("dead node still routable")
	}

	// Restart re-admits after UpAfter consecutive successes.
	cluster.restart(node0)
	waitHealth(t, f, node0, HealthUp)
	if !f.routable(node0) {
		t.Fatal("re-admitted node not routable")
	}
}

// TestHealthWithoutProber pins the disabled-prober default: every node
// reads unknown and stays routable.
func TestHealthWithoutProber(t *testing.T) {
	hosts, _, hc := newNodes(t, 2)
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for h, st := range f.Health() {
		if st != HealthUnknown {
			t.Fatalf("node %s = %v without a prober, want unknown", h, st)
		}
		if !f.routable(h) {
			t.Fatalf("node %s not routable without a prober", h)
		}
	}
}
