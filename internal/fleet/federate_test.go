package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestParsePromText(t *testing.T) {
	text := strings.Join([]string{
		"# HELP maestro_evaluations_total Analytical evaluations.",
		"# TYPE maestro_evaluations_total counter",
		"maestro_evaluations_total 42",
		`maestro_requests_total{endpoint="analyze"} 7`,
		`odd{label="quoted \" and } brace"} 1.5`,
		"with_timestamp 3 1700000000000", // optional timestamp dropped
		"",
		"garbage-without-value",
		"unclosed{label=\"x\" 9",
		"notanumber NaNope",
	}, "\n")
	got := parsePromText(text)
	want := []promSample{
		{name: "maestro_evaluations_total", labels: "", value: 42},
		{name: "maestro_requests_total", labels: `endpoint="analyze"`, value: 7},
		{name: "odd", labels: `label="quoted \" and } brace"`, value: 1.5},
		{name: "with_timestamp", labels: "", value: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsePromText:\n got %+v\nwant %+v", got, want)
	}
}

// TestFederateMetrics is the federation integration check: after a
// sweep over two live nodes, one federated scrape must report both
// nodes up, re-export their series under the fleet prefix with node
// labels, aggregate unlabelled families, and append the coordinator's
// own dispatch counters and last-sweep shard quantiles.
func TestFederateMetrics(t *testing.T) {
	hosts, _, hc := newNodes(t, 2)
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := f.Sweep(context.Background(), fleetReq())
	if err != nil {
		t.Fatal(err)
	}

	fed, err := f.FederateMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, host := range hosts {
		if !fed.Up[host] {
			t.Errorf("node %s reported down", host)
		}
	}
	for _, want := range []string{
		`maestro_fleet_up{node="node0"} 1`,
		`maestro_fleet_up{node="node1"} 1`,
		// Per-node re-export: the node label comes first, original
		// labels preserved after it.
		`maestro_fleet_maestro_evaluations_total{node="node0"}`,
		`maestro_fleet_maestro_requests_total{node="node0",endpoint="dse"}`,
		// Cross-node aggregates for unlabelled families only.
		`maestro_fleet_agg{metric="maestro_evaluations_total",agg="sum"}`,
		`maestro_fleet_agg{metric="maestro_evaluations_total",agg="max"}`,
		// Coordinator dispatch counters and per-node breakdown.
		"maestro_fleet_sweeps_total 1",
		`maestro_fleet_node_shards{node="node0"}`,
		`maestro_fleet_breaker_state{node="node0"} 0`,
		// Shard timeline of the sweep that just ran.
		`maestro_fleet_last_sweep_shard_seconds{quantile="0.5"}`,
		`maestro_fleet_last_sweep_shard_seconds{quantile="1.0"}`,
	} {
		if !strings.Contains(fed.Text, want) {
			t.Errorf("federated exposition missing %q", want)
		}
	}
	if strings.Contains(fed.Text, `maestro_fleet_agg{metric="maestro_requests_total"`) {
		t.Error("labelled family aggregated across mismatched label sets")
	}
	if grep := grepFed(fed.Text, "maestro_fleet_shards_total"); grep == "" {
		t.Error("no maestro_fleet_shards_total line")
	} else if !strings.HasSuffix(grep, " "+strconv.Itoa(res.Shards)) {
		t.Errorf("shards counter %q does not match sweep's %d shards", grep, res.Shards)
	}
}

// TestFederateMetricsDownNode: a node that fails to answer shows as up
// 0 and contributes no samples, without failing the scrape.
func TestFederateMetricsDownNode(t *testing.T) {
	hosts, _, hc := newNodes(t, 1)
	hosts = append(hosts, "http://node-down")
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	fed, err := f.FederateMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !fed.Up["http://node0"] || fed.Up["http://node-down"] {
		t.Errorf("Up = %v, want node0 up and node-down down", fed.Up)
	}
	if !strings.Contains(fed.Text, `maestro_fleet_up{node="node-down"} 0`) {
		t.Error("down node missing its up 0 series")
	}
	if strings.Contains(fed.Text, `maestro_fleet_maestro_evaluations_total{node="node-down"`) {
		t.Error("down node contributed samples")
	}
}

func TestFederationHandler(t *testing.T) {
	hosts, _, hc := newNodes(t, 1)
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts := httptest.NewServer(f.FederationHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), `maestro_fleet_up{node="node0"} 1`) {
		t.Errorf("handler body missing up series:\n%.300s", body)
	}

	respPost, err := http.Post(ts.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	respPost.Body.Close()
	if respPost.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", respPost.StatusCode)
	}
}

func grepFed(text, name string) string {
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, name+" ") {
			return l
		}
	}
	return ""
}
