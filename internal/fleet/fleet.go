package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dse"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/tensor"
)

// Options configures a Fleet.
type Options struct {
	// Hosts are the maestro-serve base URLs the fleet dispatches to,
	// e.g. {"http://10.0.0.1:8080", "http://10.0.0.2:8080"}. At least
	// one is required; duplicates are a configuration error.
	Hosts []string
	// Client is the per-node client template; BaseURL is overwritten
	// with each host. The zero value uses the client defaults.
	Client client.Options
	// ShardsPerNode sets the target shard count as a multiple of the
	// host count (default 4). More shards mean finer re-dispatch and
	// steal granularity at the cost of per-request overhead; the target
	// is raised automatically when the raw space would otherwise exceed
	// a server's MaxDSEGrid cap per shard.
	ShardsPerNode int
	// InflightPerNode caps concurrent shard requests per node
	// (default 2).
	InflightPerNode int
	// Rounds bounds how many times a shard may walk the whole ring
	// before the sweep fails (default 3). Each failover within a round
	// is a re-dispatch; a backoff separates full ring wraps.
	Rounds int
	// StragglerFactor triggers work-stealing: a shard whose sole
	// running attempt is older than this multiple of the median
	// completed-shard latency is re-issued on an idle healthy node
	// (default 4; the first finisher wins, the loser is discarded).
	StragglerFactor float64
	// StragglerMin is the minimum attempt age before stealing kicks in
	// (default 150ms), so fast sweeps never pay duplicate work.
	StragglerMin time.Duration
	// WatchTick is the straggler watchdog period (default 25ms).
	WatchTick time.Duration
	// OnShard, when set, streams each accepted shard result as it
	// merges (duplicates from stolen attempts are not streamed). Called
	// from request goroutines; must be safe for concurrent use.
	OnShard func(ShardResult)
	// OnFusionShard is OnShard's fusion twin: it streams each merged
	// fusion chunk (replayed ones included). Called from request
	// goroutines; must be safe for concurrent use.
	OnFusionShard func(FusionShardResult)
	// CheckpointDir, when set, makes sweeps durable: every accepted
	// shard result is appended to a checksummed write-ahead journal in
	// this directory and fsync'd before the shard counts as done. See
	// journal.go for the record format.
	CheckpointDir string
	// Resume replays an existing journal in CheckpointDir before
	// dispatching: shards whose results were durably accepted by an
	// interrupted run are restored from disk and only the remainder is
	// dispatched. Without Resume a pre-existing journal is discarded.
	Resume bool
	// Probe configures the active health prober; the zero value
	// disables it and dispatch relies on circuit breakers alone.
	Probe ProbeOptions
}

func (o Options) withDefaults() Options {
	if o.ShardsPerNode <= 0 {
		o.ShardsPerNode = 4
	}
	if o.InflightPerNode <= 0 {
		o.InflightPerNode = 2
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.StragglerFactor <= 0 {
		o.StragglerFactor = 4
	}
	if o.StragglerMin <= 0 {
		o.StragglerMin = 150 * time.Millisecond
	}
	if o.WatchTick <= 0 {
		o.WatchTick = 25 * time.Millisecond
	}
	return o
}

// ShardResult is one accepted shard response, streamed via OnShard.
type ShardResult struct {
	Shard    dse.Shard
	Host     string // node that produced the accepted result
	Stolen   bool   // true when a watchdog-stolen attempt won
	Replayed bool   // true when restored from the checkpoint journal
	Resp     *serve.DSEResponse
}

// Result is a completed distributed sweep: the merged Pareto front in
// canonical point order, the per-objective optima, and the aggregated
// exploration counters (counted at-most-once per shard, however many
// attempts ran).
type Result struct {
	Pareto        []dse.Point
	ThroughputOpt *dse.Point
	EnergyOpt     *dse.Point
	EDPOpt        *dse.Point

	Raw      int64
	Explored int64
	Invoked  int64
	Pricings int64
	Valid    int64

	Elapsed      time.Duration
	Shards       int
	Redispatched int64 // failover attempts after a node refused or failed a shard
	Stolen       int64 // duplicate attempts launched by the straggler watchdog
	Discarded    int64 // duplicate results dropped by at-most-once accounting
	Replayed     int   // shards restored from the checkpoint journal, not dispatched
	// JournalErrors counts shard results that merged but could not be
	// made durable (append or fsync failed). The sweep still completes;
	// a later resume re-dispatches those shards.
	JournalErrors int64

	// TraceID is the distributed trace the sweep ran under (empty when
	// tracing was off). It is the key for pulling node-local span
	// segments and assembling the stitched fleet trace.
	TraceID string
}

// Rate reports explored designs per wall-clock second.
func (r *Result) Rate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Explored) / r.Elapsed.Seconds()
}

// NodeStats counts one node's share of fleet traffic.
type NodeStats struct {
	// Shards is the number of shard results accepted from this node.
	Shards int64
	// Errors is the number of failed shard attempts on this node.
	Errors int64
	// Breaker is the node's circuit-breaker position at snapshot time.
	Breaker client.BreakerState
}

// Stats is a point-in-time snapshot of fleet activity.
type Stats struct {
	Sweeps       int64
	Shards       int64
	Redispatched int64
	Stolen       int64
	Discarded    int64
	PerNode      map[string]NodeStats
}

// Fleet dispatches sharded DSE sweeps across maestro-serve nodes. Safe
// for concurrent use.
type Fleet struct {
	opts    Options
	ring    *ring
	clients map[string]*client.Client
	prober  *prober // nil when probing is disabled

	mu           sync.Mutex
	sweeps       int64
	shards       int64
	redispatched int64
	stolen       int64
	discarded    int64
	perNode      map[string]*NodeStats
	// lastLatencies holds the most recent completed sweep's per-shard
	// latencies, feeding the federated shard-timeline quantiles.
	lastLatencies []time.Duration
}

// New builds a Fleet over opts.Hosts.
func New(opts Options) (*Fleet, error) {
	opts = opts.withDefaults()
	if err := validateHosts(opts.Hosts); err != nil {
		return nil, err
	}
	f := &Fleet{
		opts:    opts,
		clients: make(map[string]*client.Client, len(opts.Hosts)),
		perNode: make(map[string]*NodeStats, len(opts.Hosts)),
	}
	for _, h := range opts.Hosts {
		copts := opts.Client
		copts.BaseURL = h
		c, err := client.New(copts)
		if err != nil {
			return nil, fmt.Errorf("fleet: host %q: %w", h, err)
		}
		f.clients[h] = c
		f.perNode[h] = &NodeStats{}
	}
	f.ring = newRing(opts.Hosts)
	if opts.Probe.Interval > 0 {
		f.prober = startProber(f, opts.Probe)
	}
	return f, nil
}

// validateHosts rejects configurations that would silently misbehave:
// an empty list, empty entries, URLs the client cannot dial, and
// duplicates — a host listed twice is double-weighted on the ring and
// double-counted by InflightPerNode, which is never what the operator
// meant.
func validateHosts(hosts []string) error {
	if len(hosts) == 0 {
		return errors.New("fleet: no hosts")
	}
	seen := make(map[string]string, len(hosts))
	for _, h := range hosts {
		if strings.TrimSpace(h) == "" {
			return errors.New("fleet: empty host entry")
		}
		u, err := url.Parse(h)
		if err != nil {
			return fmt.Errorf("fleet: host %q: %w", h, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return fmt.Errorf("fleet: host %q: scheme must be http or https", h)
		}
		if u.Host == "" {
			return fmt.Errorf("fleet: host %q: missing host:port authority", h)
		}
		if u.RawQuery != "" || u.Fragment != "" {
			return fmt.Errorf("fleet: host %q: base URL must not carry a query or fragment", h)
		}
		// Normalize so "http://a:8080" and "http://a:8080/" collide.
		key := u.Scheme + "://" + u.Host + strings.TrimRight(u.Path, "/")
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("fleet: duplicate host %q (same node as %q)", h, prev)
		}
		seen[key] = h
	}
	return nil
}

// Close stops the health prober and releases the per-node clients' idle
// connections.
func (f *Fleet) Close() {
	if f.prober != nil {
		f.prober.Close()
	}
	for _, c := range f.clients {
		c.CloseIdleConnections()
	}
}

// Stats snapshots fleet counters and live per-node breaker positions.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	st := Stats{
		Sweeps:       f.sweeps,
		Shards:       f.shards,
		Redispatched: f.redispatched,
		Stolen:       f.stolen,
		Discarded:    f.discarded,
		PerNode:      make(map[string]NodeStats, len(f.perNode)),
	}
	for h, ns := range f.perNode {
		st.PerNode[h] = *ns
	}
	f.mu.Unlock()
	// Breaker positions are read live from each client, outside the
	// fleet lock (Stats never calls back into the fleet).
	for h, c := range f.clients {
		ns := st.PerNode[h]
		ns.Breaker = c.BreakerState()
		st.PerNode[h] = ns
	}
	return st
}

// shardRun is one shard's dispatch state.
type shardRun struct {
	shard dse.Shard
	req   serve.DSERequest
	route []string // failover order, preferred node first
	// hash is the canonical hash of the shard's scoped request; it keys
	// the shard's journal record, so a resumed sweep only replays a
	// record into the exact same slice of the space.
	hash string

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	cursor int // next route position to try
	live   map[int]liveAttempt
	nextID int
	stole  bool
	done   bool // guarded by sweep.mu, not sr.mu
}

// liveAttempt is one in-flight request the watchdog can judge.
type liveAttempt struct {
	start time.Time
	host  string
}

// sweep is the per-Sweep coordinator state.
type sweep struct {
	f      *Fleet
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	sem    map[string]chan struct{}
	shards []*shardRun
	jnl    *journal // nil when checkpointing is off
	wg     sync.WaitGroup

	mu        sync.Mutex
	front     []dse.Point
	res       Result
	latencies []time.Duration
	completed int
	err       error

	doneCh chan struct{}
	failCh chan struct{}
	fail   sync.Once
}

// Sweep partitions req's design space, dispatches the shards across the
// fleet, and returns the merged result. The request's unset axes are
// filled with the same defaults a single server applies, so the merged
// front is identical to what one node would compute for the whole
// space. Sweep blocks until every shard completes, the context is
// cancelled, or a shard exhausts its failover budget.
func (f *Fleet) Sweep(ctx context.Context, req serve.DSERequest) (*Result, error) {
	start := time.Now()
	runs, layer, err := f.plan(req)
	if err != nil {
		return nil, err
	}

	// Open the write-ahead journal before anything is dispatched: a
	// checkpointed sweep that cannot journal must fail loudly rather
	// than silently run undurable.
	var jnl *journal
	if f.opts.CheckpointDir != "" {
		creq := req.WithDefaults()
		creq.PEs = sortedDedup(creq.PEs)
		creq.P1 = sortedDedup(creq.P1)
		hash, err := sweepHashDSE(creq)
		if err != nil {
			return nil, fmt.Errorf("fleet: hashing sweep request: %w", err)
		}
		jnl, err = openJournal(f.opts.CheckpointDir, journalKindDSE, hash, f.opts.Resume)
		if err != nil {
			return nil, err
		}
	}

	ctx, span := obs.Start(ctx, "fleet.sweep",
		obs.String("layer", layer.Name), obs.String("template", req.Template),
		obs.Int("shards", len(runs)), obs.Int("hosts", len(f.opts.Hosts)))
	defer span.End()
	traceID := span.TraceID()
	if traceID != "" {
		// Stamp one request ID across every shard request the sweep fans
		// out, so all nodes' access logs grep by the sweep's identity.
		ctx = client.WithRequestID(ctx, "sweep-"+traceID[:16])
	}

	sw := &sweep{
		f:      f,
		opts:   f.opts,
		sem:    make(map[string]chan struct{}, len(f.opts.Hosts)),
		shards: runs,
		jnl:    jnl,
		doneCh: make(chan struct{}),
		failCh: make(chan struct{}),
	}
	sw.ctx, sw.cancel = context.WithCancel(ctx)
	defer sw.cancel()
	for _, h := range f.opts.Hosts {
		sw.sem[h] = make(chan struct{}, f.opts.InflightPerNode)
	}
	for _, sr := range runs {
		sr.ctx, sr.cancel = context.WithCancel(sw.ctx)
	}

	f.mu.Lock()
	f.sweeps++
	f.shards += int64(len(runs))
	f.mu.Unlock()

	// Replay journaled shards before dispatching anything: a record only
	// restores into the shard whose scoped-request hash and partition
	// shape it was written for, so a changed host count or grid simply
	// re-dispatches instead of merging the wrong slice.
	if jnl != nil {
		for _, sr := range runs {
			if rec, ok := jnl.lookup(sr.hash); ok &&
				rec.Of == len(runs) && rec.Shard == sr.shard.Index {
				sw.restore(sr, rec)
			}
		}
	}

	for _, sr := range sw.shards {
		sw.mu.Lock()
		done := sr.done
		sw.mu.Unlock()
		if done {
			continue // restored from the journal
		}
		sw.wg.Add(1)
		go sw.runShard(sr)
	}
	watchdogDone := make(chan struct{})
	go func() { defer close(watchdogDone); sw.watchdog() }()

	select {
	case <-sw.doneCh:
	case <-sw.failCh:
	case <-ctx.Done():
	}
	sw.cancel()
	sw.wg.Wait()
	<-watchdogDone

	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.completed < len(runs) {
		// The sweep did not finish: keep the journal on disk so a later
		// Resume replays the shards that were durably accepted.
		if jnl != nil {
			jnl.close()
		}
		if sw.err != nil {
			return nil, sw.err
		}
		return nil, fmt.Errorf("fleet: sweep cancelled: %w", ctx.Err())
	}
	if jnl != nil {
		jnl.finish() // complete: nothing left to resume
	}
	res := sw.res
	res.Pareto = sw.front
	dse.SortPoints(res.Pareto)
	res.Elapsed = time.Since(start)
	res.Shards = len(runs)
	res.TraceID = traceID
	f.mu.Lock()
	f.lastLatencies = append([]time.Duration(nil), sw.latencies...)
	f.mu.Unlock()
	span.SetAttr(obs.Int64("explored", res.Explored),
		obs.Int64("redispatched", res.Redispatched), obs.Int64("stolen", res.Stolen),
		obs.Int("replayed", res.Replayed))
	return &res, nil
}

// plan fills the request's defaults, partitions the design space, and
// computes each shard's scoped request and failover route. The target
// shard count is ShardsPerNode per host, raised when the raw space
// would otherwise exceed a server's per-request cap per shard. PE and
// P1 axes are sorted and deduplicated first so contiguous index chunks
// are contiguous value ranges — which is what the shard descriptor's
// [PEMin, PEMax] expresses — and so repeat sweeps produce byte-equal
// shard requests that hit the nodes' result caches.
func (f *Fleet) plan(req serve.DSERequest) ([]*shardRun, tensor.Layer, error) {
	layer, err := serve.ResolveLayerSpec(req.Layer)
	if err != nil {
		return nil, tensor.Layer{}, fmt.Errorf("fleet: %w", err)
	}
	req = req.WithDefaults()
	req.PEs = sortedDedup(req.PEs)
	p1 := sortedDedup(req.P1)
	req.P1 = p1

	// A shard can only be scoped along the PE and P1 axes; if the
	// remaining axes alone exceed a server's cap, no partition helps.
	inner := int64(len(req.P2)) * int64(len(req.BWs)) *
		int64(len(req.L1Grid)) * int64(len(req.L2Grid))
	if inner > serve.MaxDSEGrid {
		return nil, layer, fmt.Errorf("fleet: inner grid spans %d raw designs per (pe, p1) cell, over the per-shard cap %d", inner, serve.MaxDSEGrid)
	}
	raw := inner * int64(len(req.PEs)) * int64(len(p1))
	target := len(f.opts.Hosts) * f.opts.ShardsPerNode
	if need := int((raw + serve.MaxDSEGrid - 1) / serve.MaxDSEGrid); need > target {
		target = need
	}
	shards := dse.Partition(req.PEs, p1, target)
	if len(shards) == 0 {
		return nil, layer, errors.New("fleet: empty design space")
	}
	runs := make([]*shardRun, 0, len(shards))
	for _, sh := range shards {
		sreq := req
		sreq.P1 = sh.P1
		// Untruncated shard fronts: the global front is a subset of the
		// union of shard fronts only when no shard clips its own.
		sreq.TopK = 1 << 30
		sreq.Shard = &serve.DSEShard{
			Index: sh.Index, Of: sh.Of,
			PEMin: sh.PEs[0], PEMax: sh.PEs[len(sh.PEs)-1],
			Mappings: []string{req.Template},
		}
		// The shard's journal key: its scoped request with the
		// delivery-only knobs zeroed, so a retried sweep with a different
		// timeout still resumes cleanly.
		hreq := sreq
		hreq.TimeoutMs = 0
		hreq.NoCache = false
		hash, err := canonicalHash(journalKindDSE, hreq)
		if err != nil {
			return nil, layer, fmt.Errorf("fleet: hashing shard request: %w", err)
		}
		runs = append(runs, &shardRun{
			shard: sh,
			req:   sreq,
			route: f.ring.order(serve.DSERouteKey(layer, req.Template, sh.PEs)),
			hash:  hash,
			live:  make(map[int]liveAttempt, 2),
		})
	}
	return runs, layer, nil
}

// runShard walks the shard's failover route until a result is accepted
// or the attempt budget runs out.
func (sw *sweep) runShard(sr *shardRun) {
	defer sw.wg.Done()
	budget := sw.opts.Rounds * len(sr.route)
	var lastErr error
	for n := 0; n < budget; n++ {
		if sw.ctx.Err() != nil || sr.ctx.Err() != nil {
			return
		}
		host, wrapped := sr.nextHost(sw.f)
		if wrapped && n > 0 {
			// Every node has been tried this round; back off before the
			// next wrap so a fully-open ring doesn't spin.
			if !sleepCtx(sr.ctx, time.Duration(n)*25*time.Millisecond) {
				return
			}
		}
		err := sw.attempt(sr, host, false)
		if err == nil || sr.ctx.Err() != nil {
			return
		}
		lastErr = err
		sw.noteRedispatch(sr, host, err)
	}
	sw.fail.Do(func() {
		sw.mu.Lock()
		sw.err = fmt.Errorf("fleet: shard %d/%d failed after %d attempts: %w",
			sr.shard.Index, sr.shard.Of, budget, lastErr)
		sw.mu.Unlock()
		close(sw.failCh)
	})
}

// nextHost advances the shard's route cursor, preferring hosts whose
// breaker is not open and that the health prober considers routable;
// when every host is open or unhealthy it returns the cursor host
// anyway (the fast-fail keeps the attempt budget moving, probes
// half-open breakers, and lets a just-recovered node prove itself
// before the prober notices). wrapped reports that the cursor passed
// the route start, i.e. a full failover cycle elapsed.
func (sr *shardRun) nextHost(f *Fleet) (host string, wrapped bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	n := len(sr.route)
	for i := 0; i < n; i++ {
		h := sr.route[(sr.cursor+i)%n]
		if f.clients[h].BreakerState() != client.BreakerOpen && f.routable(h) {
			wrapped = (sr.cursor+i)%n == 0
			sr.cursor = (sr.cursor + i + 1) % n
			return h, wrapped
		}
	}
	h := sr.route[sr.cursor%n]
	wrapped = sr.cursor%n == 0
	sr.cursor = (sr.cursor + 1) % n
	return h, wrapped
}

// attempt runs one shard request against one host and merges an
// accepted result. A nil return means the shard is settled (success or
// superseded), not necessarily that this attempt's response won.
func (sw *sweep) attempt(sr *shardRun, host string, stolen bool) error {
	select {
	case sw.sem[host] <- struct{}{}:
	case <-sr.ctx.Done():
		return nil
	}
	defer func() { <-sw.sem[host] }()

	sr.mu.Lock()
	id := sr.nextID
	sr.nextID++
	start := time.Now()
	sr.live[id] = liveAttempt{start: start, host: host}
	sr.mu.Unlock()
	defer func() {
		sr.mu.Lock()
		delete(sr.live, id)
		sr.mu.Unlock()
	}()

	// The shard span starts from sr.ctx (which carries the sweep span)
	// and its context flows into the client, so each HTTP attempt's
	// client.attempt span nests under it and the traceparent header the
	// client injects names this sweep's trace.
	sctx, span := obs.Start(sr.ctx, "fleet.shard",
		obs.Int("shard", sr.shard.Index), obs.String("host", host), obs.Bool("stolen", stolen))
	resp, err := sw.f.clients[host].DSE(sctx, sr.req)
	span.SetAttr(obs.Bool("ok", err == nil))
	span.End()
	if err != nil {
		if sr.ctx.Err() != nil {
			return nil // cancelled: another attempt already settled the shard
		}
		sw.f.mu.Lock()
		sw.f.perNode[host].Errors++
		sw.f.mu.Unlock()
		return err
	}
	sw.accept(sr, host, resp, time.Since(start), stolen)
	return nil
}

// accept merges a shard response exactly once; late duplicates from
// stolen or raced attempts are counted and dropped. With checkpointing
// on, the record is appended and fsync'd *before* the shard is marked
// done — a coordinator killed at any instant either has the shard
// durable or will re-dispatch it, never neither.
func (sw *sweep) accept(sr *shardRun, host string, resp *serve.DSEResponse, d time.Duration, stolen bool) {
	sw.mu.Lock()
	if sr.done {
		sw.res.Discarded++
		sw.f.mu.Lock()
		sw.f.discarded++
		sw.f.mu.Unlock()
		sw.mu.Unlock()
		return
	}
	if sw.jnl != nil {
		rec := journalRecord{
			Shard: sr.shard.Index, Of: len(sw.shards), Hash: sr.hash,
			Host: host, Stolen: stolen, DSE: resp,
		}
		if err := sw.jnl.append(rec); err != nil {
			// Degrade, don't fail the sweep: the result still merges, a
			// later resume just re-dispatches this shard.
			sw.res.JournalErrors++
			if sp := obs.SpanFrom(sw.ctx); sp != nil {
				sp.Event("fleet.journal_error",
					obs.Int("shard", sr.shard.Index), obs.String("error", err.Error()))
			}
		}
	}
	sr.done = true
	sw.merge(resp)
	sw.latencies = append(sw.latencies, d)
	sw.completed++
	last := sw.completed == len(sw.shards)
	sw.f.mu.Lock()
	sw.f.perNode[host].Shards++
	sw.f.mu.Unlock()
	sw.mu.Unlock()

	sr.cancel() // abort the losing attempt, if one is in flight
	if cb := sw.opts.OnShard; cb != nil {
		cb(ShardResult{Shard: sr.shard, Host: host, Stolen: stolen, Resp: resp})
	}
	if last {
		close(sw.doneCh)
	}
}

// restore merges a journaled shard record as if the shard had just
// completed, without dispatching anything. No latency sample is
// recorded, so the straggler watchdog's median only reflects shards
// that actually ran in this process. Called sequentially from Sweep
// before dispatch starts.
func (sw *sweep) restore(sr *shardRun, rec journalRecord) {
	sw.mu.Lock()
	if sr.done {
		sw.mu.Unlock()
		return
	}
	sr.done = true
	sw.merge(rec.DSE)
	sw.res.Replayed++
	sw.completed++
	last := sw.completed == len(sw.shards)
	sw.mu.Unlock()

	sr.cancel()
	if cb := sw.opts.OnShard; cb != nil {
		cb(ShardResult{Shard: sr.shard, Host: rec.Host, Stolen: rec.Stolen, Replayed: true, Resp: rec.DSE})
	}
	if last {
		close(sw.doneCh)
	}
}

// merge folds one shard response into the sweep's running result.
// Caller holds sw.mu.
func (sw *sweep) merge(resp *serve.DSEResponse) {
	pts := make([]dse.Point, len(resp.Pareto))
	for i, j := range resp.Pareto {
		pts[i] = pointFrom(j)
	}
	sw.front = dse.MergePareto(sw.front, pts)
	sw.res.Raw += resp.Raw
	sw.res.Explored += resp.Explored
	sw.res.Invoked += resp.Invoked
	sw.res.Pricings += resp.Pricings
	sw.res.Valid += resp.Valid
	sw.res.ThroughputOpt = mergeOpt(sw.res.ThroughputOpt, resp.ThroughputOpt, betterThroughput)
	sw.res.EnergyOpt = mergeOpt(sw.res.EnergyOpt, resp.EnergyOpt, betterEnergy)
	sw.res.EDPOpt = mergeOpt(sw.res.EDPOpt, resp.EDPOpt, betterEDP)
}

func (sw *sweep) noteRedispatch(sr *shardRun, host string, err error) {
	sw.mu.Lock()
	sw.res.Redispatched++
	sw.mu.Unlock()
	sw.f.mu.Lock()
	sw.f.redispatched++
	sw.f.mu.Unlock()
	if sp := obs.SpanFrom(sw.ctx); sp != nil {
		sp.Event("fleet.redispatch", obs.Int("shard", sr.shard.Index),
			obs.String("host", host), obs.String("error", err.Error()))
	}
}

// watchdog periodically compares each running attempt's age against the
// median completed-shard latency and steals the slowest shard onto an
// idle healthy node when it falls StragglerFactor behind.
func (sw *sweep) watchdog() {
	t := time.NewTicker(sw.opts.WatchTick)
	defer t.Stop()
	for {
		select {
		case <-sw.ctx.Done():
			return
		case <-sw.doneCh:
			return
		case <-t.C:
		}
		med := sw.medianLatency()
		if med <= 0 {
			continue // nothing completed yet: no baseline to judge by
		}
		cut := time.Duration(sw.opts.StragglerFactor * float64(med))
		if cut < sw.opts.StragglerMin {
			cut = sw.opts.StragglerMin
		}
		now := time.Now()
		for _, sr := range sw.shards {
			if host, ok := sw.stragglerTarget(sr, now, cut); ok {
				sw.mu.Lock()
				sw.res.Stolen++
				sw.mu.Unlock()
				sw.f.mu.Lock()
				sw.f.stolen++
				sw.f.mu.Unlock()
				if sp := obs.SpanFrom(sw.ctx); sp != nil {
					sp.Event("fleet.steal", obs.Int("shard", sr.shard.Index), obs.String("host", host))
				}
				sw.wg.Add(1)
				go func(sr *shardRun, host string) {
					defer sw.wg.Done()
					sw.attempt(sr, host, true)
				}(sr, host)
			}
		}
	}
}

// stragglerTarget decides whether sr's sole running attempt is overdue
// and picks the node to steal it onto: the next host on sr's failover
// route that is healthy, not already running this shard, and has a free
// slot. Each shard is stolen at most once.
func (sw *sweep) stragglerTarget(sr *shardRun, now time.Time, cut time.Duration) (string, bool) {
	sw.mu.Lock()
	done := sr.done
	sw.mu.Unlock()
	if done {
		return "", false
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.stole || len(sr.live) != 1 {
		return "", false
	}
	var running liveAttempt
	for _, a := range sr.live {
		running = a
	}
	if now.Sub(running.start) < cut {
		return "", false
	}
	busy := running.host
	for i := 0; i < len(sr.route); i++ {
		h := sr.route[(sr.cursor+i)%len(sr.route)]
		if h == busy {
			continue
		}
		if sw.f.clients[h].BreakerState() == client.BreakerOpen {
			continue
		}
		if !sw.f.routable(h) {
			continue
		}
		if len(sw.sem[h]) >= cap(sw.sem[h]) {
			continue
		}
		sr.stole = true
		return h, true
	}
	return "", false
}

func (sw *sweep) medianLatency() time.Duration {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	n := len(sw.latencies)
	if n == 0 {
		return 0
	}
	s := append([]time.Duration(nil), sw.latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[n/2]
}

func betterThroughput(a, b dse.Point) bool {
	if a.Throughput != b.Throughput {
		return a.Throughput > b.Throughput
	}
	return a.EnergyPJ < b.EnergyPJ
}

func betterEnergy(a, b dse.Point) bool {
	if a.EnergyPJ != b.EnergyPJ {
		return a.EnergyPJ < b.EnergyPJ
	}
	return a.Throughput > b.Throughput
}

func betterEDP(a, b dse.Point) bool { return a.EDP < b.EDP }

// mergeOpt folds one shard's per-objective optimum into the running
// optimum with the same comparator dse's selectors use.
func mergeOpt(cur *dse.Point, cand *serve.DSEPointJSON, better func(a, b dse.Point) bool) *dse.Point {
	if cand == nil {
		return cur
	}
	p := pointFrom(*cand)
	if cur == nil || better(p, *cur) {
		return &p
	}
	return cur
}

// pointFrom converts the wire point back to a dse.Point. JSON float64
// round-trips are bit-exact in Go, so merged fleet fronts compare
// bit-identical to locally computed ones.
func pointFrom(j serve.DSEPointJSON) dse.Point {
	return dse.Point{
		NumPEs: j.NumPEs, BW: j.BW, P1: j.P1, P2: j.P2,
		L1Bytes: j.L1Bytes, L2Bytes: j.L2Bytes,
		AreaMM2: j.AreaMM2, PowerMW: j.PowerMW,
		Runtime: j.Runtime, Throughput: j.Throughput,
		EnergyPJ: j.EnergyPJ, EDP: j.EDP,
	}
}

func sortedDedup(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
