package fleet

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// This file is the fleet's membership layer: an active health prober
// that asks every node "are you routable?" on its own clock instead of
// trusting the static host list until a shard dispatch fails. Each
// node is probed with GET /healthz (the readiness endpoint: it answers
// 503 once graceful drain begins) on a jittered period; when readiness
// is refused, GET /v1/status decides liveness — a node that still
// answers status is alive-but-draining, one that answers neither is
// counted toward dead. Dispatch and straggler-stealing skip nodes that
// are not up, and a dead node is re-admitted only after consecutive
// successful probes, so a flapping node cannot oscillate the ring.

// Health is a node's probed availability.
type Health int

const (
	// HealthUnknown: the prober is disabled or has not probed yet;
	// treated as routable (the breaker still guards dispatch).
	HealthUnknown Health = iota
	// HealthUp: the last probe confirmed readiness.
	HealthUp
	// HealthDraining: the node answers /v1/status but refuses /healthz
	// — graceful drain has begun; stop routing new shards to it.
	HealthDraining
	// HealthDead: FailAfter consecutive probes failed entirely.
	HealthDead
)

func (h Health) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthDraining:
		return "draining"
	case HealthDead:
		return "dead"
	}
	return "unknown"
}

// ProbeOptions configures the active health prober. The zero value
// disables it (Interval 0): dispatch then relies on circuit breakers
// alone, as before.
type ProbeOptions struct {
	// Interval is the base probe period per node; 0 disables probing.
	Interval time.Duration
	// Jitter is the extra uniform random delay added to each period
	// (default Interval/4) so a fleet of coordinators never probes in
	// lockstep.
	Jitter time.Duration
	// Timeout bounds one probe exchange (default min(Interval, 2s)).
	Timeout time.Duration
	// FailAfter is how many consecutive failed probes mark a node dead
	// (default 2).
	FailAfter int
	// UpAfter is how many consecutive successful probes re-admit a
	// dead node (default 2).
	UpAfter int
}

func (o ProbeOptions) withDefaults() ProbeOptions {
	if o.Jitter <= 0 {
		o.Jitter = o.Interval / 4
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
		if o.Interval < o.Timeout {
			o.Timeout = o.Interval
		}
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 2
	}
	if o.UpAfter <= 0 {
		o.UpAfter = 2
	}
	return o
}

// probeVerdict is one probe's classified outcome.
type probeVerdict int

const (
	probeOK probeVerdict = iota
	probeDraining
	probeFail
)

// nodeProbe is one node's state-machine position.
type nodeProbe struct {
	state Health
	fails int
	oks   int
	// lastErr keeps the most recent failure text for Stats/logs.
	lastErr string
}

// observe advances the state machine by one probe outcome. Dead is
// sticky: it takes UpAfter consecutive successes to leave, so one
// lucky probe against a flapping node does not re-admit it. A drain
// answer proves liveness and moves the node to draining immediately,
// whatever state it was in.
func (n *nodeProbe) observe(v probeVerdict, o ProbeOptions, errText string) {
	switch v {
	case probeOK:
		n.fails = 0
		n.oks++
		n.lastErr = ""
		if n.state == HealthDead {
			if n.oks >= o.UpAfter {
				n.state = HealthUp
			}
			return
		}
		n.state = HealthUp
	case probeDraining:
		n.fails = 0
		n.oks = 0
		n.lastErr = ""
		n.state = HealthDraining
	case probeFail:
		n.oks = 0
		n.fails++
		n.lastErr = errText
		if n.fails >= o.FailAfter {
			n.state = HealthDead
		}
	}
}

// prober runs one probe loop per host until closed.
type prober struct {
	f    *Fleet
	opts ProbeOptions
	stop chan struct{}
	wg   sync.WaitGroup

	mu    sync.Mutex
	nodes map[string]*nodeProbe
}

// startProber launches the per-host probe loops.
func startProber(f *Fleet, opts ProbeOptions) *prober {
	p := &prober{
		f:     f,
		opts:  opts.withDefaults(),
		stop:  make(chan struct{}),
		nodes: make(map[string]*nodeProbe, len(f.opts.Hosts)),
	}
	for _, h := range f.opts.Hosts {
		p.nodes[h] = &nodeProbe{}
	}
	for _, h := range f.opts.Hosts {
		p.wg.Add(1)
		go p.loop(h)
	}
	return p
}

func (p *prober) Close() {
	close(p.stop)
	p.wg.Wait()
}

// loop probes one host forever: an immediate first probe (so a fresh
// fleet learns its membership before the first sweep needs it), then a
// jittered period.
func (p *prober) loop(host string) {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(int64(hash64(host)) ^ time.Now().UnixNano()))
	// Random initial phase spreads the very first probes of a large
	// host list instead of firing them all at once.
	delay := time.Duration(rng.Int63n(int64(p.opts.Jitter) + 1))
	for {
		t := time.NewTimer(delay)
		select {
		case <-p.stop:
			t.Stop()
			return
		case <-t.C:
		}
		p.probe(host)
		delay = p.opts.Interval + time.Duration(rng.Int63n(int64(p.opts.Jitter)+1))
	}
}

// probe runs one readiness exchange (and, when readiness is refused, a
// liveness one) and applies the verdict.
func (p *prober) probe(host string) {
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.Timeout)
	defer cancel()
	v, errText := probeOK, ""
	code, err := p.f.clients[host].Healthz(ctx)
	switch {
	case err == nil && code == http.StatusOK:
		// ready
	case err == nil && code == http.StatusServiceUnavailable:
		// Readiness refused: liveness decides whether the node is
		// draining (still answering status) or on its way out.
		if _, serr := p.f.clients[host].Status(ctx); serr == nil {
			v = probeDraining
		} else {
			v, errText = probeFail, serr.Error()
		}
	case err == nil:
		v, errText = probeFail, http.StatusText(code)
	default:
		v, errText = probeFail, err.Error()
	}
	p.mu.Lock()
	p.nodes[host].observe(v, p.opts, errText)
	p.mu.Unlock()
}

// health returns one node's current state.
func (p *prober) health(host string) Health {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n, ok := p.nodes[host]; ok {
		return n.state
	}
	return HealthUnknown
}

// snapshot copies every node's state.
func (p *prober) snapshot() map[string]Health {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]Health, len(p.nodes))
	for h, n := range p.nodes {
		out[h] = n.state
	}
	return out
}

// Health reports every node's probed state. Without a prober
// (ProbeOptions.Interval 0) every node reads HealthUnknown, which the
// dispatcher treats as routable.
func (f *Fleet) Health() map[string]Health {
	if f.prober != nil {
		return f.prober.snapshot()
	}
	out := make(map[string]Health, len(f.opts.Hosts))
	for _, h := range f.opts.Hosts {
		out[h] = HealthUnknown
	}
	return out
}

// routable reports whether dispatch may target a host: not probed-dead
// and not draining. Unknown is routable — the breaker still guards the
// first exchange.
func (f *Fleet) routable(host string) bool {
	if f.prober == nil {
		return true
	}
	st := f.prober.health(host)
	return st != HealthDead && st != HealthDraining
}
