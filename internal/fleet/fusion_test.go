package fleet

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/serve"
)

// fusionFleetReq sweeps four budgets so a two-node fleet splits the
// grid into multiple shards (granularity stays whole per shard).
func fusionFleetReq() serve.FusionRequest {
	return serve.FusionRequest{
		Model:          "AlexNet",
		HW:             serve.HWSpec{Preset: "Accel256", L2Bytes: 256 << 10},
		Dataflow:       "KC-P",
		L2Grid:         []int64{0, 64 << 10, 256 << 10, 1 << 20},
		MaxGroupLayers: []int{1, 8},
	}
}

// fusionTruth prices the same plane on a single in-process explorer.
func fusionTruth(t testing.TB, req serve.FusionRequest) []dse.FusionPoint {
	t.Helper()
	m, ok := models.ByName(req.Model)
	if !ok {
		t.Fatalf("unknown model %q", req.Model)
	}
	cfg := hw.Accel256()
	cfg.L2Size = req.HW.L2Bytes
	points, _, err := dse.ExploreFusion(dse.FusionSpace{
		Model:          m,
		Cfg:            cfg.Normalize(),
		Dataflow:       req.Dataflow,
		L2Grid:         req.L2Grid,
		MaxGroupLayers: req.MaxGroupLayers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// TestSweepFusionMatchesLocal distributes the fusion sweep across two
// nodes and checks the merged plane is exactly the single-process
// sweep: same points, same order, same best.
func TestSweepFusionMatchesLocal(t *testing.T) {
	hosts, _, hc := newNodes(t, 2)
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	req := fusionFleetReq()
	res, err := f.SweepFusion(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := fusionTruth(t, req)
	if !reflect.DeepEqual(res.Points, want) {
		t.Fatalf("distributed points diverge from local truth:\n got %+v\nwant %+v", res.Points, want)
	}
	if res.Shards < 2 {
		t.Fatalf("sweep used %d shards, want >= 2", res.Shards)
	}
	if res.Model != "AlexNet" || res.MACs <= 0 {
		t.Fatalf("model echo wrong: %+v", res)
	}
	wantBest, _ := dse.BestFusion(want)
	if res.Best == nil || *res.Best != wantBest {
		t.Fatalf("best = %+v, want %+v", res.Best, wantBest)
	}
	if st := f.Stats(); st.Sweeps != 1 || st.Shards != int64(res.Shards) {
		t.Fatalf("fleet stats %+v after one sweep of %d shards", st, res.Shards)
	}
}

// TestSweepFusionFailover routes half the ring to a dead host: every
// shard must still complete via failover, with redispatches counted.
func TestSweepFusionFailover(t *testing.T) {
	hosts, _, hc := newNodes(t, 1)
	hosts = append(hosts, "http://deadnode")
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	req := fusionFleetReq()
	res, err := f.SweepFusion(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Points, fusionTruth(t, req)) {
		t.Fatal("failover sweep diverged from local truth")
	}
	if res.Redispatched == 0 {
		t.Fatal("dead node cost no redispatches")
	}
}

// TestSweepFusionEmptyGrid pins the coordinator-side validation.
func TestSweepFusionEmptyGrid(t *testing.T) {
	hosts, _, hc := newNodes(t, 1)
	f, err := New(fastFleet(hosts, hc))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	req := fusionFleetReq()
	req.Model = "NoSuchNet"
	if _, err := f.SweepFusion(context.Background(), req); err == nil {
		t.Fatal("unknown model swept successfully")
	}
}
