package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/serve/client"
)

// This file is the fleet's telemetry federation: the coordinator
// scrapes every node's /metrics endpoint, re-exports each sample under
// the maestro_fleet_ prefix with a node label, adds sum/max aggregates
// across the fleet, and appends its own dispatch counters (sweeps,
// shards, steals, breaker positions, last-sweep shard timeline). The
// result is one exposition a single Prometheus scrape — or a human
// with curl — can read for the whole fleet.

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels string // raw text inside the braces, "" when unlabelled
	value  float64
}

// parsePromText parses the Prometheus text exposition format the serve
// registry renders: `name value` and `name{labels} value` lines,
// comments skipped. Lines that do not parse are dropped — federation
// must degrade, not fail, on a node speaking a newer dialect.
func parsePromText(text string) []promSample {
	var out []promSample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name, labels, rest string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := closingBrace(line, i)
			if j < 0 {
				continue
			}
			name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
		} else {
			i := strings.IndexByte(line, ' ')
			if i < 0 {
				continue
			}
			name, rest = line[:i], strings.TrimSpace(line[i+1:])
		}
		// An optional timestamp may follow the value; take the first
		// field only.
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			rest = rest[:i]
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil || name == "" {
			continue
		}
		out = append(out, promSample{name: name, labels: labels, value: v})
	}
	return out
}

// closingBrace finds the '}' matching the '{' at open, skipping quoted
// label values (which may contain escaped quotes and braces).
func closingBrace(s string, open int) int {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// nodeScrape is one node's scrape outcome.
type nodeScrape struct {
	host    string
	node    string // label value: the URL's host part
	samples []promSample
	err     error
}

// Federation is one federated scrape of the fleet.
type Federation struct {
	// Text is the merged Prometheus exposition.
	Text string
	// Up maps each host to whether its scrape succeeded.
	Up map[string]bool
	// Elapsed is the scrape's wall time.
	Elapsed time.Duration
}

// FederateMetrics scrapes every node's /metrics concurrently and merges
// the samples into one exposition. A node that fails to answer shows as
// maestro_fleet_up 0; its samples are simply absent.
func (f *Fleet) FederateMetrics(ctx context.Context) (*Federation, error) {
	start := time.Now()
	hosts := append([]string(nil), f.opts.Hosts...)
	sort.Strings(hosts)
	scrapes := make([]nodeScrape, len(hosts))
	var wg sync.WaitGroup
	for i, host := range hosts {
		wg.Add(1)
		go func(i int, host string) {
			defer wg.Done()
			sc := nodeScrape{host: host, node: nodeLabel(host)}
			text, err := f.clients[host].MetricsText(ctx)
			if err != nil {
				sc.err = err
			} else {
				sc.samples = parsePromText(text)
			}
			scrapes[i] = sc
		}(i, host)
	}
	wg.Wait()

	fed := &Federation{Up: make(map[string]bool, len(hosts))}
	var b strings.Builder

	// Liveness first: one series per node, in sorted host order. With
	// the active prober running, up reflects probe truth (a node is up
	// only when its last readiness probe said so) rather than whether
	// this one scrape happened to succeed; without a prober the scrape
	// outcome is the best signal available, as before.
	health := f.Health()
	fmt.Fprintf(&b, "# HELP maestro_fleet_up Whether the node is routable: probe truth when the prober runs, else last-scrape success.\n# TYPE maestro_fleet_up gauge\n")
	for _, sc := range scrapes {
		isUp := sc.err == nil
		if f.prober != nil {
			isUp = health[sc.host] == HealthUp
		}
		up := 0
		if isUp {
			up = 1
		}
		fed.Up[sc.host] = isUp
		fmt.Fprintf(&b, "maestro_fleet_up{node=%q} %d\n", sc.node, up)
	}
	if f.prober != nil {
		fmt.Fprintf(&b, "# HELP maestro_fleet_node_health Probed node state: 0 unknown, 1 up, 2 draining, 3 dead.\n# TYPE maestro_fleet_node_health gauge\n")
		for _, sc := range scrapes {
			fmt.Fprintf(&b, "maestro_fleet_node_health{node=%q} %d\n", sc.node, int(health[sc.host]))
		}
	}

	// Per-node re-export plus cross-node aggregates, grouped by family
	// name so the output stays a valid exposition (one family block per
	// name).
	type agg struct {
		sum      float64
		max      float64
		nodes    int
		haveMax  bool
		perVal   []string // rendered per-node lines, in scrape order
		sumAggOK bool     // only unlabelled families aggregate cleanly
	}
	fams := map[string]*agg{}
	var order []string
	for _, sc := range scrapes {
		for _, s := range sc.samples {
			a, ok := fams[s.name]
			if !ok {
				a = &agg{sumAggOK: true}
				fams[s.name] = a
				order = append(order, s.name)
			}
			labels := "node=" + strconv.Quote(sc.node)
			if s.labels != "" {
				labels += "," + s.labels
				a.sumAggOK = false
			}
			a.perVal = append(a.perVal,
				fmt.Sprintf("maestro_fleet_%s{%s} %s", s.name, labels, formatValue(s.value)))
			a.sum += s.value
			if !a.haveMax || s.value > a.max {
				a.max, a.haveMax = s.value, true
			}
			a.nodes++
		}
	}
	sort.Strings(order)
	for _, name := range order {
		a := fams[name]
		fmt.Fprintf(&b, "# TYPE maestro_fleet_%s untyped\n", name)
		for _, line := range a.perVal {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "# HELP maestro_fleet_agg Cross-node aggregate of an unlabelled node metric.\n# TYPE maestro_fleet_agg untyped\n")
	for _, name := range order {
		a := fams[name]
		if !a.sumAggOK {
			continue
		}
		fmt.Fprintf(&b, "maestro_fleet_agg{metric=%q,agg=\"sum\"} %s\n", name, formatValue(a.sum))
		fmt.Fprintf(&b, "maestro_fleet_agg{metric=%q,agg=\"max\"} %s\n", name, formatValue(a.max))
	}

	// Coordinator-side dispatch counters and breaker positions.
	st := f.Stats()
	fmt.Fprintf(&b, "# HELP maestro_fleet_sweeps_total Sweeps dispatched by this coordinator.\n# TYPE maestro_fleet_sweeps_total counter\nmaestro_fleet_sweeps_total %d\n", st.Sweeps)
	fmt.Fprintf(&b, "# TYPE maestro_fleet_shards_total counter\nmaestro_fleet_shards_total %d\n", st.Shards)
	fmt.Fprintf(&b, "# TYPE maestro_fleet_redispatched_total counter\nmaestro_fleet_redispatched_total %d\n", st.Redispatched)
	fmt.Fprintf(&b, "# TYPE maestro_fleet_stolen_total counter\nmaestro_fleet_stolen_total %d\n", st.Stolen)
	fmt.Fprintf(&b, "# TYPE maestro_fleet_discarded_total counter\nmaestro_fleet_discarded_total %d\n", st.Discarded)
	fmt.Fprintf(&b, "# TYPE maestro_fleet_node_shards counter\n")
	for _, sc := range scrapes {
		ns := st.PerNode[sc.host]
		fmt.Fprintf(&b, "maestro_fleet_node_shards{node=%q} %d\n", sc.node, ns.Shards)
	}
	fmt.Fprintf(&b, "# TYPE maestro_fleet_node_errors counter\n")
	for _, sc := range scrapes {
		ns := st.PerNode[sc.host]
		fmt.Fprintf(&b, "maestro_fleet_node_errors{node=%q} %d\n", sc.node, ns.Errors)
	}
	fmt.Fprintf(&b, "# HELP maestro_fleet_breaker_state Circuit position per node: 0 closed, 1 half-open, 2 open.\n# TYPE maestro_fleet_breaker_state gauge\n")
	for _, sc := range scrapes {
		ns := st.PerNode[sc.host]
		fmt.Fprintf(&b, "maestro_fleet_breaker_state{node=%q} %d\n", sc.node, breakerValue(ns.Breaker))
	}

	// Shard timeline of the most recent sweep: latency quantiles across
	// its shards, so a dashboard sees straggler spread without tracing.
	if q := f.lastShardQuantiles(); q != nil {
		fmt.Fprintf(&b, "# HELP maestro_fleet_last_sweep_shard_seconds Shard latency quantiles of the most recent sweep.\n# TYPE maestro_fleet_last_sweep_shard_seconds gauge\n")
		for _, it := range q {
			fmt.Fprintf(&b, "maestro_fleet_last_sweep_shard_seconds{quantile=%q} %s\n", it.q, formatValue(it.v))
		}
	}

	fed.Text = b.String()
	fed.Elapsed = time.Since(start)
	return fed, nil
}

// FederationHandler serves the federated exposition over HTTP (mounted
// by maestro-dse's -fleet-metrics listener).
func (f *Fleet) FederationHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		fed, err := f.FederateMetrics(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = w.Write([]byte(fed.Text))
	})
}

type quantileItem struct {
	q string
	v float64
}

// lastShardQuantiles snapshots the most recent sweep's shard latency
// spread (nil when no sweep has completed).
func (f *Fleet) lastShardQuantiles() []quantileItem {
	f.mu.Lock()
	lat := append([]time.Duration(nil), f.lastLatencies...)
	f.mu.Unlock()
	if len(lat) == 0 {
		return nil
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i].Seconds()
	}
	return []quantileItem{
		{"0.5", at(0.5)}, {"0.9", at(0.9)}, {"1.0", at(1.0)},
	}
}

// nodeLabel reduces a base URL to its host part for the node label.
func nodeLabel(host string) string {
	if u, err := url.Parse(host); err == nil && u.Host != "" {
		return u.Host
	}
	return host
}

// breakerValue maps a breaker position onto a gauge value.
func breakerValue(s client.BreakerState) int {
	switch s {
	case client.BreakerOpen:
		return 2
	case client.BreakerHalfOpen:
		return 1
	default:
		return 0
	}
}

// formatValue renders a sample value the way Prometheus text format
// expects (integers without a decimal point).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
