package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/serve"
)

// This file is the fleet-level chaos harness the durability tentpole is
// proven by: real serve nodes are killed and restarted mid-sweep, and
// the coordinator itself is "SIGKILL'd" — the Fleet dropped on the
// floor with shards half done — then rebuilt from the same
// CheckpointDir. Every resumed sweep must be bit-identical to the
// single-process truth, with only the unjournaled shards re-dispatched.

// chaosCluster runs real serve nodes behind stable names and supports
// abrupt kill / clean restart of individual nodes while a fleet is
// dispatching against them.
type chaosCluster struct {
	t     *testing.T
	hosts []string
	hc    *http.Client

	mu        sync.Mutex
	targets   map[string]string // stable name -> live listener host; "" = down
	servers   map[string]*serve.Server
	listeners map[string]*httptest.Server
	opts      serve.Options
}

// clusterTransport resolves stable node names against the cluster's
// live listeners; a killed node fails at dial level, exactly like a
// machine that dropped off the network.
type clusterTransport struct{ c *chaosCluster }

func (ct clusterTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ct.c.mu.Lock()
	tgt := ct.c.targets[req.URL.Host]
	ct.c.mu.Unlock()
	if tgt == "" {
		return nil, fmt.Errorf("node %q is down", req.URL.Host)
	}
	r2 := req.Clone(req.Context())
	r2.URL.Host = tgt
	return http.DefaultTransport.RoundTrip(r2)
}

func newChaosCluster(t *testing.T, n int, opts serve.Options) *chaosCluster {
	t.Helper()
	c := &chaosCluster{
		t:         t,
		targets:   map[string]string{},
		servers:   map[string]*serve.Server{},
		listeners: map[string]*httptest.Server{},
		opts:      opts,
	}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("http://node%d", i)
		c.hosts = append(c.hosts, host)
		c.start(host)
	}
	c.hc = &http.Client{Transport: clusterTransport{c}}
	t.Cleanup(func() {
		for _, host := range c.hosts {
			c.kill(host)
		}
	})
	return c
}

// start boots (or re-boots) one node.
func (c *chaosCluster) start(host string) {
	c.t.Helper()
	s := serve.New(c.opts)
	ts := httptest.NewServer(s.Handler())
	u, err := url.Parse(ts.URL)
	if err != nil {
		c.t.Fatal(err)
	}
	name := hostName(c.t, host)
	c.mu.Lock()
	c.targets[name] = u.Host
	c.servers[host] = s
	c.listeners[host] = ts
	c.mu.Unlock()
}

// kill takes a node off the network abruptly: new dials fail
// immediately, in-flight exchanges are severed, then the dead process
// is reaped in the background (a SIGKILL'd server never drains).
func (c *chaosCluster) kill(host string) {
	name := hostName(c.t, host)
	c.mu.Lock()
	ts, s := c.listeners[host], c.servers[host]
	c.targets[name] = ""
	delete(c.listeners, host)
	delete(c.servers, host)
	c.mu.Unlock()
	if ts == nil {
		return
	}
	ts.CloseClientConnections()
	go func() {
		ts.Close()
		s.Close()
	}()
}

// restart brings a previously-killed node back with a cold cache.
func (c *chaosCluster) restart(host string) { c.start(host) }

// server returns a live node's serve.Server (nil when killed).
func (c *chaosCluster) server(host string) *serve.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[host]
}

// setChaosAll applies a serve-side fault spec to every live node.
func (c *chaosCluster) setChaosAll(spec serve.Chaos) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.servers {
		s.SetChaos(spec)
	}
}

func hostName(t *testing.T, host string) string {
	t.Helper()
	u, err := url.Parse(host)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// waitHealth polls the fleet's probed view until host reaches want.
func waitHealth(t *testing.T, f *Fleet, host string, want Health) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f.Health()[host] == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("node %s never reached %v (now %v)", host, want, f.Health()[host])
}

// checkpointOpts is fastFleet plus a checkpoint dir.
func checkpointOpts(hosts []string, hc *http.Client, dir string) Options {
	o := fastFleet(hosts, hc)
	o.CheckpointDir = dir
	return o
}

// TestChaosCoordinatorCrashResumeDSE is the tentpole invariant for DSE
// sweeps: kill the coordinator after k of n shards completed, re-create
// the fleet from the same CheckpointDir, and the merged result is
// DeepEqual to an uninterrupted run while only the unjournaled shards
// are re-dispatched.
func TestChaosCoordinatorCrashResumeDSE(t *testing.T) {
	cluster := newChaosCluster(t, 4, serve.Options{Workers: 1})
	// Stagger shard completion so the cancel lands with the second wave
	// still undispatched; without the latency all 8 shards can finish
	// before the "crash" takes effect.
	cluster.setChaosAll(serve.Chaos{Latency: 25 * time.Millisecond})
	dir := t.TempDir()
	req := fleetReq()
	wantFront, wantStats := truth(t, req)

	// Run 1: the coordinator "crashes" (sweep context cancelled, Fleet
	// dropped) after the first shard result is accepted and journaled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := checkpointOpts(cluster.hosts, cluster.hc, dir)
	var journaled int32
	opts.OnShard = func(sr ShardResult) {
		atomic.AddInt32(&journaled, 1)
		cancel()
	}
	f1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Sweep(ctx, req); err == nil {
		t.Fatal("interrupted sweep reported success")
	}
	f1.Close() // the "SIGKILL": nothing of f1 survives but the journal
	k := int(atomic.LoadInt32(&journaled))
	if k < 1 || k >= 8 {
		t.Fatalf("crash window missed: %d of 8 shards completed before the kill", k)
	}

	// Run 2: a fresh coordinator resumes from the same CheckpointDir.
	opts2 := checkpointOpts(cluster.hosts, cluster.hc, dir)
	opts2.Resume = true
	var replayed, dispatched int32
	opts2.OnShard = func(sr ShardResult) {
		if sr.Replayed {
			atomic.AddInt32(&replayed, 1)
		} else {
			atomic.AddInt32(&dispatched, 1)
		}
	}
	f2, err := New(opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	res, err := f2.Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}

	if !reflect.DeepEqual(res.Pareto, wantFront) {
		t.Fatalf("resumed front != single-process truth\nresumed: %+v\ntruth:   %+v", res.Pareto, wantFront)
	}
	if res.Raw != wantStats.Raw || res.Explored != wantStats.Explored || res.Valid != wantStats.Valid {
		t.Fatalf("resumed counters (raw=%d explored=%d valid=%d) != truth (raw=%d explored=%d valid=%d)",
			res.Raw, res.Explored, res.Valid, wantStats.Raw, wantStats.Explored, wantStats.Valid)
	}
	if res.Replayed != k {
		t.Fatalf("Replayed = %d, want the %d journaled shards", res.Replayed, k)
	}
	if got := int(atomic.LoadInt32(&replayed)); got != k {
		t.Fatalf("OnShard streamed %d replayed shards, want %d", got, k)
	}
	if got := int(atomic.LoadInt32(&dispatched)); got != 8-k {
		t.Fatalf("resumed run dispatched %d shards, want exactly the %d missing ones", got, 8-k)
	}
	if res.JournalErrors != 0 {
		t.Fatalf("JournalErrors = %d, want 0", res.JournalErrors)
	}
	// The completed sweep removed its journal: a third run replays
	// nothing and recomputes cleanly.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("checkpoint dir not empty after completed sweep: %v", entries)
	}
	res3, err := f2.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Replayed != 0 || !reflect.DeepEqual(res3.Pareto, wantFront) {
		t.Fatalf("post-finish sweep replayed %d shards or diverged", res3.Replayed)
	}
}

// TestChaosCoordinatorCrashResumeFusion is the same invariant for
// fusion sweeps.
func TestChaosCoordinatorCrashResumeFusion(t *testing.T) {
	cluster := newChaosCluster(t, 2, serve.Options{Workers: 1})
	cluster.setChaosAll(serve.Chaos{Latency: 25 * time.Millisecond})
	dir := t.TempDir()
	req := fusionFleetReq()
	want := fusionTruth(t, req)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := checkpointOpts(cluster.hosts, cluster.hc, dir)
	var journaled int32
	opts.OnFusionShard = func(sr FusionShardResult) {
		atomic.AddInt32(&journaled, 1)
		cancel()
	}
	f1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := f1.SweepFusion(ctx, req)
	f1.Close()
	k := int(atomic.LoadInt32(&journaled))
	if err == nil {
		// With few chunks the whole sweep can outrun the cancel; that is
		// not a crash, so re-arm with zero tolerance: nothing to resume.
		t.Fatalf("interrupted fusion sweep reported success (%d shards)", res1.Shards)
	}
	if k < 1 {
		t.Fatal("no fusion shard journaled before the kill")
	}

	opts2 := checkpointOpts(cluster.hosts, cluster.hc, dir)
	opts2.Resume = true
	var replayed int32
	opts2.OnFusionShard = func(sr FusionShardResult) {
		if sr.Replayed {
			atomic.AddInt32(&replayed, 1)
		}
	}
	f2, err := New(opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	res, err := f2.SweepFusion(context.Background(), req)
	if err != nil {
		t.Fatalf("resumed fusion sweep failed: %v", err)
	}
	if !reflect.DeepEqual(res.Points, want) {
		t.Fatalf("resumed fusion points != single-process truth\nresumed: %+v\ntruth:   %+v", res.Points, want)
	}
	if res.Replayed != k || int(atomic.LoadInt32(&replayed)) != k {
		t.Fatalf("Replayed = %d (streamed %d), want %d", res.Replayed, atomic.LoadInt32(&replayed), k)
	}
	if res.Shards-res.Replayed > res.Shards-k {
		t.Fatalf("resumed run re-dispatched %d of %d shards, want <= %d", res.Shards-res.Replayed, res.Shards, res.Shards-k)
	}
	wantBest, _ := dse.BestFusion(want)
	if res.Best == nil || *res.Best != wantBest {
		t.Fatalf("resumed best = %+v, want %+v", res.Best, wantBest)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("checkpoint dir not empty after completed fusion sweep: %v", entries)
	}
}

// TestChaosNodeKillFailoverAndReadmit is the membership half of the
// tentpole: a node killed mid-sweep is marked dead by the prober, its
// shards fail over without corrupting the merged front, and after a
// restart the node is re-admitted by consecutive successful probes.
func TestChaosNodeKillFailoverAndReadmit(t *testing.T) {
	cluster := newChaosCluster(t, 4, serve.Options{Workers: 1})
	req := fleetReq()
	wantFront, _ := truth(t, req)

	opts := fastFleet(cluster.hosts, cluster.hc)
	opts.Probe = ProbeOptions{Interval: 5 * time.Millisecond, Timeout: 250 * time.Millisecond, FailAfter: 2, UpAfter: 2}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, h := range cluster.hosts {
		waitHealth(t, f, h, HealthUp)
	}

	// Kill the node that owns the most shards once its first result has
	// merged; its remaining shards must fail over.
	runs, _, err := f.plan(req)
	if err != nil {
		t.Fatal(err)
	}
	preferred := map[string]int{}
	for _, sr := range runs {
		preferred[sr.route[0]]++
	}
	victim := cluster.hosts[0]
	for h, n := range preferred {
		if n > preferred[victim] {
			victim = h
		}
	}
	var once sync.Once
	f.opts.OnShard = func(sr ShardResult) {
		if sr.Host == victim {
			once.Do(func() { cluster.kill(victim) })
		}
	}

	res, err := f.Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("sweep across the kill failed: %v", err)
	}
	if !reflect.DeepEqual(res.Pareto, wantFront) {
		t.Fatal("post-kill front diverged from truth")
	}
	waitHealth(t, f, victim, HealthDead)
	if f.routable(victim) {
		t.Fatal("dead node still routable")
	}

	// Restart: consecutive successful probes re-admit the node, and the
	// next sweep can use the whole fleet again.
	cluster.restart(victim)
	waitHealth(t, f, victim, HealthUp)
	if !f.routable(victim) {
		t.Fatal("re-admitted node not routable")
	}
	res2, err := f.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Pareto, wantFront) {
		t.Fatal("post-readmit front diverged from truth")
	}
}
