package serve

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Submission errors.
var (
	// ErrQueueFull reports queue-depth backpressure; handlers map it to
	// HTTP 429.
	ErrQueueFull = errors.New("serve: work queue full")
	// ErrPoolClosed reports a submission after shutdown began.
	ErrPoolClosed = errors.New("serve: pool closed")
)

// Pool is a bounded worker pool: a fixed number of workers drain a
// fixed-capacity queue, and submissions beyond the queue capacity fail
// fast with ErrQueueFull instead of blocking the handler.
type Pool struct {
	mu      sync.RWMutex
	closed  bool
	jobs    chan func()
	wg      sync.WaitGroup
	running atomic.Int64
}

// NewPool starts `workers` workers behind a queue of `queue` slots.
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{jobs: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				p.running.Add(1)
				f()
				p.running.Add(-1)
			}
		}()
	}
	return p
}

// Submit enqueues f, failing fast when the queue is full or the pool is
// shutting down.
func (p *Pool) Submit(f func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.jobs <- f:
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth returns the number of queued (not yet running) jobs.
func (p *Pool) QueueDepth() int64 { return int64(len(p.jobs)) }

// Running returns the number of jobs currently executing.
func (p *Pool) Running() int64 { return p.running.Load() }

// Close stops accepting work and blocks until queued and in-flight
// jobs drain — the graceful-shutdown path.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
