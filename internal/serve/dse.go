package serve

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/obs"
)

// Template builders adapt the dataflows package's parameterized styles
// to the DSE's two-knob shape (YX-P has a single knob).
func dseBuildKCP(p1, p2 int) dataflow.Dataflow { return dataflows.KCPSized(p1, p2) }
func dseBuildYRP(p1, p2 int) dataflow.Dataflow { return dataflows.YRPSized(p1, p2) }
func dseBuildYXP(p1, _ int) dataflow.Dataflow  { return dataflows.YXPSized(p1) }

// DSERequest is the body of POST /v1/dse: a bounded design-space sweep
// for one layer under area/power budgets (the paper's Section 5.2
// workflow as a service call).
type DSERequest struct {
	Layer LayerSpec `json:"layer"`
	// Template is the dataflow style to sweep: KC-P, YR-P, or YX-P.
	Template string `json:"template"`
	// P1/P2 are the template's tile-size knobs (P2 ignored by YX-P).
	P1 []int `json:"p1,omitempty"`
	P2 []int `json:"p2,omitempty"`

	PEs    []int     `json:"pes,omitempty"`
	BWs    []float64 `json:"bws,omitempty"` // elements/cycle
	L1Grid []int64   `json:"l1_grid,omitempty"`
	L2Grid []int64   `json:"l2_grid,omitempty"`

	AreaBudgetMM2 float64 `json:"area_budget_mm2,omitempty"`
	PowerBudgetMW float64 `json:"power_budget_mw,omitempty"`

	// Shard, when set, scopes the sweep to one shard of a larger
	// distributed run; the descriptor participates in the result-cache
	// key, so shard responses never collide with the full sweep's.
	Shard *DSEShard `json:"shard,omitempty"`

	// TopK caps the Pareto points returned (default 32).
	TopK      int  `json:"top_k,omitempty"`
	TimeoutMs int  `json:"timeout_ms,omitempty"`
	NoCache   bool `json:"no_cache,omitempty"`
}

// DSEShard scopes a /v1/dse sweep to one shard of a distributed run:
// the fleet coordinator partitions the design space and sends the same
// base request with a per-shard descriptor. Restrictions compose with
// the request's own axes — the PE range filters the request's (or
// default) PE list, and Mappings must name the sweep's template.
type DSEShard struct {
	// Index/Of label the shard within its partition (for logs, spans,
	// and the cache key); they do not affect the swept space.
	Index int `json:"index,omitempty"`
	Of    int `json:"of,omitempty"`
	// PEMin/PEMax bound the swept PE counts inclusively; zero leaves
	// that end open. An inverted range is a 400.
	PEMin int `json:"pe_min,omitempty"`
	PEMax int `json:"pe_max,omitempty"`
	// Mappings restricts the sweep to these mapping-template names.
	// Every name must be a known template (KC-P, YR-P, YX-P) and the
	// subset must include the request's template — a shard that names
	// an unknown mapping or excludes the whole sweep is a 400.
	Mappings []string `json:"mappings,omitempty"`
}

// DSEPointJSON is one design point of the response.
type DSEPointJSON struct {
	NumPEs     int     `json:"num_pes"`
	BW         float64 `json:"bw"`
	P1         int     `json:"p1"`
	P2         int     `json:"p2"`
	L1Bytes    int64   `json:"l1_bytes"`
	L2Bytes    int64   `json:"l2_bytes"`
	AreaMM2    float64 `json:"area_mm2"`
	PowerMW    float64 `json:"power_mw"`
	Runtime    int64   `json:"runtime_cycles"`
	Throughput float64 `json:"throughput_macs_per_cycle"`
	EnergyPJ   float64 `json:"energy_pj"`
	EDP        float64 `json:"edp"`
}

// DSEResponse is the body of a successful sweep.
type DSEResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`

	Raw      int64   `json:"raw_designs"`
	Explored int64   `json:"explored_designs"`
	Invoked  int64   `json:"model_invocations"`
	Pricings int64   `json:"model_pricings"`
	Valid    int64   `json:"valid_designs"`
	Micros   int64   `json:"elapsed_micros"`
	Rate     float64 `json:"designs_per_second"`

	ThroughputOpt *DSEPointJSON  `json:"throughput_opt,omitempty"`
	EnergyOpt     *DSEPointJSON  `json:"energy_opt,omitempty"`
	EDPOpt        *DSEPointJSON  `json:"edp_opt,omitempty"`
	Pareto        []DSEPointJSON `json:"pareto"`
}

// MaxDSEGrid bounds the raw sweep size one request may ask for; larger
// sweeps belong in the offline tool or in a sharded fleet run, whose
// coordinator splits the space until every shard fits under this cap.
const MaxDSEGrid = 1 << 20

// WithDefaults returns the request with every unset axis, grid, and
// budget filled with the /v1/dse defaults (the examples/dse workflow).
// buildSpace applies it before validation; the fleet coordinator
// applies it too, because sharding needs the concrete axes.
func (req DSERequest) WithDefaults() DSERequest {
	if len(req.P1) == 0 {
		req.P1 = []int{16, 64, 256}
	}
	if len(req.P2) == 0 {
		if req.Template == "YX-P" { // single-knob style: P2 is unused
			req.P2 = []int{1}
		} else {
			req.P2 = []int{8, 32}
		}
	}
	if len(req.PEs) == 0 {
		req.PEs = []int{64, 128, 256, 512}
	}
	if len(req.BWs) == 0 {
		req.BWs = []float64{8, 16, 32, 64}
	}
	if len(req.L1Grid) == 0 {
		req.L1Grid = dse.DefaultGrid(64, 1<<16, 2)
	}
	if len(req.L2Grid) == 0 {
		req.L2Grid = dse.DefaultGrid(1<<12, 1<<22, 2)
	}
	if req.AreaBudgetMM2 == 0 {
		req.AreaBudgetMM2 = 16
	}
	if req.PowerBudgetMW == 0 {
		req.PowerBudgetMW = 450
	}
	return req
}

// applyShard restricts the request's PE axis to the shard descriptor,
// validating the descriptor first: inverted PE ranges, unknown mapping
// names, and shards that select nothing are all the caller's fault.
func applyShard(req DSERequest) (DSERequest, error) {
	sh := req.Shard
	if sh.PEMin < 0 || sh.PEMax < 0 {
		return req, badRequestf("shard pe range [%d, %d] is negative", sh.PEMin, sh.PEMax)
	}
	if sh.PEMin > 0 && sh.PEMax > 0 && sh.PEMin > sh.PEMax {
		return req, badRequestf("shard pe range [%d, %d] is inverted", sh.PEMin, sh.PEMax)
	}
	if len(sh.Mappings) > 0 {
		found := false
		for _, m := range sh.Mappings {
			if _, err := dseTemplate(m); err != nil {
				return req, badRequestf("shard names unknown mapping %q (have KC-P, YR-P, YX-P)", m)
			}
			if m == req.Template {
				found = true
			}
		}
		if !found {
			return req, badRequestf("shard mappings %v exclude the sweep's template %q",
				sh.Mappings, req.Template)
		}
	}
	var pes []int
	for _, pe := range req.PEs {
		if sh.PEMin > 0 && pe < sh.PEMin {
			continue
		}
		if sh.PEMax > 0 && pe > sh.PEMax {
			continue
		}
		pes = append(pes, pe)
	}
	if len(pes) == 0 {
		return req, badRequestf("shard pe range [%d, %d] selects none of the swept PE counts %v",
			sh.PEMin, sh.PEMax, req.PEs)
	}
	req.PEs = pes
	return req, nil
}

// buildSpace validates a DSE request and assembles the search space,
// filling the defaults of the examples/dse workflow.
func buildSpace(req DSERequest) (dse.Space, error) {
	layer, err := resolveLayer(req.Layer)
	if err != nil {
		return dse.Space{}, err
	}
	tmpl, err := dseTemplate(req.Template)
	if err != nil {
		return dse.Space{}, err
	}
	req = req.WithDefaults()
	if req.Shard != nil {
		// The shard restriction applies before the raw-size cap: a fleet
		// shard of a huge sweep is admissible as long as the shard itself
		// fits.
		req, err = applyShard(req)
		if err != nil {
			return dse.Space{}, err
		}
	}
	tmpl.P1 = req.P1
	tmpl.P2 = req.P2
	sp := dse.Space{
		Layer:    layer,
		Template: tmpl,
		PEs:      req.PEs,
		BWs:      req.BWs,
		L1Grid:   req.L1Grid,
		L2Grid:   req.L2Grid,

		AreaBudgetMM2: req.AreaBudgetMM2,
		PowerBudgetMW: req.PowerBudgetMW,
		Cost:          hw.Default28nm(),
	}
	raw := int64(len(sp.PEs)) * int64(len(sp.BWs)) *
		int64(len(tmpl.P1)) * int64(len(tmpl.P2)) *
		int64(len(sp.L1Grid)) * int64(len(sp.L2Grid))
	if raw > MaxDSEGrid {
		return dse.Space{}, badRequestf("sweep spans %d raw designs, cap is %d", raw, MaxDSEGrid)
	}
	// The sweep runs as one pool job; its internal fan-out would
	// otherwise contend with the pool's own workers.
	sp.Workers = 2
	// Profiles are keyed by (dataflow, layer, PEs) only, so sweeps (and
	// analyze requests) that differ just in hardware knobs share them.
	sp.Profiles = core.DefaultProfileCache
	return sp, nil
}

// dseTemplate maps a style name to its parameterized builder.
func dseTemplate(name string) (dse.Template, error) {
	switch name {
	case "KC-P":
		return dse.Template{Name: name, Build: dseBuildKCP}, nil
	case "YR-P":
		return dse.Template{Name: name, Build: dseBuildYRP}, nil
	case "YX-P":
		return dse.Template{Name: name, Build: dseBuildYXP}, nil
	}
	return dse.Template{}, badRequestf("unknown dse template %q (have KC-P, YR-P, YX-P)", name)
}

func pointJSON(p dse.Point) *DSEPointJSON {
	return &DSEPointJSON{
		NumPEs: p.NumPEs, BW: p.BW, P1: p.P1, P2: p.P2,
		L1Bytes: p.L1Bytes, L2Bytes: p.L2Bytes,
		AreaMM2: p.AreaMM2, PowerMW: p.PowerMW,
		Runtime: p.Runtime, Throughput: p.Throughput,
		EnergyPJ: p.EnergyPJ, EDP: p.EDP,
	}
}

// runDSETraced runs the sweep inside ctx's span tree: the whole sweep
// is one "serve.compute" span, and dse.Explore hangs its own explore
// and per-mapping spans below it (with the request's baggage, so every
// worker span carries the request ID).
func (s *Server) runDSETraced(ctx context.Context, req DSERequest, sp dse.Space) *DSEResponse {
	start := time.Now()
	ctx, span := obs.Start(ctx, "serve.compute",
		obs.String("layer", sp.Layer.Name), obs.String("template", sp.Template.Name))
	sp.Ctx = ctx
	resp := runDSE(req, sp)
	span.SetAttr(obs.Int64("explored", resp.Explored))
	span.End()
	s.stageSeconds.With("compute").Observe(time.Since(start).Seconds())
	return resp
}

// runDSE executes the sweep and shapes the response.
func runDSE(req DSERequest, sp dse.Space) *DSEResponse {
	points, stats := dse.Explore(sp)
	resp := &DSEResponse{
		Raw:      stats.Raw,
		Explored: stats.Explored,
		Invoked:  stats.Invoked,
		Pricings: stats.Priced,
		Valid:    stats.Valid,
		Micros:   stats.Elapsed.Microseconds(),
		Rate:     stats.Rate(),
		Pareto:   []DSEPointJSON{},
	}
	if p, ok := dse.ThroughputOpt(points); ok {
		resp.ThroughputOpt = pointJSON(p)
	}
	if p, ok := dse.EnergyOpt(points); ok {
		resp.EnergyOpt = pointJSON(p)
	}
	if p, ok := dse.EDPOpt(points); ok {
		resp.EDPOpt = pointJSON(p)
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 32
	}
	for _, p := range dse.Pareto(points) {
		if len(resp.Pareto) >= topK {
			break
		}
		resp.Pareto = append(resp.Pareto, *pointJSON(p))
	}
	return resp
}
