package serve

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/obs"
)

// Template builders adapt the dataflows package's parameterized styles
// to the DSE's two-knob shape (YX-P has a single knob).
func dseBuildKCP(p1, p2 int) dataflow.Dataflow { return dataflows.KCPSized(p1, p2) }
func dseBuildYRP(p1, p2 int) dataflow.Dataflow { return dataflows.YRPSized(p1, p2) }
func dseBuildYXP(p1, _ int) dataflow.Dataflow  { return dataflows.YXPSized(p1) }

// DSERequest is the body of POST /v1/dse: a bounded design-space sweep
// for one layer under area/power budgets (the paper's Section 5.2
// workflow as a service call).
type DSERequest struct {
	Layer LayerSpec `json:"layer"`
	// Template is the dataflow style to sweep: KC-P, YR-P, or YX-P.
	Template string `json:"template"`
	// P1/P2 are the template's tile-size knobs (P2 ignored by YX-P).
	P1 []int `json:"p1,omitempty"`
	P2 []int `json:"p2,omitempty"`

	PEs    []int     `json:"pes,omitempty"`
	BWs    []float64 `json:"bws,omitempty"` // elements/cycle
	L1Grid []int64   `json:"l1_grid,omitempty"`
	L2Grid []int64   `json:"l2_grid,omitempty"`

	AreaBudgetMM2 float64 `json:"area_budget_mm2,omitempty"`
	PowerBudgetMW float64 `json:"power_budget_mw,omitempty"`

	// TopK caps the Pareto points returned (default 32).
	TopK      int  `json:"top_k,omitempty"`
	TimeoutMs int  `json:"timeout_ms,omitempty"`
	NoCache   bool `json:"no_cache,omitempty"`
}

// DSEPointJSON is one design point of the response.
type DSEPointJSON struct {
	NumPEs     int     `json:"num_pes"`
	BW         float64 `json:"bw"`
	P1         int     `json:"p1"`
	P2         int     `json:"p2"`
	L1Bytes    int64   `json:"l1_bytes"`
	L2Bytes    int64   `json:"l2_bytes"`
	AreaMM2    float64 `json:"area_mm2"`
	PowerMW    float64 `json:"power_mw"`
	Runtime    int64   `json:"runtime_cycles"`
	Throughput float64 `json:"throughput_macs_per_cycle"`
	EnergyPJ   float64 `json:"energy_pj"`
	EDP        float64 `json:"edp"`
}

// DSEResponse is the body of a successful sweep.
type DSEResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`

	Raw      int64   `json:"raw_designs"`
	Explored int64   `json:"explored_designs"`
	Invoked  int64   `json:"model_invocations"`
	Pricings int64   `json:"model_pricings"`
	Valid    int64   `json:"valid_designs"`
	Micros   int64   `json:"elapsed_micros"`
	Rate     float64 `json:"designs_per_second"`

	ThroughputOpt *DSEPointJSON  `json:"throughput_opt,omitempty"`
	EnergyOpt     *DSEPointJSON  `json:"energy_opt,omitempty"`
	EDPOpt        *DSEPointJSON  `json:"edp_opt,omitempty"`
	Pareto        []DSEPointJSON `json:"pareto"`
}

// maxDSEGrid bounds the raw sweep size one request may ask for; larger
// sweeps belong in the offline tool.
const maxDSEGrid = 1 << 20

// buildSpace validates a DSE request and assembles the search space,
// filling the defaults of the examples/dse workflow.
func buildSpace(req DSERequest) (dse.Space, error) {
	layer, err := resolveLayer(req.Layer)
	if err != nil {
		return dse.Space{}, err
	}
	tmpl, err := dseTemplate(req.Template)
	if err != nil {
		return dse.Space{}, err
	}
	tmpl.P1 = req.P1
	if len(tmpl.P1) == 0 {
		tmpl.P1 = []int{16, 64, 256}
	}
	tmpl.P2 = req.P2
	if len(tmpl.P2) == 0 {
		if req.Template == "YX-P" { // single-knob style: P2 is unused
			tmpl.P2 = []int{1}
		} else {
			tmpl.P2 = []int{8, 32}
		}
	}
	sp := dse.Space{
		Layer:    layer,
		Template: tmpl,
		PEs:      req.PEs,
		BWs:      req.BWs,
		L1Grid:   req.L1Grid,
		L2Grid:   req.L2Grid,

		AreaBudgetMM2: req.AreaBudgetMM2,
		PowerBudgetMW: req.PowerBudgetMW,
		Cost:          hw.Default28nm(),
	}
	if len(sp.PEs) == 0 {
		sp.PEs = []int{64, 128, 256, 512}
	}
	if len(sp.BWs) == 0 {
		sp.BWs = []float64{8, 16, 32, 64}
	}
	if len(sp.L1Grid) == 0 {
		sp.L1Grid = dse.DefaultGrid(64, 1<<16, 2)
	}
	if len(sp.L2Grid) == 0 {
		sp.L2Grid = dse.DefaultGrid(1<<12, 1<<22, 2)
	}
	if sp.AreaBudgetMM2 == 0 {
		sp.AreaBudgetMM2 = 16
	}
	if sp.PowerBudgetMW == 0 {
		sp.PowerBudgetMW = 450
	}
	raw := int64(len(sp.PEs)) * int64(len(sp.BWs)) *
		int64(len(tmpl.P1)) * int64(len(tmpl.P2)) *
		int64(len(sp.L1Grid)) * int64(len(sp.L2Grid))
	if raw > maxDSEGrid {
		return dse.Space{}, badRequestf("sweep spans %d raw designs, cap is %d", raw, maxDSEGrid)
	}
	// The sweep runs as one pool job; its internal fan-out would
	// otherwise contend with the pool's own workers.
	sp.Workers = 2
	// Profiles are keyed by (dataflow, layer, PEs) only, so sweeps (and
	// analyze requests) that differ just in hardware knobs share them.
	sp.Profiles = core.DefaultProfileCache
	return sp, nil
}

// dseTemplate maps a style name to its parameterized builder.
func dseTemplate(name string) (dse.Template, error) {
	switch name {
	case "KC-P":
		return dse.Template{Name: name, Build: dseBuildKCP}, nil
	case "YR-P":
		return dse.Template{Name: name, Build: dseBuildYRP}, nil
	case "YX-P":
		return dse.Template{Name: name, Build: dseBuildYXP}, nil
	}
	return dse.Template{}, badRequestf("unknown dse template %q (have KC-P, YR-P, YX-P)", name)
}

func pointJSON(p dse.Point) *DSEPointJSON {
	return &DSEPointJSON{
		NumPEs: p.NumPEs, BW: p.BW, P1: p.P1, P2: p.P2,
		L1Bytes: p.L1Bytes, L2Bytes: p.L2Bytes,
		AreaMM2: p.AreaMM2, PowerMW: p.PowerMW,
		Runtime: p.Runtime, Throughput: p.Throughput,
		EnergyPJ: p.EnergyPJ, EDP: p.EDP,
	}
}

// runDSETraced runs the sweep inside ctx's span tree: the whole sweep
// is one "serve.compute" span, and dse.Explore hangs its own explore
// and per-mapping spans below it (with the request's baggage, so every
// worker span carries the request ID).
func (s *Server) runDSETraced(ctx context.Context, req DSERequest, sp dse.Space) *DSEResponse {
	start := time.Now()
	ctx, span := obs.Start(ctx, "serve.compute",
		obs.String("layer", sp.Layer.Name), obs.String("template", sp.Template.Name))
	sp.Ctx = ctx
	resp := runDSE(req, sp)
	span.SetAttr(obs.Int64("explored", resp.Explored))
	span.End()
	s.stageSeconds.With("compute").Observe(time.Since(start).Seconds())
	return resp
}

// runDSE executes the sweep and shapes the response.
func runDSE(req DSERequest, sp dse.Space) *DSEResponse {
	points, stats := dse.Explore(sp)
	resp := &DSEResponse{
		Raw:      stats.Raw,
		Explored: stats.Explored,
		Invoked:  stats.Invoked,
		Pricings: stats.Priced,
		Valid:    stats.Valid,
		Micros:   stats.Elapsed.Microseconds(),
		Rate:     stats.Rate(),
		Pareto:   []DSEPointJSON{},
	}
	if p, ok := dse.ThroughputOpt(points); ok {
		resp.ThroughputOpt = pointJSON(p)
	}
	if p, ok := dse.EnergyOpt(points); ok {
		resp.EnergyOpt = pointJSON(p)
	}
	if p, ok := dse.EDPOpt(points); ok {
		resp.EDPOpt = pointJSON(p)
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 32
	}
	for _, p := range dse.Pareto(points) {
		if len(resp.Pareto) >= topK {
			break
		}
		resp.Pareto = append(resp.Pareto, *pointJSON(p))
	}
	return resp
}
