package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestChaosMiddlewareInjectsErrors: with ErrorRate 1 every /v1/*
// request is answered with the configured status and marker header,
// while health/metrics stay exempt.
func TestChaosMiddlewareInjectsErrors(t *testing.T) {
	s := New(Options{Workers: 1, Chaos: Chaos{
		ErrorRate: 1.0, ErrorCode: http.StatusServiceUnavailable, Seed: 1,
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want injected 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Maestro-Chaos") != "injected-error" {
		t.Fatal("injected error lacks the chaos marker header")
	}
	if got := s.chaosInjected.With("error").Value(); got != 1 {
		t.Fatalf("maestro_chaos_injected_total{kind=error} = %d, want 1", got)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d during chaos, want 200 (exempt)", path, resp.StatusCode)
		}
	}
}

// TestChaosMiddlewareLatency: injected latency delays /v1/* requests
// and is counted.
func TestChaosMiddlewareLatency(t *testing.T) {
	s := New(Options{Workers: 1, Chaos: Chaos{
		Latency: 30 * time.Millisecond, Seed: 1,
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("request took %v, want >= 30ms injected latency", elapsed)
	}
	if got := s.chaosInjected.With("latency").Value(); got != 1 {
		t.Fatalf("maestro_chaos_injected_total{kind=latency} = %d, want 1", got)
	}
}

// TestSetChaosRuntime: injection can be enabled and disabled while the
// server runs (the soak harness phases rely on this).
func TestSetChaosRuntime(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() int {
		resp, err := http.Get(ts.URL + "/v1/models")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("pre-chaos status = %d", got)
	}
	s.SetChaos(Chaos{ErrorRate: 1.0, Seed: 9})
	if got := get(); got != http.StatusInternalServerError {
		t.Fatalf("chaos status = %d, want default 500", got)
	}
	s.SetChaos(Chaos{})
	if got := get(); got != http.StatusOK {
		t.Fatalf("post-chaos status = %d", got)
	}
}
