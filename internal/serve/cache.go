package serve

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
)

// Key identifies one canonical analysis request (SHA-256 of the
// canonical encoding, see canonical.go).
type Key [32]byte

// String returns the hex form served back to clients.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

const cacheShards = 16

// Cache is a sharded LRU result cache with a singleflight layer:
// concurrent requests for the same key compute once and share the
// result. Values are immutable once stored (handlers copy before
// mutating per-delivery fields).
type Cache struct {
	shards [cacheShards]*shard

	hits      atomic.Int64 // served from the LRU
	misses    atomic.Int64 // computed fresh
	coalesced atomic.Int64 // joined an in-flight computation
	evictions atomic.Int64
}

type shard struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[Key]*list.Element
	inflight map[Key]*call
}

type lruEntry struct {
	key Key
	val any
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache builds a cache holding up to capacity entries across its
// shards. A non-positive capacity disables storage (every request
// computes; singleflight still coalesces concurrent duplicates).
func NewCache(capacity int) *Cache {
	c := &Cache{}
	per := capacity / cacheShards
	if capacity > 0 && per == 0 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: per,
			order:    list.New(),
			items:    map[Key]*list.Element{},
			inflight: map[Key]*call{},
		}
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard { return c.shards[k[0]%cacheShards] }

// Get returns the cached value for k, counting a hit when present. A
// miss is not counted here — Do owns miss accounting — so handlers can
// probe for the fast path without skewing the ratio.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry).val, true
	}
	return nil, false
}

// Do returns the value for k, computing it with fn at most once across
// concurrent callers. The second return reports whether the value came
// from the cache (LRU hit); callers that joined an in-flight
// computation report false. Errors are not cached.
func (c *Cache) Do(k Key, fn func() (any, error)) (val any, cached bool, err error) {
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*lruEntry).val, true, nil
	}
	if cl, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		<-cl.done
		return cl.val, false, cl.err
	}
	cl := &call{done: make(chan struct{})}
	s.inflight[k] = cl
	s.mu.Unlock()
	c.misses.Add(1)

	finished := false
	defer func() {
		if !finished { // fn panicked: release waiters before unwinding
			cl.err = fmt.Errorf("serve: cache compute panicked")
			c.finish(s, k, cl, false)
		}
	}()
	cl.val, cl.err = fn()
	finished = true
	c.finish(s, k, cl, cl.err == nil)
	return cl.val, false, cl.err
}

// finish publishes a completed computation: removes the in-flight
// marker, stores successful results in the LRU, and wakes waiters.
func (c *Cache) finish(s *shard, k Key, cl *call, store bool) {
	s.mu.Lock()
	delete(s.inflight, k)
	if store && s.capacity > 0 {
		s.items[k] = s.order.PushFront(&lruEntry{key: k, val: cl.val})
		for s.order.Len() > s.capacity {
			last := s.order.Back()
			s.order.Remove(last)
			delete(s.items, last.Value.(*lruEntry).key)
			c.evictions.Add(1)
		}
	}
	s.mu.Unlock()
	close(cl.done)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Hits, Misses, Coalesced and Evictions expose the cache counters.
func (c *Cache) Hits() int64      { return c.hits.Load() }
func (c *Cache) Misses() int64    { return c.misses.Load() }
func (c *Cache) Coalesced() int64 { return c.coalesced.Load() }
func (c *Cache) Evictions() int64 { return c.evictions.Load() }
