package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// TestHealthzDrainWindow pins the readiness/liveness split: /healthz
// answers 200 until graceful drain begins, then 503 with a Retry-After
// hint for the rest of the process's life, while /v1/status keeps
// answering 200 (the node is alive, just not accepting new work) and
// reports draining=true.
func TestHealthzDrainWindow(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Ready: readiness and liveness both answer 200.
	resp := get("/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready /healthz = %d, want 200", resp.StatusCode)
	}
	resp = get("/v1/status")
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Draining {
		t.Fatalf("ready /v1/status = %d draining=%v, want 200/false", resp.StatusCode, st.Draining)
	}

	// The drain window: readiness flips, liveness holds.
	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	resp = get("/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("draining /healthz Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	resp = get("/v1/status")
	st = StatusResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !st.Draining {
		t.Fatalf("draining /v1/status = %d draining=%v, want 200/true", resp.StatusCode, st.Draining)
	}

	// BeginDrain is idempotent and one-way.
	s.BeginDrain()
	resp = get("/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second-drain /healthz = %d, want 503", resp.StatusCode)
	}
}
