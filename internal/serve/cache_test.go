package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func keyOf(n int) Key {
	var k Key
	// Spread across shards: shardFor uses k[0].
	k[0] = byte(n)
	k[1] = byte(n >> 8)
	k[2] = byte(n >> 16)
	return k
}

func TestCacheDoStoresAndHits(t *testing.T) {
	c := NewCache(64)
	var computes atomic.Int64
	fn := func() (any, error) {
		computes.Add(1)
		return "value", nil
	}
	v, cached, err := c.Do(keyOf(1), fn)
	if err != nil || cached || v != "value" {
		t.Fatalf("first Do = (%v, %v, %v)", v, cached, err)
	}
	v, cached, err = c.Do(keyOf(1), fn)
	if err != nil || !cached || v != "value" {
		t.Fatalf("second Do = (%v, %v, %v); want cached", v, cached, err)
	}
	if computes.Load() != 1 {
		t.Errorf("computed %d times; want 1", computes.Load())
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d; want 1/1", c.Hits(), c.Misses())
	}
	if v, ok := c.Get(keyOf(1)); !ok || v != "value" {
		t.Errorf("Get = (%v, %v)", v, ok)
	}
	if c.Hits() != 2 {
		t.Errorf("Get did not count a hit")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(64)
	var computes atomic.Int64
	gate := make(chan struct{})
	const waiters = 8

	var wg sync.WaitGroup
	results := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, cached, err := c.Do(keyOf(7), func() (any, error) {
				computes.Add(1)
				<-gate // hold every concurrent caller on one computation
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("waiter %d: (%v, %v)", i, v, err)
			}
			results[i] = cached
		}(i)
	}
	// Let the goroutines pile onto the in-flight call, then open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for c.Coalesced() < waiters-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if computes.Load() != 1 {
		t.Errorf("computed %d times under contention; want 1", computes.Load())
	}
	for i, cached := range results {
		if cached {
			t.Errorf("waiter %d reported cached=true; joiners must report false", i)
		}
	}
	if c.Coalesced() != waiters-1 || c.Misses() != 1 {
		t.Errorf("coalesced=%d misses=%d; want %d/1", c.Coalesced(), c.Misses(), waiters-1)
	}
}

func TestCacheErrorsNotStored(t *testing.T) {
	c := NewCache(64)
	boom := errors.New("boom")
	calls := 0
	fn := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := c.Do(keyOf(3), fn); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v; want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: len=%d", c.Len())
	}
	v, cached, err := c.Do(keyOf(3), fn)
	if err != nil || cached || v != "ok" {
		t.Fatalf("retry after error = (%v, %v, %v)", v, cached, err)
	}
}

func TestCachePanicReleasesWaiters(t *testing.T) {
	c := NewCache(64)
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("panic did not propagate")
			}
		}()
		c.Do(keyOf(9), func() (any, error) { panic("kaboom") }) //nolint:errcheck
	}()
	// The in-flight marker must be gone: a fresh Do computes normally.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.Do(keyOf(9), func() (any, error) { return "recovered", nil })
		if err != nil || v != "recovered" {
			t.Errorf("Do after panic = (%v, %v)", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Do after panic deadlocked on a stale in-flight entry")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity 16 over 16 shards = one entry per shard; two distinct
	// keys forced into the same shard must evict the older one.
	c := NewCache(16)
	var same1, same2 Key
	same1[0], same2[0] = 5, 5 // same shard (shardFor uses k[0])
	same2[1] = 1              // distinct key
	fn := func(v string) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	c.Do(same1, fn("a")) //nolint:errcheck
	c.Do(same2, fn("b")) //nolint:errcheck
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d; want 1 (per-shard capacity 1)", c.Evictions())
	}
	if _, ok := c.Get(same1); ok {
		t.Errorf("LRU entry survived eviction")
	}
	if v, ok := c.Get(same2); !ok || v != "b" {
		t.Errorf("most recent entry missing: (%v, %v)", v, ok)
	}
}

func TestCacheDisabledStillCoalesces(t *testing.T) {
	c := NewCache(0)
	var computes atomic.Int64
	fn := func() (any, error) {
		computes.Add(1)
		return 1, nil
	}
	c.Do(keyOf(2), fn) //nolint:errcheck
	c.Do(keyOf(2), fn) //nolint:errcheck
	if computes.Load() != 2 {
		t.Errorf("disabled cache computed %d times; want 2", computes.Load())
	}
	if c.Len() != 0 {
		t.Errorf("disabled cache stored %d entries", c.Len())
	}
}

func TestPoolBackpressureAndClose(t *testing.T) {
	p := NewPool(1, 1)
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-gate }); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	if err := p.Submit(func() {}); err != nil {
		t.Fatalf("queue slot: %v", err)
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("over-queue Submit = %v; want ErrQueueFull", err)
	}
	if p.Running() != 1 || p.QueueDepth() != 1 {
		t.Errorf("running=%d depth=%d; want 1/1", p.Running(), p.QueueDepth())
	}

	// Close drains: it must block while a job is still running, then
	// return once the gate opens and the queue empties.
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
		t.Fatalf("Close returned with a job still blocked")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Close never drained")
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Submit after Close = %v; want ErrPoolClosed", err)
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Ops.")
	c.Add(3)
	g := r.NewGauge("test_depth", "Depth.")
	g.Set(-2)
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := r.NewCounterVec("test_responses_total", "Responses.", "code")
	v.With("500").Inc()
	v.With("200").Add(2)
	r.NewGaugeFunc("test_live", "Live.", func() int64 { return 7 })

	out := r.Render()
	for _, want := range []string{
		"# HELP test_ops_total Ops.",
		"# TYPE test_ops_total counter",
		"test_ops_total 3",
		"# TYPE test_depth gauge",
		"test_depth -2",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.55",
		"test_latency_seconds_count 3",
		`test_responses_total{code="200"} 2`,
		`test_responses_total{code="500"} 1`,
		"test_live 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// Label children render sorted, so scrapes are deterministic.
	if strings.Index(out, `code="200"`) > strings.Index(out, `code="500"`) {
		t.Errorf("counter vec labels not sorted:\n%s", out)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v; want %v", i, got[i], want[i])
		}
	}
}

// TestCanonicalKeyProperties pins the key semantics documented in
// canonical.go: spelling-insensitive for the dataflow, sensitive to
// every model-relevant field, insensitive to presentation-only names.
func TestCanonicalKeyProperties(t *testing.T) {
	base := AnalyzeRequest{
		Layer:    LayerSpec{Name: "l", K: 64, C: 32, Y: 28, X: 28, R: 3, S: 3},
		Dataflow: DataflowSpec{Name: "KC-P"},
		HW:       HWSpec{Preset: "Accel256"},
	}
	keyFor := func(req AnalyzeRequest) Key {
		r, err := resolveRequest(req)
		if err != nil {
			t.Fatalf("resolve: %v", err)
		}
		return canonicalKey(r)
	}
	k0 := keyFor(base)

	whitespace := base
	whitespace.Dataflow = DataflowSpec{Name: "KC-P", DSL: "  " + strings.ReplaceAll(dfSource(t, "KC-P"), ";", " ;\n")}
	if keyFor(whitespace) != k0 {
		t.Errorf("whitespace spelling changed the key")
	}

	diffLayer := base
	diffLayer.Layer.K = 128
	if keyFor(diffLayer) == k0 {
		t.Errorf("layer change did not change the key")
	}

	diffHW := base
	diffHW.HW.NumPEs = 128
	if keyFor(diffHW) == k0 {
		t.Errorf("hardware change did not change the key")
	}

	diffDF := base
	diffDF.Dataflow = DataflowSpec{Name: "YX-P"}
	if keyFor(diffDF) == k0 {
		t.Errorf("dataflow change did not change the key")
	}
}

func dfSource(t *testing.T, name string) string {
	t.Helper()
	r, err := resolveRequest(AnalyzeRequest{
		Layer:    LayerSpec{Name: "l", K: 8, C: 8, Y: 8, X: 8, R: 3, S: 3},
		Dataflow: DataflowSpec{Name: name},
		HW:       HWSpec{Preset: "Accel256"},
	})
	if err != nil {
		t.Fatalf("resolve %s: %v", name, err)
	}
	return r.df.String()
}

func TestKeyString(t *testing.T) {
	k := keyOf(0xAB)
	s := k.String()
	if len(s) != 64 || !strings.HasPrefix(s, fmt.Sprintf("%02x", k[0])) {
		t.Errorf("Key.String() = %q", s)
	}
}
