package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflows"
)

// newTestServer builds a Server behind an httptest front end; both are
// torn down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

func analyze(t *testing.T, url string, req AnalyzeRequest) (int, AnalyzeResponse, []byte) {
	t.Helper()
	code, data := post(t, url+"/v1/analyze", marshal(t, req))
	var out AnalyzeResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("unmarshal response: %v\n%s", err, data)
		}
	}
	return code, out, data
}

// zooReq is the acceptance-criterion request: a model-zoo layer with a
// Table 3 dataflow on a preset accelerator.
func zooReq() AnalyzeRequest {
	return AnalyzeRequest{
		Layer:    LayerSpec{Model: "VGG16", Name: "CONV1"},
		Dataflow: DataflowSpec{Name: "KC-P"},
		HW:       HWSpec{Preset: "Accel256"},
	}
}

// inlineReq builds a small distinct inline-layer request.
func inlineReq(name string, k int) AnalyzeRequest {
	return AnalyzeRequest{
		Layer:    LayerSpec{Name: name, K: k, C: 16, Y: 16, X: 16, R: 3, S: 3},
		Dataflow: DataflowSpec{Name: "KC-P"},
		HW:       HWSpec{Preset: "Accel256"},
	}
}

func metricValue(t *testing.T, url, metric string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(data), "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, metric+" %d", &v); n == 1 && strings.HasPrefix(line, metric+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", metric, data)
	return 0
}

func TestAnalyzeAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	code, first, data := analyze(t, ts.URL, zooReq())
	if code != http.StatusOK {
		t.Fatalf("first analyze: status %d: %s", code, data)
	}
	if first.Cached {
		t.Errorf("first request reported cached")
	}
	if first.Layer != "CONV1" || first.Dataflow != "KC-P" || first.HW != "Accel-256" {
		t.Errorf("echoed identity = %q/%q/%q", first.Layer, first.Dataflow, first.HW)
	}
	if first.Runtime <= 0 || first.MACs <= 0 || first.UsedPEs <= 0 {
		t.Errorf("implausible result: runtime=%d macs=%d pes=%d",
			first.Runtime, first.MACs, first.UsedPEs)
	}
	if first.Utilization <= 0 || first.Utilization > 1 {
		t.Errorf("utilization %v out of (0,1]", first.Utilization)
	}
	if first.Energy.Total <= 0 {
		t.Errorf("energy total %v", first.Energy.Total)
	}
	if len(first.Key) != 64 {
		t.Errorf("key %q is not 64 hex chars", first.Key)
	}

	if hits := metricValue(t, ts.URL, "maestro_cache_hits_total"); hits != 0 {
		t.Errorf("hits before repeat = %d; want 0", hits)
	}

	code, second, data := analyze(t, ts.URL, zooReq())
	if code != http.StatusOK {
		t.Fatalf("second analyze: status %d: %s", code, data)
	}
	if !second.Cached {
		t.Errorf("identical repeat not served from cache")
	}
	if second.Key != first.Key || second.Runtime != first.Runtime {
		t.Errorf("cached result differs: key %q vs %q, runtime %d vs %d",
			second.Key, first.Key, second.Runtime, first.Runtime)
	}

	if hits := metricValue(t, ts.URL, "maestro_cache_hits_total"); hits != 1 {
		t.Errorf("hits after repeat = %d; want 1", hits)
	}
	if misses := metricValue(t, ts.URL, "maestro_cache_misses_total"); misses != 1 {
		t.Errorf("misses = %d; want 1", misses)
	}
	if evals := metricValue(t, ts.URL, "maestro_evaluations_total"); evals != 1 {
		t.Errorf("evaluations = %d; want 1", evals)
	}
}

// TestAnalyzeCanonicalSpellings: the same mapping spelled as a library
// name and as its DSL source must hash to the same key, so the second
// spelling is a cache hit.
func TestAnalyzeCanonicalSpellings(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	byName := zooReq()
	code, r1, data := analyze(t, ts.URL, byName)
	if code != http.StatusOK {
		t.Fatalf("by-name analyze: status %d: %s", code, data)
	}

	byDSL := byName
	byDSL.Dataflow = DataflowSpec{Name: "KC-P", DSL: dataflows.Sources["KC-P"]}
	code, r2, data := analyze(t, ts.URL, byDSL)
	if code != http.StatusOK {
		t.Fatalf("by-DSL analyze: status %d: %s", code, data)
	}
	if r2.Key != r1.Key {
		t.Errorf("DSL spelling hashed differently: %q vs %q", r2.Key, r1.Key)
	}
	if !r2.Cached {
		t.Errorf("DSL spelling of cached mapping missed the cache")
	}

	other := byName
	other.Dataflow = DataflowSpec{Name: "X-P"}
	code, r3, data := analyze(t, ts.URL, other)
	if code != http.StatusOK {
		t.Fatalf("X-P analyze: status %d: %s", code, data)
	}
	if r3.Key == r1.Key {
		t.Errorf("distinct dataflows share key %q", r3.Key)
	}
}

func TestAnalyzeNoCache(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})

	req := zooReq()
	if code, _, data := analyze(t, ts.URL, req); code != http.StatusOK {
		t.Fatalf("prime: status %d: %s", code, data)
	}
	req.NoCache = true
	code, resp, data := analyze(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("no_cache analyze: status %d: %s", code, data)
	}
	if resp.Cached {
		t.Errorf("no_cache request reported cached")
	}
	if got := s.evaluations.Value(); got != 2 {
		t.Errorf("evaluations = %d; want 2 (no_cache must recompute)", got)
	}
}

func TestAnalyzeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	mutate := func(f func(*AnalyzeRequest)) string {
		req := zooReq()
		f(&req)
		return marshal(t, req)
	}
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"layer":`},
		{"unknown field", `{"layour":{}}`},
		{"unknown model", mutate(func(r *AnalyzeRequest) { r.Layer.Model = "LeNet" })},
		{"unknown layer", mutate(func(r *AnalyzeRequest) { r.Layer.Name = "CONV99" })},
		{"unknown dataflow", mutate(func(r *AnalyzeRequest) { r.Dataflow.Name = "Z-P" })},
		{"bad dsl", mutate(func(r *AnalyzeRequest) { r.Dataflow = DataflowSpec{DSL: "Frobnicate(3,3) K;"} })},
		{"unknown preset", mutate(func(r *AnalyzeRequest) { r.HW.Preset = "TPUv9" })},
		{"hw underspecified", mutate(func(r *AnalyzeRequest) { r.HW = HWSpec{} })},
		{"inline layer zero-sized", mutate(func(r *AnalyzeRequest) {
			r.Layer = LayerSpec{Name: "bad", K: -4, C: 16, Y: 8, X: 8, R: 3, S: 3}
		})},
		// Resolve-time validation: a cluster wider than the PE array is
		// the model's typed ErrInvalid, surfaced through the pool.
		{"cluster exceeds pes", mutate(func(r *AnalyzeRequest) {
			r.Dataflow = DataflowSpec{DSL: "SpatialMap(1,1) K; Cluster(512, P); SpatialMap(1,1) C;"}
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, data := post(t, ts.URL+"/v1/analyze", tc.body)
			if code != http.StatusBadRequest {
				t.Errorf("status = %d; want 400: %s", code, data)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Errorf("error body missing: %s", data)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatalf("GET /v1/analyze: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d; want 405", resp.StatusCode)
	}
}

func TestBatchPreservesOrder(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})

	var batch BatchRequest
	for i := 0; i < 4; i++ {
		batch.Requests = append(batch.Requests, inlineReq(fmt.Sprintf("layer-%d", i), 8<<i))
	}
	bad := zooReq()
	bad.Layer.Model = "NoSuchNet"
	batch.Requests = append(batch.Requests, bad)

	code, data := post(t, ts.URL+"/v1/analyze/batch", marshal(t, batch))
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, data)
	}
	var resp BatchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(resp.Results) != len(batch.Requests) {
		t.Fatalf("got %d results; want %d", len(resp.Results), len(batch.Requests))
	}
	for i := 0; i < 4; i++ {
		it := resp.Results[i]
		if it.Index != i {
			t.Errorf("result %d has index %d", i, it.Index)
		}
		if it.Error != "" || it.Result == nil {
			t.Errorf("result %d failed: %q", i, it.Error)
			continue
		}
		if want := fmt.Sprintf("layer-%d", i); it.Result.Layer != want {
			t.Errorf("result %d is layer %q; want %q (order not preserved)", i, it.Result.Layer, want)
		}
	}
	last := resp.Results[4]
	if last.Error == "" || last.Result != nil {
		t.Errorf("invalid item should fail item-level, got error=%q result=%v", last.Error, last.Result)
	}
}

// hwVariantReq is zooReq with one NoC knob changed: same layer,
// dataflow, and PE count — so the items share one hardware-independent
// profile — but a different priced result.
func hwVariantReq(bw float64) AnalyzeRequest {
	req := zooReq()
	req.HW.NoCs = []NoCSpec{{Kind: "bus", Bandwidth: bw}}
	return req
}

// TestBatchProfileGrouping checks the grouped batch path end to end:
// items sharing a (dataflow, layer, PE count) profile are priced
// together in one PriceBatch walk, land at their own indexes with
// per-variant results, warm the result cache under their own keys, and
// count one evaluation each.
func TestBatchProfileGrouping(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	bws := []float64{4, 8, 16, 64}
	var batch BatchRequest
	for _, bw := range bws {
		batch.Requests = append(batch.Requests, hwVariantReq(bw))
	}
	batch.Requests = append(batch.Requests, inlineReq("solo", 32)) // singleton group
	bad := zooReq()
	bad.Layer.Model = "NoSuchNet"
	batch.Requests = append(batch.Requests, bad) // fails resolution

	code, data := post(t, ts.URL+"/v1/analyze/batch", marshal(t, batch))
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, data)
	}
	var resp BatchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(resp.Results) != len(batch.Requests) {
		t.Fatalf("got %d results; want %d", len(resp.Results), len(batch.Requests))
	}
	for i := 0; i < 5; i++ {
		it := resp.Results[i]
		if it.Index != i || it.Error != "" || it.Result == nil {
			t.Fatalf("item %d: index=%d error=%q result=%v", i, it.Index, it.Error, it.Result)
		}
		if it.Result.Cached {
			t.Errorf("item %d: first delivery marked cached", i)
		}
	}
	if last := resp.Results[5]; last.Error == "" || last.Result != nil {
		t.Errorf("unresolvable item should fail item-level: error=%q result=%v", last.Error, last.Result)
	}
	// A wider pipe must not be slower, and the variants must actually
	// differ — grouping must not collapse them onto one lane's result.
	for i := 1; i < len(bws); i++ {
		prev, cur := resp.Results[i-1].Result, resp.Results[i].Result
		if cur.Runtime > prev.Runtime {
			t.Errorf("runtime increased with bandwidth: bw=%g→%d, bw=%g→%d",
				bws[i-1], prev.Runtime, bws[i], cur.Runtime)
		}
	}
	if resp.Results[0].Result.Runtime == resp.Results[3].Result.Runtime {
		t.Error("4 vs 64 elem/cy produced identical runtime; lanes likely collapsed")
	}
	// Each grouped item must be bit-identical to an individually computed
	// analysis of the same request (NoCache forces a fresh compute).
	for i, bw := range bws {
		req := hwVariantReq(bw)
		req.NoCache = true
		code, single, body := analyze(t, ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("individual analyze bw=%g: status %d: %s", bw, code, body)
		}
		got := *resp.Results[i].Result
		// Per-delivery fields differ by construction.
		single.Cached, got.Cached = false, false
		single.ComputeMicros, got.ComputeMicros = 0, 0
		if single != got {
			t.Errorf("item %d (bw=%g) diverges from individual analysis\nbatch:  %+v\nsingle: %+v",
				i, bw, got, single)
		}
	}
	// 4 grouped + 1 singleton evaluations for the batch, then 4 NoCache
	// singles above.
	if n := metricValue(t, ts.URL, "maestro_evaluations_total"); n != 9 {
		t.Errorf("evaluations = %d, want 9 (5 batch + 4 nocache singles)", n)
	}

	// Re-running the original batch must ride the result cache: grouped
	// items hit under their own canonical keys.
	code, data = post(t, ts.URL+"/v1/analyze/batch", marshal(t, batch))
	if code != http.StatusOK {
		t.Fatalf("second batch: status %d: %s", code, data)
	}
	var resp2 BatchResponse
	if err := json.Unmarshal(data, &resp2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i := 0; i < 5; i++ {
		if it := resp2.Results[i]; it.Result == nil || !it.Result.Cached {
			t.Errorf("second batch item %d not served from cache", i)
		}
	}
	if n := metricValue(t, ts.URL, "maestro_evaluations_total"); n != 9 {
		t.Errorf("evaluations after cached batch = %d, want still 9", n)
	}
}

// TestBatchGroupPartialCacheHit warms one member of a profile group
// individually, then sends the whole group: the warm member must arrive
// cached, the cold ones computed, with only the misses evaluated.
func TestBatchGroupPartialCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	warm := hwVariantReq(8)
	if code, _, body := analyze(t, ts.URL, warm); code != http.StatusOK {
		t.Fatalf("warmup: status %d: %s", code, body)
	}
	var batch BatchRequest
	for _, bw := range []float64{4, 8, 16} {
		batch.Requests = append(batch.Requests, hwVariantReq(bw))
	}
	code, data := post(t, ts.URL+"/v1/analyze/batch", marshal(t, batch))
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, data)
	}
	var resp BatchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i, wantCached := range []bool{false, true, false} {
		it := resp.Results[i]
		if it.Error != "" || it.Result == nil {
			t.Fatalf("item %d failed: %q", i, it.Error)
		}
		if it.Result.Cached != wantCached {
			t.Errorf("item %d cached = %v, want %v", i, it.Result.Cached, wantCached)
		}
	}
	if n := metricValue(t, ts.URL, "maestro_evaluations_total"); n != 3 {
		t.Errorf("evaluations = %d, want 3 (1 warmup + 2 group misses)", n)
	}
}

func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxBatch: 2})

	if code, data := post(t, ts.URL+"/v1/analyze/batch", `{"requests":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d; want 400: %s", code, data)
	}
	var batch BatchRequest
	for i := 0; i < 3; i++ {
		batch.Requests = append(batch.Requests, zooReq())
	}
	if code, data := post(t, ts.URL+"/v1/analyze/batch", marshal(t, batch)); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d; want 400: %s", code, data)
	}
}

// blockWorkers occupies every worker of s with jobs that hold until the
// returned release func is called.
func blockWorkers(t *testing.T, s *Server, n int) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	for i := 0; i < n; i++ {
		started := make(chan struct{})
		if err := s.pool.Submit(func() { close(started); <-ch }); err != nil {
			t.Fatalf("submit blocker %d: %v", i, err)
		}
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatalf("blocker %d never started", i)
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	release := blockWorkers(t, s, 1)
	defer release()

	// Fill the single queue slot so the next submission fails fast.
	if err := s.pool.Submit(func() {}); err != nil {
		t.Fatalf("fill queue: %v", err)
	}

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(marshal(t, zooReq())))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d; want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	if got := s.rejected.Value(); got != 1 {
		t.Errorf("rejected counter = %d; want 1", got)
	}

	// Draining the queue restores service (retry while the no-op job
	// still occupies the single queue slot).
	release()
	code := 0
	var body []byte
	for i := 0; i < 50; i++ {
		code, _, body = analyze(t, ts.URL, zooReq())
		if code != http.StatusTooManyRequests {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code != http.StatusOK {
		t.Errorf("after drain: status %d: %s", code, body)
	}
}

func TestTimeout504(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})
	release := blockWorkers(t, s, 1)
	defer release()

	req := zooReq()
	req.TimeoutMs = 40
	code, _, data := analyze(t, ts.URL, req)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d; want 504: %s", code, data)
	}
	if got := s.timeouts.Value(); got != 1 {
		t.Errorf("timeouts counter = %d; want 1", got)
	}
}

func TestClosedPool503(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()

	code, data := post(t, ts.URL+"/v1/analyze", marshal(t, zooReq()))
	if code != http.StatusServiceUnavailable {
		t.Errorf("status = %d; want 503: %s", code, data)
	}
}

func TestHealthzModelsMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatalf("GET /v1/models: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var models ModelsResponse
	if err := json.Unmarshal(data, &models); err != nil {
		t.Fatalf("unmarshal models: %v", err)
	}
	if len(models.Models) < 8 {
		t.Errorf("zoo lists %d models; want >= 8", len(models.Models))
	}
	found := false
	for _, m := range models.Models {
		if m.Name == "VGG16" {
			found = len(m.Layers) == 16 && m.MACs > 0
		}
	}
	if !found {
		t.Errorf("VGG16 missing or malformed in %s", data)
	}
	if len(models.Dataflows) != 5 || len(models.Presets) != 3 {
		t.Errorf("dataflows=%v presets=%v", models.Dataflows, models.Presets)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, fam := range []string{
		"maestro_requests_total", "maestro_evaluations_total",
		"maestro_cache_hits_total", "maestro_queue_depth",
		"maestro_request_seconds_bucket", "maestro_request_seconds_count",
	} {
		if !strings.Contains(string(text), fam) {
			t.Errorf("metrics output missing %s", fam)
		}
	}
}

func TestDSEEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	req := DSERequest{
		Layer:    LayerSpec{Name: "tiny", K: 32, C: 16, Y: 18, X: 18, R: 3, S: 3},
		Template: "KC-P",
		P1:       []int{8},
		P2:       []int{4},
		PEs:      []int{64},
		BWs:      []float64{16},
		L1Grid:   []int64{1 << 12},
		L2Grid:   []int64{1 << 20},
	}
	code, data := post(t, ts.URL+"/v1/dse", marshal(t, req))
	if code != http.StatusOK {
		t.Fatalf("dse: status %d: %s", code, data)
	}
	var resp DSEResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Raw != 1 || resp.Cached {
		t.Errorf("raw=%d cached=%v; want 1 uncached design", resp.Raw, resp.Cached)
	}

	code, data = post(t, ts.URL+"/v1/dse", marshal(t, req))
	if code != http.StatusOK {
		t.Fatalf("dse repeat: status %d: %s", code, data)
	}
	var again DSEResponse
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatalf("unmarshal repeat: %v", err)
	}
	if !again.Cached || again.Key != resp.Key {
		t.Errorf("repeat sweep cached=%v key match=%v", again.Cached, again.Key == resp.Key)
	}

	// A sweep over the raw-design cap is refused up front.
	wide := make([]int, 64)
	for i := range wide {
		wide[i] = i + 1
	}
	huge := req
	huge.P1, huge.P2, huge.PEs = wide, wide, wide
	huge.BWs = make([]float64, 64)
	for i := range huge.BWs {
		huge.BWs[i] = float64(i + 1)
	}
	if code, data := post(t, ts.URL+"/v1/dse", marshal(t, huge)); code != http.StatusBadRequest {
		t.Errorf("oversized sweep: status %d; want 400: %s", code, data)
	}
	if code, data := post(t, ts.URL+"/v1/dse", `{"template":"BAD-P"}`); code != http.StatusBadRequest {
		t.Errorf("unknown template: status %d; want 400: %s", code, data)
	}
}

// TestConcurrentCacheHammer drives identical and distinct requests from
// many goroutines; the singleflight cache must evaluate each distinct
// request exactly once. Run with -race.
func TestConcurrentCacheHammer(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 256})

	reqs := make([]string, 4)
	for i := range reqs {
		reqs[i] = marshal(t, inlineReq(fmt.Sprintf("hammer-%d", i), 8<<i))
	}
	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
					strings.NewReader(reqs[(g+i)%len(reqs)]))
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d iter %d: status %d: %s", g, i, resp.StatusCode, data)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	distinct := int64(len(reqs))
	if got := s.cache.Misses(); got != distinct {
		t.Errorf("misses = %d; want %d (one per distinct request)", got, distinct)
	}
	if got := s.evaluations.Value(); got != distinct {
		t.Errorf("evaluations = %d; want %d", got, distinct)
	}
	total := int64(goroutines * iters)
	served := s.cache.Hits() + s.cache.Coalesced() + s.cache.Misses()
	if served != total {
		t.Errorf("hits+coalesced+misses = %d; want %d", served, total)
	}
}
