package serve

import (
	"context"
	"fmt"
	"testing"
)

// Benchmarks compare the service's cached and uncached analyze paths.
// Record results in BENCH_serve.json at the repo root:
//
//	go test -run xxx -bench BenchmarkAnalyze ./internal/serve

func benchServer(b *testing.B) *Server {
	b.Helper()
	s := New(Options{Workers: 4, QueueDepth: 1024})
	b.Cleanup(s.Close)
	return s
}

func benchReq(noCache bool) AnalyzeRequest {
	return AnalyzeRequest{
		Layer:    LayerSpec{Model: "VGG16", Name: "CONV3"},
		Dataflow: DataflowSpec{Name: "KC-P"},
		HW:       HWSpec{Preset: "Accel256"},
		NoCache:  noCache,
	}
}

// BenchmarkAnalyzeCached measures steady-state throughput when every
// request hits the canonical result cache (resolve + hash + LRU probe).
func BenchmarkAnalyzeCached(b *testing.B) {
	s := benchServer(b)
	ctx := context.Background()
	if _, err := s.analyzeOne(ctx, benchReq(false)); err != nil {
		b.Fatalf("prime: %v", err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := s.analyzeOne(ctx, benchReq(false))
			if err != nil {
				b.Errorf("analyze: %v", err)
				return
			}
			if !resp.Cached {
				b.Errorf("expected cache hit")
				return
			}
		}
	})
}

// BenchmarkAnalyzeUncached forces a full cost-model evaluation per
// request (no_cache), bounding the service's compute-side throughput.
func BenchmarkAnalyzeUncached(b *testing.B) {
	s := benchServer(b)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := s.analyzeOne(ctx, benchReq(true))
			if err != nil {
				b.Errorf("analyze: %v", err)
				return
			}
			if resp.Cached {
				b.Errorf("no_cache request reported cached")
				return
			}
		}
	})
}

// BenchmarkCanonicalKey isolates the canonicalizer (resolve + augment +
// re-emit + SHA-256), the fixed cost every request pays.
func BenchmarkCanonicalKey(b *testing.B) {
	r, err := resolveRequest(benchReq(false))
	if err != nil {
		b.Fatalf("resolve: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = canonicalKey(r)
	}
}

// BenchmarkBatchFanout measures an 8-item batch of distinct uncached
// layers fanned out across the pool.
func BenchmarkBatchFanout(b *testing.B) {
	s := benchServer(b)
	ctx := context.Background()
	reqs := make([]AnalyzeRequest, 8)
	for i := range reqs {
		reqs[i] = AnalyzeRequest{
			Layer:    LayerSpec{Name: fmt.Sprintf("bench-%d", i), K: 16 << (i % 4), C: 32, Y: 28, X: 28, R: 3, S: 3},
			Dataflow: DataflowSpec{Name: "KC-P"},
			HW:       HWSpec{Preset: "Accel256"},
			NoCache:  true,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, len(reqs))
		for _, req := range reqs {
			req := req
			go func() {
				_, err := s.analyzeOne(ctx, req)
				done <- err
			}()
		}
		for range reqs {
			if err := <-done; err != nil {
				b.Fatalf("batch item: %v", err)
			}
		}
	}
}
