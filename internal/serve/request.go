// Package serve is the concurrent analysis service over the MAESTRO
// cost model: an HTTP JSON API wrapping the analytical engines, the
// Table 3 dataflow library, the model zoo, and the design-space
// exploration tool. Requests are canonicalized and hashed into a
// sharded LRU result cache with a singleflight layer, executed on a
// bounded worker pool with queue-depth backpressure, and observed
// through an in-process Prometheus-text metrics registry.
package serve

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/tensor"
)

// errBadRequest tags request-decoding and -resolution failures that are
// the caller's fault; handlers map it (and the model's typed validation
// errors) to HTTP 400.
var errBadRequest = fmt.Errorf("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// LayerSpec names a model-zoo layer (Model + Name) or describes a shape
// inline. Y and X are input coordinates, as in the DSL.
type LayerSpec struct {
	Model string `json:"model,omitempty"`
	Name  string `json:"name,omitempty"`

	Op string `json:"op,omitempty"` // CONV2D, DWCONV, PWCONV, FC, TRCONV, POOL, GEMM
	N  int    `json:"n,omitempty"`
	K  int    `json:"k,omitempty"`
	C  int    `json:"c,omitempty"`
	Y  int    `json:"y,omitempty"`
	X  int    `json:"x,omitempty"`
	R  int    `json:"r,omitempty"`
	S  int    `json:"s,omitempty"`

	StrideY int `json:"stride_y,omitempty"`
	StrideX int `json:"stride_x,omitempty"`

	// Densities are non-zero fractions per tensor for the sparsity
	// model; omitted values mean dense.
	InputDensity  float64 `json:"input_density,omitempty"`
	WeightDensity float64 `json:"weight_density,omitempty"`
	OutputDensity float64 `json:"output_density,omitempty"`
}

// DataflowSpec selects a Table 3 dataflow by name or carries a custom
// directive list in the DSL.
type DataflowSpec struct {
	Name string `json:"name,omitempty"`
	DSL  string `json:"dsl,omitempty"`
}

// NoCSpec describes one NoC level.
type NoCSpec struct {
	// Kind is one of bus, crossbar, mesh, systolic, tree; empty means
	// bus.
	Kind string `json:"kind,omitempty"`
	// Bandwidth is the pipe width in elements per cycle (bus) or the
	// endpoint count (crossbar/mesh/systolic/tree presets).
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Multicast/Reduction override the preset capability flags.
	Multicast *bool `json:"multicast,omitempty"`
	Reduction *bool `json:"reduction,omitempty"`
	Channels  int   `json:"channels,omitempty"`
}

// HWSpec selects a preset accelerator (Accel256, MAERI64, Eyeriss168)
// and/or overrides individual parameters.
type HWSpec struct {
	Preset string `json:"preset,omitempty"`

	NumPEs           int     `json:"num_pes,omitempty"`
	VectorWidth      int     `json:"vector_width,omitempty"`
	L1Bytes          int64   `json:"l1_bytes,omitempty"`
	L2Bytes          int64   `json:"l2_bytes,omitempty"`
	OffchipBandwidth float64 `json:"offchip_bandwidth,omitempty"`
	ElemBytes        int     `json:"elem_bytes,omitempty"`
	ClockGHz         float64 `json:"clock_ghz,omitempty"`
	SparseImbalance  bool    `json:"sparse_imbalance,omitempty"`

	NoCs []NoCSpec `json:"nocs,omitempty"`
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	Layer    LayerSpec    `json:"layer"`
	Dataflow DataflowSpec `json:"dataflow"`
	HW       HWSpec       `json:"hw"`

	// TimeoutMs bounds this request's wall time (default: server
	// option). The analysis itself is not cancelled mid-flight; a timed
	// out request still populates the cache for later retries.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache (the computation still runs on
	// the pool and coalesces with identical in-flight requests).
	NoCache bool `json:"no_cache,omitempty"`
}

// EnergyJSON is the per-component energy breakdown in pJ.
type EnergyJSON struct {
	MAC    float64 `json:"mac"`
	L1     float64 `json:"l1"`
	L2     float64 `json:"l2"`
	NoC    float64 `json:"noc"`
	DRAM   float64 `json:"dram"`
	OnChip float64 `json:"on_chip"`
	Total  float64 `json:"total"`
}

// ReuseJSON is the per-tensor reuse factor (L1 accesses per L2 fetch).
type ReuseJSON struct {
	Input  float64 `json:"input"`
	Weight float64 `json:"weight"`
	Output float64 `json:"output"`
}

// AnalyzeResponse is the body of a successful analysis.
type AnalyzeResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`

	Layer    string `json:"layer"`
	Dataflow string `json:"dataflow"`
	HW       string `json:"hw"`

	Runtime       int64   `json:"runtime_cycles"`
	OnChipRuntime int64   `json:"on_chip_runtime_cycles"`
	MACs          int64   `json:"macs"`
	UsedPEs       int     `json:"used_pes"`
	Utilization   float64 `json:"utilization"`
	Throughput    float64 `json:"throughput_macs_per_cycle"`
	Bottleneck    string  `json:"bottleneck"`

	L1ReqBytes int64   `json:"l1_req_bytes"`
	L2ReqBytes int64   `json:"l2_req_bytes"`
	DRAMReads  int64   `json:"dram_reads"`
	DRAMWrites int64   `json:"dram_writes"`
	PeakBWGBps float64 `json:"peak_bw_gbps"`
	L2Spill    bool    `json:"l2_spill,omitempty"`

	Energy EnergyJSON `json:"energy_pj"`
	Reuse  ReuseJSON  `json:"reuse_factor"`

	// ComputeMicros is the model-evaluation time of the miss that
	// produced this entry (0 only if the clock did not advance).
	ComputeMicros int64 `json:"compute_micros,omitempty"`
}

// BatchRequest is the body of POST /v1/analyze/batch.
type BatchRequest struct {
	Requests []AnalyzeRequest `json:"requests"`
	// TimeoutMs bounds the whole batch.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// BatchItem is one batch result, at the same index as its request.
type BatchItem struct {
	Index  int              `json:"index"`
	Error  string           `json:"error,omitempty"`
	Result *AnalyzeResponse `json:"result,omitempty"`
}

// BatchResponse preserves request order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// zooNames returns the zoo model names sorted; the registry itself
// lives in the models package and is shared with the CLI.
func zooNames() []string { return models.Zoo() }

// dataflowNames returns the Table 3 dataflow names in plotting order.
func dataflowNames() []string { return append([]string(nil), dataflows.Names...) }

// presetNames returns the hardware preset names sorted.
func presetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resolveLayer converts a LayerSpec to a concrete layer.
func resolveLayer(ls LayerSpec) (tensor.Layer, error) {
	if ls.Model != "" {
		m, ok := models.ByName(ls.Model)
		if !ok {
			return tensor.Layer{}, badRequestf("unknown model %q (have %s)",
				ls.Model, strings.Join(zooNames(), ", "))
		}
		if ls.Name == "" {
			return tensor.Layer{}, badRequestf("model %q needs a layer name", ls.Model)
		}
		li, ok := m.Find(ls.Name)
		if !ok {
			return tensor.Layer{}, badRequestf("model %q has no layer %q", ls.Model, ls.Name)
		}
		return li.Layer, nil
	}
	op := tensor.Conv2D
	if ls.Op != "" {
		var err error
		op, err = tensor.ParseOpType(ls.Op)
		if err != nil {
			return tensor.Layer{}, badRequestf("%v", err)
		}
	}
	name := ls.Name
	if name == "" {
		name = "layer"
	}
	l := tensor.Layer{
		Name: name, Op: op,
		Sizes: tensor.Sizes{
			tensor.N: ls.N, tensor.K: ls.K, tensor.C: ls.C,
			tensor.Y: ls.Y, tensor.X: ls.X, tensor.R: ls.R, tensor.S: ls.S,
		},
		StrideY: ls.StrideY, StrideX: ls.StrideX,
	}
	l.Density[tensor.Input] = ls.InputDensity
	l.Density[tensor.Weight] = ls.WeightDensity
	l.Density[tensor.Output] = ls.OutputDensity
	l = l.Normalize()
	if err := l.Validate(); err != nil {
		return tensor.Layer{}, err
	}
	return l, nil
}

// resolveDataflow converts a DataflowSpec.
func resolveDataflow(ds DataflowSpec) (dataflow.Dataflow, error) {
	if ds.DSL != "" {
		name := ds.Name
		if name == "" {
			name = "custom"
		}
		df, err := dataflow.ParseDataflow(name, ds.DSL)
		if err != nil {
			return dataflow.Dataflow{}, badRequestf("dataflow DSL: %v", err)
		}
		return df, nil
	}
	if ds.Name == "" {
		return dataflow.Dataflow{}, badRequestf("dataflow needs a name or a dsl")
	}
	if _, ok := dataflows.Sources[ds.Name]; !ok {
		return dataflow.Dataflow{}, badRequestf("unknown dataflow %q (have %s)",
			ds.Name, strings.Join(dataflows.Names, ", "))
	}
	return dataflows.Get(ds.Name), nil
}

// presets maps HW preset names to constructors.
var presets = map[string]func() hw.Config{
	"Accel256":   hw.Accel256,
	"MAERI64":    hw.MAERI64,
	"Eyeriss168": hw.Eyeriss168,
}

// resolveNoC converts one NoCSpec.
func resolveNoC(ns NoCSpec) (noc.Model, error) {
	var m noc.Model
	n := int(ns.Bandwidth)
	switch ns.Kind {
	case "", "bus":
		bw := ns.Bandwidth
		if bw == 0 {
			bw = 16
		}
		m = noc.Bus(bw)
	case "crossbar":
		m = noc.Crossbar(n)
	case "mesh":
		m = noc.Mesh(n)
	case "systolic":
		m = noc.SystolicRow(n)
	case "tree":
		m = noc.Tree(n)
	default:
		return noc.Model{}, badRequestf("unknown noc kind %q", ns.Kind)
	}
	if ns.Multicast != nil {
		m.Multicast = *ns.Multicast
	}
	if ns.Reduction != nil {
		m.Reduction = *ns.Reduction
	}
	if ns.Channels != 0 {
		m.Channels = ns.Channels
	}
	return m, nil
}

// resolveHW converts an HWSpec: preset first, overrides on top.
func resolveHW(hs HWSpec) (hw.Config, error) {
	var cfg hw.Config
	if hs.Preset != "" {
		ctor, ok := presets[hs.Preset]
		if !ok {
			names := make([]string, 0, len(presets))
			for n := range presets {
				names = append(names, n)
			}
			sort.Strings(names)
			return hw.Config{}, badRequestf("unknown hw preset %q (have %s)",
				hs.Preset, strings.Join(names, ", "))
		}
		cfg = ctor()
	} else {
		cfg.Name = "custom"
		if hs.NumPEs == 0 {
			return hw.Config{}, badRequestf("hw needs a preset or num_pes")
		}
	}
	if hs.NumPEs != 0 {
		cfg.NumPEs = hs.NumPEs
	}
	if hs.VectorWidth != 0 {
		cfg.VectorWidth = hs.VectorWidth
	}
	if hs.L1Bytes != 0 {
		cfg.L1Size = hs.L1Bytes
	}
	if hs.L2Bytes != 0 {
		cfg.L2Size = hs.L2Bytes
	}
	if hs.OffchipBandwidth != 0 {
		cfg.OffchipBandwidth = hs.OffchipBandwidth
	}
	if hs.ElemBytes != 0 {
		cfg.ElemBytes = hs.ElemBytes
	}
	if hs.ClockGHz != 0 {
		cfg.ClockGHz = hs.ClockGHz
	}
	if hs.SparseImbalance {
		cfg.SparseImbalance = true
	}
	if len(hs.NoCs) > 0 {
		cfg.NoCs = nil
		for _, ns := range hs.NoCs {
			m, err := resolveNoC(ns)
			if err != nil {
				return hw.Config{}, err
			}
			cfg.NoCs = append(cfg.NoCs, m)
		}
	}
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return hw.Config{}, err
	}
	return cfg, nil
}

// resolved is a fully validated analysis request.
type resolved struct {
	layer tensor.Layer
	df    dataflow.Dataflow
	cfg   hw.Config
}

// resolveRequest validates and converts one AnalyzeRequest.
func resolveRequest(req AnalyzeRequest) (resolved, error) {
	layer, err := resolveLayer(req.Layer)
	if err != nil {
		return resolved{}, err
	}
	df, err := resolveDataflow(req.Dataflow)
	if err != nil {
		return resolved{}, err
	}
	cfg, err := resolveHW(req.HW)
	if err != nil {
		return resolved{}, err
	}
	return resolved{layer: layer, df: df, cfg: cfg}, nil
}
