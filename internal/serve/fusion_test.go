package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

func fusionReq() FusionRequest {
	return FusionRequest{
		Model:          "GoogLeNet",
		HW:             HWSpec{Preset: "Accel256", L2Bytes: 256 << 10},
		Dataflow:       "KC-P",
		L2Grid:         []int64{0, 256 << 10},
		MaxGroupLayers: []int{8},
	}
}

func postFusion(t *testing.T, url string, req FusionRequest) (int, FusionResponse, []byte) {
	t.Helper()
	code, data := post(t, url+"/v1/fusion", marshal(t, req))
	var out FusionResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("unmarshal response: %v\n%s", err, data)
		}
	}
	return code, out, data
}

// TestFusionEndpoint drives POST /v1/fusion end to end: the sweep
// prices both corners, the sentinel point matches its baseline, the
// fused point saves traffic, and a repeat call hits the result cache.
func TestFusionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	code, resp, data := postFusion(t, ts.URL, fusionReq())
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	if resp.Model != "GoogLeNet" || resp.MACs <= 0 {
		t.Fatalf("model echo wrong: %+v", resp)
	}
	if resp.Raw != 2 || resp.Valid != 2 || len(resp.Points) != 2 {
		t.Fatalf("point counts wrong: %+v", resp)
	}
	sentinel, fused := resp.Points[0], resp.Points[1]
	if sentinel.L2Bytes != 0 || sentinel.DRAMTraffic != sentinel.BaselineDRAM {
		t.Fatalf("sentinel point: %+v", sentinel)
	}
	if fused.FusedGroups == 0 || fused.DRAMSaved <= 0 || fused.SavedFrac <= 0 {
		t.Fatalf("fused point saved nothing: %+v", fused)
	}
	if resp.Best == nil || resp.Best.DRAMTraffic > fused.DRAMTraffic {
		t.Fatalf("best missing or wrong: %+v", resp.Best)
	}
	if resp.Cached {
		t.Fatal("first call claimed a cache hit")
	}
	code, resp2, data := postFusion(t, ts.URL, fusionReq())
	if code != http.StatusOK {
		t.Fatalf("repeat status %d: %s", code, data)
	}
	if !resp2.Cached || resp2.Key != resp.Key {
		t.Fatalf("repeat not cached: cached=%t key %s vs %s", resp2.Cached, resp2.Key, resp.Key)
	}
}

// TestFusionEndpointErrors pins the 400 seams.
func TestFusionEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		mut  func(*FusionRequest)
	}{
		{"unknown model", func(r *FusionRequest) { r.Model = "LeNet-9000" }},
		{"unknown dataflow", func(r *FusionRequest) { r.Dataflow = "ZZ-P" }},
		{"negative budget", func(r *FusionRequest) { r.L2Grid = []int64{-5} }},
		{"zero granularity", func(r *FusionRequest) { r.MaxGroupLayers = []int{0} }},
		{"bad shard", func(r *FusionRequest) { r.Shard = &FusionShard{Index: 3, Of: 2} }},
		{"oversize grid", func(r *FusionRequest) {
			r.L2Grid = make([]int64, 0, MaxFusionGrid+1)
			for i := int64(0); i <= MaxFusionGrid; i++ {
				r.L2Grid = append(r.L2Grid, i)
			}
		}},
	}
	for _, tc := range cases {
		req := fusionReq()
		tc.mut(&req)
		if code, _, data := postFusion(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, data)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/fusion")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/fusion = %d, want 405", resp.StatusCode)
	}
}
