package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// traceparentFor builds a canonical traceparent header for a trace ID
// and remote span ID, the way a coordinator's client would.
func traceparentFor(traceID string, spanID uint64) string {
	return "00-" + traceID + "-" + obs.FormatSpanID(spanID) + "-01"
}

// analyzeWithHeader posts one analyze request with the given extra
// headers and returns the response status.
func analyzeWithHeader(t *testing.T, url string, hdr map[string]string) int {
	t.Helper()
	req := AnalyzeRequest{
		Layer:    LayerSpec{Name: "seg-layer", K: 32, C: 16, Y: 16, X: 16, R: 3, S: 3},
		Dataflow: DataflowSpec{Name: "KC-P"},
		HW:       HWSpec{Preset: "Accel256"},
	}
	hreq, _ := http.NewRequest(http.MethodPost, url+"/v1/analyze",
		strings.NewReader(marshal(t, req)))
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/analyze: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode
}

// TestTracedRequestBuffersSegments is the node half of the distributed
// tracing acceptance check: a request arriving with a traceparent
// header must buffer its span tree in the segment store, retrievable
// by trace ID with the node's root span parented under the remote
// caller's span ID.
func TestTracedRequestBuffersSegments(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, NodeName: "test-node"})
	traceID := obs.NewTraceID()
	const remoteSpan = uint64(0xabcdef12)

	if code := analyzeWithHeader(t, ts.URL, map[string]string{
		"traceparent": traceparentFor(traceID, remoteSpan),
	}); code != http.StatusOK {
		t.Fatalf("traced analyze: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/debug/trace/segments?trace=" + traceID)
	if err != nil {
		t.Fatalf("GET segments: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("segments: status %d: %s", resp.StatusCode, body)
	}
	var seg SegmentsResponse
	if err := json.NewDecoder(resp.Body).Decode(&seg); err != nil {
		t.Fatalf("decode segments: %v", err)
	}
	if seg.TraceID != traceID || seg.Node != "test-node" {
		t.Errorf("segments identity = %q/%q, want %q/test-node", seg.TraceID, seg.Node, traceID)
	}
	if len(seg.Spans) == 0 {
		t.Fatal("no spans buffered for traced request")
	}
	var root *obs.SpanJSON
	names := map[string]int{}
	for i, s := range seg.Spans {
		names[s.Name]++
		if s.TraceID != traceID {
			t.Errorf("span %q carries trace %q, want %q", s.Name, s.TraceID, traceID)
		}
		if s.Name == "http.request" {
			root = &seg.Spans[i]
		}
	}
	for _, want := range []string{"http.request", "serve.queue", "serve.compute"} {
		if names[want] == 0 {
			t.Errorf("segment missing %q span; got %v", want, names)
		}
	}
	if root == nil {
		t.Fatal("no http.request root span in segment")
	}
	if root.RemoteParent != obs.FormatSpanID(remoteSpan) {
		t.Errorf("root remote parent = %q, want %q", root.RemoteParent, obs.FormatSpanID(remoteSpan))
	}
}

// TestMalformedTraceparentIgnored is the sanitization regression test:
// hostile or malformed traceparent headers must not fail the request —
// it proceeds untraced and buffers nothing.
func TestMalformedTraceparentIgnored(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	for _, v := range []string{
		"not-a-traceparent",
		"00-" + strings.Repeat("Z", 32) + "-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		strings.Repeat("0", 400),
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01 trailing",
		"99-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	} {
		if code := analyzeWithHeader(t, ts.URL, map[string]string{"traceparent": v}); code != http.StatusOK {
			t.Errorf("traceparent %q: status %d, want 200 (malformed headers must not fail requests)", v, code)
		}
	}
	if n := s.segments.Traces(); n != 0 {
		t.Errorf("segment store buffered %d traces from malformed headers, want 0", n)
	}
}

func TestSegmentsEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	resp, err := http.Post(ts.URL+"/debug/trace/segments", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", resp.StatusCode)
	}

	for _, q := range []string{"", "?trace=xyz", "?trace=" + strings.Repeat("Z", 32)} {
		resp, err := http.Get(ts.URL + "/debug/trace/segments" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %q: status %d, want 400", q, resp.StatusCode)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/trace/segments?trace=" + obs.NewTraceID())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", resp.StatusCode)
	}
}

func TestSegmentStoreDisabled(t *testing.T) {
	// SegmentTraces < 0 turns the store off: traced requests still
	// succeed, and the endpoint answers 404.
	s, ts := newTestServer(t, Options{Workers: 1, SegmentTraces: -1})
	if s.segments != nil {
		t.Fatal("segment store built despite SegmentTraces < 0")
	}
	traceID := obs.NewTraceID()
	if code := analyzeWithHeader(t, ts.URL, map[string]string{
		"traceparent": traceparentFor(traceID, 7),
	}); code != http.StatusOK {
		t.Fatalf("traced analyze with store disabled: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/debug/trace/segments?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled store: status %d, want 404", resp.StatusCode)
	}
}

// TestTracedRequestFeedsOpenCapture keeps the PR 3 capture window
// complete: a traced request's spans divert to the segment store but
// must still merge into an open /debug/trace capture.
func TestTracedRequestFeedsOpenCapture(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 1})
	capRec := obs.NewRecorder()
	if !s.capture.CompareAndSwap(nil, capRec) {
		t.Fatal("capture slot busy")
	}
	defer s.capture.CompareAndSwap(capRec, nil)

	ts2 := s.Handler()
	req, _ := http.NewRequest(http.MethodGet, "/v1/models", nil)
	req.Header.Set("traceparent", traceparentFor(obs.NewTraceID(), 99))
	w := newRecorderResponse()
	ts2.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		t.Fatalf("models: status %d", w.status)
	}
	if capRec.Len() == 0 {
		t.Error("open capture window saw none of the traced request's spans")
	}
}

// recorderResponse is a minimal ResponseWriter for in-process calls.
type recorderResponse struct {
	h      http.Header
	status int
}

func newRecorderResponse() *recorderResponse {
	return &recorderResponse{h: http.Header{}, status: http.StatusOK}
}

func (r *recorderResponse) Header() http.Header         { return r.h }
func (r *recorderResponse) Write(b []byte) (int, error) { return len(b), nil }
func (r *recorderResponse) WriteHeader(code int)        { r.status = code }

func TestStatusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3, QueueDepth: 7, NodeName: "status-node"})

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if st.Node != "status-node" || st.Workers != 3 || st.QueueCap != 7 {
		t.Errorf("status identity = %+v, want node status-node, 3 workers, queue 7", st)
	}
	if st.Version == "" || st.GoVersion == "" || st.Commit == "" {
		t.Errorf("status build info incomplete: %+v", st)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("negative uptime %f", st.UptimeSeconds)
	}
	if !st.Segments.Enabled {
		t.Error("segment store reported disabled on a default server")
	}

	respPost, err := http.Post(ts.URL+"/v1/status", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	respPost.Body.Close()
	if respPost.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status: %d, want 405", respPost.StatusCode)
	}
}

func TestBuildInfoAndDropMetrics(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, NodeName: "metrics-node"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `maestro_build_info{`) ||
		!strings.Contains(text, `node="metrics-node"`) {
		t.Errorf("/metrics missing maestro_build_info with node label:\n%.400s", text)
	}
	if !strings.Contains(text, "maestro_trace_spans_dropped_total 0") {
		t.Errorf("/metrics missing zero span-drop counter")
	}

	// Overflow one trace's segment and watch the counter move.
	st := s.segments
	spans := make([]obs.SpanRecord, st.MaxSpans()+3)
	for i := range spans {
		spans[i] = obs.SpanRecord{ID: uint64(i + 1), Name: fmt.Sprintf("s%d", i)}
	}
	st.Add(obs.NewTraceID(), spans, 0)
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "maestro_trace_spans_dropped_total 3") {
		t.Errorf("span-drop counter did not surface store drops:\n%s",
			grepLine(string(body), "maestro_trace_spans_dropped_total"))
	}
}

func grepLine(text, substr string) string {
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return "(absent)"
}
