package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRenderGolden pins the exact Prometheus text exposition: families
// in registration order, vec children in sorted label order, histogram
// buckets cumulative with a trailing +Inf. Observations use values
// exactly representable in binary so sums print without float noise.
func TestRenderGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_requests_total", "Requests received.")
	r.NewCounterFunc("t_evals_total", "Evaluations sampled at scrape time.", func() int64 { return 42 })
	g := r.NewGauge("t_depth", "Queue depth.")
	r.NewGaugeFunc("t_live", "Live value.", func() int64 { return 7 })
	vec := r.NewCounterVec("t_codes_total", "Responses by code.", "code")
	h := r.NewHistogram("t_seconds", "Latency.", []float64{0.25, 1})
	hv := r.NewHistogramVec("t_stage_seconds", "Stage latency.", "stage", []float64{0.25, 1})

	c.Inc()
	c.Add(2)
	g.Set(5)
	vec.With("404").Inc() // registered before 200: rendering must re-sort
	vec.With("200").Add(2)
	h.Observe(0.25) // bucket bounds are inclusive upper limits
	h.Observe(0.5)
	h.Observe(4)
	hv.With("queue").Observe(0.125)
	hv.With("compute").Observe(2)

	want := `# HELP t_requests_total Requests received.
# TYPE t_requests_total counter
t_requests_total 3
# HELP t_evals_total Evaluations sampled at scrape time.
# TYPE t_evals_total counter
t_evals_total 42
# HELP t_depth Queue depth.
# TYPE t_depth gauge
t_depth 5
# HELP t_live Live value.
# TYPE t_live gauge
t_live 7
# HELP t_codes_total Responses by code.
# TYPE t_codes_total counter
t_codes_total{code="200"} 2
t_codes_total{code="404"} 1
# HELP t_seconds Latency.
# TYPE t_seconds histogram
t_seconds_bucket{le="0.25"} 1
t_seconds_bucket{le="1"} 2
t_seconds_bucket{le="+Inf"} 3
t_seconds_sum 4.75
t_seconds_count 3
# HELP t_stage_seconds Stage latency.
# TYPE t_stage_seconds histogram
t_stage_seconds_bucket{stage="compute",le="0.25"} 0
t_stage_seconds_bucket{stage="compute",le="1"} 0
t_stage_seconds_bucket{stage="compute",le="+Inf"} 1
t_stage_seconds_sum{stage="compute"} 2
t_stage_seconds_count{stage="compute"} 1
t_stage_seconds_bucket{stage="queue",le="0.25"} 1
t_stage_seconds_bucket{stage="queue",le="1"} 1
t_stage_seconds_bucket{stage="queue",le="+Inf"} 1
t_stage_seconds_sum{stage="queue"} 0.125
t_stage_seconds_count{stage="queue"} 1
`
	got := r.Render()
	if got != want {
		t.Errorf("Render mismatch.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Deterministic across scrapes.
	if again := r.Render(); again != got {
		t.Errorf("Render not deterministic:\n%s\nvs\n%s", got, again)
	}
}

// TestMetricsConcurrentRender hammers every metric type from many
// goroutines while rendering concurrently. Run with -race; the
// assertions only check the final totals.
func TestMetricsConcurrentRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("h_total", "c")
	g := r.NewGauge("h_gauge", "g")
	vec := r.NewCounterVec("h_vec_total", "v", "k")
	h := r.NewHistogram("h_seconds", "h", ExpBuckets(0.001, 4, 6))
	hv := r.NewHistogramVec("h_stage_seconds", "hv", "stage", ExpBuckets(0.001, 4, 6))

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				vec.With(label).Inc()
				h.Observe(float64(i) / 100)
				hv.With(label).Observe(float64(i) / 100)
				if i%50 == 0 {
					_ = r.Render()
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Render()
			}
		}
	}()
	wg.Wait()
	close(done)

	const total = workers * iters
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	out := r.Render()
	if !strings.Contains(out, fmt.Sprintf("h_total %d", total)) {
		t.Errorf("final render missing settled counter:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("h_seconds_count %d", total)) {
		t.Errorf("final render missing settled histogram count:\n%s", out)
	}
}
