package serve

import (
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Chaos configures fault injection on the /v1/* endpoints: a seeded
// error-rate and latency distribution the chaos/soak harness (and
// manual soak runs via the -chaos-* flags) drive resilience tests with.
// The zero value disables injection. Injection happens before the
// handler runs, so an injected error never occupies a worker and an
// injected delay models network/LB pathology rather than slow compute.
type Chaos struct {
	// ErrorRate is the probability in [0,1] that a request is answered
	// with ErrorCode instead of reaching its handler.
	ErrorRate float64
	// ErrorCode is the injected status (default 500). 429 and 503 also
	// exercise the client's Retry-After handling.
	ErrorCode int
	// Latency is the base injected delay per request.
	Latency time.Duration
	// LatencyJitter adds a uniform random delay in [0, LatencyJitter).
	LatencyJitter time.Duration
	// Seed makes the injection sequence reproducible; 0 seeds from the
	// global source.
	Seed int64
}

// enabled reports whether any injection is configured.
func (c Chaos) enabled() bool {
	return c.ErrorRate > 0 || c.Latency > 0 || c.LatencyJitter > 0
}

// chaosState is the live injector: options plus a mutex-protected rand
// stream (handlers draw concurrently).
type chaosState struct {
	opts Chaos
	mu   sync.Mutex
	rng  *rand.Rand
}

func newChaosState(c Chaos) *chaosState {
	if c.ErrorCode == 0 {
		c.ErrorCode = http.StatusInternalServerError
	}
	seed := c.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	return &chaosState{opts: c, rng: rand.New(rand.NewSource(seed))}
}

// draw decides one request's fate.
func (st *chaosState) draw() (delay time.Duration, fail bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delay = st.opts.Latency
	if st.opts.LatencyJitter > 0 {
		delay += time.Duration(st.rng.Int63n(int64(st.opts.LatencyJitter)))
	}
	fail = st.opts.ErrorRate > 0 && st.rng.Float64() < st.opts.ErrorRate
	return delay, fail
}

// SetChaos replaces the fault-injection configuration at runtime (the
// soak harness uses it to phase between steady-state, blackout, and
// recovery). A zero Chaos disables injection.
func (s *Server) SetChaos(c Chaos) {
	if !c.enabled() {
		s.chaos.Store(nil)
		return
	}
	s.chaos.Store(newChaosState(c))
}

// chaosMiddleware injects the configured faults into /v1/* requests.
// Health, metrics, and debug endpoints are exempt so monitoring stays
// trustworthy during a chaos run.
func (s *Server) chaosMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := s.chaos.Load()
		if st == nil || !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		delay, fail := st.draw()
		if delay > 0 {
			s.chaosInjected.With("latency").Inc()
			t := time.NewTimer(delay)
			select {
			case <-r.Context().Done():
				t.Stop()
				// The client is gone; fall through and let the handler
				// observe the cancelled context.
			case <-t.C:
			}
		}
		if fail {
			s.chaosInjected.With("error").Inc()
			w.Header().Set("X-Maestro-Chaos", "injected-error")
			s.writeError(w, r, &httpError{
				status: st.opts.ErrorCode,
				msg:    "chaos: injected error",
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}
