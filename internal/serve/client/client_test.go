package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

func okBody(t *testing.T) []byte {
	t.Helper()
	b, err := json.Marshal(&serve.AnalyzeResponse{Layer: "L", Dataflow: "KC-P", Runtime: 42})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func analyzeReq() serve.AnalyzeRequest {
	return serve.AnalyzeRequest{
		Layer:    serve.LayerSpec{Op: "CONV2D", K: 4, C: 3, Y: 8, X: 8, R: 3, S: 3},
		Dataflow: serve.DataflowSpec{Name: "KC-P"},
		HW:       serve.HWSpec{Preset: "Accel256"},
	}
}

func mustClient(t *testing.T, opts Options) *Client {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fastOpts keeps retry delays test-sized.
func fastOpts(url string) Options {
	return Options{
		BaseURL:     url,
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
	}
}

func TestRetryThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.Write(okBody(t))
	}))
	defer ts.Close()

	c := mustClient(t, fastOpts(ts.URL))
	resp, err := c.Analyze(context.Background(), analyzeReq())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if resp.Runtime != 42 {
		t.Fatalf("runtime = %d, want 42", resp.Runtime)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
}

func TestTerminalClientErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("X-Request-ID", "rid-1")
		http.Error(w, `{"error":"bad request: no such model"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := mustClient(t, fastOpts(ts.URL))
	_, err := c.Analyze(context.Background(), analyzeReq())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusBadRequest || apiErr.RequestID != "rid-1" {
		t.Fatalf("unexpected APIError: %+v", apiErr)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 was retried: %d calls", got)
	}
}

func TestExhaustionWrapsLastError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"still down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := mustClient(t, fastOpts(ts.URL))
	_, err := c.Analyze(context.Background(), analyzeReq())
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("exhaustion does not wrap the last APIError: %v", err)
	}
}

// TestRetryAfterHonored asserts the client waits at least the server's
// Retry-After hint before the next attempt.
func TestRetryAfterHonored(t *testing.T) {
	var mu sync.Mutex
	var times []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		n := len(times)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"backpressure"}`, http.StatusTooManyRequests)
			return
		}
		w.Write(okBody(t))
	}))
	defer ts.Close()

	c := mustClient(t, fastOpts(ts.URL))
	if _, err := c.Analyze(context.Background(), analyzeReq()); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 2 {
		t.Fatalf("saw %d attempts, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < time.Second {
		t.Fatalf("second attempt after %v, want >= 1s (Retry-After)", gap)
	}
}

func TestDeadlinePropagatedIntoTimeoutMs(t *testing.T) {
	var got atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req serve.AnalyzeRequest
		json.NewDecoder(r.Body).Decode(&req)
		got.Store(int64(req.TimeoutMs))
		w.Write(okBody(t))
	}))
	defer ts.Close()

	c := mustClient(t, fastOpts(ts.URL))
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := c.Analyze(ctx, analyzeReq()); err != nil {
		t.Fatal(err)
	}
	ms := got.Load()
	if ms <= 0 || ms > 500 {
		t.Fatalf("timeout_ms = %d, want in (0, 500]", ms)
	}

	// An explicit timeout_ms is left alone.
	req := analyzeReq()
	req.TimeoutMs = 1234
	if _, err := c.Analyze(ctx, req); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 1234 {
		t.Fatalf("explicit timeout_ms overwritten: %d", got.Load())
	}
}

func TestContextCancelIsTerminal(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block)

	c := mustClient(t, fastOpts(ts.URL))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Analyze(ctx, analyzeReq())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// TestBreakerOpensAndRecovers drives the full closed → open →
// half-open → closed cycle against a server that fails hard and then
// heals.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failing.Load() {
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
		w.Write(okBody(t))
	}))
	defer ts.Close()

	var mu sync.Mutex
	var transitions []string
	opts := fastOpts(ts.URL)
	opts.MaxAttempts = 1 // isolate breaker behavior from retry
	opts.Breaker = BreakerOptions{
		FailureThreshold: 3,
		Cooldown:         50 * time.Millisecond,
		OnStateChange: func(host string, from, to BreakerState) {
			mu.Lock()
			transitions = append(transitions, from.String()+">"+to.String())
			mu.Unlock()
		},
	}
	c := mustClient(t, opts)
	ctx := context.Background()

	// Three failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Analyze(ctx, analyzeReq()); err == nil {
			t.Fatal("expected failure")
		}
	}
	if st := c.BreakerState(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	// While open, calls fail fast without touching the server.
	before := calls.Load()
	_, err := c.Analyze(ctx, analyzeReq())
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker let a call through")
	}
	if st := c.Stats(); st.BreakerRejected == 0 {
		t.Fatal("BreakerRejected not counted")
	}

	// After the cooldown the half-open probe fails and re-opens.
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Analyze(ctx, analyzeReq()); err == nil {
		t.Fatal("expected probe failure")
	}
	if st := c.BreakerState(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}

	// Server heals; next probe closes the breaker.
	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Analyze(ctx, analyzeReq()); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if st := c.BreakerState(); st != BreakerClosed {
		t.Fatalf("state after heal = %v, want closed", st)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{
		"closed>open",
		"open>half-open", "half-open>open",
		"open>half-open", "half-open>closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// TestBreakerHalfOpenSingleProbe: concurrent calls during half-open
// admit exactly one probe; the rest are rejected locally.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	release := make(chan struct{})
	var inHandler atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inHandler.Add(1)
		<-release
		w.Write(okBody(t))
	}))
	defer ts.Close()

	opts := fastOpts(ts.URL)
	opts.MaxAttempts = 1
	opts.Breaker = BreakerOptions{FailureThreshold: 1, Cooldown: 10 * time.Millisecond}
	c := mustClient(t, opts)

	// Trip the breaker directly, wait out the cooldown, then race two
	// calls through the half-open gate.
	b := c.breakerFor(c.base.Host)
	b.Failure()
	if c.BreakerState() != BreakerOpen {
		t.Fatal("breaker not open")
	}
	time.Sleep(15 * time.Millisecond)

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Analyze(context.Background(), analyzeReq())
			done <- err
		}()
	}
	// One call reaches the handler and blocks; the other must be
	// rejected by the half-open gate.
	deadline := time.After(2 * time.Second)
	for inHandler.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no probe reached the server")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	err1 := <-done // the rejected one finishes first
	if !errors.Is(err1, ErrCircuitOpen) {
		t.Fatalf("concurrent probe not rejected: %v", err1)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if got := inHandler.Load(); got != 1 {
		t.Fatalf("%d probes reached the server, want 1", got)
	}
	if c.BreakerState() != BreakerClosed {
		t.Fatal("breaker did not close after successful probe")
	}
}

// TestHedgedAnalyze: a slow primary is beaten by the hedge; the call
// returns once, correctly, and the hedge counter moves.
func TestHedgedAnalyze(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Primary: stall long enough for the hedge to win.
			select {
			case <-r.Context().Done():
				return
			case <-time.After(2 * time.Second):
			}
		}
		w.Write(okBody(t))
	}))
	defer ts.Close()

	opts := fastOpts(ts.URL)
	opts.Hedge = 20 * time.Millisecond
	c := mustClient(t, opts)
	start := time.Now()
	resp, err := c.Analyze(context.Background(), analyzeReq())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if resp.Runtime != 42 {
		t.Fatalf("runtime = %d", resp.Runtime)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not win: call took %v", elapsed)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Fatalf("hedges = %d, want 1", st.Hedges)
	}
}

func TestBackoffHonorsHintAndCap(t *testing.T) {
	bo := newBackoff(10*time.Millisecond, 80*time.Millisecond, 7)
	for retry := 0; retry < 10; retry++ {
		d := bo.delay(retry, 0)
		if d < time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("retry %d: delay %v out of [1ms, 80ms]", retry, d)
		}
	}
	if d := bo.delay(0, 300*time.Millisecond); d < 300*time.Millisecond {
		t.Fatalf("hint not honored: %v", d)
	}
}

func TestRetryAfterParse(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if d := retryAfterHint(mk("")); d != 0 {
		t.Fatalf("empty = %v", d)
	}
	if d := retryAfterHint(mk("2")); d != 2*time.Second {
		t.Fatalf("seconds = %v", d)
	}
	if d := retryAfterHint(mk("-5")); d != 0 {
		t.Fatalf("negative = %v", d)
	}
	if d := retryAfterHint(mk("86400")); d != maxRetryAfter {
		t.Fatalf("cap = %v", d)
	}
	date := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d := retryAfterHint(mk(date)); d <= 0 || d > 3*time.Second {
		t.Fatalf("http-date = %v", d)
	}
	if d := retryAfterHint(mk("garbage")); d != 0 {
		t.Fatalf("garbage = %v", d)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	if _, err := New(Options{BaseURL: "ftp://x"}); err == nil {
		t.Fatal("ftp BaseURL accepted")
	}
	if _, err := New(Options{BaseURL: "http://127.0.0.1:0"}); err != nil {
		t.Fatalf("valid BaseURL rejected: %v", err)
	}
}

// TestStatsBreakersPerHost is the coordinator's regression test: a
// tripped breaker must be visible as typed state in Stats() and as the
// ErrCircuitOpen sentinel through every wrapping layer (including the
// retry-exhaustion wrap), so callers never string-match to tell a dead
// node from a transient error.
func TestStatsBreakersPerHost(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	opts := fastOpts(ts.URL)
	opts.MaxAttempts = 1
	opts.Breaker = BreakerOptions{FailureThreshold: 1, Cooldown: time.Minute}
	c := mustClient(t, opts)
	ctx := context.Background()

	// Before any call the host has no breaker entry yet.
	if st := c.Stats(); len(st.Breakers) != 0 {
		t.Fatalf("pre-call Breakers = %v, want empty", st.Breakers)
	}

	// One failure trips the threshold-1 breaker.
	if _, err := c.Analyze(ctx, analyzeReq()); err == nil {
		t.Fatal("expected server failure")
	}
	host := mustHost(t, ts.URL)
	if st := c.Stats(); st.Breakers[host] != BreakerOpen {
		t.Fatalf("Breakers[%s] = %v, want open", host, st.Breakers[host])
	}

	// The fast-fail error is the sentinel, not a string.
	_, err := c.Analyze(ctx, analyzeReq())
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("fast-fail error = %v, want ErrCircuitOpen", err)
	}

	// With retries enabled, the sentinel still surfaces through the
	// ErrExhausted wrap after every attempt is breaker-rejected.
	opts.MaxAttempts = 3
	c2 := mustClient(t, opts)
	if _, err := c2.Analyze(ctx, analyzeReq()); err == nil {
		t.Fatal("expected failure to trip c2's breaker")
	}
	_, err = c2.Analyze(ctx, analyzeReq())
	if !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, ErrExhausted) {
		t.Fatalf("exhausted error = %v, want ErrExhausted wrapping ErrCircuitOpen", err)
	}
}

// mustHost extracts the host:port of a test server URL.
func mustHost(t *testing.T, raw string) string {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// TestProbeBypassesRetryAndBreaker pins the probe contract: Healthz and
// Status are single exchanges that neither retry an unhealthy answer
// nor feed the circuit breaker guarding real traffic — a prober asking
// "are you down?" must not push the breaker toward "down".
func TestProbeBypassesRetryAndBreaker(t *testing.T) {
	var calls atomic.Int64
	draining := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		switch r.URL.Path {
		case "/healthz":
			if draining.Load() {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte("ok\n"))
		case "/v1/status":
			json.NewEncoder(w).Encode(serve.StatusResponse{Node: "n0", Draining: draining.Load()})
		default:
			http.Error(w, "not found", http.StatusNotFound)
		}
	}))
	defer ts.Close()

	opts := fastOpts(ts.URL)
	opts.Breaker = BreakerOptions{FailureThreshold: 1, Cooldown: time.Minute}
	c := mustClient(t, opts)

	code, err := c.Healthz(context.Background())
	if err != nil || code != http.StatusOK {
		t.Fatalf("Healthz = %d, %v; want 200, nil", code, err)
	}
	st, err := c.Status(context.Background())
	if err != nil || st.Node != "n0" || st.Draining {
		t.Fatalf("Status = %+v, %v", st, err)
	}

	// An unhealthy answer comes back as data, in exactly one exchange,
	// and the breaker stays closed.
	draining.Store(true)
	before := calls.Load()
	code, err = c.Healthz(context.Background())
	if err != nil || code != http.StatusServiceUnavailable {
		t.Fatalf("draining Healthz = %d, %v; want 503, nil", code, err)
	}
	if got := calls.Load() - before; got != 1 {
		t.Fatalf("Healthz made %d exchanges, want exactly 1 (no retries)", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Healthz(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if st, err := c.Status(context.Background()); err != nil || !st.Draining {
		t.Fatalf("draining Status = %+v, %v", st, err)
	}
	if bs := c.BreakerState(); bs != BreakerClosed {
		t.Fatalf("breaker = %v after unhealthy probes, want closed", bs)
	}

	// A dead listener is a transport error, still breaker-neutral.
	ts.Close()
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("Healthz against a dead listener returned no error")
	}
	if bs := c.BreakerState(); bs != BreakerClosed {
		t.Fatalf("breaker = %v after failed probe, want closed", bs)
	}
}
