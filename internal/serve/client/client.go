// Package client is the resilient HTTP client for the maestro-serve
// analysis service: stdlib-only, with jittered exponential retry that
// honors Retry-After hints, a per-host circuit breaker, optional
// request hedging for idempotent analyze calls, and context-deadline
// propagation into the service's timeout_ms field so server-side
// queue-deadline shedding sees the real budget.
//
// Mapper and DSE loops hammer the cost-model service with thousands of
// speculative queries; this client is the discipline layer between
// them and a server that answers 429 under backpressure, 503 when
// shedding, and — under chaos testing — arbitrary injected faults.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// requestIDKey carries a caller-chosen X-Request-ID through ctx.
type requestIDKey struct{}

// WithRequestID returns a ctx whose calls send id as the X-Request-ID
// header, so a coordinator can stamp one sweep ID across every request
// it fans out and grep all nodes' access logs by it. The server
// sanitizes and echoes the ID; an empty id leaves generation to the
// server as before.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ErrExhausted reports that every retry attempt failed; the final
// attempt's error is wrapped alongside it.
var ErrExhausted = errors.New("client: retry attempts exhausted")

// APIError is a terminal, non-retryable service answer (or the last
// retryable one once the budget is exhausted).
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error body, when it sent one.
	Message string
	// RequestID is the X-Request-ID of the failing exchange.
	RequestID string
}

func (e *APIError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.Status)
	}
	if e.RequestID != "" {
		return fmt.Sprintf("client: server returned %d: %s (request %s)", e.Status, msg, e.RequestID)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.Status, msg)
}

// Options configures a Client. Zero values take the documented
// defaults.
type Options struct {
	// BaseURL locates the service, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (default: a plain
	// &http.Client{}; per-call contexts bound each exchange).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, first attempt included
	// (default 4; 1 disables retry).
	MaxAttempts int
	// BaseBackoff is the first retry's jitter ceiling (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// Seed makes the jitter sequence reproducible; 0 seeds randomly.
	Seed int64
	// Hedge, when positive, launches a second identical attempt for
	// idempotent analyze calls after this delay; the first completed
	// exchange wins and the straggler is cancelled. Off by default —
	// hedging trades extra load for tail latency.
	Hedge time.Duration
	// Breaker configures the per-host circuit breaker.
	Breaker BreakerOptions
	// UserAgent overrides the User-Agent header.
	UserAgent string
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 4
	}
	if o.UserAgent == "" {
		o.UserAgent = "maestro-client/1"
	}
	return o
}

// Stats counts client-side resilience events; read them with Stats().
type Stats struct {
	// Attempts is the number of HTTP exchanges actually launched
	// (hedges included).
	Attempts int64
	// Retries is the number of re-attempts after a retryable failure.
	Retries int64
	// Hedges is the number of hedged second attempts launched.
	Hedges int64
	// BreakerRejected is the number of attempts refused locally by an
	// open circuit breaker.
	BreakerRejected int64
	// Breakers is the per-host circuit-breaker position at snapshot
	// time. Coordinators use it (with the ErrCircuitOpen sentinel) to
	// tell a dead node from transient errors without string-matching.
	Breakers map[string]BreakerState
}

// Client is a resilient caller of the analysis service. Safe for
// concurrent use.
type Client struct {
	opts Options
	base *url.URL
	http *http.Client
	bo   *backoff

	mu       sync.Mutex
	breakers map[string]*breaker

	attempts        atomic.Int64
	retries         atomic.Int64
	hedges          atomic.Int64
	breakerRejected atomic.Int64
}

// New builds a Client for the service at opts.BaseURL.
func New(opts Options) (*Client, error) {
	if opts.BaseURL == "" {
		return nil, errors.New("client: Options.BaseURL is required")
	}
	u, err := url.Parse(opts.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad BaseURL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: BaseURL %q must be http or https", opts.BaseURL)
	}
	opts = opts.withDefaults()
	return &Client{
		opts:     opts,
		base:     u,
		http:     opts.HTTPClient,
		bo:       newBackoff(opts.BaseBackoff, opts.MaxBackoff, opts.Seed),
		breakers: map[string]*breaker{},
	}, nil
}

// Stats returns a snapshot of the resilience counters and the per-host
// breaker positions.
func (c *Client) Stats() Stats {
	st := Stats{
		Attempts:        c.attempts.Load(),
		Retries:         c.retries.Load(),
		Hedges:          c.hedges.Load(),
		BreakerRejected: c.breakerRejected.Load(),
		Breakers:        map[string]BreakerState{},
	}
	c.mu.Lock()
	hosts := make([]*breaker, 0, len(c.breakers))
	for _, b := range c.breakers {
		hosts = append(hosts, b)
	}
	c.mu.Unlock()
	// Each breaker's state is read under its own lock, outside the
	// client map lock (State never calls back into the client).
	for _, b := range hosts {
		st.Breakers[b.host] = b.State()
	}
	return st
}

// BreakerState reports the circuit breaker position for the client's
// host (closed when no call has run yet).
func (c *Client) BreakerState() BreakerState {
	return c.breakerFor(c.base.Host).State()
}

// CloseIdleConnections releases the transport's idle keep-alive
// connections (the soak harness calls it before checking FD baselines).
func (c *Client) CloseIdleConnections() { c.http.CloseIdleConnections() }

func (c *Client) breakerFor(host string) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.breakers[host]
	if !ok {
		b = newBreaker(host, c.opts.Breaker)
		c.breakers[host] = b
	}
	return b
}

// Analyze evaluates one layer + dataflow + hardware configuration.
// When the request carries no timeout_ms and ctx has a deadline, the
// remaining budget is propagated so the server's shedding sees it.
// Analyze calls are idempotent and hedge when Options.Hedge is set.
func (c *Client) Analyze(ctx context.Context, req serve.AnalyzeRequest) (*serve.AnalyzeResponse, error) {
	var out serve.AnalyzeResponse
	err := c.call(ctx, http.MethodPost, "/v1/analyze", func() ([]byte, error) {
		r := req
		propagateDeadline(ctx, &r.TimeoutMs)
		return json.Marshal(&r)
	}, &out, true)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// AnalyzeBatch evaluates up to the server's max-batch requests in one
// call; the response preserves input order.
func (c *Client) AnalyzeBatch(ctx context.Context, req serve.BatchRequest) (*serve.BatchResponse, error) {
	var out serve.BatchResponse
	err := c.call(ctx, http.MethodPost, "/v1/analyze/batch", func() ([]byte, error) {
		r := req
		propagateDeadline(ctx, &r.TimeoutMs)
		return json.Marshal(&r)
	}, &out, false)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// DSE runs a bounded design-space sweep for one layer.
func (c *Client) DSE(ctx context.Context, req serve.DSERequest) (*serve.DSEResponse, error) {
	var out serve.DSEResponse
	err := c.call(ctx, http.MethodPost, "/v1/dse", func() ([]byte, error) {
		r := req
		propagateDeadline(ctx, &r.TimeoutMs)
		return json.Marshal(&r)
	}, &out, false)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Fusion runs a graph-level fusion sweep for one zoo model.
func (c *Client) Fusion(ctx context.Context, req serve.FusionRequest) (*serve.FusionResponse, error) {
	var out serve.FusionResponse
	err := c.call(ctx, http.MethodPost, "/v1/fusion", func() ([]byte, error) {
		r := req
		propagateDeadline(ctx, &r.TimeoutMs)
		return json.Marshal(&r)
	}, &out, false)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Models lists the server's model zoo, dataflow names, and hardware
// presets.
func (c *Client) Models(ctx context.Context) (*serve.ModelsResponse, error) {
	var out serve.ModelsResponse
	err := c.call(ctx, http.MethodGet, "/v1/models", nil, &out, true)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// TraceSegments fetches one distributed trace's span segments buffered
// on the server (GET /debug/trace/segments?trace=...). The trace ID is
// the capability: only the coordinator that minted it can name it.
func (c *Client) TraceSegments(ctx context.Context, traceID string) (*serve.SegmentsResponse, error) {
	var out serve.SegmentsResponse
	err := c.call(ctx, http.MethodGet, "/debug/trace/segments?trace="+url.QueryEscape(traceID), nil, &out, true)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsText scrapes the server's /metrics endpoint and returns the
// raw Prometheus text exposition, for federation by a coordinator.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	var raw []byte
	if err := c.call(ctx, http.MethodGet, "/metrics", nil, &raw, true); err != nil {
		return "", err
	}
	return string(raw), nil
}

// Healthz performs a single readiness probe (GET /healthz) and returns
// the raw status code. It deliberately bypasses the retry loop, the
// hedger, and the circuit breaker: a probe is a question about the
// node's state, and asking it must neither mask an unhealthy answer
// behind retries nor pollute the breaker that guards real traffic. A
// non-2xx code is returned with a nil error; the error is non-nil only
// when no HTTP exchange completed at all.
func (c *Client) Healthz(ctx context.Context) (int, error) {
	res, err := c.roundTrip(ctx, http.MethodGet, "/healthz", nil, 0, false)
	if err != nil {
		return 0, err
	}
	return res.status, nil
}

// Status performs a single liveness probe (GET /v1/status) and decodes
// the node's status document. Like Healthz it bypasses retries and the
// breaker entirely.
func (c *Client) Status(ctx context.Context) (*serve.StatusResponse, error) {
	res, err := c.roundTrip(ctx, http.MethodGet, "/v1/status", nil, 0, false)
	if err != nil {
		return nil, err
	}
	if res.status != http.StatusOK {
		return nil, &APIError{Status: res.status, Message: errorMessage(res.body), RequestID: res.requestID}
	}
	var out serve.StatusResponse
	if err := json.Unmarshal(res.body, &out); err != nil {
		return nil, fmt.Errorf("client: decoding status: %w", err)
	}
	return &out, nil
}

// propagateDeadline fills *ms with the context's remaining budget when
// the caller did not set one, so the server's queue-deadline shedding
// and per-request timeout see the true deadline. Re-evaluated on every
// retry: the budget shrinks as attempts burn it.
func propagateDeadline(ctx context.Context, ms *int) {
	if *ms != 0 {
		return
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	rem := time.Until(dl).Milliseconds()
	if rem < 1 {
		rem = 1
	}
	*ms = int(rem)
}

// retryableStatus reports whether a status code is worth re-attempting:
// backpressure (429), injected/transient server faults (500, 502), and
// unavailability (503, 504). Everything else in the 4xx range is the
// caller's mistake and terminal.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// maxErrBody caps how much of an error body the client reads.
const maxErrBody = 1 << 20

// maxRespBody caps success bodies (DSE responses can run to megabytes).
const maxRespBody = 64 << 20

// attemptResult is one fully-consumed HTTP exchange.
type attemptResult struct {
	status    int
	header    http.Header
	body      []byte
	requestID string
}

// call runs the retry loop: breaker gate, exchange (hedged when asked),
// classification, jittered ctx-aware backoff. Every return is a
// terminal verdict: a decoded response, an *APIError, a breaker/
// exhaustion error, or the context's own error.
func (c *Client) call(ctx context.Context, method, path string, mkBody func() ([]byte, error), out any, idempotent bool) error {
	br := c.breakerFor(c.base.Host)
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return c.terminal(err, lastErr)
		}
		if attempt > 0 {
			c.retries.Add(1)
		}
		res, err := c.attemptOnce(ctx, br, method, path, mkBody, idempotent, attempt)
		var hint time.Duration
		switch {
		case err == nil && res.status == http.StatusOK:
			switch dst := out.(type) {
			case nil:
			case *[]byte:
				// Raw (non-JSON) endpoints, e.g. the /metrics text format.
				*dst = res.body
			default:
				if derr := json.Unmarshal(res.body, out); derr != nil {
					return fmt.Errorf("client: decoding %s response: %w", path, derr)
				}
			}
			return nil
		case err == nil:
			apiErr := &APIError{
				Status:    res.status,
				Message:   errorMessage(res.body),
				RequestID: res.requestID,
			}
			if !retryableStatus(res.status) {
				return apiErr
			}
			hint = retryAfterHint(&http.Response{Header: res.header})
			lastErr = apiErr
		default:
			// Context errors are the caller's verdict, not the server's.
			if ctx.Err() != nil {
				return c.terminal(ctx.Err(), lastErr)
			}
			lastErr = err
		}
		if attempt == c.opts.MaxAttempts-1 {
			break
		}
		if !sleepCtx(ctx, c.bo.delay(attempt, hint)) {
			return c.terminal(ctx.Err(), lastErr)
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrExhausted, c.opts.MaxAttempts, lastErr)
}

// terminal shapes a context-abort verdict, attaching the last transport
// or server error when one exists.
func (c *Client) terminal(ctxErr, lastErr error) error {
	if lastErr != nil {
		return fmt.Errorf("client: %w (last attempt error: %w)", ctxErr, lastErr)
	}
	return fmt.Errorf("client: %w", ctxErr)
}

// attemptOnce runs one breaker-gated exchange (hedged when enabled and
// idempotent) and records the outcome with the breaker.
func (c *Client) attemptOnce(ctx context.Context, br *breaker, method, path string, mkBody func() ([]byte, error), idempotent bool, attempt int) (*attemptResult, error) {
	if !br.Allow() {
		c.breakerRejected.Add(1)
		return nil, fmt.Errorf("%w: host %s", ErrCircuitOpen, br.host)
	}
	var payload []byte
	if mkBody != nil {
		var err error
		payload, err = mkBody()
		if err != nil {
			br.Success() // local marshalling says nothing about the server
			return nil, fmt.Errorf("client: encoding %s request: %w", path, err)
		}
	}
	var res *attemptResult
	var err error
	if idempotent && c.opts.Hedge > 0 {
		res, err = c.roundTripHedged(ctx, method, path, payload, attempt)
	} else {
		res, err = c.roundTrip(ctx, method, path, payload, attempt, false)
	}
	switch {
	case err != nil:
		if ctx.Err() == nil {
			// A transport-level failure with a live context is the
			// server's (or network's) fault.
			br.Failure()
		}
	case res.status >= 500:
		br.Failure()
	default:
		// 2xx–4xx means the server is alive and reasoning; 429 in
		// particular is healthy backpressure, not breaker fodder.
		br.Success()
	}
	return res, err
}

// roundTrip runs one exchange and fully consumes the body, so hedged
// siblings can be cancelled without tearing a body read out from under
// the winner's caller. Each exchange gets its own client.attempt span —
// retries and hedges are separate spans tagged with their attempt
// number and target host — whose ID is what the remote side parents
// under, and whose start/end bracket the exchange for clock-skew
// correction during trace assembly.
func (c *Client) roundTrip(ctx context.Context, method, path string, payload []byte, attempt int, hedged bool) (*attemptResult, error) {
	c.attempts.Add(1)
	u := *c.base
	p := path
	if i := strings.IndexByte(p, '?'); i >= 0 {
		u.RawQuery = p[i+1:]
		p = p[:i]
	}
	u.Path = strings.TrimRight(u.Path, "/") + p
	sctx, span := obs.Start(ctx, "client.attempt",
		obs.String("host", u.Host), obs.String("path", p),
		obs.Int("attempt", attempt), obs.Bool("hedged", hedged))
	defer span.End()
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), body)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", c.opts.UserAgent)
	if id := requestIDFrom(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	// Propagate the trace context so the server's spans parent under
	// this attempt's span. No-op when tracing is off.
	obs.Inject(sctx, req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		span.SetAttr(obs.String("error", err.Error()))
		return nil, err
	}
	defer resp.Body.Close()
	span.SetAttr(obs.Int("status", resp.StatusCode))
	limit := int64(maxErrBody)
	if resp.StatusCode == http.StatusOK {
		limit = maxRespBody
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	return &attemptResult{
		status:    resp.StatusCode,
		header:    resp.Header,
		body:      b,
		requestID: resp.Header.Get("X-Request-ID"),
	}, nil
}

// roundTripHedged races the primary exchange against a second one
// launched after the hedge delay. The first completed exchange wins;
// the straggler's context is cancelled on return.
func (c *Client) roundTripHedged(ctx context.Context, method, path string, payload []byte, attempt int) (*attemptResult, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		r   *attemptResult
		err error
	}
	ch := make(chan res, 2)
	launch := func(hedge bool) {
		r, err := c.roundTrip(hctx, method, path, payload, attempt, hedge)
		ch <- res{r, err}
	}
	go launch(false)
	inflight := 1
	hedged := false
	timer := time.NewTimer(c.opts.Hedge)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				return r.r, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				inflight++
				c.hedges.Add(1)
				go launch(true)
			}
		}
	}
}

// errorMessage extracts the server's {"error": ...} body, falling back
// to the raw text.
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// sleepCtx waits d or until ctx is done; reports whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
