package client

import (
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// backoff computes per-retry sleep intervals: full-jittered exponential
// growth (sleep ~ U[base/2, base·2ⁿ]) capped at max, with server
// Retry-After hints acting as a floor — a server that says "come back
// in 2s" is never hammered sooner just because the local schedule said
// 80ms. The rand stream is seeded for reproducible chaos runs and
// mutex-protected (calls retry concurrently).
type backoff struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(base, max time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if max < base {
		max = base
	}
	if seed == 0 {
		seed = rand.Int63()
	}
	return &backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// delay returns the sleep before retry number `retry` (0-based),
// honoring a server hint.
func (b *backoff) delay(retry int, hint time.Duration) time.Duration {
	ceil := b.base << uint(retry)
	if ceil > b.max || ceil <= 0 { // <= 0: shift overflow
		ceil = b.max
	}
	lo := b.base / 2
	if lo < time.Millisecond {
		lo = time.Millisecond
	}
	if ceil < lo {
		ceil = lo
	}
	b.mu.Lock()
	d := lo + time.Duration(b.rng.Int63n(int64(ceil-lo)+1))
	b.mu.Unlock()
	if hint > d {
		d = hint
	}
	return d
}

// maxRetryAfter bounds how long a server hint can stall the client; a
// buggy or hostile `Retry-After: 86400` must not freeze callers.
const maxRetryAfter = 30 * time.Second

// retryAfterHint parses a Retry-After header (delta-seconds or
// HTTP-date), returning 0 when absent or unparseable.
func retryAfterHint(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		d := time.Duration(secs) * time.Second
		if d > maxRetryAfter {
			d = maxRetryAfter
		}
		return d
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d < 0 {
			return 0
		}
		if d > maxRetryAfter {
			d = maxRetryAfter
		}
		return d
	}
	return 0
}
