package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// headerLog captures each request's propagation headers server-side.
type headerLog struct {
	mu   sync.Mutex
	seen []http.Header
}

func (h *headerLog) add(r *http.Request) {
	h.mu.Lock()
	h.seen = append(h.seen, r.Header.Clone())
	h.mu.Unlock()
}

func (h *headerLog) all() []http.Header {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]http.Header(nil), h.seen...)
}

// TestAttemptSpansAndHeaderInjection is the client half of trace
// propagation: under a recorder, every HTTP exchange gets its own
// client.attempt span, each tagged with the attempt number and host,
// and carries a traceparent naming that span — so the server's spans
// parent under the exact attempt that reached it, retries included.
func TestAttemptSpansAndHeaderInjection(t *testing.T) {
	var hl headerLog
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hl.add(r)
		calls++
		if calls == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write(okBody(t)) //nolint:errcheck
	}))
	defer ts.Close()
	c := mustClient(t, fastOpts(ts.URL))

	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	ctx, root := obs.Start(ctx, "test.root")
	if _, err := c.Analyze(ctx, analyzeReq()); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	root.End()

	var attempts []obs.SpanRecord
	for _, s := range rec.Snapshot() {
		if s.Name == "client.attempt" {
			attempts = append(attempts, s)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("recorded %d client.attempt spans, want 2 (one per exchange)", len(attempts))
	}
	for i, s := range attempts {
		if n, _ := s.Attr("attempt"); n != map[int]string{0: "0", 1: "1"}[i] {
			t.Errorf("attempt %d span attr attempt=%q", i, n)
		}
		if h, _ := s.Attr("host"); h == "" {
			t.Errorf("attempt %d span missing host attr", i)
		}
		if s.TraceID != root.TraceID() {
			t.Errorf("attempt %d trace %q, want root's %q", i, s.TraceID, root.TraceID())
		}
	}
	if st, _ := attempts[0].Attr("status"); st != "503" {
		t.Errorf("first attempt status attr = %q, want 503", st)
	}
	if st, _ := attempts[1].Attr("status"); st != "200" {
		t.Errorf("second attempt status attr = %q, want 200", st)
	}

	// Each wire exchange carried a traceparent naming its own attempt
	// span, in order.
	headers := hl.all()
	if len(headers) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(headers))
	}
	for i, h := range headers {
		tc, ok := obs.ParseTraceparent(h.Get("traceparent"))
		if !ok {
			t.Fatalf("exchange %d traceparent %q unparsable", i, h.Get("traceparent"))
		}
		if tc.TraceID != root.TraceID() {
			t.Errorf("exchange %d trace %q, want %q", i, tc.TraceID, root.TraceID())
		}
		if tc.SpanID != attempts[i].ID {
			t.Errorf("exchange %d parented under span %d, want attempt span %d", i, tc.SpanID, attempts[i].ID)
		}
	}
}

func TestNoHeadersWhenTracingOff(t *testing.T) {
	var hl headerLog
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hl.add(r)
		w.Write(okBody(t)) //nolint:errcheck
	}))
	defer ts.Close()
	c := mustClient(t, fastOpts(ts.URL))
	if _, err := c.Analyze(context.Background(), analyzeReq()); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	h := hl.all()[0]
	if v := h.Get("traceparent"); v != "" {
		t.Errorf("untraced call sent traceparent %q", v)
	}
	if v := h.Get("X-Request-ID"); v != "" {
		t.Errorf("call without WithRequestID sent X-Request-ID %q", v)
	}
}

func TestWithRequestIDHeader(t *testing.T) {
	var hl headerLog
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hl.add(r)
		w.Write(okBody(t)) //nolint:errcheck
	}))
	defer ts.Close()
	c := mustClient(t, fastOpts(ts.URL))
	ctx := WithRequestID(context.Background(), "sweep-abc123")
	if _, err := c.Analyze(ctx, analyzeReq()); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if got := hl.all()[0].Get("X-Request-ID"); got != "sweep-abc123" {
		t.Errorf("X-Request-ID = %q, want sweep-abc123", got)
	}
}

func TestTraceSegmentsAndQueryString(t *testing.T) {
	traceID := obs.NewTraceID()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/trace/segments" {
			t.Errorf("path = %q", r.URL.Path)
		}
		if got := r.URL.Query().Get("trace"); got != traceID {
			t.Errorf("trace query = %q, want %q", got, traceID)
		}
		w.Write([]byte(`{"trace_id":"` + traceID + `","node":"n0","dropped":1,"spans":[{"id":7,"track":7,"name":"http.request","start_unix_ns":1,"end_unix_ns":2}]}`)) //nolint:errcheck
	}))
	defer ts.Close()
	c := mustClient(t, fastOpts(ts.URL))
	seg, err := c.TraceSegments(context.Background(), traceID)
	if err != nil {
		t.Fatalf("TraceSegments: %v", err)
	}
	if seg.Node != "n0" || seg.Dropped != 1 || len(seg.Spans) != 1 || seg.Spans[0].Name != "http.request" {
		t.Errorf("unexpected segments response: %+v", seg)
	}
}

func TestMetricsText(t *testing.T) {
	const exposition = "# TYPE maestro_requests_total counter\nmaestro_requests_total 5\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			t.Errorf("path = %q", r.URL.Path)
		}
		w.Write([]byte(exposition)) //nolint:errcheck
	}))
	defer ts.Close()
	c := mustClient(t, fastOpts(ts.URL))
	text, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatalf("MetricsText: %v", err)
	}
	if text != exposition {
		t.Errorf("MetricsText = %q, want raw exposition", text)
	}
}

func TestTraceSegmentsAgainstRealServer(t *testing.T) {
	// End-to-end against a real serve.Server: trace a request, then
	// pull its segments through the typed client method.
	s := serve.New(serve.Options{Workers: 1, NodeName: "real"})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	c := mustClient(t, fastOpts(ts.URL))

	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	ctx, root := obs.Start(ctx, "test.root")
	if _, err := c.Analyze(ctx, analyzeReq()); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	root.End()

	seg, err := c.TraceSegments(context.Background(), root.TraceID())
	if err != nil {
		t.Fatalf("TraceSegments: %v", err)
	}
	if seg.Node != "real" || len(seg.Spans) == 0 {
		t.Fatalf("segments = node %q, %d spans; want node real with spans", seg.Node, len(seg.Spans))
	}
}
