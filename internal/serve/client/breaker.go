package client

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen reports a call refused locally because the target
// host's circuit breaker is open: recent calls failed consecutively and
// the cooldown has not elapsed, so the client fails fast instead of
// piling more load onto a struggling server.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes calls through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails calls fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits one probe call; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerOptions configures the per-host circuit breaker.
type BreakerOptions struct {
	// Disabled turns the breaker off entirely.
	Disabled bool
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects calls before
	// admitting a half-open probe (default 1s).
	Cooldown time.Duration
	// SuccessThreshold is the consecutive half-open probe successes
	// required to close again (default 1).
	SuccessThreshold int
	// OnStateChange observes transitions (for logs, metrics, and the
	// chaos harness). Called outside the breaker lock, in call order.
	OnStateChange func(host string, from, to BreakerState)
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold == 0 {
		o.FailureThreshold = 5
	}
	if o.Cooldown == 0 {
		o.Cooldown = time.Second
	}
	if o.SuccessThreshold == 0 {
		o.SuccessThreshold = 1
	}
	return o
}

// breaker is one host's circuit breaker. The zero value is not usable;
// build with newBreaker.
type breaker struct {
	opts BreakerOptions
	host string

	mu        sync.Mutex
	state     BreakerState
	fails     int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	openedAt  time.Time // when the breaker last opened
	probing   bool      // a half-open probe is in flight
}

func newBreaker(host string, opts BreakerOptions) *breaker {
	return &breaker{opts: opts.withDefaults(), host: host}
}

// transitionLocked moves to next and returns the notification thunk to
// run after the lock is released (the callback may call back into the
// breaker or client).
func (b *breaker) transitionLocked(next BreakerState) func() {
	from := b.state
	if from == next {
		return nil
	}
	b.state = next
	switch next {
	case BreakerOpen:
		b.openedAt = time.Now()
		b.probing = false
	case BreakerHalfOpen:
		b.successes = 0
		b.probing = false
	case BreakerClosed:
		b.fails = 0
		b.successes = 0
		b.probing = false
	}
	if cb := b.opts.OnStateChange; cb != nil {
		host := b.host
		return func() { cb(host, from, next) }
	}
	return nil
}

// Allow reports whether a call may proceed. In the half-open state only
// one probe is admitted at a time; concurrent calls fail fast until the
// probe resolves.
func (b *breaker) Allow() bool {
	if b.opts.Disabled {
		return true
	}
	var notify func()
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.opts.Cooldown {
			b.mu.Unlock()
			return false
		}
		notify = b.transitionLocked(BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		if b.probing {
			b.mu.Unlock()
			if notify != nil {
				notify()
			}
			return false
		}
		b.probing = true
		b.mu.Unlock()
		if notify != nil {
			notify()
		}
		return true
	}
	b.mu.Unlock()
	return true
}

// Success records a call that reached the server and got a healthy
// answer.
func (b *breaker) Success() {
	if b.opts.Disabled {
		return
	}
	var notify func()
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= b.opts.SuccessThreshold {
			notify = b.transitionLocked(BreakerClosed)
		}
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Failure records a server-fault outcome (5xx or transport error).
func (b *breaker) Failure() {
	if b.opts.Disabled {
		return
	}
	var notify func()
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.opts.FailureThreshold {
			notify = b.transitionLocked(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.probing = false
		notify = b.transitionLocked(BreakerOpen)
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// State returns the current position (transparently rolling an expired
// open period over to half-open is left to Allow).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
