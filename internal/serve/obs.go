package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// This file is the service's request-scoped observability: X-Request-ID
// generation/propagation, slog access logs, the tracing middleware that
// roots every request's span tree, and the GET /debug/trace capture
// endpoint that records a window of live traffic as Chrome trace JSON.

type requestIDKey struct{}

// RequestIDFrom returns the request ID the middleware stored in ctx
// (empty outside a request).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// requestID echoes a client-supplied X-Request-ID (sanitized) or
// generates a fresh one.
func requestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Request-ID")); id != "" {
		if len(id) > 64 {
			id = id[:64]
		}
		if !strings.ContainsAny(id, "\n\r\"\\") {
			return id
		}
	}
	var b [8]byte
	rand.Read(b[:]) //nolint:errcheck // never fails per crypto/rand docs
	return hex.EncodeToString(b[:])
}

// endpointOf maps a request path to its metrics label.
func endpointOf(path string) string {
	switch path {
	case "/v1/analyze":
		return "analyze"
	case "/v1/analyze/batch":
		return "batch"
	case "/v1/dse":
		return "dse"
	case "/v1/models":
		return "models"
	case "/v1/status":
		return "status"
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	case "/debug/trace":
		return "debug_trace"
	case "/debug/trace/segments":
		return "trace_segments"
	}
	return "other"
}

// statusWriter records the response status for access logs and spans.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the route mux with the request-scoped observability:
// it assigns the request ID, extracts the distributed trace context (a
// sanitized traceparent header, buffered into the segment store),
// attaches the live capture recorder (if a /debug/trace window is
// open), roots the span tree, and emits one structured access-log line
// per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := requestID(r)
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		capRec := s.capture.Load()
		// Trace-context propagation: a valid traceparent header parents
		// this request's spans under the remote caller's span and — when
		// the segment store is on — buffers them for the coordinator to
		// pull. Extract is strict; a malformed header is ignored (the
		// request proceeds untraced), mirroring X-Request-ID sanitizing.
		var segRec *obs.Recorder
		tc, traced := obs.Extract(r.Header)
		if traced {
			ctx = obs.ContextWithRemote(ctx, tc)
			if s.segments != nil {
				segRec = s.segments.NewRecorder(obs.WithLimit(s.segments.MaxSpans()))
				ctx = obs.WithRecorder(ctx, segRec)
			}
		}
		if segRec == nil && capRec != nil {
			ctx = obs.WithRecorder(ctx, capRec)
		}
		// Baggage: every span under this request — including ones
		// recorded inside DSE workers — carries the request ID.
		ctx = obs.ContextWithAttrs(ctx, obs.String("request_id", id))
		ctx, span := obs.Start(ctx, "http.request",
			obs.String("method", r.Method), obs.String("path", r.URL.Path))
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		span.SetAttr(obs.Int("status", sw.status))
		span.End()
		if segRec != nil {
			spans := segRec.Snapshot()
			s.segments.Add(tc.TraceID, spans, segRec.Dropped())
			if capRec != nil {
				// A capture window stays complete even while segment
				// recording diverts the traced request's spans.
				capRec.Merge(spans)
			}
		}
		s.endpointSeconds.With(endpointOf(r.URL.Path)).Observe(elapsed.Seconds())
		lvl := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			lvl = slog.LevelDebug // scrape noise
		}
		s.log.LogAttrs(ctx, lvl, "http_request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("dur", elapsed))
	})
}

// maxCaptureSeconds caps one /debug/trace window.
const maxCaptureSeconds = 60

// DebugTraceHandler returns the trace-capture endpoint as a standalone
// handler, for mounting on a private debug listener (maestro-serve puts
// it on the -pprof address). The endpoint captures traffic from the
// main API regardless of which listener serves it; Options.DebugTrace
// additionally exposes it on the API handler itself.
func (s *Server) DebugTraceHandler() http.Handler {
	return http.HandlerFunc(s.handleDebugTrace)
}

// handleDebugTrace records spans from every request for ?sec=N seconds
// (default 1, cap 60) and responds with the Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto. One capture runs at a time;
// a second concurrent capture is answered 409.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.requests.With("debug_trace").Inc()
	sec := 1.0
	if q := r.URL.Query().Get("sec"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v <= 0 {
			s.writeError(w, r, badRequestf("sec must be a positive number, got %q", q))
			return
		}
		sec = v
	}
	if sec > maxCaptureSeconds {
		sec = maxCaptureSeconds
	}
	rec := obs.NewRecorder()
	if !s.capture.CompareAndSwap(nil, rec) {
		s.writeError(w, r, &httpError{status: http.StatusConflict,
			msg: "a trace capture is already in progress"})
		return
	}
	select {
	case <-r.Context().Done():
	case <-time.After(time.Duration(sec * float64(time.Second))):
	}
	s.capture.CompareAndSwap(rec, nil)
	s.responses.With(strconv.Itoa(http.StatusOK)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="maestro-trace.json"`)
	rec.WriteTrace(w) //nolint:errcheck // client went away
}

// SegmentsResponse is the body of GET /debug/trace/segments: one node's
// buffered span segments for a single distributed trace.
type SegmentsResponse struct {
	TraceID string         `json:"trace_id"`
	Node    string         `json:"node"`
	Dropped int64          `json:"dropped"`
	Spans   []obs.SpanJSON `json:"spans"`
}

// SegmentsHandler returns the segment-pull endpoint as a standalone
// handler for a private debug listener. The endpoint is also mounted on
// the API handler: unlike /debug/trace (which captures arbitrary
// traffic and so lives behind -pprof), fetching segments requires the
// exact 128-bit trace ID, which only the coordinator that minted it
// knows — the URL is its own capability.
func (s *Server) SegmentsHandler() http.Handler {
	return http.HandlerFunc(s.handleTraceSegments)
}

// handleTraceSegments serves one trace's buffered spans by ID. The
// trace parameter is validated as strictly as an incoming traceparent:
// exactly 32 lowercase hex characters.
func (s *Server) handleTraceSegments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.requests.With("trace_segments").Inc()
	if s.segments == nil {
		s.writeError(w, r, &httpError{status: http.StatusNotFound,
			msg: "trace segment store is disabled"})
		return
	}
	id := r.URL.Query().Get("trace")
	if !obs.ValidTraceID(id) {
		s.writeError(w, r, badRequestf("trace must be 32 lowercase hex characters, got %q", id))
		return
	}
	spans, dropped, ok := s.segments.Get(id)
	if !ok {
		s.writeError(w, r, &httpError{status: http.StatusNotFound,
			msg: "no segments buffered for trace " + id})
		return
	}
	s.writeJSON(w, http.StatusOK, SegmentsResponse{
		TraceID: id,
		Node:    s.opts.NodeName,
		Dropped: dropped,
		Spans:   obs.SpansToJSON(spans),
	})
}
