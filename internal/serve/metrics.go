package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a minimal in-process metrics registry rendering the
// Prometheus text exposition format, stdlib only. It supports counters,
// gauges, histograms, labelled counter families, and func-backed
// metrics that sample a live value (queue depth, cache counters) at
// scrape time.

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n geometric bucket bounds starting at lo.
func ExpBuckets(lo, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := lo
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// CounterVec is a counter family keyed by one label's value; children
// are created on demand and rendered in sorted label order.
type CounterVec struct {
	label string
	mu    sync.Mutex
	kids  map[string]*Counter
}

// With returns the child counter for a label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[value]
	if !ok {
		c = &Counter{}
		v.kids[value] = c
	}
	return c
}

// HistogramVec is a histogram family keyed by one label's value;
// children are created on demand and rendered in sorted label order.
type HistogramVec struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	kids   map[string]*Histogram
}

// With returns the child histogram for a label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[value]
	if !ok {
		h = &Histogram{bounds: v.bounds, counts: make([]atomic.Int64, len(v.bounds)+1)}
		v.kids[value] = h
	}
	return h
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type family struct {
	name, help string
	kind       metricKind

	counter    *Counter
	counterFn  func() int64
	gauge      *Gauge
	gaugeFn    func() int64
	histogram  *Histogram
	vec        *CounterVec
	histVec    *HistogramVec
	infoLabels string // preformatted k="v",... for a constant info gauge
}

// Registry holds metric families and renders them in registration
// order, so /metrics output is deterministic.
type Registry struct {
	mu       sync.Mutex
	families []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(f *family) {
	r.mu.Lock()
	r.families = append(r.families, f)
	r.mu.Unlock()
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewCounterFunc registers a counter whose value is sampled at scrape
// time (for counts owned by another component, e.g. the cache).
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, kind: kindCounter, counterFn: fn})
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewGaugeFunc registers a gauge sampled at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// NewInfoGauge registers a constant gauge of value 1 whose labels carry
// build/identity metadata (the maestro_build_info idiom). Labels render
// in the given order.
func (r *Registry) NewInfoGauge(name, help string, labels ...[2]string) {
	parts := make([]string, 0, len(labels))
	for _, kv := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", kv[0], kv[1]))
	}
	r.add(&family{name: name, help: help, kind: kindGauge,
		infoLabels: strings.Join(parts, ",")})
}

// NewHistogram registers and returns a histogram with the given bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.add(&family{name: name, help: help, kind: kindHistogram, histogram: h})
	return h
}

// NewCounterVec registers a counter family split by one label.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, kids: map[string]*Counter{}}
	r.add(&family{name: name, help: help, kind: kindCounter, vec: v})
	return v
}

// NewHistogramVec registers a histogram family split by one label.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{label: label, bounds: bounds, kids: map[string]*Histogram{}}
	r.add(&family{name: name, help: help, kind: kindHistogram, histVec: v})
	return v
}

// Render writes the Prometheus text exposition of every family.
func (r *Registry) Render() string {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ)
		switch {
		case f.infoLabels != "":
			fmt.Fprintf(&b, "%s{%s} 1\n", f.name, f.infoLabels)
		case f.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.counter.Value())
		case f.counterFn != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.counterFn())
		case f.gauge != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.gauge.Value())
		case f.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.gaugeFn())
		case f.vec != nil:
			f.vec.mu.Lock()
			vals := make([]string, 0, len(f.vec.kids))
			for v := range f.vec.kids {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", f.name, f.vec.label, v, f.vec.kids[v].Value())
			}
			f.vec.mu.Unlock()
		case f.histogram != nil:
			renderHistogram(&b, f.name, "", f.histogram)
		case f.histVec != nil:
			f.histVec.mu.Lock()
			vals := make([]string, 0, len(f.histVec.kids))
			for v := range f.histVec.kids {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				renderHistogram(&b, f.name,
					fmt.Sprintf("%s=%q", f.histVec.label, v), f.histVec.kids[v])
			}
			f.histVec.mu.Unlock()
		}
	}
	return b.String()
}

// renderHistogram writes one histogram's exposition lines; label is an
// optional preformatted `key="value"` pair merged into every line.
func renderHistogram(b *strings.Builder, name, label string, h *Histogram) {
	brace := func(extra string) string {
		switch {
		case label == "" && extra == "":
			return ""
		case label == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + label + "}"
		default:
			return "{" + label + "," + extra + "}"
		}
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, brace(fmt.Sprintf("le=%q", formatBound(bound))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, brace(`le="+Inf"`), cum)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, brace(""), h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, brace(""), h.Count())
}

func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
