// Chaos/soak harness: N concurrent resilient clients hammer an
// in-process server with injected faults, proving that every request
// ends in a terminal verdict, retries converge, the circuit breaker
// walks its full state cycle during a blackout, and goroutine/FD
// counts return to baseline after drain. External test package on
// purpose: the client imports serve, so this is the only side of the
// fence both can be seen from.
package serve_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// soakRequest builds the i-th analyze request: channel counts vary so
// the cache sees distinct keys, and odd indices bypass the cache to
// keep the worker pool loaded.
func soakRequest(i int) serve.AnalyzeRequest {
	return serve.AnalyzeRequest{
		Layer: serve.LayerSpec{
			Op: "CONV2D", K: 16 + 16*(i%8), C: 16, Y: 18, X: 18, R: 3, S: 3,
		},
		Dataflow: serve.DataflowSpec{Name: "KC-P"},
		HW:       serve.HWSpec{Preset: "MAERI64"},
		NoCache:  i%2 == 1,
	}
}

// terminalVerdict classifies a client error as one of the allowed
// terminal outcomes; anything else is a harness failure.
func terminalVerdict(err error) (string, bool) {
	var apiErr *client.APIError
	switch {
	case err == nil:
		return "ok", true
	case errors.Is(err, client.ErrExhausted):
		return "exhausted", true
	case errors.Is(err, client.ErrCircuitOpen):
		return "breaker", true
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "ctx", true
	case errors.As(err, &apiErr):
		return fmt.Sprintf("api-%d", apiErr.Status), true
	}
	return err.Error(), false
}

// metricValue scrapes one sample (exact exposition line prefix,
// labels included) from the server's /metrics endpoint.
func metricValue(t *testing.T, baseURL, sample string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, sample+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimPrefix(line, sample+" "), 10, 64)
		if err != nil {
			t.Fatalf("parse sample %q: %v", line, err)
		}
		return v
	}
	return 0
}

// countFDs reports open file descriptors via /proc (linux); -1 when
// that view is unavailable.
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak harness skipped in -short mode")
	}
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := countFDs()

	s := serve.New(serve.Options{
		Workers:    4,
		QueueDepth: 128,
		Chaos: serve.Chaos{
			ErrorRate:     0.05,
			Latency:       100 * time.Microsecond,
			LatencyJitter: 2 * time.Millisecond,
			Seed:          42,
		},
	})
	ts := httptest.NewServer(s.Handler())

	// ---- Phase 1: soak. Six clients, mixed analyze/batch/models
	// traffic, 5% injected 500s and jittered latency. Every call must
	// land on a terminal verdict.
	const nClients = 6
	const perClient = 25

	clients := make([]*client.Client, nClients)
	for i := range clients {
		opts := client.Options{
			BaseURL:     ts.URL,
			MaxAttempts: 5,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			Seed:        int64(i + 1),
			Breaker:     client.BreakerOptions{FailureThreshold: 10, Cooldown: 50 * time.Millisecond},
		}
		if i == 0 {
			// One hedging client keeps the racing code path under -race.
			opts.Hedge = 5 * time.Millisecond
		}
		c, err := client.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}

	var mu sync.Mutex
	verdicts := map[string]int{}
	var wg sync.WaitGroup
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *client.Client) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				var err error
				switch {
				case i%6 == 5:
					_, err = c.AnalyzeBatch(ctx, serve.BatchRequest{Requests: []serve.AnalyzeRequest{
						soakRequest(i), soakRequest(i + 1), soakRequest(i + 2),
					}})
				case i%7 == 6:
					_, err = c.Models(ctx)
				default:
					_, err = c.Analyze(ctx, soakRequest(ci*perClient+i))
				}
				cancel()
				verdict, terminal := terminalVerdict(err)
				mu.Lock()
				verdicts[verdict]++
				mu.Unlock()
				if !terminal {
					t.Errorf("client %d call %d: non-terminal error: %v", ci, i, err)
				}
			}
		}(ci, c)
	}
	wg.Wait()

	total := nClients * perClient
	if got := verdicts["ok"]; got < total*95/100 {
		t.Fatalf("soak success %d/%d below 95%% (verdicts: %v)", got, total, verdicts)
	}
	t.Logf("soak verdicts: %v", verdicts)

	var totalRetries, totalHedges int64
	for _, c := range clients {
		st := c.Stats()
		totalRetries += st.Retries
		totalHedges += st.Hedges
	}
	injected := metricValue(t, ts.URL, `maestro_chaos_injected_total{kind="error"}`)
	if injected == 0 {
		t.Error("chaos injected no errors over the soak; ErrorRate plumbing is broken")
	}
	if injected > 0 && totalRetries == 0 {
		t.Errorf("server injected %d errors but clients recorded zero retries", injected)
	}
	t.Logf("injected=%d retries=%d hedges=%d", injected, totalRetries, totalHedges)

	// ---- Phase 2: blackout. Every request fails; the breaker must
	// open and start rejecting locally.
	s.SetChaos(serve.Chaos{ErrorRate: 1.0, Seed: 7})

	var transMu sync.Mutex
	var transitions []string
	bc, err := client.New(client.Options{
		BaseURL:     ts.URL,
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Seed:        99,
		Breaker: client.BreakerOptions{
			FailureThreshold: 3,
			Cooldown:         100 * time.Millisecond,
			OnStateChange: func(host string, from, to client.BreakerState) {
				transMu.Lock()
				transitions = append(transitions, from.String()+">"+to.String())
				transMu.Unlock()
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	sawBreakerVerdict := false
	for i := 0; i < 20 && bc.BreakerState() != client.BreakerOpen; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := bc.Analyze(ctx, soakRequest(i))
		cancel()
		if err == nil {
			t.Fatal("blackout phase: call succeeded with ErrorRate=1")
		}
		if errors.Is(err, client.ErrCircuitOpen) {
			sawBreakerVerdict = true
		}
	}
	if got := bc.BreakerState(); got != client.BreakerOpen {
		t.Fatalf("breaker state after blackout = %v, want open", got)
	}
	// One more call against the open breaker: must be rejected locally.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_, err = bc.Analyze(ctx, soakRequest(0))
	cancel()
	if !errors.Is(err, client.ErrCircuitOpen) {
		t.Fatalf("call against open breaker = %v, want ErrCircuitOpen", err)
	}
	sawBreakerVerdict = true
	if !sawBreakerVerdict || bc.Stats().BreakerRejected == 0 {
		t.Fatalf("breaker never rejected locally (stats: %+v)", bc.Stats())
	}

	// ---- Phase 3: recovery. Faults off, cooldown lapses, the
	// half-open probe succeeds and the breaker closes.
	s.SetChaos(serve.Chaos{})
	recovered := waitFor(5*time.Second, func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := bc.Analyze(ctx, soakRequest(3))
		cancel()
		return err == nil
	})
	if !recovered {
		t.Fatal("client never recovered after chaos was disabled")
	}
	if got := bc.BreakerState(); got != client.BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", got)
	}

	transMu.Lock()
	trace := strings.Join(transitions, " ")
	transMu.Unlock()
	for _, want := range []string{"closed>open", "open>half-open", "half-open>closed"} {
		if !strings.Contains(trace, want) {
			t.Errorf("breaker transitions %q missing %q", trace, want)
		}
	}

	shed := metricValue(t, ts.URL, "maestro_shed_total")
	t.Logf("breaker transitions: %s; shed_total=%d", trace, shed)

	// ---- Drain: close everything and verify goroutines and FDs
	// return to baseline.
	for _, c := range clients {
		c.CloseIdleConnections()
	}
	bc.CloseIdleConnections()
	ts.Close()
	s.Close()

	if !waitFor(10*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseGoroutines+3
	}) {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
			baseGoroutines, runtime.NumGoroutine(), buf[:n])
	}
	if baseFDs >= 0 {
		if !waitFor(10*time.Second, func() bool { return countFDs() <= baseFDs+3 }) {
			t.Fatalf("file descriptors leaked: baseline %d, now %d", baseFDs, countFDs())
		}
	}
}
