package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// shardBase is a small sweep the shard tests scope down.
func shardBase() DSERequest {
	return DSERequest{
		Layer:    LayerSpec{Model: "VGG16", Name: "CONV11"},
		Template: "KC-P",
		P1:       []int{16, 64},
		P2:       []int{8},
		PEs:      []int{64, 128, 256},
		BWs:      []float64{16, 32},
		L1Grid:   []int64{64, 4096},
		L2Grid:   []int64{1 << 14},
		TopK:     1 << 20,
	}
}

// TestDSEShardValidation pins the 400 seams of the shard descriptor:
// inverted and negative PE ranges, unknown mapping names, mapping
// subsets that exclude the sweep, and ranges selecting no PE count.
func TestDSEShardValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name  string
		shard DSEShard
		want  string
	}{
		{"inverted", DSEShard{PEMin: 256, PEMax: 64}, "inverted"},
		{"negative", DSEShard{PEMin: -1}, "negative"},
		{"unknown mapping", DSEShard{Mappings: []string{"KC-P", "WARP-9"}}, "unknown mapping"},
		{"excluding subset", DSEShard{Mappings: []string{"YR-P"}}, "exclude the sweep's template"},
		{"empty selection", DSEShard{PEMin: 1000, PEMax: 2000}, "selects none"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := shardBase()
			req.Shard = &tc.shard
			code, body := post(t, ts.URL+"/v1/dse", marshal(t, req))
			if code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400\n%s", code, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Fatalf("error body %q does not mention %q", body, tc.want)
			}
		})
	}
}

// TestDSEShardValidationTyped checks the seam below the handler: shard
// failures are errBadRequest-tagged, not ad-hoc strings.
func TestDSEShardValidationTyped(t *testing.T) {
	req := shardBase()
	req.Shard = &DSEShard{PEMin: 9, PEMax: 3}
	if _, err := buildSpace(req); !errors.Is(err, errBadRequest) {
		t.Fatalf("inverted shard error = %v, want errBadRequest", err)
	}
	req.Shard = &DSEShard{Mappings: []string{"nope"}}
	if _, err := buildSpace(req); !errors.Is(err, errBadRequest) {
		t.Fatalf("unknown mapping error = %v, want errBadRequest", err)
	}
}

// TestDSEShardScopesSweep checks that a shard-scoped request computes
// exactly the sub-space an explicitly restricted request computes, and
// that the two land in distinct cache entries from the full sweep.
func TestDSEShardScopesSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	sweep := func(req DSERequest) DSEResponse {
		t.Helper()
		code, body := post(t, ts.URL+"/v1/dse", marshal(t, req))
		if code != http.StatusOK {
			t.Fatalf("code = %d\n%s", code, body)
		}
		var out DSEResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		return out
	}

	sharded := shardBase()
	sharded.Shard = &DSEShard{Index: 1, Of: 3, PEMin: 128, PEMax: 256, Mappings: []string{"KC-P"}}
	got := sweep(sharded)

	explicit := shardBase()
	explicit.PEs = []int{128, 256}
	want := sweep(explicit)

	// Invoked is excluded: the shared profile cache makes the second
	// request's cluster walks cache hits.
	if got.Explored != want.Explored || got.Valid != want.Valid || got.Pricings != want.Pricings {
		t.Fatalf("shard stats diverge: got %+v want %+v", got, want)
	}
	if !reflect.DeepEqual(got.Pareto, want.Pareto) {
		t.Fatalf("shard Pareto diverges:\ngot  %+v\nwant %+v", got.Pareto, want.Pareto)
	}

	full := sweep(shardBase())
	if full.Key == got.Key {
		t.Fatal("shard request shares the full sweep's cache key")
	}
	if full.Explored <= got.Explored {
		t.Fatalf("full sweep explored %d <= shard's %d", full.Explored, got.Explored)
	}

	// Repeat shard requests hit the result cache.
	if again := sweep(sharded); !again.Cached {
		t.Fatal("repeat shard request missed the result cache")
	}
}

// TestDSEShardUnderCap checks the cap ordering: a sweep over the raw
// cap is refused, but a shard of it that fits is admitted.
func TestDSEShardUnderCap(t *testing.T) {
	huge := shardBase()
	huge.PEs = nil
	for pe := 16; pe <= 1024; pe += 16 {
		huge.PEs = append(huge.PEs, pe)
	}
	huge.P1 = []int{8, 16, 32, 64, 128, 256, 512}
	huge.P2 = []int{4, 8, 16, 32, 64}
	huge.BWs = []float64{1, 2, 4, 8, 16, 32, 64, 128}
	huge.L1Grid = nil // defaults: 11 points
	huge.L2Grid = nil // defaults: 11 points
	if _, err := buildSpace(huge); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("huge sweep err = %v, want raw-cap refusal", err)
	}
	shard := huge
	shard.P1 = []int{8}
	shard.Shard = &DSEShard{PEMin: 16, PEMax: 16}
	if _, err := buildSpace(shard); err != nil {
		t.Fatalf("shard of huge sweep refused: %v", err)
	}
}
