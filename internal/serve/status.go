package serve

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/core"
)

// This file is the service's identity surface: the build metadata
// behind the maestro_build_info gauge and the GET /v1/status endpoint
// that reports one node's health at a glance — uptime, pool depth,
// cache sizes, segment-store occupancy — without parsing /metrics.

// buildInfo reads the binary's embedded module metadata. Test binaries
// and devel builds report "(devel)"/"unknown" rather than failing.
func buildInfo() (version, goVersion, commit string) {
	version, goVersion, commit = "unknown", runtime.Version(), "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			commit = s.Value
		}
	}
	return
}

// StatusResponse is the body of GET /v1/status.
type StatusResponse struct {
	Node          string  `json:"node"`
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	Commit        string  `json:"commit"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Workers    int   `json:"workers"`
	QueueDepth int64 `json:"queue_depth"`
	QueueCap   int   `json:"queue_capacity"`
	Inflight   int64 `json:"inflight"`

	Cache        CacheStatus    `json:"cache"`
	ProfileCache CacheStatus    `json:"profile_cache"`
	Segments     SegmentsStatus `json:"trace_segments"`

	Evaluations int64 `json:"evaluations"`
	Rejected    int64 `json:"rejected"`
	Shed        int64 `json:"shed"`
	Timeouts    int64 `json:"timeouts"`

	ChaosEnabled bool `json:"chaos_enabled"`
	// Draining reports that graceful shutdown has begun: the node is
	// alive (this endpoint answered) but /healthz refuses readiness.
	Draining bool `json:"draining"`
}

// CacheStatus summarizes one cache's counters.
type CacheStatus struct {
	Entries   int64 `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
}

// SegmentsStatus summarizes the distributed-trace segment store.
type SegmentsStatus struct {
	Enabled bool  `json:"enabled"`
	Traces  int   `json:"traces"`
	Spans   int64 `json:"spans"`
	Dropped int64 `json:"dropped"`
	Expired int64 `json:"expired"`
}

// Status assembles the node's current status snapshot.
func (s *Server) Status() StatusResponse {
	version, goVersion, commit := buildInfo()
	st := StatusResponse{
		Node:          s.opts.NodeName,
		Version:       version,
		GoVersion:     goVersion,
		Commit:        commit,
		UptimeSeconds: time.Since(s.started).Seconds(),

		Workers:    s.opts.Workers,
		QueueDepth: s.pool.QueueDepth(),
		QueueCap:   s.opts.QueueDepth,
		Inflight:   s.pool.Running(),

		Cache: CacheStatus{
			Entries: int64(s.cache.Len()), Hits: s.cache.Hits(),
			Misses: s.cache.Misses(), Coalesced: s.cache.Coalesced(),
			Evictions: s.cache.Evictions(),
		},
		ProfileCache: profileCacheStatus(),

		Evaluations: s.evaluations.Value(),
		Rejected:    s.rejected.Value(),
		Shed:        s.shed.Value(),
		Timeouts:    s.timeouts.Value(),

		ChaosEnabled: s.chaos.Load() != nil,
		Draining:     s.draining.Load(),
	}
	if s.segments != nil {
		st.Segments = SegmentsStatus{
			Enabled: true,
			Traces:  s.segments.Traces(),
			Spans:   s.segments.SpanCount(),
			Dropped: s.segments.Dropped(),
			Expired: s.segments.Expired(),
		}
	}
	return st
}

// profileCacheStatus snapshots the process-wide shared profile cache.
func profileCacheStatus() CacheStatus {
	pc := core.DefaultProfileCache
	return CacheStatus{
		Entries: int64(pc.Len()), Hits: pc.Hits(), Misses: pc.Misses(),
		Coalesced: pc.Coalesced(), Evictions: pc.Evictions(),
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.requests.With("status").Inc()
	s.writeJSON(w, http.StatusOK, s.Status())
}
