package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestIDEchoAndGenerate(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// A client-supplied ID is echoed back.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id-42" {
		t.Errorf("echoed request id = %q, want client-id-42", got)
	}

	// Absent (or hostile) IDs are replaced with a generated one.
	for _, supplied := range []string{"", `bad"quoted\id`} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if supplied != "" {
			req.Header.Set("X-Request-ID", supplied)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Request-ID")
		if len(got) != 16 || strings.ContainsAny(got, "\"\n\r\\|") {
			t.Errorf("generated request id = %q, want 16 hex chars", got)
		}
	}

	// Error bodies carry the request ID for cross-referencing logs.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader("{not json"))
	req.Header.Set("X-Request-ID", "err-req-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST bad body: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d, want 400", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if body["request_id"] != "err-req-7" {
		t.Errorf("error body request_id = %q, want err-req-7", body["request_id"])
	}
}

// syncBuffer lets the slog handler race-safely share a buffer with the
// test goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestAccessLogCarriesRequestID(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := New(Options{Workers: 1, Logger: logger})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/models", nil)
	req.Header.Set("X-Request-ID", "log-req-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /v1/models: %v", err)
	}
	resp.Body.Close()

	out := buf.String()
	if !strings.Contains(out, "http_request") ||
		!strings.Contains(out, "request_id=log-req-9") ||
		!strings.Contains(out, "path=/v1/models") {
		t.Errorf("access log missing request line or request id:\n%s", out)
	}
}

// chromeTrace mirrors the exported trace_event JSON shape.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TID   uint64         `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestDebugTraceCapturesDSERequest is the acceptance check: a /v1/dse
// request served while a /debug/trace window is open must export a
// Chrome trace whose queue, cache, profile, and price spans all carry
// the request's ID.
func TestDebugTraceCapturesDSERequest(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, DebugTrace: true})

	type captured struct {
		code int
		body []byte
		err  error
	}
	ch := make(chan captured, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/debug/trace?sec=1")
		if err != nil {
			ch <- captured{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode == http.StatusOK &&
			resp.Header.Get("Content-Type") != "application/json" {
			err = fmt.Errorf("content-type %q", resp.Header.Get("Content-Type"))
		}
		ch <- captured{code: resp.StatusCode, body: body, err: err}
	}()

	// Wait for the capture window to open before sending traffic.
	deadline := time.Now().Add(5 * time.Second)
	for s.capture.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("capture window never opened")
		}
		time.Sleep(time.Millisecond)
	}

	// A unique layer name guarantees a miss in the process-global
	// profile cache, so the trace contains the full profile+price path.
	layer := fmt.Sprintf("trace-%d", time.Now().UnixNano())
	req := DSERequest{
		Layer:    LayerSpec{Name: layer, K: 32, C: 16, Y: 18, X: 18, R: 3, S: 3},
		Template: "KC-P",
		P1:       []int{8},
		P2:       []int{4},
		PEs:      []int{64},
		BWs:      []float64{16},
		L1Grid:   []int64{1 << 12},
		L2Grid:   []int64{1 << 20},
	}
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/dse",
		strings.NewReader(marshal(t, req)))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-ID", "req-test-123")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/dse: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dse: status %d: %s", resp.StatusCode, data)
	}

	got := <-ch
	if got.err != nil {
		t.Fatalf("debug/trace: %v", got.err)
	}
	if got.code != http.StatusOK {
		t.Fatalf("debug/trace: status %d: %s", got.code, got.body)
	}
	var trace chromeTrace
	if err := json.Unmarshal(got.body, &trace); err != nil {
		t.Fatalf("unmarshal trace: %v\n%s", err, got.body)
	}

	// Every span of the request — through the pool, the result cache,
	// and the DSE worker fan-out — must carry the client's request ID.
	spans := map[string]int{}
	tracks := map[uint64]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		if id, _ := ev.Args["request_id"].(string); id == "req-test-123" {
			spans[ev.Name]++
			tracks[ev.TID] = true
		}
	}
	for _, want := range []string{
		"http.request", "serve.queue", "serve.cache", "serve.compute",
		"dse.explore", "core.profile", "core.price_batch",
	} {
		if spans[want] == 0 {
			t.Errorf("trace has no %q span with request_id=req-test-123; got %v", want, spans)
		}
	}
	if len(tracks) != 1 {
		t.Errorf("request spans spread over %d tracks, want 1 (tid = root span)", len(tracks))
	}

	// The window has closed: the capture slot must be free again.
	if s.capture.Load() != nil {
		t.Error("capture recorder still attached after window closed")
	}
}

// TestBatchCacheHitDuringCaptureRace regression-tests the data race
// where concurrent batch items recorded result_cache.hit directly on
// the shared request root span: with a warm cache and an open capture
// window, a batch of identical requests must be clean under -race.
func TestBatchCacheHitDuringCaptureRace(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, DebugTrace: true})

	req := AnalyzeRequest{
		Layer:    LayerSpec{Name: "race-hit", K: 32, C: 16, Y: 16, X: 16, R: 3, S: 3},
		Dataflow: DataflowSpec{Name: "KC-P"},
		HW:       HWSpec{Preset: "Accel256"},
	}
	// Warm the result cache so every batch item takes the hit fast path.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(marshal(t, req)))
	if err != nil {
		t.Fatalf("warm analyze: %v", err)
	}
	resp.Body.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/debug/trace?sec=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.capture.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("capture window never opened")
		}
		time.Sleep(time.Millisecond)
	}

	batch := BatchRequest{Requests: make([]AnalyzeRequest, 32)}
	for i := range batch.Requests {
		batch.Requests[i] = req
	}
	resp, err = http.Post(ts.URL+"/v1/analyze/batch", "application/json",
		strings.NewReader(marshal(t, batch)))
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal batch: %v", err)
	}
	for _, it := range br.Results {
		if it.Error != "" {
			t.Errorf("item %d: %s", it.Index, it.Error)
		}
	}
	<-done
}

func TestDebugTraceDisabledByDefault(t *testing.T) {
	// The capture endpoint exposes other tenants' span metadata, so the
	// API handler only mounts it when Options.DebugTrace opts in; it is
	// otherwise reachable only via DebugTraceHandler (the -pprof mux).
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/debug/trace?sec=1")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("default /debug/trace: status %d, want 404", resp.StatusCode)
	}
}

func TestDebugTraceValidation(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, DebugTrace: true})

	if resp, err := http.Get(ts.URL + "/debug/trace?sec=nope"); err != nil {
		t.Fatalf("GET: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad sec: status %d, want 400", resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/debug/trace", "", nil)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", resp.StatusCode)
	}

	// Only one capture window at a time: a second concurrent request is
	// answered 409.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/debug/trace?sec=1")
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.capture.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("capture window never opened")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err = http.Get(ts.URL + "/debug/trace?sec=1")
	if err != nil {
		t.Fatalf("second capture: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("concurrent capture: status %d, want 409", resp.StatusCode)
	}
	<-done
}
