package serve

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrShed reports adaptive load shedding: the request's remaining
// deadline cannot cover the expected queue wait plus the observed
// median compute time, so running it would only burn a worker on a
// response the client will never read. Handlers map it to HTTP 503
// with a Retry-After hint.
var ErrShed = errors.New("serve: shed: deadline too short for expected compute")

// svcWindow is the number of compute durations the tracker remembers.
const svcWindow = 256

// shedMinSamples gates shedding until the estimate has substance; a
// cold server never sheds.
const shedMinSamples = 32

// svcTimeTracker keeps a bounded window of observed compute durations
// and maintains a median estimate. Observe is on the per-evaluation
// path, so the median is recomputed only every few samples and read
// through one atomic load.
type svcTimeTracker struct {
	mu    sync.Mutex
	buf   [svcWindow]float64 // seconds, ring
	n     int                // total observations (saturates at math.MaxInt)
	idx   int
	p50ns atomic.Int64 // cached median, nanoseconds; 0 = not ready
}

// Observe records one compute duration and refreshes the cached median
// every 16th sample.
func (t *svcTimeTracker) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	t.mu.Lock()
	t.buf[t.idx] = d.Seconds()
	t.idx = (t.idx + 1) % svcWindow
	if t.n < math.MaxInt {
		t.n++
	}
	if t.n >= shedMinSamples && t.n%16 == 0 {
		t.p50ns.Store(int64(t.medianLocked() * float64(time.Second)))
	}
	t.mu.Unlock()
}

// medianLocked computes the median of the resident window. Caller holds mu.
func (t *svcTimeTracker) medianLocked() float64 {
	n := t.n
	if n > svcWindow {
		n = svcWindow
	}
	tmp := make([]float64, n)
	copy(tmp, t.buf[:n])
	sort.Float64s(tmp)
	return tmp[n/2]
}

// P50 returns the cached median compute time. ok is false until
// shedMinSamples observations have accumulated.
func (t *svcTimeTracker) P50() (time.Duration, bool) {
	ns := t.p50ns.Load()
	if ns <= 0 {
		return 0, false
	}
	return time.Duration(ns), true
}

// expectedLatency estimates the time a freshly queued request needs to
// complete: the queued jobs ahead of it drain at one median compute
// time per worker, then it computes once itself.
func (s *Server) expectedLatency() (time.Duration, bool) {
	p50, ok := s.svcTime.P50()
	if !ok {
		return 0, false
	}
	depth := s.pool.QueueDepth()
	wait := time.Duration(float64(p50) * float64(depth) / float64(s.opts.Workers))
	return wait + p50, true
}

// shedCheck applies queue-deadline shedding: when the context carries a
// deadline that cannot cover the expected queue wait + compute, the
// request is dropped before it occupies a queue slot. Returns ErrShed
// (wrapped with the numbers) when the request should be shed.
func (s *Server) shedCheck(remaining time.Duration) error {
	if remaining <= 0 {
		return nil // no deadline information; never shed
	}
	est, ok := s.expectedLatency()
	if !ok || remaining >= est {
		return nil
	}
	s.shed.Inc()
	return &shedError{remaining: remaining, expected: est}
}

// shedError carries the shedding decision's numbers for the 503 body.
type shedError struct{ remaining, expected time.Duration }

func (e *shedError) Error() string {
	return "serve: shed: remaining deadline " + e.remaining.Round(time.Millisecond).String() +
		" below expected latency " + e.expected.Round(time.Millisecond).String() +
		" (queue wait + observed p50 compute)"
}

func (e *shedError) Unwrap() error { return ErrShed }

// retryAfterSeconds derives the Retry-After hint for 429/shed responses
// from the current backlog: `depth` queued items drain at one observed
// median compute time per worker. With no estimate (cold server) or an
// empty queue the hint is the 1-second floor; the hint is capped so a
// deep queue never tells clients to go away for minutes.
func (s *Server) retryAfterSeconds(depth int64) int {
	const capSeconds = 30
	p50, ok := s.svcTime.P50()
	if !ok || depth <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(depth) * p50.Seconds() / float64(s.opts.Workers)))
	if secs < 1 {
		return 1
	}
	if secs > capSeconds {
		return capSeconds
	}
	return secs
}
