package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// feedSvcTime pushes n identical observations so the tracker's cached
// median becomes d (n must clear shedMinSamples and land on a refresh).
func feedSvcTime(t *svcTimeTracker, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		t.Observe(d)
	}
}

func TestSvcTimeTrackerMedian(t *testing.T) {
	var tr svcTimeTracker
	if _, ok := tr.P50(); ok {
		t.Fatal("cold tracker must report no estimate")
	}
	// Below the warmup floor: still no estimate.
	feedSvcTime(&tr, 10*time.Millisecond, shedMinSamples-1)
	if _, ok := tr.P50(); ok {
		t.Fatalf("tracker reported an estimate after %d samples", shedMinSamples-1)
	}
	feedSvcTime(&tr, 10*time.Millisecond, 33)
	p50, ok := tr.P50()
	if !ok {
		t.Fatal("tracker has no estimate after warmup")
	}
	if p50 < 9*time.Millisecond || p50 > 11*time.Millisecond {
		t.Fatalf("p50 = %v, want ~10ms", p50)
	}
	// A flood of slow observations moves the median up.
	feedSvcTime(&tr, 100*time.Millisecond, svcWindow)
	p50, _ = tr.P50()
	if p50 < 90*time.Millisecond {
		t.Fatalf("p50 = %v after slow flood, want ~100ms", p50)
	}
}

// TestRetryAfterHint covers the satellite fix: the 429 Retry-After hint
// derives from queue depth × observed per-item service time, not a
// hardcoded 1.
func TestRetryAfterHint(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 8})
	defer s.Close()

	// Cold server: no estimate yet, floor of 1 regardless of depth.
	if got := s.retryAfterSeconds(0); got != 1 {
		t.Fatalf("empty queue hint = %d, want 1", got)
	}
	if got := s.retryAfterSeconds(100); got != 1 {
		t.Fatalf("cold-tracker hint = %d, want 1", got)
	}

	// Warm tracker at ~500ms per item, 2 workers.
	feedSvcTime(&s.svcTime, 500*time.Millisecond, 64)
	if _, ok := s.svcTime.P50(); !ok {
		t.Fatal("tracker not warm")
	}
	if got := s.retryAfterSeconds(0); got != 1 {
		t.Fatalf("empty queue hint = %d, want 1", got)
	}
	// 8 queued × 0.5s / 2 workers = 2s.
	if got := s.retryAfterSeconds(8); got != 2 {
		t.Fatalf("full queue hint = %d, want 2", got)
	}
	// A pathological backlog is capped.
	if got := s.retryAfterSeconds(1_000_000); got != 30 {
		t.Fatalf("deep queue hint = %d, want cap 30", got)
	}
}

// TestShedCheck exercises the queue-deadline shedding decision.
func TestShedCheck(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	defer s.Close()

	// Cold server never sheds.
	if err := s.shedCheck(time.Microsecond); err != nil {
		t.Fatalf("cold server shed: %v", err)
	}
	feedSvcTime(&s.svcTime, 20*time.Millisecond, 64)
	// Plenty of deadline: no shed.
	if err := s.shedCheck(time.Second); err != nil {
		t.Fatalf("ample deadline shed: %v", err)
	}
	// Deadline below one compute time: shed.
	err := s.shedCheck(time.Millisecond)
	if err == nil {
		t.Fatal("starved deadline not shed")
	}
	if !strings.Contains(err.Error(), "p50") {
		t.Fatalf("shed error lacks the estimate: %v", err)
	}
	if got := s.shed.Value(); got != 1 {
		t.Fatalf("maestro_shed_total = %d, want 1", got)
	}
	// No deadline information: never shed.
	if err := s.shedCheck(0); err != nil {
		t.Fatalf("deadline-free shed: %v", err)
	}
}

// TestShedEndToEnd drives a real request with an impossible timeout_ms
// through a warm server and expects the distinct 503 with Retry-After
// and the maestro_shed_total bump.
func TestShedEndToEnd(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	defer s.Close()
	feedSvcTime(&s.svcTime, 50*time.Millisecond, 64)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"layer": {"op": "CONV2D", "k": 4, "c": 3, "y": 8, "x": 8, "r": 3, "s": 3},
	          "dataflow": {"name": "KC-P"}, "hw": {"preset": "Accel256"},
	          "timeout_ms": 5}`
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 lacks Retry-After")
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e["error"], "shed") {
		t.Fatalf("shed body = %q, want a shed error", e["error"])
	}
	if got := s.shed.Value(); got != 1 {
		t.Fatalf("maestro_shed_total = %d, want 1", got)
	}
}
