package serve

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/obs"
)

// FusionRequest is the body of POST /v1/fusion: sweep graph-level
// schedules of one zoo model over the (L2 budget x fusion granularity)
// plane and report fused vs per-layer off-chip traffic at every point.
type FusionRequest struct {
	// Model names a zoo model (see /v1/models).
	Model string `json:"model"`
	// HW describes the accelerator (preset and/or overrides).
	HW HWSpec `json:"hw"`
	// Dataflow applies one Table 3 template to every layer; empty
	// auto-tunes per layer (slower, mapping-quality upper bound).
	Dataflow string `json:"dataflow,omitempty"`

	// L2Grid lists retention budgets in bytes (0 = the no-fusion
	// sentinel); empty uses the server default ladder.
	L2Grid []int64 `json:"l2_grid,omitempty"`
	// MaxGroupLayers lists fusion-subgraph size caps; empty uses
	// {1, 2, 4, 8}.
	MaxGroupLayers []int `json:"max_group_layers,omitempty"`

	// Shard, when set, scopes the sweep to a slice of the budget grid
	// dispatched by a fleet coordinator; it participates in the cache
	// key so shard responses never collide with the full sweep's.
	Shard *FusionShard `json:"shard,omitempty"`

	TimeoutMs int  `json:"timeout_ms,omitempty"`
	NoCache   bool `json:"no_cache,omitempty"`
}

// FusionShard labels one slice of a distributed fusion sweep. Unlike
// DSEShard it carries the shard's budget slice directly: the
// coordinator already partitioned the grid, the node just prices it.
type FusionShard struct {
	Index int `json:"index,omitempty"`
	Of    int `json:"of,omitempty"`
}

// WithDefaults fills the unset axes with the /v1/fusion defaults. The
// fleet coordinator applies it too, because sharding needs the
// concrete budget grid.
func (req FusionRequest) WithDefaults() FusionRequest {
	if len(req.L2Grid) == 0 {
		req.L2Grid = dse.DefaultFusionL2Grid()
	}
	if len(req.MaxGroupLayers) == 0 {
		req.MaxGroupLayers = []int{1, 2, 4, 8}
	}
	return req
}

// FusionPointJSON is one priced partitioning of the response.
type FusionPointJSON struct {
	L2Bytes        int64   `json:"l2_bytes"`
	MaxGroupLayers int     `json:"max_group_layers"`
	FusedGroups    int     `json:"fused_groups"`
	DRAMTraffic    int64   `json:"dram_traffic"`
	BaselineDRAM   int64   `json:"baseline_dram"`
	DRAMSaved      int64   `json:"dram_saved"`
	SavedFrac      float64 `json:"saved_frac"`
	ActTraffic     int64   `json:"act_traffic"`
	BaselineAct    int64   `json:"baseline_act"`
	TotalCycles    int64   `json:"total_cycles"`
	EnergyPJ       float64 `json:"energy_pj"`
}

// FusionResponse is the body of a successful fusion sweep.
type FusionResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`

	Model string `json:"model"`
	MACs  int64  `json:"macs"`

	Raw    int64 `json:"raw_points"`
	Valid  int64 `json:"valid_points"`
	Micros int64 `json:"elapsed_micros"`

	// Best is the least-DRAM-traffic point of the sweep.
	Best   *FusionPointJSON  `json:"best,omitempty"`
	Points []FusionPointJSON `json:"points"`
}

// MaxFusionGrid bounds the (budget x granularity) plane one request
// may ask for; a larger sweep belongs in a sharded fleet run.
const MaxFusionGrid = 1 << 10

// buildFusionSpace validates a fusion request and assembles the sweep.
func buildFusionSpace(req FusionRequest) (dse.FusionSpace, error) {
	m, ok := models.ByName(req.Model)
	if !ok {
		return dse.FusionSpace{}, badRequestf("unknown model %q (GET /v1/models lists the zoo)", req.Model)
	}
	cfg, err := resolveHW(req.HW)
	if err != nil {
		return dse.FusionSpace{}, err
	}
	req = req.WithDefaults()
	for _, l2 := range req.L2Grid {
		if l2 < 0 {
			return dse.FusionSpace{}, badRequestf("negative l2 budget %d", l2)
		}
	}
	for _, mgl := range req.MaxGroupLayers {
		if mgl < 1 {
			return dse.FusionSpace{}, badRequestf("max_group_layers entry %d is below 1", mgl)
		}
	}
	if sh := req.Shard; sh != nil && (sh.Index < 0 || sh.Of < 1 || sh.Index >= sh.Of) {
		return dse.FusionSpace{}, badRequestf("fusion shard %d/%d is out of range", sh.Index, sh.Of)
	}
	raw := int64(len(req.L2Grid)) * int64(len(req.MaxGroupLayers))
	if raw > MaxFusionGrid {
		return dse.FusionSpace{}, badRequestf("fusion sweep spans %d points, cap is %d", raw, MaxFusionGrid)
	}
	sp := dse.FusionSpace{
		Model:          m,
		Cfg:            cfg,
		Dataflow:       req.Dataflow,
		L2Grid:         req.L2Grid,
		MaxGroupLayers: req.MaxGroupLayers,
		// The sweep runs as one pool job; keep its internal fan-out from
		// contending with the pool's own workers.
		Workers: 2,
	}
	if req.Dataflow != "" {
		found := false
		for _, n := range dataflowNames() {
			if n == req.Dataflow {
				found = true
			}
		}
		if !found {
			return dse.FusionSpace{}, badRequestf("unknown dataflow %q (have %s)",
				req.Dataflow, strings.Join(dataflowNames(), ", "))
		}
	}
	return sp, nil
}

// canonicalFusionKey hashes a fusion request's canonical encoding.
func canonicalFusionKey(cfg hw.Config, req FusionRequest) Key {
	var b strings.Builder
	b.WriteString("fusion\n")
	fmt.Fprintf(&b, "model=%s|df=%s|l2=%v|mgl=%v\n",
		req.Model, req.Dataflow, req.L2Grid, req.MaxGroupLayers)
	if sh := req.Shard; sh != nil {
		fmt.Fprintf(&b, "shard|%d/%d\n", sh.Index, sh.Of)
	}
	canonicalHW(&b, cfg)
	return sha256.Sum256([]byte(b.String()))
}

// runFusionTraced runs the sweep inside ctx's span tree.
func (s *Server) runFusionTraced(ctx context.Context, sp dse.FusionSpace) *FusionResponse {
	start := time.Now()
	ctx, span := obs.Start(ctx, "serve.compute",
		obs.String("model", sp.Model.Name), obs.String("template", sp.Dataflow))
	sp.Ctx = ctx
	resp := runFusion(sp)
	span.SetAttr(obs.Int64("valid", resp.Valid))
	span.End()
	s.stageSeconds.With("compute").Observe(time.Since(start).Seconds())
	return resp
}

func fusionPointJSON(p dse.FusionPoint) *FusionPointJSON {
	return &FusionPointJSON{
		L2Bytes:        p.L2Bytes,
		MaxGroupLayers: p.MaxGroupLayers,
		FusedGroups:    p.FusedGroups,
		DRAMTraffic:    p.DRAMTraffic,
		BaselineDRAM:   p.BaselineDRAM,
		DRAMSaved:      p.DRAMSaved,
		SavedFrac:      p.SavedFrac(),
		ActTraffic:     p.ActTraffic,
		BaselineAct:    p.BaselineAct,
		TotalCycles:    p.TotalCycles,
		EnergyPJ:       p.EnergyPJ,
	}
}

// runFusion executes the sweep and shapes the response.
func runFusion(sp dse.FusionSpace) *FusionResponse {
	points, stats, _ := dse.ExploreFusion(sp)
	resp := &FusionResponse{
		Model:  sp.Model.Name,
		MACs:   sp.Model.MACs(),
		Raw:    stats.Raw,
		Valid:  stats.Valid,
		Micros: stats.Elapsed.Microseconds(),
		Points: []FusionPointJSON{},
	}
	for _, p := range points {
		resp.Points = append(resp.Points, *fusionPointJSON(p))
	}
	if best, ok := dse.BestFusion(points); ok {
		resp.Best = fusionPointJSON(best)
	}
	return resp
}

func (s *Server) handleFusion(w http.ResponseWriter, r *http.Request) {
	if !methodPost(w, r) {
		return
	}
	s.requests.With("fusion").Inc()
	start := time.Now()
	defer func() { s.latency.Observe(time.Since(start).Seconds()) }()

	var req FusionRequest
	if err := decodeJSON(w, r, 1<<20, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	sp, err := buildFusionSpace(req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	key := canonicalFusionKey(sp.Cfg, req.WithDefaults())
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMs))
	defer cancel()

	type outcome struct {
		resp   *FusionResponse
		cached bool
		err    error
	}
	ch := make(chan outcome, 1)
	_, qspan := obs.Start(ctx, "serve.queue")
	submitted := time.Now()
	job := func() {
		qspan.End()
		s.stageSeconds.With("queue").Observe(time.Since(submitted).Seconds())
		if ctx.Err() != nil {
			ch <- outcome{err: ctx.Err()}
			return
		}
		if req.NoCache {
			ch <- outcome{resp: s.runFusionTraced(ctx, sp)}
			return
		}
		cctx, cspan := obs.Start(ctx, "serve.cache")
		v, cached, err := s.cache.Do(key, func() (any, error) {
			return s.runFusionTraced(cctx, sp), nil
		})
		cspan.SetAttr(obs.Bool("hit", cached))
		cspan.End()
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		ch <- outcome{resp: v.(*FusionResponse), cached: cached}
	}
	if err := s.pool.Submit(job); err != nil {
		s.stageSeconds.With("queue").Observe(time.Since(submitted).Seconds())
		qspan.SetAttr(obs.String("error", err.Error()))
		qspan.End()
		s.writeError(w, r, err)
		return
	}
	select {
	case <-ctx.Done():
		s.writeError(w, r, ctx.Err())
	case o := <-ch:
		if o.err != nil {
			s.writeError(w, r, o.err)
			return
		}
		resp := *o.resp
		resp.Key = key.String()
		resp.Cached = o.cached
		s.writeJSON(w, http.StatusOK, &resp)
	}
}
