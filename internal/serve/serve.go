package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Options configures a Server. Zero values take the documented
// defaults.
type Options struct {
	// Workers is the analysis worker count (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued requests before the server answers 429
	// (default 256).
	QueueDepth int
	// CacheEntries bounds the result cache (default 4096 entries;
	// negative disables caching).
	CacheEntries int
	// DefaultTimeout bounds a request that carries no timeout_ms
	// (default 15s).
	DefaultTimeout time.Duration
	// MaxBatch bounds requests per batch call (default 256).
	MaxBatch int
	// Logger receives structured access logs (one line per request,
	// request-ID-correlated). Nil discards them.
	Logger *slog.Logger
	// DebugTrace mounts GET /debug/trace on the main API handler. It is
	// off by default: the capture endpoint holds a handler goroutine for
	// the window and exposes other tenants' span metadata (layer names,
	// request IDs), so it belongs on a private debug listener — see
	// DebugTraceHandler — unless the deployment opts in.
	DebugTrace bool
	// Chaos configures fault injection on the /v1/* endpoints (seeded
	// error rate and latency distributions) for resilience testing and
	// manual soak runs. The zero value disables injection; it can be
	// reconfigured at runtime with SetChaos.
	Chaos Chaos
	// NodeName identifies this node in distributed-trace segments, the
	// /v1/status payload, and fleet-federated metrics (default: the
	// process hostname, or "node" if that fails).
	NodeName string
	// SegmentTraces bounds the distributed-trace segment store: how many
	// traces' span segments this node buffers for coordinators to pull
	// (default 256; negative disables the store and its endpoint). The
	// store only records requests that arrive with a valid traceparent
	// header, so untraced traffic pays nothing.
	SegmentTraces int
	// SegmentSpans bounds buffered spans per trace (default 4096;
	// overflow counts into maestro_trace_spans_dropped_total).
	SegmentSpans int
	// SegmentTTL evicts trace segments idle longer than this
	// (default 2m). Coordinator pulls refresh the clock.
	SegmentTTL time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 256
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 4096
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 15 * time.Second
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 256
	}
	if o.NodeName == "" {
		if hn, err := os.Hostname(); err == nil && hn != "" {
			o.NodeName = hn
		} else {
			o.NodeName = "node"
		}
	}
	return o
}

// Server is the analysis service: handlers, worker pool, result cache,
// and metrics registry. Create with New, mount Handler, and Close on
// shutdown to drain in-flight work.
type Server struct {
	opts  Options
	pool  *Pool
	cache *Cache
	reg   *Registry
	log   *slog.Logger
	// capture holds the live /debug/trace recorder; the middleware
	// attaches it to every request context while a window is open.
	capture atomic.Pointer[obs.Recorder]
	// chaos holds the live fault injector; nil means injection is off.
	chaos atomic.Pointer[chaosState]
	// svcTime tracks observed compute durations; the shedding path and
	// the Retry-After hint derive their estimates from its median.
	svcTime svcTimeTracker
	// segments buffers distributed-trace span segments for coordinators
	// to pull; nil when Options.SegmentTraces is negative.
	segments *obs.SegmentStore
	// started anchors the /v1/status uptime.
	started time.Time
	// draining flips when graceful shutdown begins: /healthz (readiness)
	// answers 503 from then on, while /v1/status (liveness) keeps
	// answering 200 so probers can tell draining from dead.
	draining atomic.Bool

	requests        *CounterVec // by endpoint
	responses       *CounterVec // by status code
	evaluations     *Counter
	rejected        *Counter
	timeouts        *Counter
	shed            *Counter
	chaosInjected   *CounterVec // by kind: error / latency
	latency         *Histogram
	batchSize       *Histogram
	stageSeconds    *HistogramVec // queue wait / cache lookup / compute
	endpointSeconds *HistogramVec // end-to-end, by endpoint
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		pool:    NewPool(opts.Workers, opts.QueueDepth),
		cache:   NewCache(opts.CacheEntries),
		reg:     NewRegistry(),
		log:     opts.Logger,
		started: time.Now(),
	}
	if s.log == nil {
		s.log = obs.DiscardLogger()
	}
	if opts.SegmentTraces >= 0 {
		s.segments = obs.NewSegmentStore(opts.SegmentTraces, opts.SegmentSpans, opts.SegmentTTL)
	}
	s.requests = s.reg.NewCounterVec("maestro_requests_total",
		"Requests received, by endpoint.", "endpoint")
	s.responses = s.reg.NewCounterVec("maestro_responses_total",
		"Responses sent, by HTTP status code.", "code")
	s.evaluations = s.reg.NewCounter("maestro_evaluations_total",
		"Cost-model evaluations actually executed (cache misses).")
	s.rejected = s.reg.NewCounter("maestro_rejected_total",
		"Requests rejected with 429 by queue-depth backpressure.")
	s.timeouts = s.reg.NewCounter("maestro_timeouts_total",
		"Requests that exceeded their deadline while queued or running.")
	s.shed = s.reg.NewCounter("maestro_shed_total",
		"Requests shed because their remaining deadline could not cover the expected queue wait plus observed p50 compute.")
	s.chaosInjected = s.reg.NewCounterVec("maestro_chaos_injected_total",
		"Faults injected by the chaos middleware, by kind.", "kind")
	s.latency = s.reg.NewHistogram("maestro_request_seconds",
		"End-to-end request latency.", ExpBuckets(0.0001, 4, 10))
	s.batchSize = s.reg.NewHistogram("maestro_batch_size",
		"Requests per batch call.", ExpBuckets(1, 2, 10))
	s.stageSeconds = s.reg.NewHistogramVec("maestro_stage_seconds",
		"Per-stage request latency: queue wait, result-cache lookup, compute.",
		"stage", ExpBuckets(0.00001, 4, 10))
	s.endpointSeconds = s.reg.NewHistogramVec("maestro_endpoint_seconds",
		"End-to-end request latency by endpoint.",
		"endpoint", ExpBuckets(0.0001, 4, 10))
	s.reg.NewCounterFunc("maestro_cache_hits_total",
		"Analyses served from the result cache.", s.cache.Hits)
	s.reg.NewCounterFunc("maestro_cache_misses_total",
		"Analyses that had to compute.", s.cache.Misses)
	s.reg.NewCounterFunc("maestro_cache_coalesced_total",
		"Requests that joined an identical in-flight computation.", s.cache.Coalesced)
	s.reg.NewCounterFunc("maestro_cache_evictions_total",
		"LRU evictions from the result cache.", s.cache.Evictions)
	s.reg.NewGaugeFunc("maestro_cache_entries",
		"Entries resident in the result cache.", func() int64 { return int64(s.cache.Len()) })
	profiles := core.DefaultProfileCache
	s.reg.NewCounterFunc("maestro_profile_cache_hits_total",
		"Layer profiles served from the shared profile cache.", profiles.Hits)
	s.reg.NewCounterFunc("maestro_profile_cache_misses_total",
		"Layer profiles that had to run the cluster walk.", profiles.Misses)
	s.reg.NewCounterFunc("maestro_profile_cache_coalesced_total",
		"Profile requests that joined an identical in-flight walk.", profiles.Coalesced)
	s.reg.NewCounterFunc("maestro_profile_cache_evictions_total",
		"LRU evictions from the shared profile cache.", profiles.Evictions)
	s.reg.NewGaugeFunc("maestro_profile_cache_entries",
		"Profiles resident in the shared profile cache.", func() int64 { return int64(profiles.Len()) })
	s.reg.NewGaugeFunc("maestro_queue_depth",
		"Jobs waiting in the worker queue.", s.pool.QueueDepth)
	s.reg.NewGaugeFunc("maestro_inflight",
		"Jobs currently executing.", s.pool.Running)
	version, goVersion, commit := buildInfo()
	s.reg.NewInfoGauge("maestro_build_info",
		"Build metadata of this maestro-serve binary.",
		[2]string{"version", version},
		[2]string{"go_version", goVersion},
		[2]string{"commit", commit},
		[2]string{"node", opts.NodeName})
	// Silent span loss is invisible in the trace itself; the drop total
	// covers the per-request recorders, the segment store's caps, and an
	// open /debug/trace capture window.
	s.reg.NewCounterFunc("maestro_trace_spans_dropped_total",
		"Trace spans discarded by recorder limits or segment-store caps.",
		func() int64 {
			var n int64
			if s.segments != nil {
				n += s.segments.Dropped()
			}
			if rec := s.capture.Load(); rec != nil {
				n += rec.Dropped()
			}
			return n
		})
	if s.segments != nil {
		s.reg.NewGaugeFunc("maestro_trace_segment_traces",
			"Distributed traces with buffered span segments on this node.",
			func() int64 { return int64(s.segments.Traces()) })
		s.reg.NewGaugeFunc("maestro_trace_segment_spans",
			"Span segments buffered for coordinator pulls.", s.segments.SpanCount)
	}
	if opts.Chaos.enabled() {
		s.chaos.Store(newChaosState(opts.Chaos))
	}
	return s
}

// Close drains the worker pool; queued and running jobs complete.
// Close implies BeginDrain so /healthz stops reporting ready.
func (s *Server) Close() {
	s.BeginDrain()
	s.pool.Close()
}

// BeginDrain marks the server as draining: from this call on, the
// /healthz readiness probe answers 503 with a Retry-After hint so load
// balancers and fleet probers stop routing new work here, while
// /v1/status keeps answering 200 (the process is alive and finishing
// queued work). Idempotent; there is no way back to ready — a drained
// server is on its way down.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether graceful drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics exposes the registry (for embedding into a wider process).
func (s *Server) Metrics() *Registry { return s.reg }

// Handler returns the service's HTTP routes, wrapped in the
// observability middleware (request IDs, access logs, span trees).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.opts.DebugTrace {
		mux.HandleFunc("/debug/trace", s.handleDebugTrace)
	}
	if s.segments != nil {
		// Unlike /debug/trace (which captures *other* tenants' traffic
		// and stays private), segment fetches require the exact 128-bit
		// trace ID — a capability only the trace's own initiator holds —
		// so the endpoint is safe on the API surface, where fleet
		// coordinators can reach it without extra configuration. It is
		// mounted on the private debug listener too.
		mux.HandleFunc("/debug/trace/segments", s.handleTraceSegments)
	}
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/analyze/batch", s.handleBatch)
	mux.HandleFunc("/v1/dse", s.handleDSE)
	mux.HandleFunc("/v1/fusion", s.handleFusion)
	return s.instrument(s.chaosMiddleware(mux))
}

// ---- plumbing ----

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// errorStatus maps an error to an HTTP status: typed validation errors
// (malformed dataflow/layer/config, bad request fields) are the
// caller's fault; anything else is a server fault.
func errorStatus(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, errBadRequest),
		errors.Is(err, dataflow.ErrInvalid),
		errors.Is(err, tensor.ErrInvalidLayer),
		errors.Is(err, hw.ErrInvalidConfig):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrPoolClosed), errors.Is(err, ErrShed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	s.responses.With(strconv.Itoa(status)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := errorStatus(err)
	switch status {
	case http.StatusTooManyRequests:
		s.rejected.Inc()
		// The hint tracks the backlog: queued items × observed median
		// compute time / workers, so clients back off proportionally to
		// how far behind the pool actually is.
		w.Header().Set("Retry-After",
			strconv.Itoa(s.retryAfterSeconds(s.pool.QueueDepth())))
	case http.StatusServiceUnavailable:
		if errors.Is(err, ErrShed) {
			w.Header().Set("Retry-After",
				strconv.Itoa(s.retryAfterSeconds(s.pool.QueueDepth())))
		}
	case http.StatusGatewayTimeout:
		s.timeouts.Inc()
	}
	id := RequestIDFrom(r.Context())
	s.log.LogAttrs(r.Context(), slog.LevelWarn, "request_error",
		slog.String("request_id", id),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.String("error", err.Error()))
	s.writeJSON(w, status, map[string]string{"error": err.Error(), "request_id": id})
}

// decodeJSON parses a request body with a size cap and strict fields.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("decoding body: %v", err)
	}
	return nil
}

func methodPost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// timeoutFor picks the request deadline.
func (s *Server) timeoutFor(ms int) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.opts.DefaultTimeout
}

// evaluate runs one resolved analysis and shapes the response. This is
// the single place the cost model is invoked from.
func (s *Server) evaluate(ctx context.Context, r resolved, key Key) (*AnalyzeResponse, error) {
	s.evaluations.Inc()
	startedAt := time.Now()
	ctx, span := obs.Start(ctx, "serve.compute",
		obs.String("layer", r.layer.Name), obs.String("dataflow", r.df.Name))
	// The cached variant shares the hardware-independent profile across
	// requests that differ only in hardware configuration (and with the
	// DSE endpoint, which prices the same profiles). Its profile fetch
	// and pricing appear as child spans / cache events under this span.
	res, err := core.AnalyzeDataflowCachedCtx(ctx, r.df, r.layer, r.cfg)
	span.End()
	elapsed := time.Since(startedAt)
	s.stageSeconds.With("compute").Observe(elapsed.Seconds())
	s.svcTime.Observe(elapsed)
	if err != nil {
		return nil, err
	}
	return shapeResponse(res, key, startedAt), nil
}

// evaluateGroup prices one profile group of a batch — members sharing a
// (dataflow, layer, PE-count) profile — in a single PriceBatch walk.
// The per-member slices line up with ms; a member whose configuration
// fails batch validation is re-run alone through evaluate so its item
// carries the precise error (the common case prices every member in the
// one walk). A profile-side failure (unresolvable mapping) fails every
// member identically.
func (s *Server) evaluateGroup(ctx context.Context, ms []batchMember) ([]*AnalyzeResponse, []error) {
	startedAt := time.Now()
	ctx, span := obs.Start(ctx, "serve.compute",
		obs.String("layer", ms[0].r.layer.Name), obs.String("dataflow", ms[0].r.df.Name),
		obs.Int("points", len(ms)))
	cfgs := make([]hw.Config, len(ms))
	for i, m := range ms {
		cfgs[i] = m.r.cfg
	}
	rs, err := core.AnalyzeDataflowCachedBatchCtx(ctx, ms[0].r.df, ms[0].r.layer, cfgs)
	span.End()
	elapsed := time.Since(startedAt)
	s.stageSeconds.With("compute").Observe(elapsed.Seconds())
	s.svcTime.Observe(elapsed)

	resps := make([]*AnalyzeResponse, len(ms))
	errs := make([]error, len(ms))
	if rs == nil {
		for i := range errs {
			errs[i] = err
		}
		return resps, errs
	}
	priced := 0
	for i, m := range ms {
		if rs[i] == nil {
			resps[i], errs[i] = s.evaluate(ctx, m.r, m.key)
			continue
		}
		priced++
		resps[i] = shapeResponse(rs[i], m.key, startedAt)
	}
	s.evaluations.Add(int64(priced))
	return resps, errs
}

// shapeResponse converts one cost-model Result into the wire shape.
// ComputeMicros reports time since startedAt: for a grouped batch item
// that is the group's shared walk, not a per-item slice of it.
func shapeResponse(res *core.Result, key Key, startedAt time.Time) *AnalyzeResponse {
	e := res.EnergyDefault()
	return &AnalyzeResponse{
		Key:      key.String(),
		Layer:    res.Layer.Name,
		Dataflow: res.DataflowName,
		HW:       res.Cfg.Name,

		Runtime:       res.Runtime,
		OnChipRuntime: res.OnChipRuntime,
		MACs:          res.MACs,
		UsedPEs:       res.UsedPEs,
		Utilization:   res.Utilization(),
		Throughput:    res.Throughput(),
		Bottleneck:    res.Bottleneck,

		L1ReqBytes: res.L1ReqBytes(),
		L2ReqBytes: res.L2ReqBytes(),
		DRAMReads:  res.DRAMReads,
		DRAMWrites: res.DRAMWrites,
		PeakBWGBps: res.PeakBWGBps(),
		L2Spill:    res.L2Spill,

		Energy: EnergyJSON{
			MAC: e.MAC, L1: e.L1Read + e.L1Write, L2: e.L2Read + e.L2Write,
			NoC: e.NoC, DRAM: e.DRAM, OnChip: e.OnChip(), Total: e.Total(),
		},
		Reuse: ReuseJSON{
			Input:  res.ReuseFactor(tensor.Input),
			Weight: res.ReuseFactor(tensor.Weight),
			Output: res.ReuseFactor(tensor.Output),
		},
		ComputeMicros: time.Since(startedAt).Microseconds(),
	}
}

// analyzeOne resolves, canonicalizes, and executes one request through
// the cache and pool, honoring ctx. It is shared by the single and
// batch endpoints.
func (s *Server) analyzeOne(ctx context.Context, req AnalyzeRequest) (*AnalyzeResponse, error) {
	r, err := resolveRequest(req)
	if err != nil {
		return nil, err
	}
	return s.analyzeResolved(ctx, req.NoCache, r, canonicalKey(r))
}

// analyzeResolved executes one already-resolved request through the
// cache and pool, honoring ctx.
func (s *Server) analyzeResolved(ctx context.Context, noCache bool, r resolved, key Key) (*AnalyzeResponse, error) {
	// Fast path: cache hits bypass the queue entirely.
	if !noCache {
		lookup := time.Now()
		v, ok := s.cache.Get(key)
		s.stageSeconds.With("cache").Observe(time.Since(lookup).Seconds())
		if ok {
			// The hit is recorded on a per-item child span: the batch
			// handler runs analyzeOne on many goroutines under one shared
			// request span, and a span does not take concurrent Events.
			_, hspan := obs.Start(ctx, "serve.cache", obs.Bool("hit", true))
			hspan.Event("result_cache.hit")
			hspan.End()
			resp := *(v.(*AnalyzeResponse)) // copy: Cached is per-delivery
			resp.Cached = true
			return &resp, nil
		}
	}

	// Adaptive shedding: a request whose remaining deadline cannot cover
	// the expected queue wait plus the observed median compute time is
	// dropped here, before it occupies a queue slot it can never use.
	if dl, ok := ctx.Deadline(); ok {
		if err := s.shedCheck(time.Until(dl)); err != nil {
			return nil, err
		}
	}

	type outcome struct {
		resp   *AnalyzeResponse
		cached bool
		err    error
	}
	ch := make(chan outcome, 1)
	// The queue span covers submit-to-dequeue: under load it is the
	// backpressure wait, distinct from the compute span inside the job.
	_, qspan := obs.Start(ctx, "serve.queue")
	submitted := time.Now()
	job := func() {
		qspan.End()
		s.stageSeconds.With("queue").Observe(time.Since(submitted).Seconds())
		if ctx.Err() != nil { // caller already gone; don't burn a worker
			ch <- outcome{err: ctx.Err()}
			return
		}
		if noCache {
			resp, err := s.evaluate(ctx, r, key)
			ch <- outcome{resp: resp, err: err}
			return
		}
		cctx, cspan := obs.Start(ctx, "serve.cache")
		v, cached, err := s.cache.Do(key, func() (any, error) {
			return s.evaluate(cctx, r, key)
		})
		cspan.SetAttr(obs.Bool("hit", cached))
		cspan.End()
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		ch <- outcome{resp: v.(*AnalyzeResponse), cached: cached}
	}
	if err := s.pool.Submit(job); err != nil {
		// Rejected submissions still count toward the queue stage —
		// saturation is exactly when the queue histogram matters.
		s.stageSeconds.With("queue").Observe(time.Since(submitted).Seconds())
		qspan.SetAttr(obs.String("error", err.Error()))
		qspan.End()
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case o := <-ch:
		if o.err != nil {
			return nil, o.err
		}
		resp := *o.resp
		resp.Cached = o.cached
		return &resp, nil
	}
}

// ---- handlers ----

// handleHealthz is the readiness probe. Ready answers "ok"; once
// graceful drain begins it answers 503 with a Retry-After derived from
// the remaining backlog, so LBs and the fleet prober stop sending new
// work while queued requests finish. Liveness stays on /v1/status.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.Header().Set("Retry-After",
			strconv.Itoa(s.retryAfterSeconds(s.pool.QueueDepth())))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.reg.Render())
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if !methodPost(w, r) {
		return
	}
	s.requests.With("analyze").Inc()
	start := time.Now()
	defer func() { s.latency.Observe(time.Since(start).Seconds()) }()

	var req AnalyzeRequest
	if err := decodeJSON(w, r, 1<<20, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMs))
	defer cancel()
	resp, err := s.analyzeOne(ctx, req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !methodPost(w, r) {
		return
	}
	s.requests.With("batch").Inc()
	start := time.Now()
	defer func() { s.latency.Observe(time.Since(start).Seconds()) }()

	var req BatchRequest
	if err := decodeJSON(w, r, 16<<20, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, r, badRequestf("empty batch"))
		return
	}
	if len(req.Requests) > s.opts.MaxBatch {
		s.writeError(w, r, badRequestf("batch of %d exceeds cap %d",
			len(req.Requests), s.opts.MaxBatch))
		return
	}
	s.batchSize.Observe(float64(len(req.Requests)))
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMs))
	defer cancel()

	// Resolve every item up front so the ones sharing a hardware-
	// independent profile — same dataflow, layer, and PE count, differing
	// only in the rest of the hardware — can be priced together in one
	// PriceBatch walk instead of one pool job each. Items that fail
	// resolution error out immediately; NoCache items and singleton
	// groups keep the classic per-item path.
	items := make([]BatchItem, len(req.Requests))
	var singles []batchMember
	groups := map[core.ProfileKey][]batchMember{}
	for i := range req.Requests {
		items[i].Index = i
		rr, err := resolveRequest(req.Requests[i])
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		m := batchMember{idx: i, r: rr, key: canonicalKey(rr), noCache: req.Requests[i].NoCache}
		if m.noCache {
			singles = append(singles, m)
			continue
		}
		pk := core.ProfileKeyFor(rr.df, rr.layer, rr.cfg.NumPEs)
		groups[pk] = append(groups[pk], m)
	}
	for pk, ms := range groups {
		if len(ms) == 1 {
			singles = append(singles, ms[0])
			delete(groups, pk)
		}
	}

	// Fan out; results land at their member's index. Group goroutines
	// write disjoint item slots, and the handler joins every goroutine
	// before reading items.
	done := make(chan struct{}, len(singles)+len(groups))
	launched := 0
	for _, m := range singles {
		m := m
		launched++
		go func() {
			defer func() { done <- struct{}{} }()
			resp, err := s.analyzeResolved(ctx, m.noCache, m.r, m.key)
			items[m.idx].Result = resp
			if err != nil {
				items[m.idx].Error = err.Error()
			}
		}()
	}
	for _, ms := range groups {
		ms := ms
		launched++
		go func() {
			defer func() { done <- struct{}{} }()
			s.analyzeGroup(ctx, ms, items)
		}()
	}
	for i := 0; i < launched; i++ {
		<-done
	}
	allRejected := true
	for i := range items {
		if !errors.Is(errorOf(items[i]), ErrQueueFull) {
			allRejected = false
			break
		}
	}
	if allRejected {
		s.writeError(w, r, fmt.Errorf("%w: all %d batch items rejected", ErrQueueFull, len(items)))
		return
	}
	s.writeJSON(w, http.StatusOK, BatchResponse{Results: items})
}

// batchMember is one resolved batch item: its slot in the response, its
// validated request, and its result-cache key.
type batchMember struct {
	idx     int
	r       resolved
	key     Key
	noCache bool
}

// analyzeGroup executes one profile group of a batch: the per-item
// cache fast path first, then the remaining misses as a single pool job
// that prices them all in one PriceBatch walk. Each priced response is
// inserted under its own result-cache key (through the cache's
// singleflight Do), so later identical requests hit as if the items had
// been computed individually. A rejected submit or an expired context
// fails every miss with the same error the per-item path would report.
func (s *Server) analyzeGroup(ctx context.Context, ms []batchMember, items []BatchItem) {
	miss := make([]batchMember, 0, len(ms))
	for _, m := range ms {
		lookup := time.Now()
		v, ok := s.cache.Get(m.key)
		s.stageSeconds.With("cache").Observe(time.Since(lookup).Seconds())
		if ok {
			_, hspan := obs.Start(ctx, "serve.cache", obs.Bool("hit", true))
			hspan.Event("result_cache.hit")
			hspan.End()
			resp := *(v.(*AnalyzeResponse))
			resp.Cached = true
			items[m.idx].Result = &resp
			continue
		}
		miss = append(miss, m)
	}
	if len(miss) == 0 {
		return
	}
	if dl, ok := ctx.Deadline(); ok {
		if err := s.shedCheck(time.Until(dl)); err != nil {
			for _, m := range miss {
				items[m.idx].Error = err.Error()
			}
			return
		}
	}

	// One queue slot covers the whole group; the job reports back over a
	// channel so an early ctx exit never races the job's item writes.
	type groupOutcome struct {
		resps  []*AnalyzeResponse
		cached []bool
		errs   []error
	}
	ch := make(chan groupOutcome, 1)
	_, qspan := obs.Start(ctx, "serve.queue")
	submitted := time.Now()
	job := func() {
		qspan.End()
		s.stageSeconds.With("queue").Observe(time.Since(submitted).Seconds())
		if ctx.Err() != nil {
			errs := make([]error, len(miss))
			for i := range errs {
				errs[i] = ctx.Err()
			}
			ch <- groupOutcome{errs: errs}
			return
		}
		cctx, cspan := obs.Start(ctx, "serve.cache", obs.Bool("hit", false))
		resps, errs := s.evaluateGroup(cctx, miss)
		cached := make([]bool, len(miss))
		for i := range miss {
			if errs[i] != nil || resps[i] == nil {
				continue
			}
			resp := resps[i]
			v, wasCached, _ := s.cache.Do(miss[i].key, func() (any, error) { return resp, nil })
			resps[i] = v.(*AnalyzeResponse)
			cached[i] = wasCached
		}
		cspan.End()
		ch <- groupOutcome{resps: resps, cached: cached, errs: errs}
	}
	if err := s.pool.Submit(job); err != nil {
		s.stageSeconds.With("queue").Observe(time.Since(submitted).Seconds())
		qspan.SetAttr(obs.String("error", err.Error()))
		qspan.End()
		for _, m := range miss {
			items[m.idx].Error = err.Error()
		}
		return
	}
	select {
	case <-ctx.Done():
		for _, m := range miss {
			items[m.idx].Error = ctx.Err().Error()
		}
	case o := <-ch:
		for i, m := range miss {
			if o.errs[i] != nil {
				items[m.idx].Error = o.errs[i].Error()
				continue
			}
			resp := *o.resps[i]
			resp.Cached = o.cached[i]
			items[m.idx].Result = &resp
		}
	}
}

// errorOf recovers the sentinel classification of a batch item error
// from its message (items keep errors as strings for the JSON shape).
func errorOf(it BatchItem) error {
	if it.Error == "" {
		return nil
	}
	if it.Error == ErrQueueFull.Error() {
		return ErrQueueFull
	}
	return errors.New(it.Error)
}

func (s *Server) handleDSE(w http.ResponseWriter, r *http.Request) {
	if !methodPost(w, r) {
		return
	}
	s.requests.With("dse").Inc()
	start := time.Now()
	defer func() { s.latency.Observe(time.Since(start).Seconds()) }()

	var req DSERequest
	if err := decodeJSON(w, r, 1<<20, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	sp, err := buildSpace(req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	layer := sp.Layer
	key := canonicalDSEKey(layer, req)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMs))
	defer cancel()

	type outcome struct {
		resp   *DSEResponse
		cached bool
		err    error
	}
	ch := make(chan outcome, 1)
	_, qspan := obs.Start(ctx, "serve.queue")
	submitted := time.Now()
	job := func() {
		qspan.End()
		s.stageSeconds.With("queue").Observe(time.Since(submitted).Seconds())
		if ctx.Err() != nil {
			ch <- outcome{err: ctx.Err()}
			return
		}
		if req.NoCache {
			ch <- outcome{resp: s.runDSETraced(ctx, req, sp)}
			return
		}
		cctx, cspan := obs.Start(ctx, "serve.cache")
		v, cached, err := s.cache.Do(key, func() (any, error) {
			return s.runDSETraced(cctx, req, sp), nil
		})
		cspan.SetAttr(obs.Bool("hit", cached))
		cspan.End()
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		ch <- outcome{resp: v.(*DSEResponse), cached: cached}
	}
	if err := s.pool.Submit(job); err != nil {
		s.stageSeconds.With("queue").Observe(time.Since(submitted).Seconds())
		qspan.SetAttr(obs.String("error", err.Error()))
		qspan.End()
		s.writeError(w, r, err)
		return
	}
	select {
	case <-ctx.Done():
		s.writeError(w, r, ctx.Err())
	case o := <-ch:
		if o.err != nil {
			s.writeError(w, r, o.err)
			return
		}
		resp := *o.resp
		resp.Key = key.String()
		resp.Cached = o.cached
		s.writeJSON(w, http.StatusOK, &resp)
	}
}

// ModelsResponse is the body of GET /v1/models.
type ModelsResponse struct {
	Models    []ModelJSON `json:"models"`
	Dataflows []string    `json:"dataflows"`
	Presets   []string    `json:"hw_presets"`
}

// ModelJSON summarizes one zoo model.
type ModelJSON struct {
	Name   string      `json:"name"`
	MACs   int64       `json:"macs"`
	Layers []LayerJSON `json:"layers"`
}

// LayerJSON summarizes one layer of a zoo model.
type LayerJSON struct {
	Name    string `json:"name"`
	Op      string `json:"op"`
	Class   string `json:"class"`
	Count   int    `json:"count"`
	N       int    `json:"n"`
	K       int    `json:"k"`
	C       int    `json:"c"`
	Y       int    `json:"y"`
	X       int    `json:"x"`
	R       int    `json:"r"`
	S       int    `json:"s"`
	StrideY int    `json:"stride_y"`
	StrideX int    `json:"stride_x"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.requests.With("models").Inc()
	resp := ModelsResponse{Dataflows: dataflowNames(), Presets: presetNames()}
	for _, name := range zooNames() {
		m, _ := models.ByName(name)
		mj := ModelJSON{Name: m.Name, MACs: m.MACs()}
		for _, li := range m.Layers {
			l := li.Layer
			mj.Layers = append(mj.Layers, LayerJSON{
				Name: l.Name, Op: l.Op.String(), Class: li.Class.String(),
				Count: li.Count,
				N:     l.Sizes.Get(tensor.N), K: l.Sizes.Get(tensor.K),
				C: l.Sizes.Get(tensor.C), Y: l.Sizes.Get(tensor.Y),
				X: l.Sizes.Get(tensor.X), R: l.Sizes.Get(tensor.R),
				S:       l.Sizes.Get(tensor.S),
				StrideY: l.StrideY, StrideX: l.StrideX,
			})
		}
		resp.Models = append(resp.Models, mj)
	}
	s.writeJSON(w, http.StatusOK, resp)
}
