package serve

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// The canonicalizer turns a resolved request into a stable cache key:
// the layer after normalization, the dataflow after augmentation
// (implicit maps made explicit and re-emitted through the DSL, so any
// surface spelling of the same mapping — builder vs DSL, whitespace,
// named vs inline — hashes identically), and the hardware configuration
// after normalization, rendered field by field in a fixed order and
// hashed with SHA-256.

func canonicalLayer(b *strings.Builder, l tensor.Layer) {
	fmt.Fprintf(b, "layer|%s|op=%s|", l.Name, l.Op)
	for _, d := range tensor.AllDims() {
		fmt.Fprintf(b, "%s=%d,", d, l.Sizes.Get(d))
	}
	fmt.Fprintf(b, "|sy=%d|sx=%d|den=%g,%g,%g\n",
		l.StrideY, l.StrideX,
		l.Density[tensor.Input], l.Density[tensor.Weight], l.Density[tensor.Output])
}

func canonicalHW(b *strings.Builder, cfg hw.Config) {
	fmt.Fprintf(b, "hw|pes=%d|vw=%d|l1=%d|l2=%d|off=%g|eb=%d|clk=%g|sparse=%t|",
		cfg.NumPEs, cfg.VectorWidth, cfg.L1Size, cfg.L2Size,
		cfg.OffchipBandwidth, cfg.ElemBytes, cfg.ClockGHz, cfg.SparseImbalance)
	for _, m := range cfg.NoCs {
		fmt.Fprintf(b, "noc:bw=%g,lat=%d,mc=%t,red=%t,ch=%d;",
			m.Bandwidth, m.AvgLatency, m.Multicast, m.Reduction, m.Channels)
	}
	b.WriteByte('\n')
}

// canonicalKey hashes the canonical encoding of a resolved analysis
// request. The hardware Name and NoC Names are presentation-only and
// excluded; the layer and dataflow names are kept because responses
// echo them.
func canonicalKey(r resolved) Key {
	var b strings.Builder
	canonicalLayer(&b, r.layer)
	aug := dataflow.Augment(r.df, r.layer)
	fmt.Fprintf(&b, "dataflow|%s|\n%s", aug.Name, aug.String())
	canonicalHW(&b, r.cfg)
	return sha256.Sum256([]byte(b.String()))
}

// canonicalDSEKey hashes a DSE request's canonical encoding.
func canonicalDSEKey(layer tensor.Layer, req DSERequest) Key {
	var b strings.Builder
	b.WriteString("dse\n")
	canonicalLayer(&b, layer)
	fmt.Fprintf(&b, "tmpl=%s|p1=%v|p2=%v|pes=%v|bws=%v|l1=%v|l2=%v|area=%g|power=%g|topk=%d\n",
		req.Template, req.P1, req.P2, req.PEs, req.BWs,
		req.L1Grid, req.L2Grid, req.AreaBudgetMM2, req.PowerBudgetMW, req.TopK)
	return sha256.Sum256([]byte(b.String()))
}
