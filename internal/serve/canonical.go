package serve

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// The canonicalizer turns a resolved request into a stable cache key:
// the layer after normalization, the dataflow after augmentation
// (implicit maps made explicit and re-emitted through the DSL, so any
// surface spelling of the same mapping — builder vs DSL, whitespace,
// named vs inline — hashes identically), and the hardware configuration
// after normalization, rendered field by field in a fixed order and
// hashed with SHA-256.

func canonicalLayer(b *strings.Builder, l tensor.Layer) {
	fmt.Fprintf(b, "layer|%s|op=%s|", l.Name, l.Op)
	for _, d := range tensor.AllDims() {
		fmt.Fprintf(b, "%s=%d,", d, l.Sizes.Get(d))
	}
	fmt.Fprintf(b, "|sy=%d|sx=%d|den=%g,%g,%g\n",
		l.StrideY, l.StrideX,
		l.Density[tensor.Input], l.Density[tensor.Weight], l.Density[tensor.Output])
}

func canonicalHW(b *strings.Builder, cfg hw.Config) {
	fmt.Fprintf(b, "hw|pes=%d|vw=%d|l1=%d|l2=%d|off=%g|eb=%d|clk=%g|sparse=%t|",
		cfg.NumPEs, cfg.VectorWidth, cfg.L1Size, cfg.L2Size,
		cfg.OffchipBandwidth, cfg.ElemBytes, cfg.ClockGHz, cfg.SparseImbalance)
	for _, m := range cfg.NoCs {
		fmt.Fprintf(b, "noc:bw=%g,lat=%d,mc=%t,red=%t,ch=%d;",
			m.Bandwidth, m.AvgLatency, m.Multicast, m.Reduction, m.Channels)
	}
	b.WriteByte('\n')
}

// canonicalKey hashes the canonical encoding of a resolved analysis
// request. The hardware Name and NoC Names are presentation-only and
// excluded; the layer and dataflow names are kept because responses
// echo them.
func canonicalKey(r resolved) Key {
	var b strings.Builder
	canonicalLayer(&b, r.layer)
	aug := dataflow.Augment(r.df, r.layer)
	fmt.Fprintf(&b, "dataflow|%s|\n%s", aug.Name, aug.String())
	canonicalHW(&b, r.cfg)
	return sha256.Sum256([]byte(b.String()))
}

// canonicalDSEKey hashes a DSE request's canonical encoding. The shard
// descriptor participates: a shard-scoped request computes a different
// space than the full sweep and must never share its cache entry.
func canonicalDSEKey(layer tensor.Layer, req DSERequest) Key {
	var b strings.Builder
	b.WriteString("dse\n")
	canonicalLayer(&b, layer)
	fmt.Fprintf(&b, "tmpl=%s|p1=%v|p2=%v|pes=%v|bws=%v|l1=%v|l2=%v|area=%g|power=%g|topk=%d\n",
		req.Template, req.P1, req.P2, req.PEs, req.BWs,
		req.L1Grid, req.L2Grid, req.AreaBudgetMM2, req.PowerBudgetMW, req.TopK)
	if sh := req.Shard; sh != nil {
		fmt.Fprintf(&b, "shard|%d/%d|pe=[%d,%d]|maps=%v\n",
			sh.Index, sh.Of, sh.PEMin, sh.PEMax, sh.Mappings)
	}
	return sha256.Sum256([]byte(b.String()))
}

// DSERouteKey hashes the canonical (layer, template, PE set) triple the
// fleet coordinator routes shards on. Profiles are keyed by (dataflow,
// layer, numPEs), so hashing exactly these fields — through the same
// canonical layer encoding the result cache uses — sends repeat sweeps
// of the same mapping family to the node whose ProfileCache already
// holds the cluster walks, whatever the bandwidth or buffer axes say.
func DSERouteKey(layer tensor.Layer, template string, pes []int) Key {
	var b strings.Builder
	b.WriteString("route\n")
	canonicalLayer(&b, layer)
	fmt.Fprintf(&b, "tmpl=%s|pes=%v\n", template, pes)
	return sha256.Sum256([]byte(b.String()))
}

// ResolveLayerSpec converts a LayerSpec into a concrete, validated
// layer — the same resolution the /v1/* handlers perform, exported for
// the fleet coordinator, which needs the layer to compute route keys
// before any request reaches a server.
func ResolveLayerSpec(ls LayerSpec) (tensor.Layer, error) { return resolveLayer(ls) }
