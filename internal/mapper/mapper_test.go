package mapper

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/noc"
	"repro/internal/tensor"
)

func testLayer() tensor.Layer {
	return tensor.Layer{
		Name: "map", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 16, tensor.C: 16, tensor.Y: 16, tensor.X: 16, tensor.R: 3, tensor.S: 3},
	}.Normalize()
}

func testCfg() hw.Config {
	m := noc.Bus(16)
	m.Reduction = true
	return hw.Config{Name: "map", NumPEs: 32, NoCs: []noc.Model{m}}.Normalize()
}

func TestCandidateLowering(t *testing.T) {
	layer := testLayer()
	c := Candidate{
		Order:   [tensor.NumDims]tensor.Dim{tensor.K, tensor.C, tensor.Y, tensor.X, tensor.R, tensor.S, tensor.N},
		Spatial: tensor.K,
		Tiles:   fullTiles(layer).Set(tensor.K, 1).Set(tensor.Y, 2),
	}
	df := c.Dataflow(layer)
	if len(df.Directives) != int(tensor.NumDims) {
		t.Fatalf("directives = %d", len(df.Directives))
	}
	// Y tile of 2 output rows lowers to size Sz(R)+1, offset 2.
	var yDir *struct{ size, offset int }
	for _, d := range df.Directives {
		if !d.IsCluster && d.Dim == tensor.Y {
			yDir = &struct{ size, offset int }{
				d.Size.Eval(layer.Sizes), d.Offset.Eval(layer.Sizes)}
		}
	}
	if yDir == nil || yDir.size != 4 || yDir.offset != 2 {
		t.Fatalf("Y directive = %+v; want size 4 offset 2", yDir)
	}
	r, err := core.AnalyzeDataflow(df, layer, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchStrategies(t *testing.T) {
	layer := testLayer()
	cfg := testCfg()
	for _, st := range []Strategy{Exhaustive, RandomSample, HillClimb} {
		best, stats, err := Search(layer, cfg, Options{Strategy: st, Budget: 300, Seed: 11})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if stats.Evaluated == 0 || stats.Evaluated > 300 {
			t.Errorf("%v: evaluated %d", st, stats.Evaluated)
		}
		if err := best.Result.CheckConservation(); err != nil {
			t.Errorf("%v: %v", st, err)
		}
		if best.Score <= 0 {
			t.Errorf("%v: score %v", st, best.Score)
		}
	}
}

// TestSearchCompetitive: with a modest budget the mapper should find a
// mapping at least as good as the best fixed Table 3 dataflow.
func TestSearchCompetitive(t *testing.T) {
	layer := testLayer()
	cfg := testCfg()
	var bestFixed int64 = -1
	for _, df := range dataflows.All() {
		r, err := core.AnalyzeDataflow(df, layer, cfg)
		if err != nil {
			continue
		}
		if bestFixed < 0 || r.Runtime < bestFixed {
			bestFixed = r.Runtime
		}
	}
	best, _, err := Search(layer, cfg, Options{Strategy: HillClimb, Budget: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if best.Result.Runtime > bestFixed {
		t.Errorf("mapper best %d cycles worse than fixed best %d", best.Result.Runtime, bestFixed)
	}
}

// TestDeterministicSeeds: the stochastic strategies reproduce with the
// same seed.
func TestDeterministicSeeds(t *testing.T) {
	layer := testLayer()
	cfg := testCfg()
	a, _, err := Search(layer, cfg, Options{Strategy: RandomSample, Budget: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Search(layer, cfg, Options{Strategy: RandomSample, Budget: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || a.Candidate.String() != b.Candidate.String() {
		t.Errorf("non-deterministic search: %v vs %v", a.Candidate, b.Candidate)
	}
}

func TestBudgetRespected(t *testing.T) {
	_, stats, err := Search(testLayer(), testCfg(), Options{Strategy: Exhaustive, Budget: 25})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evaluated > 25 {
		t.Errorf("budget exceeded: %d", stats.Evaluated)
	}
}

func TestCustomObjective(t *testing.T) {
	layer := testLayer()
	cfg := testCfg()
	energyScore := func(r *core.Result) float64 { return r.EnergyDefault().OnChip() }
	e, _, err := Search(layer, cfg, Options{Strategy: Exhaustive, Budget: 400, Score: energyScore})
	if err != nil {
		t.Fatal(err)
	}
	rt, _, err := Search(layer, cfg, Options{Strategy: Exhaustive, Budget: 400})
	if err != nil {
		t.Fatal(err)
	}
	if e.Result.EnergyDefault().OnChip() > rt.Result.EnergyDefault().OnChip() {
		t.Error("energy objective found worse energy than runtime objective")
	}
}
