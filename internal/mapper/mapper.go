// Package mapper searches the full mapping space of a layer on a fixed
// accelerator: loop orders, tile sizes, spatial dimensions, and cluster
// splits. This is the class of tool the paper positions MAESTRO to
// drive ("recent proposals on compilation and analysis tools analyze a
// broad space of software mappings") — every candidate is expressed in
// the data-centric directives and priced by the analytical engine.
//
// Three strategies are provided: exhaustive enumeration with a budget,
// uniform random sampling, and random-restart hill climbing over the
// candidate encoding. All respect an evaluation budget, since the raw
// space (7! orders x tile grids x spatial choices) is astronomically
// large.
package mapper

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// Candidate encodes one point of the mapping space.
type Candidate struct {
	// Order is the temporal nest order, outermost first; a permutation
	// of the seven dimensions.
	Order [tensor.NumDims]tensor.Dim
	// Tiles holds the per-dimension tile size. For the sliding dims Y/X
	// the tile counts output positions (the builder converts to input
	// coordinates); for all others it is the chunk size directly.
	Tiles tensor.Sizes
	// Spatial is the spatially mapped dimension of the top level.
	Spatial tensor.Dim
	// Cluster is the sub-cluster size of an optional second level that
	// spatially maps InnerSpatial; 0 keeps a single level.
	Cluster      int
	InnerSpatial tensor.Dim
}

// String renders a compact mapping signature.
func (c Candidate) String() string {
	s := ""
	for _, d := range c.Order {
		s += d.String()
	}
	out := fmt.Sprintf("%s tiles=%v spatial=%s", s, c.Tiles, c.Spatial)
	if c.Cluster > 0 {
		out += fmt.Sprintf(" cluster=%d:%s", c.Cluster, c.InnerSpatial)
	}
	return out
}

// Dataflow lowers the candidate to data-centric directives for a layer.
func (c Candidate) Dataflow(layer tensor.Layer) dataflow.Dataflow {
	df := dataflow.Dataflow{Name: "mapper"}
	for _, d := range c.Order {
		t := c.Tiles.Get(d)
		if t < 1 {
			t = 1
		}
		var size, offset dataflow.SizeExpr
		if wd, ok := d.Window(); ok {
			// t output positions need (t-1)*stride + window inputs; the
			// resolver handles the stride scaling from the symbolic form.
			size = dataflow.Sz(wd).PlusConst(t - 1)
			offset = dataflow.Lit(t)
		} else {
			size, offset = dataflow.Lit(t), dataflow.Lit(t)
		}
		if d == c.Spatial {
			df.Directives = append(df.Directives, dataflow.SMap(size, offset, d))
		} else {
			df.Directives = append(df.Directives, dataflow.TMap(size, offset, d))
		}
	}
	if c.Cluster > 1 && c.InnerSpatial != c.Spatial {
		df.Directives = append(df.Directives,
			dataflow.ClusterOf(dataflow.Lit(c.Cluster)),
			dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), c.InnerSpatial),
		)
	}
	return df
}

// Strategy selects the search algorithm.
type Strategy uint8

// Strategies.
const (
	Exhaustive Strategy = iota // deterministic enumeration up to Budget
	RandomSample
	HillClimb
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Exhaustive:
		return "exhaustive"
	case RandomSample:
		return "random"
	case HillClimb:
		return "hillclimb"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// Options configures a search.
type Options struct {
	Strategy Strategy
	// Budget caps cost-model evaluations (default 2000).
	Budget int
	// Seed drives the stochastic strategies.
	Seed int64
	// Score maps a result to the value minimized; nil minimizes runtime.
	Score func(*core.Result) float64
	// Restarts for hill climbing (default 4).
	Restarts int
}

func (o Options) normalize() Options {
	if o.Budget == 0 {
		o.Budget = 2000
	}
	if o.Score == nil {
		o.Score = func(r *core.Result) float64 { return float64(r.Runtime) }
	}
	if o.Restarts == 0 {
		o.Restarts = 4
	}
	return o
}

// Best is the winning mapping of a search.
type Best struct {
	Candidate Candidate
	Dataflow  dataflow.Dataflow
	Result    *core.Result
	Score     float64
}

// Stats summarizes a search run.
type Stats struct {
	Evaluated int // cost-model invocations
	Invalid   int // candidates the resolver or engine rejected
}

// searcher holds shared state.
type searcher struct {
	layer tensor.Layer
	cfg   hw.Config
	opt   Options
	rng   *rand.Rand

	tileChoices [tensor.NumDims][]int
	best        *Best
	stats       Stats
}

// Search explores the mapping space of a layer on a configuration.
func Search(layer tensor.Layer, cfg hw.Config, opt Options) (Best, Stats, error) {
	layer = layer.Normalize()
	cfg = cfg.Normalize()
	opt = opt.normalize()
	s := &searcher{
		layer: layer,
		cfg:   cfg,
		opt:   opt,
		rng:   rand.New(rand.NewSource(opt.Seed + 1)),
	}
	for d := tensor.Dim(0); d < tensor.NumDims; d++ {
		s.tileChoices[d] = tileChoicesFor(layer, d)
	}
	switch opt.Strategy {
	case RandomSample:
		s.randomSample()
	case HillClimb:
		s.hillClimb()
	default:
		s.exhaustive()
	}
	if s.best == nil {
		return Best{}, s.stats, fmt.Errorf("mapper: no valid mapping found in %d evaluations", s.stats.Evaluated)
	}
	return *s.best, s.stats, nil
}

// tileChoicesFor enumerates tile sizes for a dimension: powers of two,
// the full extent, and (for sliding dims) output-position counts.
func tileChoicesFor(layer tensor.Layer, d tensor.Dim) []int {
	limit := layer.Sizes.Get(d)
	if wd, ok := d.Window(); ok {
		stride := layer.StrideY
		if d == tensor.X {
			stride = layer.StrideX
		}
		limit = tensor.OutSpan(layer.Sizes.Get(d), layer.Sizes.Get(wd), stride)
	}
	var out []int
	for v := 1; v < limit; v *= 2 {
		out = append(out, v)
	}
	out = append(out, limit)
	return out
}

// evaluate prices one candidate, updating the best.
func (s *searcher) evaluate(c Candidate) (float64, bool) {
	if s.stats.Evaluated >= s.opt.Budget {
		return 0, false
	}
	df := c.Dataflow(s.layer)
	spec, err := dataflow.Resolve(df, s.layer, s.cfg.NumPEs)
	if err != nil {
		s.stats.Invalid++
		return 0, false
	}
	s.stats.Evaluated++
	r, err := core.Analyze(spec, s.cfg)
	if err != nil || r.MACs != s.layer.MACs() {
		// Reject inexact mappings (overlapping output responsibility).
		s.stats.Invalid++
		return 0, false
	}
	score := s.opt.Score(r)
	if s.best == nil || score < s.best.Score {
		s.best = &Best{Candidate: c, Dataflow: df, Result: r, Score: score}
	}
	return score, true
}

// canonicalOrders lists nest orders worth visiting deterministically:
// rotations of the canonical order plus reversals, which cover the
// stationary extremes (weight-, output-, input-stationary).
func canonicalOrders() [][tensor.NumDims]tensor.Dim {
	base := [tensor.NumDims]tensor.Dim{tensor.N, tensor.K, tensor.C, tensor.Y, tensor.X, tensor.R, tensor.S}
	var orders [][tensor.NumDims]tensor.Dim
	for shift := 0; shift < int(tensor.NumDims); shift++ {
		var o, rev [tensor.NumDims]tensor.Dim
		for i := 0; i < int(tensor.NumDims); i++ {
			o[i] = base[(i+shift)%int(tensor.NumDims)]
		}
		for i := range o {
			rev[i] = o[int(tensor.NumDims)-1-i]
		}
		orders = append(orders, o, rev)
	}
	return orders
}

// exhaustive walks a deterministic sub-grid: canonical orders x tile
// choices for the spatial dim and the innermost dims x spatial choices.
func (s *searcher) exhaustive() {
	for _, order := range canonicalOrders() {
		for _, spatial := range []tensor.Dim{tensor.K, tensor.C, tensor.Y, tensor.X} {
			for _, st := range s.tileChoices[spatial] {
				for _, cluster := range []int{0, 8} {
					c := Candidate{Order: order, Spatial: spatial, Cluster: cluster}
					if cluster > 0 {
						c.InnerSpatial = tensor.C
						if spatial == tensor.C {
							c.InnerSpatial = tensor.K
						}
					}
					c.Tiles = fullTiles(s.layer)
					c.Tiles = c.Tiles.Set(spatial, st)
					if _, ok := s.evaluate(c); !ok && s.stats.Evaluated >= s.opt.Budget {
						return
					}
				}
			}
		}
	}
}

// fullTiles returns single-chunk tiles (everything staged at once); the
// searchers shrink from there.
func fullTiles(layer tensor.Layer) tensor.Sizes {
	var t tensor.Sizes
	for d := tensor.Dim(0); d < tensor.NumDims; d++ {
		sz := layer.Sizes.Get(d)
		if wd, ok := d.Window(); ok {
			stride := layer.StrideY
			if d == tensor.X {
				stride = layer.StrideX
			}
			sz = tensor.OutSpan(layer.Sizes.Get(d), layer.Sizes.Get(wd), stride)
		}
		t = t.Set(d, sz)
	}
	return t
}

// randomCandidate draws a uniform candidate.
func (s *searcher) randomCandidate() Candidate {
	var c Candidate
	perm := s.rng.Perm(int(tensor.NumDims))
	for i, p := range perm {
		c.Order[i] = tensor.Dim(p)
	}
	for d := tensor.Dim(0); d < tensor.NumDims; d++ {
		ch := s.tileChoices[d]
		c.Tiles = c.Tiles.Set(d, ch[s.rng.Intn(len(ch))])
	}
	spatials := []tensor.Dim{tensor.K, tensor.C, tensor.Y, tensor.X}
	c.Spatial = spatials[s.rng.Intn(len(spatials))]
	if s.rng.Intn(2) == 0 {
		c.Cluster = []int{2, 4, 8, 16}[s.rng.Intn(4)]
		c.InnerSpatial = spatials[s.rng.Intn(len(spatials))]
		if c.InnerSpatial == c.Spatial {
			c.Cluster = 0
		}
	}
	return c
}

func (s *searcher) randomSample() {
	for s.stats.Evaluated < s.opt.Budget {
		s.evaluate(s.randomCandidate())
		if s.stats.Invalid > 50*s.opt.Budget {
			return // generator keeps missing; bail out
		}
	}
}

// mutate perturbs one aspect of a candidate.
func (s *searcher) mutate(c Candidate) Candidate {
	switch s.rng.Intn(4) {
	case 0: // swap two nest positions
		i, j := s.rng.Intn(len(c.Order)), s.rng.Intn(len(c.Order))
		c.Order[i], c.Order[j] = c.Order[j], c.Order[i]
	case 1: // re-draw one tile
		d := tensor.Dim(s.rng.Intn(int(tensor.NumDims)))
		ch := s.tileChoices[d]
		c.Tiles = c.Tiles.Set(d, ch[s.rng.Intn(len(ch))])
	case 2: // change the spatial dim
		spatials := []tensor.Dim{tensor.K, tensor.C, tensor.Y, tensor.X}
		c.Spatial = spatials[s.rng.Intn(len(spatials))]
	default: // toggle/adjust the cluster level
		if c.Cluster == 0 {
			c.Cluster = []int{2, 4, 8}[s.rng.Intn(3)]
			c.InnerSpatial = tensor.C
			if c.Spatial == tensor.C {
				c.InnerSpatial = tensor.K
			}
		} else {
			c.Cluster = 0
		}
	}
	return c
}

func (s *searcher) hillClimb() {
	perRestart := s.opt.Budget / s.opt.Restarts
	for r := 0; r < s.opt.Restarts && s.stats.Evaluated < s.opt.Budget; r++ {
		// Seed the restart with a valid random candidate.
		var cur Candidate
		var curScore float64
		for tries := 0; tries < 200; tries++ {
			cur = s.randomCandidate()
			if sc, ok := s.evaluate(cur); ok {
				curScore = sc
				break
			}
			if tries == 199 {
				return
			}
		}
		stall := 0
		for used := 1; used < perRestart && stall < 60 && s.stats.Evaluated < s.opt.Budget; used++ {
			next := s.mutate(cur)
			sc, ok := s.evaluate(next)
			if ok && sc < curScore {
				cur, curScore = next, sc
				stall = 0
			} else {
				stall++
			}
		}
	}
}
