package testutil

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/models"
)

func cfg256() hw.Config {
	c := hw.Accel256()
	c.L2Size = 256 << 10
	return c
}

// TestDifferZooFixed sweeps the full layer zoo under the KC-P template:
// scheduler claims must match the replay at every budget.
func TestDifferZooFixed(t *testing.T) {
	zoo := append(models.EvaluationModels(), models.GoogLeNet(), models.AlexNet())
	d := DiffSchedules(zoo, cfg256(), DiffOptions{
		Dataflows: []string{"KC-P"},
		Tol:       0.02,
	})
	if d != nil {
		t.Fatalf("first divergence: %s", d)
	}
}

// TestDifferTuned covers the auto-tuned path (compact and minimal-
// staging member re-tunes included) on the DAG-heavy models.
func TestDifferTuned(t *testing.T) {
	d := DiffSchedules([]models.Model{models.GoogLeNet(), models.MobileNetV2()}, cfg256(), DiffOptions{
		L2Bytes:   []int64{0, 256 << 10},
		Dataflows: []string{""},
		Tol:       0.02,
	})
	if d != nil {
		t.Fatalf("first divergence: %s", d)
	}
}

// TestEquivalenceMatrix: at the L2Bytes=0 sentinel the graph scheduler
// must collapse to the per-layer sum on every model x template cell.
func TestEquivalenceMatrix(t *testing.T) {
	zoo := append(models.EvaluationModels(), models.GoogLeNet())
	cells := EquivalenceMatrix(zoo, hw.Accel256(), []string{"", "KC-P"})
	if len(cells) == 0 {
		t.Fatal("empty matrix")
	}
	for _, c := range cells {
		if !c.Equal {
			t.Errorf("%s/%s: fused %d != plain %d", c.Model, c.Dataflow, c.Fused, c.Plain)
		}
	}
}
