// Package testutil holds the differential test harness for the
// graph-level scheduler: it cross-checks the scheduler's claimed DRAM
// traffic against the simulator's band-by-band replay across the model
// zoo and the Table 3 dataflow templates, and pins the fused-vs-unfused
// equivalence the L2Bytes=0 sentinel promises. Test packages across the
// repo import it; it is not part of the public API.
package testutil

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/netsched"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Divergence identifies the first disagreement the differ found: the
// model, the fusion subgraph (a span of DAG edges), and the tile height
// the scheduler chose for it.
type Divergence struct {
	Model    string
	Dataflow string // template name, or "tuned"
	L2Bytes  int64
	Group    [2]int // [Lo, Hi] layer interval of the divergent subgraph
	Tile     int    // band height in output rows (0 for unfused groups)
	Claimed  [2]int64
	Replayed [2]int64
	Detail   string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("%s/%s@%d group [%d,%d] tile %d: claimed %d/%d, replayed %d/%d (%s)",
		d.Model, d.Dataflow, d.L2Bytes, d.Group[0], d.Group[1], d.Tile,
		d.Claimed[0], d.Claimed[1], d.Replayed[0], d.Replayed[1], d.Detail)
}

// DiffOptions configures the sweep.
type DiffOptions struct {
	// L2Bytes lists the budgets to check; nil uses the sentinel plus a
	// small/medium/large ladder.
	L2Bytes []int64
	// Dataflows lists template names from the dataflows registry; the
	// empty string means the auto-tuner. Nil checks the tuner and KC-P.
	Dataflows []string
	// Tol is the fused-group tolerance (fractional); unfused groups must
	// match exactly regardless.
	Tol float64
}

func (o DiffOptions) budgets() []int64 {
	if o.L2Bytes != nil {
		return o.L2Bytes
	}
	return []int64{0, 64 << 10, 256 << 10, 1 << 20}
}

func (o DiffOptions) templates() []string {
	if o.Dataflows != nil {
		return o.Dataflows
	}
	return []string{"", "KC-P"}
}

func templateOption(name string) (netsched.Options, string) {
	if name == "" {
		return netsched.Options{}, "tuned"
	}
	df := dataflows.Get(name)
	return netsched.Options{Dataflow: func(tensor.Layer) (dataflow.Dataflow, bool) {
		return df, true
	}}, name
}

// DiffSchedules runs every model through the graph scheduler and the
// sim replay across the budget x template sweep, returning the first
// divergence or nil. Template/model combinations the engine cannot map
// are skipped — the differ validates pricing, not mappability.
func DiffSchedules(ms []models.Model, cfg hw.Config, opt DiffOptions) *Divergence {
	for _, m := range ms {
		for _, tmpl := range opt.templates() {
			base, label := templateOption(tmpl)
			for _, l2 := range opt.budgets() {
				o := base
				o.L2Bytes = l2
				s, err := netsched.RunFused(m, cfg, netsched.FuseOptions{Options: o})
				if err != nil {
					continue
				}
				rep, err := sim.ReplayFused(s)
				if err != nil {
					return &Divergence{Model: m.Name, Dataflow: label, L2Bytes: l2,
						Detail: "replay failed: " + err.Error()}
				}
				if d := firstDivergence(s, rep, opt.Tol); d != nil {
					d.Model, d.Dataflow, d.L2Bytes = m.Name, label, l2
					return d
				}
			}
		}
	}
	return nil
}

func firstDivergence(s *netsched.FusedSchedule, rep *sim.FusedReplay, tol float64) *Divergence {
	for i, gp := range s.Groups {
		gr := rep.Groups[i]
		t := tol
		if !gp.Fused {
			t = 0
		}
		okR := within(gr.DRAMReads, gp.DRAMReads, t)
		okW := within(gr.DRAMWrites, gp.DRAMWrites, t)
		if okR && okW {
			continue
		}
		detail := "reads diverge"
		if okR {
			detail = "writes diverge"
		}
		return &Divergence{
			Group:    [2]int{gp.Lo, gp.Hi},
			Tile:     gp.TileRows,
			Claimed:  [2]int64{gp.DRAMReads, gp.DRAMWrites},
			Replayed: [2]int64{gr.DRAMReads, gr.DRAMWrites},
			Detail:   detail,
		}
	}
	return nil
}

func within(a, b int64, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	base := b
	if base < 0 {
		base = -base
	}
	return float64(d) <= tol*float64(base)
}

// EquivCell is one entry of the fused-vs-unfused equivalence matrix.
type EquivCell struct {
	Model    string
	Dataflow string
	Fused    int64 // RunFused at the L2Bytes=0 sentinel
	Plain    int64 // the per-layer schedule at the same sentinel
	Equal    bool
}

// EquivalenceMatrix runs every model x template at the L2Bytes=0
// sentinel through both the graph scheduler and the plain per-layer
// scheduler. Every cell must come back Equal: with fusion and retention
// disabled the two paths are the same sum, bit for bit.
func EquivalenceMatrix(ms []models.Model, cfg hw.Config, tmpls []string) []EquivCell {
	var out []EquivCell
	for _, m := range ms {
		for _, tmpl := range tmpls {
			o, label := templateOption(tmpl)
			fused, err1 := netsched.RunFused(m, cfg, netsched.FuseOptions{Options: o})
			plain, err2 := netsched.Run(m, cfg, o)
			if err1 != nil || err2 != nil {
				continue
			}
			out = append(out, EquivCell{
				Model: m.Name, Dataflow: label,
				Fused: fused.DRAMTraffic, Plain: plain.DRAMTraffic,
				Equal: fused.DRAMTraffic == plain.DRAMTraffic,
			})
		}
	}
	return out
}
