// Package tuner implements the dataflow auto-tuner the paper names as
// future work (Section 7): given a layer and a hardware configuration,
// it searches across the dataflow styles of Table 3 *and* their tile-size
// knobs, and returns the mapping that minimizes runtime, energy, or
// energy-delay product. Combined across layers this subsumes the
// adaptive-dataflow study of Section 5.1 (which picks among fixed
// mappings only).
package tuner

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Objective selects the metric the tuner minimizes.
type Objective uint8

// Objectives.
const (
	MinRuntime Objective = iota
	MinEnergy
	MinEDP
)

// String returns the objective name.
func (o Objective) String() string {
	switch o {
	case MinRuntime:
		return "runtime"
	case MinEnergy:
		return "energy"
	case MinEDP:
		return "edp"
	}
	return fmt.Sprintf("Objective(%d)", uint8(o))
}

// Choice is one tuned mapping.
type Choice struct {
	Dataflow dataflow.Dataflow
	Result   *core.Result
	Score    float64
}

// Options configures the search.
type Options struct {
	Objective Objective
	// MaxCandidates bounds the mappings evaluated per layer (0 = all).
	MaxCandidates int
	// MaxL2Bytes, when positive, drops candidates whose L2 staging
	// requirement exceeds it. The graph-level fusion scheduler uses this
	// to reserve scratchpad for inter-layer band windows.
	MaxL2Bytes int64
}

// score evaluates the objective on a result.
func score(o Objective, r *core.Result) float64 {
	switch o {
	case MinEnergy:
		return r.EnergyDefault().OnChip()
	case MinEDP:
		return r.EnergyDefault().OnChip() * float64(r.Runtime)
	default:
		return float64(r.Runtime)
	}
}

// candidates generates the mapping search space for a layer: the five
// Table 3 styles plus tile-size variants of the parameterized templates,
// scaled to the layer's dimensions and the PE count.
func candidates(layer tensor.Layer, numPEs int) []dataflow.Dataflow {
	var out []dataflow.Dataflow
	for _, df := range dataflows.All() {
		out = append(out, df)
	}
	c := layer.Sizes.Get(tensor.C)
	k := layer.Sizes.Get(tensor.K)
	for _, cluster := range pow2Upto(min(numPEs, 128)) {
		if cluster < 2 || numPEs%cluster != 0 {
			continue
		}
		for _, ct := range pow2Upto(c) {
			if ct < cluster {
				continue
			}
			df := dataflows.KCPSized(ct, cluster)
			df.Name = fmt.Sprintf("KC-P(c%d,x%d)", ct, cluster)
			out = append(out, df)
		}
	}
	for _, ct := range pow2Upto(min(c, 32)) {
		for _, kt := range pow2Upto(min(k, 32)) {
			df := dataflows.YRPSized(ct, kt)
			df.Name = fmt.Sprintf("YR-P(c%d,k%d)", ct, kt)
			out = append(out, df)
		}
	}
	for _, xt := range []int{2, 4, 8, 16, 32} {
		if xt > layer.OutX() {
			break
		}
		df := dataflows.YXPSized(xt)
		df.Name = fmt.Sprintf("YX-P(x%d)", xt)
		out = append(out, df)
	}
	return out
}

// pow2Upto returns the powers of two up to n inclusive.
func pow2Upto(n int) []int {
	var out []int
	for v := 1; v <= n; v *= 2 {
		out = append(out, v)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TuneLayer returns the best mapping of the candidate space for one
// layer. Candidates that cannot map the layer are skipped; an error is
// returned only if none can.
func TuneLayer(layer tensor.Layer, cfg hw.Config, opt Options) (Choice, error) {
	return TuneLayerCtx(context.Background(), layer, cfg, opt)
}

// TuneLayerCtx is TuneLayer traced under ctx's obs recorder: the whole
// search runs in a "tuner.layer" span, with each candidate's profile
// fetch and pricing visible as child spans (profiles that ride the
// shared cache appear as hit events instead of walks).
func TuneLayerCtx(ctx context.Context, layer tensor.Layer, cfg hw.Config, opt Options) (Choice, error) {
	cfg = cfg.Normalize()
	ctx, span := obs.Start(ctx, "tuner.layer",
		obs.String("layer", layer.Name),
		obs.String("objective", opt.Objective.String()),
		obs.Int("pes", cfg.NumPEs))
	var best Choice
	found := false
	evaluated := 0
	for _, df := range candidates(layer, cfg.NumPEs) {
		if opt.MaxCandidates > 0 && evaluated >= opt.MaxCandidates {
			break
		}
		// The profile cache persists across layers and hardware variants:
		// re-tuning the same layer under a different NoC or vector width
		// re-prices cached profiles instead of re-running the walk.
		r, err := core.AnalyzeDataflowCachedCtx(ctx, df, layer, cfg)
		if err != nil {
			continue
		}
		if opt.MaxL2Bytes > 0 && r.L2ReqBytes() > opt.MaxL2Bytes {
			continue
		}
		evaluated++
		s := score(opt.Objective, r)
		if !found || s < best.Score {
			best = Choice{Dataflow: df, Result: r, Score: s}
			found = true
		}
	}
	span.SetAttr(obs.Int("evaluated", evaluated))
	if !found {
		span.End()
		return Choice{}, fmt.Errorf("tuner: no candidate dataflow maps layer %s", layer.Name)
	}
	span.SetAttr(obs.String("best", best.Dataflow.Name))
	span.End()
	return best, nil
}

// TuneLayerConfigs tunes one layer under several hardware variants at
// once, returning the best mapping per configuration (choices[i] pairs
// with cfgs[i]).
func TuneLayerConfigs(layer tensor.Layer, cfgs []hw.Config, opt Options) ([]Choice, error) {
	return TuneLayerConfigsCtx(context.Background(), layer, cfgs, opt)
}

// TuneLayerConfigsCtx is the hardware-sweep form of TuneLayerCtx: every
// candidate dataflow is profiled once per PE count and priced across
// all configurations sharing that PE count in a single PriceBatch walk,
// so an N-variant sweep costs one cluster walk plus N cheap pricings
// per candidate instead of N full analyses. An error is returned only
// if some configuration has no candidate that maps the layer.
func TuneLayerConfigsCtx(ctx context.Context, layer tensor.Layer, cfgs []hw.Config, opt Options) ([]Choice, error) {
	ctx, span := obs.Start(ctx, "tuner.layer_configs",
		obs.String("layer", layer.Name),
		obs.String("objective", opt.Objective.String()),
		obs.Int("configs", len(cfgs)))
	defer span.End()

	choices := make([]Choice, len(cfgs))
	found := make([]bool, len(cfgs))
	// Candidates and profiles depend on the PE count only, so configs
	// sharing one batch together per candidate.
	byPEs := map[int][]int{}
	norm := make([]hw.Config, len(cfgs))
	for i, cfg := range cfgs {
		norm[i] = cfg.Normalize()
		byPEs[norm[i].NumPEs] = append(byPEs[norm[i].NumPEs], i)
	}
	evaluated := 0
	for pes, lanes := range byPEs {
		batch := make([]hw.Config, len(lanes))
		for j, i := range lanes {
			batch[j] = norm[i]
		}
		priced := 0
		for _, df := range candidates(layer, pes) {
			if opt.MaxCandidates > 0 && priced >= opt.MaxCandidates {
				break
			}
			rs, err := core.AnalyzeDataflowCachedBatchCtx(ctx, df, layer, batch)
			if err != nil && rs == nil { // candidate cannot map the layer
				continue
			}
			priced++
			evaluated++
			for j, i := range lanes {
				if rs[j] == nil {
					continue
				}
				if opt.MaxL2Bytes > 0 && rs[j].L2ReqBytes() > opt.MaxL2Bytes {
					continue
				}
				s := score(opt.Objective, rs[j])
				if !found[i] || s < choices[i].Score {
					choices[i] = Choice{Dataflow: df, Result: rs[j], Score: s}
					found[i] = true
				}
			}
		}
	}
	span.SetAttr(obs.Int("evaluated", evaluated))
	for i, ok := range found {
		if !ok {
			return nil, fmt.Errorf("tuner: no candidate dataflow maps layer %s for config %d (%q)",
				layer.Name, i, cfgs[i].Name)
		}
	}
	return choices, nil
}

// ModelResult summarizes a tuned model.
type ModelResult struct {
	Choices []Choice
	// Runtime and EnergyPJ are totals across the tuned layers (weighted
	// by each layer's repetition count where the caller supplies one).
	Runtime  int64
	EnergyPJ float64
}

// TuneLayers tunes a list of (layer, count) pairs and accumulates totals.
func TuneLayers(layers []tensor.Layer, counts []int, cfg hw.Config, opt Options) (ModelResult, error) {
	return TuneLayersCtx(context.Background(), layers, counts, cfg, opt)
}

// TuneLayersCtx is TuneLayers with per-layer tracing under ctx.
func TuneLayersCtx(ctx context.Context, layers []tensor.Layer, counts []int, cfg hw.Config, opt Options) (ModelResult, error) {
	var mr ModelResult
	for i, l := range layers {
		ch, err := TuneLayerCtx(ctx, l, cfg, opt)
		if err != nil {
			return mr, err
		}
		n := 1
		if counts != nil {
			n = counts[i]
		}
		mr.Choices = append(mr.Choices, ch)
		mr.Runtime += ch.Result.Runtime * int64(n)
		mr.EnergyPJ += ch.Result.EnergyDefault().OnChip() * float64(n)
	}
	return mr, nil
}
