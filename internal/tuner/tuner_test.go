package tuner

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

func layer(k, c, out, r, stride int) tensor.Layer {
	in := (out-1)*stride + r
	return tensor.Layer{
		Name: "t", Op: tensor.Conv2D,
		Sizes:   tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c, tensor.Y: in, tensor.X: in, tensor.R: r, tensor.S: r},
		StrideY: stride, StrideX: stride,
	}.Normalize()
}

func TestTuneLayerBeatsFixed(t *testing.T) {
	l := layer(64, 64, 28, 3, 1)
	cfg := hw.Accel256()
	best, err := TuneLayer(l, cfg, Options{Objective: MinRuntime})
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Result.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// The tuned mapping must be at least as good as every fixed Table 3
	// dataflow (they are in the candidate set).
	for _, df := range dataflows.All() {
		r, err := core.AnalyzeDataflow(df, l, cfg)
		if err != nil {
			continue
		}
		if best.Result.Runtime > r.Runtime {
			t.Errorf("tuned %s (%d cyc) slower than fixed %s (%d cyc)",
				best.Dataflow.Name, best.Result.Runtime, df.Name, r.Runtime)
		}
	}
}

func TestObjectives(t *testing.T) {
	l := layer(32, 32, 28, 3, 1)
	cfg := hw.Accel256()
	rt, err := TuneLayer(l, cfg, Options{Objective: MinRuntime})
	if err != nil {
		t.Fatal(err)
	}
	en, err := TuneLayer(l, cfg, Options{Objective: MinEnergy})
	if err != nil {
		t.Fatal(err)
	}
	edp, err := TuneLayer(l, cfg, Options{Objective: MinEDP})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Result.Runtime > en.Result.Runtime {
		t.Errorf("runtime objective (%d) lost to energy objective (%d) on runtime",
			rt.Result.Runtime, en.Result.Runtime)
	}
	if en.Result.EnergyDefault().OnChip() > rt.Result.EnergyDefault().OnChip()+1 {
		t.Errorf("energy objective worse than runtime objective on energy")
	}
	if edp.Score > edpOf(rt)+1e-6 || edp.Score > edpOf(en)+1e-6 {
		t.Errorf("EDP objective (%g) worse than another objective's pick (%g, %g)",
			edp.Score, edpOf(rt), edpOf(en))
	}
}

func edpOf(c Choice) float64 {
	return c.Result.EnergyDefault().OnChip() * float64(c.Result.Runtime)
}

func TestMaxCandidates(t *testing.T) {
	l := layer(32, 32, 14, 3, 1)
	cfg := hw.Accel256()
	full, err := TuneLayer(l, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	one, err := TuneLayer(l, cfg, Options{MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Score < full.Score {
		t.Errorf("restricted search beat full search: %g < %g", one.Score, full.Score)
	}
}

// TestTuneLayerConfigsMatchesScalar pins the batched hardware sweep to
// the scalar tuner: for each configuration — including ones with
// different PE counts, which batch in separate profile groups — the
// chosen dataflow and score must equal an independent TuneLayer run.
func TestTuneLayerConfigsMatchesScalar(t *testing.T) {
	l := layer(32, 32, 14, 3, 1)
	cfgs := []hw.Config{hw.Accel256(), hw.MAERI64(), hw.Accel256()}
	cfgs[2].VectorWidth = 4
	opt := Options{Objective: MinEDP}

	choices, err := TuneLayerConfigs(l, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != len(cfgs) {
		t.Fatalf("got %d choices for %d configs", len(choices), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := TuneLayer(l, cfg, opt)
		if err != nil {
			t.Fatalf("config %d: scalar tune: %v", i, err)
		}
		got := choices[i]
		if got.Dataflow.Name != want.Dataflow.Name || got.Score != want.Score {
			t.Errorf("config %d (%s): batched sweep chose %s (score %g), scalar chose %s (score %g)",
				i, cfg.Name, got.Dataflow.Name, got.Score, want.Dataflow.Name, want.Score)
		}
		if got.Result.Runtime != want.Result.Runtime {
			t.Errorf("config %d: runtime %d vs scalar %d", i, got.Result.Runtime, want.Result.Runtime)
		}
	}
}

func TestTuneLayersTotals(t *testing.T) {
	vgg := models.VGG16()
	var ls []tensor.Layer
	var counts []int
	for _, li := range vgg.Layers[:3] {
		ls = append(ls, li.Layer)
		counts = append(counts, li.Count)
	}
	mr, err := TuneLayers(ls, counts, hw.Accel256(), Options{Objective: MinRuntime})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Choices) != 3 || mr.Runtime <= 0 || mr.EnergyPJ <= 0 {
		t.Fatalf("totals: %+v", mr)
	}
}

func TestCandidateNames(t *testing.T) {
	l := layer(64, 64, 28, 3, 1)
	seen := map[string]bool{}
	for _, df := range candidates(l, 256) {
		if seen[df.Name] {
			t.Errorf("duplicate candidate name %q", df.Name)
		}
		seen[df.Name] = true
	}
	for _, want := range []string{"C-P", "KC-P(c64,x16)", "YR-P(c2,k8)", "YX-P(x8)"} {
		if !seen[want] {
			var names []string
			for n := range seen {
				names = append(names, n)
			}
			t.Errorf("candidate %q missing from %s", want, strings.Join(names, ", "))
		}
	}
}
