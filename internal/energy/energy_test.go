package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSRAMMonotone(t *testing.T) {
	// Access energy must grow with capacity (the only property the
	// paper's conclusions require from the Cacti substitute).
	prev := 0.0
	for _, b := range []int64{512, 2 << 10, 64 << 10, 1 << 20, 16 << 20} {
		e := SRAMRead(b)
		if e <= prev {
			t.Errorf("SRAMRead(%d) = %v not > %v", b, e, prev)
		}
		prev = e
	}
	if SRAMRead(0) != 0 {
		t.Error("zero-capacity SRAM should cost nothing")
	}
	if SRAMWrite(2048) <= SRAMRead(2048) {
		t.Error("writes should cost more than reads")
	}
}

func TestDefaultTableOrdering(t *testing.T) {
	// 2 KB L1, 1 MB L2 (the paper's Cacti setup): MAC < L1 < L2 << DRAM.
	tb := DefaultTable(2<<10, 1<<20)
	if !(tb.MAC < tb.L1Read && tb.L1Read < tb.L2Read && tb.L2Read < tb.DRAM) {
		t.Errorf("energy ordering violated: %+v", tb)
	}
	if tb.DRAM/tb.MAC < 50 {
		t.Errorf("DRAM/MAC ratio %v implausibly low", tb.DRAM/tb.MAC)
	}
}

func TestTableForHopScaling(t *testing.T) {
	small := TableFor(2048, 1<<20, 16)
	big := TableFor(2048, 1<<20, 1024)
	if big.NoCHop <= small.NoCHop {
		t.Errorf("hop energy must grow with the array: %v vs %v", small.NoCHop, big.NoCHop)
	}
}

func TestSplitTotalsAgree(t *testing.T) {
	tb := DefaultTable(2048, 1<<20)
	a := Activity{
		MACs: 1000, L1Reads: 3000, L1Writes: 1000,
		L2Reads: 500, L2Writes: 100, NoCTransfers: 600,
		DRAMReads: 50, DRAMWrites: 10,
	}
	split := tb.Split(a)
	if math.Abs(split.Total()-tb.Total(a)) > 1e-9 {
		t.Errorf("Split total %v != Total %v", split.Total(), tb.Total(a))
	}
	if math.Abs(split.OnChip()-(split.Total()-split.DRAM)) > 1e-9 {
		t.Error("OnChip != Total - DRAM")
	}
}

// Property: energy is additive in activity.
func TestEnergyAdditive(t *testing.T) {
	tb := DefaultTable(2048, 1<<20)
	f := func(m1, m2, r1, r2 uint16) bool {
		a := Activity{MACs: int64(m1), L1Reads: int64(r1)}
		b := Activity{MACs: int64(m2), L1Reads: int64(r2)}
		sum := Activity{MACs: int64(m1) + int64(m2), L1Reads: int64(r1) + int64(r2)}
		return math.Abs(tb.Total(a)+tb.Total(b)-tb.Total(sum)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseTableRoundTrip(t *testing.T) {
	orig := DefaultTable(2048, 1<<20)
	back, err := ParseTable(orig.Format())
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip: %+v vs %+v", back, orig)
	}
}

func TestParseTableComments(t *testing.T) {
	tb, err := ParseTable("# comment\nmac: 2.5 // inline\n\nl2_read: 10\n")
	if err != nil {
		t.Fatal(err)
	}
	if tb.MAC != 2.5 || tb.L2Read != 10 || tb.L1Read != 0 {
		t.Errorf("parsed %+v", tb)
	}
}

func TestParseTableErrors(t *testing.T) {
	for _, src := range []string{"bogus: 1", "mac: lots", "mac: -1", "just text"} {
		if _, err := ParseTable(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
