// Package energy provides the per-event energy model MAESTRO multiplies
// activity counts with (Section 4.3, Figure 12).
//
// The paper feeds Cacti 6.0 simulations (28 nm, 2 KB L1, 1 MB L2) into
// this step. Cacti is unavailable here, so this package substitutes an
// analytical SRAM model calibrated against published CACTI/28 nm numbers:
// access energy grows roughly with the square root of capacity (bitline
// and wordline lengths scale with the array's side). The conclusions the
// paper draws need only the qualitative ordering (L2 access >> L1 access
// > MAC; DRAM >> everything), which the model preserves. Any table can be
// substituted (the paper suggests Accelergy), because the cost engine
// consumes a plain per-event table.
package energy

import "math"

// Table holds per-event energies in picojoules.
type Table struct {
	MAC     float64 // one multiply-accumulate
	L1Read  float64 // one element read from a PE-local scratchpad
	L1Write float64
	L2Read  float64 // one element read from the shared scratchpad
	L2Write float64
	NoCHop  float64 // moving one element across one NoC link
	DRAM    float64 // one element transferred to/from DRAM
}

// SRAMRead estimates the read energy (pJ) of one element access to a
// 28 nm SRAM scratchpad of the given byte capacity. The form
// base + k*sqrt(KB) is the standard Cacti-like capacity scaling.
func SRAMRead(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	kb := float64(bytes) / 1024
	return 0.35 + 0.9*math.Sqrt(kb)
}

// SRAMWrite estimates the write energy (pJ) of one element access;
// writes cost slightly more than reads in small scratchpads.
func SRAMWrite(bytes int64) float64 { return 1.1 * SRAMRead(bytes) }

// DefaultTable builds the per-event table for an accelerator with the
// given L1 (per-PE) and L2 (shared) scratchpad capacities, mirroring the
// paper's Cacti setup (28 nm, 2 KB L1, 1 MB L2 in the case studies).
func DefaultTable(l1Bytes, l2Bytes int64) Table {
	return Table{
		MAC:     1.0, // fixed-point MAC; the paper normalizes plots to this
		L1Read:  SRAMRead(l1Bytes),
		L1Write: SRAMWrite(l1Bytes),
		L2Read:  SRAMRead(l2Bytes),
		L2Write: SRAMWrite(l2Bytes),
		NoCHop:  0.35,
		DRAM:    200, // the conventional ~200x MAC energy for off-chip DRAM
	}
}

// TableFor returns the per-event table for an accelerator with the given
// scratchpad capacities and PE count. The NoC hop energy grows with the
// wire span of the PE array (~sqrt(PEs)), which is what makes
// many-PE/high-bandwidth designs pay for their distribution network in
// the design-space exploration.
func TableFor(l1Bytes, l2Bytes int64, numPEs int) Table {
	t := DefaultTable(l1Bytes, l2Bytes)
	t.NoCHop = 0.15 + 0.06*math.Sqrt(float64(numPEs))
	return t
}

// Activity holds the activity counts the cost-analysis engine produces
// for one layer.
type Activity struct {
	MACs                  int64
	L1Reads, L1Writes     int64
	L2Reads, L2Writes     int64
	NoCTransfers          int64
	DRAMReads, DRAMWrites int64
}

// Total returns the total energy (pJ) of the activity under the table.
func (t Table) Total(a Activity) float64 {
	return t.MAC*float64(a.MACs) +
		t.L1Read*float64(a.L1Reads) + t.L1Write*float64(a.L1Writes) +
		t.L2Read*float64(a.L2Reads) + t.L2Write*float64(a.L2Writes) +
		t.NoCHop*float64(a.NoCTransfers) +
		t.DRAM*float64(a.DRAMReads+a.DRAMWrites)
}

// Breakdown is the per-component energy split of Figure 12.
type Breakdown struct {
	MAC, L1Read, L1Write, L2Read, L2Write, NoC, DRAM float64
}

// Split returns the per-component energies (pJ) of the activity.
func (t Table) Split(a Activity) Breakdown {
	return Breakdown{
		MAC:     t.MAC * float64(a.MACs),
		L1Read:  t.L1Read * float64(a.L1Reads),
		L1Write: t.L1Write * float64(a.L1Writes),
		L2Read:  t.L2Read * float64(a.L2Reads),
		L2Write: t.L2Write * float64(a.L2Writes),
		NoC:     t.NoCHop * float64(a.NoCTransfers),
		DRAM:    t.DRAM * float64(a.DRAMReads+a.DRAMWrites),
	}
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.MAC + b.L1Read + b.L1Write + b.L2Read + b.L2Write + b.NoC + b.DRAM
}

// OnChip returns the energy excluding DRAM, the quantity Figure 12 plots.
func (b Breakdown) OnChip() float64 { return b.Total() - b.DRAM }
