package energy

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTable reads a per-event energy table from a line-oriented file,
// the substitution point the paper describes ("which can be replaced by
// any other energy model based on such activity counts (e.g.,
// Accelergy)"):
//
//	# per-event energies in picojoules
//	mac: 1.0
//	l1_read: 1.6
//	l1_write: 1.8
//	l2_read: 29.1
//	l2_write: 32.0
//	noc_hop: 0.35
//	dram: 200
//
// Missing keys keep zero; `#` and `//` start comments; unknown keys are
// errors.
func ParseTable(src string) (Table, error) {
	var t Table
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return t, fmt.Errorf("energy table line %d: expected key: value, got %q", ln+1, raw)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return t, fmt.Errorf("energy table line %d: %v", ln+1, err)
		}
		if v < 0 {
			return t, fmt.Errorf("energy table line %d: negative energy %v", ln+1, v)
		}
		switch strings.TrimSpace(key) {
		case "mac":
			t.MAC = v
		case "l1_read":
			t.L1Read = v
		case "l1_write":
			t.L1Write = v
		case "l2_read":
			t.L2Read = v
		case "l2_write":
			t.L2Write = v
		case "noc_hop":
			t.NoCHop = v
		case "dram":
			t.DRAM = v
		default:
			return t, fmt.Errorf("energy table line %d: unknown key %q", ln+1, key)
		}
	}
	return t, nil
}

// Format renders the table in the file format ParseTable reads.
func (t Table) Format() string {
	return fmt.Sprintf(
		"mac: %g\nl1_read: %g\nl1_write: %g\nl2_read: %g\nl2_write: %g\nnoc_hop: %g\ndram: %g\n",
		t.MAC, t.L1Read, t.L1Write, t.L2Read, t.L2Write, t.NoCHop, t.DRAM)
}
