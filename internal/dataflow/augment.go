package dataflow

import "repro/internal/tensor"

// Augment returns the dataflow with the implicit mappings Resolve would
// add made explicit against a layer: every dimension a cluster level
// does not mention becomes a single-chunk temporal map covering the full
// layer extent, appended innermost in canonical dimension order (the
// same position and semantics the resolver's augmentation uses — the
// chunk is clipped to the sub-problem at resolution time).
//
// The augmented dataflow is the canonical form of the original: it
// resolves to the same mapping, Augment is idempotent, and the DSL
// round trip ParseDataflow(name, df.String()) reproduces it exactly.
// The analysis service hashes this form for its result cache.
func Augment(df Dataflow, layer tensor.Layer) Dataflow {
	layer = layer.Normalize()
	out := Dataflow{Name: df.Name}
	levels, clusterSizes := df.Levels()
	for i, dirs := range levels {
		mentioned := tensor.DimSet(0)
		for _, d := range dirs {
			out.Directives = append(out.Directives, d)
			mentioned = mentioned.Add(d.Dim)
		}
		for _, d := range tensor.AllDims() {
			if !mentioned.Has(d) {
				sz := Lit(layer.Sizes.Get(d))
				out.Directives = append(out.Directives, TMap(sz, sz, d))
			}
		}
		if i < len(clusterSizes) {
			out.Directives = append(out.Directives, ClusterOf(clusterSizes[i]))
		}
	}
	return out
}
