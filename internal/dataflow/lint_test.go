package dataflow

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

func lintLayer() tensor.Layer {
	return tensor.Layer{
		Name: "lint", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 4, tensor.C: 3, tensor.Y: 12, tensor.X: 12, tensor.R: 3, tensor.S: 3},
	}.Normalize()
}

func hasCode(warns []Warning, code string) bool {
	for _, w := range warns {
		if w.Code == code {
			return true
		}
	}
	return false
}

func TestLintCleanMapping(t *testing.T) {
	df := Dataflow{Directives: []Directive{
		SMap(Lit(1), Lit(1), tensor.K),
		TMap(Sz(tensor.R), Lit(1), tensor.Y),
		TMap(Sz(tensor.S), Lit(1), tensor.X),
	}}
	warns, err := Lint(df, lintLayer(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("clean mapping warned: %v", warns)
	}
}

func TestLintUnderFilled(t *testing.T) {
	// C=3 chunks on 8 PEs.
	df := Dataflow{Directives: []Directive{
		SMap(Lit(1), Lit(1), tensor.C),
		TMap(Sz(tensor.R), Lit(1), tensor.Y),
		TMap(Sz(tensor.S), Lit(1), tensor.X),
	}}
	warns, err := Lint(df, lintLayer(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(warns, "under-filled") {
		t.Errorf("missing under-filled warning: %v", warns)
	}
}

func TestLintIdlePEsAndDegenerateCluster(t *testing.T) {
	df := Dataflow{Directives: []Directive{
		SMap(Lit(1), Lit(1), tensor.K),
		TMap(Sz(tensor.R), Lit(1), tensor.Y),
		TMap(Sz(tensor.S), Lit(1), tensor.X),
		ClusterOf(Lit(1)),
		SMap(Lit(1), Lit(1), tensor.C),
	}}
	// Cluster product 1 divides 5 PEs into 5 clusters: no idle PEs, but a
	// degenerate inner level.
	warns, err := Lint(df, lintLayer(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(warns, "degenerate-cluster") {
		t.Errorf("missing degenerate-cluster: %v", warns)
	}
	// Cluster(3) on 5 PEs leaves 2 idle.
	df2 := Dataflow{Directives: []Directive{
		SMap(Lit(1), Lit(1), tensor.K),
		TMap(Sz(tensor.R), Lit(1), tensor.Y),
		TMap(Sz(tensor.S), Lit(1), tensor.X),
		ClusterOf(Lit(3)),
		SMap(Lit(1), Lit(1), tensor.C),
	}}
	warns, err = Lint(df2, lintLayer(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(warns, "idle-pes") {
		t.Errorf("missing idle-pes: %v", warns)
	}
}

func TestLintRedundantCompute(t *testing.T) {
	// Y chunks of 2 output rows advancing by 1 row: each row recomputed.
	df := Dataflow{Directives: []Directive{
		SMap(Lit(1), Lit(1), tensor.K),
		TMap(Sz(tensor.R).PlusConst(1), Lit(1), tensor.Y),
		TMap(Sz(tensor.S), Lit(1), tensor.X),
	}}
	warns, err := Lint(df, lintLayer(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(warns, "redundant-compute") {
		t.Errorf("missing redundant-compute: %v", warns)
	}
}

func TestLintPsumSpill(t *testing.T) {
	// C (reduction) outer to the X sweep.
	df := Dataflow{Directives: []Directive{
		SMap(Lit(1), Lit(1), tensor.K),
		TMap(Lit(1), Lit(1), tensor.C),
		TMap(Sz(tensor.R), Lit(1), tensor.Y),
		TMap(Sz(tensor.S), Lit(1), tensor.X),
	}}
	warns, err := Lint(df, lintLayer(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(warns, "psum-spill") {
		t.Errorf("missing psum-spill: %v", warns)
	}
}

func TestLintNoSpatial(t *testing.T) {
	df := Dataflow{Directives: []Directive{
		TMap(Lit(1), Lit(1), tensor.K),
		TMap(Sz(tensor.R), Lit(1), tensor.Y),
		TMap(Sz(tensor.S), Lit(1), tensor.X),
	}}
	warns, err := Lint(df, lintLayer(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(warns, "no-spatial-map") {
		t.Errorf("missing no-spatial-map: %v", warns)
	}
	if !strings.Contains(warns[0].String(), "level") {
		t.Errorf("warning formatting: %q", warns[0].String())
	}
}
