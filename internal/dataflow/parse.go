package dataflow

import (
	"fmt"
	"strconv"

	"repro/internal/tensor"
)

// LayerSpec pairs a layer with the dataflow chosen for it, as parsed from
// a DSL Layer block.
type LayerSpec struct {
	Layer    tensor.Layer
	Dataflow Dataflow
}

// Network is a parsed DSL file: a named list of layers, each optionally
// carrying its own dataflow.
type Network struct {
	Name   string
	Layers []LayerSpec
}

// parser is a recursive-descent parser over the DSL token stream.
type parser struct {
	lx  *lexer
	tok token
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

// expect consumes a token of kind k or fails.
func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errorf("expected %v, found %q", k, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

// accept consumes the current token when it matches kind k.
func (p *parser) accept(k tokKind) (bool, error) {
	if p.tok.kind != k {
		return false, nil
	}
	return true, p.advance()
}

// keyword consumes an identifier with the given text or fails.
func (p *parser) keyword(word string) error {
	if p.tok.kind != tokIdent || p.tok.text != word {
		return p.errorf("expected %q, found %q", word, p.tok.text)
	}
	return p.advance()
}

// ParseNetwork parses a full DSL file:
//
//	Network vgg16 {
//	  Layer CONV1 {
//	    Type: CONV2D
//	    Stride { Y: 1, X: 1 }
//	    Dimensions { N: 1, K: 64, C: 3, Y: 224, X: 224, R: 3, S: 3 }
//	    Dataflow {
//	      SpatialMap(1,1) K;
//	      TemporalMap(64,64) C;
//	      Cluster(64);
//	      SpatialMap(1,1) C;
//	    }
//	  }
//	}
func ParseNetwork(src string) (*Network, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	if err := p.keyword("Network"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	net := &Network{Name: name.text}
	for p.tok.kind != tokRBrace {
		ls, err := p.parseLayer()
		if err != nil {
			return nil, err
		}
		net.Layers = append(net.Layers, ls)
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("trailing input after network block: %q", p.tok.text)
	}
	return net, nil
}

// ParseDataflow parses a bare directive list (the body of a Dataflow
// block), e.g. the five dataflow definitions of Table 3.
func ParseDataflow(name, src string) (Dataflow, error) {
	p, err := newParser(src)
	if err != nil {
		return Dataflow{}, err
	}
	dirs, err := p.parseDirectives(tokEOF)
	if err != nil {
		return Dataflow{}, err
	}
	return Dataflow{Name: name, Directives: dirs}, nil
}

func (p *parser) parseLayer() (LayerSpec, error) {
	var ls LayerSpec
	if err := p.keyword("Layer"); err != nil {
		return ls, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return ls, err
	}
	ls.Layer.Name = name.text
	if _, err := p.expect(tokLBrace); err != nil {
		return ls, err
	}
	for p.tok.kind != tokRBrace {
		key, err := p.expect(tokIdent)
		if err != nil {
			return ls, err
		}
		switch key.text {
		case "Type":
			if _, err := p.expect(tokColon); err != nil {
				return ls, err
			}
			tname, err := p.expect(tokIdent)
			if err != nil {
				return ls, err
			}
			op, err := tensor.ParseOpType(tname.text)
			if err != nil {
				return ls, p.errorf("%v", err)
			}
			ls.Layer.Op = op
		case "Stride":
			vals, err := p.parseDimBlock()
			if err != nil {
				return ls, err
			}
			if v, ok := vals[tensor.Y]; ok {
				ls.Layer.StrideY = v
			}
			if v, ok := vals[tensor.X]; ok {
				ls.Layer.StrideX = v
			}
		case "Density":
			if _, err := p.expect(tokLBrace); err != nil {
				return ls, err
			}
			for p.tok.kind != tokRBrace {
				kt, err := p.expect(tokIdent)
				if err != nil {
					return ls, err
				}
				var kind tensor.Kind
				switch kt.text {
				case "I", "Input":
					kind = tensor.Input
				case "W", "Weight":
					kind = tensor.Weight
				case "O", "Output":
					kind = tensor.Output
				default:
					return ls, p.errorf("unknown tensor %q in Density block", kt.text)
				}
				if _, err := p.expect(tokColon); err != nil {
					return ls, err
				}
				d, err := p.parseFloat()
				if err != nil {
					return ls, err
				}
				ls.Layer.Density[kind] = d
				if _, err := p.accept(tokComma); err != nil {
					return ls, err
				}
			}
			if _, err := p.expect(tokRBrace); err != nil {
				return ls, err
			}
		case "Dimensions":
			vals, err := p.parseDimBlock()
			if err != nil {
				return ls, err
			}
			for d, v := range vals {
				ls.Layer.Sizes = ls.Layer.Sizes.Set(d, v)
			}
		case "Dataflow":
			if _, err := p.expect(tokLBrace); err != nil {
				return ls, err
			}
			dirs, err := p.parseDirectives(tokRBrace)
			if err != nil {
				return ls, err
			}
			if _, err := p.expect(tokRBrace); err != nil {
				return ls, err
			}
			ls.Dataflow = Dataflow{Name: ls.Layer.Name, Directives: dirs}
		default:
			return ls, p.errorf("unknown layer field %q", key.text)
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return ls, err
	}
	ls.Layer = ls.Layer.Normalize()
	return ls, nil
}

// parseFloat parses a numeric token as a float (densities).
func (p *parser) parseFloat() (float64, error) {
	vt, err := p.expect(tokInt)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(vt.text, 64)
	if err != nil {
		return 0, p.errorf("bad number %q", vt.text)
	}
	if v < 0 || v > 1 {
		return 0, p.errorf("density %v outside [0,1]", v)
	}
	return v, nil
}

// parseDimBlock parses "{ DIM: INT, DIM: INT ... }" (commas optional).
func (p *parser) parseDimBlock() (map[tensor.Dim]int, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	vals := map[tensor.Dim]int{}
	for p.tok.kind != tokRBrace {
		dt, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		d, err := tensor.ParseDim(dt.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		vt, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(vt.text)
		if err != nil {
			return nil, p.errorf("bad integer %q", vt.text)
		}
		vals[d] = v
		if _, err := p.accept(tokComma); err != nil {
			return nil, err
		}
	}
	_, err := p.expect(tokRBrace)
	return vals, err
}

// parseDirectives parses directives until the given terminator token.
func (p *parser) parseDirectives(end tokKind) ([]Directive, error) {
	var dirs []Directive
	for p.tok.kind != end {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw.text {
		case "SpatialMap", "TemporalMap":
			kind := Temporal
			if kw.text == "SpatialMap" {
				kind = Spatial
			}
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			size, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma); err != nil {
				return nil, err
			}
			offset, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			dt, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			d, err := tensor.ParseDim(dt.text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			dirs = append(dirs, Directive{Kind: kind, Dim: d, Size: size, Offset: offset})
		case "Cluster":
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			size, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			// MAESTRO writes Cluster(64, P); the trailing level tag is
			// accepted and ignored.
			if ok, err := p.accept(tokComma); err != nil {
				return nil, err
			} else if ok {
				if _, err := p.expect(tokIdent); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			dirs = append(dirs, ClusterOf(size))
		default:
			return nil, p.errorf("unknown directive %q", kw.text)
		}
		if _, err := p.accept(tokSemi); err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// parseExpr parses a size expression: ['-'] Term (('+'|'-') Term)* where
// Term is INT, Sz(DIM), or INT '*' Sz(DIM). A leading minus keeps
// negative constants (e.g. the printed form of "0-1") re-parseable;
// resolution still rejects non-positive sizes.
func (p *parser) parseExpr() (SizeExpr, error) {
	lead := 1
	if p.tok.kind == tokMinus {
		if err := p.advance(); err != nil {
			return SizeExpr{}, err
		}
		lead = -1
	}
	e, err := p.parseTerm(lead)
	if err != nil {
		return e, err
	}
	for {
		sign := 0
		switch p.tok.kind {
		case tokPlus:
			sign = 1
		case tokMinus:
			sign = -1
		default:
			return e, nil
		}
		if err := p.advance(); err != nil {
			return e, err
		}
		t, err := p.parseTerm(sign)
		if err != nil {
			return e, err
		}
		e = e.Plus(t)
	}
}

func (p *parser) parseTerm(sign int) (SizeExpr, error) {
	switch p.tok.kind {
	case tokInt:
		v, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return SizeExpr{}, p.errorf("bad integer %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return SizeExpr{}, err
		}
		// Optional "* Sz(DIM)" coefficient form.
		if ok, err := p.accept(tokStar); err != nil {
			return SizeExpr{}, err
		} else if ok {
			d, err := p.parseSz()
			if err != nil {
				return SizeExpr{}, err
			}
			return SizeExpr{Terms: []SizeTerm{{Dim: d, Coef: sign * v}}}, nil
		}
		return Lit(sign * v), nil
	case tokIdent:
		if p.tok.text != "Sz" {
			return SizeExpr{}, p.errorf("expected size term, found %q", p.tok.text)
		}
		d, err := p.parseSz()
		if err != nil {
			return SizeExpr{}, err
		}
		return SizeExpr{Terms: []SizeTerm{{Dim: d, Coef: sign}}}, nil
	}
	return SizeExpr{}, p.errorf("expected size term, found %q", p.tok.text)
}

// parseSz parses "Sz(DIM)" with the leading Sz identifier current.
func (p *parser) parseSz() (tensor.Dim, error) {
	if err := p.keyword("Sz"); err != nil {
		return 0, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return 0, err
	}
	dt, err := p.expect(tokIdent)
	if err != nil {
		return 0, err
	}
	d, err := tensor.ParseDim(dt.text)
	if err != nil {
		return 0, p.errorf("%v", err)
	}
	_, err = p.expect(tokRParen)
	return d, err
}
