package dataflow

import (
	"fmt"

	"repro/internal/tensor"
)

// Spec is the output of the cluster-analysis engine (Section 4.1): a
// dataflow bound to a concrete layer and PE count, split into cluster
// levels with per-level sub-cluster counts. Per-level mapping resolution
// happens on demand through Level, because edge cases at an outer level
// shrink the sub-problem an inner level sees.
type Spec struct {
	Dataflow Dataflow
	Layer    tensor.Layer
	NumPEs   int

	levelDirs   [][]Directive
	subClusters []int
}

// NumLevels returns the number of cluster levels (Cluster directives + 1).
func (sp *Spec) NumLevels() int { return len(sp.levelDirs) }

// UsedPEs returns how many PEs the mapping occupies: the product of the
// per-level sub-cluster counts. PEs beyond this count sit idle.
func (sp *Spec) UsedPEs() int {
	p := 1
	for _, s := range sp.subClusters {
		p *= s
	}
	return p
}

// SubClusters returns how many sub-clusters level i distributes across.
func (sp *Spec) SubClusters(i int) int { return sp.subClusters[i] }

// Resolve binds a dataflow to a layer and a PE count, performing the
// cluster-structure analysis. It validates the cluster arithmetic (the
// product of cluster sizes must divide the PE count) and that no dimension
// is mapped twice within a level.
func Resolve(df Dataflow, layer tensor.Layer, numPEs int) (*Spec, error) {
	layer = layer.Normalize()
	if err := layer.Validate(); err != nil {
		return nil, err
	}
	if numPEs < 1 {
		return nil, invalidf("dataflow %s: PE count %d < 1", df.Name, numPEs)
	}
	levels, clusterSizes := df.Levels()
	sub := make([]int, len(levels))
	prod := 1
	for i, cs := range clusterSizes {
		n := cs.Eval(layer.Sizes)
		if n < 1 {
			return nil, invalidf("dataflow %s: Cluster(%s) resolves to %d", df.Name, cs, n)
		}
		sub[i+1] = n
		prod *= n
	}
	if prod > numPEs {
		return nil, invalidf("dataflow %s: cluster product %d exceeds %d PEs",
			df.Name, prod, numPEs)
	}
	// A PE count that the cluster product does not divide leaves the
	// remainder idle (utilization loss), matching MAESTRO's behaviour for
	// e.g. Cluster(Sz(R)) with R=3 on 256 PEs.
	sub[0] = numPEs / prod
	for i, dirs := range levels {
		seen := tensor.DimSet(0)
		for _, d := range dirs {
			if seen.Has(d.Dim) {
				return nil, invalidf("dataflow %s: level %d maps %s twice", df.Name, i, d.Dim)
			}
			seen = seen.Add(d.Dim)
		}
	}
	return &Spec{
		Dataflow:    df,
		Layer:       layer,
		NumPEs:      numPEs,
		levelDirs:   levels,
		subClusters: sub,
	}, nil
}

// ResolvedMap is one mapping directive bound to concrete sizes for a
// specific sub-problem.
type ResolvedMap struct {
	Kind     MapKind
	Dim      tensor.Dim
	Size     int  // steady chunk size (stride-scaled, clipped to DimSize)
	Offset   int  // chunk-to-chunk shift (stride-scaled)
	DimSize  int  // extent of Dim in this sub-problem
	Steps    int  // temporal steps (temporal maps) or spatial chunks (spatial maps)
	EdgeSize int  // size of the final chunk (== Size when unclipped)
	Implicit bool // added by augmentation for an unmentioned dimension
}

// HasEdge reports whether the final chunk is smaller than the steady chunk.
func (m ResolvedMap) HasEdge() bool { return m.EdgeSize != m.Size }

// ChunkAt returns the start index and size of chunk t.
func (m ResolvedMap) ChunkAt(t int) (start, size int) {
	start = t * m.Offset
	size = m.Size
	if t == m.Steps-1 {
		size = m.EdgeSize
	}
	return start, size
}

// Level is the fully resolved mapping of one cluster level for one
// sub-problem: every dimension appears exactly once in Maps (augmentation
// adds implicit single-chunk temporal maps), in nest order, outermost
// first.
type Level struct {
	Index       int
	SubClusters int
	Dims        tensor.Sizes
	Maps        []ResolvedMap

	// Spatial lists indices into Maps of the spatial maps (empty when the
	// level is purely temporal). All spatial maps of a level share the
	// sub-cluster index: sub-cluster p takes chunk p of each (the paper's
	// Figure 6 row-stationary inner cluster co-maps Y and R this way).
	Spatial []int
	// SpatialChunks is the per-spatial-map chunk count (validated equal
	// across the level's spatial maps); Folds is how many temporal
	// iterations the spatial maps need when SpatialChunks > SubClusters,
	// and LastFoldActive how many sub-clusters the final fold occupies.
	SpatialChunks  int
	Folds          int
	LastFoldActive int
	// FoldPos is the nest position (index into Maps) at which the implicit
	// fold loop iterates: the position of the first spatial map. -1 when
	// the level has no spatial map.
	FoldPos int
}

// Map returns the resolved map for dimension d.
func (lv *Level) Map(d tensor.Dim) *ResolvedMap {
	for i := range lv.Maps {
		if lv.Maps[i].Dim == d {
			return &lv.Maps[i]
		}
	}
	return nil
}

// IsSpatial reports whether dimension d is spatially mapped at this level.
func (lv *Level) IsSpatial(d tensor.Dim) bool {
	for _, i := range lv.Spatial {
		if lv.Maps[i].Dim == d {
			return true
		}
	}
	return false
}

// SpatialDims returns the set of spatially mapped dimensions.
func (lv *Level) SpatialDims() tensor.DimSet {
	var s tensor.DimSet
	for _, i := range lv.Spatial {
		s = s.Add(lv.Maps[i].Dim)
	}
	return s
}

// Level resolves cluster level i of the spec against sub-problem dimension
// sizes dims (for level 0, the layer's own sizes; for deeper levels, the
// tile an outer level assigned to one sub-cluster).
func (sp *Spec) Level(i int, dims tensor.Sizes) (*Level, error) {
	if i < 0 || i >= len(sp.levelDirs) {
		return nil, fmt.Errorf("level %d out of range", i)
	}
	lv := &Level{
		Index:       i,
		SubClusters: sp.subClusters[i],
		Dims:        dims,
		FoldPos:     -1,
	}
	layer := sp.Layer

	// A spatial activation map co-mapped with a spatial map on its filter
	// dimension (the Eyeriss diagonal: y = a+p, r = p) slides the filter
	// window, not the output position, and must not be stride-scaled.
	spatialOn := tensor.DimSet(0)
	for _, dir := range sp.levelDirs[i] {
		if !dir.IsCluster && dir.Kind == Spatial {
			spatialOn = spatialOn.Add(dir.Dim)
		}
	}

	// First pass: resolve explicit maps in directive order.
	mentioned := tensor.DimSet(0)
	for _, dir := range sp.levelDirs[i] {
		coMapped := false
		if wd, ok := dir.Dim.Window(); ok {
			coMapped = dir.Kind == Spatial && spatialOn.Has(wd)
		}
		m, err := resolveMap(dir, dims, layer, coMapped)
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", i, err)
		}
		mentioned = mentioned.Add(m.Dim)
		lv.Maps = append(lv.Maps, m)
	}
	// Augmentation: unmentioned dimensions become single-chunk temporal
	// maps, innermost (they never advance, so their nest position only
	// needs to not interfere with explicit maps).
	for _, d := range tensor.AllDims() {
		if !mentioned.Has(d) {
			sz := dims.Get(d)
			lv.Maps = append(lv.Maps, ResolvedMap{
				Kind: Temporal, Dim: d, Size: sz, Offset: sz,
				DimSize: sz, Steps: 1, EdgeSize: sz, Implicit: true,
			})
		}
	}

	// Second pass: step counts need the level's window chunks (a sliding
	// map's useless trailing chunk — smaller than the filter chunk — is
	// dropped), so compute them after all sizes are known.
	for idx := range lv.Maps {
		m := &lv.Maps[idx]
		if m.Implicit {
			continue
		}
		win := 0
		if wd, ok := m.Dim.Window(); ok {
			fm := lv.Map(wd)
			win = tensor.EffectiveWindow(m.Size, fm.Size, fm.DimSize)
		}
		m.Steps, m.EdgeSize = stepsFor(m.DimSize, m.Size, m.Offset, win)
		if m.Kind == Spatial {
			if lv.FoldPos == -1 {
				lv.FoldPos = idx
				lv.SpatialChunks = m.Steps
			} else if m.Steps != lv.SpatialChunks {
				return nil, invalidf(
					"level %d: co-mapped spatial dims disagree on chunk count (%s has %d, first has %d)",
					i, m.Dim, m.Steps, lv.SpatialChunks)
			}
			lv.Spatial = append(lv.Spatial, idx)
		}
	}
	if lv.FoldPos >= 0 {
		lv.Folds = (lv.SpatialChunks + lv.SubClusters - 1) / lv.SubClusters
		lv.LastFoldActive = lv.SpatialChunks - (lv.Folds-1)*lv.SubClusters
	} else {
		lv.Folds, lv.LastFoldActive = 1, lv.SubClusters
	}
	if err := lv.checkCoverage(layer); err != nil {
		return nil, err
	}
	return lv, nil
}

// resolveMap binds one directive to the sub-problem: evaluates symbolic
// sizes against the layer, applies stride scaling to sliding dimensions
// (the CLA engine's "apply stride" step), and clips to the dim extent.
func resolveMap(dir Directive, dims tensor.Sizes, layer tensor.Layer, coMapped bool) (ResolvedMap, error) {
	if dir.IsCluster {
		return ResolvedMap{}, invalidf("unexpected Cluster directive inside level")
	}
	d := dir.Dim
	dimSize := dims.Get(d)
	size := dir.Size.Eval(layer.Sizes)
	offset := dir.Offset.Eval(layer.Sizes)
	if wd, ok := d.Window(); ok && !coMapped {
		stride := layer.StrideY
		if d == tensor.X {
			stride = layer.StrideX
		}
		if stride > 1 {
			// A sliding map written for stride 1 ("c+Sz(R)" covers c+1
			// output rows) covers the same outputs at stride s with
			// size c*s+Sz(R) and an offset scaled by s.
			if dir.Size.SymbolicOf(wd) {
				size = dir.Size.Const*stride + (size - dir.Size.Const)
			}
			offset *= stride
		}
	}
	if size < 1 || offset < 1 {
		return ResolvedMap{}, invalidf("%s resolves to size %d offset %d", dir, size, offset)
	}
	if size > dimSize {
		size = dimSize
	}
	return ResolvedMap{
		Kind: dir.Kind, Dim: d, Size: size, Offset: offset,
		DimSize: dimSize, EdgeSize: size,
	}, nil
}

// stepsFor computes how many chunks a map of (size, offset) needs to cover
// a dimension of extent dim, and the size of the final chunk. For sliding
// dimensions, win is the co-mapped filter chunk: a trailing chunk smaller
// than win computes no outputs and is dropped.
func stepsFor(dim, size, offset, win int) (steps, edge int) {
	if size >= dim {
		return 1, dim
	}
	steps = (dim-size+offset-1)/offset + 1
	edge = dim - offset*(steps-1)
	if win > 0 && edge < win && steps > 1 {
		steps--
		edge = min(size, dim-offset*(steps-1))
	}
	return steps, edge
}

// checkCoverage validates that each dimension's chunks cover its full
// extent: every output position of a sliding dimension is computed by some
// chunk, and every index of a plain dimension belongs to some chunk.
// Uncovered positions mean the dataflow silently skips work, which the
// paper treats as an invalid mapping.
func (lv *Level) checkCoverage(layer tensor.Layer) error {
	for _, m := range lv.Maps {
		if m.Steps == 1 && m.EdgeSize >= m.DimSize {
			continue
		}
		if wd, ok := m.Dim.Window(); ok {
			stride := layer.StrideY
			if m.Dim == tensor.X {
				stride = layer.StrideX
			}
			if m.Kind == Spatial && lv.IsSpatial(wd) {
				// Co-mapped activation/filter pair (Eyeriss diagonal):
				// the output position per sub-cluster is fixed at
				// (offY - offR)/stride, which must be integral.
				if (m.Offset-lv.Map(wd).Offset)%stride != 0 {
					return invalidf("level %d: co-mapped %s/%s offsets misalign with stride %d",
						lv.Index, m.Dim, wd, stride)
				}
				continue
			}
			fm := lv.Map(wd)
			win := tensor.EffectiveWindow(m.Size, fm.Size, fm.DimSize)
			// Chunk t covers outputs [t*offset/stride, (t*offset+chunk-win)/stride].
			// Contiguity between consecutive steady chunks requires
			// offset <= size-win+stride; the final (possibly edge) chunk
			// must reach the last output.
			if m.Steps > 1 && m.Offset > m.Size-win+stride {
				return invalidf("level %d: map %s(%d,%d) %s leaves output gaps (window %d, stride %d)",
					lv.Index, m.Kind, m.Size, m.Offset, m.Dim, win, stride)
			}
			lastStart, lastChunk := m.ChunkAt(m.Steps - 1)
			lastOut := (lastStart + lastChunk - win) / stride
			if want := tensor.OutSpan(m.DimSize, win, stride) - 1; lastOut < want {
				return invalidf("level %d: map %s(%d,%d) %s covers outputs up to %d of %d",
					lv.Index, m.Kind, m.Size, m.Offset, m.Dim, lastOut, want)
			}
			if m.Offset%stride != 0 {
				return invalidf("level %d: map on %s has offset %d not a multiple of stride %d",
					lv.Index, m.Dim, m.Offset, stride)
			}
		} else if m.Offset > m.Size {
			return invalidf("level %d: map %s(%d,%d) %s leaves index gaps",
				lv.Index, m.Kind, m.Size, m.Offset, m.Dim)
		}
	}
	return nil
}

// SubTile returns the sub-problem dimension sizes one sub-cluster receives
// from this level when every map is at a steady (full-size) chunk.
func (lv *Level) SubTile() tensor.Sizes {
	var out tensor.Sizes
	for _, m := range lv.Maps {
		out = out.Set(m.Dim, m.Size)
	}
	return out
}
