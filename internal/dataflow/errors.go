package dataflow

import (
	"errors"
	"fmt"
)

// ErrInvalid tags every validation failure of this package — bad cluster
// arithmetic, doubly mapped dimensions, non-positive resolved sizes,
// coverage gaps. Callers distinguish "the dataflow is wrong" from
// internal faults with errors.Is(err, ErrInvalid); the analysis service
// maps the former to HTTP 400.
var ErrInvalid = errors.New("invalid dataflow")

// invalidf builds a validation error wrapping ErrInvalid.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}
