// Package dataflow implements the data-centric dataflow representation of
// the MAESTRO paper (Section 3): SpatialMap and TemporalMap directives,
// directive order, and Cluster directives for multi-level PE grouping.
//
// A Dataflow is an ordered directive list. Sizes and offsets may be given
// symbolically relative to layer dimensions (the paper's "Sz(R)" notation),
// so one dataflow describes a family of mappings across layers; Resolve
// binds a dataflow to a concrete layer and PE count (the cluster-analysis
// engine of Section 4.1).
package dataflow

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// MapKind distinguishes the two mapping directives.
type MapKind uint8

// Directive kinds.
const (
	Temporal MapKind = iota // TemporalMap: distribute across time steps
	Spatial                 // SpatialMap: distribute across sub-clusters
)

// String returns the DSL keyword for the map kind.
func (k MapKind) String() string {
	if k == Spatial {
		return "SpatialMap"
	}
	return "TemporalMap"
}

// SizeExpr is a size or offset expression: an integer constant plus any
// number of Sz(dim) terms with integer coefficients, e.g. the paper's
// "8+Sz(S)-1" is {Const: 7, Terms: [{S, 1}]}.
type SizeExpr struct {
	Const int
	Terms []SizeTerm
}

// SizeTerm is one Sz(dim) term of a SizeExpr, scaled by Coef.
type SizeTerm struct {
	Dim  tensor.Dim
	Coef int
}

// Lit returns a constant size expression.
func Lit(v int) SizeExpr { return SizeExpr{Const: v} }

// Sz returns the symbolic size of a layer dimension, the paper's "Sz(d)".
func Sz(d tensor.Dim) SizeExpr { return SizeExpr{Terms: []SizeTerm{{Dim: d, Coef: 1}}} }

// Plus returns e + f.
func (e SizeExpr) Plus(f SizeExpr) SizeExpr {
	out := SizeExpr{Const: e.Const + f.Const}
	out.Terms = append(append([]SizeTerm{}, e.Terms...), f.Terms...)
	return out
}

// PlusConst returns e + v.
func (e SizeExpr) PlusConst(v int) SizeExpr { return e.Plus(Lit(v)) }

// Eval computes the expression value for a layer's dimension sizes.
func (e SizeExpr) Eval(sz tensor.Sizes) int {
	v := e.Const
	for _, t := range e.Terms {
		v += t.Coef * sz.Get(t.Dim)
	}
	return v
}

// Symbolic reports whether the expression references any Sz(dim) term.
func (e SizeExpr) Symbolic() bool { return len(e.Terms) != 0 }

// SymbolicOf reports whether the expression references Sz(d).
func (e SizeExpr) SymbolicOf(d tensor.Dim) bool {
	for _, t := range e.Terms {
		if t.Dim == d && t.Coef != 0 {
			return true
		}
	}
	return false
}

// String renders the expression in DSL syntax.
func (e SizeExpr) String() string {
	var b strings.Builder
	wrote := false
	for _, t := range e.Terms {
		switch {
		case t.Coef == 1 && !wrote:
			fmt.Fprintf(&b, "Sz(%s)", t.Dim)
		case t.Coef == 1:
			fmt.Fprintf(&b, "+Sz(%s)", t.Dim)
		case t.Coef == -1:
			fmt.Fprintf(&b, "-Sz(%s)", t.Dim)
		case t.Coef < 0:
			fmt.Fprintf(&b, "-%d*Sz(%s)", -t.Coef, t.Dim)
		case wrote:
			fmt.Fprintf(&b, "+%d*Sz(%s)", t.Coef, t.Dim)
		default:
			fmt.Fprintf(&b, "%d*Sz(%s)", t.Coef, t.Dim)
		}
		wrote = true
	}
	switch {
	case !wrote:
		fmt.Fprintf(&b, "%d", e.Const)
	case e.Const > 0:
		fmt.Fprintf(&b, "+%d", e.Const)
	case e.Const < 0:
		fmt.Fprintf(&b, "%d", e.Const)
	}
	return b.String()
}

// Directive is one element of a dataflow description: a mapping directive
// or a cluster boundary.
type Directive struct {
	// IsCluster marks a Cluster(n) directive; Size then holds n (possibly
	// symbolic, e.g. Cluster(Sz(R)) for Eyeriss-style row clusters) and the
	// remaining fields are unused.
	IsCluster bool
	Kind      MapKind
	Dim       tensor.Dim
	Size      SizeExpr
	Offset    SizeExpr
}

// TMap builds a TemporalMap(size, offset) dim directive.
func TMap(size, offset SizeExpr, d tensor.Dim) Directive {
	return Directive{Kind: Temporal, Dim: d, Size: size, Offset: offset}
}

// SMap builds a SpatialMap(size, offset) dim directive.
func SMap(size, offset SizeExpr, d tensor.Dim) Directive {
	return Directive{Kind: Spatial, Dim: d, Size: size, Offset: offset}
}

// ClusterOf builds a Cluster(n) directive.
func ClusterOf(n SizeExpr) Directive { return Directive{IsCluster: true, Size: n} }

// String renders the directive in DSL syntax.
func (d Directive) String() string {
	if d.IsCluster {
		return fmt.Sprintf("Cluster(%s);", d.Size)
	}
	return fmt.Sprintf("%s(%s,%s) %s;", d.Kind, d.Size, d.Offset, d.Dim)
}

// Dataflow is an ordered directive list (outermost first), optionally
// named. It is the unit the paper calls "a dataflow": a schedule family
// whose concrete tile bounds bind at resolution time.
type Dataflow struct {
	Name       string
	Directives []Directive
}

// String renders the dataflow as a DSL Dataflow block body.
func (df Dataflow) String() string {
	var b strings.Builder
	for _, d := range df.Directives {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Levels splits the directive list into cluster levels: level 0 holds the
// directives above the first Cluster directive, and so on. The returned
// cluster sizes have one entry per Cluster directive (len(levels)-1).
func (df Dataflow) Levels() (levels [][]Directive, clusterSizes []SizeExpr) {
	cur := []Directive{}
	for _, d := range df.Directives {
		if d.IsCluster {
			levels = append(levels, cur)
			clusterSizes = append(clusterSizes, d.Size)
			cur = []Directive{}
			continue
		}
		cur = append(cur, d)
	}
	levels = append(levels, cur)
	return levels, clusterSizes
}
