package dataflow

import (
	"fmt"

	"repro/internal/tensor"
)

// Warning is one lint finding about a resolved mapping. Code is a stable
// identifier; Message explains the consequence in cost-model terms.
type Warning struct {
	Code    string
	Level   int
	Message string
}

func (w Warning) String() string {
	return fmt.Sprintf("[%s] level %d: %s", w.Code, w.Level, w.Message)
}

// Lint inspects a dataflow resolved against a layer and PE count and
// reports mapping inefficiencies the cost model will charge for: idle
// PEs, folded or under-filled spatial maps, redundant computation from
// overlapping output responsibility, partial-sum spills from reduction
// loops nested outside output loops, and degenerate cluster levels.
// It returns resolution errors as errors and inefficiencies as warnings.
func Lint(df Dataflow, layer tensor.Layer, numPEs int) ([]Warning, error) {
	spec, err := Resolve(df, layer, numPEs)
	if err != nil {
		return nil, err
	}
	var warns []Warning
	if used := spec.UsedPEs(); used < numPEs {
		warns = append(warns, Warning{
			Code: "idle-pes", Level: 0,
			Message: fmt.Sprintf("cluster sizes occupy %d of %d PEs; the rest idle", used, numPEs),
		})
	}

	dims := spec.Layer.Sizes
	for i := 0; i < spec.NumLevels(); i++ {
		lv, err := spec.Level(i, dims)
		if err != nil {
			return warns, err
		}
		warns = append(warns, lintLevel(spec.Layer, lv)...)
		dims = lv.SubTile()
	}
	return warns, nil
}

func lintLevel(layer tensor.Layer, lv *Level) []Warning {
	var warns []Warning
	if lv.SubClusters > 1 && len(lv.Spatial) == 0 {
		warns = append(warns, Warning{
			Code: "no-spatial-map", Level: lv.Index,
			Message: fmt.Sprintf("%d sub-clusters but no SpatialMap; all but one idle", lv.SubClusters),
		})
	}
	if len(lv.Spatial) > 0 {
		if lv.SpatialChunks < lv.SubClusters {
			warns = append(warns, Warning{
				Code: "under-filled", Level: lv.Index,
				Message: fmt.Sprintf("spatial map yields %d chunks for %d sub-clusters (%.0f%% occupancy)",
					lv.SpatialChunks, lv.SubClusters, 100*float64(lv.SpatialChunks)/float64(lv.SubClusters)),
			})
		}
		if lv.Folds > 1 && lv.LastFoldActive < lv.SubClusters {
			warns = append(warns, Warning{
				Code: "ragged-fold", Level: lv.Index,
				Message: fmt.Sprintf("%d folds with only %d of %d sub-clusters active on the last",
					lv.Folds, lv.LastFoldActive, lv.SubClusters),
			})
		}
	}
	if lv.Index > 0 && lv.SubClusters == 1 {
		warns = append(warns, Warning{
			Code: "degenerate-cluster", Level: lv.Index,
			Message: "Cluster(1) adds a level without parallelism",
		})
	}
	// Redundant compute: a sliding map whose steps overlap in output
	// space makes neighbouring steps recompute shared outputs.
	for _, m := range lv.Maps {
		wd, ok := m.Dim.Window()
		if !ok || m.Steps <= 1 {
			continue
		}
		if m.Kind == Spatial && lv.IsSpatial(wd) {
			continue // co-mapped diagonal: shifts cancel
		}
		stride := layer.StrideY
		if m.Dim == tensor.X {
			stride = layer.StrideX
		}
		span := tensor.OutSpan(m.Size, lv.Map(wd).Size, stride)
		if m.Offset < span*stride {
			warns = append(warns, Warning{
				Code: "redundant-compute", Level: lv.Index,
				Message: fmt.Sprintf("map on %s covers %d outputs per chunk but advances by %d inputs; overlapping outputs are recomputed",
					m.Dim, span, m.Offset),
			})
		}
	}
	// Partial-sum spill: a multi-step reduction dim nested outside a
	// multi-step output-coupled dim forces psums up and back per pass.
	outDims := layer.TensorDims(tensor.Output)
	reduction := layer.ReductionDims()
	seenRed := false
	for _, m := range lv.Maps {
		if m.Kind != Temporal || m.Steps <= 1 {
			continue
		}
		if reduction.Has(m.Dim) {
			seenRed = true
			continue
		}
		if outDims.Has(m.Dim) && seenRed {
			warns = append(warns, Warning{
				Code: "psum-spill", Level: lv.Index,
				Message: fmt.Sprintf("reduction loop outer to multi-step %s: partial sums spill to the parent buffer each pass",
					m.Dim),
			})
			break
		}
	}
	return warns
}
