package dataflow

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// TestParseSampleNetwork parses the repository's sample DSL file.
func TestParseSampleNetwork(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "tinynet.m"))
	if err != nil {
		t.Fatal(err)
	}
	net, err := ParseNetwork(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if net.Name != "tinynet" || len(net.Layers) != 3 {
		t.Fatalf("parsed %s with %d layers", net.Name, len(net.Layers))
	}
	conv2 := net.Layers[1]
	if conv2.Layer.StrideY != 2 || conv2.Layer.Op != tensor.Conv2D {
		t.Errorf("CONV2 = %+v", conv2.Layer)
	}
	fc := net.Layers[2]
	if fc.Layer.Op != tensor.FullyConnected || fc.Layer.Sizes.Get(tensor.R) != 1 {
		t.Errorf("FC = %+v", fc.Layer)
	}
	// Every layer's dataflow must resolve on a plausible accelerator.
	for _, ls := range net.Layers {
		if _, err := Resolve(ls.Dataflow, ls.Layer, 64); err != nil {
			t.Errorf("%s: %v", ls.Layer.Name, err)
		}
	}
}

func TestParseComments(t *testing.T) {
	df, err := ParseDataflow("c", `
		// line comment
		SpatialMap(1,1) K; /* block
		comment spanning lines */ TemporalMap(2,2) C;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(df.Directives) != 2 {
		t.Fatalf("directives = %d", len(df.Directives))
	}
}

func TestParseExprForms(t *testing.T) {
	df, err := ParseDataflow("e", `
		TemporalMap(2*Sz(R)+1, Sz(R)-1) Y;
		TemporalMap(8+Sz(S)-1, 8) X;
	`)
	if err != nil {
		t.Fatal(err)
	}
	sz := tensor.Sizes{tensor.R: 3, tensor.S: 5}
	if got := df.Directives[0].Size.Eval(sz); got != 7 {
		t.Errorf("2*Sz(R)+1 = %d; want 7", got)
	}
	if got := df.Directives[0].Offset.Eval(sz); got != 2 {
		t.Errorf("Sz(R)-1 = %d; want 2", got)
	}
	if got := df.Directives[1].Size.Eval(sz); got != 12 {
		t.Errorf("8+Sz(S)-1 = %d; want 12", got)
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	_, err := ParseNetwork("Network x {\nLayer l {\nBogus: 3\n} }")
	if err == nil {
		t.Fatal("accepted bogus field")
	}
	if want := "line 3"; !contains(err.Error(), want) {
		t.Errorf("error %q lacks %q", err.Error(), want)
	}
	_, err = ParseDataflow("d", "SpatialMap(1,1) Q;")
	if err == nil || !contains(err.Error(), "unknown dimension") {
		t.Errorf("bad dimension error: %v", err)
	}
	_, err = ParseDataflow("d", "/* unterminated")
	if err == nil {
		t.Error("unterminated comment accepted")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestParseDensityBlock(t *testing.T) {
	net, err := ParseNetwork(`Network n { Layer L {
		Type: TRCONV
		Dimensions { K: 8, C: 8, Y: 10, X: 10, R: 3, S: 3 }
		Density { I: 0.25, W: 1, O: 0.5 }
	} }`)
	if err != nil {
		t.Fatal(err)
	}
	l := net.Layers[0].Layer
	if l.Density[tensor.Input] != 0.25 || l.Density[tensor.Output] != 0.5 || l.Density[tensor.Weight] != 1 {
		t.Errorf("densities = %v", l.Density)
	}
	// Out-of-range and unknown-tensor densities are rejected.
	if _, err := ParseNetwork(`Network n { Layer L { Density { I: 1.5 } } }`); err == nil {
		t.Error("density > 1 accepted")
	}
	if _, err := ParseNetwork(`Network n { Layer L { Density { Q: 0.5 } } }`); err == nil {
		t.Error("unknown tensor accepted")
	}
}
