package dataflow

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens of the dataflow DSL.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokSemi
	tokColon
	tokPlus
	tokMinus
	tokStar
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokColon:
		return "':'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	}
	return "?"
}

// token is one lexeme with its source line for error reporting.
type token struct {
	kind tokKind
	text string
	line int
}

// lexer tokenizes DSL source. It strips //-to-end-of-line and /* */
// comments.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				return token{}, lx.errorf("unterminated block comment")
			}
			lx.line += strings.Count(lx.src[lx.pos:lx.pos+2+end+2], "\n")
			lx.pos += 2 + end + 2
		default:
			return lx.scan()
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil
}

func (lx *lexer) scan() (token, error) {
	c := lx.src[lx.pos]
	single := map[byte]tokKind{
		'(': tokLParen, ')': tokRParen, '{': tokLBrace, '}': tokRBrace,
		',': tokComma, ';': tokSemi, ':': tokColon,
		'+': tokPlus, '-': tokMinus, '*': tokStar,
	}
	if k, ok := single[c]; ok {
		lx.pos++
		return token{kind: k, text: string(c), line: lx.line}, nil
	}
	if c >= '0' && c <= '9' {
		start := lx.pos
		seenDot := false
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if ch >= '0' && ch <= '9' {
				lx.pos++
				continue
			}
			if ch == '.' && !seenDot && lx.pos+1 < len(lx.src) &&
				lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
				seenDot = true
				lx.pos++
				continue
			}
			break
		}
		return token{kind: tokInt, text: lx.src[start:lx.pos], line: lx.line}, nil
	}
	if isIdentStart(rune(c)) {
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], line: lx.line}, nil
	}
	return token{}, lx.errorf("unexpected character %q", c)
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}
