package dataflow

import (
	"strings"
	"testing"
)

// FuzzParseDataflow drives the lexer/parser with arbitrary input; it
// must never panic, and anything it accepts must round-trip through the
// printer.
func FuzzParseDataflow(f *testing.F) {
	seeds := []string{
		"SpatialMap(1,1) K;",
		"TemporalMap(Sz(R),1) Y; SpatialMap(Sz(S),1) X;",
		"Cluster(8, P); SpatialMap(1,1) C;",
		"TemporalMap(8+Sz(S)-1, 8) X;",
		"TemporalMap(2*Sz(R)+1, Sz(R)-1) Y;",
		"// comment\nSpatialMap(1,1) K",
		"/* block */ TemporalMap(1,1) N;",
		"SpatialMap(,1) K;",
		"Cluster(Sz(R));",
		"TemporalMap(1,1) Y'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		df, err := ParseDataflow("fuzz", src)
		if err != nil {
			return
		}
		printed := df.String()
		again, err := ParseDataflow("fuzz2", printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected own print %q: %v", src, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("print not a fixed point:\n%q\nvs\n%q", printed, again.String())
		}
	})
}

// FuzzParseNetwork drives the full network parser.
func FuzzParseNetwork(f *testing.F) {
	f.Add(`Network n { Layer L { Type: CONV2D Dimensions { K: 4, C: 3, Y: 8, X: 8, R: 3, S: 3 } } }`)
	f.Add(`Network n { }`)
	f.Add(`Network n { Layer L { Stride { Y: 2 } } }`)
	f.Fuzz(func(t *testing.T, src string) {
		net, err := ParseNetwork(src)
		if err != nil {
			return
		}
		if net.Name == "" && !strings.Contains(src, "Network") {
			t.Fatalf("parsed a network from %q", src)
		}
	})
}
