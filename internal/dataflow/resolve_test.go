package dataflow

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

// conv1D builds the 1D convolution of the paper's Figure 4:
// X=12 inputs (X'=12 treated as output positions via S window), S=6.
// In our input-coordinate convention that is X=17 inputs, S=6, X'=12.
func conv1D() tensor.Layer {
	return tensor.Layer{
		Name: "conv1d", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 1, tensor.C: 1, tensor.Y: 1, tensor.X: 17, tensor.R: 1, tensor.S: 6},
	}.Normalize()
}

func TestSizeExprString(t *testing.T) {
	cases := []struct {
		e    SizeExpr
		want string
	}{
		{Lit(3), "3"},
		{Sz(tensor.R), "Sz(R)"},
		{Sz(tensor.S).PlusConst(7), "Sz(S)+7"},
		{Lit(0), "0"},
		{Sz(tensor.R).Plus(Sz(tensor.S)), "Sz(R)+Sz(S)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q; want %q", got, c.want)
		}
	}
}

func TestSizeExprEval(t *testing.T) {
	sz := tensor.Sizes{tensor.R: 3, tensor.S: 5}
	if got := Sz(tensor.S).PlusConst(7).Eval(sz); got != 12 {
		t.Errorf("8+Sz(S)-1 eval = %d; want 12", got)
	}
	if !Sz(tensor.R).SymbolicOf(tensor.R) || Sz(tensor.R).SymbolicOf(tensor.S) {
		t.Error("SymbolicOf wrong")
	}
}

func TestStepsFor(t *testing.T) {
	cases := []struct {
		dim, size, offset, win int
		wantSteps, wantEdge    int
	}{
		{12, 2, 2, 0, 6, 2}, // Figure 4: X'=12 in chunks of 2
		{6, 3, 3, 0, 2, 3},  // S=6 in chunks of 3
		{10, 4, 4, 0, 3, 2}, // edge chunk of 2
		{8, 3, 1, 3, 6, 3},  // sliding window 3 over 8 => 6 placements
		{8, 3, 2, 3, 3, 3},  // drop useless trailing chunk [6,8)
		{5, 9, 9, 0, 1, 5},  // chunk covers everything
		{224, 3, 1, 3, 222, 3},
	}
	for _, c := range cases {
		steps, edge := stepsFor(c.dim, c.size, c.offset, c.win)
		if steps != c.wantSteps || edge != c.wantEdge {
			t.Errorf("stepsFor(%d,%d,%d,win=%d) = %d,%d; want %d,%d",
				c.dim, c.size, c.offset, c.win, steps, edge, c.wantSteps, c.wantEdge)
		}
	}
}

// TestFigure4 checks the paper's pedagogical output-stationary dataflow:
// SpatialMap(2,2) X'; TemporalMap(3,3) S over 3 PEs.
func TestFigure4(t *testing.T) {
	df := Dataflow{Name: "fig4", Directives: []Directive{
		SMap(Lit(7), Lit(2), tensor.X), // 2 outputs per PE: 2+Sz(S)-1 = 7 input cols
		TMap(Lit(3), Lit(3), tensor.S),
	}}
	sp, err := Resolve(df, conv1D(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumLevels() != 1 || sp.SubClusters(0) != 3 {
		t.Fatalf("levels=%d sub=%d", sp.NumLevels(), sp.SubClusters(0))
	}
	lv, err := sp.Level(0, sp.Layer.Sizes)
	if err != nil {
		t.Fatal(err)
	}
	xm := lv.Map(tensor.X)
	if xm.Kind != Spatial || xm.Steps != 6 {
		t.Errorf("X map: %+v; want 6 spatial chunks", xm)
	}
	if lv.Folds != 2 || lv.LastFoldActive != 3 {
		t.Errorf("folds=%d lastActive=%d; want 2,3", lv.Folds, lv.LastFoldActive)
	}
	sm := lv.Map(tensor.S)
	if sm.Kind != Temporal || sm.Steps != 2 || sm.EdgeSize != 3 {
		t.Errorf("S map: %+v; want 2 steps", sm)
	}
	// Implicit maps cover the remaining dims with a single chunk.
	for _, d := range []tensor.Dim{tensor.N, tensor.K, tensor.C, tensor.Y, tensor.R} {
		m := lv.Map(d)
		if m == nil || !m.Implicit || m.Steps != 1 {
			t.Errorf("dim %v: %+v; want implicit single chunk", d, m)
		}
	}
}

// TestEyerissInnerCluster checks the co-mapped SpatialMap Y + SpatialMap R
// of the row-stationary dataflow (paper Figure 6).
func TestEyerissInnerCluster(t *testing.T) {
	layer := tensor.Layer{
		Name: "fig6", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 2, tensor.K: 4, tensor.C: 6, tensor.Y: 8, tensor.X: 8, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	df := Dataflow{Name: "rs", Directives: []Directive{
		TMap(Lit(1), Lit(1), tensor.N),
		TMap(Lit(3), Lit(3), tensor.C),
		TMap(Lit(2), Lit(2), tensor.K),
		SMap(Sz(tensor.R), Lit(1), tensor.Y),
		TMap(Sz(tensor.S), Lit(1), tensor.X),
		TMap(Sz(tensor.R), Sz(tensor.R), tensor.R),
		TMap(Sz(tensor.S), Sz(tensor.S), tensor.S),
		ClusterOf(Sz(tensor.R)),
		SMap(Lit(1), Lit(1), tensor.Y),
		SMap(Lit(1), Lit(1), tensor.R),
	}}
	sp, err := Resolve(df, layer, 6)
	if err != nil {
		t.Fatal(err)
	}
	if sp.SubClusters(0) != 2 || sp.SubClusters(1) != 3 {
		t.Fatalf("subclusters = %d,%d; want 2,3", sp.SubClusters(0), sp.SubClusters(1))
	}
	lv0, err := sp.Level(0, layer.Sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Y spatial chunks: 8 rows, window 3, chunk 3, offset 1 => 6 chunks over
	// 2 clusters => 3 folds.
	if lv0.SpatialChunks != 6 || lv0.Folds != 3 {
		t.Errorf("level0 chunks=%d folds=%d; want 6,3", lv0.SpatialChunks, lv0.Folds)
	}
	// The sub-problem one cluster receives.
	sub := lv0.SubTile()
	if sub.Get(tensor.Y) != 3 || sub.Get(tensor.R) != 3 || sub.Get(tensor.K) != 2 {
		t.Errorf("subtile = %v", sub)
	}
	lv1, err := sp.Level(1, sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(lv1.Spatial) != 2 {
		t.Fatalf("inner spatial maps = %d; want 2 (co-mapped Y and R)", len(lv1.Spatial))
	}
	if lv1.SpatialChunks != 3 || lv1.Folds != 1 {
		t.Errorf("inner chunks=%d folds=%d; want 3,1", lv1.SpatialChunks, lv1.Folds)
	}
}

func TestResolveRejects(t *testing.T) {
	layer := conv1D()
	// Cluster product exceeding the PE count.
	df := Dataflow{Directives: []Directive{
		SMap(Lit(6), Lit(1), tensor.X),
		ClusterOf(Lit(8)),
		SMap(Lit(1), Lit(1), tensor.S),
	}}
	if _, err := Resolve(df, layer, 6); err == nil {
		t.Error("oversized cluster accepted")
	}
	// Non-dividing PE counts floor, leaving the remainder idle.
	df4 := Dataflow{Directives: []Directive{
		SMap(Lit(6), Lit(1), tensor.X),
		ClusterOf(Lit(4)),
		SMap(Lit(1), Lit(1), tensor.S),
	}}
	if sp, err := Resolve(df4, layer, 6); err != nil {
		t.Errorf("non-dividing PE count rejected: %v", err)
	} else if sp.SubClusters(0) != 1 || sp.UsedPEs() != 4 {
		t.Errorf("sub=%d used=%d; want 1, 4", sp.SubClusters(0), sp.UsedPEs())
	}
	// Same dim mapped twice in one level.
	df2 := Dataflow{Directives: []Directive{
		SMap(Lit(6), Lit(6), tensor.X),
		TMap(Lit(6), Lit(6), tensor.X),
	}}
	if _, err := Resolve(df2, layer, 4); err == nil {
		t.Error("duplicate dim accepted")
	}
	// Gap-leaving offset.
	df3 := Dataflow{Directives: []Directive{SMap(Lit(2), Lit(4), tensor.C)}}
	layer2 := tensor.Layer{Op: tensor.Conv2D, Sizes: tensor.Sizes{
		tensor.N: 1, tensor.K: 4, tensor.C: 16, tensor.Y: 4, tensor.X: 4, tensor.R: 1, tensor.S: 1}}.Normalize()
	if sp, err := Resolve(df3, layer2, 4); err == nil {
		if _, err := sp.Level(0, layer2.Sizes); err == nil {
			t.Error("gap-leaving map accepted")
		}
	}
}

// TestStrideScaling checks the CLA engine's stride handling: a sliding map
// written for stride 1 is rescaled so that it covers the same outputs.
func TestStrideScaling(t *testing.T) {
	layer := tensor.Layer{
		Name: "alexconv1", Op: tensor.Conv2D,
		Sizes:   tensor.Sizes{tensor.N: 1, tensor.K: 96, tensor.C: 3, tensor.Y: 227, tensor.X: 227, tensor.R: 11, tensor.S: 11},
		StrideY: 4, StrideX: 4,
	}.Normalize()
	df := Dataflow{Directives: []Directive{
		SMap(Sz(tensor.R), Lit(1), tensor.Y), // 1 output row per PE
		TMap(Sz(tensor.S), Lit(1), tensor.X), // 1 output col per step
	}}
	sp, err := Resolve(df, layer, 8)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := sp.Level(0, layer.Sizes)
	if err != nil {
		t.Fatal(err)
	}
	ym := lv.Map(tensor.Y)
	if ym.Size != 11 || ym.Offset != 4 {
		t.Errorf("Y map size=%d offset=%d; want 11,4", ym.Size, ym.Offset)
	}
	// 55 output rows (AlexNet CONV1).
	if ym.Steps != 55 {
		t.Errorf("Y chunks = %d; want 55", ym.Steps)
	}
	xm := lv.Map(tensor.X)
	if xm.Steps != 55 || xm.Offset != 4 {
		t.Errorf("X map steps=%d offset=%d; want 55,4", xm.Steps, xm.Offset)
	}
}

func TestParseNetworkRoundTrip(t *testing.T) {
	src := `
// A miniature network in the MAESTRO-style DSL.
Network tiny {
  Layer CONV1 {
    Type: CONV2D
    Stride { Y: 1, X: 1 }
    Dimensions { N: 1, K: 4, C: 3, Y: 10, X: 10, R: 3, S: 3 }
    Dataflow {
      SpatialMap(1,1) K;
      TemporalMap(8+Sz(S)-1, 8) X;
      TemporalMap(Sz(R),1) Y;
      TemporalMap(Sz(R),Sz(R)) R;
      TemporalMap(Sz(S),Sz(S)) S;
      Cluster(2, P);
      SpatialMap(1,1) C;
    }
  }
}`
	net, err := ParseNetwork(src)
	if err != nil {
		t.Fatal(err)
	}
	if net.Name != "tiny" || len(net.Layers) != 1 {
		t.Fatalf("parsed %+v", net)
	}
	ls := net.Layers[0]
	if ls.Layer.Sizes.Get(tensor.K) != 4 || ls.Layer.Op != tensor.Conv2D {
		t.Errorf("layer = %+v", ls.Layer)
	}
	if len(ls.Dataflow.Directives) != 7 {
		t.Fatalf("directives = %d; want 7", len(ls.Dataflow.Directives))
	}
	xdir := ls.Dataflow.Directives[1]
	if xdir.Size.Const != 7 || !xdir.Size.SymbolicOf(tensor.S) {
		t.Errorf("8+Sz(S)-1 parsed as %v", xdir.Size)
	}
	// Round-trip: print and reparse.
	printed := ls.Dataflow.String()
	again, err := ParseDataflow("again", printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, printed)
	}
	if len(again.Directives) != len(ls.Dataflow.Directives) {
		t.Fatalf("round trip lost directives: %d vs %d", len(again.Directives), len(ls.Dataflow.Directives))
	}
	for i, d := range again.Directives {
		if d.String() != ls.Dataflow.Directives[i].String() {
			t.Errorf("directive %d: %q vs %q", i, d.String(), ls.Dataflow.Directives[i].String())
		}
	}
	// The parsed mapping must resolve.
	if _, err := Resolve(ls.Dataflow, ls.Layer, 8); err != nil {
		t.Errorf("resolve: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"Network x { Layer l { Type: NOPE } }",
		"Network x { Layer l { Bogus: 3 } }",
		"Network x {",
		"Network x { Layer l { Dimensions { Q: 3 } } }",
		"Network x { Layer l { Dataflow { WeirdMap(1,1) K; } } }",
	}
	for _, src := range bad {
		if _, err := ParseNetwork(src); err == nil {
			t.Errorf("accepted invalid source %q", src)
		}
	}
	if _, err := ParseDataflow("d", "SpatialMap(1 1) K;"); err == nil {
		t.Error("accepted missing comma")
	}
	if !strings.Contains(Dataflow{Directives: []Directive{ClusterOf(Lit(4))}}.String(), "Cluster(4)") {
		t.Error("cluster printing broken")
	}
}
