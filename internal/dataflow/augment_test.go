package dataflow

import (
	"reflect"
	"testing"

	"repro/internal/tensor"
)

func augLayer() tensor.Layer {
	return tensor.Layer{
		Name: "conv", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 16, tensor.C: 8,
			tensor.Y: 18, tensor.X: 18, tensor.R: 3, tensor.S: 3},
	}.Normalize()
}

func TestAugmentMentionsEveryDim(t *testing.T) {
	df := Dataflow{Name: "kcp", Directives: []Directive{
		SMap(Lit(1), Lit(1), tensor.K),
		TMap(Lit(4), Lit(4), tensor.C),
		ClusterOf(Lit(4)),
		SMap(Lit(1), Lit(1), tensor.C),
	}}
	aug := Augment(df, augLayer())
	levels, _ := aug.Levels()
	if len(levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(levels))
	}
	for li, dirs := range levels {
		seen := tensor.DimSet(0)
		for _, d := range dirs {
			if seen.Has(d.Dim) {
				t.Fatalf("level %d maps %s twice", li, d.Dim)
			}
			seen = seen.Add(d.Dim)
		}
		for _, d := range tensor.AllDims() {
			if !seen.Has(d) {
				t.Fatalf("level %d misses dim %s after augmentation", li, d)
			}
		}
	}
}

func TestAugmentIdempotentAndRoundTrips(t *testing.T) {
	layer := augLayer()
	df := Dataflow{Name: "kcp", Directives: []Directive{
		SMap(Lit(1), Lit(1), tensor.K),
		TMap(Lit(4), Lit(4), tensor.C),
		TMap(Sz(tensor.R), Lit(1), tensor.Y),
		ClusterOf(Lit(4)),
		SMap(Lit(1), Lit(1), tensor.C),
	}}
	aug := Augment(df, layer)
	if again := Augment(aug, layer); !reflect.DeepEqual(aug, again) {
		t.Fatalf("Augment not idempotent:\n%s\nvs\n%s", aug, again)
	}
	re, err := ParseDataflow(aug.Name, aug.String())
	if err != nil {
		t.Fatalf("re-parse of augmented DSL failed: %v\n%s", err, aug)
	}
	if !reflect.DeepEqual(aug, re) {
		t.Fatalf("DSL round trip not a fixed point:\n%s\nvs\n%s", aug, re)
	}
}

func TestAugmentResolvesLikeOriginal(t *testing.T) {
	layer := augLayer()
	df := Dataflow{Name: "kcp", Directives: []Directive{
		SMap(Lit(1), Lit(1), tensor.K),
		TMap(Lit(4), Lit(4), tensor.C),
		ClusterOf(Lit(4)),
		SMap(Lit(1), Lit(1), tensor.C),
	}}
	orig, err := Resolve(df, layer, 64)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := Resolve(Augment(df, layer), layer, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < orig.NumLevels(); i++ {
		lo, err := orig.Level(i, layer.Sizes)
		if err != nil {
			t.Fatal(err)
		}
		la, err := aug.Level(i, layer.Sizes)
		if err != nil {
			t.Fatal(err)
		}
		if len(lo.Maps) != len(la.Maps) {
			t.Fatalf("level %d: %d maps vs %d", i, len(lo.Maps), len(la.Maps))
		}
		for j := range lo.Maps {
			mo, ma := lo.Maps[j], la.Maps[j]
			if mo.Dim != ma.Dim || mo.Kind != ma.Kind || mo.Size != ma.Size ||
				mo.Steps != ma.Steps || mo.EdgeSize != ma.EdgeSize {
				t.Fatalf("level %d map %d: %+v vs %+v", i, j, mo, ma)
			}
		}
	}
}
