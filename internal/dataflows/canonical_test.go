package dataflows

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/tensor"
)

func canonLayer(k, c, out, r, stride int) tensor.Layer {
	in := (out-1)*stride + r
	return tensor.Layer{
		Name: "l", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c,
			tensor.Y: in, tensor.X: in, tensor.R: r, tensor.S: r},
		StrideY: stride, StrideX: stride,
	}.Normalize()
}

// The serve cache keys on the augmented DSL re-emission, so for every
// Table 3 dataflow the chain parse -> augment -> String -> parse ->
// augment must be a fixed point, and the emission deterministic.
func TestCanonicalFixedPoint(t *testing.T) {
	layers := []tensor.Layer{
		canonLayer(16, 8, 14, 3, 1),
		canonLayer(64, 32, 7, 1, 1),
		canonLayer(8, 4, 9, 3, 2),
	}
	for _, name := range Names {
		df := Get(name)
		for _, layer := range layers {
			aug := dataflow.Augment(df, layer)
			src := aug.String()
			if src != dataflow.Augment(df, layer).String() {
				t.Fatalf("%s: emission not deterministic", name)
			}
			re, err := dataflow.ParseDataflow(aug.Name, src)
			if err != nil {
				t.Fatalf("%s: re-parse failed: %v\n%s", name, err, src)
			}
			if !reflect.DeepEqual(aug, re) {
				t.Fatalf("%s: parse(emit(aug)) != aug\n%s", name, src)
			}
			re2 := dataflow.Augment(re, layer)
			if !reflect.DeepEqual(re, re2) {
				t.Fatalf("%s: augment after round trip not identity", name)
			}
		}
	}
}

// Augmentation must not change the analysis: the canonical form prices
// identically to the original on every Table 3 dataflow.
func TestCanonicalAnalysisUnchanged(t *testing.T) {
	layer := canonLayer(16, 8, 14, 3, 1)
	cfg := hw.Accel256()
	for _, name := range Names {
		df := Get(name)
		want, err := core.AnalyzeDataflow(df, layer, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := core.AnalyzeDataflow(dataflow.Augment(df, layer), layer, cfg)
		if err != nil {
			t.Fatalf("%s (augmented): %v", name, err)
		}
		if want.Runtime != got.Runtime || want.MACs != got.MACs ||
			!reflect.DeepEqual(want.BufRead, got.BufRead) ||
			!reflect.DeepEqual(want.NoCTraffic, got.NoCTraffic) {
			t.Fatalf("%s: augmented analysis diverges: runtime %d vs %d",
				name, want.Runtime, got.Runtime)
		}
	}
}
