package dataflows

import (
	"repro/internal/dataflow"
	"repro/internal/tensor"
)

// The DSE of Section 5.2 explores hardware parameters for a dataflow
// *style*; the style's tile sizes (the paper's "mapping sizes in our
// directive representation") are the knobs that trade buffer capacity
// against reuse. These builders parameterize the KC-P and YR-P styles.

// KCPSized returns the NVDLA-style KC-P dataflow with a C-tile of ct
// channels staged per step and clusters of `cluster` PEs reducing over C.
func KCPSized(ct, cluster int) dataflow.Dataflow {
	if ct < cluster {
		ct = cluster
	}
	return dataflow.Dataflow{Name: "KC-P", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.TMap(dataflow.Lit(ct), dataflow.Lit(ct), tensor.C),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Sz(tensor.R), tensor.R),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Sz(tensor.S), tensor.S),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.ClusterOf(dataflow.Lit(cluster)),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C),
	}}
}

// YRPSized returns the Eyeriss-style row-stationary YR-P dataflow with
// C- and K-tiles of ct and kt.
func YRPSized(ct, kt int) dataflow.Dataflow {
	return dataflow.Dataflow{Name: "YR-P", Directives: []dataflow.Directive{
		dataflow.TMap(dataflow.Lit(ct), dataflow.Lit(ct), tensor.C),
		dataflow.TMap(dataflow.Lit(kt), dataflow.Lit(kt), tensor.K),
		dataflow.SMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Sz(tensor.R), tensor.R),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Sz(tensor.S), tensor.S),
		dataflow.ClusterOf(dataflow.Sz(tensor.R)),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.Y),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.R),
	}}
}

// YXPSized returns the ShiDianNao-style YX-P dataflow with an X strip of
// xt output columns per step.
func YXPSized(xt int) dataflow.Dataflow {
	return dataflow.Dataflow{Name: "YX-P", Directives: []dataflow.Directive{
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.SMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S).PlusConst(xt-1), dataflow.Lit(xt), tensor.X),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Sz(tensor.R), tensor.R),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Sz(tensor.S), tensor.S),
		dataflow.ClusterOf(dataflow.Lit(xt)),
		dataflow.SMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	}}
}
