// Package dataflows encodes the five dataflow styles of the paper's
// Table 3 — C-P, X-P, YX-P (ShiDianNao-style), YR-P (Eyeriss
// row-stationary style), KC-P (NVDLA-style) — and the adaptive
// per-operator selection of Section 5.1.
package dataflows

import (
	"repro/internal/dataflow"
)

// Sources holds the Table 3 definitions verbatim in the DSL, so they
// parse through the same front end a user would write them in.
var Sources = map[string]string{
	// C-P: input-channel parallelism, large spatial reduction, no local
	// reuse (NLR).
	"C-P": `
		TemporalMap(1,1) K;
		TemporalMap(Sz(R),1) Y;
		TemporalMap(Sz(S),1) X;
		TemporalMap(Sz(R),Sz(R)) R;
		TemporalMap(Sz(S),Sz(S)) S;
		SpatialMap(1,1) C;`,

	// X-P: input-column parallelism, weight-stationary (WS).
	"X-P": `
		TemporalMap(1,1) K;
		TemporalMap(1,1) C;
		TemporalMap(Sz(R),Sz(R)) R;
		TemporalMap(Sz(S),Sz(S)) S;
		TemporalMap(Sz(R),1) Y;
		SpatialMap(Sz(S),1) X;`,

	// YX-P: 2D activation parallelism, output-stationary, motivated by
	// ShiDianNao.
	"YX-P": `
		TemporalMap(1,1) K;
		SpatialMap(Sz(R),1) Y;
		TemporalMap(8+Sz(S)-1,8) X;
		TemporalMap(1,1) C;
		TemporalMap(Sz(R),Sz(R)) R;
		TemporalMap(Sz(S),Sz(S)) S;
		Cluster(8, P);
		SpatialMap(Sz(S),1) X;`,

	// YR-P: activation-row and filter-row parallelism, row-stationary,
	// motivated by Eyeriss.
	"YR-P": `
		TemporalMap(2,2) C;
		TemporalMap(2,2) K;
		SpatialMap(Sz(R),1) Y;
		TemporalMap(Sz(S),1) X;
		TemporalMap(Sz(R),Sz(R)) R;
		TemporalMap(Sz(S),Sz(S)) S;
		Cluster(Sz(R), P);
		SpatialMap(1,1) Y;
		SpatialMap(1,1) R;`,

	// KC-P: input/output-channel parallelism, weight-stationary,
	// motivated by NVDLA.
	"KC-P": `
		SpatialMap(1,1) K;
		TemporalMap(64,64) C;
		TemporalMap(Sz(R),Sz(R)) R;
		TemporalMap(Sz(S),Sz(S)) S;
		TemporalMap(Sz(R),1) Y;
		TemporalMap(Sz(S),1) X;
		Cluster(64, P);
		SpatialMap(1,1) C;`,
}

// Names lists the dataflows in the paper's plotting order.
var Names = []string{"C-P", "X-P", "YX-P", "YR-P", "KC-P"}

// Get parses and returns the named Table 3 dataflow. Unknown names panic:
// the definitions are compile-time constants of this package.
func Get(name string) dataflow.Dataflow {
	src, ok := Sources[name]
	if !ok {
		panic("dataflows: unknown dataflow " + name)
	}
	df, err := dataflow.ParseDataflow(name, src)
	if err != nil {
		panic("dataflows: bad built-in definition " + name + ": " + err.Error())
	}
	return df
}

// All returns the five dataflows in plotting order.
func All() []dataflow.Dataflow {
	out := make([]dataflow.Dataflow, len(Names))
	for i, n := range Names {
		out[i] = Get(n)
	}
	return out
}
