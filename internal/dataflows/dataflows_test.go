package dataflows

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/tensor"
)

func TestTable3Parse(t *testing.T) {
	for _, name := range Names {
		df := Get(name)
		if len(df.Directives) == 0 {
			t.Errorf("%s: empty dataflow", name)
		}
	}
	if len(All()) != 5 {
		t.Fatal("expected five dataflows")
	}
}

// TestTable3Structure spot-checks the partitioning strategy column of
// Table 3: which dimensions each dataflow parallelizes.
func TestTable3Structure(t *testing.T) {
	wantSpatial := map[string][]tensor.Dim{
		"C-P":  {tensor.C},
		"X-P":  {tensor.X},
		"YX-P": {tensor.Y, tensor.X},
		"YR-P": {tensor.Y, tensor.Y, tensor.R}, // Y at top, Y+R in cluster
		"KC-P": {tensor.K, tensor.C},
	}
	for name, want := range wantSpatial {
		df := Get(name)
		var got []tensor.Dim
		for _, d := range df.Directives {
			if !d.IsCluster && d.Kind == 1 /* Spatial */ {
				got = append(got, d.Dim)
			}
		}
		if len(got) != len(want) {
			t.Errorf("%s: spatial dims %v; want %v", name, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: spatial dims %v; want %v", name, got, want)
				break
			}
		}
	}
}

// TestConservationAcrossZoo runs every Table 3 dataflow over every layer
// of the evaluation models and checks the exactness invariants. This is
// the repository's strongest end-to-end correctness test: any chunking,
// folding, edge-case, or stride bug breaks it.
func TestConservationAcrossZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo sweep in short mode")
	}
	cfg := hw.Accel256()
	for _, m := range models.EvaluationModels() {
		for _, li := range m.Layers {
			for _, name := range Names {
				df := Get(name)
				r, err := core.AnalyzeDataflow(df, li.Layer, cfg)
				if err != nil {
					t.Errorf("%s/%s on %s: %v", m.Name, li.Layer.Name, name, err)
					continue
				}
				if err := r.CheckConservation(); err != nil {
					t.Errorf("%s/%s on %s: %v", m.Name, li.Layer.Name, name, err)
				}
			}
		}
	}
}

// TestCanonicalStationarity pins the informal names of Table 3 to
// measurable behavior on a reference layer.
func TestCanonicalStationarity(t *testing.T) {
	layer := tensor.Layer{
		Name: "ref", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 64, tensor.C: 64, tensor.Y: 30, tensor.X: 30, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	cfg := hw.Accel256()
	results := map[string]*core.Result{}
	for _, name := range Names {
		r, err := core.AnalyzeDataflow(Get(name), layer, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := r.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = r
	}
	wsize := layer.TensorSize(tensor.Weight)

	// X-P and KC-P are weight-stationary: with C fully staged (C <= 64),
	// each weight is fetched from L2 exactly once.
	for _, name := range []string{"X-P", "KC-P"} {
		if got := results[name].L2Read(tensor.Weight); got != wsize {
			t.Errorf("%s: L2 weight reads = %d; want %d (weight-stationary)", name, got, wsize)
		}
	}
	// C-P's "no local reuse": with K outer and no activation tiling kept
	// across K iterations, the input tensor is re-fetched from L2 for
	// every output channel.
	isize := layer.TensorSize(tensor.Input)
	if got := results["C-P"].L2Read(tensor.Input); got < 10*isize {
		t.Errorf("C-P L2 input reads = %d; expected many times the %d-element tensor", got, isize)
	}
	// YX-P is output-stationary: outputs leave exactly once and nothing
	// is re-read for accumulation.
	if got, want := results["YX-P"].L2Write(tensor.Output), layer.TensorSize(tensor.Output); got != want {
		t.Errorf("YX-P L2 output writes = %d; want %d", got, want)
	}
	if got := results["YX-P"].L2Read(tensor.Output); got != 0 {
		t.Errorf("YX-P L2 output reads = %d; want 0 (output-stationary)", got)
	}
	// YR-P's input reuse factor beats the channel-parallel flows on this
	// activation-heavy layer (the Figure 11 early-layer ordering).
	if results["YR-P"].ReuseFactor(tensor.Input) <= results["C-P"].ReuseFactor(tensor.Input) {
		t.Errorf("YR-P input reuse %.1f not above C-P %.1f",
			results["YR-P"].ReuseFactor(tensor.Input), results["C-P"].ReuseFactor(tensor.Input))
	}
}

// TestTemplatesMatchBase: the parameterized templates reproduce the
// Table 3 definitions at their canonical knob settings.
func TestTemplatesMatchBase(t *testing.T) {
	layer := tensor.Layer{
		Name: "ref", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 64, tensor.C: 128, tensor.Y: 30, tensor.X: 30, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	cfg := hw.Accel256()
	pairs := []struct {
		base  string
		sized func() (string, *core.Result)
	}{
		{"KC-P", func() (string, *core.Result) {
			r, err := core.AnalyzeDataflow(KCPSized(64, 64), layer, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return "KCPSized(64,64)", r
		}},
		{"YR-P", func() (string, *core.Result) {
			r, err := core.AnalyzeDataflow(YRPSized(2, 2), layer, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return "YRPSized(2,2)", r
		}},
		{"YX-P", func() (string, *core.Result) {
			r, err := core.AnalyzeDataflow(YXPSized(8), layer, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return "YXPSized(8)", r
		}},
	}
	for _, p := range pairs {
		base, err := core.AnalyzeDataflow(Get(p.base), layer, cfg)
		if err != nil {
			t.Fatal(err)
		}
		name, sized := p.sized()
		if sized.Runtime != base.Runtime || sized.MACs != base.MACs {
			t.Errorf("%s != %s: runtime %d vs %d", name, p.base, sized.Runtime, base.Runtime)
		}
	}
}
