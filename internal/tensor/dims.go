// Package tensor models the data dimensions, tensors, and layer shapes of
// DNN operators as used by the MAESTRO cost model (Kwon et al., MICRO 2019).
//
// A layer is described by seven dimensions (Figure 1 of the paper):
//
//	N  input batch
//	K  output channels
//	C  input channels
//	Y  input rows
//	X  input columns
//	R  filter rows
//	S  filter columns
//
// Y and X are input-activation coordinates; output coordinates derive from
// them through the convolution window: y' = (y-r)/stride. This matches the
// convention of the paper's Table 3, where e.g. "SpatialMap(Sz(R),1) Y"
// assigns R input rows (one output row) per PE, sliding by one.
package tensor

import "fmt"

// Dim identifies one of the seven data dimensions of a DNN operator.
type Dim uint8

// The seven canonical dimensions, in nesting-friendly order.
const (
	N Dim = iota // input batch
	K            // output channels
	C            // input channels
	Y            // input activation rows
	X            // input activation columns
	R            // filter rows
	S            // filter columns
	NumDims
)

var dimNames = [NumDims]string{"N", "K", "C", "Y", "X", "R", "S"}

// String returns the canonical single-letter name of the dimension.
func (d Dim) String() string {
	if d < NumDims {
		return dimNames[d]
	}
	return fmt.Sprintf("Dim(%d)", uint8(d))
}

// ParseDim converts a dimension name to a Dim. It accepts the canonical
// single letters as well as the output-coordinate aliases "Y'" and "X'",
// which the paper notes "should be interpreted as Y/X as appropriate".
func ParseDim(s string) (Dim, error) {
	switch s {
	case "N":
		return N, nil
	case "K":
		return K, nil
	case "C":
		return C, nil
	case "Y", "Y'":
		return Y, nil
	case "X", "X'":
		return X, nil
	case "R":
		return R, nil
	case "S":
		return S, nil
	}
	return 0, fmt.Errorf("tensor: unknown dimension %q", s)
}

// AllDims lists every dimension once, in canonical order.
func AllDims() []Dim {
	return []Dim{N, K, C, Y, X, R, S}
}

// Window returns the filter dimension that slides along d (R for Y, S for
// X) and whether d is a sliding (windowed) dimension at all.
func (d Dim) Window() (Dim, bool) {
	switch d {
	case Y:
		return R, true
	case X:
		return S, true
	}
	return 0, false
}

// Sliding reports whether d is an input-activation dimension traversed by a
// convolution window (Y or X).
func (d Dim) Sliding() bool { _, ok := d.Window(); return ok }

// DimSet is a bit set of dimensions.
type DimSet uint8

// NewDimSet builds a set containing the given dimensions.
func NewDimSet(dims ...Dim) DimSet {
	var s DimSet
	for _, d := range dims {
		s = s.Add(d)
	}
	return s
}

// Add returns the set with d included.
func (s DimSet) Add(d Dim) DimSet { return s | 1<<d }

// Has reports whether d is in the set.
func (s DimSet) Has(d Dim) bool { return s&(1<<d) != 0 }

// Union returns the union of both sets.
func (s DimSet) Union(t DimSet) DimSet { return s | t }

// Intersects reports whether the two sets share any dimension.
func (s DimSet) Intersects(t DimSet) bool { return s&t != 0 }

// Empty reports whether the set contains no dimensions.
func (s DimSet) Empty() bool { return s == 0 }

// Dims returns the members of the set in canonical order.
func (s DimSet) Dims() []Dim {
	var out []Dim
	for d := Dim(0); d < NumDims; d++ {
		if s.Has(d) {
			out = append(out, d)
		}
	}
	return out
}

// String renders the set as e.g. "{K,C,R,S}".
func (s DimSet) String() string {
	str := "{"
	for i, d := range s.Dims() {
		if i > 0 {
			str += ","
		}
		str += d.String()
	}
	return str + "}"
}

// Sizes holds a size per dimension. The zero value has every size zero; a
// valid problem has every size >= 1. Sizes is comparable and therefore
// usable as a map key, which the analysis engines exploit for memoization.
type Sizes [NumDims]int

// Get returns the size of dimension d.
func (z Sizes) Get(d Dim) int { return z[d] }

// Set returns a copy of z with dimension d set to v.
func (z Sizes) Set(d Dim, v int) Sizes {
	z[d] = v
	return z
}

// Volume returns the product of all sizes.
func (z Sizes) Volume() int64 {
	v := int64(1)
	for _, s := range z {
		v *= int64(s)
	}
	return v
}

// String renders the sizes as e.g. "N1 K64 C3 Y224 X224 R3 S3".
func (z Sizes) String() string {
	str := ""
	for d := Dim(0); d < NumDims; d++ {
		if d > 0 {
			str += " "
		}
		str += fmt.Sprintf("%s%d", d, z[d])
	}
	return str
}

// Valid reports whether every dimension has a positive size.
func (z Sizes) Valid() bool {
	for _, s := range z {
		if s < 1 {
			return false
		}
	}
	return true
}
