package tensor

import (
	"testing"
	"testing/quick"
)

func conv(name string, k, c, y, x, r, s, stride int) Layer {
	return Layer{
		Name: name, Op: Conv2D,
		Sizes:   Sizes{N: 1, K: k, C: c, Y: y, X: x, R: r, S: s},
		StrideY: stride, StrideX: stride,
	}.Normalize()
}

func TestParseDim(t *testing.T) {
	for d := Dim(0); d < NumDims; d++ {
		got, err := ParseDim(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDim(%q) = %v, %v", d.String(), got, err)
		}
	}
	for _, alias := range []struct {
		s string
		d Dim
	}{{"Y'", Y}, {"X'", X}} {
		got, err := ParseDim(alias.s)
		if err != nil || got != alias.d {
			t.Errorf("ParseDim(%q) = %v, %v; want %v", alias.s, got, err, alias.d)
		}
	}
	if _, err := ParseDim("Z"); err == nil {
		t.Error("ParseDim(Z) succeeded; want error")
	}
}

func TestDimWindow(t *testing.T) {
	if w, ok := Y.Window(); !ok || w != R {
		t.Errorf("Y.Window() = %v, %v; want R, true", w, ok)
	}
	if w, ok := X.Window(); !ok || w != S {
		t.Errorf("X.Window() = %v, %v; want S, true", w, ok)
	}
	for _, d := range []Dim{N, K, C, R, S} {
		if _, ok := d.Window(); ok {
			t.Errorf("%v.Window() reported a window", d)
		}
	}
}

func TestDimSet(t *testing.T) {
	s := NewDimSet(K, C, R, S)
	if !s.Has(K) || !s.Has(S) || s.Has(N) || s.Has(Y) {
		t.Errorf("membership wrong for %v", s)
	}
	if got := s.String(); got != "{K,C,R,S}" {
		t.Errorf("String() = %q", got)
	}
	if !s.Intersects(NewDimSet(C)) || s.Intersects(NewDimSet(N, X)) {
		t.Error("Intersects wrong")
	}
	if NewDimSet().String() != "{}" || !NewDimSet().Empty() {
		t.Error("empty set misbehaves")
	}
}

func TestOutSpan(t *testing.T) {
	cases := []struct{ in, win, stride, want int }{
		{224, 3, 1, 222},
		{226, 3, 1, 224},
		{227, 11, 4, 55}, // AlexNet CONV1
		{5, 3, 2, 2},
		{2, 3, 1, 0}, // chunk smaller than window
		{3, 3, 1, 1},
		{8, 3, 1, 6}, // Figure 1 example
	}
	for _, c := range cases {
		if got := OutSpan(c.in, c.win, c.stride); got != c.want {
			t.Errorf("OutSpan(%d,%d,%d) = %d; want %d", c.in, c.win, c.stride, got, c.want)
		}
	}
}

func TestLayerFigure1(t *testing.T) {
	// The paper's Figure 1: N=2, K=4, C=6, Y=X=8, R=S=3 => Y'=X'=6.
	l := Layer{Op: Conv2D, Sizes: Sizes{N: 2, K: 4, C: 6, Y: 8, X: 8, R: 3, S: 3}}.Normalize()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.OutY() != 6 || l.OutX() != 6 {
		t.Fatalf("out = %dx%d; want 6x6", l.OutY(), l.OutX())
	}
	wantMACs := int64(2 * 4 * 6 * 6 * 6 * 3 * 3)
	if l.MACs() != wantMACs {
		t.Fatalf("MACs = %d; want %d", l.MACs(), wantMACs)
	}
	if got := l.TensorSize(Output); got != 2*4*6*6 {
		t.Fatalf("output size = %d; want %d", got, 2*4*6*6)
	}
	if got := l.TensorSize(Input); got != 2*6*8*8 {
		t.Fatalf("input size = %d; want %d", got, 2*6*8*8)
	}
	if got := l.TensorSize(Weight); got != 4*6*3*3 {
		t.Fatalf("weight size = %d; want %d", got, 4*6*3*3)
	}
}

func TestCouplingTable1(t *testing.T) {
	// Dense convolution coupling, per Table 1 of the paper.
	l := conv("c", 64, 64, 56, 56, 3, 3, 1)
	if got, want := l.TensorDims(Weight), NewDimSet(K, C, R, S); got != want {
		t.Errorf("weight coupling = %v; want %v", got, want)
	}
	if got, want := l.TensorDims(Input), NewDimSet(N, C, Y, X); got != want {
		t.Errorf("input coupling = %v; want %v", got, want)
	}
	if got, want := l.TensorDims(Output), NewDimSet(N, K, Y, X); got != want {
		t.Errorf("output coupling = %v; want %v", got, want)
	}
	if got, want := l.ReductionDims(), NewDimSet(C, R, S); got != want {
		t.Errorf("reduction dims = %v; want %v", got, want)
	}
}

func TestDepthwiseCoupling(t *testing.T) {
	// Section 4.1: "in depth-wise convolutions, output activation is not
	// coupled with the output-channel dimension but coupled with the input
	// channel dimension".
	l := Layer{Op: DepthwiseConv, Sizes: Sizes{N: 1, K: 1, C: 32, Y: 112, X: 112, R: 3, S: 3}}.Normalize()
	if l.TensorDims(Output).Has(K) || !l.TensorDims(Output).Has(C) {
		t.Errorf("depthwise output coupling = %v", l.TensorDims(Output))
	}
	if l.TensorDims(Weight).Has(K) {
		t.Errorf("depthwise weight coupling = %v", l.TensorDims(Weight))
	}
	if l.ReductionDims().Has(C) {
		t.Errorf("depthwise reduction dims = %v", l.ReductionDims())
	}
}

func TestNormalizeDefaults(t *testing.T) {
	l := Layer{Op: FullyConnected, Sizes: Sizes{N: 1, K: 1000, C: 4096}}.Normalize()
	if l.Sizes[Y] != 1 || l.Sizes[R] != 1 || l.StrideY != 1 {
		t.Errorf("FC normalize: %+v", l)
	}
	if l.Density[Input] != 1 {
		t.Errorf("density default = %v", l.Density)
	}
	if l.MACs() != 1000*4096 {
		t.Errorf("FC MACs = %d", l.MACs())
	}
}

func TestAlgorithmicReuse(t *testing.T) {
	l := conv("c", 64, 64, 58, 58, 3, 3, 1)
	// Each weight is reused across N*Y'*X' MACs.
	want := float64(l.MACs()) / float64(64*64*3*3)
	if got := l.AlgorithmicReuse(Weight); got != want {
		t.Errorf("weight reuse = %v; want %v", got, want)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := Layer{Op: Conv2D, Sizes: Sizes{N: 1, K: 8, C: 8, Y: 2, X: 2, R: 3, S: 3}}.Normalize()
	if err := bad.Validate(); err == nil {
		t.Error("filter larger than activation accepted")
	}
	neg := Layer{Op: Conv2D}
	if err := neg.Validate(); err == nil {
		t.Error("zero sizes accepted")
	}
}

// Property: OutSpan is monotone in the input extent and consistent with
// exhaustively counting valid window placements.
func TestOutSpanProperty(t *testing.T) {
	f := func(in, win, stride uint8) bool {
		i, w, d := int(in%200)+1, int(win%7)+1, int(stride%4)+1
		count := 0
		for p := 0; p+w <= i; p += d {
			count++
		}
		return OutSpan(i, w, d) == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total MACs equal output volume times reduction volume.
func TestMACsProperty(t *testing.T) {
	f := func(k, c, y, r uint8) bool {
		l := conv("p", int(k%32)+1, int(c%32)+1, int(y%60)+int(r%3)+1+3, int(y%40)+int(r%3)+1+3, int(r%3)+1, int(r%3)+1, 1)
		if l.Validate() != nil {
			return true // skip invalid shapes
		}
		return l.MACs() == l.TensorSize(Output)*int64(l.Sizes[C])*int64(l.Sizes[R])*int64(l.Sizes[S])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveWindow(t *testing.T) {
	cases := []struct{ act, chunk, full, want int }{
		{6, 1, 6, 6},  // full window staged: anchored
		{6, 3, 6, 6},  // partial taps, anchored
		{3, 3, 3, 3},  // fully mapped filter
		{1, 1, 3, 1},  // diagonal co-mapping (Eyeriss)
		{2, 1, 3, 1},  // still too small to host the window
		{10, 3, 3, 3}, // big chunk, full filter
	}
	for _, c := range cases {
		if got := EffectiveWindow(c.act, c.chunk, c.full); got != c.want {
			t.Errorf("EffectiveWindow(%d,%d,%d) = %d; want %d", c.act, c.chunk, c.full, got, c.want)
		}
	}
}

func TestSizesVolumeAndString(t *testing.T) {
	z := Sizes{N: 2, K: 3, C: 4, Y: 5, X: 6, R: 7, S: 8}
	if z.Volume() != 2*3*4*5*6*7*8 {
		t.Errorf("volume = %d", z.Volume())
	}
	if z.String() != "N2 K3 C4 Y5 X6 R7 S8" {
		t.Errorf("string = %q", z.String())
	}
	if (Sizes{}).Valid() {
		t.Error("zero sizes valid")
	}
	if !z.Valid() {
		t.Error("positive sizes invalid")
	}
	if z.Set(K, 9).Get(K) != 9 || z.Get(K) != 3 {
		t.Error("Set must copy")
	}
}

func TestEffectiveMACsPooling(t *testing.T) {
	// Pooling's weight-density-zero convention means "no weight traffic",
	// not "no compute".
	l := Layer{Op: Pooling, Sizes: Sizes{N: 1, C: 8, Y: 10, X: 10, R: 2, S: 2},
		StrideY: 2, StrideX: 2}.Normalize()
	if l.EffectiveMACs() != l.MACs() {
		t.Errorf("pooling effective %d != dense %d", l.EffectiveMACs(), l.MACs())
	}
	if l.MACs() != int64(8*5*5*4) {
		t.Errorf("pooling MACs = %d", l.MACs())
	}
}
