package tensor

import (
	"errors"
	"fmt"
)

// ErrInvalidLayer tags layer-validation failures (non-positive sizes,
// filter exceeding the activation, bad strides) so callers can tell a
// malformed workload apart from an internal fault with
// errors.Is(err, ErrInvalidLayer).
var ErrInvalidLayer = errors.New("invalid layer")

// Kind identifies one of the three tensors that participate in a DNN
// operator: the two operands and the result.
type Kind uint8

// The three tensor kinds.
const (
	Input  Kind = iota // input activations I[N][C][Y][X]
	Weight             // filter weights    W[K][C][R][S]
	Output             // output activations O[N][K][Y'][X']
	NumKinds
)

var kindNames = [NumKinds]string{"Input", "Weight", "Output"}

// String returns the tensor kind name.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// AllKinds lists every tensor kind once.
func AllKinds() []Kind { return []Kind{Input, Weight, Output} }

// OpType classifies the DNN operators the model understands (Table 4 of
// the paper). All are expressed on the seven-dimensional iteration space;
// the type determines dimension coupling and operator bookkeeping.
type OpType uint8

// Supported operator types.
const (
	Conv2D         OpType = iota // dense 2D convolution
	DepthwiseConv                // depth-wise convolution: output coupled to C, not K
	PointwiseConv                // 1x1 convolution (R=S=1)
	FullyConnected               // GEMM: O[N][K] += W[K][C] * I[N][C]
	TransposedConv               // up-scaling convolution (structured input sparsity)
	Pooling                      // window reduction; no weight tensor traffic
	GEMM                         // general matrix multiply (e.g. LSTM gates)
	NumOpTypes
)

var opNames = [NumOpTypes]string{
	"CONV2D", "DWCONV", "PWCONV", "FC", "TRCONV", "POOL", "GEMM",
}

// String returns the canonical operator name used by the DSL.
func (o OpType) String() string {
	if o < NumOpTypes {
		return opNames[o]
	}
	return fmt.Sprintf("OpType(%d)", uint8(o))
}

// ParseOpType converts an operator name (as printed by String) to OpType.
func ParseOpType(s string) (OpType, error) {
	for i, n := range opNames {
		if n == s {
			return OpType(i), nil
		}
	}
	return 0, fmt.Errorf("tensor: unknown operator type %q", s)
}

// Layer describes one DNN layer: its operator type, its seven dimension
// sizes (Y and X in input coordinates), strides, and per-tensor densities
// for the uniform sparsity model of Section 4.4.
type Layer struct {
	Name    string
	Op      OpType
	Sizes   Sizes
	StrideY int
	StrideX int
	// Density holds the fraction of non-zero elements per tensor kind.
	// Zero values are normalized to 1.0 (dense) by Normalize.
	Density [NumKinds]float64
}

// Normalize fills defaults: strides default to 1, densities to 1.0,
// depthwise layers get K tied to 1 logical output per input channel, and
// pointwise/FC layers get trivial window dimensions. It returns the layer
// for chaining.
func (l Layer) Normalize() Layer {
	if l.StrideY == 0 {
		l.StrideY = 1
	}
	if l.StrideX == 0 {
		l.StrideX = 1
	}
	for k := range l.Density {
		if l.Density[k] == 0 {
			l.Density[k] = 1
		}
	}
	for d := Dim(0); d < NumDims; d++ {
		if l.Sizes[d] == 0 {
			l.Sizes[d] = 1
		}
	}
	switch l.Op {
	case DepthwiseConv:
		// One filter per input channel; the K dimension is unused.
		l.Sizes[K] = 1
	case PointwiseConv, FullyConnected, GEMM:
		l.Sizes[R], l.Sizes[S] = 1, 1
	case Pooling:
		l.Sizes[K] = 1
		l.Density[Weight] = 0 // no weight traffic for pooling windows
	}
	return l
}

// Validate reports an error when the layer dimensions are inconsistent
// (non-positive sizes, window larger than the activation, bad stride).
func (l Layer) Validate() error {
	if !l.Sizes.Valid() {
		return fmt.Errorf("%w: layer %s: non-positive dimension in %v", ErrInvalidLayer, l.Name, l.Sizes)
	}
	if l.StrideY < 1 || l.StrideX < 1 {
		return fmt.Errorf("%w: layer %s: strides must be >= 1", ErrInvalidLayer, l.Name)
	}
	if l.Sizes[R] > l.Sizes[Y] || l.Sizes[S] > l.Sizes[X] {
		return fmt.Errorf("%w: layer %s: filter %dx%d exceeds activation %dx%d",
			ErrInvalidLayer, l.Name, l.Sizes[R], l.Sizes[S], l.Sizes[Y], l.Sizes[X])
	}
	return nil
}

// OutY returns the number of output rows: floor((Y-R)/strideY)+1.
func (l Layer) OutY() int { return OutSpan(l.Sizes[Y], l.Sizes[R], l.StrideY) }

// OutX returns the number of output columns: floor((X-S)/strideX)+1.
func (l Layer) OutX() int { return OutSpan(l.Sizes[X], l.Sizes[S], l.StrideX) }

// OutSpan computes how many output positions a chunk of `in` input
// positions yields under a window of `win` positions and the given stride:
// floor((in-win)/stride)+1, clamped at zero.
func OutSpan(in, win, stride int) int {
	if in < win {
		return 0
	}
	return (in-win)/stride + 1
}

// EffectiveWindow returns the filter extent that anchors the output
// window of an activation chunk. A chunk large enough to host a complete
// window anchors to the full extent: partial filter chunks then select
// which taps accumulate without moving the outputs (temporal filter
// tiling, the paper's Figure 5(A)). A smaller chunk can only pair with
// its mapped filter chunk — the diagonal co-mapping of the
// row-stationary dataflow (Figure 6), where the outputs shift with both.
func EffectiveWindow(actChunk, filterChunk, filterFull int) int {
	if actChunk >= filterFull {
		return filterFull
	}
	return filterChunk
}

// MACs returns the algorithmic multiply-accumulate count of the dense
// layer: N*K*C*Y'*X'*R*S. Sparsity is not applied here; see EffectiveMACs.
func (l Layer) MACs() int64 {
	return int64(l.Sizes[N]) * int64(l.Sizes[K]) * int64(l.Sizes[C]) *
		int64(l.OutY()) * int64(l.OutX()) * int64(l.Sizes[R]) * int64(l.Sizes[S])
}

// EffectiveMACs scales the algorithmic MAC count by the input and weight
// densities, the uniform-sparsity model of Section 4.4.
func (l Layer) EffectiveMACs() int64 {
	m := float64(l.MACs()) * l.Density[Input] * l.density(Weight)
	return int64(m)
}

// density returns the density of kind k, treating the pooling convention
// (weight density zero = "no weights") as free compute rather than no
// compute.
func (l Layer) density(k Kind) float64 {
	d := l.Density[k]
	if d == 0 {
		return 1
	}
	return d
}

// TensorDims returns the dimensions each tensor of this layer is coupled
// to, per the tensor-analysis engine (Section 4.1, Table 1). For windowed
// tensors the coupling of Output to R/S is resolved dynamically by the
// reuse engine; this function returns the static data-space dimensions.
func (l Layer) TensorDims(k Kind) DimSet {
	switch k {
	case Weight:
		if l.Op == DepthwiseConv || l.Op == Pooling {
			return NewDimSet(C, R, S)
		}
		return NewDimSet(K, C, R, S)
	case Input:
		return NewDimSet(N, C, Y, X)
	case Output:
		if l.Op == DepthwiseConv || l.Op == Pooling {
			return NewDimSet(N, C, Y, X)
		}
		return NewDimSet(N, K, Y, X)
	}
	return 0
}

// TensorSize returns the number of elements of tensor kind k for this
// layer (output uses output coordinates). Iterates the DimSet directly —
// this sits inside the DSE's per-design L2 re-pricing loop, where a
// Dims() slice allocation per call is measurable.
func (l Layer) TensorSize(k Kind) int64 {
	v := int64(1)
	set := l.TensorDims(k)
	for d := Dim(0); d < NumDims; d++ {
		if !set.Has(d) {
			continue
		}
		switch {
		case d == Y && k == Output:
			v *= int64(l.OutY())
		case d == X && k == Output:
			v *= int64(l.OutX())
		default:
			v *= int64(l.Sizes[d])
		}
	}
	return v
}

// ReductionDims returns the dimensions accumulated away when producing the
// output tensor (C, R, S for dense convolution). Advancing one of these
// dimensions accumulates partial sums rather than producing new outputs.
func (l Layer) ReductionDims() DimSet {
	red := NewDimSet(R, S)
	if l.TensorDims(Output).Has(C) {
		return red // depthwise: C survives into the output
	}
	return red.Add(C)
}

// AlgorithmicReuse returns the maximum possible reuse factor of tensor k:
// the number of MACs each element could ideally serve (MACs divided by
// tensor size). The paper plots this as the "algorithmic maximum" series
// in Figure 11.
func (l Layer) AlgorithmicReuse(k Kind) float64 {
	sz := l.TensorSize(k)
	if sz == 0 {
		return 0
	}
	return float64(l.MACs()) / float64(sz)
}
