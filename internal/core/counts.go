// Package core is MAESTRO's performance- and cost-analysis engine
// (Sections 4.2-4.4): it walks a resolved dataflow level by level,
// enumerates the data-iteration cases (Init/Steady/Edge cross products,
// Figure 8), prices each case's ingress/egress traffic and compute under
// the abstract hardware model, and aggregates runtime, activity counts,
// buffer requirements and energy.
package core

import (
	"math"

	"repro/internal/tensor"
)

// TensorCounts holds one int64 per tensor kind.
type TensorCounts [tensor.NumKinds]int64

// Add accumulates o scaled by times.
func (t *TensorCounts) Add(o TensorCounts, times int64) {
	for i := range t {
		t[i] += o[i] * times
	}
}

// Sum returns the total across kinds.
func (t TensorCounts) Sum() int64 {
	var s int64
	for _, v := range t {
		s += v
	}
	return s
}

// counts aggregates the activity of one (level, sub-problem) node and
// everything below it, for a single invocation of that node.
//
// Buffer index convention: buffer i (0 <= i < numLevels) feeds cluster
// level i from above — buffer 0 is the shared L2 scratchpad. Buffer
// numLevels is the PE-private L1. Intermediate indices are logical
// staging points of the hierarchical distribution; their traffic is
// charged as NoC energy, not buffer energy.
type counts struct {
	bufRead  []TensorCounts
	bufWrite []TensorCounts
	noc      []int64        // element-hops per cluster level link
	peakBW   []float64      // max required ingress+egress rate per level, elems/cycle
	bufReq   []TensorCounts // 2x max live tile per buffer, elements
	macs     int64          // dense partial sums computed
	finalOut int64          // final (fully reduced) output elements committed
}

func newCounts(buffers int) *counts {
	// One backing array serves all three per-buffer tables; the full
	// slice expressions keep an (impossible) append on one table from
	// bleeding into the next.
	tc := make([]TensorCounts, 3*buffers)
	return &counts{
		bufRead:  tc[:buffers:buffers],
		bufWrite: tc[buffers : 2*buffers : 2*buffers],
		bufReq:   tc[2*buffers:],
		noc:      make([]int64, buffers-1),
		peakBW:   make([]float64, buffers-1),
	}
}

// addScaled accumulates o's additive fields scaled by times and merges
// the max-style fields (peak bandwidth, buffer requirements).
func (c *counts) addScaled(o *counts, times int64) {
	if times == 0 {
		return
	}
	for i := range c.bufRead {
		c.bufRead[i].Add(o.bufRead[i], times)
		c.bufWrite[i].Add(o.bufWrite[i], times)
		for k := range c.bufReq[i] {
			if o.bufReq[i][k] > c.bufReq[i][k] {
				c.bufReq[i][k] = o.bufReq[i][k]
			}
		}
	}
	for i := range c.noc {
		c.noc[i] += o.noc[i] * times
		if o.peakBW[i] > c.peakBW[i] {
			c.peakBW[i] = o.peakBW[i]
		}
	}
	c.macs += o.macs * times
	c.finalOut += o.finalOut * times
}

// scaleCount applies a density fraction to an element count.
func scaleCount(n int64, f float64) int64 {
	if f >= 1 {
		return n
	}
	return int64(float64(n)*f + 0.5)
}

// imbalanceFactor estimates how much slower the slowest of p PEs runs
// than the mean under Bernoulli sparsity with density d and n potential
// MACs per PE: the expected maximum of p binomials,
// n*d + sqrt(2*n*d*(1-d)*ln p), relative to the mean n*d.
func imbalanceFactor(n int64, d float64, p int) float64 {
	if d >= 1 || n <= 0 || p <= 1 {
		return 1
	}
	mean := float64(n) * d
	if mean <= 0 {
		return 1
	}
	return 1 + math.Sqrt(2*mean*(1-d)*math.Log(float64(p)))/mean
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int64 {
	var l int64
	for m := 1; m < n; m *= 2 {
		l++
	}
	return l
}

// tileForDims returns tensor k's footprint for a sub-problem of the given
// dimension sizes (used for the leaf L1 requirement). Iterates the DimSet
// directly to keep the per-leaf cost allocation-free.
func tileForDims(layer tensor.Layer, dims tensor.Sizes, k tensor.Kind) int64 {
	t := int64(1)
	set := layer.TensorDims(k)
	for d := tensor.Dim(0); d < tensor.NumDims; d++ {
		if !set.Has(d) {
			continue
		}
		switch {
		case k == tensor.Output && d == tensor.Y:
			t *= int64(tensor.OutSpan(dims.Get(tensor.Y), dims.Get(tensor.R), layer.StrideY))
		case k == tensor.Output && d == tensor.X:
			t *= int64(tensor.OutSpan(dims.Get(tensor.X), dims.Get(tensor.S), layer.StrideX))
		default:
			t *= int64(dims.Get(d))
		}
	}
	return t
}

// psumsFor returns the dense MAC count of a sub-problem.
func psumsFor(layer tensor.Layer, dims tensor.Sizes) int64 {
	oy := tensor.OutSpan(dims.Get(tensor.Y), dims.Get(tensor.R), layer.StrideY)
	ox := tensor.OutSpan(dims.Get(tensor.X), dims.Get(tensor.S), layer.StrideX)
	return int64(dims.Get(tensor.N)) * int64(dims.Get(tensor.K)) * int64(dims.Get(tensor.C)) *
		int64(oy) * int64(ox) * int64(dims.Get(tensor.R)) * int64(dims.Get(tensor.S))
}
