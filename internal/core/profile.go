// Profile/Price split: the expensive recursive cluster walk — resolving
// levels, enumerating data-iteration cases, and quantifying reuse — is
// independent of the hardware configuration (only the NoC delay/capability
// models, the ALU vector width, and the sparsity-imbalance pricing touch
// hw.Config). Profile runs that walk once per (dataflow, layer, numPEs)
// and records, per case, the hardware-independent quantities: per-tensor
// ingress (per-PE and union), egress, occurrence counts, active
// sub-clusters, and buffer requirements. Price (price.go) then re-prices
// the recorded DAG under any hardware point in microseconds, which is
// what lets the DSE sweep the NoC-bandwidth axis without re-running the
// engine.
package core

import (
	"context"

	"repro/internal/dataflow"
	"repro/internal/obs"
	"repro/internal/reuse"
	"repro/internal/tensor"
)

// LayerProfile is the memoized, hardware-independent analysis of one
// (dataflow, layer, numPEs) triple: the node DAG of the cluster walk
// with every data-iteration case's traffic quantities recorded. It is
// immutable after Profile returns and safe for concurrent Price and
// PriceBatch calls.
//
// The DAG is stored as a flat struct-of-arrays arena rather than
// pointer-linked nodes: all case quantities of one field live in a
// single contiguous slice, child references are node indices, and the
// node order is topological (every case's children precede their
// parent; the root — level 0, full layer — is the last node). A Price
// walk is therefore a single forward sweep over dense arrays, and a
// PriceBatch walk streams each recorded quantity exactly once while
// pricing every configuration lane against it.
type LayerProfile struct {
	spec *dataflow.Spec
	nlv  int

	// Per-node arrays, indexed by topological node index.
	nodeLevel []int32 // cluster level; == nlv marks a leaf
	nodeSlot  []int32 // dense index into the level-node or leaf arrays
	caseStart []int32 // node i's cases span [caseStart[i], caseStart[i+1])

	// Level-node arrays, indexed by nodeSlot of non-leaf nodes.
	outputReduced []bool
	flushEgPerPE  []int64
	flushEgUnion  []int64
	flushActive   []int64

	// Leaf arrays, indexed by nodeSlot of leaves.
	leafPsums  []int64        // dense MACs of the tile
	leafEff    []int64        // density-scaled effective MACs
	leafBufReq []TensorCounts // double-buffered L1 staging requirement

	// Per-case arrays, indexed by global case index. Semantics match the
	// recording profCase field for field; first/final live in caseFlags.
	caseOcc       []int64
	caseActive    []int64
	caseFlags     []uint8
	caseChild     []int32
	caseEdgeChild []int32
	caseEgPerPE   []int64
	caseEgUnion   []int64
	caseInPerPE   []TensorCounts
	caseInUnion   []TensorCounts
	caseBufReq    []TensorCounts

	// levelNodes/leafNodes size the pricing scratch.
	levelNodes int
	leafNodes  int
}

// Case flag bits.
const (
	caseFirst uint8 = 1 << iota // the level's very first step (serialized)
	caseFinal                   // departing tile fully reduced (commits at level 0)
)

// Spec returns the resolved dataflow the profile was built from.
func (p *LayerProfile) Spec() *dataflow.Spec { return p.spec }

// NumPEs returns the PE count the profile is bound to; Price rejects
// configurations with a different count.
func (p *LayerProfile) NumPEs() int { return p.spec.NumPEs }

// Nodes returns the number of memoized (level, sub-problem) nodes.
func (p *LayerProfile) Nodes() int { return len(p.nodeLevel) }

// Cases returns the total recorded data-iteration cases across nodes.
func (p *LayerProfile) Cases() int {
	if len(p.caseStart) == 0 {
		return 0
	}
	return int(p.caseStart[len(p.caseStart)-1])
}

// profNode is one memoized (level, sub-problem) node in the profiler's
// transient recording format. The walk is recursive — a case's children
// (and their cases) are recorded mid-enumeration — so per-node case
// slices are the natural shape while recording; seal flattens them into
// the LayerProfile arena once the walk completes. Leaves carry their
// precomputed activity (fully hardware-independent); cluster levels
// carry the recorded cases plus the final-flush quantities.
type profNode struct {
	level int
	leaf  bool

	// Leaf fields.
	psums      int64   // dense MACs of the tile
	eff        int64   // density-scaled effective MACs
	leafCounts *counts // activity; shared read-only across Price calls

	// Cluster-level fields.
	outputReduced bool
	cases         []profCase
	flushEgPerPE  int64
	flushEgUnion  int64
	flushActive   int64
}

// profCase records one data-iteration case of a cluster level. All
// element counts are density-scaled; the Output ingress entries already
// encode the partial-sum revisit decision (zero when the arriving tile
// carries no prior partials).
type profCase struct {
	occ    int64 // concrete steps this case covers
	active int64 // active sub-clusters on arrival
	first  bool  // the level's very first step (serialized, no overlap)
	final  bool  // departing tile is fully reduced (commits at level 0)

	child     int32 // node index of the steady sub-problem
	edgeChild int32 // node index of the spatially clipped PE, -1 if none

	inPerPE TensorCounts // per-PE ingress per tensor
	inUnion TensorCounts // union (deduplicated) ingress per tensor
	egPerPE int64        // per-PE egress (output slice displaced)
	egUnion int64        // union egress
	bufReq  TensorCounts // double-buffered staging requirement at this level
}

// profiler mirrors engine but records case quantities instead of pricing
// them.
type profiler struct {
	spec  *dataflow.Spec
	layer tensor.Layer
	nlv   int
	memo  map[memoKey]int32
	nodes []profNode
}

// Profile runs the hardware-independent phase of the analysis on a
// resolved dataflow: one recursive cluster walk recording the memoized
// node DAG with per-case traffic quantities. The result prices against
// any hardware configuration with the spec's PE count via Price.
func Profile(spec *dataflow.Spec) (*LayerProfile, error) {
	p := &profiler{
		spec:  spec,
		layer: spec.Layer,
		nlv:   spec.NumLevels(),
		memo:  make(map[memoKey]int32),
	}
	if _, err := p.profile(0, spec.Layer.Sizes); err != nil {
		return nil, err
	}
	return p.seal(spec), nil
}

// seal flattens the transient pointer-linked recording into the
// LayerProfile's struct-of-arrays arena. Arrays of the same element type
// share one exact-size backing allocation (full slice expressions keep
// an impossible append on one view from bleeding into its neighbor), so
// the whole DAG ends up in a handful of contiguous blocks the pricing
// sweep streams through in order.
func (p *profiler) seal(spec *dataflow.Spec) *LayerProfile {
	lp := &LayerProfile{spec: spec, nlv: p.nlv}
	nn := len(p.nodes)
	ncases := 0
	for i := range p.nodes {
		if p.nodes[i].leaf {
			lp.leafNodes++
		} else {
			lp.levelNodes++
			ncases += len(p.nodes[i].cases)
		}
	}
	ln, lf := lp.levelNodes, lp.leafNodes

	i32 := make([]int32, 3*nn+1+2*ncases)
	lp.nodeLevel, i32 = i32[:nn:nn], i32[nn:]
	lp.nodeSlot, i32 = i32[:nn:nn], i32[nn:]
	lp.caseStart, i32 = i32[:nn+1:nn+1], i32[nn+1:]
	lp.caseChild, i32 = i32[:ncases:ncases], i32[ncases:]
	lp.caseEdgeChild = i32[:ncases:ncases]

	i64 := make([]int64, 3*ln+2*lf+4*ncases)
	lp.flushEgPerPE, i64 = i64[:ln:ln], i64[ln:]
	lp.flushEgUnion, i64 = i64[:ln:ln], i64[ln:]
	lp.flushActive, i64 = i64[:ln:ln], i64[ln:]
	lp.leafPsums, i64 = i64[:lf:lf], i64[lf:]
	lp.leafEff, i64 = i64[:lf:lf], i64[lf:]
	lp.caseOcc, i64 = i64[:ncases:ncases], i64[ncases:]
	lp.caseActive, i64 = i64[:ncases:ncases], i64[ncases:]
	lp.caseEgPerPE, i64 = i64[:ncases:ncases], i64[ncases:]
	lp.caseEgUnion = i64[:ncases:ncases]

	tc := make([]TensorCounts, lf+3*ncases)
	lp.leafBufReq, tc = tc[:lf:lf], tc[lf:]
	lp.caseInPerPE, tc = tc[:ncases:ncases], tc[ncases:]
	lp.caseInUnion, tc = tc[:ncases:ncases], tc[ncases:]
	lp.caseBufReq = tc[:ncases:ncases]

	lp.outputReduced = make([]bool, ln)
	lp.caseFlags = make([]uint8, ncases)

	nextLevel, nextLeaf, nextCase := int32(0), int32(0), 0
	for i := range p.nodes {
		n := &p.nodes[i]
		lp.nodeLevel[i] = int32(n.level)
		lp.caseStart[i] = int32(nextCase)
		if n.leaf {
			s := nextLeaf
			nextLeaf++
			lp.nodeSlot[i] = s
			lp.leafPsums[s] = n.psums
			lp.leafEff[s] = n.eff
			lp.leafBufReq[s] = n.leafCounts.bufReq[p.nlv]
			continue
		}
		s := nextLevel
		nextLevel++
		lp.nodeSlot[i] = s
		lp.outputReduced[s] = n.outputReduced
		lp.flushEgPerPE[s] = n.flushEgPerPE
		lp.flushEgUnion[s] = n.flushEgUnion
		lp.flushActive[s] = n.flushActive
		for ci := range n.cases {
			cs := &n.cases[ci]
			j := nextCase
			nextCase++
			lp.caseOcc[j] = cs.occ
			lp.caseActive[j] = cs.active
			if cs.first {
				lp.caseFlags[j] |= caseFirst
			}
			if cs.final {
				lp.caseFlags[j] |= caseFinal
			}
			lp.caseChild[j] = cs.child
			lp.caseEdgeChild[j] = cs.edgeChild
			lp.caseEgPerPE[j] = cs.egPerPE
			lp.caseEgUnion[j] = cs.egUnion
			lp.caseInPerPE[j] = cs.inPerPE
			lp.caseInUnion[j] = cs.inUnion
			lp.caseBufReq[j] = cs.bufReq
		}
	}
	lp.caseStart[nn] = int32(nextCase)
	return lp
}

// ProfileCtx is Profile wrapped in a "core.profile" span when ctx
// carries an obs recorder; with tracing off it costs two context
// lookups over Profile.
func ProfileCtx(ctx context.Context, spec *dataflow.Spec) (*LayerProfile, error) {
	_, span := obs.Start(ctx, "core.profile",
		obs.String("dataflow", spec.Dataflow.Name),
		obs.String("layer", spec.Layer.Name),
		obs.Int("pes", spec.NumPEs))
	lp, err := Profile(spec)
	if err == nil {
		span.SetAttr(obs.Int("nodes", lp.Nodes()), obs.Int("cases", lp.Cases()))
	}
	span.End()
	return lp, err
}

// profile records one (level, dims) node, memoized, and returns its
// index. Children are recorded before their parent is appended, so
// p.nodes stays topologically sorted.
func (p *profiler) profile(level int, dims tensor.Sizes) (int32, error) {
	key := memoKey{level, dims}
	if idx, ok := p.memo[key]; ok {
		return idx, nil
	}
	var n profNode
	var err error
	if level == p.nlv {
		n = p.profileLeaf(dims)
	} else {
		n, err = p.profileLevel(level, dims)
	}
	if err != nil {
		return 0, err
	}
	idx := int32(len(p.nodes))
	p.nodes = append(p.nodes, n)
	p.memo[key] = idx
	return idx, nil
}

// profileLeaf records one PE tile: its dense and effective MACs plus the
// (hardware-independent) scratchpad activity.
func (p *profiler) profileLeaf(dims tensor.Sizes) profNode {
	c := leafCounts(p.layer, dims, p.nlv)
	eff := scaleCount(c.macs, p.layer.Density[tensor.Input]*weightDensity(p.layer))
	return profNode{level: p.nlv, leaf: true, psums: c.macs, eff: eff, leafCounts: c}
}

// profileLevel mirrors engine.analyzeLevel case for case, recording the
// raw per-PE/union quantities each case's pricing needs instead of
// applying a NoC model to them.
func (p *profiler) profileLevel(level int, dims tensor.Sizes) (profNode, error) {
	lv, err := p.spec.Level(level, dims)
	if err != nil {
		return profNode{}, err
	}
	a := reuse.New(lv, p.layer)
	loops := a.Loops
	nloops := len(loops)

	foldIdx := -1
	spatialEdge := false
	for i, lp := range loops {
		if lp.IsFold {
			foldIdx = i
		}
	}
	for _, si := range lv.Spatial {
		if lv.Maps[si].HasEdge() {
			spatialEdge = true
		}
	}

	n := profNode{level: level, outputReduced: a.OutputReduced()}

	edges := make([]bool, nloops)
	oldEdges := make([]bool, nloops)

	record := func(adv int, cls []loopClass, occ int64) error {
		for i, lc := range cls {
			edges[i] = lc.last && !loops[i].IsFold && loops[i].Map.HasEdge()
		}
		foldLast := foldIdx >= 0 && (loops[foldIdx].Steps == 1 || cls[foldIdx].last)
		active := lv.SubClusters
		if len(lv.Spatial) == 0 {
			active = 1
		} else if foldLast {
			active = lv.LastFoldActive
		}
		redNonFirst, redAllLast := false, true
		for i := 0; i < nloops; i++ {
			if i == adv || loops[i].Steps < 2 || a.Affects(tensor.Output, i) {
				continue
			}
			if i < adv || adv == -1 {
				if !cls[i].first {
					redNonFirst = true
				}
				if !cls[i].last {
					redAllLast = false
				}
			}
		}

		ch := a.Chunks(edges, false)
		hasEdgePE := spatialEdge && foldLast && active > 1
		child, err := p.profile(level+1, a.ChildDims(ch))
		if err != nil {
			return err
		}
		edgeChild := int32(-1)
		if hasEdgePE {
			edgeChild, err = p.profile(level+1, a.ChildDims(a.Chunks(edges, true)))
			if err != nil {
				return err
			}
		}
		cs := profCase{
			occ: occ, active: int64(active), first: adv == -1,
			child: child, edgeChild: edgeChild,
		}

		// Ingress quantities, with the partial-sum revisit decision for
		// outputs resolved here (it depends only on the case structure).
		for _, k := range tensor.AllKinds() {
			perPE := a.NewData(k, adv, ch, false, 1)
			union := a.NewData(k, adv, ch, true, active)
			if k == tensor.Output {
				revisit := false
				if adv >= 0 {
					if !a.Affects(k, adv) && a.InnerAffecting(k, adv) {
						revisit = true
					} else if a.Affects(k, adv) {
						revisit = redNonFirst
					}
				}
				if !revisit {
					perPE, union = 0, 0
				}
			}
			d := p.layer.Density[k]
			cs.inPerPE[k] = scaleCount(perPE, d)
			cs.inUnion[k] = scaleCount(union, d)
		}

		// Egress quantities: the output slice the previous tile leaves
		// behind, under the previous step's chunk selection.
		if adv >= 0 {
			copy(oldEdges, edges)
			for i := adv + 1; i < nloops; i++ {
				oldEdges[i] = !loops[i].IsFold && loops[i].Map.HasEdge()
			}
			oldEdges[adv] = false
			oldFoldLast := foldIdx >= 0 && (loops[foldIdx].Steps == 1 ||
				(foldIdx > adv || (foldIdx < adv && cls[foldIdx].last)))
			oldActive := lv.SubClusters
			if len(lv.Spatial) == 0 {
				oldActive = 1
			} else if oldFoldLast {
				oldActive = lv.LastFoldActive
			}
			chOld := a.Chunks(oldEdges, false)
			d := p.layer.Density[tensor.Output]
			cs.egPerPE = scaleCount(a.NewData(tensor.Output, adv, chOld, false, 1), d)
			cs.egUnion = scaleCount(a.NewData(tensor.Output, adv, chOld, true, oldActive), d)
			cs.final = a.Affects(tensor.Output, adv) && redAllLast
		}

		for _, k := range tensor.AllKinds() {
			cs.bufReq[k] = 2 * scaleCount(a.UnionTile(k, ch, active), p.layer.Density[k])
		}
		n.cases = append(n.cases, cs)
		return nil
	}

	en := newCaseEnum(a)
	if err := record(-1, en.start(), 1); err != nil {
		return profNode{}, err
	}
	for adv := 0; adv < nloops; adv++ {
		if loops[adv].Steps < 2 {
			continue
		}
		if err := en.enumerate(adv, record); err != nil {
			return profNode{}, err
		}
	}

	// Final flush: every loop at its final index, the last fold active.
	for i, lp := range loops {
		edges[i] = !lp.IsFold && lp.Map.HasEdge()
	}
	active := lv.LastFoldActive
	if len(lv.Spatial) == 0 {
		active = 1
	}
	chF := a.Chunks(edges, false)
	d := p.layer.Density[tensor.Output]
	n.flushEgPerPE = scaleCount(a.TileOf(tensor.Output, chF), d)
	n.flushEgUnion = scaleCount(a.UnionTile(tensor.Output, chF, active), d)
	n.flushActive = int64(active)
	return n, nil
}
