package core

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// ProfileKey identifies one (dataflow, layer, numPEs) profile: the
// SHA-256 of a canonical encoding that is independent of the dataflow's
// surface spelling and of everything in hw.Config except the PE count.
type ProfileKey [32]byte

// profileKey canonicalizes exactly the inputs Profile depends on. The
// layer name stays in the key because profiles embed the spec whose
// layer name is echoed in reports; the hardware beyond NumPEs is
// deliberately absent — that is the point of the split.
func profileKey(df dataflow.Dataflow, layer tensor.Layer, numPEs int) ProfileKey {
	var b strings.Builder
	fmt.Fprintf(&b, "profile|pes=%d\nlayer|%s|op=%s|", numPEs, layer.Name, layer.Op)
	for _, d := range tensor.AllDims() {
		fmt.Fprintf(&b, "%s=%d,", d, layer.Sizes.Get(d))
	}
	fmt.Fprintf(&b, "|sy=%d|sx=%d|den=%g,%g,%g\n",
		layer.StrideY, layer.StrideX,
		layer.Density[tensor.Input], layer.Density[tensor.Weight], layer.Density[tensor.Output])
	aug := dataflow.Augment(df, layer)
	fmt.Fprintf(&b, "dataflow|%s|\n%s", aug.Name, aug.String())
	return sha256.Sum256([]byte(b.String()))
}

// ProfileKeyFor exposes the canonical profile identity of a
// (dataflow, layer, numPEs) triple. Callers holding many requests use it
// to group the ones that share a profile — such groups price in a single
// PriceBatch walk (see AnalyzeDataflowCachedBatchCtx).
func ProfileKeyFor(df dataflow.Dataflow, layer tensor.Layer, numPEs int) ProfileKey {
	return profileKey(df, layer, numPEs)
}

const profileShards = 16

// ProfileCache is a sharded LRU of LayerProfiles with a singleflight
// layer, mirroring internal/serve's result cache: concurrent requests
// for the same (dataflow, layer, numPEs) triple profile once and share
// the immutable result. Profiles are safe to Price concurrently, so one
// cached entry serves any number of hardware points at once.
type ProfileCache struct {
	shards [profileShards]*profileShard

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

type profileShard struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[ProfileKey]*list.Element
	inflight map[ProfileKey]*profileCall
}

type profileEntry struct {
	key ProfileKey
	val *LayerProfile
}

type profileCall struct {
	done chan struct{}
	val  *LayerProfile
	err  error
}

// DefaultProfileCache is the package-level cache shared by the tuner and
// the analysis service, sized for a full model zoo × dataflow × PE-grid
// sweep.
var DefaultProfileCache = NewProfileCache(4096)

// NewProfileCache builds a cache holding up to capacity profiles across
// its shards. A non-positive capacity disables storage (every request
// profiles; singleflight still coalesces concurrent duplicates).
func NewProfileCache(capacity int) *ProfileCache {
	c := &ProfileCache{}
	per := capacity / profileShards
	if capacity > 0 && per == 0 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &profileShard{
			capacity: per,
			order:    list.New(),
			items:    map[ProfileKey]*list.Element{},
			inflight: map[ProfileKey]*profileCall{},
		}
	}
	return c
}

func (c *ProfileCache) shardFor(k ProfileKey) *profileShard {
	return c.shards[k[0]%profileShards]
}

// ProfileDataflow returns the profile for (df, layer, numPEs), resolving
// and profiling on a miss with at most one walk across concurrent
// callers. The second return reports whether the profile came from the
// LRU (callers that joined an in-flight computation report false, like
// the serve cache's Do). Errors (e.g. an unresolvable mapping) are not
// cached.
func (c *ProfileCache) ProfileDataflow(df dataflow.Dataflow, layer tensor.Layer, numPEs int) (*LayerProfile, bool, error) {
	return c.ProfileDataflowCtx(context.Background(), df, layer, numPEs)
}

// ProfileDataflowCtx is ProfileDataflow with observability: cache hits,
// misses, and singleflight waits are recorded as events on the current
// obs span, and a miss runs the cluster walk under a "core.profile"
// span, so a trace shows exactly which requests paid for profiling and
// which rode the cache.
func (c *ProfileCache) ProfileDataflowCtx(ctx context.Context, df dataflow.Dataflow, layer tensor.Layer, numPEs int) (*LayerProfile, bool, error) {
	k := profileKey(df, layer, numPEs)
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		c.hits.Add(1)
		obs.SpanFrom(ctx).Event("profile_cache.hit")
		return el.Value.(*profileEntry).val, true, nil
	}
	if cl, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		_, wait := obs.Start(ctx, "core.profilecache.wait")
		<-cl.done
		wait.End()
		obs.SpanFrom(ctx).Event("profile_cache.coalesced")
		return cl.val, false, cl.err
	}
	cl := &profileCall{done: make(chan struct{})}
	s.inflight[k] = cl
	s.mu.Unlock()
	c.misses.Add(1)
	obs.SpanFrom(ctx).Event("profile_cache.miss")

	finished := false
	defer func() {
		if !finished { // profiling panicked: release waiters before unwinding
			cl.err = fmt.Errorf("core: profile computation panicked")
			c.finish(s, k, cl, false)
		}
	}()
	var spec *dataflow.Spec
	spec, cl.err = dataflow.Resolve(df, layer, numPEs)
	if cl.err == nil {
		cl.val, cl.err = ProfileCtx(ctx, spec)
	}
	finished = true
	c.finish(s, k, cl, cl.err == nil)
	return cl.val, false, cl.err
}

func (c *ProfileCache) finish(s *profileShard, k ProfileKey, cl *profileCall, store bool) {
	s.mu.Lock()
	delete(s.inflight, k)
	if store && s.capacity > 0 {
		s.items[k] = s.order.PushFront(&profileEntry{key: k, val: cl.val})
		for s.order.Len() > s.capacity {
			last := s.order.Back()
			s.order.Remove(last)
			delete(s.items, last.Value.(*profileEntry).key)
			c.evictions.Add(1)
		}
	}
	s.mu.Unlock()
	close(cl.done)
}

// Len returns the number of cached profiles.
func (c *ProfileCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Hits, Misses, Coalesced and Evictions expose the cache counters.
func (c *ProfileCache) Hits() int64      { return c.hits.Load() }
func (c *ProfileCache) Misses() int64    { return c.misses.Load() }
func (c *ProfileCache) Coalesced() int64 { return c.coalesced.Load() }
func (c *ProfileCache) Evictions() int64 { return c.evictions.Load() }

// ProfileDataflow resolves and profiles through the package-level cache.
func ProfileDataflow(df dataflow.Dataflow, layer tensor.Layer, numPEs int) (*LayerProfile, error) {
	p, _, err := DefaultProfileCache.ProfileDataflow(df, layer, numPEs)
	return p, err
}

// AnalyzeDataflowCached is the drop-in cached variant of AnalyzeDataflow:
// it fetches (or builds) the hardware-independent profile through the
// package-level cache and prices it under cfg, so callers varying only
// the hardware configuration share one cluster walk.
func AnalyzeDataflowCached(df dataflow.Dataflow, layer tensor.Layer, cfg hw.Config) (*Result, error) {
	return AnalyzeDataflowCachedCtx(context.Background(), df, layer, cfg)
}

// AnalyzeDataflowCachedCtx is AnalyzeDataflowCached with the profile
// fetch and the pricing traced under ctx's obs recorder.
func AnalyzeDataflowCachedCtx(ctx context.Context, df dataflow.Dataflow, layer tensor.Layer, cfg hw.Config) (*Result, error) {
	cfg = cfg.Normalize()
	p, _, err := DefaultProfileCache.ProfileDataflowCtx(ctx, df, layer, cfg.NumPEs)
	if err != nil {
		return nil, err
	}
	return p.PriceCtx(ctx, cfg)
}

// AnalyzeDataflowCachedBatch prices many hardware configurations of one
// (dataflow, layer) pair with a single profile fetch and one batch walk.
func AnalyzeDataflowCachedBatch(df dataflow.Dataflow, layer tensor.Layer, cfgs []hw.Config) ([]*Result, error) {
	return AnalyzeDataflowCachedBatchCtx(context.Background(), df, layer, cfgs)
}

// AnalyzeDataflowCachedBatchCtx fetches (or builds) the profile for
// cfgs[0]'s PE count through the package-level cache and prices every
// configuration in one PriceBatch walk. The result and error contract
// is PriceBatch's: per-index results, nil slots for configurations that
// failed (a configuration with a different PE count simply fails its
// own slot). A profile-side failure (unresolvable mapping) fails the
// whole call.
func AnalyzeDataflowCachedBatchCtx(ctx context.Context, df dataflow.Dataflow, layer tensor.Layer, cfgs []hw.Config) ([]*Result, error) {
	if len(cfgs) == 0 {
		return []*Result{}, nil
	}
	p, _, err := DefaultProfileCache.ProfileDataflowCtx(ctx, df, layer, cfgs[0].Normalize().NumPEs)
	if err != nil {
		return nil, err
	}
	return p.PriceBatchCtx(ctx, cfgs)
}
