package core

import (
	"context"
	"fmt"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Price prices a recorded profile under one hardware configuration. The
// result is bit-identical to Analyze(profile.Spec(), cfg): pricing
// replays exactly the hardware-dependent arithmetic of the fused engine
// — VectorWidth/SparseImbalance at the leaves, Multicast/Reduction
// capabilities and Delay/DelayPer of the per-level NoC models, and the
// per-case outstanding-delay max — over the recorded quantities.
func Price(p *LayerProfile, cfg hw.Config) (*Result, error) {
	return p.Price(cfg)
}

// PriceCtx is Price wrapped in a "core.price" span when ctx carries an
// obs recorder; with tracing off it costs two context lookups over
// Price, which keeps the DSE's bandwidth-axis inner loop within the
// benchmark budget.
func (p *LayerProfile) PriceCtx(ctx context.Context, cfg hw.Config) (*Result, error) {
	_, span := obs.Start(ctx, "core.price",
		obs.String("layer", p.spec.Layer.Name),
		obs.Int("pes", p.spec.NumPEs))
	r, err := p.Price(cfg)
	span.End()
	return r, err
}

// Price prices the profile under cfg. Safe to call concurrently on a
// shared profile: it only reads the recorded DAG.
func (p *LayerProfile) Price(cfg hw.Config) (*Result, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p.spec.NumPEs != cfg.NumPEs {
		return nil, fmt.Errorf("%w: core: spec resolved for %d PEs but hardware has %d",
			hw.ErrInvalidConfig, p.spec.NumPEs, cfg.NumPEs)
	}
	priced := make([]nodeRes, len(p.nodes))
	arena := newCountsArena(p.levelNodes, p.nlv+1)
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.leaf {
			// Leaf counts are hardware-independent; the shared *counts is
			// read-only from here on (parents only addScaled it into their
			// own accumulators, and buildResult reads a level node's counts).
			priced[i] = nodeRes{
				runtime: leafRuntime(n.psums, n.eff, p.spec.Layer, cfg),
				counts:  n.leafCounts,
			}
			continue
		}
		priced[i] = p.priceLevel(n, cfg, priced, arena.next())
	}
	root := priced[len(priced)-1]
	return buildResult(p.spec, cfg, &root), nil
}

// priceLevel replays analyzeLevel's hardware-dependent arithmetic over
// one node's recorded cases. priced holds the already-priced children
// (the node slice is topological).
func (p *LayerProfile) priceLevel(n *profNode, cfg hw.Config, priced []nodeRes, c *counts) nodeRes {
	nocm := cfg.NoCAt(n.level)
	res := nodeRes{counts: c}
	level := n.level

	for ci := range n.cases {
		cs := &n.cases[ci]
		compute := priced[cs.child].runtime
		if cs.first && n.outputReduced && nocm.Reduction {
			compute += log2ceil(int(cs.active))
		}

		var reads TensorCounts
		var inTraffic int64
		for _, k := range tensor.AllKinds() {
			rd := cs.inUnion[k]
			if !nocm.Multicast {
				rd = cs.inPerPE[k] * cs.active
			}
			reads[k] = rd
			inTraffic += rd
		}

		egWrites, egTraffic, rmwReads := cs.egUnion, cs.egUnion, int64(0)
		if n.outputReduced && !nocm.Reduction && cs.active > 1 {
			egWrites = cs.egPerPE * cs.active
			egTraffic = egWrites
			rmwReads = cs.egPerPE * (cs.active - 1)
		}

		inDelay := nocm.DelayPer(reads[tensor.Input], reads[tensor.Weight], reads[tensor.Output])
		outDelay := nocm.Delay(egTraffic) + 2*rmwReads
		outstanding := max3(inDelay, compute, outDelay)
		if cs.first {
			outstanding = inDelay + compute + outDelay
		}
		res.runtime += cs.occ * outstanding

		for _, k := range tensor.AllKinds() {
			c.bufRead[level][k] += cs.occ * reads[k]
			c.bufWrite[level+1][k] += cs.occ * cs.inPerPE[k] * cs.active
		}
		rmwBuf := level
		if rmwReads > 0 {
			rmwBuf = 0
		}
		c.bufRead[rmwBuf][tensor.Output] += cs.occ * rmwReads
		c.bufWrite[rmwBuf][tensor.Output] += cs.occ * (egWrites - cs.egUnion)
		c.bufWrite[level][tensor.Output] += cs.occ * cs.egUnion
		c.bufRead[level+1][tensor.Output] += cs.occ * cs.egPerPE * cs.active
		c.noc[level] += cs.occ * (inTraffic + egTraffic)
		if compute > 0 {
			bw := float64(inTraffic+egTraffic) / float64(compute)
			if bw > c.peakBW[level] {
				c.peakBW[level] = bw
			}
		}
		if cs.final && level == 0 {
			c.finalOut += cs.occ * cs.egUnion
		}
		mainPEs := cs.active
		if cs.edgeChild >= 0 {
			mainPEs--
			c.addScaled(priced[cs.edgeChild].counts, cs.occ)
		}
		c.addScaled(priced[cs.child].counts, cs.occ*mainPEs)
		for _, k := range tensor.AllKinds() {
			if cs.bufReq[k] > c.bufReq[level][k] {
				c.bufReq[level][k] = cs.bufReq[k]
			}
		}
	}

	// Final flush.
	egWrites, egTraffic := n.flushEgUnion, n.flushEgUnion
	var rmwReads int64
	if n.outputReduced && !nocm.Reduction && n.flushActive > 1 {
		egWrites = n.flushEgPerPE * n.flushActive
		egTraffic = egWrites
		rmwReads = n.flushEgPerPE * (n.flushActive - 1)
	}
	res.runtime += nocm.Delay(egTraffic) + 2*rmwReads
	rmwBuf := level
	if rmwReads > 0 {
		rmwBuf = 0
	}
	c.bufRead[rmwBuf][tensor.Output] += rmwReads
	c.bufWrite[rmwBuf][tensor.Output] += egWrites - n.flushEgUnion
	c.bufWrite[level][tensor.Output] += n.flushEgUnion
	c.bufRead[level+1][tensor.Output] += n.flushEgPerPE * n.flushActive
	c.noc[level] += egTraffic
	if level == 0 {
		c.finalOut += n.flushEgUnion
	}
	return res
}
