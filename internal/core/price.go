package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/hw"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Price prices a recorded profile under one hardware configuration. The
// result is bit-identical to Analyze(profile.Spec(), cfg): pricing
// replays exactly the hardware-dependent arithmetic of the fused engine
// — VectorWidth/SparseImbalance at the leaves, Multicast/Reduction
// capabilities and Delay/DelayPer of the per-level NoC models, and the
// per-case outstanding-delay max — over the recorded quantities.
func Price(p *LayerProfile, cfg hw.Config) (*Result, error) {
	return p.Price(cfg)
}

// PriceBatch prices a recorded profile under every configuration in
// cfgs with a single DAG walk; see LayerProfile.PriceBatch.
func PriceBatch(p *LayerProfile, cfgs []hw.Config) ([]*Result, error) {
	return p.PriceBatch(cfgs)
}

// PriceCtx is Price wrapped in a "core.price" span when ctx carries an
// obs recorder; with tracing off it costs two context lookups over
// Price.
func (p *LayerProfile) PriceCtx(ctx context.Context, cfg hw.Config) (*Result, error) {
	_, span := obs.Start(ctx, "core.price",
		obs.String("layer", p.spec.Layer.Name),
		obs.Int("pes", p.spec.NumPEs))
	r, err := p.Price(cfg)
	span.End()
	return r, err
}

// PriceBatchCtx is PriceBatch wrapped in a single "core.price_batch"
// span carrying a "points" attribute — one span per axis, not one per
// point, which is what keeps tracing overhead in the DSE inner loop
// within the observability budget.
func (p *LayerProfile) PriceBatchCtx(ctx context.Context, cfgs []hw.Config) ([]*Result, error) {
	_, span := obs.Start(ctx, "core.price_batch",
		obs.String("layer", p.spec.Layer.Name),
		obs.Int("pes", p.spec.NumPEs),
		obs.Int("points", len(cfgs)))
	rs, err := p.PriceBatch(cfgs)
	span.End()
	return rs, err
}

// Price prices the profile under cfg. Safe to call concurrently on a
// shared profile: it only reads the recorded arena. Internally a batch
// of one, so the single-point and batch paths cannot drift apart.
func (p *LayerProfile) Price(cfg hw.Config) (*Result, error) {
	var one [1]hw.Config
	var res [1]*Result
	one[0] = cfg
	sc := batchScratchPool.Get().(*batchScratch)
	anyErr := p.priceBatchInto(sc, one[:], res[:])
	var err error
	if anyErr {
		err = sc.errs[0]
	}
	batchScratchPool.Put(sc)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// PriceBatch prices the profile under every configuration in cfgs with
// a single walk over the recorded arena, amortizing the DAG traversal
// across the whole batch. Results are bit-identical to calling Price on
// each configuration in isolation.
//
// Error contract: every configuration is validated and priced
// independently. results[i] is non-nil exactly when cfgs[i] priced
// successfully; a failed configuration leaves a nil slot and never
// poisons its neighbors. The returned error is nil when every
// configuration succeeded, otherwise the join of the per-configuration
// errors (each wrapped with its index, errors.Is-transparent — e.g.
// hw.ErrInvalidConfig still matches). An empty batch returns an empty
// non-nil slice and a nil error.
func (p *LayerProfile) PriceBatch(cfgs []hw.Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	sc := batchScratchPool.Get().(*batchScratch)
	var err error
	if p.priceBatchInto(sc, cfgs, results) {
		joined := make([]error, 0, len(cfgs))
		for i, e := range sc.errs[:len(cfgs)] {
			if e != nil {
				joined = append(joined, fmt.Errorf("config %d (%q): %w", i, cfgs[i].Name, e))
			}
		}
		err = errors.Join(joined...)
	}
	batchScratchPool.Put(sc)
	return results, err
}

// batchScratch holds one pricing call's working set, pooled so
// steady-state batches allocate nothing beyond the escaping Result
// backing. All per-(node, lane) accumulators are carved from a few
// flat backing slices that grow to the largest profile × batch seen and
// are then reused verbatim.
type batchScratch struct {
	cfgs  []hw.Config // normalized valid configurations (the lanes)
	lanes []int32     // original cfg index of each lane
	errs  []error     // per-input-config validation errors
	nocms []noc.Model // NoC model per (level, lane)

	runtimes []int64  // per-(node, lane) outstanding delay
	counts   []counts // per-(level-node slot, lane) accumulator
	tc       []TensorCounts
	i64      []int64
	f64      []float64
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// grown resizes s to n elements, reusing its backing when it fits. The
// contents are unspecified; callers clear the ranges they accumulate in.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// carveCounts points one accumulator's tables into the next stretch of
// the given backings and advances them. The backings must be zeroed.
func carveCounts(c *counts, buffers int, tc *[]TensorCounts, i64 *[]int64, f64 *[]float64) {
	b := buffers
	t := *tc
	c.bufRead = t[:b:b]
	c.bufWrite = t[b : 2*b : 2*b]
	c.bufReq = t[2*b : 3*b : 3*b]
	*tc = t[3*b:]
	c.noc = (*i64)[: b-1 : b-1]
	*i64 = (*i64)[b-1:]
	c.peakBW = (*f64)[: b-1 : b-1]
	*f64 = (*f64)[b-1:]
	c.macs, c.finalOut = 0, 0
}

// priceBatchInto validates cfgs and prices the valid ones in one walk,
// writing each success into results[i]. Per-config errors land in
// sc.errs[i] (valid until sc is next used); the return reports whether
// any config failed. The Result structs and the slices they retain are
// carved from fresh backing — only the transient accumulators live in
// the pooled scratch — so results stay valid after sc returns to the
// pool.
func (p *LayerProfile) priceBatchInto(sc *batchScratch, cfgs []hw.Config, results []*Result) bool {
	anyErr := false
	sc.errs = grown(sc.errs, len(cfgs))
	clear(sc.errs)
	sc.lanes = sc.lanes[:0]
	sc.cfgs = sc.cfgs[:0]
	for i := range cfgs {
		c := cfgs[i].Normalize()
		err := c.Validate()
		if err == nil && p.spec.NumPEs != c.NumPEs {
			err = fmt.Errorf("%w: core: spec resolved for %d PEs but hardware has %d",
				hw.ErrInvalidConfig, p.spec.NumPEs, c.NumPEs)
		}
		if err != nil {
			sc.errs[i] = err
			anyErr = true
			continue
		}
		sc.lanes = append(sc.lanes, int32(i))
		sc.cfgs = append(sc.cfgs, c)
	}
	nl := len(sc.cfgs)
	if nl == 0 {
		return anyErr
	}

	nNodes := len(p.nodeLevel)
	buffers := p.nlv + 1
	sc.runtimes = grown(sc.runtimes, nNodes*nl)
	clear(sc.runtimes)
	sc.counts = grown(sc.counts, p.levelNodes*nl)
	sc.nocms = grown(sc.nocms, p.nlv*nl)
	for lv := 0; lv < p.nlv; lv++ {
		for l := 0; l < nl; l++ {
			sc.nocms[lv*nl+l] = sc.cfgs[l].NoCAt(lv)
		}
	}

	// The root lanes' tables escape into the returned Results, so they
	// are carved from fresh per-call backing; every other accumulator
	// lives in the pooled scratch.
	resArr := make([]Result, nl)
	resTC := make([]TensorCounts, 3*buffers*nl)
	resI64 := make([]int64, (buffers-1)*nl)
	resF64 := make([]float64, (buffers-1)*nl)

	rootSlot := int(p.nodeSlot[nNodes-1])
	scratchLanes := (p.levelNodes - 1) * nl
	sc.tc = grown(sc.tc, 3*buffers*scratchLanes)
	clear(sc.tc)
	sc.i64 = grown(sc.i64, (buffers-1)*scratchLanes)
	clear(sc.i64)
	sc.f64 = grown(sc.f64, (buffers-1)*scratchLanes)
	clear(sc.f64)

	tcs, i64s, f64s := sc.tc, sc.i64, sc.f64
	tcr, i64r, f64r := resTC, resI64, resF64
	for s := 0; s < p.levelNodes; s++ {
		for l := 0; l < nl; l++ {
			if s == rootSlot {
				carveCounts(&sc.counts[s*nl+l], buffers, &tcr, &i64r, &f64r)
			} else {
				carveCounts(&sc.counts[s*nl+l], buffers, &tcs, &i64s, &f64s)
			}
		}
	}

	for i := 0; i < nNodes; i++ {
		if int(p.nodeLevel[i]) == p.nlv {
			// Leaf: only the ALU pricing is hardware-dependent.
			s := int(p.nodeSlot[i])
			psums, eff := p.leafPsums[s], p.leafEff[s]
			rts := sc.runtimes[i*nl : (i+1)*nl]
			for l := 0; l < nl; l++ {
				rts[l] = leafRuntime(psums, eff, p.spec.Layer, sc.cfgs[l])
			}
			continue
		}
		p.priceLevelBatch(sc, i, nl)
	}

	rootNode := nNodes - 1
	for l, lane := range sc.lanes {
		root := nodeRes{
			runtime: sc.runtimes[rootNode*nl+l],
			counts:  &sc.counts[rootSlot*nl+l],
		}
		fillResult(&resArr[l], p.spec, sc.cfgs[l], &root)
		results[lane] = &resArr[l]
	}
	return anyErr
}

// priceLevelBatch replays analyzeLevel's hardware-dependent arithmetic
// over one level node's recorded cases for every lane at once. The
// loop nest is cases-outer, lanes-inner: each recorded quantity is
// loaded once per case and priced against all configurations while it
// is hot. Per-lane arithmetic is fully independent, which is what makes
// the batch bit-identical to pricing each configuration alone.
func (p *LayerProfile) priceLevelBatch(sc *batchScratch, node, nl int) {
	level := int(p.nodeLevel[node])
	slot := int(p.nodeSlot[node])
	outputRed := p.outputReduced[slot]
	rts := sc.runtimes[node*nl : (node+1)*nl]
	nocms := sc.nocms[level*nl : (level+1)*nl]
	cnts := sc.counts[slot*nl : (slot+1)*nl]

	for j := int(p.caseStart[node]); j < int(p.caseStart[node+1]); j++ {
		occ := p.caseOcc[j]
		active := p.caseActive[j]
		first := p.caseFlags[j]&caseFirst != 0
		final := p.caseFlags[j]&caseFinal != 0
		child := int(p.caseChild[j])
		edgeChild := int(p.caseEdgeChild[j])
		inPerPE := &p.caseInPerPE[j]
		inUnion := &p.caseInUnion[j]
		egPerPE := p.caseEgPerPE[j]
		egUnion := p.caseEgUnion[j]
		caseReq := &p.caseBufReq[j]
		childRts := sc.runtimes[child*nl : (child+1)*nl]

		for l := 0; l < nl; l++ {
			nocm := &nocms[l]
			compute := childRts[l]
			if first && outputRed && nocm.Reduction {
				compute += log2ceil(int(active))
			}

			var reads TensorCounts
			var inTraffic int64
			for _, k := range tensor.AllKinds() {
				rd := inUnion[k]
				if !nocm.Multicast {
					rd = inPerPE[k] * active
				}
				reads[k] = rd
				inTraffic += rd
			}

			egWrites, egTraffic, rmwReads := egUnion, egUnion, int64(0)
			if outputRed && !nocm.Reduction && active > 1 {
				egWrites = egPerPE * active
				egTraffic = egWrites
				rmwReads = egPerPE * (active - 1)
			}

			inDelay := nocm.DelayPer(reads[tensor.Input], reads[tensor.Weight], reads[tensor.Output])
			outDelay := nocm.Delay(egTraffic) + 2*rmwReads
			outstanding := max3(inDelay, compute, outDelay)
			if first {
				outstanding = inDelay + compute + outDelay
			}
			rts[l] += occ * outstanding

			c := &cnts[l]
			for _, k := range tensor.AllKinds() {
				c.bufRead[level][k] += occ * reads[k]
				c.bufWrite[level+1][k] += occ * inPerPE[k] * active
			}
			rmwBuf := level
			if rmwReads > 0 {
				rmwBuf = 0
			}
			c.bufRead[rmwBuf][tensor.Output] += occ * rmwReads
			c.bufWrite[rmwBuf][tensor.Output] += occ * (egWrites - egUnion)
			c.bufWrite[level][tensor.Output] += occ * egUnion
			c.bufRead[level+1][tensor.Output] += occ * egPerPE * active
			c.noc[level] += occ * (inTraffic + egTraffic)
			if compute > 0 {
				bw := float64(inTraffic+egTraffic) / float64(compute)
				if bw > c.peakBW[level] {
					c.peakBW[level] = bw
				}
			}
			if final && level == 0 {
				c.finalOut += occ * egUnion
			}
			mainPEs := active
			if edgeChild >= 0 {
				mainPEs--
				p.accumChild(sc, c, edgeChild, occ, nl, l)
			}
			p.accumChild(sc, c, child, occ*mainPEs, nl, l)
			for k := range caseReq {
				if caseReq[k] > c.bufReq[level][k] {
					c.bufReq[level][k] = caseReq[k]
				}
			}
		}
	}

	// Final flush, per lane.
	flEgPerPE := p.flushEgPerPE[slot]
	flEgUnion := p.flushEgUnion[slot]
	flActive := p.flushActive[slot]
	for l := 0; l < nl; l++ {
		nocm := &nocms[l]
		egWrites, egTraffic := flEgUnion, flEgUnion
		var rmwReads int64
		if outputRed && !nocm.Reduction && flActive > 1 {
			egWrites = flEgPerPE * flActive
			egTraffic = egWrites
			rmwReads = flEgPerPE * (flActive - 1)
		}
		rts[l] += nocm.Delay(egTraffic) + 2*rmwReads
		c := &cnts[l]
		rmwBuf := level
		if rmwReads > 0 {
			rmwBuf = 0
		}
		c.bufRead[rmwBuf][tensor.Output] += rmwReads
		c.bufWrite[rmwBuf][tensor.Output] += egWrites - flEgUnion
		c.bufWrite[level][tensor.Output] += flEgUnion
		c.bufRead[level+1][tensor.Output] += flEgPerPE * flActive
		c.noc[level] += egTraffic
		if level == 0 {
			c.finalOut += flEgUnion
		}
	}
}

// accumChild folds one priced child into its parent's lane accumulator.
// Leaves are inlined: their recorded activity has exactly four nonzero
// additive entries (L1 operand reads and the accumulator write, all
// equal to the effective MACs) plus the L1 staging requirement, so the
// general addScaled sweep over every buffer level would only add zeros.
func (p *LayerProfile) accumChild(sc *batchScratch, c *counts, child int, times int64, nl, l int) {
	if times == 0 {
		return
	}
	s := int(p.nodeSlot[child])
	if int(p.nodeLevel[child]) == p.nlv {
		eff := p.leafEff[s]
		nlv := p.nlv
		c.bufRead[nlv][tensor.Input] += times * eff
		c.bufRead[nlv][tensor.Weight] += times * eff
		c.bufRead[nlv][tensor.Output] += times * eff
		c.bufWrite[nlv][tensor.Output] += times * eff
		c.macs += times * p.leafPsums[s]
		req := &p.leafBufReq[s]
		for k := range req {
			if req[k] > c.bufReq[nlv][k] {
				c.bufReq[nlv][k] = req[k]
			}
		}
		return
	}
	c.addScaled(&sc.counts[s*nl+l], times)
}
