package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/tensor"
)

// equivLayers picks model-zoo layers covering the operator taxonomy
// (early/late conv, depthwise, pointwise, fully-connected) plus a sparse
// variant, small enough for a full matrix sweep.
func equivLayers(t *testing.T) []tensor.Layer {
	t.Helper()
	pick := func(m models.Model, name string) tensor.Layer {
		li, ok := m.Find(name)
		if !ok {
			t.Fatalf("layer %s not found in %s", name, m.Name)
		}
		return li.Layer
	}
	resnet := models.ResNet50()
	mobile := models.MobileNetV2()
	vgg := models.VGG16()
	layers := []tensor.Layer{
		pick(resnet, "CONV1"),
		pick(vgg, "CONV13"),
		pick(mobile, "B1_dw"),
		pick(mobile, "B1_pw"),
		pick(resnet, "FC1000"),
	}
	sparse := pick(vgg, "CONV13")
	sparse.Name = "CONV13_sparse"
	sparse.Density[tensor.Input] = 0.45
	sparse.Density[tensor.Weight] = 0.6
	layers = append(layers, sparse.Normalize())
	return layers
}

// equivConfigs sweeps the hardware axes Price must react to: NoC
// bandwidth, vector width, sparsity-imbalance pricing, and the NoC
// capability flags (multicast, in-network reduction, channels) across
// bus/tree/mesh topologies.
func equivConfigs(pes int) []hw.Config {
	var cfgs []hw.Config
	for _, bw := range []float64{2, 8, 32} {
		for _, vw := range []int{1, 4} {
			for _, sp := range []bool{false, true} {
				m := noc.Bus(bw)
				m.Reduction = true
				cfgs = append(cfgs, hw.Config{
					Name: "bus", NumPEs: pes, VectorWidth: vw,
					SparseImbalance: sp, NoCs: []noc.Model{m},
				}.Normalize())
			}
		}
	}
	noRed := noc.Bus(8) // partials travel up and rmw-accumulate in the parent
	cfgs = append(cfgs, hw.Config{Name: "bus-nored", NumPEs: pes, NoCs: []noc.Model{noRed}}.Normalize())
	multi := noc.Bus(8)
	multi.Channels = 3
	multi.Reduction = true
	cfgs = append(cfgs, hw.Config{Name: "bus-ch3", NumPEs: pes, NoCs: []noc.Model{multi}}.Normalize())
	tree := noc.Tree(pes)
	cfgs = append(cfgs, hw.Config{Name: "tree", NumPEs: pes, NoCs: []noc.Model{tree}}.Normalize())
	mesh := noc.Mesh(pes)
	cfgs = append(cfgs, hw.Config{Name: "mesh", NumPEs: pes, NoCs: []noc.Model{mesh}}.Normalize())
	return cfgs
}

// TestPriceEquivalence asserts Price(Profile(spec), cfg) reproduces
// Analyze(spec, cfg) field for field over the Table 3 dataflows ×
// model-zoo layers × hardware matrix — the acceptance bar for the
// profile/price split.
func TestPriceEquivalence(t *testing.T) {
	const pes = 64
	layers := equivLayers(t)
	cfgs := equivConfigs(pes)
	compared := 0
	for _, df := range dataflows.All() {
		for _, layer := range layers {
			spec, err := dataflow.Resolve(df, layer, pes)
			if err != nil {
				continue // mapping not applicable to this shape; Analyze would fail identically
			}
			prof, err := Profile(spec)
			if err != nil {
				t.Fatalf("%s/%s: Profile: %v", df.Name, layer.Name, err)
			}
			for _, cfg := range cfgs {
				want, errA := Analyze(spec, cfg)
				got, errP := prof.Price(cfg)
				if (errA == nil) != (errP == nil) {
					t.Fatalf("%s/%s/%s: error mismatch: analyze=%v price=%v",
						df.Name, layer.Name, cfg.Name, errA, errP)
				}
				if errA != nil {
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s/%s/%s: Price result differs from Analyze\nanalyze: %+v\nprice:   %+v",
						df.Name, layer.Name, cfg.Name, want, got)
				}
				compared++
			}
		}
	}
	if compared < 200 {
		t.Fatalf("equivalence matrix too sparse: only %d comparisons ran", compared)
	}
}

// TestPriceBatchEquivalence asserts PriceBatch(p, cfgs)[i] is
// bit-identical to the sequential Price(p, cfgs[i]) over the same
// dataflow × layer × hardware matrix as TestPriceEquivalence, and pins
// the two edge shapes of the contract: a single-config batch equals a
// plain Price, and an empty batch returns an empty non-nil slice with a
// nil error.
func TestPriceBatchEquivalence(t *testing.T) {
	const pes = 64
	layers := equivLayers(t)
	cfgs := equivConfigs(pes)
	compared := 0
	for _, df := range dataflows.All() {
		for _, layer := range layers {
			spec, err := dataflow.Resolve(df, layer, pes)
			if err != nil {
				continue
			}
			prof, err := Profile(spec)
			if err != nil {
				t.Fatalf("%s/%s: Profile: %v", df.Name, layer.Name, err)
			}
			want := make([]*Result, len(cfgs))
			for i, cfg := range cfgs {
				if want[i], err = prof.Price(cfg); err != nil {
					t.Fatalf("%s/%s/%s: Price: %v", df.Name, layer.Name, cfg.Name, err)
				}
			}
			got, err := prof.PriceBatch(cfgs)
			if err != nil {
				t.Fatalf("%s/%s: PriceBatch: %v", df.Name, layer.Name, err)
			}
			if len(got) != len(cfgs) {
				t.Fatalf("%s/%s: PriceBatch returned %d results for %d configs",
					df.Name, layer.Name, len(got), len(cfgs))
			}
			for i := range cfgs {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("%s/%s/%s: batch result differs from sequential Price\nprice: %+v\nbatch: %+v",
						df.Name, layer.Name, cfgs[i].Name, want[i], got[i])
				}
				compared++
			}

			one, err := prof.PriceBatch(cfgs[:1])
			if err != nil || len(one) != 1 || !reflect.DeepEqual(want[0], one[0]) {
				t.Fatalf("%s/%s: single-config batch diverged (err=%v)", df.Name, layer.Name, err)
			}
			empty, err := prof.PriceBatch(nil)
			if err != nil || empty == nil || len(empty) != 0 {
				t.Fatalf("%s/%s: empty batch: got (%v, %v), want (non-nil empty, nil)",
					df.Name, layer.Name, empty, err)
			}
		}
	}
	if compared < 200 {
		t.Fatalf("batch equivalence matrix too sparse: only %d comparisons ran", compared)
	}
}

// TestPriceBatchMixedValidity pins the error contract: an invalid
// configuration fails only its own slot — results[i] is nil exactly for
// the failed indices, the joined error unwraps to hw.ErrInvalidConfig
// and names the failing index, and every valid slot stays bit-identical
// to what an all-valid batch produces.
func TestPriceBatchMixedValidity(t *testing.T) {
	const pes = 64
	spec, err := dataflow.Resolve(dataflows.Get("KC-P"), equivLayers(t)[1], pes)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(spec)
	if err != nil {
		t.Fatal(err)
	}
	valid := equivConfigs(pes)[:3]
	mismatch := testHW(pes * 2) // wrong PE count for this profile
	cfgs := []hw.Config{valid[0], mismatch, valid[1], mismatch, valid[2]}
	badIdx := map[int]bool{1: true, 3: true}

	rs, err := prof.PriceBatch(cfgs)
	if err == nil {
		t.Fatal("want an error for the invalid lanes, got nil")
	}
	if !errors.Is(err, hw.ErrInvalidConfig) {
		t.Fatalf("joined error does not unwrap to hw.ErrInvalidConfig: %v", err)
	}
	if !strings.Contains(err.Error(), "config 1") || !strings.Contains(err.Error(), "config 3") {
		t.Fatalf("error does not name the failing indices: %v", err)
	}
	for i := range cfgs {
		if badIdx[i] != (rs[i] == nil) {
			t.Fatalf("slot %d: nil=%v, want nil only for invalid lanes", i, rs[i] == nil)
		}
	}
	for i, cfg := range cfgs {
		if badIdx[i] {
			continue
		}
		want, err := prof.Price(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, rs[i]) {
			t.Fatalf("slot %d: invalid neighbors poisoned a valid result", i)
		}
	}
}

// TestPriceBatchAllocs guards the zero-allocs-per-point property: the
// allocation count of a PriceBatch call is independent of the batch
// size (the fixed cost is the escaping Result arena; per-point scratch
// comes from the pool), and the fixed cost itself stays small.
func TestPriceBatchAllocs(t *testing.T) {
	const pes = 64
	spec, err := dataflow.Resolve(dataflows.Get("KC-P"), equivLayers(t)[1], pes)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []hw.Config
	for _, bw := range []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256} {
		m := noc.Bus(bw)
		m.Reduction = true
		cfgs = append(cfgs, hw.Config{Name: "alloc", NumPEs: pes, NoCs: []noc.Model{m}}.Normalize())
	}
	allocsFor := func(n int) float64 {
		sub := cfgs[:n]
		return testing.AllocsPerRun(50, func() {
			if _, err := prof.PriceBatch(sub); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := allocsFor(2), allocsFor(16)
	if perPoint := (large - small) / 14; perPoint > 1.0 {
		t.Errorf("marginal allocations per point = %.2f (batch2=%v, batch16=%v), want ~0",
			perPoint, small, large)
	}
	// The fixed cost is the results slice plus the four Result-arena
	// backings; leave headroom of one slice header per table.
	if large > 9+16 { // 16 = one *Result per point in the returned slice
		t.Errorf("fixed batch cost too high: %v allocs for 16 points", large)
	}
}

// TestPriceBatchSharedProfileConcurrent batch-prices one shared profile
// from many goroutines; with -race this proves the sealed arena is
// read-only under concurrent PriceBatch and that pooled scratch never
// leaks across calls.
func TestPriceBatchSharedProfileConcurrent(t *testing.T) {
	const pes = 64
	spec, err := dataflow.Resolve(dataflows.Get("KC-P"), equivLayers(t)[1], pes)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := equivConfigs(pes)
	want, err := prof.PriceBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				// Rotate the batch split per goroutine so pool reuse
				// interleaves differently sized scratch buffers.
				cut := (w*3+rep)%(len(cfgs)-1) + 1
				for _, part := range [][]hw.Config{cfgs[:cut], cfgs[cut:]} {
					off := 0
					if &part[0] != &cfgs[0] {
						off = cut
					}
					got, err := prof.PriceBatch(part)
					if err != nil {
						t.Errorf("batch: %v", err)
						return
					}
					for i := range got {
						if !reflect.DeepEqual(want[off+i], got[i]) {
							t.Errorf("cfg %s: concurrent PriceBatch diverged", part[i].Name)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPriceRejectsPEMismatch checks Price reproduces Analyze's guard
// against a configuration with a different PE count.
func TestPriceRejectsPEMismatch(t *testing.T) {
	spec, err := dataflow.Resolve(outputStationary(), smallConv(), 4)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prof.Price(testHW(8)); !errors.Is(err, hw.ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig for PE mismatch, got %v", err)
	}
}

// TestPriceSharedProfileConcurrent prices one shared profile from many
// goroutines under different configs; run with -race this catches any
// mutation of the recorded DAG (the leaf counts are shared read-only).
func TestPriceSharedProfileConcurrent(t *testing.T) {
	const pes = 64
	spec, err := dataflow.Resolve(dataflows.Get("KC-P"), equivLayers(t)[1], pes)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := equivConfigs(pes)
	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		if want[i], err = prof.Price(cfg); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, cfg := range cfgs {
				got, err := prof.Price(cfg)
				if err != nil {
					t.Errorf("price: %v", err)
					return
				}
				if !reflect.DeepEqual(want[i], got) {
					t.Errorf("cfg %s: concurrent Price diverged", cfg.Name)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestProfileCacheHammer exercises the shared cache under contention:
// many goroutines requesting a handful of keys through a deliberately
// tiny cache, forcing hits, misses, singleflight coalescing and
// evictions to interleave. Run with -race.
func TestProfileCacheHammer(t *testing.T) {
	const pes = 64
	cache := NewProfileCache(3)
	dfs := dataflows.All()
	layers := equivLayers(t)
	cfg := testHW(pes)
	cfg.NumPEs = pes
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				df := dfs[(w+i)%len(dfs)]
				layer := layers[(w*3+i)%len(layers)]
				prof, _, err := cache.ProfileDataflow(df, layer, pes)
				if err != nil {
					continue // some mappings don't resolve for some shapes
				}
				if prof.NumPEs() != pes {
					t.Errorf("profile bound to %d PEs, want %d", prof.NumPEs(), pes)
					return
				}
				if _, err := prof.Price(cfg); err != nil {
					t.Errorf("price: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if cache.Misses() == 0 {
		t.Fatal("expected cache misses")
	}
	if cache.Len() > 3+profileShards { // per-shard rounding allows slight overshoot
		t.Fatalf("cache grew past capacity: %d", cache.Len())
	}
}

// TestProfileCacheKeying checks hw-config-independent keying: distinct
// layer names miss (reports echo the name), identical triples hit.
func TestProfileCacheKeying(t *testing.T) {
	cache := NewProfileCache(64)
	layer := smallConv()
	df := outputStationary()
	if _, _, err := cache.ProfileDataflow(df, layer, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.ProfileDataflow(df, layer, 4); err != nil {
		t.Fatal(err)
	}
	if h := cache.Hits(); h != 1 {
		t.Fatalf("want 1 hit for identical triple, got %d", h)
	}
	renamed := layer
	renamed.Name = "other"
	if _, _, err := cache.ProfileDataflow(df, renamed, 4); err != nil {
		t.Fatal(err)
	}
	if m := cache.Misses(); m != 2 {
		t.Fatalf("renamed layer should miss (name is echoed in reports); misses = %d", m)
	}
	if _, _, err := cache.ProfileDataflow(df, layer, 8); err != nil {
		t.Fatal(err)
	}
	if m := cache.Misses(); m != 3 {
		t.Fatalf("different PE count should miss; misses = %d", m)
	}
}

// BenchmarkPriceBatch measures batch pricing across batch sizes: the
// ns/op of an n-point batch divided by n is the per-design cost, and
// the reported allocs/op should not grow with n (the fixed cost is the
// escaping Result arena; per-point scratch is pooled).
func BenchmarkPriceBatch(b *testing.B) {
	const pes = 256
	layer := models.VGG16().Layers[10].Layer
	spec, err := dataflow.Resolve(dataflows.Get("KC-P"), layer, pes)
	if err != nil {
		b.Fatal(err)
	}
	prof, err := Profile(spec)
	if err != nil {
		b.Fatal(err)
	}
	var cfgs []hw.Config
	for _, bw := range []float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192} {
		m := noc.Bus(bw)
		m.Reduction = true
		cfgs = append(cfgs, hw.Config{Name: "bench", NumPEs: pes, NoCs: []noc.Model{m}}.Normalize())
	}
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("points%d", n), func(b *testing.B) {
			sub := cfgs[:n]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := prof.PriceBatch(sub); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProfileVsAnalyze compares the fused one-shot engine against
// the split phases: Profile (the expensive walk, paid once) and Price
// (the cheap per-hardware-point replay, paid per configuration).
func BenchmarkProfileVsAnalyze(b *testing.B) {
	const pes = 256
	layer := models.VGG16().Layers[10].Layer
	df := dataflows.Get("KC-P")
	spec, err := dataflow.Resolve(df, layer, pes)
	if err != nil {
		b.Fatal(err)
	}
	m := noc.Bus(16)
	m.Reduction = true
	cfg := hw.Config{Name: "bench", NumPEs: pes, NoCs: []noc.Model{m}}.Normalize()

	b.Run("Analyze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Analyze(spec, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Profile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Profile(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	prof, err := Profile(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Price", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prof.Price(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
