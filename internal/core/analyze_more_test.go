package core

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/tensor"
)

// TestThreeLevelHierarchy exercises a dataflow with two Cluster
// directives (three levels), which the paper's recursive multi-cluster
// analysis must handle.
func TestThreeLevelHierarchy(t *testing.T) {
	layer := tensor.Layer{
		Name: "deep", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 8, tensor.C: 8, tensor.Y: 12, tensor.X: 12, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	df := dataflow.Dataflow{Name: "3lvl", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.ClusterOf(dataflow.Lit(4)),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.TMap(dataflow.Lit(4), dataflow.Lit(4), tensor.C),
		dataflow.ClusterOf(dataflow.Lit(2)),
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.C),
	}}
	r := mustAnalyze(t, df, layer, testHW(16))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if len(r.BufRead) != 4 { // 3 levels + leaf L1
		t.Fatalf("buffer levels = %d; want 4", len(r.BufRead))
	}
}

// TestFullyConnected runs a GEMM-shaped layer through the engine.
func TestFullyConnected(t *testing.T) {
	layer := tensor.Layer{
		Name: "fc", Op: tensor.FullyConnected,
		Sizes: tensor.Sizes{tensor.N: 4, tensor.K: 64, tensor.C: 256},
	}.Normalize()
	df := dataflow.Dataflow{Name: "fcflow", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Lit(8), dataflow.Lit(8), tensor.K),
		dataflow.TMap(dataflow.Lit(32), dataflow.Lit(32), tensor.C),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.N),
	}}
	r := mustAnalyze(t, df, layer, testHW(8))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if r.MACs != 4*64*256 {
		t.Fatalf("FC MACs = %d", r.MACs)
	}
	// With C tiled and outer to N, partial sums spill: expect L2 output
	// read-modify-write traffic.
	if r.L2Read(tensor.Output) == 0 {
		t.Error("expected partial-sum re-reads with tiled reduction dim")
	}
}

// TestLSTMGateGemm runs an LSTM-style GEMM (batched over sequence steps).
func TestLSTMGateGemm(t *testing.T) {
	layer := tensor.Layer{
		Name: "lstm", Op: tensor.GEMM,
		Sizes: tensor.Sizes{tensor.N: 16, tensor.K: 128, tensor.C: 96},
	}.Normalize()
	df := dataflow.Dataflow{Name: "gemm", Directives: []dataflow.Directive{
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.N),
		dataflow.SMap(dataflow.Lit(4), dataflow.Lit(4), tensor.K),
		dataflow.TMap(dataflow.Lit(96), dataflow.Lit(96), tensor.C),
	}}
	r := mustAnalyze(t, df, layer, testHW(16))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestTransposedConv checks the up-scale substitution end to end: the
// structured input sparsity must shrink effective compute and runtime
// without breaking dense-psum conservation.
func TestTransposedConv(t *testing.T) {
	layer := tensor.Layer{
		Name: "trconv", Op: tensor.TransposedConv,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 8, tensor.C: 16, tensor.Y: 18, tensor.X: 18, tensor.R: 3, tensor.S: 3},
	}
	layer.Density[tensor.Input] = 0.25
	layer = layer.Normalize()
	df := outputStationary()
	r := mustAnalyze(t, df, layer, testHW(8))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if r.Activity().MACs >= r.MACs {
		t.Errorf("effective MACs %d not reduced from dense %d", r.Activity().MACs, r.MACs)
	}
}

// TestVectorWidthSpeedsCompute verifies the ALU width parameter.
func TestVectorWidthSpeedsCompute(t *testing.T) {
	layer := smallConv()
	base := testHW(4)
	wide := testHW(4)
	wide.VectorWidth = 4
	r1 := mustAnalyze(t, outputStationary(), layer, base)
	r4 := mustAnalyze(t, outputStationary(), layer, wide)
	if r4.Runtime >= r1.Runtime {
		t.Errorf("vector width 4 runtime %d >= width 1 runtime %d", r4.Runtime, r1.Runtime)
	}
	if err := r4.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeSubMatchesRoot: the exposed per-node analysis of the full
// problem at level 0 must equal the end-to-end on-chip runtime.
func TestAnalyzeSubMatchesRoot(t *testing.T) {
	layer := smallConv()
	cfg := testHW(4)
	spec, err := dataflow.Resolve(outputStationary(), layer, cfg.NumPEs)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Analyze(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := AnalyzeSub(spec, cfg, 0, layer.Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if sub != full.OnChipRuntime {
		t.Errorf("AnalyzeSub root = %d; OnChipRuntime = %d", sub, full.OnChipRuntime)
	}
}

// TestMismatchedPEsRejected: analyzing a spec against a different PE
// count must fail loudly.
func TestMismatchedPEsRejected(t *testing.T) {
	layer := smallConv()
	spec, err := dataflow.Resolve(outputStationary(), layer, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(spec, testHW(8)); err == nil {
		t.Error("PE mismatch accepted")
	}
}

// TestBatchedLayerConservation covers N > 1.
func TestBatchedLayerConservation(t *testing.T) {
	layer := tensor.Layer{
		Name: "batched", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 4, tensor.K: 4, tensor.C: 3, tensor.Y: 10, tensor.X: 10, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	df := dataflow.Dataflow{Name: "batch", Directives: []dataflow.Directive{
		dataflow.TMap(dataflow.Lit(2), dataflow.Lit(2), tensor.N),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	}}
	r := mustAnalyze(t, df, layer, testHW(4))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestSparseImbalance: with zero-skipping PEs under random sparsity, the
// expected slowest PE governs each step, so the imbalance-aware runtime
// must sit between the dense runtime and the ideal (mean) sparse one.
func TestSparseImbalance(t *testing.T) {
	dense := smallConv()
	sparse := dense
	sparse.Density[tensor.Weight] = 0.3
	cfg := testHW(4)
	rd := mustAnalyze(t, outputStationary(), dense, cfg)
	ideal := mustAnalyze(t, outputStationary(), sparse, cfg)
	cfgI := cfg
	cfgI.SparseImbalance = true
	imb := mustAnalyze(t, outputStationary(), sparse, cfgI)
	if !(ideal.Runtime <= imb.Runtime && imb.Runtime <= rd.Runtime) {
		t.Errorf("runtimes not ordered: ideal %d <= imbalanced %d <= dense %d",
			ideal.Runtime, imb.Runtime, rd.Runtime)
	}
	// Dense layers are unaffected by the flag.
	rdI := mustAnalyze(t, outputStationary(), dense, cfgI)
	if rdI.Runtime != rd.Runtime {
		t.Errorf("imbalance flag changed dense runtime: %d vs %d", rdI.Runtime, rd.Runtime)
	}
	if err := imb.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeAllMatchesSerial: the concurrent batch API must agree with
// per-layer analysis.
func TestAnalyzeAllMatchesSerial(t *testing.T) {
	layers := []tensor.Layer{smallConv(), smallConv().Normalize()}
	layers[1].Name = "second"
	layers[1].Sizes = layers[1].Sizes.Set(tensor.K, 8)
	cfg := testHW(4)
	batch, errs := AnalyzeAll(outputStationary(), layers, cfg)
	for i, l := range layers {
		if errs[i] != nil {
			t.Fatalf("layer %d: %v", i, errs[i])
		}
		serial := mustAnalyze(t, outputStationary(), l, cfg)
		if batch[i].Runtime != serial.Runtime || batch[i].MACs != serial.MACs {
			t.Errorf("layer %d: batch %d/%d vs serial %d/%d",
				i, batch[i].Runtime, batch[i].MACs, serial.Runtime, serial.MACs)
		}
	}
	// Failures stay per-layer.
	bad := layers
	bad = append(bad, tensor.Layer{Op: tensor.Conv2D, Sizes: tensor.Sizes{
		tensor.N: 1, tensor.K: 1, tensor.C: 1, tensor.Y: 2, tensor.X: 2, tensor.R: 5, tensor.S: 5,
	}}) // invalid: filter larger than activation
	res, errs := AnalyzeAll(outputStationary(), bad, cfg)
	if errs[2] == nil || res[2] != nil {
		t.Error("invalid layer not reported positionally")
	}
	if errs[0] != nil {
		t.Error("valid layer poisoned by invalid one")
	}
}

// TestConservationFilterTiled covers temporal filter tiling with an
// anchored window (the paper's Figure 5(A) playground shape): outputs
// accumulate in place while R/S taps stream.
func TestConservationFilterTiled(t *testing.T) {
	layer := tensor.Layer{
		Name: "ftile", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 4, tensor.C: 2, tensor.Y: 12, tensor.X: 12, tensor.R: 6, tensor.S: 6},
	}.Normalize()
	df := dataflow.Dataflow{Name: "ftile", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.TMap(dataflow.Lit(2), dataflow.Lit(2), tensor.R), // 3 tap groups
		dataflow.TMap(dataflow.Lit(3), dataflow.Lit(3), tensor.S), // 2 tap groups
	}}
	r := mustAnalyze(t, df, layer, testHW(4))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// The output tile never moves during tap streaming, so outputs leave
	// exactly once.
	if got, want := r.L2Write(tensor.Output), layer.TensorSize(tensor.Output); got != want {
		t.Errorf("L2 output writes = %d; want %d", got, want)
	}
}
