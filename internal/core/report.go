package core

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// Result is MAESTRO's output for one layer on one dataflow and hardware
// configuration: the performance report and cost report of Figure 7.
type Result struct {
	Layer        tensor.Layer
	DataflowName string
	Cfg          hw.Config
	UsedPEs      int

	// Runtime is the end-to-end execution time in cycles, including the
	// DRAM bound when off-chip traffic dominates.
	Runtime int64
	// OnChipRuntime excludes the DRAM bound.
	OnChipRuntime int64
	// MACs is the dense partial-sum count the mapping computes; for an
	// exact mapping it equals the layer's algorithmic MACs.
	MACs int64
	// FinalOutputs counts the fully reduced output elements committed to
	// L2; for an exact mapping it equals the output tensor size.
	FinalOutputs int64

	// BufRead/BufWrite hold element accesses per buffer: index 0 is the
	// shared L2, the last index the PE-private L1, intermediate indices
	// the logical staging points of multi-level dataflows.
	BufRead  []TensorCounts
	BufWrite []TensorCounts
	// BufReq is the double-buffered capacity requirement per buffer and
	// tensor, in elements.
	BufReq []TensorCounts
	// NoCTraffic is the element-hops per cluster-level link.
	NoCTraffic []int64
	// PeakBW is the ingress+egress rate (elements/cycle) each level needs
	// to never stall behind compute — Figure 11(c)'s NoC BW requirement.
	PeakBW []float64

	DRAMReads, DRAMWrites int64
	// EffectiveL2 is the shared-scratchpad capacity the DRAM model was
	// evaluated against (the configured size, or the requirement when the
	// configuration left it zero).
	EffectiveL2 int64
	// L2Spill reports that the dataflow's L2 requirement exceeded the
	// configured capacity, forcing refetches from DRAM.
	L2Spill bool
	// Bottleneck names the slowest stage: "compute", "noc", or "dram".
	Bottleneck string

	// sizes caches the density-scaled tensor footprints (elements).
	// applyL2 runs once per (bandwidth, L2) grid point in the DSE sweep;
	// the footprints depend only on the layer, so they are computed once
	// when the result is filled.
	sizes TensorCounts
}

func buildResult(spec *dataflow.Spec, cfg hw.Config, root *nodeRes) *Result {
	r := &Result{}
	fillResult(r, spec, cfg, root)
	return r
}

// fillResult writes one priced root into a caller-provided Result slot;
// PriceBatch fills a preallocated []Result this way so a whole batch
// costs one slice allocation. The slice-valued tables retain the root
// accumulator's backing.
func fillResult(r *Result, spec *dataflow.Spec, cfg hw.Config, root *nodeRes) {
	layer := spec.Layer
	*r = Result{
		Layer:         layer,
		DataflowName:  spec.Dataflow.Name,
		Cfg:           cfg,
		UsedPEs:       spec.UsedPEs(),
		OnChipRuntime: root.runtime,
		MACs:          root.counts.macs,
		FinalOutputs:  root.counts.finalOut,
		BufRead:       root.counts.bufRead,
		BufWrite:      root.counts.bufWrite,
		BufReq:        root.counts.bufReq,
		NoCTraffic:    root.counts.noc,
		PeakBW:        root.counts.peakBW,
	}
	for _, k := range tensor.AllKinds() {
		r.sizes[k] = scaleCount(layer.TensorSize(k), layer.Density[k])
	}
	r.applyL2(cfg.L2Size)
}

// applyL2 derives the DRAM traffic and the end-to-end runtime for a given
// shared-scratchpad capacity (0 means "exactly the dataflow's staging
// requirement"). The retention model is all-or-nothing per tensor: after
// reserving the double-buffered staging requirement, spare L2 capacity
// retains whole tensors greedily by refetch traffic saved per byte; a
// retained tensor costs DRAM only its compulsory traffic, an unretained
// one re-fetches every staged slice from DRAM.
func (r *Result) applyL2(l2 int64) {
	req := r.L2ReqBytes()
	if l2 == 0 {
		l2 = req
	}
	r.EffectiveL2 = l2
	if l2 < req {
		// The staging tiles themselves do not fit: every L2-level access
		// spills off-chip.
		r.L2Spill = true
		r.DRAMReads = r.BufRead[0][tensor.Input] + r.BufRead[0][tensor.Weight]
		r.DRAMWrites = r.BufWrite[0][tensor.Output]
	} else {
		r.L2Spill = false
		sizes := r.sizes
		type cand struct {
			kind   tensor.Kind
			bytes  int64
			saving int64 // DRAM traffic avoided by retaining the tensor
		}
		cands := make([]cand, 0, 3)
		for _, k := range []tensor.Kind{tensor.Input, tensor.Weight, tensor.Output} {
			size := sizes[k]
			traffic := r.BufRead[0][k]
			if k == tensor.Output {
				traffic = r.BufWrite[0][k] + r.BufRead[0][k]
			}
			cands = append(cands, cand{k, size * int64(r.Cfg.ElemBytes), traffic - size})
		}
		// Highest saving per byte first.
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if float64(cands[j].saving)/float64(cands[j].bytes+1) >
					float64(cands[i].saving)/float64(cands[i].bytes+1) {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		spare := l2 - req
		var retained [tensor.NumKinds]bool
		for _, c := range cands {
			if c.saving > 0 && c.bytes <= spare {
				retained[c.kind] = true
				spare -= c.bytes
			}
		}
		r.DRAMReads, r.DRAMWrites = 0, 0
		for _, k := range []tensor.Kind{tensor.Input, tensor.Weight} {
			if retained[k] || r.BufRead[0][k] < sizes[k] {
				r.DRAMReads += sizes[k]
			} else {
				r.DRAMReads += r.BufRead[0][k]
			}
		}
		outSize := sizes[tensor.Output]
		if retained[tensor.Output] || r.BufWrite[0][tensor.Output] <= outSize {
			r.DRAMWrites = outSize
		} else {
			// Partial sums that overflow L2 bounce off DRAM.
			r.DRAMWrites = r.BufWrite[0][tensor.Output]
			r.DRAMReads += r.BufRead[0][tensor.Output]
		}
	}
	dramDelay := int64(float64(r.DRAMReads+r.DRAMWrites)/r.Cfg.OffchipBandwidth + 0.999999)
	r.Runtime = r.OnChipRuntime
	r.Bottleneck = "compute"
	if dramDelay > r.Runtime {
		r.Runtime = dramDelay
		r.Bottleneck = "dram"
	} else if len(r.PeakBW) > 0 && r.PeakBW[0] > r.Cfg.NoCAt(0).Bandwidth {
		r.Bottleneck = "noc"
	}
}

// WithL2 returns a copy of the result re-priced for a different L2
// capacity: DRAM traffic, runtime bound, and bottleneck are recomputed;
// the on-chip analysis is reused. This is what lets the DSE sweep buffer
// capacities without re-running the analytical engine.
func (r *Result) WithL2(l2Bytes int64) *Result {
	c := *r
	c.applyL2(l2Bytes)
	return &c
}

// AtL2 is WithL2 returned by value: hot sweep loops (the DSE's
// bandwidth × L2 axes) re-price capacities without a heap allocation
// per grid point.
func (r *Result) AtL2(l2Bytes int64) Result {
	c := *r
	c.applyL2(l2Bytes)
	return c
}

// L2Read/L2Write/L1Read/L1Write return the shared- and private-scratchpad
// access counts per tensor.
func (r *Result) L2Read(k tensor.Kind) int64  { return r.BufRead[0][k] }
func (r *Result) L2Write(k tensor.Kind) int64 { return r.BufWrite[0][k] }
func (r *Result) L1Read(k tensor.Kind) int64  { return r.BufRead[len(r.BufRead)-1][k] }
func (r *Result) L1Write(k tensor.Kind) int64 { return r.BufWrite[len(r.BufWrite)-1][k] }

// L1ReqBytes returns the per-PE L1 requirement in bytes (double
// buffered), L2ReqBytes the shared L2 requirement.
func (r *Result) L1ReqBytes() int64 {
	last := len(r.BufReq) - 1
	return r.BufReq[last].Sum() * int64(r.Cfg.ElemBytes)
}

// L2ReqBytes returns the shared-scratchpad requirement in bytes.
func (r *Result) L2ReqBytes() int64 {
	return r.BufReq[0].Sum() * int64(r.Cfg.ElemBytes)
}

// Throughput returns achieved MACs per cycle.
func (r *Result) Throughput() float64 {
	if r.Runtime == 0 {
		return 0
	}
	return float64(r.MACs) / float64(r.Runtime)
}

// Utilization returns achieved effective throughput over the compute
// peak. Sparse layers use their effective (non-skipped) MACs, so a
// zero-skipping accelerator never reports more than 100%.
func (r *Result) Utilization() float64 {
	if r.Runtime == 0 {
		return 0
	}
	eff := scaleCount(r.MACs, r.Layer.Density[tensor.Input]*weightDensity(r.Layer))
	return float64(eff) / float64(r.Runtime) / r.Cfg.PeakMACsPerCycle()
}

// ReuseFactor returns the number of local (L1) accesses per L2 fetch of
// tensor k — the reuse factor plotted in Figure 11.
func (r *Result) ReuseFactor(k tensor.Kind) float64 {
	fetches := r.L2Read(k)
	if k == tensor.Output {
		fetches = r.L2Write(k)
	}
	if fetches == 0 {
		return 0
	}
	local := r.L1Read(k)
	if k == tensor.Output {
		local = r.L1Write(k)
	}
	return float64(local) / float64(fetches)
}

// PeakBWGBps converts the top-level bandwidth requirement to GB/s.
func (r *Result) PeakBWGBps() float64 {
	if len(r.PeakBW) == 0 {
		return 0
	}
	return r.PeakBW[0] * r.Cfg.ClockGHz * float64(r.Cfg.ElemBytes)
}

// Activity flattens the counts into the energy model's activity record.
// Intermediate (logical) buffer levels are charged as NoC transfers.
func (r *Result) Activity() energy.Activity {
	last := len(r.BufRead) - 1
	var noct int64
	for _, n := range r.NoCTraffic {
		noct += n
	}
	eff := scaleCount(r.MACs, r.Layer.Density[tensor.Input]*weightDensity(r.Layer))
	return energy.Activity{
		MACs:         eff,
		L1Reads:      r.BufRead[last].Sum(),
		L1Writes:     r.BufWrite[last].Sum(),
		L2Reads:      r.BufRead[0].Sum(),
		L2Writes:     r.BufWrite[0].Sum(),
		NoCTransfers: noct,
		DRAMReads:    r.DRAMReads,
		DRAMWrites:   r.DRAMWrites,
	}
}

// Energy prices the activity under a per-event table.
func (r *Result) Energy(t energy.Table) energy.Breakdown {
	return t.Split(r.Activity())
}

// EnergyDefault prices the activity with the built-in 28 nm table sized
// to the configuration's scratchpads.
func (r *Result) EnergyDefault() energy.Breakdown {
	l1 := r.Cfg.L1Size
	if l1 == 0 {
		l1 = r.L1ReqBytes()
	}
	l2 := r.Cfg.L2Size
	if l2 == 0 {
		l2 = r.L2ReqBytes()
	}
	return r.Energy(energy.DefaultTable(l1, l2))
}

// EDP returns the energy-delay product in pJ*cycles under the table.
func (r *Result) EDP(t energy.Table) float64 {
	return r.Energy(t).Total() * float64(r.Runtime)
}

// CheckConservation verifies the two exactness invariants of the
// analysis: the mapping computes exactly the layer's algorithmic MACs and
// commits exactly the output tensor once. A dataflow that over-computes
// (overlapping output responsibility) or under-computes (coverage gaps)
// fails this check.
func (r *Result) CheckConservation() error {
	if r.MACs != r.Layer.MACs() {
		return fmt.Errorf("MAC conservation violated: computed %d, algorithmic %d",
			r.MACs, r.Layer.MACs())
	}
	want := scaleCount(r.Layer.TensorSize(tensor.Output), r.Layer.Density[tensor.Output])
	if r.FinalOutputs != want {
		return fmt.Errorf("output conservation violated: committed %d, tensor has %d",
			r.FinalOutputs, want)
	}
	return nil
}

// String renders a compact human-readable report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "layer %s dataflow %s on %s (%d PEs, %d used)\n",
		r.Layer.Name, r.DataflowName, r.Cfg.Name, r.Cfg.NumPEs, r.UsedPEs)
	fmt.Fprintf(&b, "  runtime       %d cycles (%s-bound)\n", r.Runtime, r.Bottleneck)
	fmt.Fprintf(&b, "  MACs          %d (%.1f%% utilization)\n", r.MACs, 100*r.Utilization())
	fmt.Fprintf(&b, "  L2 rd/wr      %d / %d elems\n", r.BufRead[0].Sum(), r.BufWrite[0].Sum())
	last := len(r.BufRead) - 1
	fmt.Fprintf(&b, "  L1 rd/wr      %d / %d elems\n", r.BufRead[last].Sum(), r.BufWrite[last].Sum())
	fmt.Fprintf(&b, "  buffer req    L1 %dB/PE, L2 %dB\n", r.L1ReqBytes(), r.L2ReqBytes())
	fmt.Fprintf(&b, "  NoC BW req    %.2f GB/s\n", r.PeakBWGBps())
	e := r.EnergyDefault()
	fmt.Fprintf(&b, "  energy        %.3e pJ on-chip (%.3e incl DRAM)\n", e.OnChip(), e.Total())
	return b.String()
}
