package core

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// TestWorkedExample pins docs/MODEL.md §5: KC-P on a K=C=64, 56x56, 3x3
// layer at 256 PEs. The documented claims are golden-tested here so the
// walkthrough cannot drift from the implementation.
func TestWorkedExample(t *testing.T) {
	layer := tensor.Layer{
		Name: "worked", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 64, tensor.C: 64, tensor.Y: 58, tensor.X: 58, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	df, err := dataflow.ParseDataflow("KC-P", `
		SpatialMap(1,1) K;
		TemporalMap(64,64) C;
		TemporalMap(Sz(R),Sz(R)) R;
		TemporalMap(Sz(S),Sz(S)) S;
		TemporalMap(Sz(R),1) Y;
		TemporalMap(Sz(S),1) X;
		Cluster(64);
		SpatialMap(1,1) C;
	`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hw.Accel256()
	spec, err := dataflow.Resolve(df, layer, cfg.NumPEs)
	if err != nil {
		t.Fatal(err)
	}

	// "Level 0: 4 clusters; K has 64 spatial chunks -> 16 folds."
	if spec.SubClusters(0) != 4 || spec.SubClusters(1) != 64 {
		t.Fatalf("clusters: %d x %d; want 4 x 64", spec.SubClusters(0), spec.SubClusters(1))
	}
	lv0, err := spec.Level(0, layer.Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if lv0.SpatialChunks != 64 || lv0.Folds != 16 {
		t.Fatalf("K chunks=%d folds=%d; want 64, 16", lv0.SpatialChunks, lv0.Folds)
	}
	// "one cluster's tile is K=1, C=64, R=S=3, Y=X=3."
	sub := lv0.SubTile()
	want := tensor.Sizes{tensor.N: 1, tensor.K: 1, tensor.C: 64, tensor.Y: 3, tensor.X: 3, tensor.R: 3, tensor.S: 3}
	if sub != want {
		t.Fatalf("cluster tile %v; want %v", sub, want)
	}

	r, err := Analyze(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// "L2 weight reads = |W| exactly."
	if got, wsize := r.L2Read(tensor.Weight), layer.TensorSize(tensor.Weight); got != wsize {
		t.Errorf("L2 weight reads = %d; want |W| = %d", got, wsize)
	}
	// "L2 input reads ≈ 48 x |I|": one pass per K fold (16) times the
	// ~3x row halo of the 3-row sliding window (each input row serves
	// three overlapping Y chunks and is re-fetched for each).
	isize := layer.TensorSize(tensor.Input)
	ratio := float64(r.L2Read(tensor.Input)) / float64(isize)
	if ratio < 42 || ratio > 50 {
		t.Errorf("L2 input reads = %.1fx |I|; want ~46x (16 folds x ~3x halo)", ratio)
	}
	// "every write is final: L2 output writes = |O| exactly."
	if got, osize := r.L2Write(tensor.Output), layer.TensorSize(tensor.Output); got != osize {
		t.Errorf("L2 output writes = %d; want |O| = %d", got, osize)
	}
	if rd := r.L2Read(tensor.Output); rd != 0 {
		t.Errorf("L2 output reads = %d; want 0 (no partial-sum spill)", rd)
	}
}
