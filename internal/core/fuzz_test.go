package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/noc"
)

// FuzzPriceBatch is the differential fuzz pass for the batch pricing
// engine: random layer shapes × dataflows × mixed-validity config
// batches, with the sequential Price as the oracle. It pins the full
// contract — every valid lane bit-identical to Price, nil results
// exactly on the lanes whose configs fail, the joined error unwrapping
// to the same sentinel the scalar path reports, and invalid neighbors
// never poisoning valid lanes.
func FuzzPriceBatch(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(42), uint8(3), uint8(0b1010))
	f.Add(int64(-7), uint8(7), uint8(0xff))
	f.Add(int64(1<<40), uint8(2), uint8(0b0001))
	f.Fuzz(func(t *testing.T, seed int64, dfPick uint8, invalidMask uint8) {
		const pes = 64
		rng := rand.New(rand.NewSource(seed))
		layer := randomConv(rng, int(uint8(seed)))
		df := dataflows.Get(dataflows.Names[int(dfPick)%len(dataflows.Names)])
		spec, err := dataflow.Resolve(df, layer, pes)
		if err != nil {
			t.Skip() // mapping not applicable to this shape
		}
		prof, err := Profile(spec)
		if err != nil {
			t.Skip()
		}

		// Eight lanes: random bus widths, with the masked lanes made
		// invalid (wrong PE count — the validation Price itself applies).
		cfgs := make([]hw.Config, 8)
		bad := make([]bool, 8)
		for i := range cfgs {
			if invalidMask&(1<<i) != 0 {
				cfgs[i] = testHW(pes * 2)
				bad[i] = true
				continue
			}
			m := noc.Bus(1 + 63*rng.Float64())
			m.Reduction = rng.Intn(2) == 0
			m.Multicast = rng.Intn(4) != 0
			cfgs[i] = hw.Config{
				Name: "fuzz", NumPEs: pes,
				VectorWidth: 1 + rng.Intn(4),
				NoCs:        []noc.Model{m},
			}.Normalize()
		}

		rs, batchErr := prof.PriceBatch(cfgs)
		if len(rs) != len(cfgs) {
			t.Fatalf("got %d results for %d configs", len(rs), len(cfgs))
		}
		anyBad := invalidMask != 0
		if anyBad != (batchErr != nil) {
			t.Fatalf("batch error = %v with invalid mask %08b", batchErr, invalidMask)
		}
		if anyBad && !errors.Is(batchErr, hw.ErrInvalidConfig) {
			t.Fatalf("joined error does not unwrap to hw.ErrInvalidConfig: %v", batchErr)
		}
		for i, cfg := range cfgs {
			want, seqErr := prof.Price(cfg)
			if bad[i] != (seqErr != nil) {
				t.Fatalf("lane %d: sequential oracle disagrees on validity: %v", i, seqErr)
			}
			if bad[i] {
				if rs[i] != nil {
					t.Fatalf("lane %d: invalid config produced a result", i)
				}
				continue
			}
			if rs[i] == nil {
				t.Fatalf("lane %d: valid config produced nil (poisoned by mask %08b?)", i, invalidMask)
			}
			if !reflect.DeepEqual(want, rs[i]) {
				t.Fatalf("lane %d (%s): batch diverged from sequential Price\nprice: %+v\nbatch: %+v",
					i, cfg.Name, want, rs[i])
			}
		}
	})
}
