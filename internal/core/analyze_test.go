package core

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/noc"
	"repro/internal/tensor"
)

func smallConv() tensor.Layer {
	return tensor.Layer{
		Name: "small", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 4, tensor.C: 3, tensor.Y: 10, tensor.X: 10, tensor.R: 3, tensor.S: 3},
	}.Normalize()
}

func testHW(pes int) hw.Config {
	m := noc.Bus(16)
	m.Reduction = true
	return hw.Config{Name: "test", NumPEs: pes, NoCs: []noc.Model{m}}.Normalize()
}

// outputStationary: SpatialMap over K, sweep C,Y,X,R,S temporally.
func outputStationary() dataflow.Dataflow {
	return dataflow.Dataflow{Name: "os", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Sz(tensor.R), tensor.R),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Sz(tensor.S), tensor.S),
	}}
}

func mustAnalyze(t *testing.T, df dataflow.Dataflow, layer tensor.Layer, cfg hw.Config) *Result {
	t.Helper()
	r, err := AnalyzeDataflow(df, layer, cfg)
	if err != nil {
		t.Fatalf("analyze %s on %s: %v", df.Name, layer.Name, err)
	}
	return r
}

func TestConservationOutputStationary(t *testing.T) {
	r := mustAnalyze(t, outputStationary(), smallConv(), testHW(4))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if r.Runtime <= 0 {
		t.Fatal("non-positive runtime")
	}
	if u := r.Utilization(); u <= 0 || u > 1.0001 {
		t.Fatalf("utilization %v out of range", u)
	}
}

// A weight-stationary flow: weights pinned, X' swept innermost.
func TestConservationWeightStationary(t *testing.T) {
	df := dataflow.Dataflow{Name: "ws", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Sz(tensor.R), tensor.R),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Sz(tensor.S), tensor.S),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	}}
	r := mustAnalyze(t, df, smallConv(), testHW(4))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Weights are stationary across the inner Y/X sweep: each weight
	// element should be fetched from L2 once per (K,C,R,S) tile visit,
	// far fewer times than it is used.
	if rf := r.ReuseFactor(tensor.Weight); rf < 10 {
		t.Errorf("weight reuse factor %v; want substantial temporal reuse", rf)
	}
}

// Multi-level: the row-stationary style mapping of the paper's Figure 6.
func TestConservationRowStationary(t *testing.T) {
	layer := tensor.Layer{
		Name: "fig6", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 2, tensor.K: 4, tensor.C: 6, tensor.Y: 8, tensor.X: 8, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	df := dataflow.Dataflow{Name: "rs", Directives: []dataflow.Directive{
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.N),
		dataflow.TMap(dataflow.Lit(3), dataflow.Lit(3), tensor.C),
		dataflow.TMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.SMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Sz(tensor.R), tensor.R),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Sz(tensor.S), tensor.S),
		dataflow.ClusterOf(dataflow.Sz(tensor.R)),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.Y),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.R),
	}}
	r := mustAnalyze(t, df, layer, testHW(6))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// Edge chunks: dimensions that don't divide the tile sizes.
func TestConservationEdges(t *testing.T) {
	layer := tensor.Layer{
		Name: "edgy", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 5, tensor.C: 7, tensor.Y: 11, tensor.X: 9, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	df := dataflow.Dataflow{Name: "edge", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.TMap(dataflow.Lit(3), dataflow.Lit(3), tensor.C),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	}}
	r := mustAnalyze(t, df, layer, testHW(4))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// Strided convolution conservation.
func TestConservationStride(t *testing.T) {
	layer := tensor.Layer{
		Name: "strided", Op: tensor.Conv2D,
		Sizes:   tensor.Sizes{tensor.N: 1, tensor.K: 8, tensor.C: 3, tensor.Y: 19, tensor.X: 19, tensor.R: 3, tensor.S: 3},
		StrideY: 2, StrideX: 2,
	}.Normalize()
	r := mustAnalyze(t, outputStationary(), layer, testHW(8))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// Depthwise convolution: output coupled to C, no K.
func TestConservationDepthwise(t *testing.T) {
	layer := tensor.Layer{
		Name: "dw", Op: tensor.DepthwiseConv,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.C: 8, tensor.Y: 12, tensor.X: 12, tensor.R: 3, tensor.S: 3},
	}.Normalize()
	df := dataflow.Dataflow{Name: "dwflow", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	}}
	r := mustAnalyze(t, df, layer, testHW(8))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// Folded spatial map: more chunks than PEs.
func TestConservationFolding(t *testing.T) {
	r := mustAnalyze(t, outputStationary(), smallConv(), testHW(2))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	r8 := mustAnalyze(t, outputStationary(), smallConv(), testHW(8))
	// 4 K-chunks on 8 PEs: half the array idles, so utilization on 8 PEs
	// must be at most ~half of the 4-PE utilization.
	if r8.Utilization() > 0.75*mustAnalyze(t, outputStationary(), smallConv(), testHW(4)).Utilization() {
		t.Errorf("idle PEs not reflected in utilization: %v vs %v",
			r8.Utilization(), mustAnalyze(t, outputStationary(), smallConv(), testHW(4)).Utilization())
	}
}

// Stationarity: in the output-stationary flow the output never spills
// partial sums; L2 output writes equal the output size exactly.
func TestOutputStationaryNoPsumSpill(t *testing.T) {
	r := mustAnalyze(t, outputStationary(), smallConv(), testHW(4))
	if got, want := r.L2Write(tensor.Output), r.Layer.TensorSize(tensor.Output); got != want {
		t.Errorf("L2 output writes = %d; want exactly %d (no partial-sum spill)", got, want)
	}
	if rd := r.L2Read(tensor.Output); rd != 0 {
		t.Errorf("L2 output reads = %d; want 0", rd)
	}
}

// Partial-sum staging: with the reduction loop outer to the output sweep,
// partial sums must spill and re-read.
func TestPsumSpillWhenReductionOuter(t *testing.T) {
	df := dataflow.Dataflow{Name: "spill", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C), // reduction outer
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	}}
	layer := smallConv()
	r := mustAnalyze(t, df, layer, testHW(4))
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	outSz := layer.TensorSize(tensor.Output)
	c := int64(layer.Sizes.Get(tensor.C))
	if got, want := r.L2Write(tensor.Output), outSz*c; got != want {
		t.Errorf("L2 output writes = %d; want %d (one pass per input channel)", got, want)
	}
	if got, want := r.L2Read(tensor.Output), outSz*(c-1); got != want {
		t.Errorf("L2 output reads = %d; want %d (re-read on all but first pass)", got, want)
	}
}

// Input compulsory traffic: L2 reads of each tensor are at least its size
// and the weight-stationary flow reads weights exactly once.
func TestCompulsoryTraffic(t *testing.T) {
	layer := smallConv()
	r := mustAnalyze(t, outputStationary(), layer, testHW(4))
	for _, k := range []tensor.Kind{tensor.Input, tensor.Weight} {
		if got := r.L2Read(k); got < layer.TensorSize(k) {
			t.Errorf("L2 reads of %v = %d < tensor size %d", k, got, layer.TensorSize(k))
		}
	}
}

func TestMulticastAblation(t *testing.T) {
	layer := smallConv()
	cfg := testHW(4)
	base := mustAnalyze(t, outputStationary(), layer, cfg)

	noMC := cfg
	noMC.NoCs = []noc.Model{{Name: "nomc", Bandwidth: 16, AvgLatency: 2, Multicast: false, Reduction: true}}
	r := mustAnalyze(t, outputStationary(), layer, noMC)
	// Inputs/weights are multicast in this flow (K spatial): without
	// multicast support, L2 reads must grow.
	if r.L2Read(tensor.Input) <= base.L2Read(tensor.Input) {
		t.Errorf("no-multicast L2 input reads %d <= multicast %d",
			r.L2Read(tensor.Input), base.L2Read(tensor.Input))
	}
	if err := r.CheckConservation(); err != nil {
		t.Fatal(err) // conservation is about compute, not traffic
	}
}

func TestReductionAblation(t *testing.T) {
	// C spatially mapped: output reduced across PEs.
	df := dataflow.Dataflow{Name: "cp", Directives: []dataflow.Directive{
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C),
	}}
	layer := smallConv()
	withRed := testHW(3)
	a := mustAnalyze(t, df, layer, withRed)

	noRed := testHW(3)
	noRed.NoCs = []noc.Model{{Name: "nored", Bandwidth: 16, AvgLatency: 2, Multicast: true, Reduction: false}}
	b := mustAnalyze(t, df, layer, noRed)
	if b.L2Write(tensor.Output) <= a.L2Write(tensor.Output) {
		t.Errorf("no-reduction L2 output writes %d <= reduction %d",
			b.L2Write(tensor.Output), a.L2Write(tensor.Output))
	}
}

func TestLeafBufferRequirement(t *testing.T) {
	r := mustAnalyze(t, outputStationary(), smallConv(), testHW(4))
	if r.L1ReqBytes() <= 0 || r.L2ReqBytes() <= 0 {
		t.Fatalf("buffer requirements: L1=%d L2=%d", r.L1ReqBytes(), r.L2ReqBytes())
	}
	if r.L2ReqBytes() < r.L1ReqBytes() {
		t.Errorf("L2 requirement %d smaller than a single PE's L1 %d", r.L2ReqBytes(), r.L1ReqBytes())
	}
}

func TestSparsityScalesActivity(t *testing.T) {
	dense := smallConv()
	sparse := dense
	sparse.Density[tensor.Weight] = 0.5
	rd := mustAnalyze(t, outputStationary(), dense, testHW(4))
	rs := mustAnalyze(t, outputStationary(), sparse, testHW(4))
	if rs.Activity().MACs >= rd.Activity().MACs {
		t.Errorf("sparse MACs %d >= dense %d", rs.Activity().MACs, rd.Activity().MACs)
	}
	if rs.Runtime >= rd.Runtime {
		t.Errorf("sparse runtime %d >= dense %d", rs.Runtime, rd.Runtime)
	}
}
