package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/noc"
	"repro/internal/tensor"
)

// randomConv draws a valid CONV2D layer with small random dimensions,
// occasionally sparse, exercising shapes no curated fixture covers.
func randomConv(rng *rand.Rand, i int) tensor.Layer {
	r := []int{1, 3, 5}[rng.Intn(3)]
	s := []int{1, 3, 5}[rng.Intn(3)]
	l := tensor.Layer{
		Name: fmt.Sprintf("rand%d", i),
		Op:   tensor.Conv2D,
		Sizes: tensor.Sizes{
			tensor.N: 1,
			tensor.K: 4 + rng.Intn(29),
			tensor.C: 4 + rng.Intn(29),
			tensor.Y: r + 4 + rng.Intn(16),
			tensor.X: s + 4 + rng.Intn(16),
			tensor.R: r,
			tensor.S: s,
		},
		StrideY: 1, StrideX: 1,
	}
	if rng.Intn(3) == 0 {
		l.Density[tensor.Input] = 0.3 + 0.6*rng.Float64()
		l.Density[tensor.Weight] = 0.3 + 0.6*rng.Float64()
	}
	return l.Normalize()
}

// randomDataflow draws either a Table 3 dataflow or a synthesized DSL
// mapping: K/C/Y/X in shuffled order with random tile sizes, one of
// them spatial, R/S fully unrolled, and sometimes a cluster level.
func randomDataflow(rng *rand.Rand, i int) (dataflow.Dataflow, error) {
	if rng.Intn(3) == 0 {
		names := dataflows.Names
		return dataflows.Get(names[rng.Intn(len(names))]), nil
	}
	dims := []string{"K", "C", "Y", "X"}
	rng.Shuffle(len(dims), func(a, b int) { dims[a], dims[b] = dims[b], dims[a] })
	spatial := rng.Intn(len(dims))
	// Y and X slide a filter window, so their tile must span it
	// (Sz(R)/Sz(S)); K and C tile freely.
	mapFor := func(d string, isSpatial bool) string {
		kind := "TemporalMap"
		if isSpatial {
			kind = "SpatialMap"
		}
		switch d {
		case "Y":
			return fmt.Sprintf("%s(Sz(R),1) Y; ", kind)
		case "X":
			return fmt.Sprintf("%s(Sz(S),1) X; ", kind)
		}
		if isSpatial {
			return fmt.Sprintf("SpatialMap(1,1) %s; ", d)
		}
		size := []int{1, 2, 4, 8}[rng.Intn(4)]
		return fmt.Sprintf("TemporalMap(%d,%d) %s; ", size, size, d)
	}
	dsl := ""
	for j, d := range dims {
		dsl += mapFor(d, j == spatial)
	}
	dsl += "TemporalMap(Sz(R),Sz(R)) R; TemporalMap(Sz(S),Sz(S)) S;"
	if rng.Intn(2) == 0 {
		inner := dims[(spatial+1)%len(dims)]
		dsl += fmt.Sprintf(" Cluster(%d, P); %s", 2<<rng.Intn(2), mapFor(inner, true))
	}
	return dataflow.ParseDataflow(fmt.Sprintf("randdf%d", i), dsl)
}

// TestPriceBandwidthMonotonicProperty is the randomized property pass:
// for random dataflow × layer pairs, as the NoC bus gets wider the
// priced runtime must never increase (more wires can't slow a pipe
// model down), and at every sampled bandwidth both the scalar Price and
// the corresponding PriceBatch lane (the whole axis priced in one walk)
// must remain bit-identical to the fused Analyze engine.
func TestPriceBandwidthMonotonicProperty(t *testing.T) {
	const pes = 64
	rng := rand.New(rand.NewSource(0xda7af10))
	checked := 0
	for i := 0; checked < 24 && i < 200; i++ {
		df, err := randomDataflow(rng, i)
		if err != nil {
			t.Fatalf("case %d: synthesized DSL failed to parse: %v", i, err)
		}
		layer := randomConv(rng, i)
		spec, err := dataflow.Resolve(df, layer, pes)
		if err != nil {
			continue // mapping not applicable to this shape; Analyze fails identically
		}
		prof, err := Profile(spec)
		if err != nil {
			t.Fatalf("case %d (%s/%s): Profile: %v", i, df.Name, layer.Name, err)
		}
		bw := 1 + 3*rng.Float64()
		cfgs := make([]hw.Config, 0, 6)
		for p := 0; p < 6; p++ {
			m := noc.Bus(bw)
			m.Reduction = true
			cfgs = append(cfgs, hw.Config{
				Name: fmt.Sprintf("prop-bw%.1f", bw), NumPEs: pes,
				NoCs: []noc.Model{m},
			}.Normalize())
			bw *= 1.5 + rng.Float64()
		}
		batch, errB := prof.PriceBatch(cfgs)
		if errB != nil {
			t.Fatalf("case %d (%s/%s): PriceBatch: %v", i, df.Name, layer.Name, errB)
		}
		prevRuntime := int64(-1)
		for p, cfg := range cfgs {
			bw := cfg.NoCs[0].Bandwidth
			want, errA := Analyze(spec, cfg)
			got, errP := prof.Price(cfg)
			if (errA == nil) != (errP == nil) {
				t.Fatalf("case %d (%s/%s) bw=%.2f: error mismatch: analyze=%v price=%v",
					i, df.Name, layer.Name, bw, errA, errP)
			}
			if errA != nil {
				t.Fatalf("case %d (%s/%s) bw=%.2f: Analyze: %v", i, df.Name, layer.Name, bw, errA)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("case %d (%s/%s) bw=%.2f: Price diverged from Analyze\nanalyze: %+v\nprice:   %+v",
					i, df.Name, layer.Name, bw, want, got)
			}
			if !reflect.DeepEqual(want, batch[p]) {
				t.Fatalf("case %d (%s/%s) bw=%.2f: PriceBatch diverged from Analyze\nanalyze: %+v\nbatch:   %+v",
					i, df.Name, layer.Name, bw, want, batch[p])
			}
			if prevRuntime >= 0 && got.Runtime > prevRuntime {
				t.Fatalf("case %d (%s/%s): runtime increased with bandwidth: %d cycles at %.2f elem/cy after %d at narrower pipe",
					i, df.Name, layer.Name, got.Runtime, bw, prevRuntime)
			}
			prevRuntime = got.Runtime
		}
		checked++
	}
	if checked < 24 {
		t.Fatalf("property pass too sparse: only %d resolvable cases out of 200 draws", checked)
	}
}
