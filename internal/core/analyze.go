package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/reuse"
	"repro/internal/tensor"
)

// memoKey identifies a (cluster level, sub-problem) node. Edge chunks at
// outer levels shrink the sub-problem, so the same level is analyzed for
// the handful of distinct tile shapes that occur (the paper reports <20
// such edge sub-cases across levels, which holds here too).
type memoKey struct {
	level int
	dims  tensor.Sizes
}

// nodeRes is the analysis of one node: the outstanding delay of a full
// pass over its sub-problem (which becomes the parent's compute delay)
// and the activity it generates.
type nodeRes struct {
	runtime int64
	counts  *counts
}

// engine is the fused single-pass analyzer: it enumerates data-iteration
// cases and prices them under one hardware configuration in the same
// walk. The decoupled Profile/Price pair (profile.go, price.go) covers
// the many-configurations workload; this engine stays as the
// one-shot path and the reference the equivalence tests check the split
// against.
type engine struct {
	spec  *dataflow.Spec
	cfg   hw.Config
	layer tensor.Layer
	nlv   int // cluster levels; buffers are 0..nlv
	memo  map[memoKey]*nodeRes
}

// analyze resolves and prices one (level, dims) node, memoized.
func (e *engine) analyze(level int, dims tensor.Sizes) (*nodeRes, error) {
	key := memoKey{level, dims}
	if r, ok := e.memo[key]; ok {
		return r, nil
	}
	var r *nodeRes
	var err error
	if level == e.nlv {
		r = e.leaf(dims)
	} else {
		r, err = e.analyzeLevel(level, dims)
	}
	if err != nil {
		return nil, err
	}
	e.memo[key] = r
	return r, nil
}

// leaf prices one PE processing its tile: the PE's ALU performs the
// effective MACs at VectorWidth per cycle, reading both operands and
// reading+writing the accumulator in its L1 scratchpad.
func (e *engine) leaf(dims tensor.Sizes) *nodeRes {
	c := leafCounts(e.layer, dims, e.nlv)
	psums := c.macs
	eff := scaleCount(psums, e.layer.Density[tensor.Input]*weightDensity(e.layer))
	return &nodeRes{runtime: leafRuntime(psums, eff, e.layer, e.cfg), counts: c}
}

// leafCounts builds the hardware-independent activity of one PE pass
// over its tile (shared between the fused engine and the profiler).
func leafCounts(layer tensor.Layer, dims tensor.Sizes, nlv int) *counts {
	c := newCounts(nlv + 1)
	psums := psumsFor(layer, dims)
	eff := scaleCount(psums, layer.Density[tensor.Input]*weightDensity(layer))
	c.macs = psums
	c.bufRead[nlv][tensor.Input] += eff
	c.bufRead[nlv][tensor.Weight] += eff
	c.bufRead[nlv][tensor.Output] += eff
	c.bufWrite[nlv][tensor.Output] += eff
	for _, k := range tensor.AllKinds() {
		c.bufReq[nlv][k] = 2 * scaleCount(tileForDims(layer, dims, k), layer.Density[k])
	}
	return c
}

// leafRuntime prices the PE pass: effective MACs at VectorWidth per
// cycle, stretched by the zero-skipping load imbalance when modeled.
func leafRuntime(psums, eff int64, layer tensor.Layer, cfg hw.Config) int64 {
	runtime := (eff + int64(cfg.VectorWidth) - 1) / int64(cfg.VectorWidth)
	if cfg.SparseImbalance {
		d := layer.Density[tensor.Input] * weightDensity(layer)
		runtime = int64(float64(runtime)*imbalanceFactor(psums, d, cfg.NumPEs) + 0.5)
	}
	return runtime
}

// weightDensity returns the weight density treating the pooling
// convention (density 0 = "no weight tensor") as dense compute.
func weightDensity(l tensor.Layer) float64 {
	if l.Density[tensor.Weight] == 0 {
		return 1
	}
	return l.Density[tensor.Weight]
}

// analyzeLevel enumerates the data-iteration cases of one cluster level:
// the very first step, plus, for every multi-step loop, the steps at
// which that loop advances, crossed with first/steady/edge classes of the
// loops outside it (Figure 8's ExtractDataIterationCases).
func (e *engine) analyzeLevel(level int, dims tensor.Sizes) (*nodeRes, error) {
	lv, err := e.spec.Level(level, dims)
	if err != nil {
		return nil, err
	}
	a := reuse.New(lv, e.layer)
	loops := a.Loops
	nloops := len(loops)
	nocm := e.cfg.NoCAt(level)

	foldIdx := -1
	spatialEdge := false
	for i, lp := range loops {
		if lp.IsFold {
			foldIdx = i
		}
	}
	for _, si := range lv.Spatial {
		if lv.Maps[si].HasEdge() {
			spatialEdge = true
		}
	}

	c := newCounts(e.nlv + 1)
	res := &nodeRes{counts: c}

	// Scratch chunk-selection masks, reused across every case of this
	// level (each case fully rewrites them). Child levels recurse with
	// their own, so reuse is safe.
	edges := make([]bool, nloops)
	oldEdges := make([]bool, nloops)

	// process prices one data-iteration case. adv == -1 is the level's
	// first step; otherwise loop adv advances with the loops inside it
	// reset and the loops outside it at the classes in cls.
	process := func(adv int, cls []loopClass, occ int64) error {
		// Chunk selection on arrival: a loop at its (clipped) final index
		// uses its edge chunk.
		for i, lc := range cls {
			edges[i] = lc.last && !loops[i].IsFold && loops[i].Map.HasEdge()
		}
		foldLast := foldIdx >= 0 && (loops[foldIdx].Steps == 1 || cls[foldIdx].last)
		active := lv.SubClusters
		if len(lv.Spatial) == 0 {
			active = 1
		} else if foldLast {
			active = lv.LastFoldActive
		}
		// Partial-sum staging flags: does the arriving output tile carry
		// prior partials (re-read), and is the departing tile final?
		redNonFirst, redAllLast := false, true
		for i := 0; i < nloops; i++ {
			if i == adv || loops[i].Steps < 2 || a.Affects(tensor.Output, i) {
				continue
			}
			if i < adv || adv == -1 {
				if !cls[i].first {
					redNonFirst = true
				}
				if !cls[i].last {
					redAllLast = false
				}
			}
			// Loops inside adv reset having completed; they do not block
			// finality and carry no pending revisit.
		}

		ch := a.Chunks(edges, false)
		hasEdgePE := spatialEdge && foldLast && active > 1
		child, err := e.analyze(level+1, a.ChildDims(ch))
		if err != nil {
			return err
		}
		compute := child.runtime
		var edgeChild *nodeRes
		if hasEdgePE {
			edgeChild, err = e.analyze(level+1, a.ChildDims(a.Chunks(edges, true)))
			if err != nil {
				return err
			}
		}
		if adv == -1 && a.OutputReduced() && nocm.Reduction {
			// The reduction tree pipelines across steps; its fill latency
			// shows up once, on the first step.
			compute += log2ceil(active)
		}

		// Ingress: new data staged for this step, per tensor.
		var reads, perPEIn TensorCounts
		var inTraffic int64
		for _, k := range tensor.AllKinds() {
			perPE := a.NewData(k, adv, ch, false, 1)
			union := a.NewData(k, adv, ch, true, active)
			if k == tensor.Output {
				revisit := false
				if adv >= 0 {
					if !a.Affects(k, adv) && a.InnerAffecting(k, adv) {
						revisit = true
					} else if a.Affects(k, adv) {
						revisit = redNonFirst
					}
				}
				if !revisit {
					perPE, union = 0, 0
				}
			}
			d := e.layer.Density[k]
			perPE, union = scaleCount(perPE, d), scaleCount(union, d)
			rd := union
			if !nocm.Multicast {
				rd = perPE * int64(active)
			}
			reads[k] = rd
			perPEIn[k] = perPE
			inTraffic += rd
		}

		// Egress: the output slice displaced by this step's arrival (the
		// previous tile's inner loops completed at their final chunks).
		var egUnion, egPerPE int64
		final := false
		if adv >= 0 {
			copy(oldEdges, edges)
			for i := adv + 1; i < nloops; i++ {
				oldEdges[i] = !loops[i].IsFold && loops[i].Map.HasEdge()
			}
			oldEdges[adv] = false
			oldFoldLast := foldIdx >= 0 && (loops[foldIdx].Steps == 1 ||
				(foldIdx > adv || (foldIdx < adv && cls[foldIdx].last)))
			oldActive := lv.SubClusters
			if len(lv.Spatial) == 0 {
				oldActive = 1
			} else if oldFoldLast {
				oldActive = lv.LastFoldActive
			}
			chOld := a.Chunks(oldEdges, false)
			egPerPE = a.NewData(tensor.Output, adv, chOld, false, 1)
			egUnion = a.NewData(tensor.Output, adv, chOld, true, oldActive)
			final = a.Affects(tensor.Output, adv) && redAllLast
		}
		d := e.layer.Density[tensor.Output]
		egPerPE, egUnion = scaleCount(egPerPE, d), scaleCount(egUnion, d)
		egWrites, egTraffic, rmwReads := egUnion, egUnion, int64(0)
		if a.OutputReduced() && !nocm.Reduction && active > 1 {
			// Without in-network reduction every sub-cluster's partials
			// travel up and accumulate read-modify-write in the parent.
			egWrites = egPerPE * int64(active)
			egTraffic = egWrites
			rmwReads = egPerPE * int64(active-1)
		}

		inDelay := nocm.DelayPer(reads[tensor.Input], reads[tensor.Weight], reads[tensor.Output])
		// Parent-side accumulation of unreduced partials serializes: each
		// one costs a scratchpad read and write at the parent.
		outDelay := nocm.Delay(egTraffic) + 2*rmwReads
		outstanding := max3(inDelay, compute, outDelay)
		if adv == -1 {
			// No double buffering on the very first step: fetch, compute
			// and drain serialize (Figure 8's IsFullInit case).
			outstanding = inDelay + compute + outDelay
		}
		res.runtime += occ * outstanding

		// Activity bookkeeping.
		for _, k := range tensor.AllKinds() {
			c.bufRead[level][k] += occ * reads[k]
			c.bufWrite[level+1][k] += occ * perPEIn[k] * int64(active)
		}
		// Unreduced partial sums accumulate in the shared scratchpad
		// (intermediate cluster levels have no physical buffer of their
		// own), so their read-modify-write traffic is charged to L2.
		rmwBuf := level
		if rmwReads > 0 {
			rmwBuf = 0
		}
		c.bufRead[rmwBuf][tensor.Output] += occ * rmwReads
		c.bufWrite[rmwBuf][tensor.Output] += occ * (egWrites - egUnion)
		c.bufWrite[level][tensor.Output] += occ * egUnion
		c.bufRead[level+1][tensor.Output] += occ * egPerPE * int64(active)
		c.noc[level] += occ * (inTraffic + egTraffic)
		if compute > 0 {
			bw := float64(inTraffic+egTraffic) / float64(compute)
			if bw > c.peakBW[level] {
				c.peakBW[level] = bw
			}
		}
		if final && level == 0 {
			// Only the top level's commits land in L2; inner levels pass
			// the same outputs upward and must not double-count them.
			c.finalOut += occ * egUnion
		}
		mainPEs := int64(active)
		if hasEdgePE {
			mainPEs--
			c.addScaled(edgeChild.counts, occ)
		}
		c.addScaled(child.counts, occ*mainPEs)
		// Buffer requirement: this level's parent stages the union tile,
		// double buffered.
		for _, k := range tensor.AllKinds() {
			req := 2 * scaleCount(a.UnionTile(k, ch, active), e.layer.Density[k])
			if req > c.bufReq[level][k] {
				c.bufReq[level][k] = req
			}
		}
		return nil
	}

	// Enumerate cases: START, then every advancing loop crossed with the
	// outer loops' first/steady/edge classes.
	en := newCaseEnum(a)
	if err := process(-1, en.start(), 1); err != nil {
		return nil, err
	}
	for adv := 0; adv < nloops; adv++ {
		if loops[adv].Steps < 2 {
			continue
		}
		if err := en.enumerate(adv, process); err != nil {
			return nil, err
		}
	}

	// Final flush: the last output tile departs once the nest completes
	// (every loop at its final index, the last fold active).
	for i, lp := range loops {
		edges[i] = !lp.IsFold && lp.Map.HasEdge()
	}
	active := lv.LastFoldActive
	if len(lv.Spatial) == 0 {
		active = 1
	}
	// UnionTile clips the union extent to the dimension, so the spatially
	// clipped final chunk is already accounted for.
	chFMain := a.Chunks(edges, false)
	d := e.layer.Density[tensor.Output]
	egPerPE := scaleCount(a.TileOf(tensor.Output, chFMain), d)
	egUnion := scaleCount(a.UnionTile(tensor.Output, chFMain, active), d)
	egWrites, egTraffic := egUnion, egUnion
	var rmwReads int64
	if a.OutputReduced() && !nocm.Reduction && active > 1 {
		egWrites = egPerPE * int64(active)
		egTraffic = egWrites
		rmwReads = egPerPE * int64(active-1)
	}
	res.runtime += nocm.Delay(egTraffic) + 2*rmwReads
	rmwBuf := level
	if rmwReads > 0 {
		rmwBuf = 0
	}
	c.bufRead[rmwBuf][tensor.Output] += rmwReads
	c.bufWrite[rmwBuf][tensor.Output] += egWrites - egUnion
	c.bufWrite[level][tensor.Output] += egUnion
	c.bufRead[level+1][tensor.Output] += egPerPE * int64(active)
	c.noc[level] += egTraffic
	if level == 0 {
		c.finalOut += egUnion
	}
	return res, nil
}

// Analyze runs the full performance and cost analysis of a resolved
// dataflow on a hardware configuration and returns the report.
func Analyze(spec *dataflow.Spec, cfg hw.Config) (*Result, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if spec.NumPEs != cfg.NumPEs {
		return nil, fmt.Errorf("%w: core: spec resolved for %d PEs but hardware has %d",
			hw.ErrInvalidConfig, spec.NumPEs, cfg.NumPEs)
	}
	e := &engine{
		spec:  spec,
		cfg:   cfg,
		layer: spec.Layer,
		nlv:   spec.NumLevels(),
		memo:  make(map[memoKey]*nodeRes),
	}
	root, err := e.analyze(0, spec.Layer.Sizes)
	if err != nil {
		return nil, err
	}
	return buildResult(spec, cfg, root), nil
}

// AnalyzeDataflow resolves and analyzes in one call.
func AnalyzeDataflow(df dataflow.Dataflow, layer tensor.Layer, cfg hw.Config) (*Result, error) {
	cfg = cfg.Normalize()
	spec, err := dataflow.Resolve(df, layer, cfg.NumPEs)
	if err != nil {
		return nil, err
	}
	return Analyze(spec, cfg)
}

// AnalyzeDataflowCtx is AnalyzeDataflow wrapped in a "core.analyze"
// span when ctx carries an obs recorder (the fused engine has no
// internal phases to attribute; cached analyses go through
// AnalyzeDataflowCachedCtx instead for profile/price attribution).
func AnalyzeDataflowCtx(ctx context.Context, df dataflow.Dataflow, layer tensor.Layer, cfg hw.Config) (*Result, error) {
	_, span := obs.Start(ctx, "core.analyze",
		obs.String("dataflow", df.Name),
		obs.String("layer", layer.Name))
	r, err := AnalyzeDataflow(df, layer, cfg)
	span.End()
	return r, err
}

// AnalyzeSub exposes one (level, dims) node's outstanding delay for
// debugging and tests.
func AnalyzeSub(spec *dataflow.Spec, cfg hw.Config, level int, dims tensor.Sizes) (int64, error) {
	cfg = cfg.Normalize()
	e := &engine{spec: spec, cfg: cfg, layer: spec.Layer, nlv: spec.NumLevels(), memo: make(map[memoKey]*nodeRes)}
	r, err := e.analyze(level, dims)
	if err != nil {
		return 0, err
	}
	return r.runtime, nil
}

// AnalyzeAll analyzes many layers concurrently under one dataflow and
// hardware configuration, preserving order. Per-layer failures land in
// the errors slice at the layer's index; the result slice holds nil
// there. The engines share nothing mutable, so the fan-out is safe.
func AnalyzeAll(df dataflow.Dataflow, layers []tensor.Layer, cfg hw.Config) ([]*Result, []error) {
	results := make([]*Result, len(layers))
	errs := make([]error, len(layers))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range layers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = AnalyzeDataflow(df, layers[i], cfg)
		}(i)
	}
	wg.Wait()
	return results, errs
}
