package core

import (
	"repro/internal/reuse"
	"repro/internal/tensor"
)

// loopClass is one choice for a loop's position within a data-iteration
// case: whether the loop sits at its first index, at its final index, and
// how many concrete steps the choice covers.
type loopClass struct {
	first bool
	last  bool
	count int64
}

// caseEnum enumerates the data-iteration cases of one cluster level
// (Figure 8's ExtractDataIterationCases). It owns the scratch slices the
// enumeration walks over, so the per-case callbacks allocate nothing:
// one caseEnum serves every case of one analyzeLevel/profileLevel call.
type caseEnum struct {
	a     *reuse.Analysis
	loops []reuse.Loop

	cls     []loopClass   // current class assignment, reused across cases
	choices [][]loopClass // per-loop choice lists, reused across advs
	single  []loopClass   // per-loop reset/single-step class (first, last iff 1 step)
}

func newCaseEnum(a *reuse.Analysis) *caseEnum {
	n := len(a.Loops)
	en := &caseEnum{
		a:       a,
		loops:   a.Loops,
		cls:     make([]loopClass, n),
		choices: make([][]loopClass, n),
		single:  make([]loopClass, n),
	}
	for i, lp := range a.Loops {
		en.single[i] = loopClass{first: true, last: lp.Steps == 1, count: 1}
	}
	return en
}

// start returns the class assignment of the level's very first step:
// every loop at its first index.
func (en *caseEnum) start() []loopClass {
	copy(en.cls, en.single)
	return en.cls
}

// enumerate crosses the class choices of the loops outside adv with the
// arrival classes of adv itself and invokes process for each combination.
// The cls slice passed to process is owned by the enumerator and only
// valid for the duration of the call.
func (en *caseEnum) enumerate(adv int, process func(adv int, cls []loopClass, occ int64) error) error {
	for i, lp := range en.loops {
		switch {
		case i > adv || lp.Steps < 2:
			// Inner loops reset to their first index; single-step loops
			// have one position that is both first and last.
			en.choices[i] = en.single[i : i+1 : i+1]
		case i == adv:
			en.choices[i] = arrivalClasses(lp, splitLast(en.a, en.loops, i))
		default:
			en.choices[i] = outerClasses(lp, splitLast(en.a, en.loops, i),
				!en.a.Affects(tensor.Output, i))
		}
	}
	var walk func(i int, occ int64) error
	walk = func(i int, occ int64) error {
		if i == len(en.loops) {
			return process(adv, en.cls, occ)
		}
		for _, ch := range en.choices[i] {
			en.cls[i] = ch
			if err := walk(i+1, occ*ch.count); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0, 1)
}

// splitLast reports whether a loop's final index must be distinguished
// from its steady ones: it carries an edge chunk, changes the active
// sub-cluster count (final fold), or gates output finality (reduction
// loop).
func splitLast(a *reuse.Analysis, loops []reuse.Loop, i int) bool {
	lp := loops[i]
	if lp.IsFold {
		return true
	}
	return lp.Map.HasEdge() || !a.Affects(tensor.Output, i)
}

// arrivalClasses enumerates where an advancing loop lands: indices
// 1..T-1, with the final index split out when it matters.
func arrivalClasses(lp reuse.Loop, split bool) []loopClass {
	t := int64(lp.Steps)
	if !split {
		return []loopClass{{count: t - 1}}
	}
	cls := []loopClass{{last: true, count: 1}}
	if t > 2 {
		cls = append(cls, loopClass{count: t - 2})
	}
	return cls
}

// outerClasses enumerates an outer loop's position: first/steady/final,
// with first split out only for reduction loops (it gates partial-sum
// re-reads) and final split out when splitLast says so.
func outerClasses(lp reuse.Loop, splitLastIdx, splitFirst bool) []loopClass {
	t := int64(lp.Steps)
	switch {
	case splitFirst && splitLastIdx:
		cls := []loopClass{{first: true, count: 1}, {last: true, count: 1}}
		if t > 2 {
			cls = append(cls, loopClass{count: t - 2})
		}
		return cls
	case splitFirst:
		cls := []loopClass{{first: true, count: 1}}
		if t > 1 {
			cls = append(cls, loopClass{count: t - 1})
		}
		return cls
	case splitLastIdx:
		cls := []loopClass{{last: true, count: 1}}
		if t > 1 {
			cls = append(cls, loopClass{count: t - 1})
		}
		return cls
	default:
		return []loopClass{{count: t}}
	}
}

func max3(a, b, c int64) int64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
