package reuse

import (
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
	"repro/internal/tensor"
)

// fixture resolves a single-level dataflow over a reference layer and
// returns its analysis.
func fixture(t *testing.T, layer tensor.Layer, pes int, dirs ...dataflow.Directive) *Analysis {
	t.Helper()
	spec, err := dataflow.Resolve(dataflow.Dataflow{Name: "fix", Directives: dirs}, layer, pes)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := spec.Level(0, spec.Layer.Sizes)
	if err != nil {
		t.Fatal(err)
	}
	return New(lv, spec.Layer)
}

func refLayer() tensor.Layer {
	return tensor.Layer{
		Name: "ref", Op: tensor.Conv2D,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: 8, tensor.C: 6, tensor.Y: 12, tensor.X: 12, tensor.R: 3, tensor.S: 3},
	}.Normalize()
}

func TestLoopsOrder(t *testing.T) {
	a := fixture(t, refLayer(), 4,
		dataflow.TMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
	)
	// Nest: K temporal, fold (at the spatial map's position), Y temporal,
	// then implicit single-step loops.
	if len(a.Loops) < 3 {
		t.Fatalf("loops = %d", len(a.Loops))
	}
	if a.Loops[0].IsFold || a.Loops[0].Map.Dim != tensor.K {
		t.Errorf("loop 0 = %+v; want K", a.Loops[0])
	}
	if !a.Loops[1].IsFold {
		t.Errorf("loop 1 not the fold")
	}
	if a.Loops[2].IsFold || a.Loops[2].Map.Dim != tensor.Y {
		t.Errorf("loop 2 = %+v; want Y", a.Loops[2])
	}
}

func TestTileOf(t *testing.T) {
	a := fixture(t, refLayer(), 4,
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.TMap(dataflow.Lit(3), dataflow.Lit(3), tensor.C),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
	)
	ch := a.SteadyChunks()
	// Weight tile: K2 x C3 x R3 x S3.
	if got := a.TileOf(tensor.Weight, ch); got != 2*3*3*3 {
		t.Errorf("weight tile = %d; want 54", got)
	}
	// Input tile: N1 x C3 x Y3 x X3.
	if got := a.TileOf(tensor.Input, ch); got != 3*3*3 {
		t.Errorf("input tile = %d; want 27", got)
	}
	// Output tile: N1 x K2 x 1 x 1.
	if got := a.TileOf(tensor.Output, ch); got != 2 {
		t.Errorf("output tile = %d; want 2", got)
	}
	// Partial sums per pass: K2*C3*1*1*R3*S3.
	if got := a.Psums(ch); got != 2*3*9 {
		t.Errorf("psums = %d; want 54", got)
	}
}

func TestUnionTilePartitioned(t *testing.T) {
	a := fixture(t, refLayer(), 4,
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.TMap(dataflow.Lit(3), dataflow.Lit(3), tensor.C),
	)
	ch := a.SteadyChunks()
	// Weight union across 4 PEs: K axis spans 4*2=8 (full K).
	if got := a.UnionTile(tensor.Weight, ch, 4); got != 8*3*3*3 {
		t.Errorf("weight union = %d; want 216", got)
	}
	// Inputs are identical across PEs (K not coupled): union == tile.
	if got, tile := a.UnionTile(tensor.Input, ch, 4), a.TileOf(tensor.Input, ch); got != tile {
		t.Errorf("input union = %d; want %d", got, tile)
	}
	if a.SpatiallyVaries(tensor.Input) {
		t.Error("input should be multicast under K partitioning")
	}
	if !a.SpatiallyVaries(tensor.Weight) || !a.SpatiallyVaries(tensor.Output) {
		t.Error("weights/outputs should be partitioned under K partitioning")
	}
	if a.OutputReduced() {
		t.Error("K partitioning must not require spatial reduction")
	}
}

func TestUnionTileHalo(t *testing.T) {
	// Spatial Y with halo: size 3, offset 1 over 4 PEs => union 6 rows,
	// not 12.
	a := fixture(t, refLayer(), 4,
		dataflow.SMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
	)
	ch := a.SteadyChunks()
	perPE := a.TileOf(tensor.Input, ch)
	union := a.UnionTile(tensor.Input, ch, 4)
	if union >= 4*perPE {
		t.Errorf("halo union %d not collapsed (4x tile = %d)", union, 4*perPE)
	}
	if want := perPE / 3 * 6; union != want {
		t.Errorf("union = %d; want %d (6 rows)", union, want)
	}
}

func TestOutputReducedEyerissDiagonal(t *testing.T) {
	layer := refLayer()
	spec, err := dataflow.Resolve(dataflow.Dataflow{Name: "rs", Directives: []dataflow.Directive{
		dataflow.SMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Sz(tensor.R), tensor.R),
		dataflow.ClusterOf(dataflow.Sz(tensor.R)),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.Y),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.R),
	}}, layer, 6)
	if err != nil {
		t.Fatal(err)
	}
	lv0, err := spec.Level(0, layer.Sizes)
	if err != nil {
		t.Fatal(err)
	}
	sub := lv0.SubTile()
	lv1, err := spec.Level(1, sub)
	if err != nil {
		t.Fatal(err)
	}
	a := New(lv1, layer)
	// Co-mapped Y and R cancel: all PEs compute the same output row.
	if a.SpatiallyVaries(tensor.Output) {
		t.Error("diagonal mapping must keep the output tile identical across PEs")
	}
	if !a.OutputReduced() {
		t.Error("diagonal mapping must require spatial reduction")
	}
	// Weights differ per PE (R varies), inputs differ per PE (Y varies).
	if !a.SpatiallyVaries(tensor.Weight) || !a.SpatiallyVaries(tensor.Input) {
		t.Error("weights and inputs vary across the diagonal")
	}
}

func TestNewDataStationarity(t *testing.T) {
	// Nest: K outer, Y inner. Weights are coupled to K, not Y.
	a := fixture(t, refLayer(), 4,
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
	)
	ch := a.SteadyChunks()
	var yIdx, cIdx int = -1, -1
	for i, lp := range a.Loops {
		if lp.IsFold {
			continue
		}
		switch lp.Map.Dim {
		case tensor.Y:
			yIdx = i
		case tensor.C:
			cIdx = i
		}
	}
	// Advancing Y: weights fully reused (stationary).
	if got := a.NewData(tensor.Weight, yIdx, ch, false, 1); got != 0 {
		t.Errorf("weight refetch on Y advance = %d; want 0", got)
	}
	// Advancing Y: input slides by one row => one new row of X elements.
	if got := a.NewData(tensor.Input, yIdx, ch, false, 1); got != int64(refLayer().Sizes.Get(tensor.X)) {
		t.Errorf("input new on Y advance = %d; want %d", got, refLayer().Sizes.Get(tensor.X))
	}
	// Advancing C (outer to Y): input has multi-step inner coupled dim
	// (Y) => full refetch; weights likewise.
	if got, tile := a.NewData(tensor.Input, cIdx, ch, false, 1), a.TileOf(tensor.Input, ch); got != tile {
		t.Errorf("input new on C advance = %d; want full tile %d", got, tile)
	}
	if got, tile := a.NewData(tensor.Weight, cIdx, ch, false, 1), a.TileOf(tensor.Weight, ch); got != tile {
		t.Errorf("weight new on C advance = %d; want full tile %d", got, tile)
	}
	// First step: everything is new.
	if got, tile := a.NewData(tensor.Weight, -1, ch, false, 1), a.TileOf(tensor.Weight, ch); got != tile {
		t.Errorf("weight first fetch = %d; want %d", got, tile)
	}
}

func TestNewDataOutputStationaryOverReduction(t *testing.T) {
	// Nest: Y,X outer; C,R,S inner => the output tile never moves while
	// reduction dims advance.
	a := fixture(t, refLayer(), 4,
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		dataflow.TMap(dataflow.Lit(2), dataflow.Lit(2), tensor.C),
	)
	ch := a.SteadyChunks()
	cIdx := -1
	for i, lp := range a.Loops {
		if !lp.IsFold && lp.Map.Dim == tensor.C {
			cIdx = i
		}
	}
	if got := a.NewData(tensor.Output, cIdx, ch, false, 1); got != 0 {
		t.Errorf("output moved on C advance: %d new elements", got)
	}
	if !a.InnerAffecting(tensor.Input, 1) {
		// Y advance with inner multi-step C: input forfeits halo credit.
		ydata := a.NewData(tensor.Input, 1, ch, false, 1)
		if ydata != a.TileOf(tensor.Input, ch) {
			t.Errorf("expected full refetch with inner C loop, got %d", ydata)
		}
	}
}

func TestAffectsFilterTiling(t *testing.T) {
	// R tiled with the full activation staged: the window anchors to the
	// activation chunk, so R advances accumulate taps in place and the
	// output tile does NOT move (the paper's Figure 5(A) semantics).
	a := fixture(t, refLayer(), 4,
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.R),
	)
	rIdx := -1
	for i, lp := range a.Loops {
		if !lp.IsFold && lp.Map.Dim == tensor.R {
			rIdx = i
		}
	}
	if a.Affects(tensor.Output, rIdx) {
		t.Error("anchored window: R advance must not move the output tile")
	}
	if !a.Affects(tensor.Weight, rIdx) {
		t.Error("R map must affect the weight tile")
	}
	if a.Affects(tensor.Input, rIdx) {
		t.Error("R map must not affect the input tile")
	}

	// Diagonal case: the activation chunk is smaller than the window
	// (Y chunk 1 against R=3), so the output shifts with the filter tap.
	d := fixture(t, refLayer(), 4,
		dataflow.SMap(dataflow.Lit(2), dataflow.Lit(2), tensor.K),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.Y),
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.R),
	)
	rIdx = -1
	for i, lp := range d.Loops {
		if !lp.IsFold && lp.Map.Dim == tensor.R {
			rIdx = i
		}
	}
	if !d.Affects(tensor.Output, rIdx) {
		t.Error("diagonal window: R advance must shift the output tile")
	}
}

// Property tests over randomized single-level mappings: tile arithmetic
// must respect containment bounds regardless of chunking.
func TestReuseProperties(t *testing.T) {
	f := func(kSz, cSz, ySz, kTile, spatialSel uint8) bool {
		layer := tensor.Layer{
			Name: "prop", Op: tensor.Conv2D,
			Sizes: tensor.Sizes{
				tensor.N: 1,
				tensor.K: int(kSz%8) + 1,
				tensor.C: int(cSz%8) + 1,
				tensor.Y: int(ySz%10) + 3,
				tensor.X: int(ySz%10) + 3,
				tensor.R: 3, tensor.S: 3,
			},
		}.Normalize()
		kt := int(kTile)%layer.Sizes.Get(tensor.K) + 1
		spatialDim := []tensor.Dim{tensor.K, tensor.C}[spatialSel%2]
		dirs := []dataflow.Directive{
			dataflow.TMap(dataflow.Lit(kt), dataflow.Lit(kt), tensor.K),
			dataflow.TMap(dataflow.Sz(tensor.R), dataflow.Lit(1), tensor.Y),
			dataflow.TMap(dataflow.Sz(tensor.S), dataflow.Lit(1), tensor.X),
		}
		if spatialDim == tensor.K {
			dirs[0] = dataflow.SMap(dataflow.Lit(kt), dataflow.Lit(kt), tensor.K)
		} else {
			dirs = append(dirs, dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.C))
		}
		spec, err := dataflow.Resolve(dataflow.Dataflow{Name: "p", Directives: dirs}, layer, 4)
		if err != nil {
			return true
		}
		lv, err := spec.Level(0, layer.Sizes)
		if err != nil {
			return true
		}
		a := New(lv, layer)
		ch := a.SteadyChunks()
		for _, k := range tensor.AllKinds() {
			tile := a.TileOf(k, ch)
			union := a.UnionTile(k, ch, lv.SubClusters)
			// Union is at least one tile and at most active tiles / the
			// whole tensor footprint.
			if union < tile || union > tile*int64(lv.SubClusters) {
				return false
			}
			if union > layer.TensorSize(k) && !a.SpatiallyVaries(k) {
				return false
			}
			// New data on any advance never exceeds the tile.
			for li := range a.Loops {
				nd := a.NewData(k, li, ch, false, 1)
				if nd < 0 || nd > tile {
					return false
				}
			}
			if first := a.NewData(k, -1, ch, false, 1); first != tile {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
