// Package reuse implements MAESTRO's reuse-analysis engine (Section 4.1):
// given one resolved cluster level of a dataflow and the layer it maps, it
// computes per-tensor tile sizes, classifies spatial reuse (multicast and
// reduction opportunities, Tables 1-2), and quantifies temporal reuse
// between adjacent time steps (stationarity and sliding-window halos).
package reuse

import (
	"repro/internal/dataflow"
	"repro/internal/tensor"
)

// Loop is one temporal iteration of a level's nest: a temporal map, or
// the implicit fold loop of a folded spatial map. Loops are ordered
// outermost first.
type Loop struct {
	// Map is nil for the fold pseudo-loop.
	Map    *dataflow.ResolvedMap
	IsFold bool
	Steps  int
}

// Analysis binds the reuse engine to one level of one layer.
type Analysis struct {
	Level *dataflow.Level
	Layer tensor.Layer
	// Loops is the temporal nest of the level: its temporal maps in
	// directive order with the fold loop (if any) inserted at the nest
	// position of the first spatial map.
	Loops []Loop

	affects [tensor.NumKinds]uint64 // per kind: bitmask over loop indices
	spatial [tensor.NumKinds]bool   // tile varies across sub-clusters
	// outShiftY/outShiftX: output-tile shift per sub-cluster step along
	// the output row/column axes (spatial Y/R and X/S offsets cancelling,
	// divided by stride). Zero when output tiles coincide across PEs.
	outShiftY, outShiftX int
	// anchoredY/anchoredX report that the activation chunk hosts a full
	// filter window, so partial filter chunks accumulate in place rather
	// than shifting the outputs (tensor.EffectiveWindow).
	anchoredY, anchoredX bool
}

// New builds the analysis for a level.
func New(lv *dataflow.Level, layer tensor.Layer) *Analysis {
	a := &Analysis{Level: lv, Layer: layer}
	for i := range lv.Maps {
		m := &lv.Maps[i]
		if i == lv.FoldPos {
			a.Loops = append(a.Loops, Loop{IsFold: true, Steps: lv.Folds})
		}
		if m.Kind == dataflow.Temporal {
			a.Loops = append(a.Loops, Loop{Map: m, Steps: m.Steps})
		}
	}
	a.anchoredY = lv.Map(tensor.Y).Size >= lv.Map(tensor.R).DimSize
	a.anchoredX = lv.Map(tensor.X).Size >= lv.Map(tensor.S).DimSize
	spOf := func(d tensor.Dim) int {
		if lv.IsSpatial(d) {
			return lv.Map(d).Offset
		}
		return 0
	}
	// An anchored window pins the outputs to the activation chunk: a
	// spatially mapped filter dim then reduces across PEs instead of
	// shifting their output tiles.
	rOff, sOff := spOf(tensor.R), spOf(tensor.S)
	if a.anchoredY {
		rOff = 0
	}
	if a.anchoredX {
		sOff = 0
	}
	a.outShiftY = outShift(spOf(tensor.Y), rOff, layer.StrideY)
	a.outShiftX = outShift(spOf(tensor.X), sOff, layer.StrideX)
	for _, k := range tensor.AllKinds() {
		dims := layer.TensorDims(k)
		for _, d := range lv.SpatialDims().Dims() {
			switch {
			case k == tensor.Output && (d == tensor.Y || d == tensor.R):
				if a.outShiftY != 0 {
					a.spatial[k] = true
				}
			case k == tensor.Output && (d == tensor.X || d == tensor.S):
				if a.outShiftX != 0 {
					a.spatial[k] = true
				}
			case dims.Has(d):
				a.spatial[k] = true
			}
		}
	}
	for li, lp := range a.Loops {
		for _, k := range tensor.AllKinds() {
			if a.loopAffects(k, lp) {
				a.affects[k] |= 1 << uint(li)
			}
		}
	}
	return a
}

// outShift computes the per-sub-cluster shift of the output tile along an
// output axis when the activation dim moves by actOff and the filter dim
// by filtOff per sub-cluster: |actOff - filtOff| / stride, rounded up.
func outShift(actOff, filtOff, stride int) int {
	d := actOff - filtOff
	if d < 0 {
		d = -d
	}
	return (d + stride - 1) / stride
}

// loopAffects reports whether advancing the loop changes tensor k's tile.
func (a *Analysis) loopAffects(k tensor.Kind, lp Loop) bool {
	if lp.IsFold {
		return a.spatial[k]
	}
	d := lp.Map.Dim
	if a.Layer.TensorDims(k).Has(d) {
		return true
	}
	// Filter dims shift the output window only when the activation chunk
	// cannot host a full window (diagonal co-mapping).
	if k == tensor.Output {
		if d == tensor.R {
			return !a.anchoredY
		}
		if d == tensor.S {
			return !a.anchoredX
		}
	}
	return false
}

// Affects reports whether advancing loop li changes tensor k's tile.
func (a *Analysis) Affects(k tensor.Kind, li int) bool {
	return a.affects[k]&(1<<uint(li)) != 0
}

// InnerAffecting reports whether any multi-step loop nested inside li
// changes tensor k's tile (which forfeits reuse credit: the buffer only
// holds the live tile).
func (a *Analysis) InnerAffecting(k tensor.Kind, li int) bool {
	for j := li + 1; j < len(a.Loops); j++ {
		if a.Loops[j].Steps > 1 && a.Affects(k, j) {
			return true
		}
	}
	return false
}

// SpatiallyVaries reports whether tensor k's tile differs across
// sub-clusters. A tensor that does not vary is a spatial multicast
// opportunity (inputs/weights) or a spatial reduction opportunity
// (outputs), per Table 1.
func (a *Analysis) SpatiallyVaries(k tensor.Kind) bool { return a.spatial[k] }

// OutputReduced reports whether the level's sub-clusters produce partial
// sums for the same output tile, requiring spatial reduction (Table 2).
func (a *Analysis) OutputReduced() bool {
	return len(a.Level.Spatial) > 0 && !a.spatial[tensor.Output]
}

// Chunks returns per-dimension chunk sizes given per-loop edge flags
// (true selects the loop's final clipped chunk) and whether the
// sub-cluster holds the spatially clipped final chunk.
func (a *Analysis) Chunks(edges []bool, spatialEdge bool) tensor.Sizes {
	var ch tensor.Sizes
	for i := range a.Level.Maps {
		m := &a.Level.Maps[i]
		sz := m.Size
		if m.Kind == dataflow.Spatial && spatialEdge {
			sz = m.EdgeSize
		}
		ch = ch.Set(m.Dim, sz)
	}
	for li, lp := range a.Loops {
		if !lp.IsFold && li < len(edges) && edges[li] {
			ch = ch.Set(lp.Map.Dim, lp.Map.EdgeSize)
		}
	}
	return ch
}

// SteadyChunks returns the chunk sizes with every loop at a steady chunk.
func (a *Analysis) SteadyChunks() tensor.Sizes {
	return a.Chunks(make([]bool, len(a.Loops)), false)
}

// axis is one independent extent of a tensor tile: per-sub-cluster and
// union-across-sub-clusters sizes, plus the dims whose advance shifts it.
type axis struct {
	perPE int64
	union int64
	dims  tensor.DimSet
}

// axes decomposes tensor k's tile into independent axes for the given
// chunk sizes and `active` sub-clusters.
func (a *Analysis) axes(k tensor.Kind, ch tensor.Sizes, active int) []axis {
	direct := func(d tensor.Dim) axis {
		c := int64(ch.Get(d))
		u := c
		if a.Level.IsSpatial(d) {
			m := a.Level.Map(d)
			uu := (active-1)*m.Offset + ch.Get(d)
			if uu > m.DimSize {
				uu = m.DimSize
			}
			u = int64(uu)
		}
		return axis{perPE: c, union: u, dims: tensor.NewDimSet(d)}
	}
	outAxis := func(act, filt tensor.Dim, stride, shift int, anchored bool) axis {
		full := a.Level.Map(filt).DimSize
		win := tensor.EffectiveWindow(ch.Get(act), ch.Get(filt), full)
		o := int64(tensor.OutSpan(ch.Get(act), win, stride))
		u := o
		if shift != 0 {
			u = int64(active-1)*int64(shift) + o
			limWin := tensor.EffectiveWindow(a.Level.Dims.Get(act), ch.Get(filt), full)
			lim := int64(tensor.OutSpan(a.Level.Dims.Get(act), limWin, stride))
			if u > lim && lim > 0 {
				u = lim
			}
		}
		dims := tensor.NewDimSet(act, filt)
		if anchored {
			dims = tensor.NewDimSet(act)
		}
		return axis{perPE: o, union: u, dims: dims}
	}
	switch k {
	case tensor.Weight:
		axs := []axis{direct(tensor.C), direct(tensor.R), direct(tensor.S)}
		if a.Layer.TensorDims(tensor.Weight).Has(tensor.K) {
			axs = append(axs, direct(tensor.K))
		}
		return axs
	case tensor.Input:
		return []axis{direct(tensor.N), direct(tensor.C), direct(tensor.Y), direct(tensor.X)}
	case tensor.Output:
		axs := []axis{
			direct(tensor.N),
			outAxis(tensor.Y, tensor.R, a.Layer.StrideY, a.outShiftY, a.anchoredY),
			outAxis(tensor.X, tensor.S, a.Layer.StrideX, a.outShiftX, a.anchoredX),
		}
		if a.Layer.TensorDims(tensor.Output).Has(tensor.K) {
			axs = append(axs, direct(tensor.K))
		} else {
			axs = append(axs, direct(tensor.C))
		}
		return axs
	}
	return nil
}

// TileOf returns the per-sub-cluster tile size (elements) of tensor k for
// the given chunk sizes.
func (a *Analysis) TileOf(k tensor.Kind, ch tensor.Sizes) int64 {
	t := int64(1)
	for _, ax := range a.axes(k, ch, 1) {
		t *= ax.perPE
	}
	return t
}

// UnionTile returns the unique elements of tensor k across `active`
// sub-clusters: spatially partitioned axes contribute their union extent
// (with halo overlap collapsed), multicast tensors contribute one tile.
func (a *Analysis) UnionTile(k tensor.Kind, ch tensor.Sizes, active int) int64 {
	if active < 1 {
		return 0
	}
	t := int64(1)
	for _, ax := range a.axes(k, ch, active) {
		t *= ax.union
	}
	return t
}

// NewData returns how many elements of tensor k must be newly staged when
// loop li advances, for the given chunk sizes. With union=true the amount
// is aggregated across `active` sub-clusters (unique elements); otherwise
// it is per sub-cluster. li == -1 denotes the level's very first step
// (everything is new). The temporal-reuse rules are:
//
//   - the loop doesn't change the tile and no inner loop does either -> 0
//     (full stationarity);
//   - the loop shifts the tile and no inner loop disturbs it -> only the
//     non-overlapping slice is new (sliding-window/halo reuse);
//   - otherwise the whole tile is refetched (the double-buffered local
//     store only holds the live tile).
func (a *Analysis) NewData(k tensor.Kind, li int, ch tensor.Sizes, union bool, active int) int64 {
	n := 1
	if union {
		n = active
	}
	axs := a.axes(k, ch, n)
	tile := int64(1)
	for _, ax := range axs {
		if union {
			tile *= ax.union
		} else {
			tile *= ax.perPE
		}
	}
	if li < 0 {
		return tile
	}
	lp := a.Loops[li]
	if !a.Affects(k, li) {
		if a.InnerAffecting(k, li) {
			return tile
		}
		return 0
	}
	if a.InnerAffecting(k, li) || lp.IsFold {
		// Fold advances reshuffle every sub-cluster's spatial chunk; no
		// inter-PE forwarding is assumed, so no reuse credit.
		return tile
	}
	d := lp.Map.Dim
	shift := int64(a.shiftOf(k, d, lp.Map.Offset))
	for _, ax := range axs {
		if !ax.dims.Has(d) {
			continue
		}
		extent := ax.perPE
		if union {
			extent = ax.union
		}
		if extent <= 0 {
			return tile
		}
		if shift > extent {
			shift = extent
		}
		return tile / extent * shift
	}
	return tile
}

// shiftOf returns the tile shift along tensor k's axis when dimension d
// advances by off.
func (a *Analysis) shiftOf(k tensor.Kind, d tensor.Dim, off int) int {
	if k != tensor.Output {
		return off
	}
	switch d {
	case tensor.Y, tensor.R:
		return (off + a.Layer.StrideY - 1) / a.Layer.StrideY
	case tensor.X, tensor.S:
		return (off + a.Layer.StrideX - 1) / a.Layer.StrideX
	}
	return off
}

// Psums returns the partial sums (MACs) one sub-cluster computes for one
// full pass over the given chunk sizes.
func (a *Analysis) Psums(ch tensor.Sizes) int64 {
	wy := tensor.EffectiveWindow(ch.Get(tensor.Y), ch.Get(tensor.R), a.Level.Map(tensor.R).DimSize)
	wx := tensor.EffectiveWindow(ch.Get(tensor.X), ch.Get(tensor.S), a.Level.Map(tensor.S).DimSize)
	oy := tensor.OutSpan(ch.Get(tensor.Y), wy, a.Layer.StrideY)
	ox := tensor.OutSpan(ch.Get(tensor.X), wx, a.Layer.StrideX)
	return int64(ch.Get(tensor.N)) * int64(ch.Get(tensor.K)) * int64(ch.Get(tensor.C)) *
		int64(oy) * int64(ox) * int64(ch.Get(tensor.R)) * int64(ch.Get(tensor.S))
}

// ChildDims returns the sub-problem one sub-cluster hands its children
// for the given chunk sizes. For an anchored window with a partial
// filter chunk, the child receives only the activation extent its filter
// taps touch ((outputs-1)*stride + filterChunk), so window arithmetic
// stays self-consistent down the hierarchy.
func (a *Analysis) ChildDims(ch tensor.Sizes) tensor.Sizes {
	shrink := func(act, filt tensor.Dim, stride int) {
		full := a.Level.Map(filt).DimSize
		cf := ch.Get(filt)
		if ca := ch.Get(act); ca >= full && cf < full {
			outs := tensor.OutSpan(ca, full, stride)
			ch = ch.Set(act, (outs-1)*stride+cf)
		}
	}
	shrink(tensor.Y, tensor.R, a.Layer.StrideY)
	shrink(tensor.X, tensor.S, a.Layer.StrideX)
	return ch
}
