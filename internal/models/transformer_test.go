package models

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/tensor"
)

func TestTransformerMACs(t *testing.T) {
	// BERT-base block at seq 128:
	//   qkv: 128*2304*768; scores+context: 12*(128*128*64)*2;
	//   proj: 128*768*768; ff: 2*128*3072*768.
	m := BERTBase(128)
	want := int64(128)*2304*768 +
		2*12*int64(128)*128*64 +
		int64(128)*768*768 +
		2*int64(128)*3072*768
	if m.MACs() != want {
		t.Fatalf("BERT block MACs = %d; want %d", m.MACs(), want)
	}
}

func TestTransformerHeadsDivide(t *testing.T) {
	m := Transformer("t", 512, 8, 2048, 64)
	if len(m.Layers) != 6 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	for _, li := range m.Layers {
		if err := li.Layer.Validate(); err != nil {
			t.Errorf("%s: %v", li.Layer.Name, err)
		}
		if li.Layer.Op != tensor.GEMM {
			t.Errorf("%s: op %v", li.Layer.Name, li.Layer.Op)
		}
	}
}

// TestTransformerAnalyzes runs every GEMM of a block through the engine
// under a GEMM-friendly mapping with exact conservation.
func TestTransformerAnalyzes(t *testing.T) {
	m := BERTBase(64)
	cfg := hw.Accel256()
	df := dataflow.Dataflow{Name: "gemm-kn", Directives: []dataflow.Directive{
		dataflow.TMap(dataflow.Lit(1), dataflow.Lit(1), tensor.N),
		dataflow.SMap(dataflow.Lit(1), dataflow.Lit(1), tensor.K),
		dataflow.TMap(dataflow.Lit(64), dataflow.Lit(64), tensor.C),
	}}
	for _, li := range m.Layers {
		r, err := core.AnalyzeDataflow(df, li.Layer, cfg)
		if err != nil {
			t.Fatalf("%s: %v", li.Layer.Name, err)
		}
		if err := r.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", li.Layer.Name, err)
		}
	}
}
