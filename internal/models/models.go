// Package models is the DNN model zoo of the paper's evaluation
// (Section 5, Table 4): VGG16, AlexNet, ResNet50, ResNeXt50, MobileNetV2,
// UNet, and the DCGAN generator, expressed as layer shapes on the
// seven-dimensional space, plus the operator taxonomy of Table 4.
//
// Activation sizes are given in input coordinates including padding:
// a convolution producing out positions at stride s with an r-wide filter
// reads (out-1)*s + r input positions.
package models

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Class is the operator taxonomy of Table 4.
type Class uint8

// Operator classes.
const (
	EarlyConv   Class = iota // CONV2D early layers: wide activation, shallow channels
	LateConv                 // CONV2D late layers: narrow activation, deep channels
	Pointwise                // 1x1 convolution
	Depthwise                // depth-wise convolution
	FullyConn                // fully connected / GEMM
	Transposed               // transposed (up-scale) convolution
	AggResidual              // grouped convolution inside aggregated residual blocks
	NumClasses
)

var classNames = [NumClasses]string{
	"early", "late", "point-wise", "depth-wise", "fully-connected", "transposed", "aggregated-residual",
}

// String returns the class name used in reports.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// LayerInst is one layer of a model together with how many times the
// shape repeats in the network.
type LayerInst struct {
	Layer tensor.Layer
	Count int
	Class Class
}

// ActEdge is one activation edge of a model's layer DAG: the output of
// layer From (index into Layers) is an input of layer To. A consumer
// with several producers reads their channel-wise concatenation (the
// inception concat); From < To always — layer order is topological.
type ActEdge struct {
	From, To int
}

// Model is a named list of layer instances. Edges, when non-empty, is
// the explicit activation DAG; an empty edge list means the layers form
// a linear chain (each layer consumes its predecessor's output).
type Model struct {
	Name   string
	Layers []LayerInst
	Edges  []ActEdge
}

// ValidateEdges checks the activation DAG: every edge must point
// forward (From < To) within the layer list. Forward-only edges make
// the listed layer order a topological order, so a violation is
// reported as a cycle.
func (m Model) ValidateEdges() error {
	for _, e := range m.Edges {
		if e.From < 0 || e.To >= len(m.Layers) || e.From >= e.To {
			return fmt.Errorf("models: %s: activation edge %d->%d invalid (need 0 <= From < To < %d)",
				m.Name, e.From, e.To, len(m.Layers))
		}
	}
	return nil
}

// MACs returns the model's total algorithmic MAC count.
func (m Model) MACs() int64 {
	var t int64
	for _, li := range m.Layers {
		t += li.Layer.MACs() * int64(li.Count)
	}
	return t
}

// Find returns the first layer whose name matches.
func (m Model) Find(name string) (LayerInst, bool) {
	for _, li := range m.Layers {
		if li.Layer.Name == name {
			return li, true
		}
	}
	return LayerInst{}, false
}

// Classify applies Table 4's taxonomy to a layer; for plain convolutions
// it uses the paper's footnote: "If C > Y, late layer. Else, early layer."
func Classify(l tensor.Layer) Class {
	switch l.Op {
	case tensor.DepthwiseConv, tensor.Pooling:
		return Depthwise
	case tensor.PointwiseConv:
		return Pointwise
	case tensor.FullyConnected, tensor.GEMM:
		return FullyConn
	case tensor.TransposedConv:
		return Transposed
	}
	if l.Sizes.Get(tensor.R) == 1 && l.Sizes.Get(tensor.S) == 1 {
		return Pointwise
	}
	if l.Sizes.Get(tensor.C) > l.Sizes.Get(tensor.Y) {
		return LateConv
	}
	return EarlyConv
}

// conv builds a dense convolution reading (out-1)*stride+r padded input
// positions per axis.
func conv(name string, k, c, out, r, stride int) tensor.Layer {
	in := (out-1)*stride + r
	return tensor.Layer{
		Name: name, Op: tensor.Conv2D,
		Sizes:   tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c, tensor.Y: in, tensor.X: in, tensor.R: r, tensor.S: r},
		StrideY: stride, StrideX: stride,
	}.Normalize()
}

// pwconv builds a 1x1 convolution.
func pwconv(name string, k, c, out, stride int) tensor.Layer {
	l := conv(name, k, c, out, 1, stride)
	l.Op = tensor.PointwiseConv
	return l.Normalize()
}

// dwconv builds a depth-wise convolution over c channels.
func dwconv(name string, c, out, r, stride int) tensor.Layer {
	in := (out-1)*stride + r
	return tensor.Layer{
		Name: name, Op: tensor.DepthwiseConv,
		Sizes:   tensor.Sizes{tensor.N: 1, tensor.C: c, tensor.Y: in, tensor.X: in, tensor.R: r, tensor.S: r},
		StrideY: stride, StrideX: stride,
	}.Normalize()
}

// fc builds a fully connected layer.
func fc(name string, k, c int) tensor.Layer {
	return tensor.Layer{
		Name: name, Op: tensor.FullyConnected,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c},
	}.Normalize()
}

// trconv builds a transposed convolution producing out x out outputs from
// an up-scale of factor `up`, modeled as a stride-1 convolution over the
// zero-stuffed (structurally sparse) up-sampled input: input density
// 1/up².
func trconv(name string, k, c, out, r, up int) tensor.Layer {
	l := tensor.Layer{
		Name: name, Op: tensor.TransposedConv,
		Sizes: tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c, tensor.Y: out + r - 1, tensor.X: out + r - 1, tensor.R: r, tensor.S: r},
	}
	l.Density[tensor.Input] = 1 / float64(up*up)
	return l.Normalize()
}

// groupedConv models a grouped convolution (g groups) as a dense
// convolution over C/g input channels per output channel, which preserves
// the MAC count and per-output coupling of aggregated residual blocks.
func groupedConv(name string, k, c, out, r, stride, g int) tensor.Layer {
	return conv(name, k, c/g, out, r, stride)
}

func inst(l tensor.Layer, count int) LayerInst {
	return LayerInst{Layer: l, Count: count, Class: Classify(l)}
}

// VGG16 returns the 13 convolutional and 3 fully connected layers of
// VGG16 (Simonyan & Zisserman).
func VGG16() Model {
	outs := []struct {
		k, c, out int
	}{
		{64, 3, 224}, {64, 64, 224},
		{128, 64, 112}, {128, 128, 112},
		{256, 128, 56}, {256, 256, 56}, {256, 256, 56},
		{512, 256, 28}, {512, 512, 28}, {512, 512, 28},
		{512, 512, 14}, {512, 512, 14}, {512, 512, 14},
	}
	m := Model{Name: "VGG16"}
	for i, o := range outs {
		m.Layers = append(m.Layers, inst(conv(fmt.Sprintf("CONV%d", i+1), o.k, o.c, o.out, 3, 1), 1))
	}
	m.Layers = append(m.Layers,
		inst(fc("FC1", 4096, 25088), 1),
		inst(fc("FC2", 4096, 4096), 1),
		inst(fc("FC3", 1000, 4096), 1),
	)
	return m
}

// AlexNet returns the five convolutional layers of AlexNet (grouped
// convolutions merged dense, as in the Eyeriss evaluation) plus the
// classifier.
func AlexNet() Model {
	l1 := tensor.Layer{
		Name: "CONV1", Op: tensor.Conv2D,
		Sizes:   tensor.Sizes{tensor.N: 1, tensor.K: 96, tensor.C: 3, tensor.Y: 227, tensor.X: 227, tensor.R: 11, tensor.S: 11},
		StrideY: 4, StrideX: 4,
	}.Normalize()
	return Model{Name: "AlexNet", Layers: []LayerInst{
		inst(l1, 1),
		inst(conv("CONV2", 256, 96, 27, 5, 1), 1),
		inst(conv("CONV3", 384, 256, 13, 3, 1), 1),
		inst(conv("CONV4", 384, 384, 13, 3, 1), 1),
		inst(conv("CONV5", 256, 384, 13, 3, 1), 1),
		inst(fc("FC1", 4096, 9216), 1),
		inst(fc("FC2", 4096, 4096), 1),
		inst(fc("FC3", 1000, 4096), 1),
	}}
}

// ResNet50 returns the bottleneck-block structure of ResNet-50: for each
// stage, the first block reduces from the previous stage's width and the
// remaining blocks repeat.
func ResNet50() Model {
	m := Model{Name: "ResNet50", Layers: []LayerInst{
		inst(conv("CONV1", 64, 3, 112, 7, 2), 1),
	}}
	type stage struct {
		name           string
		inC, mid, outC int
		out, blocks    int
	}
	stages := []stage{
		{"CONV2", 64, 64, 256, 56, 3},
		{"CONV3", 256, 128, 512, 28, 4},
		{"CONV4", 512, 256, 1024, 14, 6},
		{"CONV5", 1024, 512, 2048, 7, 3},
	}
	for _, s := range stages {
		// First block: reduce from inC; remaining blocks: from outC.
		m.Layers = append(m.Layers,
			inst(pwconv(s.name+"_a1x1", s.mid, s.inC, s.out, 1), 1),
			inst(pwconv(s.name+"_b1x1", s.mid, s.outC, s.out, 1), s.blocks-1),
			inst(conv(s.name+"_3x3", s.mid, s.mid, s.out, 3, 1), s.blocks),
			inst(pwconv(s.name+"_c1x1", s.outC, s.mid, s.out, 1), s.blocks),
			inst(pwconv(s.name+"_proj", s.outC, s.inC, s.out, 1), 1), // residual projection
		)
	}
	m.Layers = append(m.Layers, inst(fc("FC1000", 1000, 2048), 1))
	return m
}

// ResNeXt50 returns the 32x4d aggregated-residual variant: the 3x3 layer
// of each block is a 32-group convolution (modeled with C/32 input
// channels per output).
func ResNeXt50() Model {
	m := Model{Name: "ResNeXt50", Layers: []LayerInst{
		inst(conv("CONV1", 64, 3, 112, 7, 2), 1),
	}}
	type stage struct {
		name           string
		inC, mid, outC int
		out, blocks    int
	}
	stages := []stage{
		{"CONV2", 64, 128, 256, 56, 3},
		{"CONV3", 256, 256, 512, 28, 4},
		{"CONV4", 512, 512, 1024, 14, 6},
		{"CONV5", 1024, 1024, 2048, 7, 3},
	}
	for _, s := range stages {
		g := groupedConv(s.name+"_g3x3", s.mid, s.mid, s.out, 3, 1, 32)
		m.Layers = append(m.Layers,
			inst(pwconv(s.name+"_a1x1", s.mid, s.inC, s.out, 1), 1),
			inst(pwconv(s.name+"_b1x1", s.mid, s.outC, s.out, 1), s.blocks-1),
			LayerInst{Layer: g, Count: s.blocks, Class: AggResidual},
			inst(pwconv(s.name+"_c1x1", s.outC, s.mid, s.out, 1), s.blocks),
		)
	}
	m.Layers = append(m.Layers, inst(fc("FC1000", 1000, 2048), 1))
	return m
}

// MobileNetV2 returns the inverted-bottleneck structure: per block an
// expanding 1x1, a 3x3 depth-wise (strided on stage entry), and a
// projecting 1x1.
func MobileNetV2() Model {
	m := Model{Name: "MobileNetV2", Layers: []LayerInst{
		inst(conv("CONV1", 32, 3, 112, 3, 2), 1),
		// Bottleneck 1: t=1 (no expansion).
		inst(dwconv("B1_dw", 32, 112, 3, 1), 1),
		inst(pwconv("B1_pw", 16, 32, 112, 1), 1),
	}}
	type block struct {
		name           string
		inC, outC      int
		t, out, stride int
		repeats        int
	}
	blocks := []block{
		{"B2", 16, 24, 6, 56, 2, 2},
		{"B3", 24, 32, 6, 28, 2, 3},
		{"B4", 32, 64, 6, 14, 2, 4},
		{"B5", 64, 96, 6, 14, 1, 3},
		{"B6", 96, 160, 6, 7, 2, 3},
		{"B7", 160, 320, 6, 7, 1, 1},
	}
	for _, b := range blocks {
		exp := b.inC * b.t
		expR := b.outC * b.t
		inOut := b.out * b.stride // activation size before the strided dw
		m.Layers = append(m.Layers,
			inst(pwconv(b.name+"_exp", exp, b.inC, inOut, 1), 1),
			inst(dwconv(b.name+"_dw", exp, b.out, 3, b.stride), 1),
			inst(pwconv(b.name+"_proj", b.outC, exp, b.out, 1), 1),
		)
		if b.repeats > 1 {
			m.Layers = append(m.Layers,
				inst(pwconv(b.name+"r_exp", expR, b.outC, b.out, 1), b.repeats-1),
				inst(dwconv(b.name+"r_dw", expR, b.out, 3, 1), b.repeats-1),
				inst(pwconv(b.name+"r_proj", b.outC, expR, b.out, 1), b.repeats-1),
			)
		}
	}
	m.Layers = append(m.Layers,
		inst(pwconv("CONV_last", 1280, 320, 7, 1), 1),
		inst(fc("FC", 1000, 1280), 1),
	)
	return m
}

// UNet returns the biomedical segmentation network of Ronneberger et al.
// (572x572 input, unpadded 3x3 convolutions, 2x2 up-convolutions).
func UNet() Model {
	m := Model{Name: "UNet"}
	add := func(l tensor.Layer) { m.Layers = append(m.Layers, inst(l, 1)) }
	unpadded := func(name string, k, c, out int) tensor.Layer {
		l := conv(name, k, c, out, 3, 1)
		return l
	}
	// Contracting path.
	add(unpadded("ENC1a", 64, 3, 570))
	add(unpadded("ENC1b", 64, 64, 568))
	add(unpadded("ENC2a", 128, 64, 282))
	add(unpadded("ENC2b", 128, 128, 280))
	add(unpadded("ENC3a", 256, 128, 138))
	add(unpadded("ENC3b", 256, 256, 136))
	add(unpadded("ENC4a", 512, 256, 66))
	add(unpadded("ENC4b", 512, 512, 64))
	add(unpadded("ENC5a", 1024, 512, 30))
	add(unpadded("ENC5b", 1024, 1024, 28))
	// Expanding path: up-convolution then two convolutions on the
	// concatenated features.
	add(trconv("UP4", 512, 1024, 56, 2, 2))
	add(unpadded("DEC4a", 512, 1024, 54))
	add(unpadded("DEC4b", 512, 512, 52))
	add(trconv("UP3", 256, 512, 104, 2, 2))
	add(unpadded("DEC3a", 256, 512, 102))
	add(unpadded("DEC3b", 256, 256, 100))
	add(trconv("UP2", 128, 256, 200, 2, 2))
	add(unpadded("DEC2a", 128, 256, 198))
	add(unpadded("DEC2b", 128, 128, 196))
	add(trconv("UP1", 64, 128, 392, 2, 2))
	add(unpadded("DEC1a", 64, 128, 390))
	add(unpadded("DEC1b", 64, 64, 388))
	add(pwconv("OUT", 2, 64, 388, 1))
	return m
}

// DCGAN returns the DCGAN generator: a chain of transposed convolutions
// up-scaling a 4x4x1024 seed to a 64x64 image.
func DCGAN() Model {
	return Model{Name: "DCGAN", Layers: []LayerInst{
		inst(fc("PROJECT", 1024*4*4, 100), 1),
		inst(trconv("TRCONV1", 512, 1024, 8, 4, 2), 1),
		inst(trconv("TRCONV2", 256, 512, 16, 4, 2), 1),
		inst(trconv("TRCONV3", 128, 256, 32, 4, 2), 1),
		inst(trconv("TRCONV4", 3, 128, 64, 4, 2), 1),
	}}
}

// LSTM returns the four gate GEMMs of one LSTM cell with the given input
// and hidden widths, batched over seqLen steps.
func LSTM(name string, input, hidden, seqLen int) Model {
	gate := tensor.Layer{
		Name: name + "_gates", Op: tensor.GEMM,
		Sizes: tensor.Sizes{tensor.N: seqLen, tensor.K: 4 * hidden, tensor.C: input + hidden},
	}.Normalize()
	return Model{Name: name, Layers: []LayerInst{inst(gate, 1)}}
}

// EvaluationModels returns the five models of the paper's Figure 10.
func EvaluationModels() []Model {
	return []Model{ResNet50(), VGG16(), ResNeXt50(), MobileNetV2(), UNet()}
}

// registry maps the zoo's canonical names to constructors. BERT-Base
// uses a 128-token sequence, the zoo's standard benchmark length.
var registry = map[string]func() Model{
	"VGG16":       VGG16,
	"AlexNet":     AlexNet,
	"GoogLeNet":   GoogLeNet,
	"ResNet50":    ResNet50,
	"ResNeXt50":   ResNeXt50,
	"MobileNetV2": MobileNetV2,
	"UNet":        UNet,
	"DCGAN":       DCGAN,
	"BERT-Base":   func() Model { return BERTBase(128) },
}

// Zoo lists the built-in model names in sorted order.
func Zoo() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName builds the named zoo model; ok is false for unknown names.
func ByName(name string) (Model, bool) {
	ctor, ok := registry[name]
	if !ok {
		return Model{}, false
	}
	return ctor(), true
}
