package models

import (
	"fmt"

	"repro/internal/tensor"
)

// Transformer returns one encoder block of a Transformer with the given
// model width, head count, feed-forward width, and sequence length,
// expressed as the GEMMs a DNN accelerator executes (the paper's
// Section 4.4 notes MAESTRO covers "all the operations represented as
// the loop nest with two input tensors and one output tensor"):
//
//   - Q/K/V projections: three [seq, d] x [d, d] GEMMs;
//   - attention scores: per head, [seq, d/h] x [d/h, seq];
//   - attention-weighted values: per head, [seq, seq] x [seq, d/h];
//   - output projection: [seq, d] x [d, d];
//   - feed-forward: [seq, d] x [d, ff] and [seq, ff] x [ff, d].
//
// Softmax/normalization are element-wise and carry no MACs.
func Transformer(name string, dModel, heads, ff, seqLen int) Model {
	gemm := func(n string, m, k, c int) LayerInst {
		l := tensor.Layer{
			Name: n, Op: tensor.GEMM,
			Sizes: tensor.Sizes{tensor.N: m, tensor.K: k, tensor.C: c},
		}.Normalize()
		return LayerInst{Layer: l, Count: 1, Class: FullyConn}
	}
	dHead := dModel / heads
	m := Model{Name: name}
	m.Layers = append(m.Layers,
		gemm(name+"_qkv", seqLen, 3*dModel, dModel),
	)
	// Attention GEMMs repeat per head.
	scores := gemm(name+"_scores", seqLen, seqLen, dHead)
	scores.Count = heads
	ctx := gemm(name+"_context", seqLen, dHead, seqLen)
	ctx.Count = heads
	m.Layers = append(m.Layers, scores, ctx,
		gemm(name+"_proj", seqLen, dModel, dModel),
		gemm(name+"_ff1", seqLen, ff, dModel),
		gemm(name+"_ff2", seqLen, dModel, ff),
	)
	return m
}

// BERTBase returns the GEMM workload of one BERT-base encoder block
// (d=768, 12 heads, ff=3072) at the given sequence length.
func BERTBase(seqLen int) Model {
	return Transformer(fmt.Sprintf("BERT-base-s%d", seqLen), 768, 12, 3072, seqLen)
}
