package models

// GoogLeNet returns the Inception-v1 network (Szegedy et al.): the stem
// convolutions plus nine inception modules, each expanded into its 1x1,
// 3x3-reduce/3x3, 5x5-reduce/5x5 and pool-projection branches.
//
// The model carries its real activation DAG in Edges: inside a module
// the four branch heads all read the previous module's output (the
// channel concat of the four branch tails), and the reduce convolutions
// feed their 3x3/5x5 partners. The graph-level scheduler uses this to
// keep a module's input resident in L2 across the branches instead of
// re-fetching it from DRAM per branch.
func GoogLeNet() Model {
	m := Model{Name: "GoogLeNet", Layers: []LayerInst{
		inst(conv("CONV1", 64, 3, 112, 7, 2), 1),
		inst(pwconv("CONV2r", 64, 64, 56, 1), 1),
		inst(conv("CONV2", 192, 64, 56, 3, 1), 1),
	}}
	m.Edges = []ActEdge{{From: 0, To: 1}, {From: 1, To: 2}}
	// prev holds the layer indices whose concatenated outputs form the
	// current module input.
	prev := []int{2}
	type incep struct {
		name                     string
		in, out                  int
		c1, c3r, c3, c5r, c5, pp int
	}
	blocks := []incep{
		{"3a", 192, 28, 64, 96, 128, 16, 32, 32},
		{"3b", 256, 28, 128, 128, 192, 32, 96, 64},
		{"4a", 480, 14, 192, 96, 208, 16, 48, 64},
		{"4b", 512, 14, 160, 112, 224, 24, 64, 64},
		{"4c", 512, 14, 128, 128, 256, 24, 64, 64},
		{"4d", 512, 14, 112, 144, 288, 32, 64, 64},
		{"4e", 528, 14, 256, 160, 320, 32, 128, 128},
		{"5a", 832, 7, 256, 160, 320, 32, 128, 128},
		{"5b", 832, 7, 384, 192, 384, 48, 128, 128},
	}
	for _, b := range blocks {
		p := "INC" + b.name
		base := len(m.Layers)
		m.Layers = append(m.Layers,
			inst(pwconv(p+"_1x1", b.c1, b.in, b.out, 1), 1),
			inst(pwconv(p+"_3x3r", b.c3r, b.in, b.out, 1), 1),
			inst(conv(p+"_3x3", b.c3, b.c3r, b.out, 3, 1), 1),
			inst(pwconv(p+"_5x5r", b.c5r, b.in, b.out, 1), 1),
			inst(conv(p+"_5x5", b.c5, b.c5r, b.out, 5, 1), 1),
			inst(pwconv(p+"_pool", b.pp, b.in, b.out, 1), 1),
		)
		// The four branch heads read the module input.
		for _, head := range []int{base, base + 1, base + 3, base + 5} {
			for _, src := range prev {
				m.Edges = append(m.Edges, ActEdge{From: src, To: head})
			}
		}
		// Reduce convolutions feed their spatial partners.
		m.Edges = append(m.Edges,
			ActEdge{From: base + 1, To: base + 2},
			ActEdge{From: base + 3, To: base + 4},
		)
		// The module output is the concat of the four branch tails.
		prev = []int{base, base + 2, base + 4, base + 5}
	}
	fcIdx := len(m.Layers)
	m.Layers = append(m.Layers, inst(fc("FC1000", 1000, 1024), 1))
	for _, src := range prev {
		m.Edges = append(m.Edges, ActEdge{From: src, To: fcIdx})
	}
	return m
}
