package models

// GoogLeNet returns the Inception-v1 network (Szegedy et al.): the stem
// convolutions plus nine inception modules, each expanded into its 1x1,
// 3x3-reduce/3x3, 5x5-reduce/5x5 and pool-projection branches.
func GoogLeNet() Model {
	m := Model{Name: "GoogLeNet", Layers: []LayerInst{
		inst(conv("CONV1", 64, 3, 112, 7, 2), 1),
		inst(pwconv("CONV2r", 64, 64, 56, 1), 1),
		inst(conv("CONV2", 192, 64, 56, 3, 1), 1),
	}}
	type incep struct {
		name                     string
		in, out                  int
		c1, c3r, c3, c5r, c5, pp int
	}
	blocks := []incep{
		{"3a", 192, 28, 64, 96, 128, 16, 32, 32},
		{"3b", 256, 28, 128, 128, 192, 32, 96, 64},
		{"4a", 480, 14, 192, 96, 208, 16, 48, 64},
		{"4b", 512, 14, 160, 112, 224, 24, 64, 64},
		{"4c", 512, 14, 128, 128, 256, 24, 64, 64},
		{"4d", 512, 14, 112, 144, 288, 32, 64, 64},
		{"4e", 528, 14, 256, 160, 320, 32, 128, 128},
		{"5a", 832, 7, 256, 160, 320, 32, 128, 128},
		{"5b", 832, 7, 384, 192, 384, 48, 128, 128},
	}
	for _, b := range blocks {
		p := "INC" + b.name
		m.Layers = append(m.Layers,
			inst(pwconv(p+"_1x1", b.c1, b.in, b.out, 1), 1),
			inst(pwconv(p+"_3x3r", b.c3r, b.in, b.out, 1), 1),
			inst(conv(p+"_3x3", b.c3, b.c3r, b.out, 3, 1), 1),
			inst(pwconv(p+"_5x5r", b.c5r, b.in, b.out, 1), 1),
			inst(conv(p+"_5x5", b.c5, b.c5r, b.out, 5, 1), 1),
			inst(pwconv(p+"_pool", b.pp, b.in, b.out, 1), 1),
		)
	}
	m.Layers = append(m.Layers, inst(fc("FC1000", 1000, 1024), 1))
	return m
}
