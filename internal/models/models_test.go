package models

import (
	"testing"

	"repro/internal/tensor"
)

// TestModelMACTotals pins the zoo's compute against the published
// figures (multiply-accumulates, so half the usual FLOP numbers).
func TestModelMACTotals(t *testing.T) {
	cases := []struct {
		model   Model
		loGMacs float64
		hiGMacs float64
	}{
		{VGG16(), 15.0, 16.0},       // ~15.5 GMACs
		{AlexNet(), 0.6, 1.2},       // ~0.7 GMACs (dense variant)
		{ResNet50(), 3.4, 4.6},      // ~4 GMACs
		{ResNeXt50(), 3.4, 5.0},     // ~4.2 GMACs
		{MobileNetV2(), 0.25, 0.45}, // ~0.3 GMACs
		{UNet(), 100.0, 220.0},      // ~167 GMACs at 572x572 (unpadded)
	}
	for _, c := range cases {
		g := float64(c.model.MACs()) / 1e9
		if g < c.loGMacs || g > c.hiGMacs {
			t.Errorf("%s: %.2f GMACs outside [%v, %v]", c.model.Name, g, c.loGMacs, c.hiGMacs)
		}
	}
}

// TestLayerShapesValid validates every zoo layer.
func TestLayerShapesValid(t *testing.T) {
	zoo := append(EvaluationModels(), AlexNet(), DCGAN(), LSTM("lstm", 512, 512, 16))
	for _, m := range zoo {
		for _, li := range m.Layers {
			if err := li.Layer.Validate(); err != nil {
				t.Errorf("%s/%s: %v", m.Name, li.Layer.Name, err)
			}
			if li.Count < 1 {
				t.Errorf("%s/%s: count %d", m.Name, li.Layer.Name, li.Count)
			}
		}
	}
}

// TestKnownOutputSizes spot-checks activation arithmetic against the
// published architectures.
func TestKnownOutputSizes(t *testing.T) {
	alex := AlexNet()
	c1, _ := alex.Find("CONV1")
	if c1.Layer.OutY() != 55 {
		t.Errorf("AlexNet CONV1 out = %d; want 55", c1.Layer.OutY())
	}
	vgg := VGG16()
	c13, _ := vgg.Find("CONV13")
	if c13.Layer.OutY() != 14 {
		t.Errorf("VGG16 CONV13 out = %d; want 14", c13.Layer.OutY())
	}
	r50 := ResNet50()
	s1, _ := r50.Find("CONV1")
	if s1.Layer.OutY() != 112 || s1.Layer.StrideY != 2 {
		t.Errorf("ResNet50 CONV1 out = %d stride %d; want 112, 2", s1.Layer.OutY(), s1.Layer.StrideY)
	}
}

// TestClassification verifies the Table 4 taxonomy rules.
func TestClassification(t *testing.T) {
	vgg := VGG16()
	c1, _ := vgg.Find("CONV1")
	if Classify(c1.Layer) != EarlyConv {
		t.Errorf("VGG16 CONV1 classified %v", Classify(c1.Layer))
	}
	c13, _ := vgg.Find("CONV13")
	if Classify(c13.Layer) != LateConv {
		t.Errorf("VGG16 CONV13 classified %v; C=%d Y=%d", Classify(c13.Layer),
			c13.Layer.Sizes.Get(tensor.C), c13.Layer.Sizes.Get(tensor.Y))
	}
	mb := MobileNetV2()
	dw, _ := mb.Find("B2_dw")
	if Classify(dw.Layer) != Depthwise {
		t.Errorf("MobileNet DW classified %v", Classify(dw.Layer))
	}
	pw, _ := mb.Find("B2_exp")
	if Classify(pw.Layer) != Pointwise {
		t.Errorf("MobileNet PW classified %v", Classify(pw.Layer))
	}
	fcL, _ := vgg.Find("FC1")
	if Classify(fcL.Layer) != FullyConn {
		t.Errorf("FC classified %v", Classify(fcL.Layer))
	}
	dc := DCGAN()
	tr, _ := dc.Find("TRCONV1")
	if Classify(tr.Layer) != Transposed {
		t.Errorf("transposed conv classified %v", Classify(tr.Layer))
	}
}

// TestTransposedConvDensity checks the up-sampling substitution: a 2x
// up-scale zero-stuffs 3 of 4 input positions.
func TestTransposedConvDensity(t *testing.T) {
	dc := DCGAN()
	tr, _ := dc.Find("TRCONV2")
	if d := tr.Layer.Density[tensor.Input]; d != 0.25 {
		t.Errorf("input density = %v; want 0.25", d)
	}
	if tr.Layer.EffectiveMACs() >= tr.Layer.MACs() {
		t.Error("structured sparsity must reduce effective MACs")
	}
}

// TestGroupedConvMACs: the grouped 3x3 of ResNeXt must cost 1/32 of the
// dense equivalent.
func TestGroupedConvMACs(t *testing.T) {
	rx := ResNeXt50()
	g, _ := rx.Find("CONV2_g3x3")
	dense := g.Layer
	dense.Sizes = dense.Sizes.Set(tensor.C, dense.Sizes.Get(tensor.C)*32)
	if got, want := g.Layer.MACs()*32, dense.MACs(); got != want {
		t.Errorf("grouped MACs*32 = %d; dense = %d", got, want)
	}
}

// TestLSTMGates: one LSTM cell step is 4 gate GEMMs over input+hidden.
func TestLSTMGates(t *testing.T) {
	m := LSTM("cell", 256, 512, 8)
	if len(m.Layers) != 1 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	l := m.Layers[0].Layer
	want := int64(8) * 4 * 512 * (256 + 512)
	if l.MACs() != want {
		t.Errorf("LSTM MACs = %d; want %d", l.MACs(), want)
	}
}

func TestFindMissing(t *testing.T) {
	if _, ok := VGG16().Find("NOPE"); ok {
		t.Error("found a nonexistent layer")
	}
}

// TestGoogLeNet pins Inception-v1 against its published compute
// (~1.5 GMACs) and structure (9 modules x 6 branch layers + stem + FC).
func TestGoogLeNet(t *testing.T) {
	m := GoogLeNet()
	g := float64(m.MACs()) / 1e9
	if g < 1.0 || g > 2.2 {
		t.Errorf("GoogLeNet %.2f GMACs outside [1.0, 2.2]", g)
	}
	if len(m.Layers) != 3+9*6+1 {
		t.Errorf("layers = %d; want %d", len(m.Layers), 3+9*6+1)
	}
	inc, ok := m.Find("INC3a_3x3")
	if !ok || inc.Layer.Sizes.Get(tensor.K) != 128 {
		t.Errorf("INC3a_3x3 = %+v", inc.Layer)
	}
}
