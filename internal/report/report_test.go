package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/dse"
	"repro/internal/hw"
	"repro/internal/models"
)

func sampleResults(t *testing.T) []*core.Result {
	t.Helper()
	cfg := hw.Accel256()
	vgg := models.VGG16()
	var out []*core.Result
	for _, name := range []string{"CONV1", "CONV11"} {
		li, _ := vgg.Find(name)
		r, err := core.AnalyzeDataflow(dataflows.Get("KC-P"), li.Layer, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

func TestCSVRoundTrip(t *testing.T) {
	var rows []Row
	for _, r := range sampleResults(t) {
		rows = append(rows, RowOf(r))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(rows)+1 {
		t.Fatalf("records = %d; want %d", len(recs), len(rows)+1)
	}
	if len(recs[0]) != len(recs[1]) {
		t.Fatalf("header width %d != row width %d", len(recs[0]), len(recs[1]))
	}
	if recs[1][0] != "CONV1" || recs[2][0] != "CONV11" {
		t.Errorf("layer column: %v / %v", recs[1][0], recs[2][0])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rows := []Row{RowOf(sampleResults(t)[0])}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var back []Row
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != rows[0] {
		t.Errorf("json round trip lost data: %+v vs %+v", back, rows)
	}
}

func TestRoofline(t *testing.T) {
	r := sampleResults(t)[1]
	rf := RooflineOf(r)
	if rf.PeakMACsPerCycle != 256 {
		t.Errorf("peak = %v", rf.PeakMACsPerCycle)
	}
	if rf.Intensity <= 0 {
		t.Fatalf("intensity = %v", rf.Intensity)
	}
	// Achieved throughput can never exceed the binding roof.
	if rf.Achieved > rf.Roof()+1e-9 {
		t.Errorf("achieved %v exceeds roof %v", rf.Achieved, rf.Roof())
	}
	// Consistency of the bound selection.
	if rf.ComputeBound && rf.Roof() != rf.PeakMACsPerCycle {
		t.Error("compute-bound roof mismatch")
	}
}

func TestSummaryFormat(t *testing.T) {
	row := RowOf(sampleResults(t)[0])
	s := Summary(row)
	for _, want := range []string{"CONV1", "KC-P", "bound"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestWriteDSECSV(t *testing.T) {
	pts := []dse.Point{
		{NumPEs: 64, BW: 8, P1: 16, P2: 4, L1Bytes: 128, L2Bytes: 4096,
			AreaMM2: 0.5, PowerMW: 40, Runtime: 1000, Throughput: 32, EnergyPJ: 1e6, EDP: 1e9},
		{NumPEs: 128, BW: 16, P1: 32, P2: 8, L1Bytes: 256, L2Bytes: 8192,
			AreaMM2: 1.0, PowerMW: 80, Runtime: 500, Throughput: 64, EnergyPJ: 2e6, EDP: 1e9},
	}
	var buf bytes.Buffer
	if err := WriteDSECSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[1][0] != "64" || recs[2][0] != "128" {
		t.Fatalf("records: %v", recs)
	}
}
