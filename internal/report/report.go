// Package report renders analysis results machine-readably (CSV, JSON)
// and provides roofline-style derived metrics, so MAESTRO's outputs can
// feed plotting scripts and downstream tooling the way the paper's DSE
// plots (Figure 13) were produced.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/tensor"
)

// Row is the flat record exported per analyzed layer.
type Row struct {
	Layer      string  `json:"layer"`
	Dataflow   string  `json:"dataflow"`
	PEs        int     `json:"pes"`
	UsedPEs    int     `json:"used_pes"`
	Runtime    int64   `json:"runtime_cycles"`
	MACs       int64   `json:"macs"`
	Throughput float64 `json:"throughput_mac_per_cycle"`
	Util       float64 `json:"utilization"`

	L2Reads  int64 `json:"l2_reads"`
	L2Writes int64 `json:"l2_writes"`
	L1Reads  int64 `json:"l1_reads"`
	L1Writes int64 `json:"l1_writes"`
	DRAM     int64 `json:"dram_elems"`

	L1ReqBytes int64 `json:"l1_req_bytes"`
	L2ReqBytes int64 `json:"l2_req_bytes"`

	PeakBWGBps   float64 `json:"peak_bw_gbps"`
	EnergyPJ     float64 `json:"energy_pj_onchip"`
	Bottleneck   string  `json:"bottleneck"`
	InputReuse   float64 `json:"input_reuse"`
	WeightReuse  float64 `json:"weight_reuse"`
	OutputReuse  float64 `json:"output_reuse"`
	ArithIntensy float64 `json:"arithmetic_intensity"`
}

// RowOf flattens one result.
func RowOf(r *core.Result) Row {
	var l2r, l2w int64
	for _, k := range tensor.AllKinds() {
		l2r += r.L2Read(k)
		l2w += r.L2Write(k)
	}
	return Row{
		Layer:        r.Layer.Name,
		Dataflow:     r.DataflowName,
		PEs:          r.Cfg.NumPEs,
		UsedPEs:      r.UsedPEs,
		Runtime:      r.Runtime,
		MACs:         r.MACs,
		Throughput:   r.Throughput(),
		Util:         r.Utilization(),
		L2Reads:      l2r,
		L2Writes:     l2w,
		L1Reads:      sumKinds(r.L1Read),
		L1Writes:     sumKinds(r.L1Write),
		DRAM:         r.DRAMReads + r.DRAMWrites,
		L1ReqBytes:   r.L1ReqBytes(),
		L2ReqBytes:   r.L2ReqBytes(),
		PeakBWGBps:   r.PeakBWGBps(),
		EnergyPJ:     r.EnergyDefault().OnChip(),
		Bottleneck:   r.Bottleneck,
		InputReuse:   r.ReuseFactor(tensor.Input),
		WeightReuse:  r.ReuseFactor(tensor.Weight),
		OutputReuse:  r.ReuseFactor(tensor.Output),
		ArithIntensy: ArithmeticIntensity(r),
	}
}

func sumKinds(f func(tensor.Kind) int64) int64 {
	var s int64
	for _, k := range tensor.AllKinds() {
		s += f(k)
	}
	return s
}

// ArithmeticIntensity returns MACs per off-chip element moved — the
// x-axis of a roofline plot.
func ArithmeticIntensity(r *core.Result) float64 {
	d := r.DRAMReads + r.DRAMWrites
	if d == 0 {
		return 0
	}
	return float64(r.MACs) / float64(d)
}

// Roofline summarizes where a mapping sits against the machine's two
// roofs: the compute peak and the off-chip bandwidth slope.
type Roofline struct {
	// PeakMACsPerCycle is the compute roof.
	PeakMACsPerCycle float64
	// Intensity is MACs per DRAM element.
	Intensity float64
	// BandwidthBound is intensity * offchip bandwidth: the throughput
	// ceiling imposed by DRAM at this intensity.
	BandwidthBound float64
	// Achieved is the mapping's measured MACs/cycle.
	Achieved float64
	// ComputeBound reports whether the roof at this intensity is the
	// compute peak (true) or the bandwidth slope (false).
	ComputeBound bool
}

// RooflineOf computes the roofline placement of a result.
func RooflineOf(r *core.Result) Roofline {
	rf := Roofline{
		PeakMACsPerCycle: r.Cfg.PeakMACsPerCycle(),
		Intensity:        ArithmeticIntensity(r),
		Achieved:         r.Throughput(),
	}
	rf.BandwidthBound = rf.Intensity * r.Cfg.OffchipBandwidth
	rf.ComputeBound = rf.BandwidthBound >= rf.PeakMACsPerCycle
	return rf
}

// Roof returns the binding ceiling in MACs/cycle.
func (rf Roofline) Roof() float64 {
	if rf.ComputeBound {
		return rf.PeakMACsPerCycle
	}
	return rf.BandwidthBound
}

// csvHeader lists the exported columns in order.
var csvHeader = []string{
	"layer", "dataflow", "pes", "used_pes", "runtime_cycles", "macs",
	"throughput_mac_per_cycle", "utilization",
	"l2_reads", "l2_writes", "l1_reads", "l1_writes", "dram_elems",
	"l1_req_bytes", "l2_req_bytes", "peak_bw_gbps", "energy_pj_onchip",
	"bottleneck", "input_reuse", "weight_reuse", "output_reuse",
	"arithmetic_intensity",
}

// WriteCSV exports rows as CSV with a header.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Layer, r.Dataflow,
			strconv.Itoa(r.PEs), strconv.Itoa(r.UsedPEs),
			strconv.FormatInt(r.Runtime, 10), strconv.FormatInt(r.MACs, 10),
			f(r.Throughput), f(r.Util),
			strconv.FormatInt(r.L2Reads, 10), strconv.FormatInt(r.L2Writes, 10),
			strconv.FormatInt(r.L1Reads, 10), strconv.FormatInt(r.L1Writes, 10),
			strconv.FormatInt(r.DRAM, 10),
			strconv.FormatInt(r.L1ReqBytes, 10), strconv.FormatInt(r.L2ReqBytes, 10),
			f(r.PeakBWGBps), f(r.EnergyPJ),
			r.Bottleneck, f(r.InputReuse), f(r.WeightReuse), f(r.OutputReuse),
			f(r.ArithIntensy),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteJSON exports rows as a JSON array.
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WriteDSECSV exports a DSE design space for plotting (Figure 13).
func WriteDSECSV(w io.Writer, pts []dse.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pes", "bw", "p1", "p2", "l1_bytes", "l2_bytes",
		"area_mm2", "power_mw", "runtime_cycles", "throughput", "energy_pj", "edp"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			strconv.Itoa(p.NumPEs), f(p.BW),
			strconv.Itoa(p.P1), strconv.Itoa(p.P2),
			strconv.FormatInt(p.L1Bytes, 10), strconv.FormatInt(p.L2Bytes, 10),
			f(p.AreaMM2), f(p.PowerMW),
			strconv.FormatInt(p.Runtime, 10),
			f(p.Throughput), f(p.EnergyPJ), f(p.EDP),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary renders a one-line human summary of a row.
func Summary(r Row) string {
	return fmt.Sprintf("%s/%s: %d cyc, %.1f MAC/cyc (%.0f%% util), %.3g pJ, %s-bound",
		r.Layer, r.Dataflow, r.Runtime, r.Throughput, 100*r.Util, r.EnergyPJ, r.Bottleneck)
}
