// Package sim is a step-accurate reference simulator for dataflow
// mappings: the stand-in for the RTL simulations (MAERI) and measured
// hardware (Eyeriss) the paper validates MAESTRO against in Figure 9.
//
// Unlike the analytical engine, the simulator enumerates every time step
// of every cluster level explicitly. Per step it derives each PE's tensor
// tiles as coordinate boxes from the actual chunk geometry, computes new
// data as exact box differences against the PE's previously held box
// (the live double-buffered tile), serializes the transfers through the
// NoC pipe, and advances a three-stage (ingress/compute/egress)
// double-buffered pipeline by explicit recurrence. It shares the dataflow
// *semantics* (chunk resolution) with the analytical path — both must
// agree on what a mapping means — but none of the analytical engine's
// reuse classification, case enumeration, or delay formulas.
package sim

import (
	"fmt"
	"io"
	"math"

	"repro/internal/dataflow"
	"repro/internal/hw"
	"repro/internal/reuse"
	"repro/internal/tensor"
)

// Result reports what the simulator measured.
type Result struct {
	Cycles int64
	MACs   int64
	// L2Reads/L2Writes count elements moved at the top level.
	L2Reads  int64
	L2Writes int64
}

// box is an axis-aligned tile in up to four tensor coordinates,
// half-open per axis. Unused axes are [0,1).
type box struct {
	lo, hi [4]int64
}

func unitBox() box {
	var b box
	for i := range b.hi {
		b.hi[i] = 1
	}
	return b
}

func (b box) vol() int64 {
	v := int64(1)
	for i := range b.lo {
		s := b.hi[i] - b.lo[i]
		if s <= 0 {
			return 0
		}
		v *= s
	}
	return v
}

// overlap returns the volume of the intersection of two boxes.
func overlap(a, b box) int64 {
	v := int64(1)
	for i := range a.lo {
		lo, hi := max64(a.lo[i], b.lo[i]), min64(a.hi[i], b.hi[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// hull returns the bounding box of two boxes (exact for the union of
// tiles shifted along a single spatial axis, which is how the spatial
// maps distribute data).
func hull(a, b box) box {
	if a.vol() == 0 {
		return b
	}
	if b.vol() == 0 {
		return a
	}
	var h box
	for i := range a.lo {
		h.lo[i], h.hi[i] = min64(a.lo[i], b.lo[i]), max64(a.hi[i], b.hi[i])
	}
	return h
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

type simulator struct {
	spec  *dataflow.Spec
	cfg   hw.Config
	layer tensor.Layer
	nlv   int
	cache map[cacheKey]int64 // sub-problem cycles
	trace io.Writer          // optional per-step CSV trace (top level only)
	step  int64
}

type cacheKey struct {
	level int
	dims  tensor.Sizes
}

// Simulate runs the mapping step by step and returns the measured cycle
// count and traffic.
func Simulate(spec *dataflow.Spec, cfg hw.Config) (*Result, error) {
	return SimulateTrace(spec, cfg, nil)
}

// SimulateTrace runs the simulation and, when trace is non-nil, emits one
// CSV row per top-level time step: the step index, active sub-clusters,
// ingress/egress traffic, the three stage delays, and the pipeline
// completion times. The trace is the ground-level view of the
// double-buffered pipeline the analytical model summarizes.
func SimulateTrace(spec *dataflow.Spec, cfg hw.Config, trace io.Writer) (*Result, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &simulator{
		spec:  spec,
		cfg:   cfg,
		layer: spec.Layer,
		nlv:   spec.NumLevels(),
		cache: make(map[cacheKey]int64),
		trace: trace,
	}
	if trace != nil {
		fmt.Fprintln(trace, "step,active,traffic_in,traffic_out,t_in,t_comp,t_out,in_done,comp_done,out_done")
	}
	res := &Result{}
	cycles, err := s.level(0, spec.Layer.Sizes, res)
	if err != nil {
		return nil, err
	}
	res.Cycles = cycles
	return res, nil
}

// chunkOf captures one dimension's current chunk.
type chunkOf struct {
	start, size int
}

// level simulates one full pass of cluster level `level` over the given
// sub-problem. Only level 0 accumulates traffic and MACs into res (the
// L2-side quantities Figure 9's runtime depends on); deeper levels
// contribute their cycles as the parent's compute delay.
func (s *simulator) level(level int, dims tensor.Sizes, res *Result) (int64, error) {
	if level == s.nlv {
		psums := psumsOf(s.layer, dims)
		d := s.layer.Density[tensor.Input] * wdens(s.layer)
		eff := int64(float64(psums)*d + 0.5)
		cycles := (eff + int64(s.cfg.VectorWidth) - 1) / int64(s.cfg.VectorWidth)
		if s.cfg.SparseImbalance && d < 1 && psums > 0 && s.cfg.NumPEs > 1 {
			mean := float64(psums) * d
			factor := 1 + 1.4142135623730951*
				sqrt(mean*(1-d)*ln(float64(s.cfg.NumPEs)))/mean
			cycles = int64(float64(cycles)*factor + 0.5)
		}
		return cycles, nil
	}
	lv, err := s.spec.Level(level, dims)
	if err != nil {
		return 0, err
	}
	a := reuse.New(lv, s.layer)
	loops := a.Loops
	nocm := s.cfg.NoCAt(level)
	topLevel := level == 0

	rFull := lv.Map(tensor.R).DimSize
	sFull := lv.Map(tensor.S).DimSize

	// Per-PE held boxes (the live tile) and the union across PEs.
	nsub := lv.SubClusters
	held := make([][tensor.NumKinds]box, nsub)
	var heldUnion [tensor.NumKinds]box
	// Pipeline state.
	var inDone, compDone, compDonePrev, outDone int64

	idx := make([]int, len(loops))
	var temporal, perPE [tensor.NumDims]chunkOf
	firstStep := true
	for {
		// Decode the step: temporal chunk per dimension and the fold.
		fold := 0
		for _, m := range lv.Maps {
			if m.Kind == dataflow.Temporal {
				temporal[m.Dim] = chunkOf{0, m.Size}
			}
		}
		for li, lp := range loops {
			if lp.IsFold {
				fold = idx[li]
				continue
			}
			st, sz := lp.Map.ChunkAt(idx[li])
			temporal[lp.Map.Dim] = chunkOf{st, sz}
		}
		active := nsub
		if len(lv.Spatial) == 0 {
			active = 1
		} else if remaining := lv.SpatialChunks - fold*nsub; remaining < active {
			active = remaining
		}

		// Per-PE tiles, compute delay, and per-PE new data.
		var sumPerPE [tensor.NumKinds]int64
		var newUnion [tensor.NumKinds]box
		var maxComp int64
		for p := 0; p < active; p++ {
			perPE = temporal
			for _, si := range lv.Spatial {
				m := lv.Maps[si]
				st, sz := m.ChunkAt(fold*nsub + p)
				perPE[m.Dim] = chunkOf{st, sz}
			}
			for _, k := range tensor.AllKinds() {
				nb := s.boxOf(k, &perPE, rFull, sFull)
				newUnion[k] = hull(newUnion[k], nb)
				sumPerPE[k] += nb.vol() - overlap(nb, held[p][k])
				held[p][k] = nb
			}
			var sub tensor.Sizes
			for d := tensor.Dim(0); d < tensor.NumDims; d++ {
				sub = sub.Set(d, perPE[d].size)
			}
			sub = a.ChildDims(sub)
			ck := cacheKey{level + 1, sub}
			cycles, ok := s.cache[ck]
			if !ok {
				cycles, err = s.level(level+1, sub, res)
				if err != nil {
					return 0, err
				}
				s.cache[ck] = cycles
			}
			if topLevel {
				res.MACs += childPsums(s.layer, sub)
			}
			if cycles > maxComp {
				maxComp = cycles
			}
		}
		tComp := maxComp
		if firstStep && a.OutputReduced() && nocm.Reduction {
			// Pipelined reduction tree: fill latency on the first step only.
			tComp += log2ceil(active)
		}

		// Ingress traffic: union-based with multicast hardware, replicated
		// per destination without. The displaced output slice drains as
		// egress; partial-sum re-reads are not re-charged here (box state
		// alone cannot distinguish first visits — the analytical engine
		// tracks that exactly and the two agree within Figure 9 tolerance).
		var trafficIn, egress int64
		var perKind [tensor.NumKinds]int64
		for _, k := range tensor.AllKinds() {
			if k == tensor.Output {
				egress = heldUnion[k].vol() - overlap(newUnion[k], heldUnion[k])
				if !nocm.Reduction && len(lv.Spatial) > 0 && a.OutputReduced() {
					egress *= int64(active)
				}
				heldUnion[k] = newUnion[k]
				continue
			}
			var nd int64
			if nocm.Multicast {
				nd = newUnion[k].vol() - overlap(newUnion[k], heldUnion[k])
			} else {
				nd = sumPerPE[k]
			}
			perKind[k] = int64(float64(nd)*s.layer.Density[k] + 0.5)
			trafficIn += perKind[k]
			heldUnion[k] = newUnion[k]
		}
		egress = int64(float64(egress)*s.layer.Density[tensor.Output] + 0.5)
		tIn := nocm.DelayPer(perKind[tensor.Input], perKind[tensor.Weight], perKind[tensor.Output])
		tOut := nocm.Delay(egress)
		if !nocm.Reduction && a.OutputReduced() && active > 1 {
			// Parent-side serialized accumulation of unreduced partials.
			tOut += 2 * egress / int64(active) * int64(active-1)
		}
		if topLevel {
			res.L2Reads += trafficIn
			res.L2Writes += egress
		}

		// Double-buffered pipeline recurrence: ingress i waits for ingress
		// i-1 and the buffer freed by compute i-2; compute waits for its
		// data and the previous compute; egress drains behind compute.
		inStart := max64(inDone, compDonePrev)
		inDone = inStart + tIn
		compStart := max64(inDone, compDone)
		compDonePrev = compDone
		compDone = compStart + tComp
		outStart := max64(compDone, outDone)
		outDone = outStart + tOut
		if topLevel && s.trace != nil {
			fmt.Fprintf(s.trace, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				s.step, active, trafficIn, egress, tIn, tComp, tOut, inDone, compDone, outDone)
			s.step++
		}

		firstStep = false
		if !advance(idx, loops) {
			break
		}
	}
	// Flush the final output tiles.
	flush := int64(float64(heldUnion[tensor.Output].vol())*s.layer.Density[tensor.Output] + 0.5)
	if topLevel {
		res.L2Writes += flush
	}
	outDone = max64(compDone, outDone) + nocm.Delay(flush)
	return outDone, nil
}

// advance increments the loop odometer (innermost fastest); false at end.
func advance(idx []int, loops []reuse.Loop) bool {
	for i := len(idx) - 1; i >= 0; i-- {
		if idx[i]+1 < loops[i].Steps {
			idx[i]++
			for j := i + 1; j < len(idx); j++ {
				idx[j] = 0
			}
			return true
		}
	}
	return false
}

// boxOf derives tensor k's coordinate box from per-dimension chunks.
// rFull/sFull are the level's full filter extents, which anchor the
// output window when the activation chunk can host a complete window.
func (s *simulator) boxOf(k tensor.Kind, ch *[tensor.NumDims]chunkOf, rFull, sFull int) box {
	b := unitBox()
	set := func(i int, c chunkOf) {
		b.lo[i], b.hi[i] = int64(c.start), int64(c.start+c.size)
	}
	switch k {
	case tensor.Weight:
		set(0, ch[tensor.C])
		set(1, ch[tensor.R])
		set(2, ch[tensor.S])
		if s.layer.TensorDims(tensor.Weight).Has(tensor.K) {
			set(3, ch[tensor.K])
		}
	case tensor.Input:
		set(0, ch[tensor.N])
		set(1, ch[tensor.C])
		set(2, ch[tensor.Y])
		set(3, ch[tensor.X])
	case tensor.Output:
		set(0, ch[tensor.N])
		if s.layer.TensorDims(tensor.Output).Has(tensor.K) {
			set(1, ch[tensor.K])
		} else {
			set(1, ch[tensor.C])
		}
		oy := outInterval(ch[tensor.Y], ch[tensor.R], rFull, s.layer.StrideY)
		ox := outInterval(ch[tensor.X], ch[tensor.S], sFull, s.layer.StrideX)
		b.lo[2], b.hi[2] = oy.lo, oy.hi
		b.lo[3], b.hi[3] = ox.lo, ox.hi
	}
	return b
}

type interval struct{ lo, hi int64 }

// outInterval returns the half-open output coordinate range computed by
// an activation chunk against a filter chunk at the given stride. A
// chunk hosting a complete window anchors the outputs to the chunk
// start (partial filter chunks only select taps); a smaller chunk pairs
// diagonally with its filter chunk.
func outInterval(act, filt chunkOf, filtFull, stride int) interval {
	if act.size >= filtFull {
		lo := (act.start + stride - 1) / stride
		hi := (act.start + act.size - filtFull) / stride
		if act.start == 0 {
			lo = 0
		}
		if hi < lo {
			return interval{}
		}
		return interval{int64(lo), int64(hi) + 1}
	}
	lo := act.start - filt.start
	if lo < 0 {
		lo = 0
	} else {
		lo = (lo + stride - 1) / stride
	}
	hi := act.start + act.size - (filt.start + filt.size)
	if hi < 0 {
		return interval{}
	}
	hi = hi / stride
	return interval{int64(lo), int64(hi) + 1}
}

// childPsums counts the MACs of a transformed child sub-problem: its
// window arithmetic is self-consistent by construction.
func childPsums(layer tensor.Layer, dims tensor.Sizes) int64 {
	return psumsOf(layer, dims)
}

func psumsOf(layer tensor.Layer, dims tensor.Sizes) int64 {
	oy := tensor.OutSpan(dims.Get(tensor.Y), dims.Get(tensor.R), layer.StrideY)
	ox := tensor.OutSpan(dims.Get(tensor.X), dims.Get(tensor.S), layer.StrideX)
	return int64(dims.Get(tensor.N)) * int64(dims.Get(tensor.K)) * int64(dims.Get(tensor.C)) *
		int64(oy) * int64(ox) * int64(dims.Get(tensor.R)) * int64(dims.Get(tensor.S))
}

func wdens(l tensor.Layer) float64 {
	if l.Density[tensor.Weight] == 0 {
		return 1
	}
	return l.Density[tensor.Weight]
}

func sqrt(v float64) float64 { return math.Sqrt(v) }

func ln(v float64) float64 { return math.Log(v) }

func log2ceil(n int) int64 {
	var l int64
	for m := 1; m < n; m *= 2 {
		l++
	}
	return l
}
