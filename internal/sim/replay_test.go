package sim

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/netsched"
)

func replayCfg() hw.Config {
	cfg := hw.Accel256()
	cfg.L2Size = 256 << 10
	return cfg
}

// TestReplayGoogLeNet is the acceptance check: the scheduler's claimed
// DRAM traffic must agree with the band-by-band replay within 2% on
// every fused subgraph and exactly on unfused ones.
func TestReplayGoogLeNet(t *testing.T) {
	s, err := netsched.RunFused(models.GoogLeNet(), replayCfg(),
		netsched.FuseOptions{Options: netsched.Options{L2Bytes: 256 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if s.FusedGroups() == 0 {
		t.Fatal("nothing fused")
	}
	rep, err := ReplayFused(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(s, 0.02); err != nil {
		t.Fatal(err)
	}
}

// TestReplayExactOnFullCoverage pins the stronger property the row
// accounting is built for: when every band is walked, first-touch
// counting reproduces the claimed whole-tensor traffic bit for bit.
func TestReplayExactOnFullCoverage(t *testing.T) {
	for _, m := range []models.Model{models.GoogLeNet(), models.ResNet50()} {
		s, err := netsched.RunFused(m, replayCfg(),
			netsched.FuseOptions{Options: netsched.Options{L2Bytes: 256 << 10}})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		rep, err := ReplayFused(s)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for i, gr := range rep.Groups {
			gp := s.Groups[i]
			if !gp.Fused {
				continue
			}
			if gr.DRAMReads != gp.DRAMReads || gr.DRAMWrites != gp.DRAMWrites {
				t.Errorf("%s group [%d,%d]: replay %d/%d != claim %d/%d",
					m.Name, gp.Lo, gp.Hi, gr.DRAMReads, gr.DRAMWrites, gp.DRAMReads, gp.DRAMWrites)
			}
			if gr.RefetchedRows != 0 {
				t.Errorf("%s group [%d,%d]: %d rows re-fetched", m.Name, gp.Lo, gp.Hi, gr.RefetchedRows)
			}
		}
	}
}

// TestReplaySentinel checks the L2Bytes=0 sentinel replays exactly: all
// groups unfused, totals identical to the schedule's claim.
func TestReplaySentinel(t *testing.T) {
	m := models.GoogLeNet()
	s, err := netsched.RunFused(m, hw.Accel256(), netsched.FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayFused(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(s, 0); err != nil {
		t.Fatal(err)
	}
	if rep.DRAMTraffic != s.DRAMTraffic {
		t.Errorf("sentinel replay traffic %d != schedule %d", rep.DRAMTraffic, s.DRAMTraffic)
	}
}

// TestReplayMACsInvariant: the replayed MAC count equals the model's
// arithmetic regardless of the partitioning the DP picked.
func TestReplayMACsInvariant(t *testing.T) {
	m := models.GoogLeNet()
	var want int64
	for _, inst := range m.Layers {
		want += inst.Layer.MACs() * int64(inst.Count)
	}
	for _, l2 := range []int64{0, 64 << 10, 256 << 10, 1 << 20} {
		s, err := netsched.RunFused(m, replayCfg(),
			netsched.FuseOptions{Options: netsched.Options{L2Bytes: l2}})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ReplayFused(s)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MACs != want {
			t.Errorf("L2=%d: MACs %d != %d", l2, rep.MACs, want)
		}
	}
}
