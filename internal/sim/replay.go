// Fused-schedule replay: the validation oracle for the graph-level
// scheduler. ReplayFused re-executes a netsched.FusedSchedule band by
// band from the model geometry alone — it shares no cost arithmetic
// with the scheduler's interval pricing — counting DRAM transfers at
// first touch and tracking actual L2 occupancy. Verify then holds the
// scheduler's claimed traffic to the replayed measurement: exact on
// unfused groups, within a small tolerance on fused ones.

package sim

import (
	"fmt"

	"repro/internal/netsched"
	"repro/internal/tensor"
)

// GroupReplay is the replayed measurement of one fusion group.
type GroupReplay struct {
	Lo, Hi int
	Fused  bool
	// DRAMReads/DRAMWrites are replayed off-chip element transfers per
	// instance.
	DRAMReads, DRAMWrites int64
	// PeakL2Bytes is the largest replayed occupancy over all bands:
	// live windows + resident weights + staging + output bands.
	PeakL2Bytes int64
	// RefetchedRows counts rows a band needed after an earlier band's
	// window already drained them — nonzero means the scheduler's
	// monotone-band assumption broke and its claim undercounts traffic.
	RefetchedRows int64
}

// FusedReplay is the replayed schedule.
type FusedReplay struct {
	Groups []GroupReplay
	// DRAMReads/DRAMWrites/DRAMTraffic total over all instances.
	DRAMReads, DRAMWrites, DRAMTraffic int64
	// MACs is the model's total multiply-accumulate count — invariant
	// under any partitioning.
	MACs int64
}

// interval is a half-open row range.
type rowIv struct{ lo, hi int }

func (a rowIv) empty() bool { return a.hi <= a.lo }

func (a rowIv) len() int {
	if a.empty() {
		return 0
	}
	return a.hi - a.lo
}

func union(a, b rowIv) rowIv {
	if a.empty() {
		return b
	}
	if b.empty() {
		return a
	}
	return rowIv{min(a.lo, b.lo), max(a.hi, b.hi)}
}

// inRows maps a consumer's output row interval to the input rows it
// reads: [lo*stride, (hi-1)*stride + R).
func inRows(l tensor.Layer, out rowIv) rowIv {
	if out.empty() {
		return rowIv{}
	}
	return rowIv{out.lo * l.StrideY, (out.hi-1)*l.StrideY + l.Sizes.Get(tensor.R)}
}

// replayScale applies tensor density with the engine's rounding
// (core.scaleCount): densities >= 1 pass through, zero scales to zero.
func replayScale(n int64, d float64) int64 {
	if d >= 1 {
		return n
	}
	return int64(float64(n)*d + 0.5)
}

// ReplayFused replays every group of the schedule and returns the
// measured traffic. The replay recomputes band geometry from the model
// graph independently of the scheduler's cost model.
func ReplayFused(s *netsched.FusedSchedule) (*FusedReplay, error) {
	g, err := netsched.BuildGraph(s.Model)
	if err != nil {
		return nil, err
	}
	rep := &FusedReplay{}
	for _, inst := range s.Model.Layers {
		rep.MACs += inst.Layer.MACs() * int64(inst.Count)
	}
	for _, gp := range s.Groups {
		var gr GroupReplay
		if gp.Fused {
			gr, err = replayFusedGroup(g, &gp, s.L2Bytes)
		} else {
			gr, err = replaySingleton(&gp, s.L2Bytes)
		}
		if err != nil {
			return nil, err
		}
		rep.Groups = append(rep.Groups, gr)
		n := int64(gp.Count)
		rep.DRAMReads += gr.DRAMReads * n
		rep.DRAMWrites += gr.DRAMWrites * n
	}
	rep.DRAMTraffic = rep.DRAMReads + rep.DRAMWrites
	return rep, nil
}

// replaySingleton replays an unfused group through the per-layer engine
// at the schedule's L2 budget, taking the cheaper of the retention and
// pure-streaming policies — the same floor the scheduler claims.
func replaySingleton(gp *netsched.GroupPlan, l2 int64) (GroupReplay, error) {
	if len(gp.Members) != 1 {
		return GroupReplay{}, fmt.Errorf("sim: singleton group [%d,%d] has %d members", gp.Lo, gp.Hi, len(gp.Members))
	}
	r := gp.Members[0].Result
	gr := GroupReplay{Lo: gp.Lo, Hi: gp.Hi}
	if l2 == 0 {
		gr.DRAMReads, gr.DRAMWrites = r.DRAMReads, r.DRAMWrites
		gr.PeakL2Bytes = r.L2ReqBytes()
		return gr, nil
	}
	at := r.AtL2(l2)
	spillR := r.BufRead[0][tensor.Input] + r.BufRead[0][tensor.Weight]
	spillW := r.BufWrite[0][tensor.Output]
	if spillR+spillW < at.DRAMReads+at.DRAMWrites {
		gr.DRAMReads, gr.DRAMWrites = spillR, spillW
	} else {
		gr.DRAMReads, gr.DRAMWrites = at.DRAMReads, at.DRAMWrites
	}
	gr.PeakL2Bytes = min(l2, at.EffectiveL2)
	return gr, nil
}

// replayFusedGroup walks the group's bands in order. Per band it derives
// every member's output row interval backward from the writers' band,
// fetches external rows on first touch, streams or holds weights per
// the plan, and writes each writer's band once. Occupancy is measured
// per band; rows re-fetched after draining are reported.
func replayFusedGroup(g *netsched.Graph, gp *netsched.GroupPlan, l2 int64) (GroupReplay, error) {
	layers := g.Model.Layers
	lo, hi := gp.Lo, gp.Hi
	gr := GroupReplay{Lo: lo, Hi: hi, Fused: true}
	if gp.TileRows <= 0 || gp.Bands <= 0 {
		return gr, fmt.Errorf("sim: fused group [%d,%d] has no band plan", lo, hi)
	}
	writer := map[int]bool{}
	for _, w := range gp.Writers(g) {
		writer[w] = true
	}
	var outY int
	for w := range writer {
		outY = layers[w].Layer.OutY()
	}
	eb := int64(gp.Members[0].Result.Cfg.ElemBytes)

	// Static bytes: resident weights, the widest member's staging tiles.
	var weightBytes, staging, wElems int64
	for v := lo; v <= hi; v++ {
		l := layers[v].Layer
		w := replayScale(l.TensorSize(tensor.Weight), l.Density[tensor.Weight])
		wElems += w
		weightBytes += w * eb
		if s := gp.Members[v-lo].Result.L2ReqBytes(); s > staging {
			staging = s
		}
	}

	// First-touch high-water marks and previous-band windows.
	touched := map[int]int{} // member/ext key -> rows fetched or produced
	prevLo := map[int]int{}  // member/ext key -> last band's window start
	written := map[int]int{} // writer -> output rows written
	need := make([]rowIv, hi-lo+1)

	for b := 0; b < gp.Bands; b++ {
		band := rowIv{b * gp.TileRows, min((b+1)*gp.TileRows, outY)}
		if band.empty() {
			return gr, fmt.Errorf("sim: group [%d,%d] band %d empty", lo, hi, b)
		}
		// Backward pass: rows each member must produce this band.
		for v := hi; v >= lo; v-- {
			lv := layers[v].Layer
			var nd rowIv
			if writer[v] {
				nd = band
			}
			for _, c := range g.Outs[v] {
				if c > hi {
					continue
				}
				in := inRows(layers[c].Layer, need[c-lo])
				if in.hi > lv.OutY() {
					in.hi = lv.OutY()
				}
				nd = union(nd, in)
			}
			need[v-lo] = nd
		}
		// External windows: per distinct tensor, the union of its
		// consumers' input windows.
		extNeed := map[int]rowIv{}
		for v := lo; v <= hi; v++ {
			lv := layers[v].Layer
			in := inRows(lv, need[v-lo])
			if len(g.Ins[v]) == 0 {
				k := -(v + 1)
				if in.hi > lv.Sizes.Get(tensor.Y) {
					in.hi = lv.Sizes.Get(tensor.Y)
				}
				extNeed[k] = union(extNeed[k], in)
			}
			for _, p := range g.Ins[v] {
				if p >= lo {
					continue
				}
				pin := in
				if py := layers[p].Layer.OutY(); pin.hi > py {
					pin.hi = py
				}
				extNeed[p] = union(extNeed[p], pin)
			}
		}

		// Traffic: externals on first touch, re-fetches when a window
		// reaches below what an earlier band drained.
		var occ int64
		for k, iv := range extNeed {
			rowEl, d, limit := extTensor(g, k)
			if iv.hi > limit {
				iv.hi = limit
			}
			if iv.lo < prevLo[k] {
				rows := int64(prevLo[k] - iv.lo)
				gr.RefetchedRows += rows
				// Re-fetched rows cross DRAM again, priced like any
				// other row of this tensor.
				gr.DRAMReads += replayScale(rows*rowEl, d)
			}
			if iv.hi > touched[k] {
				touched[k] = iv.hi
			}
			prevLo[k] = iv.lo
			occ += int64(iv.len()) * rowEl * eb
		}
		// Intermediates live in L2 for the band; writers buffer one band.
		for v := lo; v <= hi; v++ {
			lv := layers[v].Layer
			rowEl := lv.TensorSize(tensor.Output) / int64(lv.OutY())
			if writer[v] {
				w := rowIv{band.lo, min(band.hi, lv.OutY())}
				if w.lo != written[v] {
					return gr, fmt.Errorf("sim: group [%d,%d] writer %d band %d starts at row %d, expected %d",
						lo, hi, v, b, w.lo, written[v])
				}
				written[v] = w.hi
				occ += int64(w.len()) * rowEl * eb
				// A writer also consumed in-group holds its extra rows.
				if need[v-lo].len() > w.len() {
					occ += int64(need[v-lo].len()-w.len()) * rowEl * eb
				}
			} else {
				occ += int64(need[v-lo].len()) * rowEl * eb
			}
		}
		occ += staging
		if gp.WeightsResident {
			occ += weightBytes
		}
		if occ > gr.PeakL2Bytes {
			gr.PeakL2Bytes = occ
		}
		if !gp.WeightsResident {
			gr.DRAMReads += wElems
		}
	}
	if gp.WeightsResident {
		gr.DRAMReads += wElems
	}

	// Coverage: every writer must have emitted its full output.
	for w := range writer {
		if oy := layers[w].Layer.OutY(); written[w] != oy {
			return gr, fmt.Errorf("sim: group [%d,%d] writer %d emitted %d of %d rows",
				lo, hi, w, written[w], oy)
		}
	}
	// Totals, density-scaled once at the end so full coverage reproduces
	// the whole-tensor sizes exactly.
	for k, rows := range touched {
		rowEl, d, limit := extTensor(g, k)
		if rows > limit {
			rows = limit
		}
		gr.DRAMReads += replayScale(int64(rows)*rowEl, d)
	}
	for w, rows := range written {
		lv := layers[w].Layer
		rowEl := lv.TensorSize(tensor.Output) / int64(lv.OutY())
		gr.DRAMWrites += replayScale(int64(rows)*rowEl, lv.Density[tensor.Output])
	}
	return gr, nil
}

// extTensor resolves an external-tensor key to its dense row element
// count, density, and row limit: a producer's output tensor, or the
// model input a root (key -(member+1)) reads.
func extTensor(g *netsched.Graph, key int) (rowEl int64, density float64, limit int) {
	if key < 0 {
		l := g.Model.Layers[-key-1].Layer
		limit = l.Sizes.Get(tensor.Y)
		if limit == 0 {
			return 0, l.Density[tensor.Input], 0
		}
		return l.TensorSize(tensor.Input) / int64(limit), l.Density[tensor.Input], limit
	}
	l := g.Model.Layers[key].Layer
	limit = l.OutY()
	if limit == 0 {
		return 0, l.Density[tensor.Output], 0
	}
	return l.TensorSize(tensor.Output) / int64(limit), l.Density[tensor.Output], limit
}

// Verify holds the schedule's claimed DRAM traffic to the replayed
// measurement: bit-exact on unfused groups, within tol (fractional,
// e.g. 0.02) on fused ones. The replayed peak occupancy must not exceed
// the claimed footprint, and no fused band may re-fetch drained rows.
func (rep *FusedReplay) Verify(s *netsched.FusedSchedule, tol float64) error {
	if len(rep.Groups) != len(s.Groups) {
		return fmt.Errorf("sim: %d replayed groups vs %d scheduled", len(rep.Groups), len(s.Groups))
	}
	for i, gr := range rep.Groups {
		gp := &s.Groups[i]
		if !gp.Fused {
			if gr.DRAMReads != gp.DRAMReads || gr.DRAMWrites != gp.DRAMWrites {
				return fmt.Errorf("sim: group [%d,%d] unfused claim %d/%d != replay %d/%d",
					gp.Lo, gp.Hi, gp.DRAMReads, gp.DRAMWrites, gr.DRAMReads, gr.DRAMWrites)
			}
			continue
		}
		if gr.RefetchedRows > 0 {
			return fmt.Errorf("sim: group [%d,%d] re-fetched %d drained rows", gp.Lo, gp.Hi, gr.RefetchedRows)
		}
		if gr.PeakL2Bytes > gp.L2PeakBytes {
			return fmt.Errorf("sim: group [%d,%d] replayed occupancy %d exceeds claimed %d",
				gp.Lo, gp.Hi, gr.PeakL2Bytes, gp.L2PeakBytes)
		}
		if !within(gr.DRAMReads, gp.DRAMReads, tol) || !within(gr.DRAMWrites, gp.DRAMWrites, tol) {
			return fmt.Errorf("sim: group [%d,%d] claim %d/%d diverges from replay %d/%d beyond %.1f%%",
				gp.Lo, gp.Hi, gp.DRAMReads, gp.DRAMWrites, gr.DRAMReads, gr.DRAMWrites, 100*tol)
		}
	}
	return nil
}

func within(a, b int64, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	base := b
	if base < 0 {
		base = -base
	}
	return float64(d) <= tol*float64(base)
}
