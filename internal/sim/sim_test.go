package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/noc"
	"repro/internal/tensor"
)

func layerOf(k, c, y, r, stride int) tensor.Layer {
	return tensor.Layer{
		Name: "t", Op: tensor.Conv2D,
		Sizes:   tensor.Sizes{tensor.N: 1, tensor.K: k, tensor.C: c, tensor.Y: y, tensor.X: y, tensor.R: r, tensor.S: r},
		StrideY: stride, StrideX: stride,
	}.Normalize()
}

func cfg64() hw.Config {
	m := noc.Bus(16)
	m.Reduction = true
	return hw.Config{Name: "t64", NumPEs: 64, NoCs: []noc.Model{m}}.Normalize()
}

func TestBoxMath(t *testing.T) {
	a := box{lo: [4]int64{0, 0, 0, 0}, hi: [4]int64{2, 3, 1, 1}}
	b := box{lo: [4]int64{1, 1, 0, 0}, hi: [4]int64{3, 4, 1, 1}}
	if a.vol() != 6 || b.vol() != 6 {
		t.Fatalf("vol: %d %d", a.vol(), b.vol())
	}
	if overlap(a, b) != 2 {
		t.Fatalf("overlap = %d; want 2", overlap(a, b))
	}
	h := hull(a, b)
	if h.vol() != 12 {
		t.Fatalf("hull vol = %d; want 12", h.vol())
	}
	var empty box
	if hull(empty, a).vol() != a.vol() {
		t.Fatal("hull with empty broken")
	}
}

func TestOutInterval(t *testing.T) {
	cases := []struct {
		act, filt chunkOf
		full      int
		stride    int
		lo, hi    int64
	}{
		{chunkOf{0, 5}, chunkOf{0, 3}, 3, 1, 0, 3},
		{chunkOf{2, 3}, chunkOf{0, 3}, 3, 1, 2, 3},
		{chunkOf{1, 1}, chunkOf{1, 1}, 3, 1, 0, 1}, // Eyeriss diagonal PE
		{chunkOf{0, 11}, chunkOf{0, 11}, 11, 4, 0, 1},
		{chunkOf{4, 11}, chunkOf{0, 11}, 11, 4, 1, 2},
		{chunkOf{0, 2}, chunkOf{0, 3}, 3, 1, 0, 0}, // too small: empty
		{chunkOf{0, 6}, chunkOf{2, 1}, 6, 1, 0, 1}, // anchored: tap choice moves nothing
		{chunkOf{3, 6}, chunkOf{0, 2}, 6, 1, 3, 4}, // anchored at offset chunk
	}
	for _, c := range cases {
		iv := outInterval(c.act, c.filt, c.full, c.stride)
		if iv.lo != c.lo || iv.hi != c.hi {
			t.Errorf("outInterval(%v,%v,%d) = [%d,%d); want [%d,%d)",
				c.act, c.filt, c.stride, iv.lo, iv.hi, c.lo, c.hi)
		}
	}
}

// TestSimMACConservation: the simulator must execute exactly the
// algorithmic MACs for every Table 3 dataflow.
func TestSimMACConservation(t *testing.T) {
	layer := layerOf(16, 8, 18, 3, 1)
	for _, df := range dataflows.All() {
		spec, err := dataflow.Resolve(df, layer, 64)
		if err != nil {
			t.Fatalf("%s: %v", df.Name, err)
		}
		r, err := Simulate(spec, cfg64())
		if err != nil {
			t.Fatalf("%s: %v", df.Name, err)
		}
		if r.MACs != layer.MACs() {
			t.Errorf("%s: simulated %d MACs; algorithmic %d", df.Name, r.MACs, layer.MACs())
		}
		if r.Cycles <= 0 {
			t.Errorf("%s: non-positive cycle count", df.Name)
		}
	}
}

// TestAnalyticalMatchesSim is the Figure 9 experiment in miniature: the
// analytical model must track the step-accurate simulator closely across
// dataflows, layer shapes, and strides.
func TestAnalyticalMatchesSim(t *testing.T) {
	layers := []tensor.Layer{
		layerOf(16, 8, 18, 3, 1),
		layerOf(8, 16, 13, 3, 2),
		layerOf(32, 4, 30, 5, 1),
	}
	worst := 0.0
	for _, layer := range layers {
		for _, df := range dataflows.All() {
			spec, err := dataflow.Resolve(df, layer, 64)
			if err != nil {
				t.Fatalf("%s: %v", df.Name, err)
			}
			simr, err := Simulate(spec, cfg64())
			if err != nil {
				t.Fatalf("sim %s: %v", df.Name, err)
			}
			ana, err := core.Analyze(spec, cfg64())
			if err != nil {
				t.Fatalf("core %s: %v", df.Name, err)
			}
			if ana.MACs != simr.MACs {
				t.Errorf("%s/%s: MACs analytical %d vs sim %d", layer.Name, df.Name, ana.MACs, simr.MACs)
			}
			relErr := math.Abs(float64(ana.OnChipRuntime)-float64(simr.Cycles)) / float64(simr.Cycles)
			if relErr > worst {
				worst = relErr
			}
			if relErr > 0.10 {
				t.Errorf("%s %v/%s: runtime analytical %d vs sim %d (%.1f%% error)",
					layer.Name, layer.Sizes, df.Name, ana.OnChipRuntime, simr.Cycles, 100*relErr)
			}
		}
	}
	t.Logf("worst analytical-vs-sim runtime error: %.2f%%", 100*worst)
}
