package sim

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflows"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// TestSimStridedMultiLevel runs the two-level YX-P dataflow on a strided
// layer through the simulator and checks MAC conservation.
func TestSimStridedMultiLevel(t *testing.T) {
	layer := tensor.Layer{
		Name: "strided", Op: tensor.Conv2D,
		Sizes:   tensor.Sizes{tensor.N: 1, tensor.K: 8, tensor.C: 4, tensor.Y: 23, tensor.X: 23, tensor.R: 3, tensor.S: 3},
		StrideY: 2, StrideX: 2,
	}.Normalize()
	spec, err := dataflow.Resolve(dataflows.Get("YX-P"), layer, 64)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(spec, cfg64())
	if err != nil {
		t.Fatal(err)
	}
	if r.MACs != layer.MACs() {
		t.Fatalf("MACs %d != algorithmic %d", r.MACs, layer.MACs())
	}
}

// TestSimulateTrace checks the per-step CSV: header, one row per
// top-level step, monotone completion times, and a steady-state cadence
// equal to the bottleneck stage.
func TestSimulateTrace(t *testing.T) {
	layer := layerOf(4, 4, 10, 3, 1)
	spec, err := dataflow.Resolve(dataflows.Get("X-P"), layer, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r, err := SimulateTrace(spec, cfg64withPEs(8), &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace too short:\n%s", buf.String())
	}
	if !strings.HasPrefix(lines[0], "step,active,") {
		t.Fatalf("missing header: %q", lines[0])
	}
	var prevOut int64 = -1
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 10 {
			t.Fatalf("bad row %q", line)
		}
		outDone, err := strconv.ParseInt(f[9], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if outDone < prevOut {
			t.Fatalf("completion time went backwards: %q", line)
		}
		prevOut = outDone
	}
	// The last completion time cannot exceed the reported total.
	if prevOut > r.Cycles {
		t.Fatalf("last step finishes at %d after total %d", prevOut, r.Cycles)
	}
}

// TestSimPipelineSteadyState: for a compute-bound mapping the steady-state
// cadence between compute completions must equal the compute delay.
func TestSimPipelineSteadyState(t *testing.T) {
	layer := layerOf(4, 4, 10, 3, 1)
	spec, err := dataflow.Resolve(dataflows.Get("X-P"), layer, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := SimulateTrace(spec, cfg64withPEs(8), &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	type row struct{ tIn, tComp, tOut, compDone int64 }
	parse := func(line string) row {
		f := strings.Split(line, ",")
		g := func(i int) int64 {
			v, _ := strconv.ParseInt(f[i], 10, 64)
			return v
		}
		return row{g(4), g(5), g(6), g(8)}
	}
	// Pick two adjacent steady rows (skip the first two and last two).
	if len(lines) < 7 {
		t.Skip("not enough steady rows")
	}
	a := parse(lines[3])
	b := parse(lines[4])
	if a.tComp >= a.tIn && a.tComp >= a.tOut { // compute-bound
		if got := b.compDone - a.compDone; got != b.tComp {
			t.Errorf("steady cadence %d != compute delay %d", got, b.tComp)
		}
	}
}

func cfg64withPEs(pes int) hw.Config {
	c := cfg64()
	c.NumPEs = pes
	return c
}

// TestTrafficMatchesAnalytical cross-checks the L2-side traffic, not
// just runtime: the simulator's box-difference ingress and the
// analytical engine's case-enumerated ingress must agree closely on the
// canonical dataflows.
func TestTrafficMatchesAnalytical(t *testing.T) {
	layer := layerOf(16, 8, 18, 3, 1)
	for _, name := range []string{"C-P", "X-P", "KC-P", "YR-P", "YX-P"} {
		spec, err := dataflow.Resolve(dataflows.Get(name), layer, 64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := cfg64()
		simr, err := Simulate(spec, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ana, err := core.Analyze(spec, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var anaReads int64
		for _, k := range tensor.AllKinds() {
			if k != tensor.Output {
				anaReads += ana.L2Read(k)
			}
		}
		rel := func(a, b int64) float64 {
			if b == 0 {
				return 0
			}
			d := float64(a - b)
			if d < 0 {
				d = -d
			}
			return d / float64(b)
		}
		if e := rel(anaReads, simr.L2Reads); e > 0.05 {
			t.Errorf("%s: L2 reads analytical %d vs sim %d (%.1f%%)",
				name, anaReads, simr.L2Reads, 100*e)
		}
		if e := rel(ana.L2Write(tensor.Output), simr.L2Writes); e > 0.05 {
			t.Errorf("%s: L2 writes analytical %d vs sim %d (%.1f%%)",
				name, ana.L2Write(tensor.Output), simr.L2Writes, 100*e)
		}
	}
}
