package hw

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/noc"
)

// ParseConfig reads a line-oriented accelerator description, the
// hardware-resource input of the paper's Figure 7:
//
//	# an edge accelerator
//	name: edge-npu
//	pes: 256
//	vector_width: 1
//	l1_bytes: 2048
//	l2_bytes: 1048576
//	elem_bytes: 1
//	clock_ghz: 1.0
//	offchip_gbps: 16
//	noc: bus bandwidth=32 latency=2 multicast=true reduction=true
//	noc: bus bandwidth=64          # inner cluster level (optional)
//
// Repeated `noc:` lines describe successive cluster levels (outermost
// first). `#` and `//` start comments. Unknown keys are errors.
func ParseConfig(src string) (Config, error) {
	var c Config
	sawNoC := false
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return c, fmt.Errorf("hw config line %d: expected key: value, got %q", ln+1, raw)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "name":
			c.Name = val
		case "pes":
			c.NumPEs, err = strconv.Atoi(val)
		case "vector_width":
			c.VectorWidth, err = strconv.Atoi(val)
		case "l1_bytes":
			c.L1Size, err = strconv.ParseInt(val, 10, 64)
		case "l2_bytes":
			c.L2Size, err = strconv.ParseInt(val, 10, 64)
		case "elem_bytes":
			c.ElemBytes, err = strconv.Atoi(val)
		case "clock_ghz":
			c.ClockGHz, err = strconv.ParseFloat(val, 64)
		case "offchip_gbps":
			var g float64
			g, err = strconv.ParseFloat(val, 64)
			if err == nil {
				eb := c.ElemBytes
				if eb == 0 {
					eb = 1
				}
				ck := c.ClockGHz
				if ck == 0 {
					ck = 1
				}
				c.OffchipBandwidth = noc.GBpsToElems(g, ck, eb)
			}
		case "noc":
			var m noc.Model
			m, err = parseNoCLine(val, c.NumPEs)
			if err == nil {
				c.NoCs = append(c.NoCs, m)
				sawNoC = true
			}
		default:
			return c, fmt.Errorf("hw config line %d: unknown key %q", ln+1, key)
		}
		if err != nil {
			return c, fmt.Errorf("hw config line %d: %s: %v", ln+1, key, err)
		}
	}
	_ = sawNoC
	c = c.Normalize()
	return c, c.Validate()
}

// parseNoCLine parses "TYPE k=v k=v ..." into a NoC model. The type sets
// topology defaults (including multicast/reduction capability); explicit
// keys override them.
func parseNoCLine(val string, pes int) (noc.Model, error) {
	fields := strings.Fields(val)
	if len(fields) == 0 {
		return noc.Model{}, fmt.Errorf("empty noc description")
	}
	var m noc.Model
	switch fields[0] {
	case "bus":
		m = noc.Bus(16)
	case "crossbar":
		m = noc.Crossbar(16)
	case "mesh":
		m = noc.Mesh(ceilSqrt(max(pes, 1)))
	case "tree":
		m = noc.Tree(max(pes, 2))
	case "systolic":
		m = noc.SystolicRow(max(pes, 2))
	default:
		return m, fmt.Errorf("unknown noc type %q", fields[0])
	}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return m, fmt.Errorf("expected key=value, got %q", f)
		}
		var err error
		switch k {
		case "bandwidth":
			m.Bandwidth, err = strconv.ParseFloat(v, 64)
		case "latency":
			m.AvgLatency, err = strconv.ParseInt(v, 10, 64)
		case "multicast":
			m.Multicast, err = strconv.ParseBool(v)
		case "reduction":
			m.Reduction, err = strconv.ParseBool(v)
		case "channels":
			m.Channels, err = strconv.Atoi(v)
		default:
			return m, fmt.Errorf("unknown noc key %q", k)
		}
		if err != nil {
			return m, fmt.Errorf("%s: %v", k, err)
		}
	}
	return m, nil
}

// ceilSqrt returns the smallest n with n*n >= v. A float estimate is
// corrected by a step or two in uint64 space, so a pathological PE
// count (e.g. from a fuzzer) can neither spin for billions of
// iterations nor overflow the n*n comparison.
func ceilSqrt(v int) int {
	if v <= 1 {
		return 1
	}
	n := int(math.Sqrt(float64(v)))
	if n < 1 {
		n = 1
	}
	for n > 1 && uint64(n-1)*uint64(n-1) >= uint64(v) {
		n--
	}
	for uint64(n)*uint64(n) < uint64(v) {
		n++
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
